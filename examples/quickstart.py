"""Quickstart: build a network, run both kernel expressions, compare.

Demonstrates the core workflow:

1. compose a small network with the Corelet Programming Environment;
2. run it on the Compass (software) expression and the TrueNorth
   (silicon) expression;
3. verify one-to-one equivalence (paper Section VI-A);
4. evaluate energy/timing with the calibrated chip models.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.compass import CompassSimulator
from repro.corelets import Composition
from repro.corelets.library import relay, splitter, winner_take_all
from repro.core import InputSchedule
from repro.core.workload import WorkloadDescriptor
from repro.hardware import EnergyModel, TimingModel, TrueNorthSimulator


def main() -> None:
    # --- 1. Compose: inputs fan out to a relay and a winner-take-all ----
    comp = Composition(name="quickstart", seed=42)
    sp = splitter(8, 2, name="input-split")
    line = relay(8, name="line")
    wta = winner_take_all(8, name="wta")
    comp.connect(sp.outputs["out0"], line.inputs["in"])
    comp.connect(sp.outputs["out1"], wta.inputs["in"])
    comp.export_input("in", sp.inputs["in"])
    comp.export_output("line", line.outputs["out"])
    comp.export_output("winners", wta.outputs["out"])
    compiled = comp.compile()
    net = compiled.network
    print(f"compiled network: {net.n_cores} cores, {net.n_neurons} neurons, "
          f"{net.n_synapses} synapses")

    # --- 2. Drive channel 3 hard and channel 6 lightly -------------------
    ins = InputSchedule()
    pins = compiled.inputs["in"]
    for t in range(60):
        ins.add(t, pins[3].core, pins[3].index)
        if t % 5 == 0:
            ins.add(t, pins[6].core, pins[6].index)

    # --- 3. Run both expressions and check equivalence -------------------
    compass = CompassSimulator(net, n_ranks=3)
    sw = compass.run(60, ins)
    hw = TrueNorthSimulator(net).run(60, ins)
    assert hw == sw, "expressions diverged!"
    print(f"equivalence: {sw.n_spikes} spikes, compass == truenorth: {hw == sw}")
    print(f"compass used {compass.mpi.messages_sent} aggregated MPI messages")

    winners = {
        (p.core, p.index): i for i, p in enumerate(compiled.outputs["winners"])
    }
    rates = np.zeros(8)
    for t, c, n in hw.as_tuples():
        if (c, n) in winners:
            rates[winners[(c, n)]] += 1
    print(f"winner-take-all output rates: {rates} (channel 3 should win)")

    # --- 4. Project performance at full TrueNorth scale ------------------
    measured = WorkloadDescriptor.from_counters("quickstart", hw.counters, net.n_cores)
    energy = EnergyModel()
    timing = TimingModel()
    e_run = energy.energy_for_run_j(hw.counters)
    print(f"chip-model energy for this run: {e_run * 1e6:.2f} uJ "
          f"({e_run / hw.counters.ticks * 1e6:.3f} uJ/tick)")
    print(f"max tick rate for this load: "
          f"{timing.max_frequency_for_run_khz(hw.counters):.2f} kHz "
          f"(1 kHz is real time)")
    print(f"measured workload: rate {measured.rate_hz:.1f} Hz, "
          f"fan-out {measured.active_synapses:.1f} synapses/spike")


if __name__ == "__main__":
    main()
