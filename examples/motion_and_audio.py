"""Motion and audio analytics: the broader corelet-library applications.

Demonstrates the three "beyond vision-pipeline" applications the paper's
ecosystem advertises (Fig. 2): optical flow via Reichardt detectors,
audio event classification with a liquid state machine, and glyph
recognition with a spiking convolutional layer.

Run:  python examples/motion_and_audio.py
"""

from repro.apps.audio import AudioClassifier, synth_event
from repro.apps.glyphs import GlyphClassifier, draw_glyph
from repro.apps.optical_flow import build_flow_pipeline, estimate_flow
from repro.corelets.inspect import report_text


def main() -> None:
    # --- Optical flow: direction + velocity from delayed coincidence -----
    print("== optical flow (Reichardt detector banks) ==")
    pipe = build_flow_pipeline(8, velocities=(1, 2, 4))
    print(report_text(pipe.compiled.network))
    for velocity, direction in [(1, +1), (2, +1), (4, +1), (2, -1)]:
        _, flow = estimate_flow(pipe, velocity=velocity, direction=direction)
        arrow = "+x" if direction > 0 else "-x"
        print(f"  stimulus {arrow} @ {velocity} ticks/step -> detected {flow}")

    # --- Audio: liquid state machine + ternary readout --------------------
    print("\n== audio events (liquid state machine) ==")
    audio = AudioClassifier(seed=1)
    audio.train(n_per_class=16)
    for kind in ("rising", "falling", "steady"):
        label = audio.classify(synth_event(kind, seed=555))
        print(f"  {kind:8s} chirp -> classified {label!r}")
    print(f"  accuracy on fresh events: {audio.accuracy(n_per_class=5):.2f}")

    # --- Glyphs: spiking convolution + ternary readout ---------------------
    print("\n== glyph recognition (spiking convolution) ==")
    glyphs = GlyphClassifier(seed=2)
    glyphs.train(n_per_class=12)
    for kind in ("cross", "square", "stripes"):
        label = glyphs.classify(draw_glyph(kind, seed=777))
        print(f"  {kind:8s} -> classified {label!r}")
    print(f"  accuracy on fresh glyphs: {glyphs.accuracy(n_per_class=4):.2f}")


if __name__ == "__main__":
    main()
