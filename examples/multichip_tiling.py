"""Multi-chip tiling: the 4x4 (16-chip) TrueNorth array board.

Demonstrates Section VII of the paper: chips tile seamlessly into 2D
arrays through merge/split boundary links.  A network is placed across
multiple (small, for demo purposes) chips; spikes route across chip
boundaries; boundary-link traffic and board/rack power projections are
reported.

Run:  python examples/multichip_tiling.py
"""

import numpy as np

from repro.analysis.report import render_table
from repro.core.builders import poisson_inputs, random_network
from repro.core.chip import ChipGeometry, Placement
from repro.experiments.future_systems import (
    BoardModel,
    human1pct_energy_ratio,
    human_scale_system,
    rat_scale_energy_ratio,
    tier_table,
)
from repro.hardware.simulator import TrueNorthSimulator
from repro.noc.multichip import board_4x4


def main() -> None:
    # --- 1. A network spanning a 2x2 array of (4x4-core demo) chips -------
    geometry = ChipGeometry(cores_x=4, cores_y=4)
    net = random_network(n_cores=64, n_axons=16, n_neurons=16,
                         connectivity=0.4, seed=3)
    placement = Placement.grid(64, geometry)
    # Re-tile the linear chip strip into a 2x2 array.
    placement.chip_y[:] = placement.chip_x // 2
    placement.chip_x[:] = placement.chip_x % 2
    sim = TrueNorthSimulator(net, placement=placement)
    ins = poisson_inputs(net, 40, 300.0, seed=9)
    rec = sim.run(40, ins)
    print(f"2x2 chip array: {net.n_cores} cores, {rec.n_spikes} spikes, "
          f"{rec.counters.hops} mesh hops, "
          f"{sim.boundary_crossings} chip-boundary crossings")

    # --- 2. Merge/split link accounting on the real 4x4 board geometry ----
    board = board_4x4()
    print(f"\n4x4 board capacity: {board.n_chips} chips = "
          f"{board.n_neurons / 1e6:.0f}M neurons, "
          f"{board.n_synapses / 1e9:.1f}B synapses (paper: 16M / 4B)")
    board.begin_tick()
    rng = np.random.default_rng(0)
    crossings = 0
    for _ in range(500):
        src = (rng.integers(0, 256), rng.integers(0, 256))
        dst = (rng.integers(0, 256), rng.integers(0, 256))
        _, c = board.deliver(tuple(map(int, src)), tuple(map(int, dst)))
        crossings += c
    traffic = board.boundary_traffic()
    print(f"500 random long-range packets: {crossings} boundary crossings, "
          f"{len(traffic)} chips carried boundary traffic")

    # --- 3. Power: the measured board and the projected hierarchy ---------
    model = BoardModel()
    print(f"\n16-chip board power: array {model.array_power_w():.2f} W + "
          f"support {model.support_power_w} W = {model.total_power_w():.2f} W "
          "(paper: 2.5 + 4.7 = 7.2 W)")

    rows = [
        [r["tier"], r["chips"], f"{r['neurons']:,}", f"{r['synapses']:,}",
         r["power_w"]]
        for r in tier_table()
    ]
    print("\n" + render_table(
        ["tier", "chips", "neurons", "synapses", "power (W)"], rows,
        title="projected system hierarchy (paper Fig. 1(h-j)):",
    ))
    print(f"\nrat-scale energy-to-solution advantage:      "
          f"{rat_scale_energy_ratio():8.0f}x (paper: 6,400x)")
    print(f"1%-human-scale energy-to-solution advantage: "
          f"{human1pct_energy_ratio():8.0f}x (paper: 128,000x)")
    h = human_scale_system()
    print(f"human-scale: {h['racks']} racks, {h['n_synapses']:.1e} synapses, "
          f"{h['power_w'] / 1e3:.0f} kW")


if __name__ == "__main__":
    main()
