"""Streaming runtime: continuous video through a saliency network.

Models the deployed-system loop of the paper's eight-board rack
(Fig. 1(f)): frames stream in, transduce to spikes, the network
advances tick by tick, and output spikes stream to a consumer.  The
report quantifies how far from real time the *software* expression runs
on this host — the gap the silicon expression closes by construction.

Run:  python examples/streaming_runtime.py
"""

from repro.apps.saliency import build_saliency_pipeline
from repro.apps.video import generate_scene
from repro.compass import CompassSimulator
from repro.core.workload import WorkloadDescriptor
from repro.hardware import EnergyModel, TimingModel, TrueNorthSimulator
from repro.runtime import SceneSource, StreamingRuntime


def main() -> None:
    scene = generate_scene(height=16, width=24, n_frames=4, n_objects=2, seed=11)
    pipeline = build_saliency_pipeline(16, 24, patch=4)
    net = pipeline.compiled.network
    print(f"saliency network: {net.n_cores} cores, {net.n_neurons} neurons")

    # --- stream through the TrueNorth expression --------------------------
    heatmap = {}

    def sink(tick, spikes):
        for _, core, neuron in spikes:
            heatmap[(core, neuron)] = heatmap.get((core, neuron), 0) + 1

    runtime = StreamingRuntime(
        TrueNorthSimulator(net), pipeline.pixel_pins, ticks_per_frame=15
    )
    report = runtime.run(SceneSource(scene, loops=2), sink=sink)
    print(f"\nstreamed {report.frames} frames over {report.ticks} ticks:")
    print(f"  input events:  {report.input_events}")
    print(f"  output spikes: {report.output_spikes}")
    print(f"  wall clock:    {report.wall_seconds * 1e3:.0f} ms "
          f"({report.wall_per_tick_s * 1e6:.0f} us/tick)")
    print(f"  real-time factor of this host: {report.real_time_factor:.2f}x "
          "(1.0 = biological real time)")

    # --- the same stream on the Compass expression -------------------------
    compass_runtime = StreamingRuntime(
        CompassSimulator(net, n_ranks=4, profile=True),
        pipeline.pixel_pins,
        ticks_per_frame=15,
    )
    compass_report = compass_runtime.run(SceneSource(scene, loops=2))
    sim = compass_runtime.simulator
    print(f"\ncompass expression: {compass_report.real_time_factor:.2f}x real time; "
          "phase breakdown "
          f"{sim.phase_seconds['synapse_neuron'] * 1e3:.0f} ms compute / "
          f"{sim.phase_seconds['network'] * 1e3:.0f} ms network")

    # --- what the chip would do --------------------------------------------
    counters = runtime.simulator.counters
    w = WorkloadDescriptor.from_counters("stream", counters, net.n_cores)
    max_khz = TimingModel().max_frequency_for_run_khz(counters)
    energy = EnergyModel().energy_for_run_j(counters)
    print(f"\nchip models: this load sustains {max_khz:.1f} kHz ticks "
          f"({max_khz:.0f}x real time) at "
          f"{energy / counters.ticks * 1e6:.1f} uJ/tick")


if __name__ == "__main__":
    main()
