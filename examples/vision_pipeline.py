"""Vision pipeline: synthetic video -> saliency map -> saccades.

The paper's attention stack (Fig. 4(d)-(f)): a saliency corelet scores
each image patch, a winner-take-all picks the most interesting region,
and inhibition-of-return forces the "eye" to explore.

Run:  python examples/vision_pipeline.py
"""

import numpy as np

from repro.apps.saccade import build_saccade_pipeline, explored_locations, run_saccades
from repro.apps.saliency import build_saliency_pipeline, run_saliency, salient_patches
from repro.apps.video import generate_scene


def render_map(smap: np.ndarray) -> str:
    shades = " .:-=+*#%@"
    peak = smap.max() if smap.max() > 0 else 1
    return "\n".join(
        "".join(shades[int(v / peak * (len(shades) - 1))] * 2 for v in row)
        for row in smap
    )


def main() -> None:
    # --- Scene: moving objects over a noisy background -------------------
    scene = generate_scene(height=24, width=32, n_frames=3, n_objects=2, seed=7)
    print(f"scene: {scene.n_frames} frames of {scene.shape}, objects:")
    for box in scene.boxes[-1]:
        print(f"  {box.label:8s} at ({box.y:2d},{box.x:2d}) size {box.h}x{box.w}")

    # --- Saliency: per-patch center-surround corelet bank ----------------
    pipeline = build_saliency_pipeline(24, 32, patch=4)
    net = pipeline.compiled.network
    print(f"\nsaliency network: {net.n_cores} cores, {net.n_neurons} neurons "
          f"(paper full scale: 3,926 cores / 889,461 neurons)")
    record, smap = run_saliency(pipeline, scene.frames, ticks_per_frame=20)
    print(f"ran {record.counters.ticks} ticks: {record.n_spikes} spikes, "
          f"{record.counters.synaptic_events} synaptic ops")
    print("\nsaliency map (6x8 patches):")
    print(render_map(smap))
    print(f"salient patches: {int(salient_patches(smap).sum())}")

    # --- Saccades: WTA + inhibition-of-return over the top patch row ------
    # Flatten the map into (at most 64) competing locations.
    flat = smap.reshape(-1).astype(float)
    flat = flat / flat.max() if flat.max() > 0 else flat
    n_loc = min(flat.size, 48)
    order = np.argsort(flat)[::-1][:n_loc]
    rates = np.zeros(n_loc)
    rates[:] = flat[np.sort(order)]
    saccade = build_saccade_pipeline(n_loc, suppression=255, recovery=24)
    _, seq = run_saccades(saccade, rates, n_ticks=120)
    print(f"\nsaccade sequence ({len(seq)} fixations over 120 ticks):")
    for tick, loc in seq[:10]:
        patch = np.sort(order)[loc]
        py, px = divmod(int(patch), smap.shape[1])
        print(f"  tick {tick:3d}: fixate patch ({py},{px})")
    print(f"distinct locations explored: {len(explored_locations(seq))} "
          "(inhibition-of-return at work)")


if __name__ == "__main__":
    main()
