"""Recurrent-network characterization: a desktop-scale Fig. 5 / Fig. 6.

Generates a slice of the paper's 88 probabilistic recurrent networks at
reduced scale, simulates them on the TrueNorth expression, validates
the measured event counts against the analytic models, and prints the
characterization contours plus the TrueNorth-vs-Compass comparison.

Run:  python examples/recurrent_characterization.py
"""

from repro.analysis.report import render_contour, render_table
from repro.apps.recurrent import chip_placement, probabilistic_recurrent_network
from repro.apps.workloads import characterization_workload
from repro.experiments import fig5, fig6
from repro.hardware.energy import EnergyModel
from repro.hardware.simulator import TrueNorthSimulator
from repro.machines.cost import compare_truenorth_vs_compass
from repro.machines.specs import BGQ, X86


def main() -> None:
    # --- 1. Simulate a few networks from the sweep (scaled) ---------------
    print("simulating scaled characterization networks (grid 3x3, 32 n/core):")
    rows = []
    model = EnergyModel()
    for rate, k in [(50.0, 8), (100.0, 16), (200.0, 24)]:
        net = probabilistic_recurrent_network(
            rate, k, grid_side=3, neurons_per_core=32, seed=1
        )
        sim = TrueNorthSimulator(net, placement=chip_placement(3))
        rec = sim.run(150)
        c = rec.counters
        rows.append([
            f"{rate:g} Hz x {k}",
            c.mean_firing_rate_hz,
            c.mean_active_synapses,
            c.synaptic_events / c.ticks,
            model.energy_for_run_j(c) / c.ticks * 1e6,
        ])
    print(render_table(
        ["target", "measured Hz", "fan-out", "SOPs/tick", "uJ/tick (model)"],
        rows,
    ))

    # --- 2. The full-chip analytic contours (Fig. 5) ----------------------
    print("\nFig. 5(e): computation per energy, GSOPS/W @0.75 V:")
    print(render_contour(fig5.fig5e_efficiency(n=7)))
    print("\nFig. 5(b): maximum tick frequency (kHz):")
    print(render_contour(fig5.fig5b_max_frequency(n=7)))
    h = fig5.headline_points()
    print(f"\nheadline: {h['power_mw_20hz_128syn']:.1f} mW and "
          f"{h['gsops_per_watt_real_time']:.1f} GSOPS/W at 20 Hz x 128 syn "
          "(paper: 65 mW, 46 GSOPS/W)")

    # --- 3. TrueNorth vs Compass on the reference machines (Fig. 6) -------
    print("\nFig. 6: TrueNorth vs Compass at the 20 Hz x 128 syn point:")
    w = characterization_workload(20.0, 128.0)
    rows = []
    for spec in (BGQ, X86):
        cmp = compare_truenorth_vs_compass(w, spec)
        rows.append([
            spec.name, cmp.speedup, cmp.power_improvement, cmp.energy_improvement
        ])
    print(render_table(["platform", "speedup", "x power", "x energy"], rows))
    print("\nFig. 6(d): energy improvement vs x86 over the sweep:")
    print(render_contour(fig6.fig6d_energy_vs_x86(), log_scale=True))


if __name__ == "__main__":
    main()
