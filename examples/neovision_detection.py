"""Neovision-style multi-object detection and classification.

Trains the What network offline (ternary perceptron — the "Compass for
off-line training" role), deploys it as a spiking corelet, runs the
What/Where system on fresh synthetic scenes, and reports
precision/recall (paper: 0.85 / 0.80 on Neovision2 Tower).

Run:  python examples/neovision_detection.py
"""

from repro.apps.neovision import NeovisionSystem, match_detections, precision_recall
from repro.apps.video import generate_scene


def main() -> None:
    system = NeovisionSystem(height=32, width=48, seed=0)
    print(f"Where network: {system._where.compiled.network.n_cores} cores "
          "(paper full scale: 4,018 cores / 660,009 neurons)")

    print("training What classifier offline (ternary perceptron)...")
    system.train(n_scenes=16)
    w = system.weights
    print(f"deployed ternary weights: {w.shape}, "
          f"{(w != 0).mean() * 100:.0f}% non-zero")

    scene = generate_scene(32, 48, n_frames=2, n_objects=2,
                           classes=system.classes, seed=777)
    print("\nground truth:")
    for box in scene.boxes[-1]:
        print(f"  {box.label:8s} at ({box.y:2d},{box.x:2d}) size {box.h}x{box.w}")

    detections = system.detect(scene)
    print("\ndetections (What/Where bound into labeled boxes):")
    for det in detections:
        print(f"  {det.label:8s} at ({det.y:2d},{det.x:2d}) size {det.h}x{det.w}")
    tp, fp, fn = match_detections(detections, scene.boxes[-1])
    print(f"matches: {tp} true positives, {fp} false positives, {fn} misses")

    print("\nevaluating on 5 fresh test scenes...")
    precision, recall = precision_recall(system, n_scenes=5)
    print(f"precision {precision:.2f} / recall {recall:.2f} "
          "(paper: 0.85 / 0.80 on Neovision2 Tower)")


if __name__ == "__main__":
    main()
