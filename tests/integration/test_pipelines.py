"""Integration tests: full application pipelines across kernel expressions."""

import numpy as np
from repro.apps.haar import build_haar_pipeline
from repro.apps.saliency import build_saliency_pipeline, salient_patches
from repro.apps.transduction import transduce_video
from repro.apps.video import generate_scene, static_pattern
from repro.compass.simulator import run_compass
from repro.core.workload import WorkloadDescriptor
from repro.corelets.placement import place_connectivity_aware, place_row_major
from repro.hardware.energy import EnergyModel
from repro.hardware.simulator import TrueNorthSimulator, run_truenorth
from repro.hardware.timing import TimingModel
from repro.machines.cost import compare_truenorth_vs_compass
from repro.machines.specs import X86


class TestVisionPipelineAcrossExpressions:
    """A composed vision network must behave identically on Compass and
    TrueNorth — the applications "run without modification" claim."""

    def test_haar_identical_on_both_expressions(self):
        pipe = build_haar_pipeline(8, 8, 4)
        frames = static_pattern(8, 8, "noise", seed=4)[None]
        ins = transduce_video(frames, pipe.pixel_pins, ticks_per_frame=12)
        n_ticks = 14
        hw = run_truenorth(pipe.compiled.network, n_ticks, ins)
        sw = run_compass(pipe.compiled.network, n_ticks, ins, n_ranks=4)
        assert hw == sw

    def test_saliency_detects_object_location(self):
        pipe = build_saliency_pipeline(16, 16, 4)
        scene = generate_scene(16, 18, n_frames=2, n_objects=1, seed=8)
        frames = scene.frames[:, :, :16]
        ins = transduce_video(frames, pipe.pixel_pins, ticks_per_frame=20)
        rec = run_truenorth(pipe.compiled.network, 42, ins)
        smap = pipe.feature_map(rec).sum(axis=2)
        mask = salient_patches(smap, fraction=0.5)
        box = scene.boxes[-1][0]
        cy, cx = box.center
        # the object's patch neighbourhood contains a salient patch
        py, px = int(cy) // 4, min(int(cx) // 4, 3)
        neighbourhood = mask[
            max(0, py - 1) : py + 2, max(0, px - 1) : px + 2
        ]
        assert neighbourhood.any()


class TestMeasurementPipeline:
    """Counters from a real simulated run feed the performance models."""

    def test_run_to_comparison_flow(self):
        pipe = build_haar_pipeline(8, 8, 4)
        frames = static_pattern(8, 8, "noise", seed=3)[None]
        ins = transduce_video(frames, pipe.pixel_pins, ticks_per_frame=12)
        rec = run_truenorth(pipe.compiled.network, 14, ins)

        measured = WorkloadDescriptor.from_counters(
            "haar-measured", rec.counters, pipe.compiled.network.n_cores
        )
        full_scale = measured.scaled_to(n_neurons=617_567, n_cores=2_605)
        cmp = compare_truenorth_vs_compass(full_scale, X86)
        assert cmp.speedup > 1.0
        assert cmp.energy_improvement > 1e3

    def test_energy_and_timing_from_counters(self):
        pipe = build_saliency_pipeline(8, 8, 4)
        frames = static_pattern(8, 8, "noise", seed=2)[None]
        ins = transduce_video(frames, pipe.pixel_pins, ticks_per_frame=10)
        rec = run_truenorth(pipe.compiled.network, 12, ins)
        energy = EnergyModel().energy_for_run_j(rec.counters)
        max_khz = TimingModel().max_frequency_for_run_khz(rec.counters)
        assert energy > 0
        assert max_khz > 1.0  # tiny network runs far faster than real time


class TestPlacementIntegration:
    def test_connectivity_placement_reduces_run_hops(self):
        # Build a pipeline (stage-local connectivity), run with both
        # placements: the connectivity-aware one must not do worse.
        pipe = build_haar_pipeline(8, 8, 4)
        net = pipe.compiled.network
        frames = static_pattern(8, 8, "noise", seed=1)[None]
        ins = transduce_video(frames, pipe.pixel_pins, ticks_per_frame=10)
        naive = TrueNorthSimulator(net, placement=place_row_major(net))
        naive_rec = naive.run(12, ins)
        aware = TrueNorthSimulator(net, placement=place_connectivity_aware(net))
        aware_rec = aware.run(12, ins)
        assert naive_rec == aware_rec  # function invariant
        assert aware_rec.counters.hops <= naive_rec.counters.hops

    def test_defective_mesh_preserves_function(self):
        from repro.core.builders import poisson_inputs, random_network

        net = random_network(n_cores=9, seed=3)
        ins = poisson_inputs(net, 12, 400.0, seed=1)
        clean = run_truenorth(net, 12, ins, detailed_noc=True)
        # Disable a router in the 3x3 core block's interior: cores sit on
        # it, so pick an unoccupied coordinate by moving cores apart.
        import numpy as np
        from repro.core.chip import ChipGeometry, Placement

        spread = Placement(
            chip_x=np.zeros(9, dtype=np.int64),
            chip_y=np.zeros(9, dtype=np.int64),
            x=(np.arange(9) % 3) * 2,
            y=(np.arange(9) // 3) * 2,
            geometry=ChipGeometry(),
        )
        sim = TrueNorthSimulator(
            net, placement=spread, detailed_noc=True, disabled_routers={(1, 1)}
        )
        rec = sim.run(12, ins)
        assert rec == clean
        # detours make the damaged mesh pay extra hops
        baseline = TrueNorthSimulator(net, placement=spread, detailed_noc=True)
        base_rec = baseline.run(12, ins)
        assert rec.counters.hops >= base_rec.counters.hops
