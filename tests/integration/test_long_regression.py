"""Long-horizon equivalence regressions (scaled Section VI-A).

The paper ran regressions from 10k to 100M time steps with zero spike
mismatches.  CI-scale versions: thousands of ticks across expressions,
with the delay ring buffer wrapping hundreds of times and stochastic
state evolving chaotically.
"""

import pytest

from repro.apps.recurrent import probabilistic_recurrent_network
from repro.compass.fast import run_fast_compass
from repro.compass.simulator import run_compass
from repro.core.builders import poisson_inputs, random_network
from repro.core.kernel import run_kernel
from repro.hardware.simulator import run_truenorth


class TestLongRegressions:
    def test_5000_tick_stochastic_regression(self):
        net = probabilistic_recurrent_network(
            120.0, 8, grid_side=2, neurons_per_core=16,
            coupling="balanced", seed=13,
        )
        a = run_compass(net, 5000, n_ranks=3)
        b = run_truenorth(net, 5000)
        assert a == b
        assert a.n_spikes > 1000  # the network stayed active throughout

    def test_5000_tick_deterministic_regression_fast_compass(self):
        net = random_network(
            n_cores=4, n_axons=16, n_neurons=16, connectivity=0.4, seed=17
        )
        ins = poisson_inputs(net, 5000, 150.0, seed=3)
        a = run_fast_compass(net, 5000, ins)
        b = run_truenorth(net, 5000, ins)
        assert a == b

    @pytest.mark.slow
    def test_kernel_anchored_1000_tick_regression(self):
        # The scalar reference kernel is slow; anchor a shorter horizon.
        net = random_network(
            n_cores=2, n_axons=12, n_neurons=12, stochastic=True, seed=29
        )
        ins = poisson_inputs(net, 1000, 200.0, seed=7)
        ref = run_kernel(net, 1000, ins)
        assert run_compass(net, 1000, ins, n_ranks=2) == ref
        assert run_truenorth(net, 1000, ins) == ref

    def test_delay_buffer_wraps_hundreds_of_times(self):
        # max-delay self-loops cycling through 2000 ticks exercise the
        # 16-slot ring buffer's wraparound 125 times per neuron
        import numpy as np

        from repro.core.inputs import InputSchedule
        from repro.core.network import Core, Network

        core = Core.build(
            n_axons=4, n_neurons=4, crossbar=np.eye(4, dtype=bool),
            threshold=1, target_core=0, target_axon=np.arange(4),
            delay=np.array([13, 14, 15, 11]),
        )
        net = Network(cores=[core], seed=0)
        ins = InputSchedule.from_events([(0, 0, i) for i in range(4)])
        rec = run_truenorth(net, 2000, ins)
        for i, d in enumerate((13, 14, 15, 11)):
            fired = [t for t, c, n in rec.as_tuples() if n == i]
            assert fired == list(range(0, 2000, d))
