"""Every example script must run cleanly end to end.

Examples are the public face of the library; running them in-suite
keeps them from rotting.  Each runs in a subprocess with a generous
timeout and must exit 0 with non-trivial stdout.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name for p in (pathlib.Path(__file__).parents[2] / "examples").glob("*.py")
)

EXPECTED_MARKERS = {
    "quickstart.py": "equivalence",
    "vision_pipeline.py": "saccade sequence",
    "recurrent_characterization.py": "GSOPS/W",
    "multichip_tiling.py": "rat-scale",
    "neovision_detection.py": "precision",
    "motion_and_audio.py": "optical flow",
    "streaming_runtime.py": "real-time factor",
}


class TestExamples:
    def test_all_examples_are_covered(self):
        assert set(EXAMPLES) == set(EXPECTED_MARKERS)

    @pytest.mark.slow
    @pytest.mark.parametrize("script", EXAMPLES)
    def test_example_runs(self, script):
        root = pathlib.Path(__file__).parents[2]
        result = subprocess.run(
            [sys.executable, str(root / "examples" / script)],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert EXPECTED_MARKERS[script] in result.stdout
        assert len(result.stdout) > 200
