"""Property-based bit-identity of the activity-gated tick path.

For ANY randomly generated network, seed, and input schedule, the gated
sparse engines must agree with their dense counterparts on the spike
stream, the final membranes, and every logical event counter — the gate
may only change ``active_neuron_updates``, the measure of work actually
computed.  Hypothesis explores the classification space adversarially:
stochastic synapse/leak/threshold modes, mixed passive/always-active
populations, all-silent stretches, and single-spike ticks.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compass.batched import BatchedCompassSimulator
from repro.compass.compile import compile_network
from repro.compass.fast import FastCompassSimulator
from repro.compass.parallel import ParallelCompassSimulator
from repro.core.builders import poisson_inputs, random_network
from repro.core.inputs import InputSchedule
from repro.core.network import Core, Network

TICKS = 12

LOGICAL = (
    "ticks", "synaptic_events", "spikes", "deliveries", "neuron_updates",
    "hops", "messages", "membrane_saturations", "max_core_events_per_tick",
)


def assert_logical_counters_equal(gated, dense) -> None:
    for name in LOGICAL:
        assert getattr(gated, name) == getattr(dense, name), name
    np.testing.assert_array_equal(
        gated.synaptic_events_per_core, dense.synaptic_events_per_core
    )
    assert dense.active_neuron_updates == dense.neuron_updates
    assert gated.active_neuron_updates <= dense.active_neuron_updates


@st.composite
def small_networks(draw):
    n_cores = draw(st.integers(1, 4))
    size = draw(st.sampled_from([4, 8, 12]))
    stochastic = draw(st.booleans())
    seed = draw(st.integers(0, 2**31))
    connectivity = draw(st.floats(0.1, 0.9))
    return random_network(
        n_cores=n_cores, n_axons=size, n_neurons=size,
        connectivity=connectivity, stochastic=stochastic, seed=seed,
    )


@st.composite
def schedules(draw):
    # rate 0.0 produces the all-silent schedule — the gate's best case —
    # and hypothesis shrinks toward it.
    rate = draw(st.sampled_from([0.0, 100.0, 400.0, 800.0]))
    seed = draw(st.integers(0, 2**31))
    return rate, seed


class TestFastGatedEqualsDense:
    @given(net=small_networks(), sched=schedules())
    @settings(max_examples=30, deadline=None)
    def test_spikes_membranes_counters(self, net, sched):
        rate, seed = sched
        ins = poisson_inputs(net, TICKS, rate, seed=seed) if rate else None
        compiled = compile_network(net)
        g = FastCompassSimulator(compiled, gated=True)
        d = FastCompassSimulator(compiled, gated=False)
        assert g.run(TICKS, ins) == d.run(TICKS, ins)
        np.testing.assert_array_equal(g.v, d.v)
        assert_logical_counters_equal(g.counters, d.counters)

    @given(
        axon=st.integers(0, 3),
        tick=st.integers(0, TICKS - 2),
        net_seed=st.integers(0, 2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_single_spike_tick(self, axon, tick, net_seed):
        # Exactly one external event in the whole run: the gate must
        # wake precisely the touched cone and nothing else diverges.
        net = random_network(
            n_cores=2, n_axons=4, n_neurons=4, connectivity=0.5, seed=net_seed
        )
        ins = InputSchedule.from_events([(tick, 0, axon)])
        compiled = compile_network(net)
        g = FastCompassSimulator(compiled, gated=True)
        d = FastCompassSimulator(compiled, gated=False)
        assert g.run(TICKS, ins) == d.run(TICKS, ins)
        np.testing.assert_array_equal(g.v, d.v)
        assert_logical_counters_equal(g.counters, d.counters)


class TestParallelGatedEqualsDense:
    @given(net=small_networks(), sched=schedules())
    @settings(max_examples=6, deadline=None)
    def test_spikes_and_counters(self, net, sched):
        # (Bounded example count: each example spawns a worker pool.)
        rate, seed = sched
        ins = poisson_inputs(net, TICKS, rate, seed=seed) if rate else None
        compiled = compile_network(net)
        g = ParallelCompassSimulator(compiled, n_workers=2, gated=True)
        d = ParallelCompassSimulator(compiled, n_workers=2, gated=False)
        try:
            rg = g.run(TICKS, ins)
            rd = d.run(TICKS, ins)
        finally:
            g.close()
            d.close()
        assert rg == rd
        assert_logical_counters_equal(g.counters, d.counters)


class TestBatchedGatedEqualsDense:
    @given(
        net=small_networks(),
        sched=schedules(),
        lane_seeds=st.lists(st.integers(0, 2**31), min_size=2, max_size=3),
    )
    @settings(max_examples=12, deadline=None)
    def test_per_lane_identity(self, net, sched, lane_seeds):
        rate, seed = sched
        ins = poisson_inputs(net, TICKS, rate, seed=seed) if rate else None
        compiled = compile_network(net)
        lanes = len(lane_seeds)
        g = BatchedCompassSimulator(compiled, lanes, seeds=lane_seeds, gated=True)
        d = BatchedCompassSimulator(compiled, lanes, seeds=lane_seeds, gated=False)
        rg = g.run(TICKS, ins)
        rd = d.run(TICKS, ins)
        assert rg == rd
        np.testing.assert_array_equal(g.v, d.v)
        for lane in range(lanes):
            assert_logical_counters_equal(
                g.lane_counters(lane), d.lane_counters(lane)
            )
