"""Batched-engine equivalence: every lane IS a standalone sparse run.

The batched engine's contract is exact replica independence: lane ``b``
of a ``B``-lane batch must be *bit-identical* — spikes, every event
counter, and the final membrane snapshot — to a standalone
:class:`~repro.compass.fast.FastCompassSimulator` run of the same
(seed, inputs).  The exhaustive sweep pins the ISSUE matrix
(deterministic and stochastic builtin networks x B in {1, 3, 16});
hypothesis then explores random networks, seeds, and lane counts
adversarially, including mid-flight lane resets.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compass.batched import BatchedCompassSimulator, replica_seeds
from repro.compass.fast import FastCompassSimulator
from repro.core.builders import poisson_inputs, random_network
from repro.core.network import Network
from repro.lint.examples import BUILTIN_NETWORKS

COUNTER_FIELDS = (
    "ticks", "synaptic_events", "spikes", "deliveries", "neuron_updates",
    "messages", "membrane_saturations", "max_core_events_per_tick",
)


def reseeded(net: Network, seed: int) -> Network:
    """The same cores under a different base seed (shares core objects)."""
    return Network(cores=net.cores, seed=seed, name=net.name)


def assert_lane_matches(batched, lane, record, net, seed, n_ticks, inputs):
    """One lane vs a standalone sparse run: spikes, counters, membrane."""
    fast = FastCompassSimulator(reseeded(net, seed))
    ref = fast.run(n_ticks, inputs)
    assert np.array_equal(record.ticks, ref.ticks), f"lane {lane} spike ticks"
    assert np.array_equal(record.cores, ref.cores), f"lane {lane} spike cores"
    assert np.array_equal(record.neurons, ref.neurons), f"lane {lane} neurons"
    for name in COUNTER_FIELDS:
        got = getattr(record.counters, name)
        want = getattr(ref.counters, name)
        assert got == want, f"lane {lane} counter {name}: {got} != {want}"
    assert np.array_equal(
        record.counters.synaptic_events_per_core,
        ref.counters.synaptic_events_per_core,
    ), f"lane {lane} per-core events"
    assert np.array_equal(batched.v[lane], fast.v), f"lane {lane} membrane"


class TestBuiltinMatrix:
    """The ISSUE acceptance matrix, exhaustively."""

    @pytest.mark.parametrize("name", ["recurrent-deterministic",
                                      "recurrent-stochastic"])
    @pytest.mark.parametrize("n_replicas", [1, 3, 16])
    def test_lanes_bit_identical_to_standalone(self, name, n_replicas):
        net = BUILTIN_NETWORKS[name]()
        inputs = poisson_inputs(net, 30, 300.0, seed=7)
        seeds = replica_seeds(net.seed, n_replicas)
        batched = BatchedCompassSimulator(net, n_replicas, seeds=seeds)
        records = batched.run(40, inputs)
        assert len(records) == n_replicas
        for lane in range(n_replicas):
            assert_lane_matches(
                batched, lane, records[lane], net, seeds[lane], 40, inputs
            )

    @pytest.mark.parametrize("name", ["recurrent-deterministic",
                                      "recurrent-stochastic"])
    def test_per_lane_schedules(self, name):
        net = BUILTIN_NETWORKS[name]()
        per_lane = [poisson_inputs(net, 25, 200.0, seed=50 + b) for b in range(3)]
        seeds = replica_seeds(net.seed, 3)
        batched = BatchedCompassSimulator(net, 3, seeds=seeds)
        records = batched.run(30, per_lane)
        for lane in range(3):
            assert_lane_matches(
                batched, lane, records[lane], net, seeds[lane], 30, per_lane[lane]
            )


class TestRandomNetworks:
    @given(
        net_seed=st.integers(0, 2**31),
        stochastic=st.booleans(),
        n_replicas=st.integers(1, 6),
        rate=st.floats(50.0, 600.0),
        in_seed=st.integers(0, 2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_batched_matches_standalone(
        self, net_seed, stochastic, n_replicas, rate, in_seed
    ):
        net = random_network(
            n_cores=3, n_axons=12, n_neurons=12,
            stochastic=stochastic, seed=net_seed,
        )
        inputs = poisson_inputs(net, 15, rate, seed=in_seed)
        seeds = replica_seeds(net.seed, n_replicas)
        batched = BatchedCompassSimulator(net, n_replicas, seeds=seeds)
        records = batched.run(20, inputs)
        for lane in range(n_replicas):
            assert_lane_matches(
                batched, lane, records[lane], net, seeds[lane], 20, inputs
            )

    @given(
        net_seed=st.integers(0, 2**31),
        stochastic=st.booleans(),
        warmup=st.integers(1, 12),
        new_seed=st.integers(0, 2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_reset_lane_restarts_bit_identical(
        self, net_seed, stochastic, warmup, new_seed
    ):
        # A lane reset mid-flight must replay exactly like a fresh
        # standalone simulator — the serving admission invariant —
        # while the untouched lane keeps its own trajectory.
        net = random_network(
            n_cores=2, n_axons=10, n_neurons=10,
            stochastic=stochastic, seed=net_seed,
        )
        inputs = poisson_inputs(net, 15, 400.0, seed=3)
        batched = BatchedCompassSimulator(net, 2, seeds=replica_seeds(net.seed, 2))
        batched.run(warmup, inputs)
        batched.reset_lane(1, seed=new_seed, inputs=inputs)
        records = batched.run(18)
        assert_lane_matches(batched, 1, records[1], net, new_seed, 18, inputs)
