"""Property-based tests on corelet composition semantics.

Random chains of relays, splitters, and delay stages must obey exact
latency arithmetic and preserve spike content — the algebra application
authors rely on when composing pipelines.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compass.simulator import run_compass
from repro.core.inputs import InputSchedule
from repro.corelets.corelet import Composition
from repro.corelets.library.basic import relay, splitter
from repro.corelets.library.temporal import delay_chain
from repro.hardware.simulator import run_truenorth


def build_chain(stage_delays, width=4, seed=0):
    """Chain of relay/delay stages; returns (compiled, total latency)."""
    comp = Composition(name="chain", seed=seed)
    stages = [
        delay_chain(width, d, name=f"stage{i}") for i, d in enumerate(stage_delays)
    ]
    for a, b in zip(stages[:-1], stages[1:]):
        comp.connect(a.outputs["out"], b.inputs["in"], delay=1)
    comp.export_input("in", stages[0].inputs["in"])
    comp.export_output("out", stages[-1].outputs["out"])
    # latency: each stage adds its extra delay; each inter-stage wire adds 1
    latency = sum(stage_delays) + (len(stage_delays) - 1)
    return comp.compile(), latency


class TestChainLatency:
    @given(
        stage_delays=st.lists(st.integers(0, 20), min_size=1, max_size=4),
        line=st.integers(0, 3),
        start=st.integers(0, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_exact_end_to_end_latency(self, stage_delays, line, start):
        compiled, latency = build_chain(stage_delays)
        ins = InputSchedule()
        pin = compiled.inputs["in"][line]
        ins.add(start, pin.core, pin.index)
        horizon = start + latency + 2
        rec = run_truenorth(compiled.network, horizon, ins)
        out = {(p.core, p.index): i for i, p in enumerate(compiled.outputs["out"])}
        hits = [(t, out[(c, n)]) for t, c, n in rec.as_tuples() if (c, n) in out]
        assert hits == [(start + latency, line)]

    @given(
        stage_delays=st.lists(st.integers(0, 10), min_size=1, max_size=3),
        events=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 3)),
            min_size=1, max_size=8, unique=True,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_chain_preserves_spike_content(self, stage_delays, events):
        # every injected (tick, line) appears at the output shifted by the
        # chain latency, and nothing else appears
        compiled, latency = build_chain(stage_delays)
        ins = InputSchedule()
        pins = compiled.inputs["in"]
        for t, line in events:
            ins.add(t, pins[line].core, pins[line].index)
        horizon = max(t for t, _ in events) + latency + 2
        rec = run_truenorth(compiled.network, horizon, ins)
        out = {(p.core, p.index): i for i, p in enumerate(compiled.outputs["out"])}
        hits = sorted(
            (t, out[(c, n)]) for t, c, n in rec.as_tuples() if (c, n) in out
        )
        assert hits == sorted((t + latency, line) for t, line in events)


class TestSplitterAlgebra:
    @given(
        ways=st.integers(1, 6),
        n=st.integers(1, 12),
        line=st.integers(0, 11),
    )
    @settings(max_examples=30, deadline=None)
    def test_split_copies_are_identical(self, ways, n, line):
        if line >= n:
            return
        comp = Composition(seed=1)
        sp = splitter(n, ways)
        comp.add(sp)
        comp.export_input("in", sp.inputs["in"])
        for w in range(ways):
            comp.export_output(f"out{w}", sp.outputs[f"out{w}"])
        compiled = comp.compile()
        ins = InputSchedule()
        pin = compiled.inputs["in"][line]
        ins.add(0, pin.core, pin.index)
        rec = run_truenorth(compiled.network, 2, ins)
        for w in range(ways):
            p = compiled.outputs[f"out{w}"][line]
            assert (0, p.core, p.index) in rec.as_tuples()
        assert rec.n_spikes == ways

    @given(depth=st.integers(1, 4), seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_relay_towers_equivalent_across_expressions(self, depth, seed):
        comp = Composition(seed=seed)
        stages = [relay(4, name=f"r{i}") for i in range(depth)]
        for a, b in zip(stages[:-1], stages[1:]):
            comp.connect(a.outputs["out"], b.inputs["in"])
        comp.export_input("in", stages[0].inputs["in"])
        comp.export_output("out", stages[-1].outputs["out"])
        compiled = comp.compile()
        rng = np.random.default_rng(seed)
        ins = InputSchedule()
        pins = compiled.inputs["in"]
        for t in range(6):
            for line in range(4):
                if rng.random() < 0.5:
                    ins.add(t, pins[line].core, pins[line].index)
        horizon = 6 + depth + 1
        assert run_truenorth(compiled.network, horizon, ins) == run_compass(
            compiled.network, horizon, ins, n_ranks=2
        )
