"""Property-based round-trip tests for the I/O and configuration layers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.builders import poisson_inputs, random_network
from repro.hardware.config import config_stream, decode_core, encode_core, parse_config_stream
from repro.io.aer import AERStream, decode_aer, encode_aer
from repro.io.checkpoint import restore_simulator, snapshot_simulator
from repro.core.record import SpikeRecord
from repro.hardware.simulator import TrueNorthSimulator


@st.composite
def aer_events(draw):
    n = draw(st.integers(0, 50))
    return [
        (
            draw(st.integers(0, 10_000)),
            draw(st.integers(0, 4_095)),
            draw(st.integers(0, 255)),
        )
        for _ in range(n)
    ]


class TestAERProperties:
    @given(events=aer_events())
    @settings(max_examples=40, deadline=None)
    def test_encode_decode_roundtrip(self, events):
        stream = AERStream.from_events(events)
        assert decode_aer(encode_aer(stream)) == stream

    @given(events=aer_events(), start=st.integers(0, 5000), span=st.integers(1, 5000))
    @settings(max_examples=40, deadline=None)
    def test_window_partition(self, events, start, span):
        stream = AERStream.from_events(events)
        inside = stream.window(start, start + span)
        before = stream.window(0, start)
        after = stream.window(start + span, 10_001)
        assert inside.n_events + before.n_events + after.n_events == stream.n_events

    @given(events=aer_events(), dt=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_shift_preserves_structure(self, events, dt):
        stream = AERStream.from_events(events)
        shifted = stream.shifted(dt)
        assert shifted.n_events == stream.n_events
        if stream.n_events:
            assert np.array_equal(shifted.ticks - dt, stream.ticks)


class TestConfigProperties:
    @given(
        seed=st.integers(0, 2**31),
        size=st.sampled_from([4, 8, 16]),
        stochastic=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_core_roundtrip(self, seed, size, stochastic):
        net = random_network(
            n_cores=1, n_axons=size, n_neurons=size, stochastic=stochastic, seed=seed
        )
        core = net.cores[0]
        decoded = decode_core(encode_core(core))
        from dataclasses import fields

        for f in fields(core):
            if f.name == "name":
                continue
            assert np.array_equal(getattr(core, f.name), getattr(decoded, f.name))

    @given(seed=st.integers(0, 2**31), n_cores=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_stream_roundtrip(self, seed, n_cores):
        net = random_network(n_cores=n_cores, n_axons=6, n_neurons=6, seed=seed)
        cores = parse_config_stream(config_stream(net.cores))
        assert len(cores) == n_cores
        for a, b in zip(net.cores, cores):
            assert np.array_equal(a.crossbar, b.crossbar)
            assert np.array_equal(a.weights, b.weights)


class TestCheckpointProperties:
    @given(
        seed=st.integers(0, 2**31),
        split=st.integers(1, 19),
    )
    @settings(max_examples=15, deadline=None)
    def test_resume_bit_exact_at_any_split(self, seed, split):
        net = random_network(n_cores=2, n_axons=8, n_neurons=8,
                             stochastic=True, seed=seed)
        ins = poisson_inputs(net, 20, 400.0, seed=seed + 1)

        full = TrueNorthSimulator(net)
        full.load_inputs(ins)
        full_events = []
        for _ in range(20):
            full_events.extend(full.step())

        part = TrueNorthSimulator(net)
        part.load_inputs(ins)
        events = []
        for _ in range(split):
            events.extend(part.step())
        ckpt = snapshot_simulator(part)
        resumed = TrueNorthSimulator(net)
        restore_simulator(resumed, ckpt)
        for _ in range(20 - split):
            events.extend(resumed.step())

        assert SpikeRecord.from_events(events) == SpikeRecord.from_events(full_events)
