"""Property-based tests on core data structures and models."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import params, prng
from repro.core.chip import ChipGeometry, Placement
from repro.core.network import Core
from repro.core.neuron import clamp_membrane, neuron_tick
from repro.core.workload import WorkloadDescriptor
from repro.hardware.energy import EnergyModel
from repro.hardware.timing import TimingModel
from repro.noc.mesh import MeshNetwork


class TestPRNGProperties:
    @given(
        seed=st.integers(0, 2**63), purpose=st.integers(0, 2**31),
        core=st.integers(0, 2**20), tick=st.integers(0, 2**20),
    )
    @settings(max_examples=50, deadline=None)
    def test_range_and_determinism(self, seed, purpose, core, tick):
        units = np.arange(64)
        a = prng.draw_u8(seed, purpose, core, tick, units)
        b = prng.draw_u8(seed, purpose, core, tick, units)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() <= 255

    @given(st.integers(0, 2**62))
    @settings(max_examples=50, deadline=None)
    def test_u16_contains_u8_range(self, seed):
        d = prng.draw_u16(seed, 1, 2, 3, np.arange(32))
        assert d.min() >= 0 and d.max() <= 65535


class TestMembraneProperties:
    @given(st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_clamp_always_in_range(self, values):
        v = clamp_membrane(np.asarray(values, dtype=np.int64))
        assert v.min() >= params.MEMBRANE_MIN
        assert v.max() <= params.MEMBRANE_MAX

    @given(
        syn=st.lists(st.integers(-(2**30), 2**30), min_size=4, max_size=4),
        threshold=st.integers(1, 1000),
        leak=st.integers(-64, 63),
        reset_mode=st.integers(0, 2),
        tick=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_membrane_stays_bounded(self, syn, threshold, leak, reset_mode, tick):
        core = Core.build(
            n_axons=4, n_neurons=4, threshold=threshold, leak=leak,
            reset_mode=reset_mode, neg_threshold=100,
        )
        v, spiked = neuron_tick(
            core, np.zeros(4, dtype=np.int64), np.asarray(syn, dtype=np.int64), 0, tick, 0
        )
        assert v.min() >= params.MEMBRANE_MIN and v.max() <= params.MEMBRANE_MAX
        assert spiked.dtype == bool


class TestMeshProperties:
    @given(
        src=st.tuples(st.integers(0, 15), st.integers(0, 15)),
        dst=st.tuples(st.integers(0, 15), st.integers(0, 15)),
    )
    @settings(max_examples=60, deadline=None)
    def test_route_reaches_destination_with_manhattan_hops(self, src, dst):
        mesh = MeshNetwork(16, 16)
        path = mesh.route(src, dst)
        assert path[0] == src and path[-1] == dst
        manhattan = abs(dst[0] - src[0]) + abs(dst[1] - src[1])
        assert len(path) - 1 == manhattan
        # each step moves exactly one hop
        for a, b in zip(path[:-1], path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    @given(
        src=st.tuples(st.integers(0, 9), st.integers(0, 9)),
        dst=st.tuples(st.integers(0, 9), st.integers(0, 9)),
        defect=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    )
    @settings(max_examples=60, deadline=None)
    def test_defect_detour_properties(self, src, dst, defect):
        if defect in (src, dst):
            return
        mesh = MeshNetwork(10, 10)
        mesh.disable(*defect)
        path = mesh.route(src, dst)
        assert defect not in path
        assert path[-1] == dst
        manhattan = abs(dst[0] - src[0]) + abs(dst[1] - src[1])
        assert len(path) - 1 in (manhattan, manhattan + 2)


class TestPlacementProperties:
    @given(n=st.integers(1, 200), side_x=st.integers(2, 16), side_y=st.integers(2, 16))
    @settings(max_examples=40, deadline=None)
    def test_grid_placement_unique_slots(self, n, side_x, side_y):
        p = Placement.grid(n, ChipGeometry(cores_x=side_x, cores_y=side_y))
        assert p.n_cores == n
        slots = set(
            zip(p.chip_x.tolist(), p.chip_y.tolist(), p.x.tolist(), p.y.tolist())
        )
        assert len(slots) == n

    @given(
        n=st.integers(2, 50),
        a=st.integers(0, 49), b=st.integers(0, 49),
    )
    @settings(max_examples=40, deadline=None)
    def test_hops_triangle_inequality(self, n, a, b):
        if a >= n or b >= n:
            return
        p = Placement.grid(n, ChipGeometry(cores_x=8, cores_y=8))
        for mid in range(0, n, max(1, n // 5)):
            assert p.hops_between(a, b) <= p.hops_between(a, mid) + p.hops_between(mid, b)


class TestModelProperties:
    @given(
        rate=st.floats(0.0, 200.0), syn=st.floats(0.0, 256.0),
        v=st.floats(0.70, 1.05),
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_positive_and_monotone_in_frequency(self, rate, syn, v):
        m = EnergyModel(voltage=v)
        slow = m.energy_per_tick_for_workload(rate, syn, tick_frequency_hz=1000.0)
        fast = m.energy_per_tick_for_workload(rate, syn, tick_frequency_hz=5000.0)
        assert 0 < fast <= slow  # passive amortization

    @given(rate=st.floats(0.0, 200.0), syn=st.floats(0.0, 256.0), v=st.floats(0.70, 1.05))
    @settings(max_examples=60, deadline=None)
    def test_timing_positive(self, rate, syn, v):
        t = TimingModel(voltage=v)
        f = t.max_frequency_for_workload_khz(rate, syn)
        assert f > 0

    @given(
        neurons=st.integers(1, 2**20), cores=st.integers(1, 4096),
        rate=st.floats(0.0, 200.0), syn=st.floats(0.0, 256.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_workload_sops_consistency(self, neurons, cores, rate, syn):
        w = WorkloadDescriptor("w", neurons, cores, rate, syn)
        assert w.sops == (w.syn_events_per_tick * 1000.0) or abs(
            w.sops - w.syn_events_per_tick * 1000.0
        ) < 1e-6 * max(1.0, w.sops)
