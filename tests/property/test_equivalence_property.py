"""Property-based equivalence: the paper's Section VI-A as a hypothesis test.

For ANY randomly generated network, input schedule, and seed, the three
kernel expressions must agree spike-for-spike.  This is the strongest
invariant in the repository: hypothesis explores the configuration space
(stochastic modes, rank counts, delays) adversarially.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compass.simulator import run_compass
from repro.core import params
from repro.core.builders import poisson_inputs, random_network
from repro.core.inputs import InputSchedule
from repro.core.kernel import run_kernel
from repro.core.network import Core, Network
from repro.hardware.simulator import run_truenorth


@st.composite
def small_networks(draw):
    n_cores = draw(st.integers(1, 4))
    size = draw(st.sampled_from([4, 8, 12]))
    stochastic = draw(st.booleans())
    seed = draw(st.integers(0, 2**31))
    connectivity = draw(st.floats(0.1, 0.9))
    return random_network(
        n_cores=n_cores, n_axons=size, n_neurons=size,
        connectivity=connectivity, stochastic=stochastic, seed=seed,
    )


@st.composite
def schedules(draw):
    rate = draw(st.floats(50.0, 800.0))
    seed = draw(st.integers(0, 2**31))
    return rate, seed


class TestExpressionEquivalence:
    @given(net=small_networks(), sched=schedules(), n_ranks=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_compass_matches_kernel(self, net, sched, n_ranks):
        rate, seed = sched
        ins = poisson_inputs(net, 15, rate, seed=seed)
        ref = run_kernel(net, 15, ins)
        got = run_compass(net, 15, ins, n_ranks=n_ranks)
        assert got.first_mismatch(ref) is None

    @given(net=small_networks(), sched=schedules())
    @settings(max_examples=25, deadline=None)
    def test_truenorth_matches_kernel(self, net, sched):
        rate, seed = sched
        ins = poisson_inputs(net, 15, rate, seed=seed)
        ref = run_kernel(net, 15, ins)
        got = run_truenorth(net, 15, ins)
        assert got.first_mismatch(ref) is None

    @given(
        n_cores=st.integers(1, 4),
        size=st.sampled_from([4, 8, 12]),
        connectivity=st.floats(0.1, 0.9),
        stochastic=st.booleans(),
        net_seed=st.integers(0, 2**31),
        sched=schedules(),
    )
    @settings(max_examples=25, deadline=None)
    def test_fast_compass_matches_kernel(
        self, n_cores, size, connectivity, stochastic, net_seed, sched
    ):
        from repro.compass.fast import run_fast_compass

        net = random_network(
            n_cores=n_cores, n_axons=size, n_neurons=size,
            connectivity=connectivity, stochastic=stochastic, seed=net_seed,
        )
        rate, seed = sched
        ins = poisson_inputs(net, 15, rate, seed=seed)
        ref = run_kernel(net, 15, ins)
        got = run_fast_compass(net, 15, ins)
        assert got.first_mismatch(ref) is None

    @given(net=small_networks(), sched=schedules())
    @settings(max_examples=25, deadline=None)
    def test_sparse_engine_three_way_stochastic(self, net, sched):
        # FastCompass ≡ ReferenceKernel ≡ CompassSimulator spike-for-spike
        # on networks exercising stochastic synapse, stochastic leak and
        # masked-threshold modes (small_networks draws all of them), with
        # randomized seeds and per-neuron delays.
        from repro.compass.engine import select_engine
        from repro.compass.fast import FastCompassSimulator, run_fast_compass

        rate, seed = sched
        ins = poisson_inputs(net, 15, rate, seed=seed)
        ref = run_kernel(net, 15, ins)
        fast = run_fast_compass(net, 15, ins)
        std = run_compass(net, 15, ins)
        assert fast.first_mismatch(ref) is None
        assert std.first_mismatch(fast) is None
        # The auto selector routes every network — stochastic included —
        # to the sparse path.
        assert isinstance(select_engine(net, "auto"), FastCompassSimulator)

    @given(net=small_networks(), sched=schedules(), n_workers=st.sampled_from([2, 3]))
    @settings(max_examples=8, deadline=None)
    def test_parallel_engine_three_way(self, net, sched, n_workers):
        # ParallelCompass ≡ FastCompass ≡ ReferenceKernel spike-for-spike:
        # the shared-memory partitioned expression observes the same
        # counter-based PRNG streams as the whole-network engines.
        # (Bounded example count: each example spawns a worker pool.)
        from repro.compass.fast import run_fast_compass
        from repro.compass.parallel import run_parallel_compass

        rate, seed = sched
        ins = poisson_inputs(net, 12, rate, seed=seed)
        ref = run_kernel(net, 12, ins)
        fast = run_fast_compass(net, 12, ins)
        par = run_parallel_compass(net, 12, ins, n_workers=n_workers)
        assert fast.first_mismatch(ref) is None
        assert par.first_mismatch(fast) is None
        assert par == ref

    @given(
        net=small_networks(),
        sched=schedules(),
        strategies=st.lists(
            st.sampled_from(["block", "round_robin", "load_balanced"]),
            min_size=2, max_size=2, unique=True,
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_partition_invariance(self, net, sched, strategies):
        rate, seed = sched
        ins = poisson_inputs(net, 12, rate, seed=seed)
        a = run_compass(net, 12, ins, n_ranks=2, partition_strategy=strategies[0])
        b = run_compass(net, 12, ins, n_ranks=3, partition_strategy=strategies[1])
        assert a == b


class TestKernelInvariants:
    @given(net=small_networks(), sched=schedules())
    @settings(max_examples=20, deadline=None)
    def test_counters_consistent(self, net, sched):
        rate, seed = sched
        ins = poisson_inputs(net, 10, rate, seed=seed)
        rec = run_kernel(net, 10, ins)
        c = rec.counters
        assert c.spikes == rec.n_spikes
        assert c.neuron_updates == net.n_neurons * 10
        assert c.synaptic_events_per_core.sum() == c.synaptic_events
        assert c.max_core_events_per_tick <= c.synaptic_events or c.synaptic_events == 0

    @given(net=small_networks(), sched=schedules())
    @settings(max_examples=20, deadline=None)
    def test_delays_honored(self, net, sched):
        # No spike can cause another spike in the same tick: delivery is
        # always at least one tick later (MIN_DELAY = 1).
        rate, seed = sched
        ins = poisson_inputs(net, 10, rate, seed=seed)
        rec = run_kernel(net, 10, ins)
        assert params.MIN_DELAY >= 1
        assert rec.ticks.size == 0 or rec.ticks.max() <= 9

    @given(
        delay=st.integers(params.MIN_DELAY, params.MAX_DELAY),
        axon=st.integers(0, 3),
    )
    @settings(max_examples=20, deadline=None)
    def test_delay_exactness(self, delay, axon):
        # A self-recurrent neuron with delay d re-fires exactly every d ticks.
        n = 4
        core = Core.build(
            n_axons=n, n_neurons=n, crossbar=np.eye(n, dtype=bool),
            threshold=1, target_core=0, target_axon=np.arange(n), delay=delay,
        )
        net = Network(cores=[core], seed=0)
        ins = InputSchedule.from_events([(0, 0, axon)])
        horizon = 3 * delay + 1
        rec = run_kernel(net, horizon, ins)
        fired = [t for t, c, nn in rec.as_tuples() if nn == axon]
        assert fired == [0, delay, 2 * delay, 3 * delay]
