"""Property-based bit-exact resume: snapshot at ANY tick, on ANY engine.

For every builtin network and any randomly generated one — deterministic
and stochastic, gated and dense — a checkpoint captured at a random
mid-run tick must restore to a simulator whose remaining run is
bit-identical to the uninterrupted run: same spikes, same membranes,
same counters.  The cross-engine matrix is the centerpiece: a checkpoint
is engine-agnostic, so fast -> reference, fast -> batched lane, and
batched lane -> fast must all resume bit-exactly too.
"""

from __future__ import annotations

from dataclasses import fields

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compass.batched import BatchedCompassSimulator
from repro.compass.compile import compile_network
from repro.compass.fast import FastCompassSimulator
from repro.compass.parallel import ParallelCompassSimulator
from repro.compass.simulator import CompassSimulator
from repro.core.builders import poisson_inputs, random_network
from repro.core.record import SpikeRecord
from repro.io.checkpoint import EngineCheckpoint
from repro.lint.examples import BUILTIN_NETWORKS

TICKS = 14

LOGICAL = (
    "ticks", "synaptic_events", "spikes", "deliveries", "neuron_updates",
    "membrane_saturations", "max_core_events_per_tick",
)


def assert_counters_equal(got, want, logical_only=False) -> None:
    names = LOGICAL if logical_only else tuple(
        f.name for f in fields(want) if f.name != "synaptic_events_per_core"
    )
    for name in names:
        assert getattr(got, name) == getattr(want, name), name
    np.testing.assert_array_equal(
        got.synaptic_events_per_core, want.synaptic_events_per_core
    )


def drive(sim, n_ticks):
    events = []
    step_arrays = getattr(sim, "step_arrays", None)
    for _ in range(n_ticks):
        if step_arrays is not None:
            tick, cores, neurons = step_arrays()
            events.extend(
                (tick, int(cc), int(nn)) for cc, nn in zip(cores, neurons)
            )
        else:
            events.extend(sim.step())
    return events


@st.composite
def small_networks(draw):
    n_cores = draw(st.integers(1, 4))
    size = draw(st.sampled_from([4, 8, 12]))
    stochastic = draw(st.booleans())
    seed = draw(st.integers(0, 2**31))
    connectivity = draw(st.floats(0.1, 0.9))
    return random_network(
        n_cores=n_cores, n_axons=size, n_neurons=size,
        connectivity=connectivity, stochastic=stochastic, seed=seed,
    )


@st.composite
def schedules(draw):
    # rate 0.0 -> no external inputs: resume must survive silence too.
    rate = draw(st.sampled_from([0.0, 200.0, 600.0]))
    seed = draw(st.integers(0, 2**31))
    return rate, seed


class TestFastResumeProperty:
    @given(
        name=st.sampled_from(sorted(BUILTIN_NETWORKS)),
        split=st.integers(1, TICKS - 1),
        sched=schedules(),
        gated=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_builtin_networks_resume_bit_exact(self, name, split, sched, gated):
        # Every builtin network — deterministic and stochastic, vision
        # pipelines included — resumes bit-exactly from any split tick.
        net = BUILTIN_NETWORKS[name]()
        rate, seed = sched
        ins = poisson_inputs(net, TICKS, rate, seed=seed) if rate else None
        compiled = compile_network(net)

        full = FastCompassSimulator(compiled, gated=gated)
        full.load_inputs(ins)
        full_events = drive(full, TICKS)

        first = FastCompassSimulator(compiled, gated=gated)
        first.load_inputs(ins)
        head = drive(first, split)
        ckpt = EngineCheckpoint.from_bytes(first.snapshot().to_bytes())

        resumed = FastCompassSimulator(compiled, gated=gated)
        resumed.restore(ckpt)
        tail = drive(resumed, TICKS - split)

        assert SpikeRecord.from_events(head + tail) == SpikeRecord.from_events(
            full_events
        )
        np.testing.assert_array_equal(resumed.v, full.v)
        assert_counters_equal(resumed.counters, full.counters)

    @given(net=small_networks(), split=st.integers(1, TICKS - 1),
           sched=schedules())
    @settings(max_examples=30, deadline=None)
    def test_random_networks_resume_bit_exact(self, net, split, sched):
        rate, seed = sched
        ins = poisson_inputs(net, TICKS, rate, seed=seed) if rate else None
        compiled = compile_network(net)

        full = FastCompassSimulator(compiled)
        full.load_inputs(ins)
        full_events = drive(full, TICKS)

        first = FastCompassSimulator(compiled)
        first.load_inputs(ins)
        head = drive(first, split)
        ckpt = first.snapshot()

        resumed = FastCompassSimulator(compiled)
        resumed.restore(ckpt)
        tail = drive(resumed, TICKS - split)

        assert SpikeRecord.from_events(head + tail) == SpikeRecord.from_events(
            full_events
        )
        np.testing.assert_array_equal(resumed.v, full.v)
        assert_counters_equal(resumed.counters, full.counters)


class TestCrossEngineMatrixProperty:
    @given(net=small_networks(), split=st.integers(1, TICKS - 1),
           sched=schedules())
    @settings(max_examples=15, deadline=None)
    def test_fast_to_reference_and_batched(self, net, split, sched):
        # One checkpoint, three engines: the snapshot taken on the fast
        # engine resumes bit-exactly on the reference simulator AND on
        # a batched lane — and a batched lane's snapshot resumes on the
        # fast engine.
        rate, seed = sched
        ins = poisson_inputs(net, TICKS, rate, seed=seed) if rate else None
        compiled = compile_network(net)

        full = FastCompassSimulator(compiled)
        full.load_inputs(ins)
        full_events = drive(full, TICKS)
        full_rec = SpikeRecord.from_events(full_events)

        first = FastCompassSimulator(compiled)
        first.load_inputs(ins)
        head = drive(first, split)
        ckpt = first.snapshot()

        ref = CompassSimulator(net)
        ref.restore(ckpt)
        tail = drive(ref, TICKS - split)
        assert SpikeRecord.from_events(head + tail) == full_rec
        assert_counters_equal(ref.counters, full.counters, logical_only=True)

        batched = BatchedCompassSimulator(compiled, 2)
        batched.restore_lane(1, ckpt)
        tail = []
        for _ in range(TICKS - split):
            tail.extend(
                (t, c, nn) for b, t, c, nn in batched.step() if b == 1
            )
        assert SpikeRecord.from_events(head + tail) == full_rec
        np.testing.assert_array_equal(batched.v[1], full.v)
        assert_counters_equal(
            batched.lane_counters(1), full.counters, logical_only=True
        )

        # ...and back: the end-of-run lane snapshot restores onto the
        # fast engine with the full run's membranes and tick.
        back = FastCompassSimulator(compiled)
        back.restore(batched.snapshot_lane(1))
        assert back.tick == TICKS
        np.testing.assert_array_equal(back.v, full.v)

    @given(net=small_networks(), split=st.integers(1, TICKS - 1),
           sched=schedules(), n_workers=st.sampled_from([2, 3]))
    @settings(max_examples=5, deadline=None)
    def test_parallel_matrix(self, net, split, sched, n_workers):
        # (Bounded example count: each example spawns worker pools.)
        rate, seed = sched
        ins = poisson_inputs(net, TICKS, rate, seed=seed) if rate else None
        compiled = compile_network(net)

        full = FastCompassSimulator(compiled)
        full.load_inputs(ins)
        full_events = drive(full, TICKS)
        full_rec = SpikeRecord.from_events(full_events)

        par = ParallelCompassSimulator(net, n_workers=n_workers)
        try:
            par.load_inputs(ins)
            head = drive(par, split)
            ckpt = par.snapshot()
        finally:
            par.close()

        fast = FastCompassSimulator(compiled)
        fast.restore(ckpt)
        tail = drive(fast, TICKS - split)
        assert SpikeRecord.from_events(head + tail) == full_rec
        np.testing.assert_array_equal(fast.v, full.v)

        par2 = ParallelCompassSimulator(net, n_workers=n_workers)
        try:
            par2.restore(ckpt)
            tail2 = drive(par2, TICKS - split)
        finally:
            par2.close()
        assert SpikeRecord.from_events(head + tail2) == full_rec
