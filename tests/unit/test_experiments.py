"""Tests for the experiment drivers (repro.experiments).

Each test asserts the *shape* properties the paper reports: who wins,
by roughly what factor, where the extremes sit.
"""

import pytest

from repro.experiments import equivalence, fig5, fig6, fig7, fig8, future_systems


class TestFig5:
    def test_fig5a_gsops_grows_with_both_axes(self):
        g = fig5.fig5a_gsops(n=5)
        assert g.monotone_rows() and g.monotone_cols()
        assert g.corner(True, True) == pytest.approx(200 * 256 * 2**20 / 1e9)

    def test_fig5b_frequency_decreases_with_load(self):
        g = fig5.fig5b_max_frequency(n=5)
        assert g.monotone_rows(increasing=False)
        assert g.monotone_cols(increasing=False)
        assert 6.0 <= g.corner(False, False) <= 7.0  # light-load ceiling
        assert 1.0 <= g.corner(True, True) <= 4.0  # heavy corner slows down

    def test_fig5c_frequency_increases_with_voltage(self):
        g = fig5.fig5c_frequency_vs_voltage(n=5)
        assert g.monotone_rows(increasing=True)  # rows are voltages
        assert g.monotone_cols(increasing=False)

    def test_fig5d_energy_monotone(self):
        g = fig5.fig5d_energy_per_tick(n=5)
        assert g.monotone_rows() and g.monotone_cols()
        # light corner: passive + neuron floor ~ 53 uJ
        assert 40 <= g.corner(False, False) <= 60

    def test_fig5e_efficiency_peaks_upper_right(self):
        g = fig5.fig5e_efficiency(n=5)
        assert g.values.argmax() == g.values.size - 1
        assert g.corner(True, True) > 400  # paper: exceeds 400 GSOPS/W

    def test_fig5f_efficiency_drops_with_voltage(self):
        g = fig5.fig5f_efficiency_vs_voltage(n=5)
        assert g.monotone_rows(increasing=False)  # rows are voltages

    def test_headline_points(self):
        h = fig5.headline_points()
        assert 50 <= h["power_mw_20hz_128syn"] <= 70  # paper: 65 mW
        assert 43 <= h["gsops_per_watt_real_time"] <= 50  # paper: 46
        assert 76 <= h["gsops_per_watt_5x"] <= 86  # paper: 81
        assert h["gsops_per_watt_200hz_256syn"] > 400
        assert h["power_density_mw_per_cm2"] < 50  # paper: ~20 mW/cm^2

    def test_empirical_validation_agrees_with_model(self):
        result = fig5.empirical_validation(
            rate_hz=100.0, active_synapses=8, grid_side=3,
            neurons_per_core=32, n_ticks=150,
        )
        assert result["measured_syn_events_per_tick"] == pytest.approx(
            result["analytic_syn_events_per_tick"], rel=0.15
        )
        assert result["measured_rate_hz"] == pytest.approx(
            result["target_rate_hz"], rel=0.15
        )
        assert result["measured_energy_per_tick_j"] > 0


class TestFig6:
    def test_panel_bands(self):
        s = fig6.fig6_summary()
        # (a) ~1 order vs BG/Q
        assert 1.0 <= s["speedup_bgq"]["orders_min"] <= 2.0
        # (b,d) ~5 orders energy
        assert 5.0 <= s["energy_bgq"]["orders_min"] <= 6.0
        assert 5.0 <= s["energy_x86"]["orders_min"] <= 6.0
        # (c) 2-3 orders vs x86
        assert 1.5 <= s["speedup_x86"]["orders_min"]
        assert s["speedup_x86"]["orders_max"] <= 3.2

    def test_speedup_grows_with_load(self):
        g = fig6.fig6c_speedup_vs_x86()
        assert g.monotone_rows() and g.monotone_cols()


class TestFig7:
    def test_points_cover_all_apps_and_platforms(self):
        points = fig7.fig7_points()
        assert len(points) == 10
        assert {p.platform for p in points} == {"BG/Q", "x86"}

    def test_energy_improvement_over_1e5(self):
        # Paper: "TrueNorth uses over five orders of magnitude less
        # energy per time step than Compass" on all five apps.
        bars = fig7.fig7b_energy_bars()
        assert min(bars.values()) > 1e5

    def test_speedup_orders(self):
        s = fig7.fig7_summary()
        assert s["bgq_speedup_range"][0] >= 5  # ~1 order vs BG/Q
        assert s["x86_speedup_range"][0] >= 20  # ~2 orders vs x86

    def test_power_improvement_orders(self):
        # "consumes four and three orders of magnitude less power"
        s = fig7.fig7_summary()
        assert 1e4 <= s["bgq_power_range"][0]
        assert 1e3 <= s["x86_power_range"][0] <= 1e4


class TestFig8:
    def test_best_point_about_12x_slower(self):
        s = fig8.fig8_summary()
        assert 8 <= s["best_slowdown_vs_real_time"] <= 16
        assert s["best_hosts"] == 32 and s["best_threads"] == 64

    def test_single_host_most_efficient(self):
        s = fig8.fig8_summary()
        assert s["most_efficient_hosts"] == 1

    def test_x86_reference_present(self):
        points = fig8.fig8_x86_points()
        assert [p.threads for p in points] == [4, 6, 8, 12]


class TestEquivalence:
    def test_single_core_regressions_all_match(self):
        report = equivalence.single_core_regressions(n_networks=4, n_ticks=20)
        assert report.all_matched
        # three records compared per network: compass, fast (sparse), truenorth
        assert report.n_regressions == 12
        assert report.total_spikes_compared > 0

    def test_multi_core_regressions_all_match(self):
        report = equivalence.multi_core_regressions(n_networks=2, n_ticks=25)
        assert report.all_matched

    def test_recurrent_regressions_all_match(self):
        report = equivalence.recurrent_network_regressions(n_ticks=40)
        assert report.all_matched

    def test_wall_clock_projection(self):
        wc = equivalence.regression_wall_clock()
        assert wc["truenorth_hours"] == pytest.approx(27.8, abs=0.2)
        assert 55 <= wc["x86_legacy_days"] <= 95  # paper: 74 days


class TestFutureSystems:
    def test_board_capacity(self):
        board = future_systems.BoardModel()
        assert board.n_neurons == 16 * 2**20
        assert board.n_synapses == 4 * 2**30

    def test_board_power_matches_measurement(self):
        # Paper: 7.2 W total = 2.5 W array + 4.7 W support.
        board = future_systems.BoardModel()
        assert board.array_power_w() == pytest.approx(2.5, rel=0.25)
        assert board.total_power_w() == pytest.approx(7.2, rel=0.15)

    def test_rat_scale_ratio(self):
        assert future_systems.rat_scale_energy_ratio() == pytest.approx(6400, rel=0.01)

    def test_human1pct_ratio(self):
        assert future_systems.human1pct_energy_ratio() == pytest.approx(128_000, rel=0.01)

    def test_human_scale_100_trillion_synapses(self):
        h = future_systems.human_scale_system()
        assert h["n_synapses"] >= 1e14  # "100 trillion synapses"
        assert h["power_w"] == 96 * 4000

    def test_tier_table(self):
        rows = future_systems.tier_table()
        assert any(r["tier"] == "rack" and r["chips"] == 4096 for r in rows)
        # every tier beats 1e6 synapses/W by far
        assert all(r["synapses_per_watt"] > 1e6 for r in rows)
