"""Tests for corelet placement (repro.corelets.placement)."""

import numpy as np

from repro.core.builders import poisson_inputs, random_network
from repro.core.chip import ChipGeometry, DefectMap
from repro.corelets.placement import (
    connectivity_graph,
    place_connectivity_aware,
    place_row_major,
    total_wirelength,
)
from repro.hardware.simulator import run_truenorth


class TestConnectivityGraph:
    def test_edges_weighted_by_targets(self):
        net = random_network(n_cores=6, connectivity=0.4, seed=2)
        g = connectivity_graph(net)
        assert g.number_of_nodes() == 6
        for _, _, data in g.edges(data=True):
            assert data["weight"] >= 1

    def test_self_loops_excluded(self):
        net = random_network(n_cores=3, seed=1)
        g = connectivity_graph(net)
        assert all(u != v for u, v in g.edges())


class TestPlacers:
    def test_both_placements_are_complete(self):
        net = random_network(n_cores=12, seed=7)
        for placer in (place_row_major, place_connectivity_aware):
            p = placer(net)
            assert p.n_cores == 12
            coords = set(zip(p.chip_x.tolist(), p.x.tolist(), p.y.tolist()))
            assert len(coords) == 12  # no slot reused

    def test_connectivity_aware_beats_row_major_on_scattered_clusters(self):
        # Clusters whose members are interleaved in logical core order:
        # row-major placement scatters them, the BFS placer regroups them.
        rng = np.random.default_rng(0)
        from repro.core.network import Network
        from repro.core.builders import random_core

        n_clusters, per_cluster = 4, 4
        n_cores = n_clusters * per_cluster
        net = Network(seed=0)
        for c in range(n_cores):
            cluster = c % n_clusters  # interleaved membership
            members = np.arange(cluster, n_cores, n_clusters)
            core = random_core(rng, n_axons=8, n_neurons=8, n_cores=n_cores, self_core=0)
            core.target_core[:] = rng.choice(members, size=8)
            net.add_core(core)
        net.validate()
        wl_naive = total_wirelength(net, place_row_major(net))
        wl_aware = total_wirelength(net, place_connectivity_aware(net))
        assert wl_aware < wl_naive

    def test_function_invariant_under_placement(self):
        net = random_network(n_cores=8, seed=3)
        ins = poisson_inputs(net, 15, 400.0, seed=2)
        a = run_truenorth(net, 15, ins, placement=place_row_major(net))
        b = run_truenorth(net, 15, ins, placement=place_connectivity_aware(net))
        assert a == b

    def test_respects_defects(self):
        net = random_network(n_cores=4, seed=1)
        defects = DefectMap(frozenset({(0, 0, 0, 0)}))
        g = ChipGeometry(cores_x=4, cores_y=4)
        p = place_connectivity_aware(net, geometry=g, defects=defects)
        slots = set(zip(p.chip_x.tolist(), p.x.tolist(), p.y.tolist()))
        assert (0, 0, 0) not in slots

    def test_wirelength_zero_for_self_targets(self):
        net = random_network(n_cores=1, seed=1)
        assert total_wirelength(net, place_row_major(net)) == 0
