"""Tests for the optical-flow and audio applications."""

import numpy as np
import pytest

from repro.apps.audio import (
    AUDIO_CLASSES,
    AudioClassifier,
    cochlea_filterbank,
    synth_event,
)
from repro.apps.optical_flow import build_flow_pipeline, estimate_flow


class TestOpticalFlow:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return build_flow_pipeline(8, velocities=(1, 2, 4))

    @pytest.mark.parametrize("velocity", [1, 2, 4])
    def test_velocity_tuning(self, pipeline, velocity):
        _, flow = estimate_flow(pipeline, velocity=velocity, direction=+1)
        assert flow == ("+x", velocity)

    def test_direction_selectivity(self, pipeline):
        _, flow = estimate_flow(pipeline, velocity=2, direction=-1)
        assert flow == ("-x", 2)

    def test_energy_map_covers_all_banks(self, pipeline):
        rec, _ = estimate_flow(pipeline, velocity=2, direction=+1)
        energies = pipeline.direction_energies(rec)
        assert set(energies) == {
            (d, v) for d in ("+x", "-x") for v in (1, 2, 4)
        }
        # the matched bank dominates all others
        matched = energies[("+x", 2)]
        assert matched > max(v for k, v in energies.items() if k != ("+x", 2))

    def test_untuned_velocity_weak(self, pipeline):
        # stimulus at v=3 matches no bank exactly: no bank should show
        # the strong response a matched stimulus produces
        rec, _ = estimate_flow(pipeline, velocity=3, direction=+1)
        energies = pipeline.direction_energies(rec)
        rec2, _ = estimate_flow(pipeline, velocity=2, direction=+1)
        matched = pipeline.direction_energies(rec2)[("+x", 2)]
        assert max(energies.values()) < matched


class TestCochlea:
    def test_filterbank_shape_and_range(self):
        e = cochlea_filterbank(synth_event("steady", seed=1))
        assert e.shape == (10, 8)
        assert 0.0 <= e.min() and e.max() <= 1.0

    def test_chirps_move_through_bands(self):
        e = cochlea_filterbank(synth_event("rising", seed=1))
        # energy centroid moves to higher bands over time
        bands = np.arange(8)
        first = (e[0] * bands).sum() / e[0].sum()
        last = (e[-1] * bands).sum() / max(e[-1].sum(), 1e-9)
        assert last > first

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            synth_event("whistle")


class TestAudioClassifier:
    @pytest.fixture(scope="class")
    def trained(self):
        clf = AudioClassifier(seed=1)
        clf.train(n_per_class=16)
        return clf

    def test_weights_are_ternary(self, trained):
        assert set(np.unique(trained.weights)).issubset({-1, 0, 1})

    def test_accuracy_above_chance(self, trained):
        acc = trained.accuracy(n_per_class=5)
        assert acc > 0.6  # chance is 1/3

    def test_classify_returns_known_label(self, trained):
        label = trained.classify(synth_event("rising", seed=321))
        assert label in AUDIO_CLASSES

    def test_untrained_rejects(self):
        clf = AudioClassifier(seed=2)
        with pytest.raises(ValueError):
            clf.classify(synth_event("steady"))
