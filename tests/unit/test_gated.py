"""Activity-gated tick path: classification, bit-identity, telemetry.

The gate's contract is exact (ISSUE 7 / paper Section VI-A): for any
network, seed, and input schedule, the gated sparse engines produce the
same spike stream, the same final membranes, and the same *logical*
event counters as the dense path.  Only ``active_neuron_updates`` — the
measure of work actually computed — may shrink under gating.
"""

from __future__ import annotations

import gc
import weakref

import numpy as np
import pytest

from repro.compass.batched import BatchedCompassSimulator
from repro.compass.compile import (
    classify_activity,
    compile_network,
    csr_row_entries,
    invalidate as compile_invalidate,
    partition_compiled,
)
from repro.compass.fast import (
    ActivityGate,
    FastCompassSimulator,
    n_input_builds,
    settled_mask,
    staged_inputs,
)
from repro.compass.parallel import ParallelCompassSimulator
from repro.core import params
from repro.core.builders import poisson_inputs, random_network
from repro.core.inputs import InputSchedule
from repro.core.network import Core, Network
from repro.lint.examples import BUILTIN_NETWORKS
from repro.obs import Observer

TICKS = 24

#: Counter fields whose value is engine-invariant (unlike the computed
#: active_neuron_updates, which is the whole point of gating).
LOGICAL = (
    "ticks", "synaptic_events", "spikes", "deliveries", "neuron_updates",
    "hops", "messages", "membrane_saturations", "max_core_events_per_tick",
)


def assert_counters_match(gated, dense) -> None:
    for name in LOGICAL:
        assert getattr(gated, name) == getattr(dense, name), name
    np.testing.assert_array_equal(
        gated.synaptic_events_per_core, dense.synaptic_events_per_core
    )
    assert dense.active_neuron_updates == dense.neuron_updates
    assert gated.active_neuron_updates <= dense.active_neuron_updates


def assert_fast_identity(net, inputs=None, ticks=TICKS):
    g = FastCompassSimulator(net, gated=True)
    d = FastCompassSimulator(net, gated=False)
    rg = g.run(ticks, inputs)
    rd = d.run(ticks, inputs)
    assert rg == rd
    np.testing.assert_array_equal(g.v, d.v)
    assert_counters_match(g.counters, d.counters)
    return g, d


# ---------------------------------------------------------------------------
# Compile-time classification
# ---------------------------------------------------------------------------

class TestClassification:
    def test_formula(self):
        leak = np.array([0, 3, 0, 0, -2])
        stoch_leak = np.array([False, False, True, False, False])
        mask = np.array([0, 0, 0, 7, 0])
        np.testing.assert_array_equal(
            classify_activity(leak, stoch_leak, mask),
            [True, False, False, False, False],
        )

    def test_compiled_fields(self):
        core = Core.build(
            4, 4,
            crossbar=np.eye(4, dtype=bool),
            leak=np.array([0, 1, 0, 0]),
            threshold_mask=np.array([0, 0, 3, 0]),
            threshold=4,
        )
        c = compile_network(Network(cores=[core], seed=0))
        np.testing.assert_array_equal(c.passive_mask, [True, False, False, True])
        np.testing.assert_array_equal(c.passive_idx, [0, 3])
        np.testing.assert_array_equal(c.always_active_idx, [1, 2])
        assert c.gating_worthwhile

    def test_fully_active_network_is_not_worthwhile(self):
        core = Core.build(2, 2, crossbar=np.eye(2, dtype=bool), leak=1, threshold=4)
        c = compile_network(Network(cores=[core], seed=0))
        assert not c.gating_worthwhile
        # auto resolves to the dense path...
        assert FastCompassSimulator(c).gated is False
        # ...but forcing the gate on stays bit-identical.
        assert_fast_identity(c)

    def test_partition_slices_align(self):
        net = random_network(n_cores=6, n_neurons=12, stochastic=True, seed=7)
        compiled = compile_network(net)
        rank_of_core = np.array([0, 1, 0, 1, 0, 1])
        parts = partition_compiled(compiled, rank_of_core, 2).partitions
        for part in parts:
            np.testing.assert_array_equal(
                part.passive_mask, compiled.passive_mask[part.neuron_global]
            )
            np.testing.assert_array_equal(
                part.passive_idx, np.nonzero(part.passive_mask)[0]
            )
            np.testing.assert_array_equal(
                part.always_active_idx, np.nonzero(~part.passive_mask)[0]
            )
        assert sum(p.passive_idx.size for p in parts) == compiled.passive_idx.size
        assert (
            sum(p.always_active_idx.size for p in parts)
            == compiled.always_active_idx.size
        )

    def test_csr_row_entries(self):
        indptr = np.array([0, 2, 2, 5], dtype=np.int64)
        np.testing.assert_array_equal(
            csr_row_entries(indptr, np.array([0, 2])), [0, 1, 2, 3, 4]
        )
        np.testing.assert_array_equal(
            csr_row_entries(indptr, np.array([1])), np.zeros(0, dtype=np.int64)
        )
        assert csr_row_entries(indptr, np.zeros(0, dtype=np.int64)).size == 0


# ---------------------------------------------------------------------------
# Fast engine bit-identity
# ---------------------------------------------------------------------------

class TestFastIdentity:
    @pytest.mark.parametrize("name", sorted(BUILTIN_NETWORKS))
    def test_builtin(self, name):
        net = BUILTIN_NETWORKS[name]()
        inputs = poisson_inputs(net, TICKS, 400.0, seed=5)
        assert_fast_identity(compile_network(net), inputs)

    @pytest.mark.parametrize("stochastic", [False, True])
    def test_random(self, stochastic):
        net = random_network(
            n_cores=5, n_neurons=24, connectivity=0.3,
            stochastic=stochastic, seed=13,
        )
        inputs = poisson_inputs(net, TICKS, 500.0, seed=2)
        assert_fast_identity(compile_network(net), inputs)

    def test_all_silent_costs_nothing(self):
        # Zero-leak, settled-at-init, no inputs: after classification the
        # gated path computes nothing at all.
        core = Core.build(4, 4, crossbar=np.eye(4, dtype=bool), threshold=4)
        net = Network(cores=[core], seed=0)
        g, _ = assert_fast_identity(net)
        assert g.counters.active_neuron_updates == 0
        assert g.counters.neuron_updates == TICKS * 4

    def test_single_spike_tick(self):
        # One external event on one axon: exactly one neuron is touched.
        core = Core.build(
            4, 4, crossbar=np.eye(4, dtype=bool), weights=[8, 0, 0, 0],
            threshold=4,
        )
        net = Network(cores=[core], seed=0)
        ins = InputSchedule()
        ins.add(3, 0, 2)
        g, _ = assert_fast_identity(net, ins, ticks=8)
        # Tick 3 touches neuron 2 (fires, resets); tick 4 re-checks it
        # because firing left it listed hot until its next update shows
        # it settled again.
        assert g.counters.active_neuron_updates <= 2
        assert g.counters.spikes == 1

    def test_initially_unsettled_neurons_update_without_input(self):
        # initial_v at threshold: passive but hot at tick 0 — must fire.
        core = Core.build(
            2, 2, crossbar=np.zeros((2, 2), dtype=bool),
            threshold=4, initial_v=np.array([4, 0]),
        )
        net = Network(cores=[core], seed=0)
        g, _ = assert_fast_identity(net, ticks=4)
        assert g.counters.spikes == 1
        assert g.counters.active_neuron_updates >= 1

    def test_reset_none_refire_stays_hot(self):
        # RESET_NONE above threshold refires every tick; the gate must
        # keep the neuron hot forever even though it is passive-stable.
        core = Core.build(
            2, 2, crossbar=np.zeros((2, 2), dtype=bool),
            threshold=2, initial_v=np.array([3, 0]),
            reset_mode=params.RESET_NONE,
        )
        net = Network(cores=[core], seed=0)
        g, _ = assert_fast_identity(net, ticks=10)
        assert g.counters.spikes == 10

    def test_negative_floor_settles(self):
        # Membranes below -beta are floored; under NEG_FLOOR_SATURATE the
        # floored value is a fixed point, so these neurons go cold.
        core = Core.build(
            2, 2, crossbar=np.zeros((2, 2), dtype=bool),
            threshold=4, neg_threshold=2, initial_v=np.array([-7, -1]),
            neg_floor_mode=params.NEG_FLOOR_SATURATE,
        )
        net = Network(cores=[core], seed=0)
        g, _ = assert_fast_identity(net, ticks=6)
        # Tick 0 floors neuron 0 to -2; from tick 1 nothing is computed.
        assert g.counters.active_neuron_updates <= 2

    def test_settled_mask_direct(self):
        core = Core.build(
            2, 4, crossbar=np.zeros((2, 4), dtype=bool),
            threshold=4, neg_threshold=2,
        )
        c = compile_network(Network(cores=[core], seed=0))
        v = np.array([0, 4, -3, -2], dtype=np.int64)
        np.testing.assert_array_equal(
            settled_mask(c, v), [True, False, False, True]
        )

    def test_gate_tracks_saturation_population(self):
        core = Core.build(
            2, 2, crossbar=np.zeros((2, 2), dtype=bool),
            threshold=params.THRESHOLD_MAX,
            initial_v=np.array([params.MEMBRANE_MIN, 0]),
            neg_threshold=-params.MEMBRANE_MIN,
        )
        c = compile_network(Network(cores=[core], seed=0))
        gate = ActivityGate(c, c.initial_v.copy())
        assert gate.n_saturated == 1


# ---------------------------------------------------------------------------
# Parallel and batched engines
# ---------------------------------------------------------------------------

class TestParallelIdentity:
    def test_gated_matches_dense_and_fast(self):
        net = random_network(n_cores=6, n_neurons=16, stochastic=True, seed=9)
        compiled = compile_network(net)
        inputs = poisson_inputs(net, TICKS, 400.0, seed=4)

        fast = FastCompassSimulator(compiled, gated=True)
        ref = fast.run(TICKS, inputs)

        pg = ParallelCompassSimulator(compiled, n_workers=2, gated=True)
        pd = ParallelCompassSimulator(compiled, n_workers=2, gated=False)
        try:
            rg = pg.run(TICKS, inputs)
            rd = pd.run(TICKS, inputs)
        finally:
            pg.close()
            pd.close()
        assert rg == rd == ref
        assert_counters_match(pg.counters, pd.counters)


class TestBatchedIdentity:
    def test_lanes_match_dense_including_reset(self):
        net = BUILTIN_NETWORKS["recurrent-stochastic"]()
        inputs = poisson_inputs(net, TICKS, 400.0, seed=6)
        seeds = [11, 22, 33]

        g = BatchedCompassSimulator(net, 3, seeds=seeds, gated=True)
        d = BatchedCompassSimulator(net, 3, seeds=seeds, gated=False)
        for sim in (g, d):
            sim.load_inputs(inputs)
            for _ in range(8):
                sim.step()
            sim.reset_lane(1, seed=44, inputs=inputs)
            for _ in range(8):
                sim.step()

        np.testing.assert_array_equal(g.v, d.v)
        for lane in range(3):
            assert_counters_match(g.lane_counters(lane), d.lane_counters(lane))
        assert_counters_match(g.aggregate_counters(), d.aggregate_counters())

    def test_records_match(self):
        net = BUILTIN_NETWORKS["haar"]()
        inputs = poisson_inputs(net, TICKS, 300.0, seed=8)
        rg = BatchedCompassSimulator(net, 2, gated=True).run(TICKS, inputs)
        rd = BatchedCompassSimulator(net, 2, gated=False).run(TICKS, inputs)
        assert rg == rd


# ---------------------------------------------------------------------------
# Telemetry and caching satellites
# ---------------------------------------------------------------------------

class TestObsGauges:
    def test_gated_run_publishes_activity_gauges(self):
        net = BUILTIN_NETWORKS["haar"]()
        inputs = poisson_inputs(net, TICKS, 400.0, seed=5)
        obs = Observer()
        sim = FastCompassSimulator(net, obs=obs, gated=True)
        sim.run(TICKS, inputs)
        snap = obs.metrics.snapshot()
        assert 0 < snap["repro_active_fraction"] <= 1.0
        assert snap["repro_active_neurons"] >= 0
        assert (
            snap["repro_active_neuron_updates_total"]
            == sim.counters.active_neuron_updates
        )

    def test_dense_run_does_not_publish_activity_gauges(self):
        net = BUILTIN_NETWORKS["haar"]()
        obs = Observer()
        FastCompassSimulator(net, obs=obs, gated=False).run(4)
        assert "repro_active_fraction" not in obs.metrics.snapshot()


class TestStagedInputsWeakCache:
    def test_cache_does_not_keep_compiled_network_alive(self):
        net = random_network(n_cores=2, n_neurons=8, seed=3)
        compiled = compile_network(net)
        ins = poisson_inputs(net, 8, 400.0, seed=5)
        staged_inputs(compiled, ins)
        ref = weakref.ref(compiled)
        del compiled
        compile_invalidate(net)  # drop the on-network compile cache too
        gc.collect()
        assert ref() is None

    def test_cache_still_hits_while_alive(self):
        net = random_network(n_cores=2, n_neurons=8, seed=3)
        compiled = compile_network(net)
        ins = poisson_inputs(net, 8, 400.0, seed=5)
        before = n_input_builds()
        first = staged_inputs(compiled, ins)
        assert staged_inputs(compiled, ins) is first
        assert n_input_builds() == before + 1
