"""Coverage for small utility paths: validation, cost points, reports."""

import numpy as np
import pytest

from repro.analysis.report import format_value
from repro.apps.workloads import ANCHOR_A
from repro.core.counters import EventCounters
from repro.hardware.energy import EnergyModel
from repro.machines.cost import CompassCostModel
from repro.machines.specs import BGQ, X86
from repro.utils.validation import (
    check_array_shape,
    check_in_range,
    check_int_dtype,
    require,
)


class TestValidationHelpers:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="nope"):
            require(False, "nope")

    def test_check_array_shape(self):
        check_array_shape("x", np.zeros((2, 3)), (2, 3))
        with pytest.raises(ValueError):
            check_array_shape("x", np.zeros(3), (4,))
        with pytest.raises(TypeError):
            check_array_shape("x", [1, 2, 3], (3,))

    def test_check_int_dtype(self):
        check_int_dtype("x", np.zeros(3, dtype=np.int64))
        check_int_dtype("x", np.zeros(3, dtype=bool))
        with pytest.raises(TypeError):
            check_int_dtype("x", np.zeros(3, dtype=float))

    def test_check_in_range(self):
        check_in_range("x", np.array([1, 2, 3]), 1, 3)
        check_in_range("x", np.zeros(0), 5, 6)  # empty is fine
        with pytest.raises(ValueError):
            check_in_range("x", np.array([0]), 1, 3)


class TestCostModelExtras:
    def test_best_configuration(self):
        model = CompassCostModel(BGQ)
        best = model.best_configuration(ANCHOR_A)
        assert best.hosts == 32
        assert best.threads_per_host == 64

    def test_run_point_slowdown(self):
        point = CompassCostModel(X86).run_point(ANCHOR_A)
        assert point.slowdown_vs_real_time == pytest.approx(
            point.time_per_tick_s / 1e-3
        )

    def test_comparison_fields(self):
        from repro.machines.cost import compare_truenorth_vs_compass

        cmp = compare_truenorth_vs_compass(ANCHOR_A, X86)
        assert cmp.workload == ANCHOR_A.name
        assert cmp.machine == X86.name
        assert cmp.truenorth_time_per_tick_s == pytest.approx(1e-3)
        assert cmp.compass_point.machine == X86.name


class TestEnergyExtras:
    def test_boundary_crossing_energy_term(self):
        m = EnergyModel()
        base = m.active_energy_per_tick_j(1000, 1000, 10, 100)
        with_crossings = m.active_energy_per_tick_j(
            1000, 1000, 10, 100, boundary_crossings=50
        )
        assert with_crossings > base

    def test_energy_for_run_with_boundary(self):
        c = EventCounters(ticks=10, synaptic_events=100, spikes=5,
                          neuron_updates=1000, hops=50)
        m = EnergyModel()
        assert m.energy_for_run_j(c, boundary_crossings=20) > m.energy_for_run_j(c)


class TestFormatValue:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, "0"), (150.0, "150"), (3.14159, "3.14"), (0.25, "0.2500")],
    )
    def test_formats(self, value, expected):
        assert format_value(value) == expected
