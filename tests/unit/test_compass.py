"""Tests for the Compass software expression (repro.compass)."""

import numpy as np
import pytest

from repro.compass.partition import (
    partition,
    partition_block,
    partition_load_balanced,
    partition_round_robin,
    rank_loads,
)
from repro.compass.simmpi import SimMPI
from repro.compass.simulator import CompassSimulator, run_compass
from repro.core.builders import poisson_inputs, random_network
from repro.core.kernel import run_kernel


class TestSimMPI:
    def test_local_delivery_is_free(self):
        mpi = SimMPI(2)
        mpi.send(0, 0, ("x",))
        inboxes = mpi.exchange()
        assert inboxes[0] == [("x",)]
        assert mpi.messages_sent == 0

    def test_aggregation_one_message_per_pair(self):
        mpi = SimMPI(3)
        for _ in range(10):
            mpi.send(0, 1, ("e",))
        mpi.send(0, 2, ("e",))
        inboxes = mpi.exchange()
        assert len(inboxes[1]) == 10 and len(inboxes[2]) == 1
        assert mpi.messages_sent == 2  # aggregated
        assert mpi.bytes_sent == 11 * 8

    def test_two_step_sync(self):
        mpi = SimMPI(8)
        mpi.barrier_sync()
        assert mpi.sync_steps == 2
        assert mpi.sync_messages == 2 * 7

    def test_outboxes_drain(self):
        mpi = SimMPI(2)
        mpi.send(0, 1, ("e",))
        assert mpi.pending_events == 1
        mpi.exchange()
        assert mpi.pending_events == 0
        assert mpi.exchange() == [[], []]

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            SimMPI(0)


class TestPartition:
    @pytest.fixture
    def net(self):
        return random_network(n_cores=10, seed=5)

    def test_block_contiguous(self, net):
        a = partition_block(net, 3)
        assert (np.diff(a) >= 0).all()
        assert set(a.tolist()) == {0, 1, 2}

    def test_round_robin(self, net):
        a = partition_round_robin(net, 4)
        assert a.tolist() == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_load_balance_quality(self):
        net = random_network(n_cores=16, connectivity=0.5, seed=2)
        a = partition_load_balanced(net, 4)
        loads = rank_loads(net, a, 4)
        assert loads.max() - loads.min() <= max(c.n_synapses for c in net.cores)

    def test_every_core_assigned(self, net):
        for strategy in ("block", "round_robin", "load_balanced"):
            a = partition(net, 3, strategy)
            assert a.shape == (10,)
            assert ((a >= 0) & (a < 3)).all()

    def test_unknown_strategy(self, net):
        with pytest.raises(ValueError):
            partition(net, 2, "nope")

    def test_more_ranks_than_cores(self, net):
        a = partition(net, 32, "load_balanced")
        assert ((a >= 0) & (a < 32)).all()


class TestCompassEquivalence:
    """Compass must be spike-for-spike identical to the reference kernel."""

    @pytest.mark.parametrize("n_ranks", [1, 2, 5])
    @pytest.mark.parametrize("stochastic", [False, True])
    def test_matches_reference_kernel(self, n_ranks, stochastic):
        net = random_network(
            n_cores=5, n_axons=12, n_neurons=12, stochastic=stochastic, seed=21
        )
        ins = poisson_inputs(net, 25, 300.0, seed=9)
        ref = run_kernel(net, 25, ins)
        got = run_compass(net, 25, ins, n_ranks=n_ranks)
        assert got.first_mismatch(ref) is None
        assert got == ref

    def test_partition_invariance(self):
        net = random_network(n_cores=8, stochastic=True, seed=3)
        ins = poisson_inputs(net, 20, 250.0, seed=1)
        records = [
            run_compass(net, 20, ins, n_ranks=r, partition_strategy=s)
            for r, s in [(1, "block"), (3, "round_robin"), (8, "load_balanced")]
        ]
        assert records[0] == records[1] == records[2]

    def test_counter_equivalence_with_kernel(self):
        net = random_network(n_cores=4, seed=13)
        ins = poisson_inputs(net, 15, 400.0, seed=2)
        ref = run_kernel(net, 15, ins)
        got = run_compass(net, 15, ins, n_ranks=2)
        assert got.counters.synaptic_events == ref.counters.synaptic_events
        assert got.counters.spikes == ref.counters.spikes
        assert got.counters.deliveries == ref.counters.deliveries
        assert got.counters.neuron_updates == ref.counters.neuron_updates
        assert np.array_equal(
            got.counters.synaptic_events_per_core, ref.counters.synaptic_events_per_core
        )


class TestCompassBehaviour:
    def test_messages_counted_only_across_ranks(self):
        net = random_network(n_cores=6, connectivity=0.5, seed=4)
        ins = poisson_inputs(net, 10, 500.0, seed=3)
        one = CompassSimulator(net, n_ranks=1)
        one.run(10, ins)
        assert one.counters.messages == 0  # everything is rank-local
        many = CompassSimulator(net, n_ranks=6)
        many.run(10, ins)
        assert many.counters.messages > 0

    def test_run_is_repeatable(self):
        net = random_network(n_cores=3, stochastic=True, seed=8)
        ins = poisson_inputs(net, 12, 350.0, seed=5)
        assert run_compass(net, 12, ins) == run_compass(net, 12, ins)

    def test_step_returns_current_tick_spikes(self):
        net = random_network(n_cores=2, connectivity=0.8, seed=1)
        ins = poisson_inputs(net, 5, 800.0, seed=1)
        sim = CompassSimulator(net)
        sim.load_inputs(ins)
        for expected_tick in range(5):
            for tick, _, _ in sim.step():
                assert tick == expected_tick
