"""Tests for the glyph classifier app and composition inspection."""

import numpy as np
import pytest

from repro.apps.glyphs import GLYPH_CLASSES, GlyphClassifier, draw_glyph, edge_kernels
from repro.core.builders import random_network
from repro.corelets.inspect import analyze, report_text


class TestGlyphs:
    def test_glyph_rendering(self):
        for kind in GLYPH_CLASSES:
            img = draw_glyph(kind, seed=3)
            assert img.shape == (8, 8)
            assert img.max() <= 1.0 and img.min() >= 0.0
            assert img.sum() > 0

    def test_glyphs_differ(self):
        a = draw_glyph("cross", seed=1)
        b = draw_glyph("square", seed=1)
        assert not np.array_equal(a, b)

    def test_unknown_glyph_rejected(self):
        with pytest.raises(ValueError):
            draw_glyph("circle")

    def test_edge_kernels_balanced(self):
        k = edge_kernels()
        assert k.shape == (9, 4)
        assert np.abs(k.sum(axis=0)).max() == 0  # zero-mean filters

    @pytest.mark.slow
    def test_end_to_end_accuracy(self):
        clf = GlyphClassifier(seed=2)
        clf.train(n_per_class=12)
        assert set(np.unique(clf.weights)).issubset({-1, 0, 1})
        acc = clf.accuracy(n_per_class=4)
        assert acc > 0.55  # chance is 1/3

    def test_untrained_rejects(self):
        clf = GlyphClassifier(seed=1)
        with pytest.raises(ValueError):
            clf.classify(draw_glyph("cross"))


class TestInspection:
    def test_analyze_random_network(self):
        net = random_network(n_cores=4, n_axons=16, n_neurons=16,
                             connectivity=0.5, seed=3)
        r = analyze(net)
        assert r.n_cores == 4
        assert r.n_neurons == 64
        assert 0.3 < r.crossbar_utilization < 0.7
        assert r.max_fan_in <= 16 and r.max_fan_out <= 16
        assert r.chips_required == 1 and r.fits_one_chip

    def test_output_vs_routed_partition(self):
        net = random_network(n_cores=2, seed=1)  # all neurons routed
        r = analyze(net)
        assert r.routed_neurons + r.output_neurons == r.n_neurons
        assert r.routed_neurons == r.n_neurons

    def test_stochastic_counting(self):
        det = random_network(n_cores=2, stochastic=False, seed=5)
        sto = random_network(n_cores=2, stochastic=True, seed=5)
        assert analyze(det).stochastic_neurons == 0
        assert analyze(sto).stochastic_neurons > 0

    def test_multi_chip_requirement(self):
        from repro.core.network import Core, Network

        # 5000 one-neuron cores exceed one 4096-core chip
        cores = [Core.build(n_axons=1, n_neurons=1) for _ in range(5000)]
        net = Network(cores=cores)
        r = analyze(net)
        assert r.chips_required == 2
        assert not r.fits_one_chip

    def test_report_text(self):
        net = random_network(n_cores=2, seed=2)
        text = report_text(net)
        assert "crossbar utilization" in text
        assert "chips required" in text
