"""Tests for the telemetry HTTP plane (repro.obs.server) and repro top."""

import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.core.builders import poisson_inputs, random_network
from repro.obs import Observer
from repro.obs.server import TelemetryServer, evaluate_health
from repro.runtime.serving import ModelServer


def small_net(seed=11):
    return random_network(
        n_cores=3, n_axons=12, n_neurons=12, stochastic=True, seed=seed
    )


def get(url, path):
    with urllib.request.urlopen(url + path, timeout=5.0) as resp:
        return resp.status, resp.read().decode("utf-8"), resp.headers


@pytest.fixture()
def observed_server():
    obs = Observer()
    server = TelemetryServer(obs, port=0)
    yield obs, server
    server.close()


class TestEvaluateHealth:
    def test_no_data_reports_ok_with_null_gauges(self):
        doc = evaluate_health(Observer())
        assert doc["status"] == "ok"
        assert doc["ticks"] == 0
        assert doc["real_time_factor"] is None
        assert doc["budget_ratio"] is None

    def test_slow_tick_degrades(self):
        obs = Observer()
        obs.flight_tick(0, 0, 5_000_000, 0, 0)  # 5x the 1 ms budget
        doc = evaluate_health(obs)
        assert doc["status"] == "degraded"
        assert doc["budget_ratio"] == pytest.approx(5.0)

    def test_dead_probe_fails(self):
        obs = Observer()
        obs.flight_tick(0, 0, 100_000, 0, 0)
        doc = evaluate_health(obs, {"engine": lambda: False})
        assert doc["status"] == "failed"
        assert doc["workers"] == {"engine": False}

    def test_raising_probe_counts_as_dead(self):
        def boom():
            raise RuntimeError("probe crashed")

        doc = evaluate_health(Observer(), {"w0": boom, "w1": lambda: True})
        assert doc["status"] == "failed"
        assert doc["workers"] == {"w0": False, "w1": True}


class TestTelemetryServer:
    def test_ephemeral_port_and_url(self, observed_server):
        _, server = observed_server
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_metrics_endpoint_prometheus(self, observed_server):
        obs, server = observed_server
        obs.metrics.counter("repro_ticks_total").inc(7)
        status, body, headers = get(server.url, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        assert "# TYPE repro_ticks_total counter" in body
        assert "repro_ticks_total 7" in body

    def test_health_and_ready_lifecycle(self, observed_server):
        obs, server = observed_server
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url, "/ready")
        assert err.value.code == 503  # no tick recorded yet
        obs.flight_tick(0, 0, 200_000, 1, 1)
        status, body, _ = get(server.url, "/ready")
        assert (status, json.loads(body)) == (200, {"ready": True})
        status, body, _ = get(server.url, "/health")
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["real_time_factor"] > 0
        assert doc["flight"]["ticks"] == 1

    def test_health_503_on_dead_liveness(self, observed_server):
        obs, server = observed_server
        server.add_liveness("engine", lambda: False)
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url, "/health")
        assert err.value.code == 503
        doc = json.loads(err.value.read().decode("utf-8"))
        assert doc["status"] == "failed"

    def test_flight_endpoint_with_tail(self, observed_server):
        obs, server = observed_server
        for t in range(5):
            obs.flight_tick(t, 0, 100_000, t, t)
        status, body, _ = get(server.url, "/flight?last=2")
        doc = json.loads(body)
        assert status == 200
        assert len(doc["rows"]) == 2
        assert doc["rows"][-1][0] == 4.0
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url, "/flight?last=nope")
        assert err.value.code == 400

    def test_trace_endpoint_chrome_format(self, observed_server):
        obs, server = observed_server
        with obs.span("unit-span"):
            pass
        _, body, _ = get(server.url, "/trace")
        events = json.loads(body)["traceEvents"]
        assert any(ev["name"] == "unit-span" for ev in events)

    def test_unknown_endpoint_404(self, observed_server):
        _, server = observed_server
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url, "/nope")
        assert err.value.code == 404

    def test_requests_counted_per_endpoint(self, observed_server):
        obs, server = observed_server
        get(server.url, "/metrics")
        get(server.url, "/metrics")
        counter = obs.metrics.counter("repro_telemetry_requests_total")
        assert counter.value(endpoint="/metrics") == 2

    def test_context_manager_closes(self):
        with TelemetryServer(Observer(), port=0) as server:
            url = server.url
            get(url, "/metrics")
        with pytest.raises((urllib.error.URLError, OSError)):
            get(url, "/metrics")


class TestModelServerTelemetry:
    def test_end_to_end_serving_telemetry(self):
        net = small_net()
        server = ModelServer(net, n_lanes=2, telemetry_port=0)
        try:
            url = server.telemetry.url
            for i in range(3):
                server.submit(poisson_inputs(net, 20, 300.0, seed=i), 20)
            server.run()
            status, body, _ = get(url, "/health")
            doc = json.loads(body)
            assert doc["status"] == "ok"
            assert doc["real_time_factor"] > 0
            assert doc["workers"] == {"engine": True}
            _, body, _ = get(url, "/metrics")
            assert "repro_session_latency_seconds_bucket" in body
            assert "repro_rtf" in body
            _, body, _ = get(url, "/flight")
            assert json.loads(body)["summary"]["ticks"] > 0
        finally:
            server.close()
        assert server.telemetry is None

    def test_failed_engine_surfaces_in_health(self, monkeypatch):
        net = small_net()
        server = ModelServer(net, n_lanes=2, telemetry_port=0)
        try:
            server.submit(poisson_inputs(net, 5, 300.0, seed=0), 5)

            def boom():
                raise RuntimeError("injected pass failure")

            monkeypatch.setattr(server.engine, "step_arrays", boom)
            with pytest.raises(RuntimeError, match="injected"):
                server.step()
            with pytest.raises(urllib.error.HTTPError) as err:
                get(server.telemetry.url, "/health")
            assert err.value.code == 503
        finally:
            server.close()


class TestTopCli:
    def test_top_renders_health(self, capsys):
        obs = Observer()
        obs.flight_tick(0, 0, 400_000, 3, 6)
        with TelemetryServer(obs, port=0) as server:
            rc = cli_main(["top", "--url", server.url,
                           "--iterations", "2", "--interval", "0",
                           "--plain"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro top" in out
        assert "real-time factor" in out
        assert out.count("status") == 2  # two polls rendered

    def test_top_unreachable_exits_nonzero(self, capsys):
        rc = cli_main(["top", "--url", "http://127.0.0.1:9",
                       "--iterations", "1"])
        assert rc == 1
        assert "unreachable" in capsys.readouterr().err


class TestServeCliTelemetry:
    def test_serve_prints_url_and_linger_zero_exits(self, capsys):
        rc = cli_main([
            "serve", "recurrent-deterministic", "--sessions", "2",
            "--lanes", "2",
            "--ticks", "10", "--telemetry-port", "0",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "telemetry: http://127.0.0.1:" in out
        assert "sessions completed" in out
