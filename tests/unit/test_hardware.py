"""Tests for the TrueNorth hardware expression (repro.hardware)."""

import numpy as np
import pytest

from repro.core import params
from repro.core.builders import poisson_inputs, random_network
from repro.core.chip import ChipGeometry, Placement
from repro.core.kernel import run_kernel
from repro.compass.simulator import run_compass
from repro.hardware.energy import EnergyModel
from repro.hardware.simulator import TrueNorthSimulator, run_truenorth
from repro.hardware.timing import TimingModel


class TestHardwareEquivalence:
    """The silicon expression must match kernel and Compass spike-for-spike."""

    @pytest.mark.parametrize("stochastic", [False, True])
    def test_matches_reference_kernel(self, stochastic):
        net = random_network(n_cores=5, stochastic=stochastic, seed=31)
        ins = poisson_inputs(net, 25, 300.0, seed=7)
        ref = run_kernel(net, 25, ins)
        got = run_truenorth(net, 25, ins)
        assert got.first_mismatch(ref) is None

    def test_matches_compass(self):
        net = random_network(n_cores=7, stochastic=True, seed=17)
        ins = poisson_inputs(net, 30, 250.0, seed=5)
        assert run_truenorth(net, 30, ins) == run_compass(net, 30, ins, n_ranks=3)

    def test_detailed_noc_same_function(self):
        net = random_network(n_cores=6, seed=9)
        ins = poisson_inputs(net, 20, 400.0, seed=2)
        plain = run_truenorth(net, 20, ins, detailed_noc=False)
        detailed = run_truenorth(net, 20, ins, detailed_noc=True)
        assert plain == detailed
        # Without defects, analytic hop counts equal walked hop counts.
        assert plain.counters.hops == detailed.counters.hops

    def test_placement_does_not_change_function(self):
        net = random_network(n_cores=6, seed=9)
        ins = poisson_inputs(net, 20, 400.0, seed=2)
        compact = run_truenorth(net, 20, ins, placement=Placement.compact(6))
        spread = run_truenorth(net, 20, ins, placement=Placement.grid(6))
        assert compact == spread

    def test_placement_changes_hops(self):
        net = random_network(n_cores=9, connectivity=0.6, seed=4)
        ins = poisson_inputs(net, 15, 500.0, seed=3)
        compact = run_truenorth(net, 15, ins, placement=Placement.compact(9))
        g = ChipGeometry(cores_x=64, cores_y=64)
        spread_placement = Placement(
            chip_x=np.zeros(9, dtype=np.int64),
            chip_y=np.zeros(9, dtype=np.int64),
            x=np.arange(9, dtype=np.int64) * 7,
            y=np.zeros(9, dtype=np.int64),
            geometry=g,
        )
        spread = run_truenorth(net, 15, ins, placement=spread_placement)
        assert spread.counters.hops > compact.counters.hops

    def test_defective_router_detour_preserves_function(self):
        net = random_network(n_cores=9, seed=12)
        ins = poisson_inputs(net, 15, 400.0, seed=6)
        placement = Placement.compact(9)
        baseline = run_truenorth(net, 15, ins, placement=placement, detailed_noc=True)
        # Disable a router not hosting a core (mesh is 3x3 for 9 cores, so
        # pick a non-core coordinate by extending the mesh: use a core-free
        # slot only if it exists; otherwise skip the functional comparison.
        sim = TrueNorthSimulator(net, placement=placement, detailed_noc=True)
        rec = sim.run(15, ins)
        assert rec == baseline

    def test_mismatched_placement_rejected(self):
        net = random_network(n_cores=4, seed=1)
        with pytest.raises(ValueError):
            TrueNorthSimulator(net, placement=Placement.compact(5))


class TestNoCAccounting:
    def test_hops_counted(self):
        net = random_network(n_cores=4, connectivity=0.5, seed=3)
        ins = poisson_inputs(net, 10, 600.0, seed=1)
        rec = run_truenorth(net, 10, ins)
        assert rec.counters.hops > 0

    def test_single_core_recurrent_zero_hops(self):
        net = random_network(n_cores=1, connectivity=0.5, seed=3)
        ins = poisson_inputs(net, 10, 600.0, seed=1)
        rec = run_truenorth(net, 10, ins)
        assert rec.counters.spikes > 0
        assert rec.counters.hops == 0  # all targets are the same core

    def test_boundary_crossings_counted_for_multichip_placement(self):
        net = random_network(n_cores=8, connectivity=0.5, seed=3)
        ins = poisson_inputs(net, 10, 600.0, seed=1)
        g = ChipGeometry(cores_x=2, cores_y=2)
        placement = Placement.grid(8, g)  # spans two chips
        sim = TrueNorthSimulator(net, placement=placement)
        sim.run(10, ins)
        assert sim.boundary_crossings > 0


class TestEnergyModelAnchors:
    """The calibrated model must land on the paper's headline numbers."""

    def test_anchor_a_46_gsops_per_watt(self):
        m = EnergyModel()
        eff = m.gsops_per_watt(rate_hz=20, active_synapses=128)
        assert 43 <= eff <= 49  # paper: 46 GSOPS/W

    def test_anchor_a_power_tens_of_milliwatts(self):
        m = EnergyModel()
        c = m.workload_counts_per_tick(20, 128)
        p = m.power_w(c["synaptic_events"], c["neuron_updates"], c["spikes"], c["hops"])
        assert 0.050 <= p <= 0.070  # paper: "merely 65 mW"

    def test_anchor_a5_81_gsops_per_watt(self):
        m = EnergyModel()
        eff = m.gsops_per_watt(rate_hz=20, active_synapses=128, tick_frequency_hz=5000)
        assert 76 <= eff <= 86  # paper: 81 GSOPS/W at ~5x

    def test_anchor_c_exceeds_400(self):
        m = EnergyModel()
        eff = m.gsops_per_watt(rate_hz=200, active_synapses=256)
        assert eff > 400  # paper: "exceeds 400 GSOPS/W"

    def test_efficiency_increases_with_load(self):
        m = EnergyModel()
        e1 = m.gsops_per_watt(20, 64)
        e2 = m.gsops_per_watt(100, 128)
        e3 = m.gsops_per_watt(200, 256)
        assert e1 < e2 < e3

    def test_energy_per_tick_monotone_in_rate_and_synapses(self):
        m = EnergyModel()
        assert m.energy_per_tick_for_workload(10, 64) < m.energy_per_tick_for_workload(50, 64)
        assert m.energy_per_tick_for_workload(50, 32) < m.energy_per_tick_for_workload(50, 200)

    def test_lower_voltage_more_efficient(self):
        low = EnergyModel(voltage=0.70)
        high = EnergyModel(voltage=1.05)
        assert low.gsops_per_watt(50, 128) > high.gsops_per_watt(50, 128)

    def test_power_density_orders_below_cpu(self):
        m = EnergyModel()
        density = m.power_density_w_per_cm2(20, 128)
        assert density < 0.05  # paper: ~20 mW/cm^2 vs ~100 W/cm^2 CPU

    def test_voltage_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(voltage=1.5)

    def test_sops_definition(self):
        m = EnergyModel()
        assert m.sops(20, 128) == pytest.approx(20 * 128 * params.NEURONS_PER_CHIP)

    def test_energy_for_run_uses_counters(self):
        net = random_network(n_cores=4, connectivity=0.5, seed=3)
        ins = poisson_inputs(net, 10, 600.0, seed=1)
        rec = run_truenorth(net, 10, ins)
        m = EnergyModel()
        e = m.energy_for_run_j(rec.counters)
        assert e > 0
        # passive floor alone for 10 ms is ~0.3 mJ
        assert e >= m.passive_power_w * 0.010


class TestTimingModelAnchors:
    def test_worst_case_is_real_time(self):
        t = TimingModel()
        # every synapse active, every neuron firing every tick
        f = t.max_frequency_for_workload_khz(1000.0, 256.0)
        assert 0.9 <= f <= 1.2  # designed to just sustain 1 kHz

    def test_anchor_a_runs_5x(self):
        t = TimingModel()
        f = t.max_frequency_for_workload_khz(20.0, 128.0)
        assert f >= 5.0  # the paper ran this network ~5x real time

    def test_light_load_ceiling(self):
        t = TimingModel()
        f = t.max_frequency_for_workload_khz(0.0, 0.0)
        assert 6.0 <= f <= 7.0  # fixed-overhead ceiling ~6.7 kHz

    def test_frequency_decreases_with_load(self):
        t = TimingModel()
        f_light = t.max_frequency_for_workload_khz(10, 32)
        f_heavy = t.max_frequency_for_workload_khz(200, 256)
        assert f_light > f_heavy

    def test_frequency_increases_with_voltage(self):
        lo = TimingModel(voltage=0.70)
        hi = TimingModel(voltage=1.05)
        assert hi.max_frequency_for_workload_khz(50, 128) > lo.max_frequency_for_workload_khz(50, 128)

    def test_functional_floor_enforced(self):
        with pytest.raises(ValueError):
            TimingModel(voltage=0.60)

    def test_regression_wall_clock_anchor(self):
        # 100M ticks at 1 kHz = 27.7 hours (paper Section VI-A).
        t = TimingModel()
        hours = t.wall_clock_for_ticks_s(100_000_000) / 3600.0
        assert hours == pytest.approx(27.7, abs=0.2)

    def test_max_frequency_for_run(self):
        net = random_network(n_cores=4, connectivity=0.5, seed=3)
        ins = poisson_inputs(net, 10, 600.0, seed=1)
        rec = run_truenorth(net, 10, ins)
        t = TimingModel()
        assert t.max_frequency_for_run_khz(rec.counters) > 1.0
