"""Tests for the analysis layer (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis.contour import (
    default_rate_axis,
    default_synapse_axis,
    default_voltage_axis,
    sweep,
)
from repro.analysis.metrics import (
    energy_improvement,
    gsops,
    gsops_per_watt,
    orders_of_magnitude,
    sops,
    sops_from_counters,
    speedup,
    within_band,
)
from repro.analysis.report import (
    format_value,
    render_contour,
    render_markdown_table,
    render_series,
    render_table,
)
from repro.core.counters import EventCounters


class TestMetrics:
    def test_sops_definition(self):
        assert sops(20, 128, 2**20) == 20 * 128 * 2**20
        assert gsops(20, 128, 2**20) == pytest.approx(2.684, rel=1e-3)

    def test_gsops_per_watt(self):
        assert gsops_per_watt(46e9, 1.0) == pytest.approx(46.0)
        assert gsops_per_watt(1.0, 0.0) == 0.0

    def test_sops_from_counters(self):
        c = EventCounters(ticks=100, synaptic_events=100 * 2560)
        assert sops_from_counters(c) == pytest.approx(2560 * 1000)
        assert sops_from_counters(EventCounters()) == 0.0

    def test_ratios(self):
        assert speedup(1.0, 0.001) == 1000.0
        assert energy_improvement(10.0, 1e-4) == pytest.approx(1e5)

    def test_orders_of_magnitude(self):
        assert orders_of_magnitude(1e5) == pytest.approx(5.0)
        assert orders_of_magnitude(0) == float("-inf")

    def test_within_band(self):
        assert within_band(46, 40, 50)
        assert not within_band(46, 47, 50)


class TestSweepGrid:
    def make(self):
        return sweep("r", np.array([0.0, 1.0, 2.0]), "c", np.array([0.0, 10.0]),
                     lambda r, c: r * 10 + c, metric="m")

    def test_values(self):
        g = self.make()
        assert g.values.shape == (3, 2)
        assert g.at(2, 10) == 30.0
        assert g.at(0.4, 2.0) == 0.0  # nearest-point lookup

    def test_corners_and_extremes(self):
        g = self.make()
        assert g.corner(False, False) == 0.0
        assert g.corner(True, True) == 30.0
        assert g.min == 0.0 and g.max == 30.0

    def test_monotonicity(self):
        g = self.make()
        assert g.monotone_rows(increasing=True)
        assert g.monotone_cols(increasing=True)
        assert not g.monotone_rows(increasing=False)

    def test_default_axes(self):
        assert default_rate_axis()[0] == 0.0 and default_rate_axis()[-1] == 200.0
        assert default_synapse_axis()[-1] == 256.0
        v = default_voltage_axis()
        assert v[0] == pytest.approx(0.70) and v[-1] == pytest.approx(1.05)


class TestReport:
    def test_format_value(self):
        assert format_value(0) == "0"
        assert format_value(1234567.0) == "1.23e+06"
        assert format_value(46.0) == "46.00"
        assert format_value(0.0001) == "1.00e-04"

    def test_render_table(self):
        out = render_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        assert "T" in out and "a" in out and "2.50" in out

    def test_render_markdown_table(self):
        out = render_markdown_table(["a"], [[1.0]])
        assert out.splitlines()[1] == "|---|"

    def test_render_contour(self):
        g = sweep("r", np.array([0.0, 1.0]), "c", np.array([0.0, 1.0]),
                  lambda r, c: r + c, metric="sum")
        out = render_contour(g)
        assert "sum" in out and "range" in out

    def test_render_contour_log(self):
        g = sweep("r", np.array([0.0, 1.0]), "c", np.array([0.0, 1.0]),
                  lambda r, c: 10 ** (r + c), metric="exp")
        out = render_contour(g, log_scale=True)
        assert "exp" in out

    def test_render_series(self):
        out = render_series("s", [1, 2], [3.0, 4.0], "x", "y")
        assert "3.00" in out
