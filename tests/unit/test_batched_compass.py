"""Unit tests for the batched multi-replica engine."""

import numpy as np
import pytest

from repro.compass.batched import (
    BatchedCompassSimulator,
    replica_seeds,
    run_batched_compass,
)
from repro.compass.compile import compile_network
from repro.compass.engine import run_engine, select_engine
from repro.compass.fast import FastCompassSimulator, n_input_builds, staged_inputs
from repro.core.builders import poisson_inputs, random_network
from repro.core.prng import derive_stream_seed
from repro.obs import Observer


def small_net(stochastic=False, seed=3):
    return random_network(
        n_cores=3, n_axons=12, n_neurons=12, stochastic=stochastic, seed=seed
    )


class TestConstruction:
    def test_default_seeds_are_network_seed(self):
        net = small_net(seed=9)
        sim = BatchedCompassSimulator(net, 4)
        assert sim.seeds == [9, 9, 9, 9]

    def test_replica_seeds_derivation(self):
        seeds = replica_seeds(7, 5)
        assert seeds[0] == 7  # lane 0 keeps the base seed
        assert len(set(seeds)) == 5  # pairwise distinct
        assert seeds[3] == derive_stream_seed(7, 3)

    def test_seed_count_must_match_lanes(self):
        with pytest.raises(ValueError, match="entries"):
            BatchedCompassSimulator(small_net(), 3, seeds=[1, 2])

    def test_lane_count_must_be_positive(self):
        with pytest.raises(ValueError, match="n_replicas"):
            BatchedCompassSimulator(small_net(), 0)

    def test_duplicate_seeds_warn_on_stochastic(self):
        sim = BatchedCompassSimulator(small_net(stochastic=True), 3)
        codes = {d.code for d in sim.lint_report.diagnostics}
        assert codes == {"TN401"}
        assert sim.lint_report.ok  # warning, not error

    def test_duplicate_seeds_silent_on_deterministic(self):
        sim = BatchedCompassSimulator(small_net(stochastic=False), 3)
        assert not sim.lint_report.diagnostics

    def test_accepts_compiled_artifact(self):
        net = small_net()
        compiled = compile_network(net)
        sim = BatchedCompassSimulator(compiled, 2)
        assert sim.compiled is compiled


class TestRunShapes:
    def test_run_returns_one_record_per_lane(self):
        net = small_net()
        ins = poisson_inputs(net, 10, 300.0, seed=1)
        records = run_batched_compass(net, 15, n_replicas=3, inputs=ins)
        assert len(records) == 3
        # Same seed + same inputs => identical replicas.
        assert records[0] == records[1] == records[2]

    def test_step_returns_lane_tuples(self):
        net = small_net()
        sim = BatchedCompassSimulator(net, 2)
        sim.load_inputs(poisson_inputs(net, 5, 2000.0, seed=1))
        spikes = []
        for _ in range(8):
            spikes.extend(sim.step())
        assert spikes, "expected some spikes under heavy drive"
        lanes = {s[0] for s in spikes}
        assert lanes <= {0, 1}
        assert all(len(s) == 4 for s in spikes)

    def test_aggregate_counters_sum_lanes(self):
        net = small_net()
        ins = poisson_inputs(net, 10, 500.0, seed=2)
        sim = BatchedCompassSimulator(net, 3)
        sim.run(12, ins)
        agg = sim.aggregate_counters()
        assert agg.ticks == 36  # 12 passes x 3 lanes
        assert agg.spikes == sum(sim.lane_counters(b).spikes for b in range(3))
        assert agg.deliveries == sum(
            sim.lane_counters(b).deliveries for b in range(3)
        )
        assert sim.counters.ticks == agg.ticks

    def test_per_lane_schedule_list_length_checked(self):
        net = small_net()
        sim = BatchedCompassSimulator(net, 3)
        with pytest.raises(ValueError, match="schedules"):
            sim.load_inputs([None, None])

    def test_single_lane_schedule_targets_one_lane(self):
        net = small_net()
        ins = poisson_inputs(net, 8, 2000.0, seed=1)
        sim = BatchedCompassSimulator(net, 2)
        sim.load_inputs(ins, lane=1)
        records = sim.run(10)
        assert records[1].n_spikes >= records[0].n_spikes
        assert records[1].counters.deliveries > records[0].counters.deliveries


class TestEngineSelection:
    def test_explicit_batched_engine(self):
        sim = select_engine(small_net(), "batched", n_replicas=4)
        assert isinstance(sim, BatchedCompassSimulator)
        assert sim.n_replicas == 4

    def test_auto_routes_to_batched_for_replicas(self):
        sim = select_engine(small_net(), "auto", n_replicas=2)
        assert isinstance(sim, BatchedCompassSimulator)

    def test_auto_without_replicas_stays_fast(self):
        assert isinstance(select_engine(small_net(), "auto"), FastCompassSimulator)

    def test_replicas_on_other_engine_rejected(self):
        with pytest.raises(ValueError, match="batched"):
            select_engine(small_net(), "fast", n_replicas=2)

    def test_run_engine_threads_replica_seeds(self):
        net = small_net(stochastic=True)
        ins = poisson_inputs(net, 10, 300.0, seed=1)
        seeds = replica_seeds(net.seed, 2)
        records = run_engine(
            net, 15, ins, engine="batched", n_replicas=2, replica_seeds=seeds,
        )
        assert len(records) == 2
        # Distinct seeds on a stochastic network => distinct trajectories.
        assert records[0] != records[1]


class TestInputStagingCache:
    def test_repeat_runs_share_converted_arrays(self):
        net = small_net()
        compiled = compile_network(net)
        ins = poisson_inputs(net, 10, 400.0, seed=5)
        before = n_input_builds()
        first = staged_inputs(compiled, ins)
        assert n_input_builds() == before + 1
        assert staged_inputs(compiled, ins) is first  # cache hit
        assert n_input_builds() == before + 1

    def test_cache_invalidated_by_new_events(self):
        net = small_net()
        compiled = compile_network(net)
        ins = poisson_inputs(net, 10, 400.0, seed=5)
        staged_inputs(compiled, ins)
        before = n_input_builds()
        ins.add(3, 0, 0)
        staged = staged_inputs(compiled, ins)
        assert n_input_builds() == before + 1
        assert compiled.axon_base[0] + 0 in staged[3]

    def test_cache_keyed_by_compiled_artifact(self):
        net_a, net_b = small_net(seed=1), small_net(seed=2)
        ca, cb = compile_network(net_a), compile_network(net_b)
        ins = poisson_inputs(net_a, 10, 400.0, seed=5)
        staged_inputs(ca, ins)
        before = n_input_builds()
        staged_inputs(cb, ins)  # different artifact => rebuild
        assert n_input_builds() == before + 1

    def test_batch_lanes_share_one_schedule_conversion(self):
        net = small_net()
        ins = poisson_inputs(net, 10, 400.0, seed=5)
        sim = BatchedCompassSimulator(net, 8)
        before = n_input_builds()
        sim.load_inputs(ins)  # eight lanes, one conversion
        assert n_input_builds() == before + 1


class TestObservability:
    def test_batch_metrics_published(self):
        net = small_net()
        obs = Observer()
        sim = BatchedCompassSimulator(net, 4, obs=obs)
        sim.run(5, poisson_inputs(net, 5, 300.0, seed=1))
        snap = obs.metrics.snapshot()
        assert snap["repro_batch_lanes"] == 4
        assert snap["repro_batch_passes_total"] == 5
        assert snap["repro_lane_ticks_total"] == 20
        assert snap["repro_ticks_total"] == 20  # aggregate lane-ticks

    def test_phase_spans_recorded(self):
        net = small_net()
        obs = Observer()
        sim = BatchedCompassSimulator(net, 2, obs=obs)
        sim.run(3)
        names = {s.name for s in obs.trace.spans()}
        assert {"deliver", "integrate", "update", "route", "batch_pass"} <= names

    def test_disabled_observer_costs_nothing_visible(self):
        net = small_net()
        sim = BatchedCompassSimulator(net, 2)
        assert sim.obs is None
        sim.run(3)
