"""Tests for crossbar synaptic integration (repro.core.crossbar)."""

import numpy as np

from repro.core.crossbar import synaptic_input
from repro.core.network import Core


def make_core(crossbar, weights, axon_types=None, stoch=None):
    n_axons, n_neurons = crossbar.shape
    return Core.build(
        n_axons=n_axons,
        n_neurons=n_neurons,
        crossbar=crossbar,
        weights=weights,
        axon_types=axon_types,
        stoch_synapse=stoch,
    )


class TestDeterministicIntegration:
    def test_no_active_axons(self):
        core = make_core(np.ones((4, 4), dtype=bool), np.full((4, 4), 2))
        syn, n = synaptic_input(core, np.array([], dtype=np.int64), 0, 0, 0)
        assert n == 0 and np.array_equal(syn, np.zeros(4))

    def test_single_axon_fanout(self):
        xb = np.zeros((4, 4), dtype=bool)
        xb[1, :] = [True, False, True, False]
        core = make_core(xb, np.full((4, 4), 5))
        syn, n = synaptic_input(core, np.array([1]), 0, 0, 0)
        assert n == 2
        assert syn.tolist() == [5, 0, 5, 0]

    def test_event_count_is_sops(self):
        # SOPS counts (active axon x programmed synapse) pairs only.
        xb = np.zeros((4, 4), dtype=bool)
        xb[0, 0] = xb[0, 1] = xb[2, 3] = True
        core = make_core(xb, np.ones((4, 4), dtype=np.int64))
        _, n = synaptic_input(core, np.array([0, 1, 2]), 0, 0, 0)
        assert n == 3  # axon 1 has zero programmed synapses

    def test_axon_types_select_weight(self):
        xb = np.ones((2, 2), dtype=bool)
        weights = np.array([[1, 10, 100, -100], [2, 20, 200, -200]])
        core = make_core(xb, weights, axon_types=np.array([0, 2]))
        syn, _ = synaptic_input(core, np.array([0, 1]), 0, 0, 0)
        # neuron0: type0 w=1 + type2 w=100; neuron1: 2 + 200
        assert syn.tolist() == [101, 202]

    def test_inhibitory_weights(self):
        xb = np.ones((2, 2), dtype=bool)
        core = make_core(xb, np.full((2, 4), -3))
        syn, _ = synaptic_input(core, np.array([0, 1]), 0, 0, 0)
        assert syn.tolist() == [-6, -6]

    def test_unprogrammed_synapse_contributes_nothing(self):
        xb = np.zeros((2, 2), dtype=bool)
        core = make_core(xb, np.full((2, 4), 99))
        syn, n = synaptic_input(core, np.array([0, 1]), 0, 0, 0)
        assert n == 0 and syn.tolist() == [0, 0]


class TestStochasticIntegration:
    def test_bernoulli_statistics(self):
        n = 256
        xb = np.ones((1, n), dtype=bool)
        weights = np.full((n, 4), 64)  # P(contribution=1) = 64/256 = 0.25
        core = make_core(xb, weights, stoch=np.ones((n, 4), dtype=bool))
        total = 0
        for tick in range(40):
            syn, _ = synaptic_input(core, np.array([0]), 0, tick, 123)
            assert set(np.unique(syn)).issubset({0, 1})
            total += syn.sum()
        mean = total / (40 * n)
        assert 0.20 < mean < 0.30

    def test_stochastic_sign_follows_weight(self):
        n = 64
        xb = np.ones((1, n), dtype=bool)
        weights = np.full((n, 4), -128)
        core = make_core(xb, weights, stoch=np.ones((n, 4), dtype=bool))
        syn, _ = synaptic_input(core, np.array([0]), 0, 5, 7)
        assert set(np.unique(syn)).issubset({-1, 0})
        assert syn.sum() < 0  # P = 0.5, 64 trials: some must fire

    def test_full_magnitude_always_contributes(self):
        n = 16
        xb = np.ones((1, n), dtype=bool)
        weights = np.full((n, 4), -256)  # |w| = 256 > any u8 draw
        core = make_core(xb, weights, stoch=np.ones((n, 4), dtype=bool))
        syn, _ = synaptic_input(core, np.array([0]), 0, 0, 0)
        assert np.array_equal(syn, np.full(n, -1))

    def test_mixed_deterministic_and_stochastic(self):
        xb = np.ones((1, 2), dtype=bool)
        weights = np.array([[10, 0, 0, 0], [256 - 1, 0, 0, 0]])
        stoch = np.array([[False] * 4, [True] * 4])
        core = make_core(xb, weights, stoch=stoch)
        syn, _ = synaptic_input(core, np.array([0]), 0, 0, 0)
        assert syn[0] == 10  # deterministic neuron gets full weight
        assert syn[1] in (0, 1)  # stochastic neuron gets a unit Bernoulli

    def test_deterministic_repeatability(self):
        n = 32
        xb = np.ones((4, n), dtype=bool)
        weights = np.full((n, 4), 100)
        core = make_core(xb, weights, stoch=np.ones((n, 4), dtype=bool))
        a = synaptic_input(core, np.array([0, 2]), 1, 9, 55)
        b = synaptic_input(core, np.array([0, 2]), 1, 9, 55)
        assert np.array_equal(a[0], b[0]) and a[1] == b[1]

    def test_draws_differ_across_axons(self):
        n = 128
        xb = np.ones((2, n), dtype=bool)
        weights = np.full((n, 4), 128)
        core = make_core(xb, weights, stoch=np.ones((n, 4), dtype=bool))
        a, _ = synaptic_input(core, np.array([0]), 0, 0, 0)
        b, _ = synaptic_input(core, np.array([1]), 0, 0, 0)
        assert not np.array_equal(a, b)
