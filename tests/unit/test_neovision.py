"""Tests for the Neovision What/Where system."""

import numpy as np
import pytest

from repro.apps.neovision import (
    Detection,
    NeovisionSystem,
    extract_crop,
    match_detections,
    precision_recall,
    window_features,
)
from repro.apps.video import GroundTruthBox, generate_scene


class TestFeatureExtraction:
    def test_window_features_shape(self):
        crop = np.random.default_rng(0).random((16, 16))
        f = window_features(crop, block=4)
        assert f.shape == (16,)

    def test_block_averages(self):
        crop = np.zeros((8, 8))
        crop[:4, :4] = 1.0
        f = window_features(crop, block=4)
        assert f.tolist() == [1.0, 0.0, 0.0, 0.0]

    def test_extract_crop_padding(self):
        frame = np.ones((8, 8))
        crop = extract_crop(frame, 0, 0, 8)
        assert crop.shape == (8, 8)
        assert crop[0, 0] == 0.0  # padded corner
        assert crop[-1, -1] == 1.0


class TestMatching:
    def test_perfect_match(self):
        gt = [GroundTruthBox(0, "car", 2, 2, 5, 9)]
        det = [Detection("car", 2, 2, 5, 9)]
        assert match_detections(det, gt) == (1, 0, 0)

    def test_false_positive_and_negative(self):
        gt = [GroundTruthBox(0, "car", 2, 2, 5, 9)]
        det = [Detection("car", 20, 20, 4, 4)]
        assert match_detections(det, gt) == (0, 1, 1)

    def test_each_gt_matched_once(self):
        gt = [GroundTruthBox(0, "car", 2, 2, 5, 9)]
        det = [Detection("car", 2, 2, 5, 9), Detection("car", 2, 2, 5, 9)]
        tp, fp, fn = match_detections(det, gt)
        assert (tp, fp, fn) == (1, 1, 0)


class TestSystem:
    @pytest.fixture(scope="class")
    def system(self):
        sys_ = NeovisionSystem(height=32, width=48, seed=0)
        sys_.train(n_scenes=12)
        return sys_

    def test_training_produces_ternary_weights(self, system):
        assert system.weights is not None
        assert set(np.unique(system.weights)).issubset({-1, 0, 1})
        assert system.weights.shape == (system.n_features, len(system.classes))

    def test_where_finds_objects(self, system):
        scene = generate_scene(32, 48, n_frames=2, n_objects=2,
                               classes=system.classes, seed=900)
        boxes, saliency = system.where(scene)
        assert saliency.shape == (8, 12)
        assert len(boxes) >= 1

    def test_detect_produces_labeled_boxes(self, system):
        scene = generate_scene(32, 48, n_frames=2, n_objects=2,
                               classes=system.classes, seed=901)
        dets = system.detect(scene)
        assert len(dets) >= 1
        for det in dets:
            assert det.label in system.classes

    def test_precision_recall_in_paper_band(self, system):
        # Paper: 0.85 precision / 0.80 recall on Neovision2 Tower.  On the
        # synthetic scenes the system should be at least comparable.
        p, r = precision_recall(system, n_scenes=4)
        assert p >= 0.7
        assert r >= 0.7

    def test_untrained_system_refuses_detection(self):
        sys_ = NeovisionSystem(height=32, width=48)
        scene = generate_scene(32, 48, n_frames=2, seed=1)
        with pytest.raises(ValueError):
            sys_.detect(scene)
