"""Tests for the vision applications (Haar, LBP, saliency, saccade)."""

import numpy as np
import pytest

from repro.apps.haar import build_haar_pipeline, dominant_feature, run_haar
from repro.apps.lbp import build_lbp_pipeline, oriented_kernels, run_lbp
from repro.apps.saccade import build_saccade_pipeline, explored_locations, run_saccades
from repro.apps.saliency import build_saliency_pipeline, run_saliency, salient_patches


def patch_pattern(height, width, patch, py, px, kernel):
    """Frame that paints +1 kernel cells bright inside one patch."""
    frame = np.zeros((height, width))
    block = (kernel.reshape(patch, patch) > 0).astype(float)
    frame[py * patch : (py + 1) * patch, px * patch : (px + 1) * patch] = block
    return frame


class TestHaar:
    @pytest.fixture(scope="class")
    def pipe(self):
        return build_haar_pipeline(16, 16, 4)

    def test_structure(self, pipe):
        assert pipe.n_patches == 16
        assert pipe.n_features == 10
        assert len(pipe.pixel_pins) == 256
        assert len(pipe.feature_pins) == 160

    def test_matched_patch_fires_its_feature(self, pipe):
        from repro.corelets.library.filters import haar_kernels

        kernels = haar_kernels(4)
        frame = patch_pattern(16, 16, 4, 1, 2, kernels[:, 0])
        _, fmap = run_haar(pipe, frame[None].repeat(2, axis=0), ticks_per_frame=20)
        # the stimulated patch responds on feature 0 (and its twin 5)
        patch_resp = fmap[1, 2]
        assert patch_resp[[0, 5]].sum() > 0
        assert patch_resp[0] == patch_resp.max()
        # other patches mostly silent
        others = fmap.sum(axis=2) - np.eye(4)[1][:, None] * fmap[1].sum(axis=1)
        assert fmap[1, 2].sum() >= others.max()

    def test_uniform_input_suppressed(self, pipe):
        frame = np.full((16, 16), 0.8)
        _, fmap = run_haar(pipe, frame[None].repeat(2, axis=0), ticks_per_frame=20)
        # balanced kernels cancel on uniform input: any residual response
        # is shot noise, far below the ~40-spike matched-pattern response
        assert fmap.max() <= 6

    def test_dominant_feature_shape(self, pipe):
        frame = np.zeros((16, 16))
        _, fmap = run_haar(pipe, frame[None], ticks_per_frame=5)
        assert dominant_feature(fmap).shape == (4, 4)


class TestLBP:
    def test_oriented_kernels_cover_8_directions(self):
        k = oriented_kernels(8)
        assert k.shape == (64, 8)
        # opposite orientations are sign-flipped
        assert np.array_equal(k[:, 0], -k[:, 4])

    def test_histograms_respond_to_oriented_edge(self):
        pipe = build_lbp_pipeline(8, 8, patch=8, count_per_spike=2)
        assert pipe.n_subpatches == 1
        # vertical edge: bright left half -> orientation pointing left (d=4)
        frame = np.zeros((8, 8))
        frame[:, :4] = 1.0
        _, hist = run_lbp(pipe, frame[None].repeat(2, axis=0), ticks_per_frame=25)
        assert hist.shape == (1, 8)
        assert hist.sum() > 0
        # leftward orientation responds maximally (neighbours at
        # saturation may tie); the opposite orientation stays silent
        assert hist[0, 4] == hist[0].max()
        assert hist[0, 0] == 0

    def test_count_per_spike_divides_rate(self):
        fast = build_lbp_pipeline(8, 8, patch=8, count_per_spike=1)
        slow = build_lbp_pipeline(8, 8, patch=8, count_per_spike=4)
        frame = np.zeros((8, 8))
        frame[:, :4] = 1.0
        frames = frame[None].repeat(2, axis=0)
        _, h_fast = run_lbp(fast, frames, ticks_per_frame=25)
        _, h_slow = run_lbp(slow, frames, ticks_per_frame=25)
        assert h_fast.sum() >= 3 * h_slow.sum() > 0


class TestSaliency:
    @pytest.fixture(scope="class")
    def pipe(self):
        return build_saliency_pipeline(16, 16, 4)

    def test_bright_blob_is_salient(self, pipe):
        frame = np.zeros((16, 16))
        frame[5:7, 9:11] = 1.0  # small blob inside patch (1, 2)
        _, smap = run_saliency(pipe, frame[None].repeat(2, axis=0), ticks_per_frame=25)
        assert smap.shape == (4, 4)
        assert np.unravel_index(smap.argmax(), smap.shape) == (1, 2)

    def test_salient_patches_threshold(self, pipe):
        smap = np.array([[0, 0], [4, 10]])
        mask = salient_patches(smap, fraction=0.5)
        assert mask.tolist() == [[False, False], [False, True]]

    def test_empty_map(self):
        assert not salient_patches(np.zeros((2, 2))).any()


class TestSaccade:
    def test_wta_picks_strongest_then_explores(self):
        pipe = build_saccade_pipeline(8, suppression=255, recovery=24)
        rates = np.array([0.05, 0.05, 0.9, 0.05, 0.4, 0.05, 0.05, 0.05])
        _, seq = run_saccades(pipe, rates, n_ticks=150, seed=3)
        assert len(seq) > 0
        locations = [loc for _, loc in seq]
        # strongest location wins first
        assert locations[0] == 2
        # inhibition of return promotes exploration of the runner-up
        assert 4 in explored_locations(seq)

    def test_no_input_no_saccades(self):
        pipe = build_saccade_pipeline(4)
        _, seq = run_saccades(pipe, np.zeros(4), n_ticks=50)
        assert seq == []
