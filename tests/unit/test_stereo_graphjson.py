"""Tests for the stereo app and corelet-graph JSON export."""

import numpy as np
import pytest

from repro.apps.stereo import (
    build_stereo_pipeline,
    estimate_scene_disparity,
    stereo_pair_inputs,
)
from repro.core.builders import random_network
from repro.io.graph_json import (
    composition_graph,
    network_graph,
    read_graph_json,
    to_networkx,
    write_graph_json,
)


class TestStereo:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return build_stereo_pipeline(16, (0, 1, 2, 3))

    @pytest.fixture(scope="class")
    def pattern(self):
        rng = np.random.default_rng(2)
        return (rng.random(16) < 0.4).astype(float)

    @pytest.mark.parametrize("true_d", [0, 1, 2, 3])
    def test_recovers_true_disparity(self, pipeline, pattern, true_d):
        _, estimated = estimate_scene_disparity(pipeline, pattern, true_d)
        assert estimated == true_d

    def test_matched_bank_dominates(self, pipeline, pattern):
        rec, _ = estimate_scene_disparity(pipeline, pattern, 2)
        energies = pipeline.disparity_energies(rec)
        matched = energies[2]
        others = [v for d, v in energies.items() if d != 2]
        assert matched > 1.5 * max(others)

    def test_pattern_width_validated(self, pipeline):
        with pytest.raises(ValueError):
            stereo_pair_inputs(pipeline, np.ones(5), 1)

    def test_disparity_range_validated(self):
        with pytest.raises(ValueError):
            build_stereo_pipeline(4, (0, 5))


class TestGraphJSON:
    def test_network_graph_structure(self):
        net = random_network(n_cores=4, connectivity=0.5, seed=3)
        graph = network_graph(net)
        assert len(graph["nodes"]) == 4
        assert all(n["synapses"] > 0 for n in graph["nodes"])
        # every edge endpoint is a valid node
        ids = {n["id"] for n in graph["nodes"]}
        for edge in graph["edges"]:
            assert edge["src"] in ids and edge["dst"] in ids
            assert edge["neurons"] >= 1

    def test_edge_neuron_counts_sum_to_routed(self):
        net = random_network(n_cores=3, seed=7)
        graph = network_graph(net)
        total_edges = sum(e["neurons"] for e in graph["edges"])
        routed = sum(
            int((c.target_core != -1).sum()) for c in net.cores
        )
        assert total_edges == routed

    def test_composition_graph_includes_connectors(self):
        from repro.apps.haar import build_haar_pipeline

        pipe = build_haar_pipeline(8, 8, 4)
        graph = composition_graph(pipe.compiled)
        assert "pixels" in graph["inputs"]
        assert len(graph["inputs"]["pixels"]) == 64
        assert "features" in graph["outputs"]

    def test_file_roundtrip(self, tmp_path):
        net = random_network(n_cores=2, seed=1)
        graph = network_graph(net)
        path = tmp_path / "graph.json"
        write_graph_json(path, graph)
        assert read_graph_json(path) == graph

    def test_bad_version_rejected(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ValueError):
            read_graph_json(path)

    def test_to_networkx(self):
        net = random_network(n_cores=4, connectivity=0.5, seed=3)
        g = to_networkx(network_graph(net))
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == len(network_graph(net)["edges"])
