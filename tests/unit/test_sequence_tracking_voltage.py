"""Tests for sequence detection, tracking, and the voltage study."""

import pytest

from repro.apps.neovision import NeovisionSystem
from repro.apps.tracking import Track, Tracker, evaluate_tracking, track_scene
from repro.apps.video import generate_scene
from repro.apps.workloads import ANCHOR_A, ANCHOR_C, characterization_workload
from repro.core import params
from repro.core.inputs import InputSchedule
from repro.corelets.library.sequence import sequence_detector_network
from repro.experiments.voltage import (
    evaluate_point,
    minimum_feasible_voltage,
    optimal_operating_point,
    voltage_study,
)
from repro.hardware.simulator import run_truenorth


class TestSequenceDetector:
    def fire(self, compiled, times, horizon=None):
        pins = compiled.inputs["in"]
        ins = InputSchedule()
        for ch, t in enumerate(times):
            if t is not None:
                ins.add(t, pins[ch].core, pins[ch].index)
        horizon = horizon or (max(t for t in times if t is not None) + 12)
        rec = run_truenorth(compiled.network, horizon, ins)
        out = {(p.core, p.index) for p in compiled.outputs["out"]}
        return [t for t, c, n in rec.as_tuples() if (c, n) in out]

    def test_correct_sequence_detected(self):
        compiled = sequence_detector_network([0, 2, 5])
        fired = self.fire(compiled, [0, 2, 5])
        assert len(fired) == 1

    def test_wrong_order_rejected(self):
        compiled = sequence_detector_network([0, 2, 5])
        assert self.fire(compiled, [5, 2, 0]) == []

    def test_wrong_spacing_rejected(self):
        compiled = sequence_detector_network([0, 2, 5])
        assert self.fire(compiled, [0, 3, 5]) == []

    def test_missing_channel_rejected(self):
        compiled = sequence_detector_network([0, 2, 5])
        assert self.fire(compiled, [0, 2, None], horizon=20) == []

    def test_shifted_sequence_still_detected(self):
        # relative timing is what matters, not absolute start
        compiled = sequence_detector_network([0, 2, 5])
        assert len(self.fire(compiled, [7, 9, 12])) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            sequence_detector_network([0])
        with pytest.raises(ValueError):
            sequence_detector_network([-1, 2])


class TestTracker:
    def test_straight_line_association(self):
        tracker = Tracker(max_match_distance=3.0)
        for f in range(5):
            tracker.update(f, [(10.0, 5.0 + f)])
        tracks = tracker.completed_tracks()
        assert len(tracks) == 1
        assert tracks[0].length == 5
        vy, vx = tracks[0].velocity
        assert vx == pytest.approx(1.0)
        assert vy == pytest.approx(0.0)

    def test_two_objects_stay_separate(self):
        tracker = Tracker(max_match_distance=3.0)
        for f in range(4):
            tracker.update(f, [(5.0, 5.0 + f), (20.0, 30.0 - f)])
        tracks = tracker.completed_tracks()
        assert len(tracks) == 2
        assert {round(t.velocity[1]) for t in tracks} == {1, -1}

    def test_distance_gate_opens_new_track(self):
        tracker = Tracker(max_match_distance=2.0)
        tracker.update(0, [(0.0, 0.0)])
        tracker.update(1, [(0.0, 30.0)])  # jumped too far: new track
        assert len(tracker.tracks) == 2
        assert tracker.completed_tracks() == []

    def test_track_velocity_single_point(self):
        t = Track(0)
        t.add(0, (1.0, 1.0))
        assert t.velocity == (0.0, 0.0)


class TestSpikingTrackingEndToEnd:
    @pytest.mark.slow
    def test_tracks_moving_object(self):
        system = NeovisionSystem(height=24, width=48, seed=0)
        scene = generate_scene(24, 48, n_frames=5, n_objects=1,
                               classes=("car",), seed=42)
        result = evaluate_tracking(system, scene)
        assert result["n_tracks"] >= 1
        assert result["coverage"] > 0.5
        assert result["mean_position_error"] < 8.0

    def test_requires_multiple_frames(self):
        system = NeovisionSystem(height=24, width=48, seed=0)
        scene = generate_scene(24, 48, n_frames=1, seed=1)
        with pytest.raises(ValueError):
            track_scene(system, scene)


class TestVoltageStudy:
    def test_light_workload_runs_at_floor(self):
        v = minimum_feasible_voltage(ANCHOR_A)
        assert v == pytest.approx(params.MIN_FUNCTIONAL_VOLTAGE, abs=0.02)

    def test_worst_case_needs_higher_voltage(self):
        worst = characterization_workload(1000.0, 256.0)
        v = minimum_feasible_voltage(worst)
        assert v is not None
        assert v > minimum_feasible_voltage(ANCHOR_A)

    def test_infeasible_demand_returns_none(self):
        worst = characterization_workload(1000.0, 256.0)
        assert minimum_feasible_voltage(worst, tick_frequency_hz=10_000.0) is None

    def test_optimal_is_most_efficient_feasible(self):
        optimal = optimal_operating_point(ANCHOR_C)
        nominal = evaluate_point(ANCHOR_C, params.NOMINAL_VOLTAGE)
        assert optimal.feasible
        assert optimal.gsops_per_watt >= nominal.gsops_per_watt

    def test_study_table(self):
        rows = voltage_study([ANCHOR_A, ANCHOR_C])
        assert all(r["feasible"] for r in rows)
        for r in rows:
            assert 0.0 <= r["saving_vs_nominal"] < 1.0
            assert r["saving_vs_max"] > r["saving_vs_nominal"]
