"""Tests for live report generation and Compass phase profiling."""

import pytest

from repro.cli import main
from repro.compass.simulator import CompassSimulator
from repro.core.builders import poisson_inputs, random_network
from repro.experiments.report_gen import generate_report


class TestReportGeneration:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report()

    def test_all_sections_present(self, report):
        for marker in (
            "Headline (TAB1)",
            "TrueNorth vs Compass (FIG6)",
            "Vision applications (FIG7)",
            "BG/Q strong scaling (FIG8)",
            "One-to-one equivalence (EQ1/EQ2)",
            "Future systems (TAB2)",
            "Ablations",
        ):
            assert marker in report

    def test_headline_claims_hold_in_report(self, report):
        # the generated text carries the live headline numbers
        assert "46" in report and "GSOPS/W" in report
        assert "mismatches" in report

    def test_equivalence_shows_zero_mismatches(self, report):
        # every row of the equivalence table must end in 0 mismatches
        lines = [
            line for line in report.splitlines()
            if line.startswith("| single-core")
            or line.startswith("| multi-core")
            or line.startswith("| recurrent")
        ]
        assert len(lines) == 3
        for line in lines:
            assert line.rstrip("| ").endswith("0")

    def test_cli_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "generated.md"
        assert main(["report", "--output", str(out)]) == 0
        assert "wrote report" in capsys.readouterr().out
        assert "Generated experiment report" in out.read_text()


class TestPhaseProfiling:
    def test_phases_accumulate(self):
        net = random_network(n_cores=4, connectivity=0.5, seed=2)
        ins = poisson_inputs(net, 10, 400.0, seed=1)
        sim = CompassSimulator(net, n_ranks=2, profile=True)
        sim.run(10, ins)
        assert sim.phase_seconds["synapse_neuron"] > 0
        assert sim.phase_seconds["network"] > 0
        # compute dominates communication for an in-process exchange
        assert sim.phase_seconds["synapse_neuron"] > sim.phase_seconds["network"]

    def test_profiling_off_by_default(self):
        net = random_network(n_cores=2, seed=1)
        sim = CompassSimulator(net)
        sim.run(5)
        # Untimed: every phase (canonical + legacy aggregates) reads zero.
        assert set(sim.phase_seconds) >= {"synapse_neuron", "network"}
        assert all(v == 0.0 for v in sim.phase_seconds.values())

    def test_profiling_does_not_change_results(self):
        net = random_network(n_cores=3, stochastic=True, seed=9)
        ins = poisson_inputs(net, 12, 300.0, seed=4)
        a = CompassSimulator(net, profile=True).run(12, ins)
        b = CompassSimulator(net, profile=False).run(12, ins)
        assert a == b
