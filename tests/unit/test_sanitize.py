"""Sanitizer tests: protocol tables, shadow views, the vector-clock
analyzer, static mutation fixtures, dynamic clean sweeps over every
builtin network on both engines, and fault-injection detection."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

import repro.compass.parallel as parallel_mod
from repro.cli import main as cli_main
from repro.compass.batched import BatchedCompassSimulator
from repro.compass.parallel import ParallelCompassSimulator
from repro.core.builders import poisson_inputs
from repro.lint.diagnostics import Severity
from repro.lint.examples import BUILTIN_NETWORKS
from repro.sanitize import (
    BATCHED_PROTOCOL,
    PARALLEL_PROTOCOL,
    SANITIZE_CODES,
    Access,
    AccessEvent,
    AccessRecorder,
    FaultInjection,
    analyze_access_log,
    apply_overlap_relabel,
    check_parallel_text,
    check_protocol_sources,
    resolve_fault,
    sanitize_enabled,
    shadow_view,
    stamp_vector_clocks,
    sweep_buffer_bindings,
)
from repro.sanitize.protocol import TickProtocol, role_of_actor

PARALLEL_SOURCE = Path(parallel_mod.__file__).read_text(encoding="utf-8")


def _network(name: str = "recurrent-stochastic"):
    return BUILTIN_NETWORKS[name]()


def _ev(actor, seq, kind, region=None, lo=0, hi=0, tick=0, phase="init", peer=None):
    return AccessEvent(
        actor=actor, seq=seq, tick=tick, phase=phase, kind=kind,
        region=region, lo=lo, hi=hi, peer=peer,
    )


class TestProtocolTables:
    def test_code_registry(self):
        expected = {
            "SL200", "SL201", "SL202", "SL203", "SL204", "SL205",
            "SL210", "SL211", "SL212",
        }
        assert set(SANITIZE_CODES) == expected
        for code, info in SANITIZE_CODES.items():
            assert info.hint, code
            want = Severity.WARNING if code == "SL204" else Severity.ERROR
            assert info.severity is want, code

    def test_parallel_regions(self):
        assert set(PARALLEL_PROTOCOL.regions) == {
            "ring", "spikes", "outbox", "stats", "obs",
        }
        assert PARALLEL_PROTOCOL.region("obs").opaque
        assert PARALLEL_PROTOCOL.region("missing") is None

    def test_static_allows(self):
        ring = PARALLEL_PROTOCOL.region("ring")
        assert ring.static_allows("worker", "tick", "R")
        assert ring.static_allows("worker", "tick", "w")
        assert ring.static_allows("coordinator", "scatter", "W")
        assert not ring.static_allows("coordinator", "scatter", "R")
        assert not ring.static_allows("worker", "setup", "W")
        stats = PARALLEL_PROTOCOL.region("stats")
        assert stats.static_allows("coordinator", "gather", "R")
        assert not stats.static_allows("coordinator", "gather", "W")

    def test_dynamic_allows_uses_runtime_phases(self):
        # The worker's static "tick" phase splits into deliver/route at
        # runtime; the static label itself is not a runtime phase.
        ring = PARALLEL_PROTOCOL.region("ring")
        assert ring.dynamic_allows("worker", "deliver", "R")
        assert ring.dynamic_allows("worker", "route", "W")
        assert not ring.dynamic_allows("worker", "tick", "W")
        v = BATCHED_PROTOCOL.region("v")
        assert v.dynamic_allows("engine", "update", "W")
        assert v.dynamic_allows("engine", "reset", "W")
        assert not v.dynamic_allows("engine", "route", "W")

    def test_role_of_actor(self):
        assert role_of_actor("coord") == "coordinator"
        assert role_of_actor("rank0") == "worker"
        assert role_of_actor("rank12") == "worker"
        assert role_of_actor("engine") == "engine"

    def test_sanitize_enabled(self, monkeypatch):
        assert sanitize_enabled(True)
        assert not sanitize_enabled(False)
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled(None)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled(None)
        # An explicit False beats the environment.
        assert not sanitize_enabled(False)

    def test_resolve_fault(self):
        assert resolve_fault(None) is None
        fault = resolve_fault("drop-barrier:2:5")
        assert fault == FaultInjection("drop-barrier", rank=2, tick=5)
        assert resolve_fault(fault) is fault
        with pytest.raises(ValueError):
            resolve_fault("melt-the-bus")


class TestShadowArray:
    def _fresh(self, n=8):
        rec = AccessRecorder("coord")
        rec.set_context(0, "scatter")
        base = np.zeros((n, 4), dtype=np.int64)
        return rec, shadow_view(base, ("rank0", "ring"), rec)

    def test_zero_copy_view(self):
        base = np.arange(8, dtype=np.int64)
        rec = AccessRecorder("coord")
        view = shadow_view(base, ("rank0", "spikes"), rec)
        view[3] = 99
        assert base[3] == 99

    def test_int_key_span_is_exact(self):
        rec, arr = self._fresh()
        arr[2]
        (event,) = rec.events
        assert (event.kind, event.lo, event.hi) == ("R", 2, 3)
        rec.set_context(0, "gather")
        arr[-1]
        assert (rec.events[-1].lo, rec.events[-1].hi) == (7, 8)

    def test_slice_key_span_is_exact(self):
        rec, arr = self._fresh()
        arr[1:5]
        (event,) = rec.events
        assert (event.lo, event.hi) == (1, 5)

    def test_fancy_index_is_conservative(self):
        rec, arr = self._fresh()
        arr[np.array([0, 6])]
        (event,) = rec.events
        assert (event.lo, event.hi) == (0, 8)

    def test_setitem_records_write_without_phantom_read(self):
        # numpy re-enters __getitem__ during some slice assignments;
        # the recorder must be muted for the duration (regression).
        rec, arr = self._fresh()
        arr[0:3] = 7
        (event,) = rec.events
        assert (event.kind, event.lo, event.hi) == ("W", 0, 3)
        arr[:, 0] = np.arange(8)
        assert [e.kind for e in rec.events] == ["W"]

    def test_direct_child_tracks_with_refined_span(self):
        rec, arr = self._fresh()
        row = arr[5]
        rec.set_context(0, "gather")
        row[0] = 1
        event = rec.events[-1]
        assert (event.kind, event.lo, event.hi) == ("W", 5, 6)

    def test_copies_and_ufunc_results_are_inert(self):
        rec, arr = self._fresh()
        private = arr.copy()
        private[0] = 1
        (arr + 1)[0]
        assert rec.events == []  # nothing above touched shared memory

    def test_coalescing_merges_within_segment(self):
        rec, arr = self._fresh()
        arr[0]
        arr[6]
        (event,) = rec.events
        assert (event.lo, event.hi, event.count) == (0, 7, 2)
        rec.barrier("send", "rank0", 0)
        arr[1]
        assert rec.events[-1].count == 1  # barrier closed the window


class TestAnalyzer:
    def test_ordered_pair_is_clean(self):
        events = [
            _ev("coord", 1, "W", ("rank0", "spikes"), 0, 4, phase="init"),
            _ev("coord", 2, "send", peer="rank0", tick=0),
            _ev("rank0", 1, "recv", peer="coord", tick=0),
            _ev("rank0", 2, "W", ("rank0", "spikes"), 0, 4, tick=0, phase="route"),
        ]
        report = analyze_access_log(events, PARALLEL_PROTOCOL)
        assert len(report) == 0, report.render_text()

    def test_unordered_overlapping_writes_race(self):
        events = [
            _ev("coord", 1, "W", ("rank0", "spikes"), 0, 4, phase="init"),
            _ev("rank0", 1, "W", ("rank0", "spikes"), 2, 6, tick=0, phase="route"),
        ]
        report = analyze_access_log(events, PARALLEL_PROTOCOL)
        assert report.codes() == ["SL210"]

    def test_disjoint_spans_do_not_race(self):
        events = [
            _ev("coord", 1, "W", ("rank0", "spikes"), 0, 2, phase="init"),
            _ev("rank0", 1, "W", ("rank0", "spikes"), 2, 6, tick=0, phase="route"),
        ]
        assert len(analyze_access_log(events, PARALLEL_PROTOCOL)) == 0

    def test_concurrent_reads_do_not_race(self):
        events = [
            _ev("coord", 1, "R", ("rank0", "stats"), 0, 4, phase="gather"),
            _ev("rank0", 1, "R", ("rank0", "ring"), 0, 4, tick=0, phase="deliver"),
            _ev("rank1", 1, "R", ("rank0", "ring"), 0, 4, tick=0, phase="deliver"),
        ]
        assert len(analyze_access_log(events, PARALLEL_PROTOCOL)) == 0

    def test_out_of_phase_access(self):
        events = [_ev("engine", 1, "W", ("batch", "v"), 0, 2, phase="route")]
        report = analyze_access_log(events, BATCHED_PROTOCOL)
        assert report.codes() == ["SL211"]

    def test_undeclared_region_is_out_of_phase(self):
        events = [_ev("engine", 1, "W", ("batch", "rogue"), 0, 2, phase="update")]
        report = analyze_access_log(events, BATCHED_PROTOCOL)
        assert report.codes() == ["SL211"]
        assert "not declared" in report.render_text()

    def test_torn_barrier_reports_sl212(self):
        events = [
            _ev("rank0", 1, "recv", peer="coord", tick=3),
            _ev("rank0", 2, "W", ("rank0", "spikes"), 0, 4, tick=3, phase="route"),
        ]
        report = analyze_access_log(events, PARALLEL_PROTOCOL)
        assert "SL212" in report.codes()
        assert "rank0" in report.render_text()

    def test_stamp_vector_clocks_orders_across_channel(self):
        a = _ev("coord", 1, "send", peer="rank0", tick=0)
        b = _ev("rank0", 1, "recv", peer="coord", tick=0)
        c = _ev("rank0", 2, "W", ("rank0", "spikes"), 0, 1, tick=0, phase="route")
        leftover = stamp_vector_clocks([a, b, c])
        assert leftover == []
        coord_i = 0  # actors sort as ["coord", "rank0"]
        assert c.vc[coord_i] >= a.vc[coord_i]

    def test_stamp_vector_clocks_returns_blocked_suffix(self):
        blocked = _ev("rank0", 1, "recv", peer="coord", tick=9)
        tail = _ev("rank0", 2, "R", ("rank0", "ring"), 0, 1, tick=9, phase="deliver")
        leftover = stamp_vector_clocks([blocked, tail])
        assert leftover == [blocked, tail]

    def test_overlap_relabel_moves_rank_events(self):
        mine = _ev("rank1", 1, "W", ("rank1", "ring"), 0, 4, phase="deliver")
        other = _ev("rank1", 2, "W", ("rank1", "spikes"), 0, 4, phase="route")
        apply_overlap_relabel([mine, other], FaultInjection("overlap-slices", rank=1))
        assert mine.region == ("rank0", "ring")
        assert other.region == ("rank1", "spikes")  # only ring is relabelled


class TestStaticChecker:
    """check_parallel_text over the real source plus textual mutations."""

    def _codes(self, text, protocol=PARALLEL_PROTOCOL):
        return check_parallel_text(text, protocol=protocol).codes()

    def _mutate(self, anchor: str, replacement: str) -> str:
        assert anchor in PARALLEL_SOURCE, f"mutation anchor drifted: {anchor!r}"
        return PARALLEL_SOURCE.replace(anchor, replacement, 1)

    def test_real_source_is_clean(self):
        report = check_parallel_text(PARALLEL_SOURCE, Path(parallel_mod.__file__))
        assert len(report) == 0, report.render_text()

    def test_all_protocol_sources_are_clean(self):
        report = check_protocol_sources()
        assert len(report) == 0, report.render_text()

    def test_undeclared_buffer_binding_sl200(self):
        mutated = self._mutate('buffer=shms["stats"].buf', 'buffer=shms["rogue"].buf')
        assert "SL200" in self._codes(mutated)

    def test_out_of_protocol_access_sl201(self):
        anchor = "            stats = self._stats[rank]\n"
        mutated = self._mutate(anchor, anchor + "            stats[0] = 99\n")
        codes = self._codes(mutated)
        assert "SL201" in codes, codes

    def test_access_in_barrier_window_sl202(self):
        anchor = (
            "        for rank in range(self.n_workers):\n"
            "            self._barrier_recv(rank)\n"
        )
        mutated = self._mutate(
            anchor, "        self._rings[0][0, 0] = True\n" + anchor
        )
        codes = self._codes(mutated)
        assert "SL202" in codes, codes

    def test_worker_access_after_reply_sl203(self):
        anchor = "            conn.send(tick)\n    except Exception:"
        mutated = self._mutate(
            anchor,
            "            conn.send(tick)\n"
            "            ring[0, 0] = False\n"
            "    except Exception:",
        )
        codes = self._codes(mutated)
        assert "SL203" in codes, codes

    def test_missing_barrier_edge_sl205(self):
        anchor = (
            "        for rank in range(self.n_workers):\n"
            "            self._barrier_recv(rank)\n"
        )
        mutated = self._mutate(anchor, "")
        assert "SL205" in self._codes(mutated)

    def test_stale_protocol_accessor_sl204(self):
        # A declared access the source never performs is a WARNING, so
        # the report stays clean at the default ERROR threshold.
        stats = PARALLEL_PROTOCOL.region("stats")
        phantom = dataclasses.replace(
            stats, accesses=stats.accesses + (Access("coordinator", "teardown", "r"),)
        )
        regions = dict(PARALLEL_PROTOCOL.regions)
        regions["stats"] = phantom
        protocol = TickProtocol(
            engine=PARALLEL_PROTOCOL.engine, regions=regions,
            roles=PARALLEL_PROTOCOL.roles, barrier=PARALLEL_PROTOCOL.barrier,
        )
        report = check_parallel_text(PARALLEL_SOURCE, protocol=protocol)
        assert report.codes() == ["SL204"]
        assert report.clean(Severity.ERROR)
        assert not report.clean(Severity.WARNING)

    def test_allow_pragma_suppresses(self):
        anchor = "            stats = self._stats[rank]\n"
        dirty = self._mutate(anchor, anchor + "            stats[0] = 99\n")
        clean = self._mutate(
            anchor,
            anchor + "            stats[0] = 99  # repro-lint: allow=SL201\n",
        )
        assert "SL201" in self._codes(dirty)
        assert "SL201" not in self._codes(clean)

    def test_sweep_flags_shm_buffer_bindings(self):
        text = (
            "import numpy as np\n"
            "arr = np.ndarray(8, dtype=np.int64, buffer=shm.buf)\n"
        )
        assert sweep_buffer_bindings(text, "rogue.py").codes() == ["SL200"]
        # Mediated (non-shm) buffers are not region bindings.
        mediated = "import numpy as np\narr = np.ndarray(8, buffer=buf)\n"
        assert len(sweep_buffer_bindings(mediated, "strip.py")) == 0


class TestDynamicCleanSweep:
    """Every builtin network runs clean under the sanitizer (satellite c)."""

    @pytest.mark.parametrize("name", sorted(BUILTIN_NETWORKS))
    def test_parallel_engine_clean(self, name):
        network = _network(name)
        inputs = poisson_inputs(network, 4, 200.0, seed=1)
        sim = ParallelCompassSimulator(network, n_workers=2, sanitize=True)
        sim.run(4, inputs)
        report = sim.sanitize_report
        assert report is not None
        assert len(report) == 0, report.render_text()

    @pytest.mark.parametrize("name", sorted(BUILTIN_NETWORKS))
    def test_batched_engine_clean(self, name):
        network = _network(name)
        inputs = poisson_inputs(network, 4, 200.0, seed=1)
        sim = BatchedCompassSimulator(network, n_replicas=2, sanitize=True)
        sim.run(4, inputs)
        report = sim.sanitize_report
        assert report is not None
        assert len(report) == 0, report.render_text()

    def test_disabled_mode_builds_no_report(self):
        network = _network()
        sim = ParallelCompassSimulator(network, n_workers=2, sanitize=False)
        sim.run(2)
        assert sim.sanitize_report is None
        batched = BatchedCompassSimulator(network, n_replicas=2, sanitize=False)
        batched.run(2)
        assert batched.sanitize_report is None


class TestFaultDetection:
    """Each injected protocol tear must be caught (acceptance gate)."""

    def _parallel_report(self, fault):
        network = _network()
        inputs = poisson_inputs(network, 6, 200.0, seed=1)
        sim = ParallelCompassSimulator(
            network, n_workers=2, sanitize=True, sanitize_fault=fault
        )
        sim.run(6, inputs)
        assert sim.sanitize_report is not None
        return sim.sanitize_report

    def test_drop_barrier_detected(self):
        report = self._parallel_report(FaultInjection("drop-barrier", rank=1, tick=2))
        assert "SL210" in report.codes(), report.render_text()

    def test_overlap_slices_detected(self):
        report = self._parallel_report(FaultInjection("overlap-slices", rank=1))
        assert "SL210" in report.codes(), report.render_text()

    def test_out_of_phase_write_detected_on_batched(self):
        network = _network()
        inputs = poisson_inputs(network, 6, 200.0, seed=1)
        sim = BatchedCompassSimulator(
            network, n_replicas=2, sanitize=True,
            sanitize_fault=FaultInjection("out-of-phase-write", tick=2),
        )
        sim.run(6, inputs)
        report = sim.sanitize_report
        assert report is not None
        assert "SL211" in report.codes(), report.render_text()


class TestCli:
    def test_static_only_strict_passes(self):
        assert cli_main(["sanitize", "--static-only", "--strict"]) == 0

    def test_dynamic_builtin_single_model(self):
        code = cli_main([
            "sanitize", "haar", "--dynamic-only", "--engine", "batched",
            "--ticks", "3",
        ])
        assert code == 0

    def test_expect_findings_inverts_exit(self):
        argv = [
            "sanitize", "recurrent-stochastic", "--dynamic-only",
            "--engine", "batched", "--ticks", "4",
            "--fault", "out-of-phase-write:1:2",
        ]
        assert cli_main(argv + ["--expect-findings"]) == 0
        assert cli_main(argv) == 1

    def test_json_output(self, capsys):
        assert cli_main(["sanitize", "--static-only", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"] == []
