"""Executable check of docs/tutorial.md: the burst detector walkthrough."""

import numpy as np

from repro.compass import CompassSimulator
from repro.core import InputSchedule, params
from repro.core.network import Core
from repro.core.workload import WorkloadDescriptor
from repro.corelets.corelet import Composition, Corelet
from repro.corelets.inspect import report_text
from repro.corelets.library import relay, splitter
from repro.hardware import EnergyModel, TimingModel, TrueNorthSimulator


def burst_detector(n: int, name: str = "burst") -> Corelet:
    core = Core.build(
        n_axons=n, n_neurons=n,
        crossbar=np.eye(n, dtype=bool),
        weights=np.full((n, params.NUM_AXON_TYPES), 32),
        threshold=64,
        leak=-8,
        leak_reversal=True,
        neg_threshold=0,
        reset_value=0,
        name=f"{name}/core",
    )
    corelet = Corelet(name)
    idx = corelet.add_core(core)
    corelet.input_connector("in", [(idx, a) for a in range(n)])
    corelet.output_connector("out", [(idx, j) for j in range(n)])
    return corelet


class TestTutorial:
    def build(self):
        comp = Composition(name="burst-demo", seed=7)
        sp = splitter(8, 2)
        det = burst_detector(8)
        passthru = relay(8)
        comp.connect(sp.outputs["out0"], det.inputs["in"])
        comp.connect(sp.outputs["out1"], passthru.inputs["in"])
        comp.export_input("in", sp.inputs["in"])
        comp.export_output("bursts", det.outputs["out"])
        comp.export_output("copy", passthru.outputs["out"])
        return comp.compile()

    def test_burst_detector_fires_on_burst_only(self):
        compiled = self.build()
        ins = InputSchedule()
        pin = compiled.inputs["in"][3]
        for t in (5, 6, 8, 20, 30, 34, 38):
            ins.add(t, pin.core, pin.index)

        hw = TrueNorthSimulator(compiled.network).run(50, ins)
        sw = CompassSimulator(compiled.network, n_ranks=4).run(50, ins)
        assert hw == sw

        burst_pins = {(p.core, p.index) for p in compiled.outputs["bursts"]}
        bursts = [t for t, c, n in hw.as_tuples() if (c, n) in burst_pins]
        # exactly one burst (3 spikes within 4 ticks), detected once
        assert len(bursts) == 1
        # input burst completes at t=8; splitter adds 1 tick, detector
        # integrates on arrival
        assert bursts[0] == 9

        copy_pins = {(p.core, p.index) for p in compiled.outputs["copy"]}
        copies = [t for t, c, n in hw.as_tuples() if (c, n) in copy_pins]
        assert len(copies) == 7  # passthrough sees every input spike

    def test_models_and_reporting_run(self):
        compiled = self.build()
        text = report_text(compiled.network)
        assert "chips required: 1" in text

        ins = InputSchedule()
        pin = compiled.inputs["in"][0]
        for t in range(10):
            ins.add(t, pin.core, pin.index)
        hw = TrueNorthSimulator(compiled.network).run(12, ins)

        assert EnergyModel().energy_for_run_j(hw.counters) > 0
        assert TimingModel().max_frequency_for_run_khz(hw.counters) > 1.0
        w = WorkloadDescriptor.from_counters(
            "burst", hw.counters, compiled.network.n_cores
        )
        full = w.scaled_to(n_neurons=2**20, n_cores=4096)
        assert EnergyModel().gsops_per_watt(full.rate_hz, full.active_synapses) >= 0
