"""Tests for the counter-based PRNG (repro.core.prng)."""

import numpy as np
import pytest

from repro.core import prng


class TestDeterminism:
    def test_same_coordinates_same_draws(self):
        a = prng.draw_u8(42, prng.PURPOSE_SYNAPSE, 3, 17, np.arange(64))
        b = prng.draw_u8(42, prng.PURPOSE_SYNAPSE, 3, 17, np.arange(64))
        assert np.array_equal(a, b)

    def test_scalar_matches_vector(self):
        units = np.arange(32)
        vec = prng.draw_u8(7, prng.PURPOSE_LEAK, 5, 9, units)
        for u in units:
            assert prng.draw_u8_scalar(7, prng.PURPOSE_LEAK, 5, 9, int(u)) == vec[u]

    def test_scalar_u16_matches_vector(self):
        units = np.arange(16)
        vec = prng.draw_u16(7, prng.PURPOSE_THRESHOLD, 2, 3, units)
        for u in units:
            assert prng.draw_u16_scalar(7, prng.PURPOSE_THRESHOLD, 2, 3, int(u)) == vec[u]

    def test_order_independence(self):
        units = np.arange(100)
        shuffled = units[::-1].copy()
        a = prng.draw_u8(1, prng.PURPOSE_SYNAPSE, 0, 0, units)
        b = prng.draw_u8(1, prng.PURPOSE_SYNAPSE, 0, 0, shuffled)
        assert np.array_equal(a, b[::-1])


class TestIndependenceAcrossCoordinates:
    @pytest.mark.parametrize(
        "kwargs_a, kwargs_b",
        [
            (dict(seed=1), dict(seed=2)),
            (dict(tick=0), dict(tick=1)),
            (dict(core=0), dict(core=1)),
            (dict(purpose=prng.PURPOSE_SYNAPSE), dict(purpose=prng.PURPOSE_LEAK)),
        ],
    )
    def test_streams_differ(self, kwargs_a, kwargs_b):
        base = dict(seed=0, purpose=prng.PURPOSE_SYNAPSE, core=0, tick=0)
        a = prng.draw_u32(**{**base, **kwargs_a}, units=np.arange(256))
        b = prng.draw_u32(**{**base, **kwargs_b}, units=np.arange(256))
        assert not np.array_equal(a, b)


class TestUniformity:
    def test_u8_mean_and_range(self):
        d = prng.draw_u8(0, prng.PURPOSE_SYNAPSE, 0, 0, np.arange(200_000))
        assert 0 <= d.min() and d.max() <= 255
        assert abs(d.mean() - 127.5) < 1.0

    def test_u16_range(self):
        d = prng.draw_u16(0, prng.PURPOSE_THRESHOLD, 0, 0, np.arange(100_000))
        assert 0 <= d.min() and d.max() <= 65535
        assert abs(d.mean() - 32767.5) < 300

    def test_u8_bucket_uniformity(self):
        d = prng.draw_u8(3, prng.PURPOSE_LEAK, 1, 1, np.arange(256_000))
        counts = np.bincount(d, minlength=256)
        # each bucket expects 1000; allow 5 sigma (~sqrt(1000)*5)
        assert np.all(np.abs(counts - 1000) < 160)

    def test_no_unit_correlation(self):
        d = prng.draw_u8(0, prng.PURPOSE_SYNAPSE, 0, 0, np.arange(65536))
        # adjacent-unit draws should be uncorrelated
        x = d[:-1].astype(float) - d.mean()
        y = d[1:].astype(float) - d.mean()
        r = (x * y).mean() / (x.std() * y.std())
        assert abs(r) < 0.02


class TestSynapseUnit:
    def test_scalar(self):
        assert prng.synapse_unit(3, 7) == 3 * 256 + 7

    def test_vectorized(self):
        axons = np.array([[0], [1]])
        neurons = np.array([[0, 1]])
        units = prng.synapse_unit(axons, neurons)
        assert units.shape == (2, 2)
        assert units[1, 1] == 257

    def test_unique_within_core(self):
        axons = np.repeat(np.arange(256), 256)
        neurons = np.tile(np.arange(256), 256)
        units = prng.synapse_unit(axons, neurons)
        assert len(np.unique(units)) == 256 * 256
