"""Tests for network compilation, caching, and engine selection."""

import numpy as np
import pytest

from repro.compass import compile as compile_mod
from repro.compass.compile import CompiledNetwork, compile_network, invalidate
from repro.compass.engine import ENGINES, run_engine, select_engine
from repro.compass.fast import FastCompassSimulator
from repro.compass.parallel import ParallelCompassSimulator
from repro.compass.simulator import CompassSimulator
from repro.core import prng
from repro.core.builders import poisson_inputs, random_network
from repro.core.kernel import ReferenceKernel, run_kernel
from repro.core.record import SpikeRecord
from repro.hardware.simulator import TrueNorthSimulator


class TestCompiledNetwork:
    def test_compile_is_cached_per_network(self):
        net = random_network(n_cores=3, stochastic=True, seed=1)
        before = compile_mod.n_builds()
        a = compile_network(net)
        b = compile_network(net)
        assert a is b
        assert compile_mod.n_builds() == before + 1

    def test_simulators_share_one_artifact(self):
        net = random_network(n_cores=3, stochastic=True, seed=2)
        compiled = compile_network(net)
        before = compile_mod.n_builds()
        sims = [
            FastCompassSimulator(net),
            FastCompassSimulator(compiled),
            CompassSimulator(compiled, n_ranks=2),
        ]
        assert compile_mod.n_builds() == before  # no rebuild anywhere
        assert all(s.compiled is compiled for s in sims)

    def test_invalidate_forces_rebuild(self):
        net = random_network(n_cores=2, seed=3)
        a = compile_network(net)
        invalidate(net)
        b = compile_network(net)
        assert a is not b

    def test_flat_layout_consistency(self):
        net = random_network(n_cores=4, n_axons=8, n_neurons=12, stochastic=True, seed=4)
        c = compile_network(net)
        assert c.n_axons == sum(core.n_axons for core in net.cores)
        assert c.n_neurons == net.n_neurons
        assert c.weight_matrix.shape == (c.n_axons, c.n_neurons)
        assert c.det_matrix_t.shape == (c.n_neurons, c.n_axons)
        # every programmed crosspoint is either deterministic or stochastic
        assert c.weight_matrix.nnz == int(c.row_nnz.sum())
        assert c.stoch_indptr[-1] == c.stoch_col.size
        # stochastic unit indices encode (local axon, local neuron)
        if c.stoch_unit.size:
            assert (c.stoch_unit >= 0).all()
        # per-neuron maps invert the base offsets
        gids = np.arange(c.n_neurons)
        assert np.array_equal(
            c.neuron_base[c.core_of_neuron] + c.local_neuron, gids
        )

    def test_stochastic_flags(self):
        det = random_network(n_cores=2, stochastic=False, seed=5)
        sto = random_network(n_cores=2, stochastic=True, seed=5)
        assert not compile_network(det).is_stochastic
        assert compile_network(sto).is_stochastic


class TestEngineSelection:
    def test_auto_picks_sparse_path(self):
        net = random_network(n_cores=2, stochastic=True, seed=6)
        assert isinstance(select_engine(net), FastCompassSimulator)
        assert isinstance(select_engine(net, "auto"), FastCompassSimulator)

    def test_auto_goes_parallel_above_threshold(self, monkeypatch):
        # With spare CPUs and a network above the benchmarked neuron
        # threshold, "auto" resolves to the partitioned parallel engine
        # sized by auto_workers.
        from repro.compass import parallel as par

        monkeypatch.setattr(par, "_usable_cpus", lambda: 4)
        monkeypatch.setattr(par, "AUTO_MIN_NEURONS", 16)
        net = random_network(n_cores=6, n_neurons=8, seed=61)
        sim = select_engine(net, "auto")
        try:
            assert isinstance(sim, ParallelCompassSimulator)
            assert sim.n_workers == 4
        finally:
            sim.close()

    def test_auto_stays_single_process_below_threshold(self, monkeypatch):
        # Below AUTO_MIN_NEURONS the barrier would dominate: small-network
        # latency must not regress, even with CPUs to spare.
        from repro.compass import parallel as par

        monkeypatch.setattr(par, "_usable_cpus", lambda: 8)
        net = random_network(n_cores=6, n_neurons=8, seed=62)
        assert isinstance(select_engine(net, "auto"), FastCompassSimulator)

    def test_auto_stays_single_process_on_single_cpu(self, monkeypatch):
        from repro.compass import parallel as par

        monkeypatch.setattr(par, "_usable_cpus", lambda: 1)
        monkeypatch.setattr(par, "AUTO_MIN_NEURONS", 1)
        net = random_network(n_cores=6, seed=63)
        assert isinstance(select_engine(net, "auto"), FastCompassSimulator)

    def test_auto_parallel_resolution_is_correct(self, monkeypatch):
        # End to end: an auto-resolved parallel engine still reproduces
        # the reference kernel exactly.
        from repro.compass import parallel as par

        monkeypatch.setattr(par, "_usable_cpus", lambda: 2)
        monkeypatch.setattr(par, "AUTO_MIN_NEURONS", 16)
        net = random_network(n_cores=4, n_neurons=8, stochastic=True, seed=64)
        ins = poisson_inputs(net, 10, 400.0, seed=3)
        ref = run_kernel(net, 10, ins)
        got = run_engine(net, 10, ins, engine="auto")
        assert got.first_mismatch(ref) is None

    def test_auto_falls_back_for_rank_features(self):
        net = random_network(n_cores=2, seed=7)
        assert isinstance(select_engine(net, n_ranks=2), CompassSimulator)
        assert isinstance(select_engine(net, profile=True), CompassSimulator)

    def test_explicit_engines(self):
        net = random_network(n_cores=2, seed=8)
        assert isinstance(select_engine(net, "fast"), FastCompassSimulator)
        assert isinstance(select_engine(net, "compass"), CompassSimulator)
        assert isinstance(select_engine(net, "truenorth"), TrueNorthSimulator)
        assert isinstance(select_engine(net, "reference"), ReferenceKernel)
        par = select_engine(net, "parallel", n_workers=2)
        try:
            assert isinstance(par, ParallelCompassSimulator)
        finally:
            par.close()

    def test_unknown_engine_rejected(self):
        net = random_network(n_cores=1, seed=9)
        with pytest.raises(ValueError, match="unknown engine"):
            select_engine(net, "warp")

    def test_engines_accept_compiled_artifact(self):
        net = random_network(n_cores=2, stochastic=True, seed=10)
        compiled = compile_network(net)
        ins = poisson_inputs(net, 12, 300.0, seed=1)
        ref = run_kernel(net, 12, ins)
        for engine in ENGINES:
            kwargs = {"n_workers": 2} if engine == "parallel" else {}
            got = run_engine(compiled, 12, ins, engine=engine, **kwargs)
            if engine == "batched":  # one record per replica lane
                (got,) = got
            assert got.first_mismatch(ref) is None, engine

    def test_run_engine_matches_reference_on_stochastic(self):
        net = random_network(n_cores=3, stochastic=True, seed=11)
        ins = poisson_inputs(net, 20, 400.0, seed=2)
        ref = run_kernel(net, 20, ins)
        assert run_engine(net, 20, ins) == ref


class TestMultiCorePrngDraws:
    def test_multi_matches_scalar_chain(self):
        rng = np.random.default_rng(0)
        cores = rng.integers(0, 64, size=200)
        units = rng.integers(0, 1 << 16, size=200)
        for purpose in (prng.PURPOSE_SYNAPSE, prng.PURPOSE_LEAK, prng.PURPOSE_THRESHOLD):
            got8 = prng.draw_u8_multi(7, purpose, cores, 13, units)
            got16 = prng.draw_u16_multi(7, purpose, cores, 13, units)
            for i in range(cores.size):
                assert got8[i] == prng.draw_u8_scalar(7, purpose, int(cores[i]), 13, int(units[i]))
                assert got16[i] == prng.draw_u16_scalar(7, purpose, int(cores[i]), 13, int(units[i]))


class TestSpikeRecordArrays:
    def test_from_arrays_matches_from_events(self):
        rng = np.random.default_rng(3)
        n = 200
        ticks = rng.integers(0, 20, size=n)
        cores = rng.integers(0, 4, size=n)
        neurons = rng.integers(0, 16, size=n)
        events = list(zip(ticks.tolist(), cores.tolist(), neurons.tolist()))
        a = SpikeRecord.from_events(events)
        b = SpikeRecord.from_arrays(ticks, cores, neurons)
        assert a == b

    def test_from_arrays_empty(self):
        rec = SpikeRecord.from_arrays(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
        assert rec.n_spikes == 0
