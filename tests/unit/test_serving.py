"""Unit tests for the model-serving runtime."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.compass.fast import FastCompassSimulator
from repro.core.builders import poisson_inputs, random_network
from repro.core.network import Network
from repro.core.prng import derive_stream_seed
from repro.obs import Observer
from repro.runtime.serving import (
    CompiledModelCache,
    ModelServer,
    Session,
    model_digest,
)


def small_net(stochastic=True, seed=5):
    return random_network(
        n_cores=3, n_axons=12, n_neurons=12, stochastic=stochastic, seed=seed
    )


class TestModelDigest:
    def test_equal_models_share_digest(self):
        net = small_net()
        clone = Network(cores=net.cores, seed=net.seed, name="renamed")
        assert model_digest(net) == model_digest(clone)

    def test_seed_changes_digest(self):
        net = small_net()
        reseeded = Network(cores=net.cores, seed=net.seed + 1, name=net.name)
        assert model_digest(net) != model_digest(reseeded)

    def test_weight_changes_digest(self):
        a, b = small_net(), small_net()
        b.cores[0].weights[0, 0] += 1
        assert model_digest(a) != model_digest(b)

    def test_compiled_artifact_digests_as_its_network(self):
        from repro.compass.compile import compile_network

        net = small_net()
        assert model_digest(compile_network(net)) == model_digest(net)


class TestCompiledModelCache:
    def test_hit_returns_same_artifact(self):
        cache = CompiledModelCache()
        net = small_net()
        first = cache.get(net)
        again = cache.get(Network(cores=net.cores, seed=net.seed))
        assert again is first
        assert cache.info() == {"size": 1, "capacity": 8, "hits": 1, "misses": 1}

    def test_lru_eviction(self):
        cache = CompiledModelCache(capacity=2)
        nets = [small_net(seed=s) for s in (1, 2, 3)]
        cache.get(nets[0])
        cache.get(nets[1])
        cache.get(nets[2])  # evicts nets[0]
        assert len(cache) == 2
        cache.get(nets[0])  # gone from the LRU: a miss again
        assert cache.misses == 4 and cache.hits == 0

    def test_recently_used_survives(self):
        cache = CompiledModelCache(capacity=2)
        nets = [small_net(seed=s) for s in (1, 2, 3)]
        a = cache.get(nets[0])
        cache.get(nets[1])
        cache.get(nets[0])  # refresh lane 0
        cache.get(nets[2])  # evicts nets[1], not nets[0]
        assert cache.get(nets[0]) is a
        assert cache.hits == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            CompiledModelCache(capacity=0)


class TestModelServer:
    def test_sessions_bit_identical_to_standalone(self):
        net = small_net()
        server = ModelServer(net, n_lanes=2)
        schedules = [poisson_inputs(net, 15, 300.0, seed=20 + i) for i in range(5)]
        submitted = [server.submit(s, 15) for s in schedules]
        done = server.run()
        assert len(done) == 5
        for session, sched in zip(submitted, schedules):
            ref = FastCompassSimulator(
                Network(cores=net.cores, seed=session.seed)
            ).run(15, sched)
            assert session.done
            assert np.array_equal(session.record.ticks, ref.ticks)
            assert np.array_equal(session.record.cores, ref.cores)
            assert np.array_equal(session.record.neurons, ref.neurons)
            assert session.record.counters.spikes == ref.counters.spikes

    def test_default_seeds_are_derived_streams(self):
        net = small_net(seed=11)
        server = ModelServer(net, n_lanes=1)
        a = server.submit(None, 5)
        b = server.submit(None, 5)
        assert a.seed == derive_stream_seed(11, 0) == 11
        assert b.seed == derive_stream_seed(11, 1)
        assert a.seed != b.seed

    def test_queueing_beyond_lanes(self):
        net = small_net()
        server = ModelServer(net, n_lanes=2)
        sessions = [server.submit(None, 4 + i) for i in range(5)]
        stats = server.stats()
        assert stats["active"] == 2 and stats["pending"] == 3
        server.run()
        assert all(s.done for s in sessions)
        assert server.stats()["completed"] == 5
        assert server.occupancy == 0.0

    def test_session_result_order_independent_of_scheduling(self):
        # The same session served on a busy server and on an idle one
        # yields the same record: admission resets the lane to tick 0.
        net = small_net()
        sched = poisson_inputs(net, 10, 400.0, seed=9)
        busy = ModelServer(net, n_lanes=1)
        for _ in range(3):
            busy.submit(None, 7)
        target_busy = busy.submit(sched, 10, seed=77)
        busy.run()
        idle = ModelServer(net, n_lanes=4)
        target_idle = idle.submit(sched, 10, seed=77)
        idle.run()
        assert target_busy.record == target_idle.record

    def test_step_without_sessions_is_noop(self):
        server = ModelServer(small_net(), n_lanes=2)
        assert server.step() == 0

    def test_max_passes_stops_early(self):
        net = small_net()
        server = ModelServer(net, n_lanes=1)
        session = server.submit(None, 50)
        done = server.run(max_passes=10)
        assert done == [] and session.ticks_done == 10

    def test_invalid_arguments(self):
        net = small_net()
        with pytest.raises(ValueError, match="n_lanes"):
            ModelServer(net, n_lanes=0)
        server = ModelServer(net, n_lanes=1)
        with pytest.raises(ValueError, match="n_ticks"):
            server.submit(None, 0)

    def test_stats_and_occupancy_safe_before_first_step(self):
        # Zero-pass guard (mirrors the StreamReport zero-tick guard): a
        # freshly constructed server must answer every stats scrape.
        server = ModelServer(small_net(), n_lanes=4)
        assert server.occupancy == 0.0
        stats = server.stats()
        assert stats["passes"] == 0
        assert stats["occupancy"] == 0.0
        assert stats["wall_seconds"] == 0.0
        assert stats["mean_pass_seconds"] == 0.0
        assert stats["lane_ticks_per_second"] == 0.0
        assert stats["real_time_factor"] == 0.0
        # ...including with sessions queued but not yet stepped
        server.submit(None, 5)
        stats = server.stats()
        assert stats["active"] == 1 and stats["passes"] == 0
        assert stats["real_time_factor"] == 0.0

    def test_stats_rates_populate_after_run(self):
        net = small_net()
        server = ModelServer(net, n_lanes=2)
        server.submit(poisson_inputs(net, 10, 300.0, seed=1), 10)
        server.run()
        stats = server.stats()
        assert stats["passes"] == 10
        assert stats["wall_seconds"] > 0.0
        assert stats["mean_pass_seconds"] > 0.0
        assert stats["lane_ticks_per_second"] > 0.0
        assert stats["real_time_factor"] > 0.0

    def test_session_slo_timestamps_and_histograms(self):
        net = small_net()
        obs = Observer()
        server = ModelServer(net, n_lanes=1, obs=obs)
        first = server.submit(None, 5)
        queued = server.submit(None, 5)  # waits for the single lane
        assert first.submitted_ns > 0 and first.admitted_ns >= first.submitted_ns
        assert queued.admitted_ns == 0 and queued.wait_seconds == 0.0
        server.run()
        assert queued.admitted_ns >= first.finalized_ns
        assert queued.wait_seconds > 0.0
        assert first.latency_seconds >= first.wait_seconds
        snap = obs.metrics.snapshot()
        assert snap["repro_session_wait_seconds"]["count"] == 2
        assert snap["repro_session_latency_seconds"]["count"] == 2

    def test_serving_metrics_published(self):
        net = small_net()
        obs = Observer()
        cache = CompiledModelCache()
        server = ModelServer(net, n_lanes=2, cache=cache, obs=obs)
        server.submit(None, 5)
        server.submit(None, 5)
        server.submit(None, 5)
        snap = obs.metrics.snapshot()
        assert snap["repro_batch_occupancy"] == 1.0
        assert snap["repro_sessions_total"] == 3
        server.run()
        snap = obs.metrics.snapshot()
        assert snap["repro_batch_occupancy"] == 0.0
        assert snap["repro_sessions_completed_total"] == 3
        assert snap["repro_compile_cache_misses_total"] == 1


class TestServeCli:
    def test_serve_command_end_to_end(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.json"
        rc = cli_main([
            "serve", "recurrent-stochastic",
            "--sessions", "5", "--lanes", "2", "--ticks", "20",
            "--metrics-out", str(metrics),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sessions completed" in out and "5" in out
        assert metrics.exists()
