"""Tests for detailed multi-chip simulation (TrueNorthSimulator + ChipArray)."""

import pytest

from repro.core.builders import poisson_inputs, random_network
from repro.core.chip import ChipGeometry, Placement
from repro.hardware.simulator import TrueNorthSimulator, run_truenorth
from repro.noc.multichip import ChipArray


def two_chip_placement(n_cores, cores_per_side=4):
    """Place cores across a 2x1 array of small demo chips."""
    g = ChipGeometry(cores_x=cores_per_side, cores_y=cores_per_side)
    p = Placement.grid(n_cores, g)
    return p, g


class TestChipArraySimulation:
    def test_functional_equivalence_with_plain_simulation(self):
        net = random_network(n_cores=20, connectivity=0.4, seed=6)
        placement, g = two_chip_placement(20)
        array = ChipArray(chips_x=2, chips_y=1, geometry=g)
        ins = poisson_inputs(net, 15, 400.0, seed=3)

        plain = run_truenorth(net, 15, ins, placement=placement)
        tiled_sim = TrueNorthSimulator(net, placement=placement, chip_array=array)
        tiled = tiled_sim.run(15, ins)
        assert tiled == plain
        assert tiled.counters.hops == plain.counters.hops
        assert tiled_sim.boundary_crossings == 0 or tiled_sim.boundary_crossings > 0

    def test_boundary_links_accumulate_traffic(self):
        net = random_network(n_cores=20, connectivity=0.5, seed=9)
        placement, g = two_chip_placement(20)
        array = ChipArray(chips_x=2, chips_y=1, geometry=g)
        sim = TrueNorthSimulator(net, placement=placement, chip_array=array)
        sim.run(15, poisson_inputs(net, 15, 500.0, seed=2))
        total_link_traffic = sum(
            link.crossed
            for boundary in array.boundaries.values()
            for link in boundary.links.values()
        )
        assert total_link_traffic == sim.boundary_crossings
        assert sim.boundary_crossings > 0

    def test_crossings_match_analytic_counting(self):
        net = random_network(n_cores=20, connectivity=0.4, seed=6)
        placement, g = two_chip_placement(20)
        array = ChipArray(chips_x=2, chips_y=1, geometry=g)
        ins = poisson_inputs(net, 12, 400.0, seed=1)
        tiled = TrueNorthSimulator(net, placement=placement, chip_array=array)
        tiled.run(12, ins)
        plain = TrueNorthSimulator(net, placement=placement)
        plain.run(12, ins)
        assert tiled.boundary_crossings == plain.boundary_crossings

    def test_placement_must_fit_array(self):
        net = random_network(n_cores=20, seed=1)
        placement, g = two_chip_placement(20)
        small = ChipArray(chips_x=1, chips_y=1, geometry=g)
        with pytest.raises(ValueError, match="fit"):
            TrueNorthSimulator(net, placement=placement, chip_array=small)

    def test_incompatible_options_rejected(self):
        net = random_network(n_cores=4, seed=1)
        g = ChipGeometry(cores_x=2, cores_y=2)
        array = ChipArray(chips_x=1, chips_y=1, geometry=g)
        with pytest.raises(ValueError, match="combine"):
            TrueNorthSimulator(
                net, placement=Placement.grid(4, g), chip_array=array,
                detailed_noc=True,
            )
