"""Tests for the corelet library (filters, competition, classification)."""

import numpy as np
import pytest

from repro.core.inputs import InputSchedule
from repro.corelets.corelet import Composition
from repro.corelets.library.basic import splitter
from repro.corelets.library.classify import (
    classify_rates,
    histogram,
    ternary_classifier,
    train_ternary,
)
from repro.corelets.library.competition import inhibition_of_return, winner_take_all
from repro.corelets.library.filters import (
    center_surround_kernel,
    haar_kernels,
    signed_filter,
)
from repro.hardware.simulator import run_truenorth


def build_single(corelet, outputs=("out",)):
    comp = Composition(seed=0)
    comp.add(corelet)
    for name, conn in corelet.inputs.items():
        comp.export_input(name, conn)
    for name in outputs:
        comp.export_output(name, corelet.outputs[name])
    return comp.compile()


def out_rates(compiled, rec, name="out"):
    pins = compiled.outputs[name]
    index = {(p.core, p.index): i for i, p in enumerate(pins)}
    rates = np.zeros(len(pins))
    for t, c, n in rec.as_tuples():
        if (c, n) in index:
            rates[index[(c, n)]] += 1
    return rates


def drive_lines(compiled, line_ticks, input_name="in"):
    ins = InputSchedule()
    pins = compiled.inputs[input_name]
    for tick, line in line_ticks:
        ins.add(tick, pins[line].core, pins[line].index)
    return ins


class TestWinnerTakeAll:
    def test_strongest_input_wins(self):
        n = 8
        compiled = build_single(winner_take_all(n))
        ins = InputSchedule()
        pins = compiled.inputs["in"]
        # line 3 gets input every tick; line 5 every 4th tick.
        for t in range(40):
            ins.add(t, pins[3].core, pins[3].index)
            if t % 4 == 0:
                ins.add(t, pins[5].core, pins[5].index)
        rec = run_truenorth(compiled.network, 40, ins)
        rates = out_rates(compiled, rec)
        assert rates[3] == rates.max() and rates[3] > 0
        assert rates[3] > 2 * rates[5]
        silent = [r for i, r in enumerate(rates) if i not in (3, 5)]
        assert max(silent, default=0) == 0

    def test_size_limit(self):
        with pytest.raises(ValueError):
            winner_take_all(200)


class TestInhibitionOfReturn:
    def test_refractory_after_spike(self):
        compiled = build_single(inhibition_of_return(4, suppression=240, recovery=16))
        # constant drive on line 1
        ins = drive_lines(compiled, [(t, 1) for t in range(60)])
        rec = run_truenorth(compiled.network, 60, ins)
        pins = compiled.outputs["out"]
        p1 = pins[1]
        fire_ticks = sorted(t for t, c, n in rec.as_tuples() if (c, n) == (p1.core, p1.index))
        assert len(fire_ticks) >= 2
        gaps = np.diff(fire_ticks)
        # suppression 240 recovering 16/tick + gain 64/tick drive: the
        # channel must stay silent for several ticks after each spike.
        assert gaps.min() >= 3

    def test_channels_independent(self):
        compiled = build_single(inhibition_of_return(4))
        ins = drive_lines(compiled, [(t, 0) for t in range(30)] + [(t, 2) for t in range(30)])
        rec = run_truenorth(compiled.network, 30, ins)
        rates = out_rates(compiled, rec)
        assert rates[0] > 0 and rates[2] > 0
        assert rates[1] == 0 and rates[3] == 0


class TestSignedFilter:
    def test_matched_pattern_fires_most(self):
        kernel = np.array([[1], [1], [-1], [-1]])
        filt = signed_filter(kernel, gain=32, threshold=64)
        comp = Composition(seed=0)
        sp = splitter(4, 2, name="sp")
        comp.connect(sp.outputs["out0"], filt.inputs["in+"])
        comp.connect(sp.outputs["out1"], filt.inputs["in-"])
        comp.export_input("in", sp.inputs["in"])
        comp.export_output("out", filt.outputs["out"])
        compiled = comp.compile()

        # matched stimulus: lines 0,1 active
        ins = drive_lines(compiled, [(t, l) for t in range(30) for l in (0, 1)])
        rec = run_truenorth(compiled.network, 30, ins)
        matched = out_rates(compiled, rec)[0]

        # anti-matched: lines 2,3 active
        ins2 = drive_lines(compiled, [(t, l) for t in range(30) for l in (2, 3)])
        rec2 = run_truenorth(compiled.network, 30, ins2)
        anti = out_rates(compiled, rec2)[0]
        assert matched > 0
        assert anti == 0

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            signed_filter(np.array([[2], [0]]))
        with pytest.raises(ValueError):
            signed_filter(np.ones((200, 1)))

    def test_haar_kernels_shape_and_balance(self):
        k = haar_kernels(4)
        assert k.shape == (16, 5)
        # every Haar feature is zero-mean (balanced +/-)
        assert np.abs(k.sum(axis=0)).max() == 0

    def test_center_surround(self):
        k = center_surround_kernel(4)
        assert k.shape == (16, 1)
        assert (k == 1).sum() == 4  # 2x2 center


class TestHistogram:
    def test_counts_events_per_bin(self):
        bins = np.array([0, 0, 1, 1, 1, 2, 2, 2])
        compiled = build_single(histogram(bins, 3, count_per_spike=2))
        # 10 events into bin 1 (lines 2,3 for 5 ticks) -> 5 output spikes
        ins = drive_lines(compiled, [(t, l) for t in range(5) for l in (2, 3)])
        rec = run_truenorth(compiled.network, 8, ins)
        rates = out_rates(compiled, rec)
        assert rates[1] == 5
        assert rates[0] == 0 and rates[2] == 0

    def test_linear_reset_preserves_remainder(self):
        bins = np.zeros(1, dtype=np.int64)
        compiled = build_single(histogram(bins, 1, count_per_spike=2))
        # 3 events -> 1 spike with remainder 1; a 4th event -> second spike
        ins = drive_lines(
            compiled, [(0, 0), (1, 0), (2, 0), (3, 0)]
        )
        rec = run_truenorth(compiled.network, 6, ins)
        assert out_rates(compiled, rec)[0] == 2

    def test_bad_bins_rejected(self):
        with pytest.raises(ValueError):
            histogram(np.array([0, 5]), 3)


class TestTernaryClassifier:
    def test_train_and_classify_separable(self):
        rng = np.random.default_rng(0)
        n_features, n_classes = 16, 3
        prototypes = rng.random((n_classes, n_features)) > 0.5
        X, y = [], []
        for k in range(n_classes):
            for _ in range(40):
                noise = rng.random(n_features) < 0.08
                X.append(np.logical_xor(prototypes[k], noise).astype(float))
                y.append(k)
        X, y = np.asarray(X), np.asarray(y)
        w = train_ternary(X, y, n_classes, epochs=60, seed=1)
        assert w.shape == (n_features, n_classes)
        assert set(np.unique(w)).issubset({-1, 0, 1})
        scores = X @ w
        acc = (scores.argmax(axis=1) == y).mean()
        assert acc > 0.9

    def test_spiking_classifier_agrees_with_linear_scores(self):
        rng = np.random.default_rng(3)
        n_features, n_classes = 8, 2
        w = np.zeros((n_features, n_classes), dtype=np.int64)
        w[:4, 0] = 1
        w[4:, 1] = 1
        clf = ternary_classifier(w, gain=32, threshold=64)
        comp = Composition(seed=0)
        sp = splitter(n_features, 2, name="sp")
        comp.connect(sp.outputs["out0"], clf.inputs["in+"])
        comp.connect(sp.outputs["out1"], clf.inputs["in-"])
        comp.export_input("in", sp.inputs["in"])
        comp.export_output("out", clf.outputs["out"])
        compiled = comp.compile()

        # stimulus strongly matching class 0
        ins = drive_lines(
            compiled, [(t, l) for t in range(30) for l in range(4) if rng.random() < 0.9]
        )
        rec = run_truenorth(compiled.network, 30, ins)
        rates = out_rates(compiled, rec)
        assert classify_rates(rates) == 0
