"""Tests for the NoC substrate (repro.noc)."""

import pytest

from repro.noc.merge_split import ChipBoundary, Edge, MergeSplitLink
from repro.noc.mesh import MeshNetwork
from repro.noc.multichip import ChipArray, board_4x1, board_4x4
from repro.noc.packet import SpikePacket
from repro.noc.router import Port, Router, dimension_order_port
from repro.core.chip import ChipGeometry


class TestPacket:
    def test_valid_packet(self):
        p = SpikePacket(inject_tick=5, src_core=0, dst_core=3, dst_axon=17, delivery_tick=6)
        assert p.delay == 1

    def test_delay_bounds(self):
        with pytest.raises(ValueError):
            SpikePacket(0, 0, 1, 0, delivery_tick=0)  # delay 0
        with pytest.raises(ValueError):
            SpikePacket(0, 0, 1, 0, delivery_tick=16)  # delay 16

    def test_negative_axon_rejected(self):
        with pytest.raises(ValueError):
            SpikePacket(0, 0, 1, -1, delivery_tick=1)


class TestRouterPortSelection:
    @pytest.mark.parametrize(
        "dst, expected",
        [
            ((5, 3), Port.EAST),
            ((1, 3), Port.WEST),
            ((3, 5), Port.NORTH),
            ((3, 1), Port.SOUTH),
            ((3, 3), Port.LOCAL),
            # x resolves before y (dimension order)
            ((5, 9), Port.EAST),
            ((0, 0), Port.WEST),
        ],
    )
    def test_dimension_order(self, dst, expected):
        assert dimension_order_port(3, 3, *dst) == expected

    def test_forward_counts(self):
        r = Router(x=0, y=0)
        r.forward(3, 0)
        r.forward(3, 2)
        r.forward(0, 0)
        assert r.forwarded[Port.EAST] == 2
        assert r.forwarded[Port.LOCAL] == 1
        assert r.total_forwarded == 3

    def test_disabled_router_refuses(self):
        r = Router(x=0, y=0, enabled=False)
        with pytest.raises(RuntimeError):
            r.forward(1, 0)


class TestMeshRouting:
    def test_straight_line(self):
        mesh = MeshNetwork(8, 8)
        path = mesh.route((0, 0), (3, 0))
        assert path == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_x_then_y(self):
        mesh = MeshNetwork(8, 8)
        path = mesh.route((0, 0), (2, 2))
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_hops_equal_manhattan(self):
        mesh = MeshNetwork(16, 16)
        assert mesh.hops((2, 3), (9, 11)) == 7 + 8
        assert mesh.hops((9, 11), (2, 3)) == 7 + 8

    def test_self_delivery_zero_hops(self):
        mesh = MeshNetwork(4, 4)
        assert mesh.hops((2, 2), (2, 2)) == 0

    def test_deliver_updates_counters(self):
        mesh = MeshNetwork(8, 8)
        hops = mesh.deliver((0, 0), (3, 2))
        assert hops == 5
        assert mesh.router(1, 0).forwarded[Port.EAST] == 1
        assert mesh.router(3, 1).forwarded[Port.NORTH] == 1
        assert mesh.router(3, 2).forwarded[Port.LOCAL] == 1

    def test_out_of_bounds_rejected(self):
        mesh = MeshNetwork(4, 4)
        with pytest.raises(ValueError):
            mesh.router(4, 0)


class TestDefectRouting:
    def test_detour_around_disabled_router(self):
        mesh = MeshNetwork(8, 8)
        mesh.disable(2, 0)
        path = mesh.route((0, 0), (4, 0))
        assert (2, 0) not in path
        assert path[0] == (0, 0) and path[-1] == (4, 0)
        # one sidestep costs exactly two extra hops
        assert len(path) - 1 == 4 + 2

    def test_detour_in_y_leg(self):
        mesh = MeshNetwork(8, 8)
        mesh.disable(3, 2)
        path = mesh.route((3, 0), (3, 4))
        assert (3, 2) not in path
        assert len(path) - 1 == 4 + 2

    def test_multiple_defects(self):
        mesh = MeshNetwork(10, 10)
        mesh.disable(2, 0)
        mesh.disable(5, 0)
        path = mesh.route((0, 0), (8, 0))
        assert (2, 0) not in path and (5, 0) not in path
        assert path[-1] == (8, 0)

    def test_disabled_endpoint_raises(self):
        mesh = MeshNetwork(4, 4)
        mesh.disable(3, 3)
        with pytest.raises(RuntimeError):
            mesh.route((0, 0), (3, 3))
        with pytest.raises(RuntimeError):
            mesh.route((3, 3), (0, 0))

    def test_congestion_map(self):
        mesh = MeshNetwork(4, 4)
        mesh.deliver((0, 0), (3, 0))
        mesh.deliver((0, 0), (3, 0))
        cmap = mesh.congestion_map()
        assert cmap[(1, 0)] == 2


class TestMergeSplit:
    def test_tag_roundtrip_identity(self):
        link = MergeSplitLink(Edge.EAST, rows=64)
        for row in (0, 17, 63):
            tag, ok = link.merge(row)
            assert ok and link.split(tag) == row

    def test_capacity_enforced(self):
        link = MergeSplitLink(Edge.EAST, rows=4, capacity_per_tick=2)
        link.begin_tick()
        assert link.merge(0)[1] and link.merge(1)[1]
        assert not link.merge(2)[1]
        assert link.dropped == 1 and link.crossed == 2

    def test_tick_window_resets(self):
        link = MergeSplitLink(Edge.EAST, rows=4, capacity_per_tick=1)
        link.begin_tick()
        link.merge(0)
        link.begin_tick()
        assert link.merge(1)[1]

    def test_bad_row_rejected(self):
        link = MergeSplitLink(Edge.NORTH, rows=4)
        with pytest.raises(ValueError):
            link.merge(4)
        with pytest.raises(ValueError):
            link.split(9)

    def test_boundary_cross(self):
        b = ChipBoundary(rows=64, cols=64)
        assert b.cross(Edge.EAST, 10)
        assert b.cross(Edge.NORTH, 5)
        assert b.total_crossings == 2


class TestChipArray:
    def test_board_capacities(self):
        b41 = board_4x1()
        assert b41.n_chips == 4
        b44 = board_4x4()
        assert b44.n_chips == 16
        assert b44.n_neurons == 16 * 1024 * 1024  # "16 million neurons"
        assert b44.n_synapses == 16 * 268_435_456  # "4 billion synapses"

    def test_cross_chip_delivery(self):
        arr = ChipArray(chips_x=2, chips_y=1, geometry=ChipGeometry(cores_x=4, cores_y=4))
        arr.begin_tick()
        hops, crossings = arr.deliver((0, 0), (5, 0))
        assert hops == 5
        assert crossings == 1
        assert arr.boundary_traffic()[(0, 0)] == 1

    def test_same_chip_no_crossing(self):
        arr = ChipArray(chips_x=2, chips_y=2, geometry=ChipGeometry(cores_x=4, cores_y=4))
        arr.begin_tick()
        _, crossings = arr.deliver((0, 0), (3, 3))
        assert crossings == 0

    def test_diagonal_chip_route_crosses_twice(self):
        arr = ChipArray(chips_x=2, chips_y=2, geometry=ChipGeometry(cores_x=4, cores_y=4))
        arr.begin_tick()
        hops, crossings = arr.deliver((0, 0), (7, 7))
        assert hops == 14
        assert crossings == 2  # one x-boundary, one y-boundary

    def test_chip_of(self):
        arr = ChipArray(chips_x=2, chips_y=2, geometry=ChipGeometry(cores_x=4, cores_y=4))
        assert arr.chip_of(0, 0) == (0, 0)
        assert arr.chip_of(4, 0) == (1, 0)
        assert arr.chip_of(3, 7) == (0, 1)
