"""Tests for the reference kernel (repro.core.kernel)."""

import numpy as np
import pytest

from repro.core import params
from repro.core.builders import poisson_inputs, random_network
from repro.core.inputs import InputSchedule
from repro.core.kernel import run_kernel
from repro.core.network import OUTPUT_TARGET, Core, Network


def single_core_net(threshold=1, weight=1, delay=1, recurrent=False, **kwargs):
    """One core where axon i drives neuron i one-to-one."""
    n = 4
    xb = np.eye(n, dtype=bool)
    core = Core.build(
        n_axons=n,
        n_neurons=n,
        crossbar=xb,
        weights=np.full((n, params.NUM_AXON_TYPES), weight),
        threshold=threshold,
        target_core=0 if recurrent else OUTPUT_TARGET,
        target_axon=np.arange(n) if recurrent else 0,
        delay=delay,
        **kwargs,
    )
    return Network(cores=[core], seed=3)


class TestBasicDynamics:
    def test_quiescent_network_never_spikes(self):
        net = single_core_net()
        rec = run_kernel(net, 20)
        assert rec.n_spikes == 0
        assert rec.counters.synaptic_events == 0
        assert rec.counters.neuron_updates == 4 * 20

    def test_input_spike_causes_firing(self):
        net = single_core_net(threshold=1, weight=1)
        ins = InputSchedule.from_events([(0, 0, 2)])
        rec = run_kernel(net, 3, ins)
        assert rec.as_tuples() == [(0, 0, 2)]

    def test_subthreshold_accumulates(self):
        net = single_core_net(threshold=3, weight=1)
        ins = InputSchedule.from_events([(0, 0, 1), (1, 0, 1), (2, 0, 1)])
        rec = run_kernel(net, 4, ins)
        assert rec.as_tuples() == [(2, 0, 1)]

    def test_leak_decays_accumulated_charge(self):
        net = single_core_net(threshold=3, weight=2, leak=-1, neg_threshold=0)
        # +2 then leak -1 each tick; never reaches 3 with a 2-tick gap.
        ins = InputSchedule.from_events([(0, 0, 0), (3, 0, 0)])
        rec = run_kernel(net, 6, ins)
        assert rec.n_spikes == 0

    def test_leak_integrates_to_threshold(self):
        net = single_core_net(threshold=5, weight=0, leak=1)
        rec = run_kernel(net, 12)
        # V grows by 1 each tick: fires at tick 4 (V=5), resets, fires at 9.
        ticks = sorted(set(rec.ticks.tolist()))
        assert ticks == [4, 9]


class TestSpikeRouting:
    def test_recurrent_delivery_honors_delay(self):
        net = single_core_net(threshold=1, weight=1, delay=3, recurrent=True)
        ins = InputSchedule.from_events([(0, 0, 0)])
        rec = run_kernel(net, 10, ins)
        # Spike at t=0 re-arrives at t=3, fires again, etc.
        fired = [t for (t, c, n) in rec.as_tuples() if n == 0]
        assert fired == [0, 3, 6, 9]

    def test_two_core_chain(self):
        n = 2
        xb = np.eye(n, dtype=bool)
        c0 = Core.build(
            n_axons=n, n_neurons=n, crossbar=xb, threshold=1,
            target_core=1, target_axon=np.arange(n), delay=1,
        )
        c1 = Core.build(n_axons=n, n_neurons=n, crossbar=xb, threshold=1)
        net = Network(cores=[c0, c1], seed=0)
        ins = InputSchedule.from_events([(0, 0, 0)])
        rec = run_kernel(net, 4, ins)
        assert (0, 0, 0) in rec.as_tuples()
        assert (1, 1, 0) in rec.as_tuples()
        assert rec.n_spikes == 2

    def test_output_neurons_do_not_deliver(self):
        net = single_core_net(threshold=1, weight=1, recurrent=False)
        ins = InputSchedule.from_events([(0, 0, 0)])
        rec = run_kernel(net, 6, ins)
        assert rec.n_spikes == 1  # no recurrence

    def test_axon_merge_semantics(self):
        # Two neurons target the same axon at the same tick; the axon
        # event merges (single delivery, single synaptic integration).
        n = 2
        xb = np.zeros((n, n), dtype=bool)
        xb[0, 0] = True
        c0 = Core.build(
            n_axons=n, n_neurons=n, crossbar=np.eye(n, dtype=bool), threshold=1,
            target_core=1, target_axon=0, delay=1,
        )
        c1 = Core.build(n_axons=n, n_neurons=n, crossbar=xb, threshold=1, weights=np.ones((n, 4), dtype=np.int64))
        net = Network(cores=[c0, c1], seed=0)
        ins = InputSchedule.from_events([(0, 0, 0), (0, 0, 1)])
        rec = run_kernel(net, 3, ins)
        # both c0 neurons fire at t0; merged single axon event at c1 t1
        assert rec.counters.deliveries == 2 + 1
        assert (1, 1, 0) in rec.as_tuples()


class TestCounters:
    def test_synaptic_event_accounting(self):
        net = single_core_net(threshold=10_000, weight=1)
        ins = InputSchedule.from_events([(t, 0, a) for t in range(5) for a in range(4)])
        rec = run_kernel(net, 5, ins)
        # identity crossbar: each active axon = 1 event; 4 axons x 5 ticks
        assert rec.counters.synaptic_events == 20
        assert rec.counters.max_core_events_per_tick == 4

    def test_tick_count(self):
        net = single_core_net()
        rec = run_kernel(net, 17)
        assert rec.counters.ticks == 17


class TestStochasticModes:
    def test_stochastic_network_is_deterministic_given_seed(self):
        net = random_network(n_cores=2, stochastic=True, seed=11)
        ins = poisson_inputs(net, 20, 300.0, seed=4)
        a = run_kernel(net, 20, ins)
        b = run_kernel(net, 20, ins)
        assert a == b

    def test_different_seeds_differ(self):
        # All-stochastic synapses at P=0.5: the spike pattern must depend
        # on the network seed.
        def build(seed):
            n = 16
            core = Core.build(
                n_axons=n,
                n_neurons=n,
                crossbar=np.ones((n, n), dtype=bool),
                weights=np.full((n, params.NUM_AXON_TYPES), 128),
                stoch_synapse=True,
                threshold=4,
            )
            return Network(cores=[core], seed=seed)

        ins = InputSchedule.from_events([(t, 0, a) for t in range(10) for a in range(8)])
        a = run_kernel(build(1), 10, ins)
        b = run_kernel(build(2), 10, ins)
        assert a != b


class TestValidation:
    def test_bad_target_core_rejected(self):
        core = Core.build(n_axons=2, n_neurons=2, target_core=5)
        net = Network(cores=[core])
        with pytest.raises(ValueError):
            net.validate()

    def test_bad_target_axon_rejected(self):
        core = Core.build(n_axons=2, n_neurons=2, target_core=0, target_axon=7)
        net = Network(cores=[core])
        with pytest.raises(ValueError):
            net.validate()

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network(cores=[]).validate()

    def test_negative_input_tick_rejected(self):
        with pytest.raises(ValueError):
            InputSchedule.from_events([(-1, 0, 0)])
