"""Tests for the machine cost models (repro.machines)."""

import pytest

from repro.core.workload import WorkloadDescriptor
from repro.machines.cost import (
    CompassCostModel,
    bgq_weak_scaling_hosts,
    compare_truenorth_vs_compass,
)
from repro.machines.scaling import (
    best_point,
    most_efficient_point,
    strong_scaling_sweep,
    x86_reference_sweep,
)
from repro.machines.specs import BGQ, X86, X86_LEGACY


def characterization(rate=20.0, syn=128.0):
    return WorkloadDescriptor(
        name=f"char-{rate}-{syn}",
        n_neurons=2**20,
        n_cores=4096,
        rate_hz=rate,
        active_synapses=syn,
    )


NEOVISION = WorkloadDescriptor(
    name="neovision", n_neurons=660_009, n_cores=4018, rate_hz=12.8, active_synapses=128.0
)


class TestEffectiveThreads:
    def test_physical_scaling(self):
        assert BGQ.effective_threads(8) == pytest.approx(8 * 0.9)

    def test_smt_marginal_gain(self):
        full = BGQ.effective_threads(64)
        phys = BGQ.effective_threads(16)
        assert phys == pytest.approx(14.4)
        assert full == pytest.approx(14.4 + 48 * 0.25)

    def test_oversubscription_capped(self):
        assert X86.effective_threads(100) == X86.effective_threads(24)

    def test_requires_one_thread(self):
        with pytest.raises(ValueError):
            X86.effective_threads(0)


class TestCostModelShape:
    def test_more_hosts_is_faster(self):
        model = CompassCostModel(BGQ)
        t1 = model.time_per_tick_s(characterization(), hosts=1, threads_per_host=64)
        t32 = model.time_per_tick_s(characterization(), hosts=32, threads_per_host=64)
        assert t32 < t1

    def test_more_threads_is_faster(self):
        model = CompassCostModel(BGQ)
        t8 = model.time_per_tick_s(characterization(), hosts=4, threads_per_host=8)
        t64 = model.time_per_tick_s(characterization(), hosts=4, threads_per_host=64)
        assert t64 < t8

    def test_heavier_workload_is_slower(self):
        model = CompassCostModel(X86)
        assert model.time_per_tick_s(characterization(200, 256)) > model.time_per_tick_s(
            characterization(20, 128)
        )

    def test_host_limit_enforced(self):
        with pytest.raises(ValueError):
            CompassCostModel(X86).time_per_tick_s(characterization(), hosts=2)

    def test_power_scales_with_hosts(self):
        model = CompassCostModel(BGQ)
        assert model.power_w(32) == 32 * 65.0

    def test_energy_per_tick(self):
        pt = CompassCostModel(X86).run_point(characterization())
        assert pt.energy_per_tick_j == pytest.approx(pt.time_per_tick_s * 150.0)


class TestPaperAnchors:
    """Fig. 6 / Fig. 8 / Section VI-A calibration targets."""

    def test_fig6a_bgq_speedup_one_order(self):
        cmp = compare_truenorth_vs_compass(characterization(), BGQ)
        assert 5 <= cmp.speedup <= 50  # "one order of magnitude"

    def test_fig6c_x86_speedup_two_to_three_orders(self):
        light = compare_truenorth_vs_compass(characterization(20, 128), X86)
        heavy = compare_truenorth_vs_compass(characterization(200, 256), X86)
        assert 50 <= light.speedup <= 1000
        assert 100 <= heavy.speedup <= 2000
        assert heavy.speedup > light.speedup

    def test_fig6b_bgq_energy_five_orders(self):
        cmp = compare_truenorth_vs_compass(characterization(), BGQ)
        assert 1e5 <= cmp.energy_improvement <= 1e6

    def test_fig6d_x86_energy_five_orders(self):
        cmp = compare_truenorth_vs_compass(characterization(), X86)
        assert 1e5 <= cmp.energy_improvement <= 1e6

    def test_fig8_best_bgq_point_about_12x_slower(self):
        points = strong_scaling_sweep(NEOVISION, BGQ)
        best = best_point(points)
        assert best.hosts == 32 and best.threads == 64
        slowdown = best.time_per_tick_s / 1e-3
        assert 8 <= slowdown <= 16  # paper: "12x slower than real-time"

    def test_fig8_single_host_slowest(self):
        points = strong_scaling_sweep(NEOVISION, BGQ)
        one_host_8t = [p for p in points if p.hosts == 1 and p.threads == 8][0]
        assert 0.1 <= one_host_8t.time_per_tick_s <= 0.25  # Fig. 8 upper right

    def test_fig8_single_host_most_power_efficient(self):
        # Paper: "a single host is the most power-efficient but slowest;
        # 32 hosts is the fastest but requires more power."
        points = strong_scaling_sweep(NEOVISION, BGQ)
        eff = most_efficient_point(points)
        assert eff.hosts == 1
        assert best_point(points).hosts == 32

    def test_regression_74_days_on_legacy_xeon(self):
        # Section VI-A: the 100M-tick regression took 74 days on the
        # 8-thread X7350 server vs. 27.7 hours on TrueNorth.
        model = CompassCostModel(X86_LEGACY)
        t = model.time_per_tick_s(characterization(20, 128), hosts=1, threads_per_host=8)
        days = t * 100_000_000 / 86400
        assert 55 <= days <= 95

    def test_x86_reference_sweep_threads(self):
        points = x86_reference_sweep(NEOVISION)
        assert [p.threads for p in points] == [4, 6, 8, 12]
        assert points[0].time_per_tick_s > points[-1].time_per_tick_s

    def test_weak_scaling_host_rule(self):
        assert bgq_weak_scaling_hosts(NEOVISION, BGQ) == 32
        small = WorkloadDescriptor("s", 1000, 100, 10, 10)
        assert bgq_weak_scaling_hosts(small, BGQ) == 2

    def test_truenorth_faster_than_real_time_counts_in_speedup(self):
        # When TrueNorth can run faster than real time, speedup grows.
        rt = compare_truenorth_vs_compass(characterization(20, 128), X86)
        fast = compare_truenorth_vs_compass(
            characterization(20, 128), X86, tick_frequency_hz=5000.0
        )
        assert fast.speedup > rt.speedup
