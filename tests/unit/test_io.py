"""Tests for AER streams, model files, and checkpoints (repro.io)."""

import numpy as np
import pytest

from repro.compass.simulator import CompassSimulator
from repro.core.builders import poisson_inputs, random_network
from repro.core.inputs import InputSchedule
from repro.core.record import SpikeRecord
from repro.hardware.simulator import TrueNorthSimulator, run_truenorth
from repro.io.aer import (
    AERStream,
    aer_from_schedule,
    decode_aer,
    encode_aer,
    read_aer_file,
    record_to_aer,
    schedule_from_aer,
    write_aer_file,
)
from repro.io.checkpoint import (
    Checkpoint,
    EngineCheckpoint,
    load_checkpoint,
    model_digest,
    restore_simulator,
    snapshot_simulator,
)
from repro.io.model_files import load_network, save_network
from repro.lint.diagnostics import LintError


class TestAER:
    def test_roundtrip(self):
        stream = AERStream.from_events([(3, 1, 7), (0, 0, 2), (3, 1, 6)])
        again = decode_aer(encode_aer(stream))
        assert again == stream
        assert again.n_events == 3

    def test_empty_stream(self):
        s = decode_aer(encode_aer(AERStream()))
        assert s.n_events == 0

    def test_file_roundtrip(self, tmp_path):
        stream = AERStream.from_events([(5, 2, 9), (1, 0, 0)])
        path = tmp_path / "spikes.aer"
        write_aer_file(path, stream)
        assert read_aer_file(path) == stream

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_aer(b"NOPE" + b"\x00" * 16)

    def test_truncated_rejected(self):
        data = encode_aer(AERStream.from_events([(1, 1, 1)]))
        with pytest.raises(ValueError):
            decode_aer(data[:-4])

    def test_window_and_shift(self):
        stream = AERStream.from_events([(0, 0, 0), (5, 0, 1), (9, 0, 2)])
        assert stream.window(1, 9).as_tuples() == [(5, 0, 1)]
        shifted = stream.shifted(10)
        assert shifted.as_tuples()[0] == (10, 0, 0)
        with pytest.raises(ValueError):
            stream.shifted(-1)

    def test_merge_ordered(self):
        a = AERStream.from_events([(0, 0, 0), (4, 0, 0)])
        b = AERStream.from_events([(2, 1, 1)])
        merged = a.merge(b)
        assert merged.as_tuples() == [(0, 0, 0), (2, 1, 1), (4, 0, 0)]

    def test_schedule_conversions(self):
        ins = InputSchedule.from_events([(0, 0, 1), (2, 1, 3)])
        stream = aer_from_schedule(ins)
        back = schedule_from_aer(stream)
        assert list(back) == list(ins)

    def test_record_capture_and_replay(self):
        # Capture one network's output as AER, replay it as another
        # network's input — the chip-to-chip streaming pattern.
        net = random_network(n_cores=2, connectivity=0.5, seed=3)
        ins = poisson_inputs(net, 10, 500.0, seed=1)
        rec = run_truenorth(net, 10, ins)
        out_stream = record_to_aer(rec)
        assert out_stream.n_events == rec.n_spikes
        replay = schedule_from_aer(out_stream.window(0, 10))
        assert replay.n_events <= out_stream.n_events


class TestModelFiles:
    def test_roundtrip_behaviour(self, tmp_path):
        net = random_network(n_cores=3, stochastic=True, seed=11)
        path = tmp_path / "model.npz"
        save_network(path, net)
        loaded = load_network(path)
        assert loaded.n_cores == 3 and loaded.seed == net.seed
        ins = poisson_inputs(net, 15, 300.0, seed=2)
        assert run_truenorth(net, 15, ins) == run_truenorth(loaded, 15, ins)

    def test_core_names_preserved(self, tmp_path):
        net = random_network(n_cores=2, seed=1)
        net.cores[0].name = "alpha"
        path = tmp_path / "m.npz"
        save_network(path, net)
        assert load_network(path).cores[0].name == "alpha"

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(ValueError):
            load_network(path)

    def test_invalid_network_not_saved(self, tmp_path):
        from repro.core.network import Core, Network

        bad = Network(cores=[Core.build(n_axons=2, n_neurons=2, target_core=9)])
        with pytest.raises(ValueError):
            save_network(tmp_path / "bad.npz", bad)


def assert_counters_equal(got, want) -> None:
    """Every EventCounters field equal, the per-core array included."""
    from dataclasses import fields

    for f in fields(want):
        a, b = getattr(got, f.name), getattr(want, f.name)
        if isinstance(b, np.ndarray):
            np.testing.assert_array_equal(a, b, err_msg=f.name)
        else:
            assert a == b, f"{f.name}: {a} != {b}"


class TestCheckpoint:
    @pytest.mark.parametrize("sim_cls", [TrueNorthSimulator, CompassSimulator])
    def test_resume_is_bit_exact(self, sim_cls):
        net = random_network(n_cores=3, stochastic=True, seed=21)
        ins = poisson_inputs(net, 30, 300.0, seed=5)

        full_sim = sim_cls(net)
        full_sim.load_inputs(ins)
        full_events = []
        for _ in range(30):
            full_events.extend(full_sim.step())

        first = sim_cls(net)
        first.load_inputs(ins)
        part_events = []
        for _ in range(12):
            part_events.extend(first.step())
        ckpt = snapshot_simulator(first)

        resumed = sim_cls(net)
        restore_simulator(resumed, ckpt)
        for _ in range(18):
            part_events.extend(resumed.step())

        assert SpikeRecord.from_events(part_events) == SpikeRecord.from_events(full_events)
        # Counters ride along in the checkpoint: the resumed run's
        # event accounting matches the uninterrupted run exactly.
        assert_counters_equal(resumed.counters, full_sim.counters)

    def test_checkpoint_serialization(self):
        net = random_network(n_cores=2, seed=3)
        sim = TrueNorthSimulator(net)
        sim.load_inputs(poisson_inputs(net, 10, 400.0, seed=1))
        for _ in range(5):
            sim.step()
        ckpt = snapshot_simulator(sim)
        again = Checkpoint.from_bytes(ckpt.to_bytes())
        assert again.tick == ckpt.tick
        assert all(
            np.array_equal(a, b) for a, b in zip(again.membranes, ckpt.membranes)
        )

    def test_core_count_mismatch_rejected(self):
        a = random_network(n_cores=2, seed=1)
        b = random_network(n_cores=3, seed=1)
        ckpt = snapshot_simulator(TrueNorthSimulator(a))
        with pytest.raises(ValueError):
            restore_simulator(TrueNorthSimulator(b), ckpt)

    def test_snapshot_is_deep(self):
        net = random_network(n_cores=1, seed=2)
        sim = TrueNorthSimulator(net)
        ckpt = snapshot_simulator(sim)
        sim.membranes[0][:] = 999
        assert not np.array_equal(sim.membranes[0], ckpt.membranes[0])


class TestCheckpointIdentity:
    def test_digest_mismatch_rejected(self):
        # Same core count, different weights: the digest check (not the
        # shape check) must catch it, with the TN602 diagnostic.
        a = random_network(n_cores=2, seed=1)
        b = random_network(n_cores=2, seed=2)
        ckpt = snapshot_simulator(TrueNorthSimulator(a))
        with pytest.raises(LintError, match="TN602"):
            restore_simulator(TrueNorthSimulator(b), ckpt)

    def test_network_name_mismatch_rejected(self):
        from repro.core.network import Network

        net = random_network(n_cores=2, seed=7)
        net.name = "alpha"
        renamed = Network(cores=net.cores, seed=net.seed, name="beta")
        ckpt = snapshot_simulator(TrueNorthSimulator(net))
        # Same digest (names are not part of the model identity hash),
        # different declared name: previously silently accepted.
        assert model_digest(net) == model_digest(renamed)
        with pytest.raises(LintError, match="TN602"):
            restore_simulator(TrueNorthSimulator(renamed), ckpt)

    def test_matching_name_and_digest_accepted(self):
        net = random_network(n_cores=2, seed=7)
        net.name = "alpha"
        sim = TrueNorthSimulator(net)
        sim.load_inputs(poisson_inputs(net, 10, 300.0, seed=1))
        for _ in range(4):
            sim.step()
        restore_simulator(TrueNorthSimulator(net), snapshot_simulator(sim))


class TestCheckpointContainer:
    def test_bytes_are_versioned_npz_not_pickle(self):
        net = random_network(n_cores=2, seed=3)
        sim = TrueNorthSimulator(net)
        blob = snapshot_simulator(sim).to_bytes()
        assert blob[:2] == b"PK"  # zip container (npz), not a pickle
        assert not blob.startswith(b"\x80")

    def test_v0_pickle_blob_rejected_loudly(self):
        import pickle

        blob = pickle.dumps({"tick": 3, "membranes": []})
        with pytest.raises(LintError, match="TN601"):
            Checkpoint.from_bytes(blob)
        with pytest.raises(LintError, match="TN601"):
            EngineCheckpoint.from_bytes(blob)

    def test_v0_pickle_file_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "old.ckpt"
        path.write_bytes(pickle.dumps({"tick": 3}))
        with pytest.raises(LintError, match="TN601"):
            load_checkpoint(path)

    def test_garbage_bytes_rejected(self):
        with pytest.raises(LintError, match="TN601"):
            Checkpoint.from_bytes(b"not a checkpoint at all")

    def test_counters_round_trip(self):
        net = random_network(n_cores=2, seed=3)
        sim = TrueNorthSimulator(net)
        sim.load_inputs(poisson_inputs(net, 10, 500.0, seed=1))
        for _ in range(6):
            sim.step()
        ckpt = snapshot_simulator(sim)
        again = Checkpoint.from_bytes(ckpt.to_bytes())
        assert again.counters is not None
        assert_counters_equal(again.counters, sim.counters)

    def test_file_round_trip_dispatches_by_kind(self, tmp_path):
        net = random_network(n_cores=2, seed=3)
        sim = TrueNorthSimulator(net)
        path = tmp_path / "legacy.npz"
        snapshot_simulator(sim).save(path)
        loaded = load_checkpoint(path)
        assert isinstance(loaded, Checkpoint)
        assert loaded.n_cores == 2
        assert loaded.model_digest == model_digest(net)

    def test_describe_is_json_friendly(self):
        import json

        net = random_network(n_cores=2, seed=3)
        ckpt = snapshot_simulator(TrueNorthSimulator(net))
        json.dumps(ckpt.describe())
