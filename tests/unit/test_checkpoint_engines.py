"""Engine-agnostic snapshot/restore: the checkpoint plane across engines.

The tentpole invariant: a checkpoint captured at ANY mid-run tick on
ANY engine restores — on the same engine or a different one — to a
simulator whose remaining run is bit-identical to the uninterrupted
one: same spikes, same membranes, same event counters.  Counter-based
PRNG makes this possible; these tests make it enforced.
"""

import json
import os
from dataclasses import fields

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.compass.batched import BatchedCompassSimulator
from repro.compass.compile import compile_network
from repro.compass.fast import FastCompassSimulator
from repro.compass.parallel import ParallelCompassSimulator, WorkerFailedError
from repro.compass.simulator import CompassSimulator
from repro.core.builders import poisson_inputs, random_network
from repro.core.record import SpikeRecord
from repro.io.checkpoint import EngineCheckpoint, load_checkpoint, model_digest
from repro.lint.diagnostics import LintError
from repro.obs import Observer
from repro.obs.flight import write_crash_dump
from repro.runtime.serving import ModelServer
from repro.runtime.streaming import SceneSource, StreamingRuntime

TICKS = 30
SPLIT = 13

# Counter fields identical across engines.  `hops`/`messages` are
# expression-dependent (mesh accounting and rank granularity) and
# `active_neuron_updates` depends on gating, so cross-engine checks
# compare this logical subset; same-engine resume compares every field.
LOGICAL = (
    "ticks", "synaptic_events", "spikes", "deliveries", "neuron_updates",
    "membrane_saturations", "max_core_events_per_tick",
)


def small_net(seed=9, stochastic=True, n_cores=3):
    return random_network(
        n_cores=n_cores, n_axons=10, n_neurons=10, connectivity=0.5,
        stochastic=stochastic, seed=seed,
    )


def assert_counters_equal(got, want) -> None:
    for f in fields(want):
        a, b = getattr(got, f.name), getattr(want, f.name)
        if isinstance(b, np.ndarray):
            np.testing.assert_array_equal(a, b, err_msg=f.name)
        else:
            assert a == b, f"{f.name}: {a} != {b}"


def assert_logical_counters_equal(got, want) -> None:
    for name in LOGICAL:
        assert getattr(got, name) == getattr(want, name), name
    np.testing.assert_array_equal(
        got.synaptic_events_per_core, want.synaptic_events_per_core
    )


def drive(sim, n_ticks):
    """Step *sim* n_ticks, collecting (tick, core, neuron) spike events."""
    events = []
    step_arrays = getattr(sim, "step_arrays", None)
    for _ in range(n_ticks):
        if step_arrays is not None:
            tick, cores, neurons = step_arrays()
            events.extend(
                (tick, int(cc), int(nn)) for cc, nn in zip(cores, neurons)
            )
        else:
            events.extend(sim.step())
    return events


def reference_run(net, ins, n_ticks=TICKS):
    """Uninterrupted fast-engine run: the bit-exactness baseline."""
    sim = FastCompassSimulator(compile_network(net))
    sim.load_inputs(ins)
    events = drive(sim, n_ticks)
    return sim, events


def checkpoint_at(net, ins, split=SPLIT):
    """Run the fast engine to *split* ticks; return (checkpoint, events)."""
    sim = FastCompassSimulator(compile_network(net))
    sim.load_inputs(ins)
    head = drive(sim, split)
    return sim.snapshot(), head


class TestSameEngineResume:
    @pytest.mark.parametrize("gated", [True, False])
    def test_fast_resume_bit_exact(self, gated):
        net = small_net()
        ins = poisson_inputs(net, TICKS, 400.0, seed=3)
        full_sim, full_events = reference_run(net, ins)

        sim = FastCompassSimulator(compile_network(net), gated=gated)
        sim.load_inputs(ins)
        head = drive(sim, SPLIT)
        ckpt = sim.snapshot()

        resumed = FastCompassSimulator(compile_network(net), gated=gated)
        resumed.restore(ckpt)
        tail = drive(resumed, TICKS - SPLIT)
        assert SpikeRecord.from_events(head + tail) == SpikeRecord.from_events(
            full_events
        )
        np.testing.assert_array_equal(resumed.v, full_sim.v)
        assert_counters_equal(resumed.counters, full_sim.counters)

    def test_fast_resume_through_bytes_and_file(self, tmp_path):
        net = small_net(seed=4)
        ins = poisson_inputs(net, TICKS, 500.0, seed=7)
        full_sim, full_events = reference_run(net, ins)
        ckpt, head = checkpoint_at(net, ins)

        again = EngineCheckpoint.from_bytes(ckpt.to_bytes())
        path = tmp_path / "mid.npz"
        n_bytes = again.save(path)
        assert n_bytes > 0 and path.stat().st_size == n_bytes
        loaded = EngineCheckpoint.load(path, net)

        resumed = FastCompassSimulator(compile_network(net))
        resumed.restore(loaded)
        tail = drive(resumed, TICKS - SPLIT)
        assert SpikeRecord.from_events(head + tail) == SpikeRecord.from_events(
            full_events
        )
        np.testing.assert_array_equal(resumed.v, full_sim.v)
        assert_counters_equal(resumed.counters, full_sim.counters)

    def test_load_validates_identity(self, tmp_path):
        net = small_net(seed=4)
        other = small_net(seed=5)
        ckpt, _ = checkpoint_at(net, poisson_inputs(net, TICKS, 300.0, seed=1))
        path = tmp_path / "c.npz"
        ckpt.save(path)
        with pytest.raises(LintError, match="TN602"):
            EngineCheckpoint.load(path, other)
        # load_checkpoint without a network skips validation, by design.
        assert load_checkpoint(path).model_digest == model_digest(net)

    def test_restore_rejects_foreign_seed(self):
        net = small_net(seed=4)
        ckpt, _ = checkpoint_at(net, poisson_inputs(net, TICKS, 300.0, seed=1))
        ckpt2 = ckpt.copy()
        ckpt2.seed = ckpt.seed + 1
        with pytest.raises(ValueError):
            FastCompassSimulator(compile_network(net)).restore(ckpt2)

    def test_parallel_resume_into_different_worker_count(self):
        net = small_net(n_cores=4)
        ins = poisson_inputs(net, TICKS, 400.0, seed=3)
        _, full_events = reference_run(net, ins)

        first = ParallelCompassSimulator(net, n_workers=2)
        second = ParallelCompassSimulator(net, n_workers=3)
        try:
            first.load_inputs(ins)
            head = drive(first, SPLIT)
            ckpt = first.snapshot()
            # The checkpoint is in global coordinates: a pool with a
            # DIFFERENT partitioning restores it bit-exactly.
            second.restore(ckpt)
            tail = drive(second, TICKS - SPLIT)
        finally:
            first.close()
            second.close()
        assert SpikeRecord.from_events(head + tail) == SpikeRecord.from_events(
            full_events
        )


class TestCrossEngineRestore:
    def test_fast_to_reference_compass(self):
        net = small_net()
        ins = poisson_inputs(net, TICKS, 400.0, seed=3)
        full_sim, full_events = reference_run(net, ins)
        ckpt, head = checkpoint_at(net, ins)

        resumed = CompassSimulator(net)
        resumed.restore(ckpt)
        tail = drive(resumed, TICKS - SPLIT)
        assert SpikeRecord.from_events(head + tail) == SpikeRecord.from_events(
            full_events
        )
        assert_logical_counters_equal(resumed.counters, full_sim.counters)

    def test_fast_to_batched_lane(self):
        net = small_net()
        ins = poisson_inputs(net, TICKS, 400.0, seed=3)
        full_sim, full_events = reference_run(net, ins)
        ckpt, head = checkpoint_at(net, ins)

        batched = BatchedCompassSimulator(compile_network(net), 3)
        batched.restore_lane(1, ckpt)
        events = []
        for _ in range(TICKS - SPLIT):
            events.extend(
                (t, c, nn) for b, t, c, nn in batched.step() if b == 1
            )
        assert SpikeRecord.from_events(head + events) == SpikeRecord.from_events(
            full_events
        )
        np.testing.assert_array_equal(batched.v[1], full_sim.v)
        assert_logical_counters_equal(
            batched.lane_counters(1), full_sim.counters
        )

    def test_batched_lane_to_fast(self):
        net = small_net()
        ins = poisson_inputs(net, TICKS, 400.0, seed=3)
        full_sim, full_events = reference_run(net, ins)

        batched = BatchedCompassSimulator(
            compile_network(net), 2, seeds=[net.seed, net.seed + 1]
        )
        batched.load_inputs(ins, lane=0)
        head = []
        for _ in range(SPLIT):
            head.extend(
                (t, c, nn) for b, t, c, nn in batched.step() if b == 0
            )
        ckpt = batched.snapshot_lane(0)

        resumed = FastCompassSimulator(compile_network(net))
        resumed.restore(ckpt)
        tail = drive(resumed, TICKS - SPLIT)
        assert SpikeRecord.from_events(head + tail) == SpikeRecord.from_events(
            full_events
        )
        np.testing.assert_array_equal(resumed.v, full_sim.v)

    def test_parallel_to_fast_and_back(self):
        net = small_net(n_cores=4)
        ins = poisson_inputs(net, TICKS, 400.0, seed=3)
        full_sim, full_events = reference_run(net, ins)

        par = ParallelCompassSimulator(net, n_workers=2)
        try:
            par.load_inputs(ins)
            head = drive(par, SPLIT)
            ckpt = par.snapshot()
        finally:
            par.close()

        fast = FastCompassSimulator(compile_network(net))
        fast.restore(ckpt)
        tail = drive(fast, TICKS - SPLIT)
        assert SpikeRecord.from_events(head + tail) == SpikeRecord.from_events(
            full_events
        )
        np.testing.assert_array_equal(fast.v, full_sim.v)

        # And the other direction: fast -> parallel.
        ckpt2, head2 = checkpoint_at(net, ins)
        par2 = ParallelCompassSimulator(net, n_workers=3)
        try:
            par2.restore(ckpt2)
            tail2 = drive(par2, TICKS - SPLIT)
        finally:
            par2.close()
        assert SpikeRecord.from_events(head2 + tail2) == SpikeRecord.from_events(
            full_events
        )

    def test_whole_batch_snapshot_round_trip(self):
        net = small_net()
        ins = poisson_inputs(net, TICKS, 400.0, seed=3)
        compiled = compile_network(net)
        a = BatchedCompassSimulator(compiled, 2, seeds=[7, 8])
        a.load_inputs(ins)
        for _ in range(SPLIT):
            a.step()
        ckpts = a.snapshot()
        assert len(ckpts) == 2

        b = BatchedCompassSimulator(compiled, 2, seeds=[0, 0])
        b.restore(ckpts)
        for _ in range(TICKS - SPLIT):
            assert a.step() == b.step()
        np.testing.assert_array_equal(a.v, b.v)


class TestCrashDumpCheckpoint:
    def test_bundle_carries_restorable_checkpoint(self, tmp_path):
        net = small_net(seed=4)
        ckpt, _ = checkpoint_at(net, poisson_inputs(net, TICKS, 300.0, seed=1))
        bundle = write_crash_dump(
            None, "unit", crash_dir=str(tmp_path), checkpoint=ckpt
        )
        with open(os.path.join(bundle, "manifest.json")) as fh:
            manifest = json.load(fh)
        assert "checkpoint.npz" in manifest["files"]
        assert manifest["checkpoint_tick"] == SPLIT
        loaded = EngineCheckpoint.load(
            os.path.join(bundle, "checkpoint.npz"), net
        )
        np.testing.assert_array_equal(loaded.v, ckpt.v)

    def test_killed_worker_leaves_resumable_checkpoint(
        self, tmp_path, monkeypatch
    ):
        # The acceptance-criterion path: kill a parallel worker mid-run;
        # the crash bundle's checkpoint resumes — bit-identical to the
        # uninterrupted run — on a fresh engine.
        monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path))
        net = small_net(n_cores=4, seed=41)
        ins = poisson_inputs(net, TICKS, 400.0, seed=3)
        full_sim, full_events = reference_run(net, ins)

        sim = ParallelCompassSimulator(
            net, n_workers=2, obs=Observer(), checkpoint_every=5
        )
        try:
            sim.load_inputs(ins)
            head = drive(sim, SPLIT)  # periodic checkpoints at 5 and 10
            assert sim.last_checkpoint is not None
            assert sim.last_checkpoint.tick == 10
            sim._procs[0].kill()
            sim._procs[0].join(timeout=5)
            with pytest.raises(WorkerFailedError):
                for _ in range(3):
                    sim.step_arrays()
        finally:
            sim.close()

        bundles = [p for p in tmp_path.iterdir() if p.name.startswith("crash-")]
        assert len(bundles) == 1
        manifest = json.loads((bundles[0] / "manifest.json").read_text())
        assert "checkpoint.npz" in manifest["files"]
        assert manifest["checkpoint_tick"] == 10

        resumed = FastCompassSimulator(compile_network(net))
        resumed.restore(EngineCheckpoint.load(bundles[0] / "checkpoint.npz", net))
        tail = drive(resumed, TICKS - 10)
        assert SpikeRecord.from_events(head[: _n_until(head, 10)] + tail) == \
            SpikeRecord.from_events(full_events)
        np.testing.assert_array_equal(resumed.v, full_sim.v)


def _n_until(events, tick):
    """Number of leading *events* with tick < *tick* (events are ordered)."""
    return sum(1 for t, _, _ in events if t < tick)


class TestServingPreemption:
    def test_preempted_session_is_bit_identical(self):
        net = small_net()
        ins = poisson_inputs(net, 20, 300.0, seed=2)

        ref = ModelServer(net, n_lanes=2)
        baseline = ref.submit(ins, 20)
        ref.run()

        server = ModelServer(net, n_lanes=2)
        session = server.submit(ins, 20)
        for _ in range(7):
            server.step()
        out = server.preempt(session.session_id)
        assert out is session
        assert session.lane is None and session.preemptions == 1
        assert not session.done
        server.run()
        assert session.done
        assert session.record == baseline.record

    def test_preempt_to_disk_and_resume(self, tmp_path):
        net = small_net()
        ins = poisson_inputs(net, 20, 300.0, seed=2)

        ref = ModelServer(net, n_lanes=1)
        baseline = ref.submit(ins, 20)
        ref.run()

        obs = Observer()
        server = ModelServer(net, n_lanes=1, obs=obs,
                             checkpoint_dir=str(tmp_path))
        session = server.submit(ins, 20)
        for _ in range(5):
            server.step()
        server.preempt(session.session_id)
        path = tmp_path / f"{session.session_id}.npz"
        assert path.exists()
        assert session._checkpoint is None  # spilled to disk, not memory
        loaded = load_checkpoint(path)
        assert loaded.tick == 5
        assert obs.metrics.counter("repro_checkpoints_total").value() == 1
        assert obs.metrics.counter("repro_checkpoint_bytes_total").value() > 0
        server.run()
        assert session.done and session.record == baseline.record

    def test_preempt_unknown_session_rejected(self):
        server = ModelServer(small_net(), n_lanes=1)
        with pytest.raises(ValueError):
            server.preempt("no-such-session")


class TestStreamingCheckpoints:
    def _runtime(self, tmp_path, obs):
        from repro.apps.video import generate_scene
        from repro.corelets.corelet import Composition
        from repro.corelets.library.basic import relay

        comp = Composition(seed=0)
        r = relay(12 * 20)
        comp.add(r)
        comp.export_input("in", r.inputs["in"])
        comp.export_output("out", r.outputs["out"])
        compiled = comp.compile()
        scene = generate_scene(12, 20, n_frames=3, seed=2)
        runtime = StreamingRuntime(
            compiled.network,
            compiled.inputs["in"],
            ticks_per_frame=5,
            obs=obs,
            checkpoint_every=4,
            checkpoint_dir=str(tmp_path),
        )
        return runtime, scene

    def test_periodic_checkpoints_written(self, tmp_path):
        obs = Observer()
        runtime, scene = self._runtime(tmp_path, obs)
        runtime.run(SceneSource(scene))
        # 3 frames x 5 ticks + 2 drain ticks = 17 ticks -> every 4.
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["ckpt-12.npz", "ckpt-16.npz", "ckpt-4.npz", "ckpt-8.npz"]
        assert runtime.last_checkpoint is not None
        assert runtime.last_checkpoint.tick == 16
        assert obs.metrics.counter("repro_checkpoints_total").value() == 4
        assert obs.metrics.counter("repro_checkpoint_bytes_total").value() > 0
        loaded = load_checkpoint(tmp_path / "ckpt-16.npz")
        assert loaded.tick == 16


class TestCheckpointCLI:
    def test_simulate_checkpoint_resume_round_trip(self, tmp_path, capsys):
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        model = "recurrent-deterministic"
        rc = cli_main([
            "simulate", model, "--ticks", "30",
            "--checkpoint-every", "10", "--checkpoint-dir", str(a),
        ])
        assert rc == 0
        assert sorted(p.name for p in a.iterdir()) == [
            "ckpt-10.npz", "ckpt-20.npz", "ckpt-30.npz",
        ]
        # Resume from tick 10 (the `run` alias exercises the same path);
        # the final checkpoint must be bit-identical to the
        # uninterrupted run's.
        rc = cli_main([
            "run", model, "--ticks", "30", "--resume", str(a / "ckpt-10.npz"),
            "--checkpoint-every", "30", "--checkpoint-dir", str(b),
        ])
        assert rc == 0
        full = load_checkpoint(a / "ckpt-30.npz")
        resumed = load_checkpoint(b / "ckpt-30.npz")
        assert resumed.tick == full.tick == 30
        np.testing.assert_array_equal(resumed.v, full.v)
        np.testing.assert_array_equal(resumed.ring, full.ring)
        assert_counters_equal(resumed.counters, full.counters)
        capsys.readouterr()

    def test_checkpoint_inspect(self, tmp_path, capsys):
        net = small_net(seed=4)
        ckpt, _ = checkpoint_at(net, poisson_inputs(net, TICKS, 300.0, seed=1))
        path = tmp_path / "c.npz"
        ckpt.save(path)
        assert cli_main(["checkpoint", "inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "tick" in out and str(SPLIT) in out
        assert cli_main(["checkpoint", "inspect", str(path), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["tick"] == SPLIT
        assert info["model_digest"] == model_digest(net)
