"""Tests for the Corelet Programming Environment (repro.corelets)."""

import numpy as np
import pytest

from repro.core.inputs import InputSchedule
from repro.corelets.corelet import Composition
from repro.corelets.library.basic import pooling, relay, splitter
from repro.hardware.simulator import run_truenorth


def drive_and_collect(compiled, events, n_ticks, output="out"):
    """Inject events on the exported input; return output spike tuples."""
    ins = InputSchedule()
    pins = compiled.inputs["in"]
    for tick, line in events:
        ins.add(tick, pins[line].core, pins[line].index)
    rec = run_truenorth(compiled.network, n_ticks, ins)
    out_pins = {(p.core, p.index): line for line, p in enumerate(compiled.outputs[output])}
    return sorted(
        (t, out_pins[(c, n)])
        for t, c, n in rec.as_tuples()
        if (c, n) in out_pins
    )


class TestSplitter:
    def test_two_way_duplication(self):
        comp = Composition(seed=0)
        sp = splitter(4, 2)
        comp.add(sp)
        comp.export_input("in", sp.inputs["in"])
        comp.export_output("out0", sp.outputs["out0"])
        comp.export_output("out1", sp.outputs["out1"])
        compiled = comp.compile()

        ins = InputSchedule()
        pin = compiled.inputs["in"][2]
        ins.add(0, pin.core, pin.index)
        rec = run_truenorth(compiled.network, 2, ins)
        spikes = set(rec.as_tuples())
        p0 = compiled.outputs["out0"][2]
        p1 = compiled.outputs["out1"][2]
        assert (0, p0.core, p0.index) in spikes
        assert (0, p1.core, p1.index) in spikes
        assert len(spikes) == 2

    def test_chunks_across_cores(self):
        sp = splitter(100, 4, core_size=64)  # 16 inputs per core
        assert sp.n_cores == 7  # ceil(100/16)
        assert len(sp.inputs["in"]) == 100
        assert all(len(sp.outputs[f"out{w}"]) == 100 for w in range(4))

    def test_rejects_too_many_ways(self):
        with pytest.raises(ValueError):
            splitter(4, 300)


class TestRelay:
    def test_one_tick_latency_identity(self):
        comp = Composition(seed=0)
        r = relay(8)
        comp.add(r)
        comp.export_input("in", r.inputs["in"])
        comp.export_output("out", r.outputs["out"])
        compiled = comp.compile()
        got = drive_and_collect(compiled, [(0, 3), (2, 5)], 4)
        assert got == [(0, 3), (2, 5)]


class TestPooling:
    def test_or_pooling(self):
        comp = Composition(seed=0)
        p = pooling(8, 4, mode="or")
        comp.add(p)
        comp.export_input("in", p.inputs["in"])
        comp.export_output("out", p.outputs["out"])
        compiled = comp.compile()
        # one spike in window 0 -> output 0 fires; window 1 silent
        got = drive_and_collect(compiled, [(0, 1)], 3)
        assert got == [(0, 0)]

    def test_and_pooling(self):
        comp = Composition(seed=0)
        p = pooling(4, 2, mode="and")
        comp.add(p)
        comp.export_input("in", p.inputs["in"])
        comp.export_output("out", p.outputs["out"])
        compiled = comp.compile()
        # only one of two lines -> no fire; both -> fire
        got = drive_and_collect(compiled, [(0, 0), (2, 0), (2, 1)], 4)
        assert got == [(2, 0)]

    def test_window_must_divide(self):
        with pytest.raises(ValueError):
            pooling(10, 3)


class TestComposition:
    def test_chain_two_corelets(self):
        comp = Composition(seed=0)
        a = relay(4, name="a")
        b = relay(4, name="b")
        comp.connect(a.outputs["out"], b.inputs["in"], delay=2)
        comp.export_input("in", a.inputs["in"])
        comp.export_output("out", b.outputs["out"])
        compiled = comp.compile()
        got = drive_and_collect(compiled, [(0, 1)], 6)
        # a fires at t=0, delivery at t=2, b fires at t=2
        assert got == [(2, 1)]

    def test_fanout_requires_splitter(self):
        comp = Composition()
        a = relay(2, name="a")
        b = relay(2, name="b")
        c = relay(2, name="c")
        comp.connect(a.outputs["out"], b.inputs["in"])
        comp.connect(a.outputs["out"], c.inputs["in"])
        with pytest.raises(ValueError, match="splitter"):
            comp.compile()

    def test_width_mismatch_rejected(self):
        comp = Composition()
        a = relay(4, name="a")
        b = relay(8, name="b")
        with pytest.raises(ValueError, match="width"):
            comp.connect(a.outputs["out"], b.inputs["in"])

    def test_connector_slice(self):
        a = relay(8, name="a")
        b = relay(4, name="b")
        comp = Composition()
        comp.connect(a.outputs["out"].slice(0, 4), b.inputs["in"])
        comp.export_input("in", a.inputs["in"])
        comp.export_output("out", b.outputs["out"])
        compiled = comp.compile()
        got = drive_and_collect(compiled, [(0, 2), (0, 6)], 4)
        # line 2 forwards through b; line 6 was not connected onward
        assert got == [(1, 2)]

    def test_compile_does_not_mutate_corelets(self):
        a = relay(4, name="a")
        before = a.cores[0].target_core.copy()
        comp = Composition()
        b = relay(4, name="b")
        comp.connect(a.outputs["out"], b.inputs["in"])
        comp.compile()
        assert np.array_equal(a.cores[0].target_core, before)

    def test_recompile_identical(self):
        comp = Composition(seed=3)
        a = relay(4, name="a")
        b = relay(4, name="b")
        comp.connect(a.outputs["out"], b.inputs["in"])
        comp.export_input("in", a.inputs["in"])
        comp.export_output("out", b.outputs["out"])
        c1 = comp.compile()
        c2 = comp.compile()
        ins = InputSchedule.from_events([(0, c1.inputs["in"][0].core, c1.inputs["in"][0].index)])
        assert run_truenorth(c1.network, 5, ins) == run_truenorth(c2.network, 5, ins)

    def test_duplicate_connector_name_rejected(self):
        a = relay(4, name="a")
        with pytest.raises(ValueError):
            a.input_connector("in", [(0, 0)])
