"""Edge-case tests: delay-buffer wraparound, merges, horizons, reuse."""

import numpy as np
import pytest

from repro.compass.simulator import run_compass
from repro.core import params
from repro.core.builders import poisson_inputs, random_network
from repro.core.inputs import InputSchedule
from repro.core.kernel import run_kernel
from repro.core.network import OUTPUT_TARGET, Core, Network
from repro.hardware.simulator import TrueNorthSimulator, run_truenorth

ALL_RUNNERS = [
    ("kernel", run_kernel),
    ("compass", lambda n, t, i=None: run_compass(n, t, i, n_ranks=2)),
    ("truenorth", run_truenorth),
]


def relay_net(delays, n=4, threshold=1):
    """Single recurrent core: axon i -> neuron i -> axon i with delay[i]."""
    core = Core.build(
        n_axons=n, n_neurons=n,
        crossbar=np.eye(n, dtype=bool),
        threshold=threshold,
        target_core=0,
        target_axon=np.arange(n),
        delay=delays,
    )
    return Network(cores=[core], seed=1)


class TestDelayBufferWraparound:
    @pytest.mark.parametrize("runner_name,runner", ALL_RUNNERS)
    def test_max_delay_15_cycles_exactly(self, runner_name, runner):
        net = relay_net(np.full(4, 15))
        ins = InputSchedule.from_events([(0, 0, 2)])
        rec = runner(net, 61, ins)
        fired = [t for t, c, n in rec.as_tuples() if n == 2]
        assert fired == [0, 15, 30, 45, 60], runner_name

    @pytest.mark.parametrize("runner_name,runner", ALL_RUNNERS)
    def test_mixed_delays_on_one_core(self, runner_name, runner):
        delays = np.array([1, 5, 15, 7])
        net = relay_net(delays)
        ins = InputSchedule.from_events([(0, 0, i) for i in range(4)])
        rec = runner(net, 31, ins)
        for i, d in enumerate(delays):
            fired = [t for t, c, n in rec.as_tuples() if n == i]
            assert fired == list(range(0, 31, int(d))), (runner_name, i)

    def test_delays_1_and_15_to_same_axon_are_distinct_events(self):
        # neuron 0 (delay 1) and neuron 1 (delay 15) both target axon 2;
        # one source spike each must yield two separate deliveries.
        core = Core.build(
            n_axons=4, n_neurons=4,
            crossbar=np.eye(4, dtype=bool),
            threshold=1,
            target_core=0,
            target_axon=np.array([2, 2, 0, 0]),
            delay=np.array([1, 15, 1, 1]),
        )
        core.target_core[2] = OUTPUT_TARGET
        core.target_core[3] = OUTPUT_TARGET
        net = Network(cores=[core], seed=0)
        ins = InputSchedule.from_events([(0, 0, 0), (0, 0, 1)])
        rec = run_kernel(net, 20, ins)
        fired2 = [t for t, c, n in rec.as_tuples() if n == 2]
        assert fired2 == [1, 15]


class TestAxonMerge:
    @pytest.mark.parametrize("runner_name,runner", ALL_RUNNERS)
    def test_simultaneous_arrivals_merge(self, runner_name, runner):
        # Two neurons fire at t=0, both target core 1 axon 0 with delay 1:
        # a single synaptic event at t=1.
        c0 = Core.build(
            n_axons=2, n_neurons=2, crossbar=np.eye(2, dtype=bool),
            threshold=1, target_core=1, target_axon=0, delay=1,
        )
        xb = np.zeros((2, 2), dtype=bool)
        xb[0, 0] = True
        c1 = Core.build(n_axons=2, n_neurons=2, crossbar=xb, threshold=1)
        net = Network(cores=[c0, c1], seed=0)
        ins = InputSchedule.from_events([(0, 0, 0), (0, 0, 1)])
        rec = runner(net, 3, ins)
        # core1 neuron0 received weight 1 (merged), fired once
        assert (1, 1, 0) in rec.as_tuples(), runner_name
        assert rec.counters.synaptic_events_per_core[1] == 1, runner_name

    @pytest.mark.parametrize("runner_name,runner", ALL_RUNNERS)
    def test_staggered_arrivals_do_not_merge(self, runner_name, runner):
        # Same two senders with delays 1 and 2: two separate events.
        c0 = Core.build(
            n_axons=2, n_neurons=2, crossbar=np.eye(2, dtype=bool),
            threshold=1, target_core=1, target_axon=0,
            delay=np.array([1, 2]),
        )
        xb = np.zeros((2, 2), dtype=bool)
        xb[0, 0] = True
        c1 = Core.build(n_axons=2, n_neurons=2, crossbar=xb, threshold=1)
        net = Network(cores=[c0, c1], seed=0)
        ins = InputSchedule.from_events([(0, 0, 0), (0, 0, 1)])
        rec = runner(net, 4, ins)
        assert rec.counters.synaptic_events_per_core[1] == 2, runner_name


class TestHorizons:
    def test_zero_tick_run(self):
        net = random_network(n_cores=2, seed=1)
        rec = run_truenorth(net, 0)
        assert rec.n_spikes == 0 and rec.counters.ticks == 0

    @pytest.mark.parametrize("runner_name,runner", ALL_RUNNERS)
    def test_inputs_beyond_horizon_ignored(self, runner_name, runner):
        net = relay_net(np.full(4, 1))
        ins = InputSchedule.from_events([(2, 0, 0), (50, 0, 1)])
        rec = runner(net, 10, ins)
        neurons = set(rec.neurons.tolist())
        assert 0 in neurons and 1 not in neurons, runner_name

    def test_spikes_scheduled_past_horizon_are_dropped(self):
        # a spike at t=8 with delay 15 schedules delivery at t=23 > 10:
        # run ends cleanly with no delivery
        net = relay_net(np.full(4, 15))
        ins = InputSchedule.from_events([(8, 0, 0)])
        rec = run_kernel(net, 10, ins)
        assert [t for t, _, n in rec.as_tuples() if n == 0] == [8]


class TestSimulatorReuse:
    def test_continued_stepping_extends_run(self):
        net = random_network(n_cores=3, stochastic=True, seed=5)
        ins = poisson_inputs(net, 30, 300.0, seed=2)
        one_shot = run_truenorth(net, 30, ins)

        sim = TrueNorthSimulator(net)
        sim.load_inputs(ins)
        events = []
        for _ in range(10):
            events.extend(sim.step())
        for _ in range(20):
            events.extend(sim.step())
        from repro.core.record import SpikeRecord

        assert SpikeRecord.from_events(events) == one_shot

    def test_compass_more_ranks_than_cores(self):
        net = random_network(n_cores=2, seed=4)
        ins = poisson_inputs(net, 10, 400.0, seed=1)
        assert run_compass(net, 10, ins, n_ranks=16) == run_kernel(net, 10, ins)


class TestSaturationCorners:
    @pytest.mark.parametrize("runner_name,runner", ALL_RUNNERS)
    def test_saturated_membrane_still_fires(self, runner_name, runner):
        # huge positive weights push V to MEMBRANE_MAX; threshold at the
        # architectural max is still reachable (MAX > THRESHOLD_MAX)
        core = Core.build(
            n_axons=1, n_neurons=1,
            crossbar=np.ones((1, 1), dtype=bool),
            weights=np.full((1, 4), params.WEIGHT_MAX),
            threshold=params.THRESHOLD_MAX,
        )
        net = Network(cores=[core], seed=0)
        # hammer the axon every tick: V climbs by 255/tick, saturating
        ins = InputSchedule.from_events([(t, 0, 0) for t in range(2100)])
        rec = runner(net, 2100, ins)
        assert rec.n_spikes >= 1, runner_name

    def test_negative_saturation_respects_floor_modes(self):
        core = Core.build(
            n_axons=1, n_neurons=2,
            crossbar=np.ones((1, 2), dtype=bool),
            weights=np.full((2, 4), params.WEIGHT_MIN),
            threshold=params.THRESHOLD_MAX,
            neg_threshold=np.array([100, 100]),
            neg_floor_mode=np.array([params.NEG_FLOOR_SATURATE, params.NEG_FLOOR_RESET]),
            reset_value=np.array([5, 5]),
        )
        net = Network(cores=[core], seed=0)
        ins = InputSchedule.from_events([(0, 0, 0)])
        run_kernel(net, 1, ins)
        kernel_membranes = []
        from repro.core.kernel import ReferenceKernel

        k = ReferenceKernel(net)
        k.inject(ins)
        k.step()
        assert k.membranes[0][0] == -100  # saturate at -beta
        assert k.membranes[0][1] == -5  # reset to -R

    def test_linear_reset_with_stochastic_threshold(self):
        # RESET_LINEAR must subtract the *drawn* theta, not alpha: the
        # residue equals V - theta, identical across expressions.
        core = Core.build(
            n_axons=1, n_neurons=8,
            crossbar=np.ones((1, 8), dtype=bool),
            weights=np.full((8, 4), 200),
            threshold=50,
            threshold_mask=63,
            reset_mode=params.RESET_LINEAR,
        )
        net = Network(cores=[core], seed=9)
        ins = InputSchedule.from_events([(t, 0, 0) for t in range(6)])
        ref = run_kernel(net, 6, ins)
        assert run_compass(net, 6, ins, n_ranks=1) == ref
        assert run_truenorth(net, 6, ins) == ref
        assert ref.n_spikes > 0


class TestFullSizeCore:
    def test_256x256_core_equivalence(self):
        net = random_network(
            n_cores=1, n_axons=256, n_neurons=256, connectivity=0.1,
            stochastic=True, seed=44,
        )
        ins = poisson_inputs(net, 6, 100.0, seed=3)
        ref = run_kernel(net, 6, ins)
        assert run_compass(net, 6, ins, n_ranks=1) == ref
        assert run_truenorth(net, 6, ins) == ref
