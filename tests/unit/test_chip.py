"""Tests for chip geometry, placement, and defect maps (repro.core.chip)."""

import numpy as np
import pytest

from repro.core.chip import ChipGeometry, DefectMap, Placement


class TestGeometry:
    def test_default_is_truenorth(self):
        g = ChipGeometry()
        assert g.cores_x == 64 and g.cores_y == 64
        assert g.cores_per_chip == 4096


class TestGridPlacement:
    def test_row_major_single_chip(self):
        p = Placement.grid(5, ChipGeometry(cores_x=2, cores_y=4))
        assert p.x.tolist() == [0, 1, 0, 1, 0]
        assert p.y.tolist() == [0, 0, 1, 1, 2]
        assert p.n_chips == 1

    def test_overflow_to_second_chip(self):
        p = Placement.grid(10, ChipGeometry(cores_x=2, cores_y=4))
        assert p.n_cores == 10
        assert p.n_chips == 2
        assert p.chip_x[8] == 1 and p.x[8] == 0 and p.y[8] == 0

    def test_full_truenorth_chip(self):
        p = Placement.grid(4096)
        assert p.n_chips == 1
        assert p.x.max() == 63 and p.y.max() == 63

    def test_defects_are_skipped(self):
        defects = DefectMap(frozenset({(0, 0, 0, 0), (0, 0, 1, 0)}))
        p = Placement.grid(4, ChipGeometry(cores_x=2, cores_y=4), defects)
        assert (p.x[0], p.y[0]) == (0, 1)  # first row skipped entirely
        assert p.n_cores == 4

    def test_too_many_defects_raises(self):
        g = ChipGeometry(cores_x=2, cores_y=2)
        slots = frozenset((cx, 0, x, y) for cx in range(64) for x in range(2) for y in range(2))
        with pytest.raises(ValueError):
            Placement.grid(4, g, DefectMap(slots))


class TestHops:
    def test_same_core_zero_hops(self):
        p = Placement.compact(4)
        assert p.hops_between(2, 2) == 0

    def test_manhattan_distance(self):
        p = Placement.grid(8, ChipGeometry(cores_x=4, cores_y=4))
        # core0 at (0,0), core7 at (3,1): |3-0| + |1-0| = 4
        assert p.hops_between(0, 7) == 4

    def test_symmetric(self):
        p = Placement.compact(9)
        for a in range(9):
            for b in range(9):
                assert p.hops_between(a, b) == p.hops_between(b, a)

    def test_cross_chip_hops_use_global_grid(self):
        g = ChipGeometry(cores_x=2, cores_y=2)
        p = Placement.grid(8, g)  # two 2x2 chips side by side
        # core0 at chip0 (0,0) -> global (0,0); core4 at chip1 (0,0) -> global (2,0)
        assert p.hops_between(0, 4) == 2
        assert p.chip_crossings(0, 4) == 1

    def test_vectorized_matches_scalar(self):
        p = Placement.grid(12, ChipGeometry(cores_x=3, cores_y=3))
        src = np.array([0, 3, 7])
        dst = np.array([11, 2, 7])
        hops = p.hop_matrix_for_targets(src, dst)
        for k in range(3):
            assert hops[k] == p.hops_between(int(src[k]), int(dst[k]))


class TestCompactPlacement:
    def test_near_square(self):
        p = Placement.compact(10)
        assert p.n_cores == 10
        assert p.x.max() <= 3 and p.y.max() <= 3

    def test_rejects_oversize(self):
        with pytest.raises(ValueError):
            Placement.compact(5000)


class TestDefectMap:
    def test_from_fraction_count(self):
        g = ChipGeometry(cores_x=8, cores_y=8)
        d = DefectMap.from_fraction(g, 0.25, seed=1)
        assert len(d.defective) == 16

    def test_is_defective(self):
        d = DefectMap(frozenset({(0, 0, 3, 4)}))
        assert d.is_defective(0, 0, 3, 4)
        assert not d.is_defective(0, 0, 4, 3)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            DefectMap.from_fraction(ChipGeometry(), 1.5)
