"""Tests for core-to-rank strategies and compiled-partition slicing."""

import numpy as np
import pytest

from repro.compass.compile import compile_network, partition_compiled
from repro.compass.parallel import run_parallel_compass
from repro.compass.partition import STRATEGIES, partition, rank_loads
from repro.core.builders import poisson_inputs, random_network
from repro.core.kernel import run_kernel


class TestStrategies:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 5])
    def test_complete_and_disjoint(self, strategy, n_ranks):
        # Every core lands on exactly one valid rank.
        net = random_network(n_cores=7, seed=31)
        assignment = partition(net, n_ranks, strategy)
        assert assignment.shape == (net.n_cores,)
        assert assignment.min() >= 0
        assert assignment.max() < n_ranks

    def test_load_balanced_beats_block_on_skewed_networks(self):
        from repro.core.network import Core, Network

        cores = [
            Core.build(
                n_axons=16, n_neurons=16,
                crossbar=(np.arange(256).reshape(16, 16) % (i + 1) == 0),
            )
            for i in range(6)
        ]
        net = Network(cores=cores, seed=0)
        spread = {
            s: int(np.ptp(rank_loads(net, partition(net, 2, s), 2)))
            for s in ("block", "load_balanced")
        }
        assert spread["load_balanced"] <= spread["block"]

    def test_unknown_strategy_rejected(self):
        net = random_network(n_cores=2, seed=1)
        with pytest.raises(ValueError, match="unknown partition strategy"):
            partition(net, 2, "psychic")


class TestPartitionCompiled:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_slices_are_complete_and_disjoint(self, strategy):
        net = random_network(
            n_cores=6, n_axons=10, n_neurons=12, stochastic=True, seed=32
        )
        compiled = compile_network(net)
        pn = partition_compiled(compiled, partition(net, 3, strategy), 3)

        axons = np.concatenate([p.axon_global for p in pn.partitions])
        neurons = np.concatenate([p.neuron_global for p in pn.partitions])
        assert np.array_equal(np.sort(axons), np.arange(compiled.n_axons))
        assert np.array_equal(np.sort(neurons), np.arange(compiled.n_neurons))
        cores = np.concatenate([p.core_ids for p in pn.partitions])
        assert np.array_equal(np.sort(cores), np.arange(compiled.n_cores))

        # Synapse mass is conserved across the slices.
        assert sum(int(p.row_nnz.sum()) for p in pn.partitions) == int(
            compiled.row_nnz.sum()
        )
        assert sum(p.stoch_col.size for p in pn.partitions) == compiled.stoch_col.size

    def test_global_maps_invert_the_slices(self):
        net = random_network(n_cores=5, stochastic=True, seed=33)
        compiled = compile_network(net)
        pn = partition_compiled(compiled, partition(net, 2, "round_robin"), 2)
        for p in pn.partitions:
            assert np.array_equal(pn.rank_of_axon[p.axon_global], np.full(p.n_axons, p.rank))
            assert np.array_equal(
                pn.local_axon_of_global[p.axon_global], np.arange(p.n_axons)
            )

    def test_prng_coordinates_stay_global(self):
        # The bit-identity guarantee: PRNG coordinates in a slice must be
        # the global values, not re-based local ones.
        net = random_network(n_cores=5, stochastic=True, seed=34)
        compiled = compile_network(net)
        pn = partition_compiled(compiled, partition(net, 2, "block"), 2)
        for p in pn.partitions:
            assert np.array_equal(p.core_of_neuron, compiled.core_of_neuron[p.neuron_global])
            assert np.array_equal(p.local_neuron, compiled.local_neuron[p.neuron_global])
            if p.stoch_core.size:
                assert set(p.stoch_core.tolist()) <= set(p.core_ids.tolist())

    def test_routing_resolved_to_destination_rank(self):
        net = random_network(n_cores=4, seed=35)
        compiled = compile_network(net)
        pn = partition_compiled(compiled, partition(net, 2, "round_robin"), 2)
        for p in pn.partitions:
            routed = p.target_axon >= 0
            assert np.array_equal(
                p.target_rank[routed], pn.rank_of_axon[p.target_axon[routed]]
            )
            assert np.array_equal(
                p.target_local_axon[routed],
                pn.local_axon_of_global[p.target_axon[routed]],
            )
            assert (p.target_rank[~routed] == -1).all()

    def test_misshapen_assignment_rejected(self):
        net = random_network(n_cores=3, seed=36)
        compiled = compile_network(net)
        with pytest.raises(ValueError, match="every core"):
            partition_compiled(compiled, np.zeros(2, dtype=np.int64), 1)

    def test_more_ranks_than_cores_leaves_empty_partitions(self):
        net = random_network(n_cores=2, seed=37)
        compiled = compile_network(net)
        pn = partition_compiled(compiled, partition(net, 2, "block"), 4)
        assert len(pn.partitions) == 4
        assert sum(p.n_cores == 0 for p in pn.partitions) == 2


class TestPartitionInvariance:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_spikes_bit_identical_across_partitionings(self, strategy, n_workers):
        # The acceptance bar: any strategy, any worker count, same spikes.
        net = random_network(
            n_cores=5, n_axons=10, n_neurons=10, stochastic=True, seed=38
        )
        ins = poisson_inputs(net, 12, 350.0, seed=9)
        ref = run_kernel(net, 12, ins)
        got = run_parallel_compass(
            net, 12, ins, n_workers=n_workers, partition_strategy=strategy
        )
        assert got.first_mismatch(ref) is None
        assert got == ref
