"""Tests for workload descriptors (repro.core.workload)."""

import pytest

from repro.core.builders import poisson_inputs, random_network
from repro.core.workload import WorkloadDescriptor
from repro.hardware.simulator import run_truenorth


def anchor_a():
    return WorkloadDescriptor(
        name="anchor-A", n_neurons=2**20, n_cores=4096, rate_hz=20.0, active_synapses=128.0
    )


class TestDescriptor:
    def test_per_tick_counts(self):
        w = anchor_a()
        assert w.spikes_per_tick == pytest.approx(2**20 * 0.020)
        assert w.syn_events_per_tick == pytest.approx(2**20 * 0.020 * 128)
        assert w.neuron_updates_per_tick == 2**20

    def test_sops_matches_paper_definition(self):
        w = anchor_a()
        assert w.sops == pytest.approx(20 * 128 * 2**20)

    def test_busiest_core_balanced(self):
        w = anchor_a()
        assert w.busiest_core_events_per_tick == pytest.approx(
            w.syn_events_per_tick / 4096
        )

    def test_imbalance_scales_busiest_core(self):
        w = WorkloadDescriptor(
            name="x", n_neurons=1000, n_cores=10, rate_hz=10, active_synapses=10,
            load_imbalance=2.0,
        )
        assert w.busiest_core_events_per_tick == pytest.approx(
            2.0 * w.syn_events_per_tick / 10
        )

    def test_scaled_to(self):
        w = anchor_a().scaled_to(n_neurons=512, n_cores=2)
        assert w.rate_hz == 20.0 and w.n_neurons == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadDescriptor("bad", 0, 1, 10, 10)
        with pytest.raises(ValueError):
            WorkloadDescriptor("bad", 10, 1, -1, 10)
        with pytest.raises(ValueError):
            WorkloadDescriptor("bad", 10, 1, 1, 10, load_imbalance=0.5)


class TestFromCounters:
    def test_measured_descriptor_consistent(self):
        net = random_network(n_cores=4, n_neurons=16, n_axons=16, connectivity=0.5, seed=3)
        ins = poisson_inputs(net, 50, 400.0, seed=1)
        rec = run_truenorth(net, 50, ins)
        w = WorkloadDescriptor.from_counters("measured", rec.counters, net.n_cores)
        assert w.n_neurons == 64
        assert w.rate_hz == pytest.approx(rec.counters.mean_firing_rate_hz)
        assert w.syn_events_per_tick * 50 == pytest.approx(
            rec.counters.synaptic_events, rel=1e-6
        )
        assert w.load_imbalance >= 1.0

    def test_requires_executed_run(self):
        from repro.core.counters import EventCounters

        with pytest.raises(ValueError):
            WorkloadDescriptor.from_counters("x", EventCounters(), 1)
