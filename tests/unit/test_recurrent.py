"""Tests for the probabilistic recurrent network generator."""

import pytest

from repro.apps.recurrent import (
    characterization_grid,
    chip_placement,
    probabilistic_recurrent_network,
    rate_parameters,
)
from repro.compass.simulator import run_compass
from repro.hardware.simulator import TrueNorthSimulator


class TestRateParameters:
    def test_zero_rate(self):
        lam, _ = rate_parameters(0.0)
        assert lam == 0

    @pytest.mark.parametrize("rate", [20.0, 50.0, 100.0, 200.0])
    def test_rate_formula(self, rate):
        lam, threshold = rate_parameters(rate)
        achieved = lam / (256.0 * threshold) * 1000.0
        assert achieved == pytest.approx(rate, abs=1.5)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            rate_parameters(500.0)


class TestGenerator:
    def test_structure(self):
        net = probabilistic_recurrent_network(
            50.0, 8, grid_side=3, neurons_per_core=16, seed=1
        )
        assert net.n_cores == 9
        for core in net.cores:
            # exactly K programmed synapses per axon row
            assert (core.crossbar.sum(axis=1) == 8).all()

    def test_measured_rate_matches_target(self):
        target = 100.0
        net = probabilistic_recurrent_network(
            target, 8, grid_side=2, neurons_per_core=64, seed=2
        )
        rec = run_compass(net, 200)
        measured = rec.counters.mean_firing_rate_hz
        assert measured == pytest.approx(target, rel=0.15)

    def test_measured_fanout_matches_k(self):
        net = probabilistic_recurrent_network(
            100.0, 12, grid_side=2, neurons_per_core=32, seed=3
        )
        rec = run_compass(net, 100)
        # every delivered spike crosses exactly K=12 programmed synapses
        assert rec.counters.synaptic_events == 12 * rec.counters.deliveries

    def test_zero_rate_network_is_silent(self):
        net = probabilistic_recurrent_network(0.0, 16, grid_side=2, neurons_per_core=16)
        rec = run_compass(net, 50)
        assert rec.n_spikes == 0

    def test_zero_synapses_network_still_fires(self):
        net = probabilistic_recurrent_network(100.0, 0, grid_side=2, neurons_per_core=32)
        rec = run_compass(net, 100)
        assert rec.n_spikes > 0
        assert rec.counters.synaptic_events == 0

    def test_zero_coupling_rate_independent_of_k(self):
        a = probabilistic_recurrent_network(80.0, 0, grid_side=2, neurons_per_core=32, seed=4)
        b = probabilistic_recurrent_network(80.0, 24, grid_side=2, neurons_per_core=32, seed=4)
        ra = run_compass(a, 120).counters.mean_firing_rate_hz
        rb = run_compass(b, 120).counters.mean_firing_rate_hz
        assert ra == pytest.approx(rb, rel=1e-9)  # zero weights: exact

    def test_balanced_coupling_changes_dynamics(self):
        a = probabilistic_recurrent_network(
            80.0, 24, grid_side=2, neurons_per_core=32, coupling="balanced", seed=4
        )
        rec = run_compass(a, 120)
        assert rec.n_spikes > 0

    def test_hop_distance_scales_with_grid(self):
        net = probabilistic_recurrent_network(
            120.0, 4, grid_side=8, neurons_per_core=16, seed=5
        )
        sim = TrueNorthSimulator(net, placement=chip_placement(8))
        rec = sim.run(60)
        mean_hops = rec.counters.hops / max(rec.counters.spikes, 1)
        expected = 2 * 21.66 * 8 / 64  # scaled to the 8x8 grid
        assert mean_hops == pytest.approx(expected, rel=0.4)

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            probabilistic_recurrent_network(10.0, 300)


class TestCharacterizationGrid:
    def test_88_points(self):
        grid = characterization_grid()
        assert len(grid) == 88

    def test_spans_paper_ranges(self):
        grid = characterization_grid()
        rates = sorted({r for r, _ in grid})
        synapses = sorted({k for _, k in grid})
        assert rates[0] == 25.0 and rates[-1] == 200.0
        assert synapses[0] == 0 and synapses[-1] == 256
