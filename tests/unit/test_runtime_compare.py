"""Tests for the streaming runtime and record comparison tooling."""

import pytest

from repro.analysis.compare import compare_records, divergence_horizon
from repro.apps.video import generate_scene
from repro.compass.simulator import CompassSimulator
from repro.core.record import SpikeRecord
from repro.corelets.corelet import Composition
from repro.corelets.library.basic import relay
from repro.hardware.simulator import TrueNorthSimulator
from repro.runtime.streaming import SceneSource, StreamingRuntime


def build_relay_pipeline(n):
    comp = Composition(seed=0)
    r = relay(n)
    comp.add(r)
    comp.export_input("in", r.inputs["in"])
    comp.export_output("out", r.outputs["out"])
    return comp.compile()


class TestStreamingRuntime:
    def test_streams_scene_end_to_end(self):
        scene = generate_scene(12, 20, n_frames=3, seed=2)
        compiled = build_relay_pipeline(12 * 20)
        runtime = StreamingRuntime(
            TrueNorthSimulator(compiled.network),
            compiled.inputs["in"],
            ticks_per_frame=5,
        )
        collected = []
        report = runtime.run(
            SceneSource(scene), sink=lambda t, spikes: collected.extend(spikes)
        )
        assert report.frames == 3
        assert report.ticks == 3 * 5 + 2
        assert report.input_events > 0
        assert report.output_spikes == len(collected)
        # relay passes every injected event through one tick later
        assert report.output_spikes == report.input_events
        assert report.wall_per_tick_s > 0
        assert report.real_time_factor > 0

    def test_looping_source(self):
        scene = generate_scene(12, 20, n_frames=2, seed=3)
        frames = list(SceneSource(scene, loops=3).frames())
        assert len(frames) == 6
        assert frames[0][0] == 0 and frames[-1][0] == 5

    def test_same_stream_on_both_expressions(self):
        scene = generate_scene(12, 20, n_frames=2, seed=4)
        compiled = build_relay_pipeline(12 * 20)
        out_a, out_b = [], []
        StreamingRuntime(
            TrueNorthSimulator(compiled.network), compiled.inputs["in"], 4
        ).run(SceneSource(scene), sink=lambda t, s: out_a.extend(s))
        StreamingRuntime(
            CompassSimulator(compiled.network, n_ranks=3), compiled.inputs["in"], 4
        ).run(SceneSource(scene), sink=lambda t, s: out_b.extend(s))
        assert out_a == out_b

    def test_invalid_tick_budget(self):
        compiled = build_relay_pipeline(4)
        with pytest.raises(ValueError):
            StreamingRuntime(
                TrueNorthSimulator(compiled.network), compiled.inputs["in"], 0
            )


class TestStreamReportGuards:
    def test_zero_tick_session_is_well_defined(self):
        from repro.runtime.streaming import StreamReport

        report = StreamReport()
        assert report.ticks == 0
        assert report.wall_per_tick_s == 0.0
        assert report.real_time_factor == 0.0

    def test_zero_wall_with_ticks_reports_infinite_factor(self):
        from repro.runtime.streaming import StreamReport

        report = StreamReport()
        report.ticks = 10
        report.wall_seconds = 0.0
        assert report.wall_per_tick_s == 0.0
        assert report.real_time_factor == float("inf")

    def test_normal_session_unchanged(self):
        from repro.core import params
        from repro.runtime.streaming import StreamReport

        report = StreamReport()
        report.ticks = 100
        report.wall_seconds = 2.0
        assert report.wall_per_tick_s == pytest.approx(0.02)
        assert report.real_time_factor == pytest.approx(
            100 * params.TICK_SECONDS / 2.0
        )


class TestCompareRecords:
    def test_identical_records(self):
        a = SpikeRecord.from_events([(0, 0, 0), (1, 0, 1)])
        report = compare_records(a, a)
        assert report.identical
        assert "not a single spike mismatch" in report.summary()
        assert divergence_horizon(a, a) is None

    def test_divergence_located(self):
        a = SpikeRecord.from_events([(0, 0, 0), (3, 1, 2), (5, 0, 1)])
        b = SpikeRecord.from_events([(0, 0, 0), (3, 1, 3), (5, 0, 1)])
        report = compare_records(a, b)
        assert not report.identical
        assert report.first_mismatch_tick == 3
        assert report.missing_in_b == 1 and report.extra_in_b == 1
        assert report.per_core_mismatches == {1: 2}
        assert "DIVERGE" in report.summary()

    def test_agreement_trace(self):
        a = SpikeRecord.from_events([(t, 0, 0) for t in range(6)])
        b = SpikeRecord.from_events([(t, 0, 0) for t in range(3)])
        report = compare_records(a, b, horizon_ticks=4)
        # after tick 3, A fires and B is silent: agreement 0
        assert report.agreement_by_tick[0] == (3, 0.0)

    def test_chaotic_network_diverges_fast(self):
        # Perturb one spike of a coupled recurrent run and measure the
        # horizon: the chaotic dynamics amplify it within a few ticks.
        from repro.apps.recurrent import probabilistic_recurrent_network
        from repro.compass.simulator import run_compass
        from repro.core.inputs import InputSchedule

        net = probabilistic_recurrent_network(
            150.0, 24, grid_side=2, neurons_per_core=32,
            coupling="balanced", seed=8,
        )
        clean = run_compass(net, 60)
        poke = InputSchedule.from_events([(10, 0, 5)])
        perturbed = run_compass(net, 60, poke)
        horizon = divergence_horizon(clean, perturbed, threshold=0.7)
        assert horizon is not None
        assert horizon <= 32  # "spikes quickly and chaotically diverge"
