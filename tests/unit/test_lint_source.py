"""Determinism source-lint tests: one synthetic module per SL code,
pragma suppression, path scoping, and the repo-wide clean sweep."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint.source import (
    SOURCE_CODES,
    lint_file,
    lint_paths,
    lint_source_text,
    module_rel_path,
)

KERNEL = "src/repro/core/kernel.py"
APP = "src/repro/apps/video.py"
TOOL = "tools/helper.py"


def findings(text: str, path: str = APP):
    return list(lint_source_text(textwrap.dedent(text), path))


def codes(text: str, path: str = APP) -> list[str]:
    return [d.code for d in findings(text, path)]


class TestPathScoping:
    def test_module_rel_path_inside_package(self):
        assert module_rel_path(KERNEL) == "core/kernel.py"
        assert module_rel_path("/x/y/src/repro/compass/fast.py") == "compass/fast.py"

    def test_module_rel_path_outside_package(self):
        assert module_rel_path(TOOL) == "helper.py"


class TestSl100:
    def test_syntax_error(self):
        diags = findings("def broken(:\n    pass\n")
        assert [d.code for d in diags] == ["SL100"]
        assert diags[0].location.line >= 1


class TestSl101:
    def test_import_random(self):
        assert codes("import random\n") == ["SL101"]

    def test_from_random_import(self):
        assert codes("from random import choice\n") == ["SL101"]

    def test_numpy_random_module_is_not_the_stdlib(self):
        assert codes("import numpy.random\n") == []


class TestSl102Sl103:
    def test_unseeded_default_rng(self):
        assert codes("import numpy as np\nrng = np.random.default_rng()\n") == ["SL102"]

    def test_none_seed_counts_as_unseeded(self):
        assert "SL102" in codes("import numpy as np\nr = np.random.default_rng(None)\n")

    def test_seeded_but_inline(self):
        assert codes("import numpy as np\nrng = np.random.default_rng(42)\n") == ["SL103"]

    def test_seeded_rng_helper_home_is_allowed(self):
        text = "import numpy as np\ndef seeded_rng(s):\n    return np.random.default_rng(s)\n"
        assert codes(text, "src/repro/utils/rng.py") == []
        # ... but an unseeded call is banned even there.
        bad = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(bad, "src/repro/utils/rng.py") == ["SL102"]


class TestSl104:
    TIMED = """
        import time
        def step(state):
            t0 = time.perf_counter()
            return state, t0
    """

    def test_wall_clock_in_tick_path(self):
        assert codes(self.TIMED, KERNEL) == ["SL104"]
        assert codes(self.TIMED, "src/repro/compass/simulator.py") == ["SL104"]

    def test_wall_clock_outside_tick_path_is_fine(self):
        assert codes(self.TIMED, APP) == []

    def test_bare_import_form_is_caught(self):
        text = """
            from time import perf_counter
            def step():
                return perf_counter()
        """
        assert codes(text, KERNEL) == ["SL104"]

    def test_pragma_suppresses(self):
        text = """
            import time
            def step(profile):
                t0 = time.perf_counter() if profile else 0.0  # repro-lint: allow=SL104
                return t0
        """
        assert codes(text, KERNEL) == []


class TestSl105:
    LEAKY = """
        from multiprocessing import shared_memory
        class Leaky:
            def open(self):
                self.shm = shared_memory.SharedMemory(create=True, size=16)
            def close(self):
                self.shm.close()
    """

    def test_create_without_unlink(self):
        diags = findings(self.LEAKY)
        assert [d.code for d in diags] == ["SL105"]
        assert "unlink()" in diags[0].message

    def test_create_with_full_cleanup_is_fine(self):
        text = self.LEAKY + "        self.shm.unlink()\n"
        assert codes(text) == []

    def test_attach_only_needs_no_cleanup_pair(self):
        text = """
            from multiprocessing import shared_memory
            class Reader:
                def open(self, name):
                    self.shm = shared_memory.SharedMemory(name=name)
        """
        assert codes(text) == []


class TestSl105BufferViews:
    """The view half of SL105: held ``buffer=`` views need a release."""

    def test_held_view_without_release_fires(self):
        text = """
            import numpy as np
            class Holder:
                def __init__(self, buf):
                    self._arr = np.ndarray(8, dtype=np.int64, buffer=buf)
        """
        diags = findings(text)
        assert [d.code for d in diags] == ["SL105"]
        assert "self._arr" in diags[0].message

    def test_release_reassignment_is_clean(self):
        text = """
            import numpy as np
            class Strip:
                def __init__(self, buf):
                    self._arr = np.ndarray(8, dtype=np.int64, buffer=buf)
                def release(self):
                    self._arr = np.zeros(0, dtype=np.int64)
        """
        assert codes(text) == []

    def test_view_propagates_through_wrapper_calls(self):
        text = """
            import numpy as np
            class Pool:
                def _spawn(self):
                    ring = np.ndarray(8, dtype=bool, buffer=self._shm.buf)
                    ring = wrap(ring, "tag")
                    self._rings.append(ring)
        """
        diags = findings(text)
        assert [d.code for d in diags] == ["SL105"]
        assert "self._rings" in diags[0].message

    def test_tuple_rebind_counts_as_release(self):
        text = """
            import numpy as np
            class Pool:
                def _spawn(self):
                    ring = np.ndarray(8, dtype=bool, buffer=self._shm.buf)
                    self._rings.append(ring)
                def close(self):
                    self._rings, self._stats = [], []
        """
        assert codes(text) == []

    def test_plain_arrays_never_fire(self):
        text = """
            import numpy as np
            class Engine:
                def __init__(self):
                    self.v = np.zeros((2, 8), dtype=np.int64)
        """
        assert codes(text) == []

    def test_span_strip_and_serving_sources_are_clean(self):
        """The named shm-view holders sweep clean under the rule."""
        import repro.obs.trace as trace_mod
        import repro.runtime.serving as serving_mod

        for mod in (trace_mod, serving_mod):
            diags = lint_file(mod.__file__)
            assert diags == [], [d.render() for d in diags]


class TestSl106:
    def test_float_literal_in_kernel_arithmetic(self):
        assert codes("def f(v):\n    return v * 0.5\n", KERNEL) == ["SL106"]

    def test_aug_assign_and_compare(self):
        text = "def f(v):\n    v += 1.5\n    return v > 2.5\n"
        assert codes(text, "src/repro/compass/fast.py") == ["SL106", "SL106"]

    def test_integer_arithmetic_is_fine(self):
        assert codes("def f(v):\n    return (v * 3) >> 1\n", KERNEL) == []

    def test_floats_allowed_outside_kernel_modules(self):
        assert codes("def f(v):\n    return v * 0.5\n", APP) == []


class TestReportingPlumbing:
    def test_findings_carry_path_line_hint(self):
        diag = findings("import random\n", APP)[0]
        assert diag.location.path == APP
        assert diag.location.line == 1
        assert diag.hint

    def test_lint_paths_over_a_real_file(self, tmp_path):
        bad = tmp_path / "repro" / "apps" / "x.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n")
        report = lint_paths([tmp_path])
        assert report.codes() == ["SL101"]
        assert lint_file(bad)[0].code == "SL101"

    def test_every_sl_code_has_a_fixture(self):
        import pathlib

        text = pathlib.Path(__file__).read_text()
        for code in SOURCE_CODES:
            assert code in text, f"no fixture references {code}"


def test_repo_sources_lint_clean():
    """The shipped package passes its own determinism lint."""
    import repro

    report = lint_paths([repro.__path__[0]])
    assert len(report) == 0, report.render_text()
