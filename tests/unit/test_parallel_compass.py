"""Tests for the shared-memory partitioned ParallelCompass expression."""

import numpy as np
import pytest

from repro.compass.parallel import (
    _STOP,
    ParallelCompassSimulator,
    auto_workers,
    run_parallel_compass,
)
from repro.compass.simulator import run_compass
from repro.core.builders import poisson_inputs, random_network
from repro.core.kernel import run_kernel


class TestParallelCompass:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_matches_reference_kernel(self, n_workers):
        net = random_network(
            n_cores=5, n_axons=10, n_neurons=10, stochastic=True, seed=37
        )
        ins = poisson_inputs(net, 15, 300.0, seed=4)
        ref = run_kernel(net, 15, ins)
        got = run_parallel_compass(net, 15, ins, n_workers=n_workers)
        assert got.first_mismatch(ref) is None

    def test_counters_match_in_process_compass(self):
        # Same partitioning, same rank granularity: every counter —
        # including the cross-rank message tally — must agree with the
        # in-process Compass expression.
        net = random_network(n_cores=4, connectivity=0.5, seed=21)
        ins = poisson_inputs(net, 12, 400.0, seed=2)
        serial = run_compass(net, 12, ins, n_ranks=2)
        parallel = run_parallel_compass(net, 12, ins, n_workers=2)
        assert parallel == serial
        for field in ("synaptic_events", "spikes", "deliveries",
                      "neuron_updates", "messages"):
            assert getattr(parallel.counters, field) == getattr(
                serial.counters, field
            ), field
        assert np.array_equal(
            parallel.counters.synaptic_events_per_core,
            serial.counters.synaptic_events_per_core,
        )

    def test_cross_worker_messages_counted(self):
        net = random_network(n_cores=6, connectivity=0.6, seed=5)
        ins = poisson_inputs(net, 8, 600.0, seed=1)
        sim = ParallelCompassSimulator(net, n_workers=3)
        rec = sim.run(8, ins)
        assert rec.counters.messages > 0

    def test_close_is_idempotent_and_step_after_close_fails(self):
        net = random_network(n_cores=2, seed=1)
        sim = ParallelCompassSimulator(net, n_workers=2)
        sim.step()
        sim.close()
        sim.close()
        with pytest.raises(RuntimeError, match="closed"):
            sim.step()

    def test_far_future_inputs_not_aliased_into_ring_buffer(self):
        # Regression: external inputs beyond DELAY_SLOTS ticks ahead must
        # not wrap into the 16-slot ring slab early.
        from repro.core.inputs import InputSchedule

        net = random_network(n_cores=2, n_axons=8, n_neurons=8, seed=3)
        ins = InputSchedule.from_events(
            [(0, 0, 1), (16, 0, 2), (33, 1, 3), (40, 0, 4)]
        )
        ref = run_kernel(net, 45, ins)
        got = run_parallel_compass(net, 45, ins, n_workers=2)
        assert got.first_mismatch(ref) is None

    def test_workers_shut_down_after_run(self):
        net = random_network(n_cores=2, seed=2)
        sim = ParallelCompassSimulator(net, n_workers=2)
        sim.run(5)
        assert all(not p.is_alive() for p in sim._procs)

    def test_close_drains_workers_mid_protocol(self):
        # If step_arrays() dies between scatter and gather, workers still
        # owe a tick reply; close() must drain it so join cannot deadlock.
        net = random_network(n_cores=4, connectivity=0.6, seed=6)
        sim = ParallelCompassSimulator(net, n_workers=2)
        sim.step()  # spawn the pool
        for rank, conn in enumerate(sim._conns):
            conn.send(sim.tick)
            sim._awaiting[rank] = True
        sim.close()  # must not hang
        assert all(not p.is_alive() for p in sim._procs)


class TestSharedMemoryLifecycle:
    def test_bulk_data_lives_in_shared_memory(self):
        # The wire format is shared segments, not pickled pipe payloads:
        # every per-rank region must be attachable by name while live.
        from multiprocessing import shared_memory

        net = random_network(n_cores=4, connectivity=0.6, seed=7)
        ins = poisson_inputs(net, 10, 500.0, seed=3)
        sim = ParallelCompassSimulator(net, n_workers=2)
        try:
            sim.load_inputs(ins)
            for _ in range(10):
                sim.step()
            assert len(sim._shms) == 2
            for shms in sim._shms:
                assert set(shms) == {"ring", "spikes", "outbox", "stats"}
                for shm in shms.values():
                    probe = shared_memory.SharedMemory(name=shm.name)
                    probe.close()
        finally:
            sim.close()

    def test_close_unlinks_every_segment(self):
        from multiprocessing import shared_memory

        net = random_network(n_cores=4, connectivity=0.6, seed=8)
        sim = ParallelCompassSimulator(net, n_workers=2)
        sim.step()
        names = [shm.name for shms in sim._shms for shm in shms.values()]
        assert len(names) == 8
        sim.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_pipes_carry_only_tick_numbers(self):
        # The control channel is a barrier, not a data plane: workers
        # echo the bare tick int (and accept the stop sentinel).
        net = random_network(n_cores=2, seed=9)
        sim = ParallelCompassSimulator(net, n_workers=2)
        try:
            sim.step()
            assert _STOP < 0
            for conn in sim._conns:
                conn.send(sim.tick)
            for conn in sim._conns:
                assert conn.recv() == sim.tick
        finally:
            sim.close()


class TestRerun:
    def test_run_twice_is_bit_identical(self):
        # run() closes the pool, but the partitioned artifact is kept:
        # a second run() re-spawns workers and replays identically.
        net = random_network(n_cores=4, connectivity=0.5, stochastic=True, seed=13)
        ins = poisson_inputs(net, 12, 400.0, seed=6)
        sim = ParallelCompassSimulator(net, n_workers=2)
        first = sim.run(12, ins)
        second = sim.run(12, poisson_inputs(net, 12, 400.0, seed=6))
        assert first == second
        assert first.counters.spikes == second.counters.spikes
        assert all(not p.is_alive() for p in sim._procs)

    def test_run_after_explicit_close(self):
        net = random_network(n_cores=3, seed=14)
        ins = poisson_inputs(net, 8, 500.0, seed=7)
        ref = run_kernel(net, 8, ins)
        sim = ParallelCompassSimulator(net, n_workers=2)
        sim.step()
        sim.close()
        rec = sim.run(8, poisson_inputs(net, 8, 500.0, seed=7))
        assert rec.first_mismatch(ref) is None

    def test_step_after_close_error_names_the_remedy(self):
        net = random_network(n_cores=2, seed=15)
        sim = ParallelCompassSimulator(net, n_workers=2)
        sim.run(3)
        with pytest.raises(RuntimeError, match="run\\(\\)"):
            sim.step_arrays()


class TestAutoWorkers:
    def test_small_networks_stay_single_process(self):
        net = random_network(n_cores=4, seed=16)
        assert auto_workers(net) == 1

    def test_auto_spans_cpus_above_threshold(self, monkeypatch):
        from repro.compass import parallel as par

        monkeypatch.setattr(par, "_usable_cpus", lambda: 8)
        monkeypatch.setattr(par, "AUTO_MIN_NEURONS", 16)
        net = random_network(n_cores=6, n_neurons=8, seed=17)
        assert auto_workers(net) == min(par.AUTO_MAX_WORKERS, 8, 6)

    def test_single_cpu_host_never_goes_parallel(self, monkeypatch):
        from repro.compass import parallel as par

        monkeypatch.setattr(par, "_usable_cpus", lambda: 1)
        monkeypatch.setattr(par, "AUTO_MIN_NEURONS", 1)
        net = random_network(n_cores=6, seed=18)
        assert auto_workers(net) == 1

    def test_constructor_accepts_auto(self):
        net = random_network(n_cores=3, seed=19)
        sim = ParallelCompassSimulator(net, n_workers="auto")
        try:
            assert sim.n_workers == auto_workers(net)
        finally:
            sim.close()

    def test_rejects_bad_worker_count(self):
        net = random_network(n_cores=2, seed=20)
        with pytest.raises(ValueError):
            ParallelCompassSimulator(net, n_workers=0)


class TestWorkerFailure:
    """A dead rank must surface as WorkerFailedError, not a barrier hang."""

    @staticmethod
    def _fork_only():
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("fault injection via monkeypatch needs fork start method")

    def test_worker_exception_raises_and_unlinks(self, monkeypatch):
        self._fork_only()
        from multiprocessing import shared_memory

        from repro.compass import parallel as par

        def _boom(*args, **kwargs):
            raise RuntimeError("injected worker fault")

        # Fork inherits the patched module, so every worker raises on
        # its first neuron update.
        monkeypatch.setattr(par, "update_neurons", _boom)
        net = random_network(n_cores=4, connectivity=0.6, seed=31)
        sim = ParallelCompassSimulator(net, n_workers=2)
        sim._spawn()
        names = [shm.name for shms in sim._shms for shm in shms.values()]
        with pytest.raises(par.WorkerFailedError, match="rank"):
            sim.step()
        assert sim._closed
        assert sim._shms == []
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        assert all(not p.is_alive() for p in sim._procs)

    def test_error_carries_worker_traceback(self, monkeypatch):
        self._fork_only()
        from repro.compass import parallel as par

        def _boom(*args, **kwargs):
            raise ValueError("distinctive-worker-detail")

        monkeypatch.setattr(par, "integrate_deliveries", _boom)
        monkeypatch.setattr(par, "integrate_deliveries_gated", _boom)
        net = random_network(n_cores=4, connectivity=0.6, seed=32)
        ins = poisson_inputs(net, 4, 800.0, seed=1)
        sim = ParallelCompassSimulator(net, n_workers=2)
        sim.load_inputs(ins)
        with pytest.raises(par.WorkerFailedError) as err:
            for _ in range(4):
                sim.step()
        assert "distinctive-worker-detail" in str(err.value)
        assert err.value.rank in (0, 1)

    def test_killed_worker_does_not_hang(self):
        net = random_network(n_cores=4, connectivity=0.6, seed=33)
        sim = ParallelCompassSimulator(net, n_workers=2)
        sim.step()  # spawn + one clean barrier round-trip
        sim._procs[0].kill()
        sim._procs[0].join(timeout=5)
        from repro.compass.parallel import WorkerFailedError

        with pytest.raises(WorkerFailedError, match="died|closed"):
            for _ in range(3):
                sim.step()
        assert sim._closed and sim._shms == []

    def test_failure_emits_structured_log_event(self, monkeypatch):
        self._fork_only()
        import io

        from repro.compass import parallel as par
        from repro.obs.log import configure

        def _boom(*args, **kwargs):
            raise RuntimeError("logged fault")

        monkeypatch.setattr(par, "update_neurons", _boom)
        stream = io.StringIO()
        configure(level="ERROR", stream=stream, force=True)
        try:
            net = random_network(n_cores=4, connectivity=0.6, seed=34)
            sim = ParallelCompassSimulator(net, n_workers=2)
            with pytest.raises(par.WorkerFailedError):
                sim.step()
        finally:
            configure(force=True)
        out = stream.getvalue()
        assert "parallel.worker_failed" in out
        assert "rank=" in out and "tick=" in out
