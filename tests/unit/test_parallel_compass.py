"""Tests for the multi-process ParallelCompass expression."""

import numpy as np
import pytest

from repro.compass.parallel import ParallelCompassSimulator, run_parallel_compass
from repro.compass.simulator import run_compass
from repro.core.builders import poisson_inputs, random_network
from repro.core.kernel import run_kernel


class TestParallelCompass:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_matches_reference_kernel(self, n_workers):
        net = random_network(
            n_cores=5, n_axons=10, n_neurons=10, stochastic=True, seed=37
        )
        ins = poisson_inputs(net, 15, 300.0, seed=4)
        ref = run_kernel(net, 15, ins)
        got = run_parallel_compass(net, 15, ins, n_workers=n_workers)
        assert got.first_mismatch(ref) is None

    def test_counters_match_in_process_compass(self):
        net = random_network(n_cores=4, connectivity=0.5, seed=21)
        ins = poisson_inputs(net, 12, 400.0, seed=2)
        serial = run_compass(net, 12, ins, n_ranks=2)
        parallel = run_parallel_compass(net, 12, ins, n_workers=2)
        assert parallel == serial
        for field in ("synaptic_events", "spikes", "deliveries", "neuron_updates"):
            assert getattr(parallel.counters, field) == getattr(
                serial.counters, field
            ), field
        assert np.array_equal(
            parallel.counters.synaptic_events_per_core,
            serial.counters.synaptic_events_per_core,
        )

    def test_cross_worker_messages_counted(self):
        net = random_network(n_cores=6, connectivity=0.6, seed=5)
        ins = poisson_inputs(net, 8, 600.0, seed=1)
        sim = ParallelCompassSimulator(net, n_workers=3)
        rec = sim.run(8, ins)
        assert rec.counters.messages > 0

    def test_close_is_idempotent_and_step_after_close_fails(self):
        net = random_network(n_cores=2, seed=1)
        sim = ParallelCompassSimulator(net, n_workers=2)
        sim.step()
        sim.close()
        sim.close()
        with pytest.raises(RuntimeError):
            sim.step()

    def test_far_future_inputs_not_aliased_into_ring_buffer(self):
        # Regression: external inputs beyond DELAY_SLOTS ticks ahead must
        # not wrap into the 16-slot ring buffer early.
        from repro.core.inputs import InputSchedule

        net = random_network(n_cores=2, n_axons=8, n_neurons=8, seed=3)
        ins = InputSchedule.from_events(
            [(0, 0, 1), (16, 0, 2), (33, 1, 3), (40, 0, 4)]
        )
        ref = run_kernel(net, 45, ins)
        got = run_parallel_compass(net, 45, ins, n_workers=2)
        assert got.first_mismatch(ref) is None

    def test_workers_shut_down_after_run(self):
        net = random_network(n_cores=2, seed=2)
        sim = ParallelCompassSimulator(net, n_workers=2)
        sim.run(5)
        assert all(not p.is_alive() for p in sim._procs)

    def test_close_drains_workers_mid_protocol(self):
        # If step() dies between scatter and gather, workers still owe a
        # reply; close() must drain it so join cannot deadlock.
        from repro.compass.parallel import _EMPTY

        net = random_network(n_cores=4, connectivity=0.6, seed=6)
        sim = ParallelCompassSimulator(net, n_workers=2)
        for rank, conn in enumerate(sim._conns):
            conn.send((0, _EMPTY))
            sim._awaiting[rank] = True
        sim.close()  # must not hang
        assert all(not p.is_alive() for p in sim._procs)

    def test_delivery_batches_travel_as_arrays(self):
        # The wire protocol stages deliveries as packed int64 blocks.
        net = random_network(n_cores=4, connectivity=0.6, seed=7)
        ins = poisson_inputs(net, 10, 500.0, seed=3)
        sim = ParallelCompassSimulator(net, n_workers=2)
        try:
            sim.load_inputs(ins)
            for _ in range(10):
                sim.step()
            staged = [row for per_rank in sim._staged for row in per_rank]
            for row in staged:
                assert len(row) == 3
        finally:
            sim.close()
