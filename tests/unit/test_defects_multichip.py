"""Tests for the defect-yield and multichip-scaling experiments."""

import pytest

from repro.apps.workloads import ANCHOR_A, ANCHOR_C
from repro.experiments.defects import defect_sweep, defect_trial
from repro.experiments.multichip import (
    array_sweep,
    full_scale_link_load,
    measure_boundary_traffic,
)


class TestDefectStudy:
    def test_zero_defects_identical(self):
        point = defect_trial(0.0, n_cores=9, n_ticks=15, seed=1)
        assert point.functional_match
        assert point.hop_overhead == 0.0

    def test_function_survives_defects(self):
        # The central claim: dead routers never change the computation.
        point = defect_trial(0.15, n_cores=9, n_ticks=15, seed=2)
        assert point.functional_match
        assert point.n_disabled_routers > 0

    def test_hop_overhead_grows_with_defects(self):
        sweep = defect_sweep(fractions=(0.0, 0.2), n_cores=9, n_ticks=15)
        assert all(p.functional_match for p in sweep)
        assert sweep[-1].defective_hops >= sweep[0].baseline_hops

    def test_energy_overhead_tracks_hops(self):
        point = defect_trial(0.2, n_cores=9, n_ticks=15, seed=4)
        from repro.hardware.energy import E_HOP_J

        expected = (point.defective_hops - point.baseline_hops) * E_HOP_J
        assert point.energy_overhead_j == pytest.approx(expected)


class TestMultichipScaling:
    def test_single_chip_never_crosses(self):
        point = measure_boundary_traffic(1, 1, n_packets=100)
        assert point.boundary_crossings == 0
        assert point.crossing_fraction == 0.0

    def test_crossing_fraction_grows_with_array(self):
        p2 = measure_boundary_traffic(2, 1, n_packets=300, seed=1)
        p4 = measure_boundary_traffic(4, 1, n_packets=300, seed=1)
        assert p2.boundary_crossings > 0
        assert p4.crossing_fraction > p2.crossing_fraction

    def test_sweep_covers_paper_boards(self):
        points = array_sweep(n_packets=150)
        sizes = {(p.chips_x, p.chips_y) for p in points}
        assert (4, 1) in sizes and (4, 4) in sizes  # the paper's boards

    def test_link_utilization_reported(self):
        point = measure_boundary_traffic(2, 2, n_packets=400, link_capacity=200, seed=2)
        assert 0.0 < point.peak_link_utilization <= 1.0

    def test_locality_argument(self):
        # The paper's bandwidth story, quantified: fully-uniform global
        # traffic at the heavy operating point saturates the shared
        # boundary links, while the moderate point and cortex-like
        # clustered traffic (5% long-range) leave ample margin.
        assert not full_scale_link_load(ANCHOR_A, 4, 4)["saturated"]
        assert full_scale_link_load(ANCHOR_C, 4, 4)["saturated"]
        local = full_scale_link_load(ANCHOR_C, 4, 4, long_range_fraction=0.05)
        assert not local["saturated"]
        assert local["link_utilization"] < 0.5

    def test_heavier_traffic_loads_links_more(self):
        light = full_scale_link_load(ANCHOR_A, 4, 4)
        heavy = full_scale_link_load(ANCHOR_C, 4, 4)
        assert heavy["per_link_load_per_tick"] > light["per_link_load_per_tick"]
