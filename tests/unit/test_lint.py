"""Model-checker tests: one known-bad fixture per TN diagnostic code,
plus the clean sweep over every bundled example/app network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.compass.compile import compile_network, partition_compiled
from repro.core import params
from repro.core.builders import random_network
from repro.core.network import Core, Network
from repro.io.model_files import load_network, save_network
from repro.lint import (
    CODES,
    LintError,
    Severity,
    check_activity_gating,
    check_network,
    lint_activity_gating,
    lint_core,
    lint_network,
    lint_partition_map,
)
from repro.lint.examples import BUILTIN_NETWORKS, builtin_networks
from repro.utils.validation import check_in_range


def good_core(n_axons: int = 4, n_neurons: int = 4, **kwargs) -> Core:
    """A small, fully valid core with a dense crossbar."""
    return Core.build(
        n_axons,
        n_neurons,
        crossbar=np.ones((n_axons, n_neurons), dtype=bool),
        threshold=4,
        **kwargs,
    )


def net_of(*cores: Core) -> Network:
    """Wrap cores in a network without triggering eager validation."""
    return Network(cores=list(cores), seed=0, name="fixture")


def codes_of(report) -> set[str]:
    return set(report.codes())


class TestStructuralCodes:
    def test_tn001_array_shape_mismatch(self):
        core = good_core()
        core.leak = np.zeros(7, dtype=np.int64)  # wrong length
        assert "TN001" in codes_of(lint_core(core))

    def test_tn001_non_array_field(self):
        core = good_core()
        core.delay = [1, 1, 1, 1]  # list, not ndarray
        assert "TN001" in codes_of(lint_core(core))

    def test_tn002_non_integer_dtype(self):
        core = good_core()
        core.weights = core.weights.astype(np.float64)
        assert "TN002" in codes_of(lint_core(core))

    def test_tn003_empty_core(self):
        core = good_core()
        core.crossbar = np.zeros((0, 4), dtype=bool)
        assert "TN003" in codes_of(lint_core(core))

    def test_tn003_empty_network(self):
        assert "TN003" in codes_of(lint_network(Network(cores=[], seed=0)))

    def test_structural_errors_gate_value_rules(self):
        # A structurally broken core must not crash the range rules.
        core = good_core()
        core.weights = np.zeros((1, 1), dtype=np.int64)
        report = lint_core(core)
        assert codes_of(report) == {"TN001"}


class TestRangeCodes:
    @pytest.mark.parametrize(
        "field,value,code",
        [
            ("weights", params.WEIGHT_MAX + 1, "TN101"),
            ("weights", params.WEIGHT_MIN - 1, "TN101"),
            ("delay", 0, "TN102"),
            ("delay", params.MAX_DELAY + 1, "TN102"),
            ("axon_types", params.NUM_AXON_TYPES, "TN103"),
            ("threshold", params.THRESHOLD_MAX + 1, "TN104"),
            ("threshold_mask", params.THRESHOLD_MASK_MAX + 1, "TN105"),
            ("neg_threshold", -params.MEMBRANE_MIN + 1, "TN106"),
            ("leak", params.LEAK_MAX + 1, "TN107"),
            ("reset_value", params.MEMBRANE_MAX + 1, "TN108"),
            ("initial_v", params.MEMBRANE_MIN - 1, "TN108"),
            ("reset_mode", 5, "TN109"),
            ("neg_floor_mode", 2, "TN109"),
        ],
    )
    def test_out_of_range_fires(self, field, value, code):
        core = good_core()
        getattr(core, field)[...] = value
        report = lint_core(core)
        assert code in codes_of(report)
        # Every range finding carries a location with the core context.
        diag = next(d for d in report if d.code == code)
        assert diag.severity is Severity.ERROR
        assert diag.hint

    def test_tn100_generic_range_helper(self):
        with pytest.raises(LintError) as err:
            check_in_range("x", np.array([9]), 0, 3)
        assert err.value.codes == ["TN100"]

    def test_tn110_oversize_core_warns(self):
        core = Core.build(params.CORE_AXONS + 1, 4)
        report = lint_core(core)
        diag = next(d for d in report if d.code == "TN110")
        assert diag.severity is Severity.WARNING
        assert report.ok  # warning only: still no errors


class TestRoutingCodes:
    def test_tn201_dangling_core_target(self):
        core = good_core(target_core=99, target_axon=0, delay=1)
        assert "TN201" in codes_of(lint_network(net_of(core)))

    def test_tn202_route_off_mesh(self):
        a = good_core(target_core=1, target_axon=77, delay=1)
        b = good_core()
        assert "TN202" in codes_of(lint_network(net_of(a, b)))

    def test_output_targets_are_fine(self):
        core = good_core()  # default target_core = -1 (network output)
        assert len(lint_network(net_of(core))) == 0


class TestMembraneOverflow:
    def test_tn301_in_tick_overshoot(self):
        n_axons = 600  # 600 x 255 on top of a near-max threshold
        core = Core.build(
            n_axons,
            2,
            crossbar=np.ones((n_axons, 2), dtype=bool),
            weights=np.full((2, params.NUM_AXON_TYPES), params.WEIGHT_MAX),
            threshold=params.THRESHOLD_MAX,
            threshold_mask=params.THRESHOLD_MASK_MAX,
        )
        report = lint_network(net_of(core))
        diag = next(d for d in report if d.code == "TN301")
        assert diag.severity is Severity.WARNING
        assert "MEMBRANE_MAX" in diag.message

    def test_tn301_reset_none_climb(self):
        core = Core.build(2, 2, leak=5, reset_mode=params.RESET_NONE)
        report = lint_network(net_of(core))
        assert "TN301" in codes_of(report)

    def test_reset_none_with_draining_leak_is_fine(self):
        core = Core.build(2, 2, leak=-5, reset_mode=params.RESET_NONE)
        assert "TN301" not in codes_of(lint_network(net_of(core)))


class TestPrngCodes:
    def test_tn401_duplicate_prng_coordinate(self):
        # axon*256 + neuron collides once a core exceeds 256 neurons:
        # (0, 256) and (1, 0) both map to unit 256.
        core = Core.build(2, 300)
        core.crossbar[0, 256] = True
        core.crossbar[1, 0] = True
        core.stoch_synapse[:] = True
        report = lint_core(core)
        assert "TN401" in codes_of(report)
        assert not report.ok

    def test_no_collision_within_256_neurons(self):
        core = good_core(n_axons=256, n_neurons=256)
        core.stoch_synapse[:] = True
        assert "TN401" not in codes_of(lint_core(core))


class TestReplicaSeedCodes:
    def test_duplicate_seeds_on_stochastic_warn(self):
        from repro.lint import lint_replica_seeds

        report = lint_replica_seeds([5, 7, 5, 5], stochastic=True)
        assert codes_of(report) == {"TN401"}
        # Batched form downgrades to WARNING: identical-stream replicas
        # can be intended, unlike colliding crosspoint units.
        assert report.ok
        assert len(report.diagnostics) == 2  # lanes 2 and 3 vs lane 0

    def test_distinct_seeds_clean(self):
        from repro.compass.batched import replica_seeds
        from repro.lint import lint_replica_seeds

        report = lint_replica_seeds(replica_seeds(0, 16), stochastic=True)
        assert report.clean(Severity.WARNING)

    def test_deterministic_network_seeds_inert(self):
        from repro.lint import lint_replica_seeds

        report = lint_replica_seeds([1, 1, 1], stochastic=False)
        assert report.clean(Severity.WARNING)

    def test_check_form_returns_without_raising(self):
        from repro.lint import check_replica_seeds

        report = check_replica_seeds([2, 2], stochastic=True)
        assert "TN401" in codes_of(report)


class TestPartitionCodes:
    def test_tn501_wrong_shape(self):
        report = lint_partition_map(4, np.zeros(3, dtype=np.int64), 2)
        assert codes_of(report) == {"TN501"}

    def test_tn501_rank_out_of_range(self):
        report = lint_partition_map(4, np.array([0, 1, 2, 5]), 3)
        assert "TN501" in codes_of(report)

    def test_tn502_empty_rank_warns(self):
        report = lint_partition_map(4, np.zeros(4, dtype=np.int64), 3)
        assert codes_of(report) == {"TN502"}
        assert report.ok

    def test_partition_compiled_raises_tn501(self):
        net = random_network(n_cores=3, n_neurons=8, seed=0)
        compiled = compile_network(net)
        with pytest.raises(LintError) as err:
            partition_compiled(compiled, np.zeros(2, dtype=np.int64), 2)
        assert "TN501" in err.value.codes


class TestModelFileCodes:
    def test_tn601_not_a_model_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, junk=np.arange(3))
        with pytest.raises(LintError) as err:
            load_network(path)
        assert err.value.codes == ["TN601"]

    def test_load_without_validation_for_offline_lint(self, tmp_path):
        net = random_network(n_cores=2, n_neurons=8, seed=3)
        path = tmp_path / "model.npz"
        save_network(path, net)
        # Corrupt one weight beyond the 9-bit range, rewriting the file
        # directly (save_network itself refuses to write a bad model).
        data = dict(np.load(path))
        data["core0/weights"] = data["core0/weights"] + 10_000
        np.savez_compressed(path, **data)
        with pytest.raises(LintError):
            load_network(path)
        bad = load_network(path, validate=False)
        assert "TN101" in codes_of(lint_network(bad))


class TestFrontDoor:
    def test_validate_raises_lint_error_with_codes(self):
        core = good_core()
        core.weights[...] = 999
        with pytest.raises(LintError) as err:
            net_of(core).validate()
        assert "TN101" in err.value.codes
        # LintError is a ValueError: pre-lint callers keep working.
        assert isinstance(err.value, ValueError)

    def test_compile_is_the_same_front_door(self):
        core = good_core()
        core.delay[...] = 99
        with pytest.raises(LintError) as err:
            compile_network(net_of(core))
        assert "TN102" in err.value.codes

    def test_check_network_non_strict_reports_instead_of_raising(self):
        core = good_core()
        core.weights[...] = 999
        report = check_network(net_of(core), strict=False)
        assert not report.ok and "TN101" in codes_of(report)


class TestRenderers:
    def test_text_rendering_carries_code_location_hint(self):
        core = good_core()
        core.weights[...] = 999
        text = lint_core(core, core_id=7).render_text()
        assert "TN101" in text and "core 7" in text and "hint:" in text

    def test_json_rendering_round_trips(self):
        import json

        core = good_core()
        core.delay[...] = 0
        doc = json.loads(lint_core(core, core_id=1).render_json())
        assert doc["ok"] is False
        codes = [d["code"] for d in doc["diagnostics"]]
        assert "TN102" in codes
        diag = doc["diagnostics"][codes.index("TN102")]
        assert diag["severity"] == "error" and diag["location"]["core"] == 1

    def test_clean_report_renders_clean(self):
        assert "clean" in lint_network(net_of(good_core())).render_text()


class TestActivityGatingAdvisory:
    def test_tn701_fires_when_every_neuron_is_always_active(self):
        # Nonzero leak on every neuron => nothing is passive-stable.
        net = net_of(good_core(leak=1))
        report = lint_activity_gating(net)
        assert codes_of(report) == {"TN701"}
        with pytest.raises(LintError):
            check_activity_gating(net, strict=True)

    def test_tn701_silent_with_any_passive_neuron(self):
        # Default leak=0, deterministic threshold => passive-stable.
        report = lint_activity_gating(net_of(good_core()))
        assert report.clean(Severity.WARNING)

    def test_tn701_is_not_part_of_the_default_sweep(self):
        # Fully active networks are legitimate models: the advisory must
        # not surface through lint_network (CI lints builtins --strict).
        assert "TN701" not in codes_of(lint_network(net_of(good_core(leak=1))))


class TestEveryCodeHasAFixture:
    def test_registry_is_covered(self):
        """Every TN code in the registry is exercised in this module."""
        import pathlib

        text = pathlib.Path(__file__).read_text()
        for code in CODES:
            assert code in text, f"no fixture references {code}"


class TestBuiltinSweep:
    @pytest.mark.parametrize("name", sorted(BUILTIN_NETWORKS))
    def test_bundled_network_lints_clean_strict(self, name):
        """No errors and no warnings on any shipped example network."""
        report = lint_network(BUILTIN_NETWORKS[name]())
        assert report.clean(Severity.WARNING), report.render_text()

    def test_random_fuzz_builder_has_no_errors(self):
        # random_network draws RESET_NONE neurons that genuinely
        # saturate (TN301 warnings), but must stay free of errors.
        report = lint_network(random_network(n_cores=3, n_neurons=16, seed=1))
        assert report.ok, report.render_text()


class TestCli:
    def test_lint_builtin_exits_clean(self, capsys):
        assert cli_main(["lint", "--builtin", "--strict"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_model_file(self, tmp_path, capsys):
        net = random_network(n_cores=2, n_neurons=8, seed=3)
        path = tmp_path / "model.npz"
        save_network(path, net)
        assert cli_main(["lint", str(path)]) == 0
        data = dict(np.load(path))
        data["core0/weights"] = data["core0/weights"] + 10_000
        np.savez_compressed(path, **data)
        assert cli_main(["lint", str(path)]) == 1
        assert "TN101" in capsys.readouterr().out

    def test_lint_codes_table(self, capsys):
        assert cli_main(["lint", "--codes"]) == 0
        out = capsys.readouterr().out
        assert "TN301" in out and "SL104" in out

    def test_lint_json(self, tmp_path, capsys):
        import json

        net = random_network(n_cores=1, n_neurons=8, seed=0)
        path = tmp_path / "model.npz"
        save_network(path, net)
        cli_main(["lint", "--json", str(path)])
        doc = json.loads(capsys.readouterr().out)
        assert doc["subject"] == str(path)


def test_builtin_networks_builds_everything():
    nets = builtin_networks()
    assert set(nets) == set(BUILTIN_NETWORKS)
    assert all(n.n_cores >= 1 for n in nets.values())
