"""Cross-engine observability tests.

The obs layer's promise is uniformity: every engine reports the same
phase names, and the deterministic event metrics are bit-identical
across the reference, fast, and parallel expressions on the same
seeded network — message granularity matched by running the reference
at one core per rank and the parallel engine at one core per worker.
"""

import io
import json
import logging

import pytest

from repro.cli import main
from repro.compass.fast import FastCompassSimulator
from repro.compass.parallel import ParallelCompassSimulator
from repro.compass.simulator import CompassSimulator
from repro.core.builders import poisson_inputs, random_network
from repro.obs import PHASES, Observer, configure
from repro.obs.log import get_logger

TICKS = 20


@pytest.fixture(scope="module")
def network():
    return random_network(n_cores=4, connectivity=0.4, stochastic=True, seed=11)


@pytest.fixture(scope="module")
def inputs(network):
    return poisson_inputs(network, TICKS, 300.0, seed=3)


class TestPhaseParity:
    def test_fast_profile_reports_same_phase_names_as_compass(self, network, inputs):
        fast = FastCompassSimulator(network, profile=True)
        compass = CompassSimulator(network, profile=True)
        fast.run(TICKS, inputs)
        compass.run(TICKS, inputs)
        assert set(fast.phase_seconds) == set(compass.phase_seconds)
        for name in PHASES:
            assert fast.phase_seconds[name] > 0
            assert compass.phase_seconds[name] > 0

    def test_legacy_aggregates_consistent(self, network, inputs):
        sim = FastCompassSimulator(network, profile=True)
        sim.run(TICKS, inputs)
        ph = sim.phase_seconds
        assert ph["synapse_neuron"] == pytest.approx(
            ph["deliver"] + ph["integrate"] + ph["update"])
        assert ph["network"] == pytest.approx(ph["route"])

    def test_profiling_does_not_change_fast_results(self, network, inputs):
        a = FastCompassSimulator(network, profile=True).run(TICKS, inputs)
        b = FastCompassSimulator(network).run(TICKS, inputs)
        assert a == b


class TestThreeWayEquivalence:
    def test_event_snapshots_bit_identical(self, network, inputs):
        """fast vs reference (core/rank) vs parallel (core/worker)."""
        snapshots = {}
        records = {}

        obs = Observer()
        records["fast"] = FastCompassSimulator(network, obs=obs).run(TICKS, inputs)
        snapshots["fast"] = obs.event_snapshot()

        obs = Observer()
        records["compass"] = CompassSimulator(
            network, n_ranks=network.n_cores, obs=obs
        ).run(TICKS, inputs)
        snapshots["compass"] = obs.event_snapshot()

        obs = Observer()
        sim = ParallelCompassSimulator(network, n_workers=network.n_cores, obs=obs)
        records["parallel"] = sim.run(TICKS, inputs)
        sim.close()
        snapshots["parallel"] = obs.event_snapshot()

        assert snapshots["fast"] == snapshots["compass"] == snapshots["parallel"]
        assert snapshots["fast"]["repro_ticks_total"] == TICKS
        assert snapshots["fast"]["repro_spikes_total"] > 0
        assert records["fast"] == records["compass"] == records["parallel"]


class TestParallelTraceMerge:
    def test_worker_spans_merged_by_rank(self, network, inputs):
        obs = Observer()
        sim = ParallelCompassSimulator(network, n_workers=2, obs=obs)
        sim.run(TICKS, inputs)
        sim.close()
        # Coordinator is tid 0; each worker rank contributes its own row.
        assert obs.trace.tids() == [0, 1, 2]
        per_rank_phases = {
            tid: {s.name for s in obs.trace.spans() if s.tid == tid}
            for tid in (1, 2)
        }
        for names in per_rank_phases.values():
            assert set(PHASES) <= names
        # Merged view is tick-ordered across ranks.
        ticks = [s.tick for s in obs.trace.spans() if s.tick is not None]
        assert ticks == sorted(ticks)
        # Worker phase time feeds the uniform phase metric.
        assert sum(obs.phase_seconds()[p] for p in PHASES) > 0


class TestEngineSelectionLogging:
    def test_selection_decision_logged(self, network):
        from repro.compass.engine import select_engine

        stream = io.StringIO()
        configure(level=logging.INFO, stream=stream, force=True)
        try:
            select_engine(network, "fast")
            text = stream.getvalue()
        finally:
            configure(force=True)
        assert "engine_selected" in text
        assert "engine=fast" in text
        assert "reason=" in text

    def test_stereo_build_logged(self):
        from repro.apps.stereo import build_stereo_pipeline

        stream = io.StringIO()
        configure(level=logging.INFO, stream=stream, force=True)
        try:
            build_stereo_pipeline(8)
            text = stream.getvalue()
        finally:
            configure(force=True)
        assert "stereo_pipeline_built" in text
        assert "repro.apps.stereo" in text

    def test_silent_by_default(self, network):
        from repro.compass.engine import select_engine

        stream = io.StringIO()
        configure(stream=stream, force=True)  # env default: WARNING
        try:
            select_engine(network, "fast")
            assert stream.getvalue() == ""
        finally:
            configure(force=True)

    def test_namespace_is_hierarchical(self):
        assert get_logger("repro.engine").name == "repro.engine"


class TestStreamingObs:
    def test_runtime_publishes_stream_metrics_and_frame_spans(self):
        from repro.apps.video import generate_scene
        from repro.corelets.corelet import Composition
        from repro.corelets.library.basic import relay
        from repro.runtime.streaming import SceneSource, StreamingRuntime

        comp = Composition(seed=0)
        r = relay(12 * 20)
        comp.add(r)
        comp.export_input("in", r.inputs["in"])
        comp.export_output("out", r.outputs["out"])
        compiled = comp.compile()

        scene = generate_scene(12, 20, n_frames=3, seed=2)
        obs = Observer()
        runtime = StreamingRuntime(
            compiled.network, compiled.inputs["in"],
            ticks_per_frame=5, engine="fast", obs=obs,
        )
        report = runtime.run(SceneSource(scene))

        snap = obs.metrics.snapshot()
        assert snap["repro_frames_total"] == report.frames == 3
        assert snap["repro_input_events_total"] == report.input_events
        assert snap["repro_output_spikes_total"] == report.output_spikes
        assert snap["repro_wall_seconds_total"] == pytest.approx(
            report.wall_seconds)
        # One frame span per frame, alongside the engine's tick spans.
        names = [s.name for s in obs.trace.spans()]
        assert names.count("frame") == 3
        assert names.count("tick") == report.ticks


class TestCli:
    def test_trace_builtin_parallel(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main([
            "trace", "recurrent-stochastic", "--ticks", "10",
            "--engine", "parallel", "--workers", "2",
            "--out", str(out), "--metrics-out", str(metrics),
        ])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        tids = {e["tid"] for e in complete}
        assert tids >= {0, 1, 2}  # coordinator + both worker ranks
        phase_names = {e["name"] for e in complete}
        assert set(PHASES) <= phase_names
        # Per-tick spans from all ranks appear in merged tick order.
        ticked = [e["args"]["tick"] for e in complete
                  if "args" in e and "tick" in e["args"]]
        assert ticked == sorted(ticked)
        snap = json.loads(metrics.read_text())
        assert snap["repro_ticks_total"] == 10

    def test_metrics_prometheus_to_stdout(self, capsys):
        rc = main(["metrics", "recurrent-deterministic", "--ticks", "5",
                   "--format", "prom"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_spikes_total counter" in text
        assert "repro_ticks_total 5" in text

    def test_metrics_json_to_file(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        rc = main(["metrics", "recurrent-deterministic", "--ticks", "5",
                   "--out", str(out)])
        assert rc == 0
        assert json.loads(out.read_text())["repro_ticks_total"] == 5
