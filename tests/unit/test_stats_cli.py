"""Tests for spike statistics, the raster renderer, and the CLI."""

import numpy as np
import pytest

from repro.analysis.stats import (
    interspike_intervals,
    per_tick_counts,
    per_unit_counts,
    raster,
    summarize,
)
from repro.cli import build_parser, main
from repro.core.record import SpikeRecord


class TestStats:
    def test_per_unit_counts(self):
        rec = SpikeRecord.from_events([(0, 0, 1), (1, 0, 1), (2, 1, 0)])
        counts = per_unit_counts(rec, n_cores=2, n_neurons=2)
        assert counts[0, 1] == 2 and counts[1, 0] == 1

    def test_per_tick_counts(self):
        rec = SpikeRecord.from_events([(0, 0, 0), (0, 0, 1), (3, 0, 0)])
        counts = per_tick_counts(rec, 5)
        assert counts.tolist() == [2, 0, 0, 1, 0]

    def test_isis_regular_train(self):
        rec = SpikeRecord.from_events([(t, 0, 0) for t in range(0, 20, 4)])
        isis = interspike_intervals(rec)
        assert np.array_equal(isis, np.full(4, 4))

    def test_isis_pool_across_units(self):
        rec = SpikeRecord.from_events(
            [(0, 0, 0), (2, 0, 0), (0, 1, 3), (5, 1, 3)]
        )
        isis = sorted(interspike_intervals(rec).tolist())
        assert isis == [2, 5]

    def test_summarize_regular_train(self):
        rec = SpikeRecord.from_events([(t, 0, 0) for t in range(0, 100, 10)])
        stats = summarize(rec, n_cores=1, n_neurons_per_core=1, n_ticks=100)
        assert stats.mean_rate_hz == pytest.approx(100.0)
        assert stats.isi_cv == pytest.approx(0.0)
        assert stats.mean_isi_ticks == pytest.approx(10.0)

    def test_summarize_empty(self):
        stats = summarize(SpikeRecord.from_events([]), 1, 4, 10)
        assert stats.n_spikes == 0 and stats.mean_rate_hz == 0.0

    def test_raster_rendering(self):
        rec = SpikeRecord.from_events([(0, 0, 0), (3, 0, 0), (1, 0, 1)])
        out = raster(rec, n_ticks=5)
        lines = out.splitlines()
        assert lines[0].startswith("c00n000")
        assert lines[0].endswith("|  | ")
        assert lines[1].endswith(" |   ")


class TestCLI:
    def test_headline(self, capsys):
        assert main(["headline"]) == 0
        out = capsys.readouterr().out
        assert "GSOPS/W" in out

    def test_fig5_panel(self, capsys):
        assert main(["fig5", "e"]) == 0
        assert "GSOPS/W" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        assert "slower than real time" in capsys.readouterr().out

    def test_future(self, capsys):
        assert main(["future"]) == 0
        out = capsys.readouterr().out
        assert "rat-scale" in out

    def test_characterize(self, capsys):
        code = main([
            "characterize", "--rate", "100", "--synapses", "8",
            "--grid", "2", "--neurons", "32", "--ticks", "60",
        ])
        assert code == 0
        assert "characterization" in capsys.readouterr().out

    def test_simulate_roundtrip(self, tmp_path, capsys):
        from repro.core.builders import random_network
        from repro.io.model_files import save_network

        net = random_network(n_cores=2, connectivity=0.6, seed=1)
        model = tmp_path / "net.npz"
        save_network(model, net)
        aer = tmp_path / "out.aer"
        code = main([
            "simulate", str(model), "--ticks", "20",
            "--expression", "compass", "--ranks", "2",
            "--output", str(aer),
        ])
        assert code == 0
        assert aer.exists()
        out = capsys.readouterr().out
        assert "synaptic events" in out

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])
