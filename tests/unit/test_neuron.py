"""Tests for the vectorized neuron dynamics (repro.core.neuron)."""

import numpy as np
import pytest

from repro.core import params
from repro.core.network import Core
from repro.core.neuron import clamp_membrane, leak_values, neuron_tick, thresholds


def make_core(n=4, **kwargs):
    return Core.build(n_axons=n, n_neurons=n, **kwargs)


class TestClamp:
    def test_within_range_untouched(self):
        v = np.array([0, 100, -100])
        assert np.array_equal(clamp_membrane(v), v)

    def test_saturates_high(self):
        v = np.array([params.MEMBRANE_MAX + 5])
        assert clamp_membrane(v)[0] == params.MEMBRANE_MAX

    def test_saturates_low(self):
        v = np.array([params.MEMBRANE_MIN - 5])
        assert clamp_membrane(v)[0] == params.MEMBRANE_MIN


class TestLeak:
    def test_constant_leak(self):
        core = make_core(leak=-2)
        lv = leak_values(core, np.zeros(4, dtype=np.int64), 0, 0, 0)
        assert np.array_equal(lv, np.full(4, -2))

    def test_positive_leak(self):
        core = make_core(leak=3)
        lv = leak_values(core, np.zeros(4, dtype=np.int64), 0, 0, 0)
        assert np.array_equal(lv, np.full(4, 3))

    def test_leak_reversal_follows_sign_of_v(self):
        core = make_core(leak=2, leak_reversal=True)
        v = np.array([10, -10, 0, 5], dtype=np.int64)
        lv = leak_values(core, v, 0, 0, 0)
        assert np.array_equal(lv, np.array([2, -2, 0, 2]))

    def test_leak_reversal_negative_lambda(self):
        # lambda < 0 with reversal drives V toward zero.
        core = make_core(leak=-2, leak_reversal=True)
        v = np.array([10, -10, 0, 20], dtype=np.int64)
        lv = leak_values(core, v, 0, 0, 0)
        assert np.array_equal(lv, np.array([-2, 2, 0, -2]))

    def test_stochastic_leak_is_unit_step(self):
        core = make_core(n=256, leak=128, stoch_leak=True)
        lv = leak_values(core, np.zeros(256, dtype=np.int64), 0, 0, 0)
        assert set(np.unique(lv)).issubset({0, 1})
        # |lambda| = 128 => P(step) = 0.5; 256 neurons, loose bound
        assert 64 <= lv.sum() <= 192

    def test_stochastic_leak_always_steps_at_full_magnitude(self):
        core = make_core(n=64, leak=-256, stoch_leak=True)
        lv = leak_values(core, np.zeros(64, dtype=np.int64), 0, 0, 0)
        assert np.array_equal(lv, np.full(64, -1))

    def test_zero_leak_no_effect(self):
        core = make_core(leak=0, stoch_leak=True)
        lv = leak_values(core, np.ones(4, dtype=np.int64), 0, 0, 0)
        assert np.array_equal(lv, np.zeros(4))


class TestThreshold:
    def test_deterministic(self):
        core = make_core(threshold=17)
        assert np.array_equal(thresholds(core, 0, 0, 0), np.full(4, 17))

    def test_stochastic_adds_masked_draw(self):
        core = make_core(n=512, threshold=100, threshold_mask=0x0F)
        theta = thresholds(core, 0, 0, 0)
        assert theta.min() >= 100 and theta.max() <= 115
        assert len(np.unique(theta)) > 8  # draws actually vary

    def test_mixed_masks(self):
        core = make_core(threshold=10, threshold_mask=np.array([0, 0, 7, 7]))
        theta = thresholds(core, 0, 0, 0)
        assert theta[0] == 10 and theta[1] == 10
        assert 10 <= theta[2] <= 17


class TestNeuronTick:
    def test_integrates_and_fires(self):
        core = make_core(threshold=10, reset_value=0)
        v = np.zeros(4, dtype=np.int64)
        syn = np.array([5, 10, 15, 0], dtype=np.int64)
        v2, spiked = neuron_tick(core, v, syn, 0, 0, 0)
        assert spiked.tolist() == [False, True, True, False]
        assert v2.tolist() == [5, 0, 0, 0]

    def test_reset_linear_subtracts_theta(self):
        core = make_core(threshold=10, reset_mode=params.RESET_LINEAR)
        v = np.zeros(4, dtype=np.int64)
        syn = np.full(4, 23, dtype=np.int64)
        v2, spiked = neuron_tick(core, v, syn, 0, 0, 0)
        assert spiked.all()
        assert v2.tolist() == [13, 13, 13, 13]

    def test_reset_none_keeps_v(self):
        core = make_core(threshold=10, reset_mode=params.RESET_NONE)
        v2, spiked = neuron_tick(
            core, np.zeros(4, dtype=np.int64), np.full(4, 12, dtype=np.int64), 0, 0, 0
        )
        assert spiked.all()
        assert v2.tolist() == [12] * 4

    def test_reset_to_value(self):
        core = make_core(threshold=5, reset_value=3)
        v2, spiked = neuron_tick(
            core, np.zeros(4, dtype=np.int64), np.full(4, 9, dtype=np.int64), 0, 0, 0
        )
        assert spiked.all()
        assert v2.tolist() == [3] * 4

    def test_negative_floor_saturate(self):
        core = make_core(threshold=100, neg_threshold=20)
        v2, spiked = neuron_tick(
            core, np.zeros(4, dtype=np.int64), np.full(4, -50, dtype=np.int64), 0, 0, 0
        )
        assert not spiked.any()
        assert v2.tolist() == [-20] * 4

    def test_negative_floor_reset_mode(self):
        core = make_core(
            threshold=100,
            neg_threshold=20,
            reset_value=7,
            neg_floor_mode=params.NEG_FLOOR_RESET,
        )
        v2, _ = neuron_tick(
            core, np.zeros(4, dtype=np.int64), np.full(4, -50, dtype=np.int64), 0, 0, 0
        )
        assert v2.tolist() == [-7] * 4

    def test_membrane_saturation_under_large_input(self):
        core = make_core(threshold=params.THRESHOLD_MAX)
        big = np.full(4, 10**9, dtype=np.int64)
        v2, spiked = neuron_tick(core, np.zeros(4, dtype=np.int64), big, 0, 0, 0)
        assert spiked.all()  # MEMBRANE_MAX >= THRESHOLD_MAX
        v2b, _ = neuron_tick(
            core, np.zeros(4, dtype=np.int64), -big, 0, 0, 0
        )
        assert (v2b >= params.MEMBRANE_MIN).all()

    def test_leak_applied_before_threshold(self):
        core = make_core(threshold=10, leak=5)
        v2, spiked = neuron_tick(
            core, np.zeros(4, dtype=np.int64), np.full(4, 5, dtype=np.int64), 0, 0, 0
        )
        # 0 + 5 syn + 5 leak = 10 >= 10 -> spike
        assert spiked.all()

    def test_deterministic_across_calls(self):
        core = make_core(n=64, threshold=50, threshold_mask=31, stoch_leak=True, leak=100)
        v = np.zeros(64, dtype=np.int64)
        syn = np.full(64, 49, dtype=np.int64)
        a = neuron_tick(core, v, syn, 3, 11, 42)
        b = neuron_tick(core, v, syn, 3, 11, 42)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


class TestCoreValidation:
    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            Core.build(n_axons=4, n_neurons=4, weights=np.full((4, 4), 300))

    def test_rejects_bad_delay(self):
        with pytest.raises(ValueError):
            Core.build(n_axons=4, n_neurons=4, delay=0)

    def test_rejects_bad_axon_type(self):
        with pytest.raises(ValueError):
            Core.build(n_axons=4, n_neurons=4, axon_types=np.array([0, 1, 2, 9]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Core.build(n_axons=4, n_neurons=4, leak=np.zeros(5, dtype=np.int64))

    def test_default_core_is_valid(self):
        core = Core.build(n_axons=8, n_neurons=8)
        core.validate()
        assert core.n_axons == 8 and core.n_neurons == 8 and core.n_synapses == 0
