"""Tests for the flight recorder and crash-dump bundles (repro.obs.flight)."""

import json

import numpy as np
import pytest

from repro.compass.fast import FastCompassSimulator
from repro.core.builders import poisson_inputs, random_network
from repro.obs import Observer
from repro.obs.flight import (
    BUDGET_NS,
    FLIGHT_FIELDS,
    FlightRecorder,
    write_crash_dump,
)


class TestFlightRecorder:
    def test_empty_ring_is_well_defined(self):
        rec = FlightRecorder(capacity=8)
        assert len(rec) == 0
        assert rec.rows().shape == (0, len(FLIGHT_FIELDS))
        assert rec.real_time_factor() == 0.0
        summary = rec.summary()
        assert summary["ticks"] == 0
        assert summary["budget_compliance"] == 1.0
        assert summary["real_time_factor"] == 0.0

    def test_record_and_read_back(self):
        rec = FlightRecorder(capacity=8)
        rec.record(0, 500_000, spikes=3, messages_total=10,
                   deliver_ns=100, integrate_ns=200, update_ns=150,
                   route_ns=50)
        rec.record(1, 2_000_000, spikes=1, messages_total=14)
        rows = rec.rows()
        assert rows.shape == (2, len(FLIGHT_FIELDS))
        assert rows[:, 0].tolist() == [0.0, 1.0]       # tick
        assert rows[:, 1].tolist() == [500_000.0, 2_000_000.0]  # wall_ns
        assert rows[:, 2].tolist() == [3.0, 1.0]       # spikes
        # messages column stores per-tick deltas of the cumulative total
        assert rows[:, 3].tolist() == [10.0, 4.0]

    def test_message_counter_reset_restarts_baseline(self):
        rec = FlightRecorder(capacity=4)
        rec.record(0, 1000, 0, messages_total=50)
        rec.record(0, 1000, 0, messages_total=3)  # lane reset: total fell
        assert rec.rows()[:, 3].tolist() == [50.0, 3.0]

    def test_ring_overwrites_oldest(self):
        rec = FlightRecorder(capacity=4)
        for t in range(10):
            rec.record(t, 1000 * (t + 1), spikes=t, messages_total=0)
        assert len(rec) == 4
        assert rec.recorded == 10
        rows = rec.rows()
        assert rows[:, 0].tolist() == [6.0, 7.0, 8.0, 9.0]
        assert rec.rows(last=2)[:, 0].tolist() == [8.0, 9.0]
        assert rec.column("spikes").tolist() == [6.0, 7.0, 8.0, 9.0]

    def test_windowed_real_time_factor_tracks_eviction(self):
        rec = FlightRecorder(capacity=4)
        for _ in range(4):
            rec.record(0, 2 * BUDGET_NS, 0, 0)  # half real time
        assert rec.real_time_factor() == pytest.approx(0.5)
        for _ in range(4):
            rec.record(0, BUDGET_NS // 2, 0, 0)  # evicts the slow rows
        assert rec.real_time_factor() == pytest.approx(2.0)

    def test_summary_budget_accounting(self):
        rec = FlightRecorder(capacity=8)
        rec.record(0, BUDGET_NS // 2, spikes=2, messages_total=5)
        rec.record(1, 3 * BUDGET_NS, spikes=0, messages_total=5)
        s = rec.summary()
        assert s["ticks"] == 2
        assert s["budget_compliance"] == pytest.approx(0.5)
        assert s["budget_ratio_last"] == pytest.approx(3.0)
        assert s["budget_ratio_max"] == pytest.approx(3.0)
        assert s["max_tick_ms"] == pytest.approx(3.0)
        assert s["spikes"] == 2 and s["messages"] == 5

    def test_to_json_shape(self):
        rec = FlightRecorder(capacity=4)
        rec.record(0, 1000, 1, 2)
        doc = rec.to_json()
        assert doc["fields"] == list(FLIGHT_FIELDS)
        assert doc["budget_ns"] == BUDGET_NS
        assert doc["capacity"] == 4 and doc["recorded"] == 1
        assert doc["dropped"] == 0
        assert len(doc["rows"]) == 1
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_dump_writes_npz_and_json(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        for t in range(3):
            rec.record(t, 1000, t, t)
        npz_path, json_path = rec.dump(str(tmp_path))
        with np.load(npz_path) as data:
            assert data["rows"].shape == (3, len(FLIGHT_FIELDS))
            assert list(data["fields"]) == list(FLIGHT_FIELDS)
            assert int(data["budget_ns"]) == BUDGET_NS
        doc = json.loads((tmp_path / "flight.json").read_text())
        assert doc["summary"]["ticks"] == 3
        assert "rows" not in doc  # bulk data lives in the .npz

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)


class TestObserverFlightTick:
    def test_engine_hook_populates_ring_and_gauges(self):
        net = random_network(n_cores=3, n_axons=12, n_neurons=12, seed=5)
        ins = poisson_inputs(net, 10, 400.0, seed=1)
        obs = Observer()
        sim = FastCompassSimulator(net, obs=obs)
        sim.run(10, ins)
        assert len(obs.flight) == 10
        rows = obs.flight.rows()
        assert rows[:, 0].tolist() == [float(t) for t in range(10)]
        assert (rows[:, 1] > 0).all()  # every tick took wall time
        # spikes column totals the engine's spike counter
        assert int(rows[:, 2].sum()) == sim.counters.spikes
        assert int(rows[:, 3].sum()) == sim.counters.messages
        assert float(obs.metrics.gauge("repro_rtf").value()) > 0.0
        assert float(obs.metrics.gauge("repro_tick_budget_ratio").value()) > 0.0
        # per-phase durations sum to no more than the whole tick
        phases = rows[:, 6:10].sum(axis=1)
        assert (phases <= rows[:, 1]).all()

    def test_flight_capacity_zero_disables_recording(self):
        net = random_network(n_cores=2, n_axons=8, n_neurons=8, seed=6)
        obs = Observer(flight_capacity=0)
        assert obs.flight is None
        sim = FastCompassSimulator(net, obs=obs)
        sim.run(5, poisson_inputs(net, 5, 300.0, seed=2))
        assert obs.metrics.gauge("repro_rtf").value() == 0

    def test_disabled_observer_records_nothing(self):
        net = random_network(n_cores=2, n_axons=8, n_neurons=8, seed=7)
        obs = Observer(enabled=False)
        sim = FastCompassSimulator(net, obs=obs)
        sim.run(5, poisson_inputs(net, 5, 300.0, seed=2))
        assert len(obs.flight) == 0


class TestCrashDumps:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CRASH_DIR", raising=False)
        assert write_crash_dump(Observer(), "unit-test") is None

    def test_bundle_layout(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path))
        obs = Observer()
        obs.flight_tick(0, 0, 1_000_000, 2, 4)
        try:
            raise RuntimeError("distinctive-crash-detail")
        except RuntimeError as err:
            bundle = write_crash_dump(obs, "unit-test", detail="d", exc=err)
        assert bundle is not None
        manifest = json.loads((tmp_path / bundle.split("/")[-1] /
                               "manifest.json").read_text())
        assert manifest["reason"] == "unit-test"
        assert "distinctive-crash-detail" in manifest["exception"]
        assert manifest["flight_summary"]["ticks"] == 1
        for name in ("flight.npz", "flight.json", "metrics.json",
                     "trace.json"):
            assert (tmp_path / bundle.split("/")[-1] / name).exists()
        assert obs.metrics.counter("repro_crash_dumps_total").value() == 1

    def test_no_observer_writes_manifest_only(self, tmp_path):
        bundle = write_crash_dump(None, "bare", crash_dir=str(tmp_path))
        files = sorted(p.name for p in
                       (tmp_path / bundle.split("/")[-1]).iterdir())
        assert files == ["manifest.json"]

    def test_marked_exception_is_not_dumped_twice(self, tmp_path):
        err = RuntimeError("once")
        first = write_crash_dump(None, "first", exc=err,
                                 crash_dir=str(tmp_path))
        second = write_crash_dump(None, "second", exc=err,
                                  crash_dir=str(tmp_path))
        assert first is not None and second is None
        assert len(list(tmp_path.iterdir())) == 1

    def test_worker_kill_produces_bundle_with_flight_ring(
            self, tmp_path, monkeypatch):
        # The acceptance-criterion path: a killed parallel worker leaves
        # a postmortem bundle holding a non-empty flight ring.
        from repro.compass.parallel import (
            ParallelCompassSimulator,
            WorkerFailedError,
        )

        monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path))
        net = random_network(n_cores=4, connectivity=0.6, seed=41)
        obs = Observer()
        sim = ParallelCompassSimulator(net, n_workers=2, obs=obs)
        sim.step()  # one clean tick so the flight ring is non-empty
        sim._procs[0].kill()
        sim._procs[0].join(timeout=5)
        with pytest.raises(WorkerFailedError):
            for _ in range(3):
                sim.step()
        bundles = [p for p in tmp_path.iterdir() if p.name.startswith("crash-")]
        assert len(bundles) == 1
        manifest = json.loads((bundles[0] / "manifest.json").read_text())
        assert manifest["reason"].startswith("worker_failed")
        with np.load(bundles[0] / "flight.npz") as data:
            assert data["rows"].shape[0] >= 1  # the ring is non-empty
        assert (bundles[0] / "metrics.json").exists()
        assert (bundles[0] / "trace.json").exists()
