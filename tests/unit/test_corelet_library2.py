"""Tests for the extended corelet library (temporal, conv, reservoir, RBM)."""

import numpy as np
import pytest

from repro.core.inputs import InputSchedule
from repro.corelets.corelet import Composition
from repro.corelets.library.convolution import conv2d
from repro.corelets.library.rbm import (
    compile_sampler,
    firing_probability,
    rbm_sampling_layer,
    sample_hidden,
)
from repro.corelets.library.reservoir import liquid_reservoir, reservoir_state_features
from repro.corelets.library.temporal import coincidence, compose_reichardt, delay_chain
from repro.hardware.simulator import run_truenorth


def build_single(corelet, outputs=("out",)):
    comp = Composition(seed=0)
    comp.add(corelet)
    for cname, conn in corelet.inputs.items():
        comp.export_input(cname, conn)
    for cname in outputs:
        comp.export_output(cname, corelet.outputs[cname])
    return comp.compile()


def collect(compiled, rec, name="out"):
    pins = {(p.core, p.index): i for i, p in enumerate(compiled.outputs[name])}
    return sorted((t, pins[(c, n)]) for t, c, n in rec.as_tuples() if (c, n) in pins)


class TestDelayChain:
    @pytest.mark.parametrize("extra", [0, 1, 7, 15, 16, 40])
    def test_exact_delay(self, extra):
        compiled = build_single(delay_chain(4, extra))
        ins = InputSchedule()
        pin = compiled.inputs["in"][2]
        ins.add(0, pin.core, pin.index)
        rec = run_truenorth(compiled.network, extra + 2, ins)
        out = collect(compiled, rec)
        assert out == [(extra, 2)]

    def test_stage_count(self):
        assert delay_chain(4, 0).n_cores == 1
        assert delay_chain(4, 15).n_cores == 2
        assert delay_chain(4, 30).n_cores == 3
        assert delay_chain(4, 31).n_cores == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            delay_chain(4, -1)


class TestCoincidence:
    def test_fires_only_on_joint_arrival(self):
        compiled = build_single(coincidence(4))
        a = compiled.inputs["in_a"]
        b = compiled.inputs["in_b"]
        ins = InputSchedule()
        ins.add(0, a[1].core, a[1].index)  # lone a
        ins.add(2, b[1].core, b[1].index)  # lone b
        ins.add(4, a[1].core, a[1].index)  # joint
        ins.add(4, b[1].core, b[1].index)
        rec = run_truenorth(compiled.network, 6, ins)
        assert collect(compiled, rec) == [(4, 1)]

    def test_lone_inputs_do_not_accumulate(self):
        compiled = build_single(coincidence(2))
        a = compiled.inputs["in_a"]
        ins = InputSchedule.from_events(
            [(t, a[0].core, a[0].index) for t in range(6)]
        )
        rec = run_truenorth(compiled.network, 7, ins)
        assert collect(compiled, rec) == []


class TestReichardt:
    def run_moving_stimulus(self, velocity, detector_velocity, direction=+1):
        n = 6
        comp = Composition(seed=0)
        in_conn, out_conn = compose_reichardt(comp, n, velocity_ticks=detector_velocity)
        comp.export_input("in", in_conn)
        comp.export_output("out", out_conn)
        compiled = comp.compile()
        pins = compiled.inputs["in"]
        ins = InputSchedule()
        positions = range(n) if direction > 0 else range(n - 1, -1, -1)
        for step, pos in enumerate(positions):
            ins.add(step * velocity, pins[pos].core, pins[pos].index)
        horizon = n * velocity + detector_velocity + 4
        rec = run_truenorth(compiled.network, horizon, ins)
        return collect(compiled, rec)

    def test_matched_velocity_fires(self):
        out = self.run_moving_stimulus(velocity=2, detector_velocity=2)
        assert len(out) >= 4  # most adjacent pairs detected

    def test_wrong_velocity_silent(self):
        out = self.run_moving_stimulus(velocity=5, detector_velocity=2)
        assert out == []

    def test_opposite_direction_silent(self):
        out = self.run_moving_stimulus(velocity=2, detector_velocity=2, direction=-1)
        assert out == []


class TestConv2d:
    def test_output_geometry(self):
        kernels = np.ones((4, 3), dtype=np.int64)
        layer = conv2d(6, 8, kernels, stride=2)
        assert (layer.out_h, layer.out_w) == (3, 4)
        assert layer.n_features == 3
        assert len(layer.compiled.outputs["features"]) == 3 * 4 * 3

    def test_overlapping_windows_detect_edge(self):
        # vertical-edge kernel over a 6x6 frame with stride 1: windows
        # straddling the edge respond, others do not.
        k = 2
        kernel = np.array([[1], [-1], [1], [-1]])  # +left, -right columns
        layer = conv2d(6, 6, kernel, stride=1, gain=32, threshold=48, decay=32)
        frame = np.zeros((6, 6))
        frame[:, :3] = 1.0
        from repro.apps.transduction import transduce_video

        ins = transduce_video(frame[None].repeat(2, axis=0), layer.pixel_pins,
                              ticks_per_frame=15)
        rec = run_truenorth(layer.compiled.network, 32, ins)
        fmap = layer.feature_map(rec)[:, :, 0]
        # the column of windows whose left pixel is bright and right dark
        # (origin x=2) responds most
        col_resp = fmap.sum(axis=0)
        assert col_resp.argmax() == 2
        assert col_resp[2] > 0

    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError):
            conv2d(4, 4, np.ones((4, 1), dtype=np.int64), stride=0)

    def test_kernel_must_be_square(self):
        with pytest.raises(ValueError):
            conv2d(4, 4, np.ones((5, 1), dtype=np.int64))


class TestReservoir:
    def test_state_dimensions(self):
        res = liquid_reservoir(n_neurons=32, n_inputs=8, seed=1)
        compiled = build_single(res, outputs=("state",))
        assert len(compiled.outputs["state"]) == 32

    def test_fading_memory(self):
        # A brief input pulse echoes in the reservoir for several ticks,
        # then dies out (the liquid's fading memory).
        res = liquid_reservoir(n_neurons=48, n_inputs=8, seed=3,
                               recurrent_connectivity=0.2)
        compiled = build_single(res, outputs=("state",))
        pins = compiled.inputs["in"]
        ins = InputSchedule()
        for i in range(8):
            for t in range(3):
                ins.add(t, pins[i].core, pins[i].index)
        rec = run_truenorth(compiled.network, 40, ins)
        out = collect(compiled, rec, "state")
        ticks = [t for t, _ in out]
        assert len(out) > 0
        assert max(ticks) > 4  # persists beyond the stimulus
        assert max(ticks) < 40  # but eventually dies out

    def test_different_inputs_separate_states(self):
        res = liquid_reservoir(n_neurons=48, n_inputs=8, seed=5)
        compiled = build_single(res, outputs=("state",))
        pins = compiled.inputs["in"]

        def run_pattern(lines):
            ins = InputSchedule()
            for t in range(10):
                for i in lines:
                    ins.add(t, pins[i].core, pins[i].index)
            rec = run_truenorth(compiled.network, 20, ins)
            return reservoir_state_features(rec, compiled.outputs["state"], 48, 20)

        fa = run_pattern([0, 1, 2, 3])
        fb = run_pattern([4, 5, 6, 7])
        assert fa.shape == (4 * 48,)
        assert not np.array_equal(fa, fb)

    def test_capacity_limits(self):
        with pytest.raises(ValueError):
            liquid_reservoir(n_neurons=200, n_inputs=8)


class TestRBM:
    def test_sampling_statistics_match_analytic(self):
        # one hidden unit per drive level: weights columns with 0..3
        # positive visible connections
        n_visible = 4
        weights = np.zeros((n_visible, 4), dtype=np.int64)
        for j in range(4):
            weights[:j, j] = 1
        layer = rbm_sampling_layer(weights, gain=48, bias=16)
        compiled = compile_sampler(layer)
        visible = np.ones(n_visible, dtype=bool)
        samples = sample_hidden(compiled, visible, n_samples=1200)
        rates = samples.mean(axis=0)
        for j in range(4):
            expected = firing_probability(j, gain=48, bias=16)
            assert rates[j] == pytest.approx(expected, abs=0.06)

    def test_negative_drive_never_fires(self):
        weights = np.full((4, 2), -1, dtype=np.int64)
        layer = rbm_sampling_layer(weights, gain=48, bias=16)
        compiled = compile_sampler(layer)
        samples = sample_hidden(compiled, np.ones(4, dtype=bool), n_samples=100)
        assert samples.sum() == 0

    def test_samples_are_independent_across_presentations(self):
        # With P ~ 0.5, runs of identical outcomes must not dominate
        # (carryover between presentations would produce streaks).
        weights = np.zeros((2, 1), dtype=np.int64)
        weights[0, 0] = 1
        layer = rbm_sampling_layer(weights, gain=48, bias=64)
        compiled = compile_sampler(layer)
        visible = np.array([True, False])
        samples = sample_hidden(compiled, visible, n_samples=400)[:, 0]
        p = samples.mean()
        assert 0.3 < p < 0.6
        flips = np.abs(np.diff(samples.astype(int))).mean()
        assert flips > 0.3  # plenty of alternation

    def test_ternary_weights_enforced(self):
        with pytest.raises(ValueError):
            rbm_sampling_layer(np.full((2, 2), 3))
