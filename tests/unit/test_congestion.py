"""Tests for NoC congestion analysis (repro.noc.congestion)."""

import pytest

from repro.apps.workloads import ANCHOR_A, ANCHOR_C, characterization_workload
from repro.core.builders import poisson_inputs, random_network
from repro.hardware.simulator import TrueNorthSimulator
from repro.noc.congestion import (
    ROUTER_CAPACITY_PER_TICK,
    CongestionMonitor,
    TickCongestion,
    congestion_margin,
    hotspot_traffic_load,
    run_with_congestion,
    uniform_traffic_hotspot_load,
)


class TestTickCongestion:
    def test_stretch_below_capacity_is_one(self):
        e = TickCongestion(0, peak_router_load=100, mean_router_load=10, total_hops=500)
        assert e.stretch() == 1.0
        assert not e.saturated

    def test_stretch_above_capacity(self):
        e = TickCongestion(0, peak_router_load=2 * ROUTER_CAPACITY_PER_TICK,
                           mean_router_load=10, total_hops=500)
        assert e.stretch() == 2.0
        assert e.saturated


class TestMonitor:
    def test_requires_detailed_noc(self):
        net = random_network(n_cores=4, seed=1)
        sim = TrueNorthSimulator(net, detailed_noc=False)
        with pytest.raises(ValueError):
            CongestionMonitor(sim)

    def test_per_tick_loads_sum_to_hops(self):
        net = random_network(n_cores=6, connectivity=0.5, seed=4)
        sim = TrueNorthSimulator(net, detailed_noc=True)
        ins = poisson_inputs(net, 15, 500.0, seed=2)
        record, monitor = run_with_congestion(sim, 15, ins)
        # local-port deliveries are counted too, so per-tick totals are
        # >= pure hop counts; both must be positive and consistent
        assert len(monitor.history) == 15
        total = sum(e.total_hops for e in monitor.history)
        assert total >= record.counters.hops
        assert monitor.peak >= 1

    def test_no_stretch_for_small_networks(self):
        net = random_network(n_cores=4, seed=2)
        sim = TrueNorthSimulator(net, detailed_noc=True)
        ins = poisson_inputs(net, 10, 300.0, seed=1)
        _, monitor = run_with_congestion(sim, 10, ins)
        assert monitor.worst_stretch() == 1.0


class TestAnalyticModel:
    def test_uniform_traffic_has_huge_margin(self):
        # The paper's design claim: communication never limits real time
        # for spike-sparse workloads.  Even the heaviest characterization
        # point leaves >10x headroom on the busiest router.
        for w in (ANCHOR_A, ANCHOR_C):
            margin = congestion_margin(w)
            assert margin["uniform_utilization"] < 0.25
            assert margin["uniform_stretch"] == 1.0

    def test_adversarial_hotspot_saturates(self):
        # All-to-one traffic at high rate saturates the destination
        # router: the one pattern the mesh does NOT absorb.
        w = characterization_workload(200.0, 256.0)
        margin = congestion_margin(w)
        assert margin["hotspot_utilization"] > 1.0
        assert margin["hotspot_stretch"] > 1.0

    def test_hotspot_load_equals_spike_rate(self):
        w = ANCHOR_A
        assert hotspot_traffic_load(w) == pytest.approx(w.spikes_per_tick)

    def test_uniform_load_scales_with_hops(self):
        w_near = characterization_workload(100.0, 128.0)
        from dataclasses import replace

        w_far = replace(w_near, mean_hops=w_near.mean_hops * 2)
        assert uniform_traffic_hotspot_load(w_far) == pytest.approx(
            2 * uniform_traffic_hotspot_load(w_near)
        )
