"""Tests for SpikeRecord, InputSchedule, and EventCounters."""

import numpy as np

from repro.core.counters import EventCounters
from repro.core.inputs import InputSchedule
from repro.core.record import SpikeRecord


class TestSpikeRecord:
    def test_from_events_sorts(self):
        rec = SpikeRecord.from_events([(2, 0, 1), (0, 1, 0), (2, 0, 0)])
        assert rec.as_tuples() == [(0, 1, 0), (2, 0, 0), (2, 0, 1)]

    def test_equality(self):
        a = SpikeRecord.from_events([(0, 0, 0), (1, 1, 1)])
        b = SpikeRecord.from_events([(1, 1, 1), (0, 0, 0)])
        assert a == b

    def test_inequality(self):
        a = SpikeRecord.from_events([(0, 0, 0)])
        b = SpikeRecord.from_events([(0, 0, 1)])
        assert a != b

    def test_first_mismatch(self):
        a = SpikeRecord.from_events([(0, 0, 0), (3, 0, 0)])
        b = SpikeRecord.from_events([(0, 0, 0), (2, 0, 0)])
        assert a.first_mismatch(b) == (2, 0, 0)
        assert a.first_mismatch(a) is None

    def test_spikes_at(self):
        rec = SpikeRecord.from_events([(1, 0, 3), (1, 2, 5), (2, 0, 0)])
        assert rec.spikes_at(1) == [(0, 3), (2, 5)]
        assert rec.spikes_at(9) == []

    def test_for_core(self):
        rec = SpikeRecord.from_events([(1, 0, 3), (1, 2, 5), (2, 0, 0)])
        sub = rec.for_core(0)
        assert sub.n_spikes == 2
        assert sub.as_tuples() == [(1, 0, 3), (2, 0, 0)]

    def test_rate(self):
        rec = SpikeRecord.from_events([(t, 0, 0) for t in range(10)])
        # 10 spikes over 1 neuron x 100 ticks x 1ms = 100 Hz
        assert rec.rate_hz(n_neurons=1, n_ticks=100) == 100.0

    def test_empty_record(self):
        rec = SpikeRecord.from_events([])
        assert rec.n_spikes == 0
        assert rec.rate_hz(10, 10) == 0.0


class TestInputSchedule:
    def test_merge_duplicates(self):
        s = InputSchedule.from_events([(0, 0, 1), (0, 0, 1), (0, 0, 2)])
        assert s.n_events == 2
        assert s.events_at(0) == [(0, 1), (0, 2)]

    def test_iteration_sorted(self):
        s = InputSchedule.from_events([(3, 1, 0), (0, 0, 5), (3, 0, 9)])
        assert list(s) == [(0, 0, 5), (3, 0, 9), (3, 1, 0)]

    def test_last_tick(self):
        s = InputSchedule.from_events([(4, 0, 0), (9, 0, 0)])
        assert s.last_tick == 9
        assert InputSchedule().last_tick == -1

    def test_add_frame(self):
        s = InputSchedule()
        s.add_frame(2, 1, np.array([1, 0, 1, 1], dtype=bool))
        assert s.events_at(2) == [(1, 0), (1, 2), (1, 3)]


class TestEventCounters:
    def test_core_tick_recording(self):
        c = EventCounters()
        c.ensure_cores(3)
        c.record_core_tick(0, 10)
        c.record_core_tick(1, 25)
        c.record_core_tick(0, 5)
        assert c.synaptic_events == 40
        assert c.max_core_events_per_tick == 25
        assert c.synaptic_events_per_core.tolist() == [15, 25, 0]

    def test_mean_firing_rate(self):
        c = EventCounters(ticks=100, spikes=200, neuron_updates=100 * 10)
        # 10 neurons, 200 spikes / (10 x 100 ticks) = 0.2/tick = 200 Hz
        assert abs(c.mean_firing_rate_hz - 200.0) < 1e-9

    def test_mean_active_synapses(self):
        c = EventCounters(spikes=10, synaptic_events=1280)
        assert c.mean_active_synapses == 128.0

    def test_merge(self):
        a = EventCounters(synaptic_events=5, spikes=2, max_core_events_per_tick=7)
        b = EventCounters(synaptic_events=3, spikes=1, max_core_events_per_tick=9)
        a.merge(b)
        assert a.synaptic_events == 8 and a.spikes == 3
        assert a.max_core_events_per_tick == 9

    def test_empty_rates(self):
        c = EventCounters()
        assert c.mean_firing_rate_hz == 0.0
        assert c.mean_active_synapses == 0.0
        assert c.sops_per_tick() == 0.0
