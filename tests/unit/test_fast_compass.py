"""Tests for the sparse-matrix FastCompass simulator."""

import numpy as np
import pytest

from repro.compass.fast import FastCompassSimulator, run_fast_compass
from repro.compass.simulator import run_compass
from repro.core.builders import poisson_inputs, random_network
from repro.core.kernel import run_kernel


class TestFastCompassEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_matches_reference_kernel(self, seed):
        net = random_network(
            n_cores=5, n_axons=12, n_neurons=12, connectivity=0.4,
            stochastic=False, seed=seed,
        )
        ins = poisson_inputs(net, 25, 350.0, seed=seed + 100)
        ref = run_kernel(net, 25, ins)
        got = run_fast_compass(net, 25, ins)
        assert got.first_mismatch(ref) is None
        assert got == ref

    def test_counters_match_standard_compass(self):
        net = random_network(n_cores=4, connectivity=0.5, seed=11)
        ins = poisson_inputs(net, 20, 400.0, seed=5)
        std = run_compass(net, 20, ins)
        fast = run_fast_compass(net, 20, ins)
        assert fast == std
        for field in ("synaptic_events", "spikes", "deliveries",
                      "neuron_updates", "max_core_events_per_tick"):
            assert getattr(fast.counters, field) == getattr(std.counters, field), field
        assert np.array_equal(
            fast.counters.synaptic_events_per_core,
            std.counters.synaptic_events_per_core,
        )

    @pytest.mark.parametrize("seed", [3, 17, 41])
    def test_stochastic_networks_match_reference(self, seed):
        # Stochastic synapse/leak/threshold modes run on the sparse path
        # and stay bit-identical to the scalar reference kernel.
        net = random_network(
            n_cores=3, n_axons=12, n_neurons=12, connectivity=0.5,
            stochastic=True, seed=seed,
        )
        ins = poisson_inputs(net, 25, 350.0, seed=seed + 7)
        ref = run_kernel(net, 25, ins)
        got = run_fast_compass(net, 25, ins)
        assert got.first_mismatch(ref) is None
        assert got == ref

    def test_stochastic_counters_match_standard_compass(self):
        net = random_network(n_cores=4, connectivity=0.5, stochastic=True, seed=11)
        ins = poisson_inputs(net, 20, 400.0, seed=5)
        std = run_compass(net, 20, ins)
        fast = run_fast_compass(net, 20, ins)
        assert fast == std
        for field in ("synaptic_events", "spikes", "deliveries",
                      "neuron_updates", "max_core_events_per_tick"):
            assert getattr(fast.counters, field) == getattr(std.counters, field), field
        assert np.array_equal(
            fast.counters.synaptic_events_per_core,
            std.counters.synaptic_events_per_core,
        )

    def test_mixed_core_sizes(self):
        from repro.core.network import Core, Network

        big = Core.build(
            n_axons=16, n_neurons=16,
            crossbar=np.eye(16, dtype=bool), threshold=1,
            target_core=1, target_axon=np.arange(16) % 4, delay=2,
        )
        small = Core.build(
            n_axons=4, n_neurons=4,
            crossbar=np.ones((4, 4), dtype=bool), threshold=2,
        )
        net = Network(cores=[big, small], seed=2)
        ins = poisson_inputs(net, 15, 300.0, seed=1, cores=[0])
        ref = run_kernel(net, 15, ins)
        assert run_fast_compass(net, 15, ins) == ref

    def test_vision_pipeline_on_fast_compass(self):
        # Compiled corelet networks are deterministic: FastCompass runs
        # them unchanged.
        from repro.apps.haar import build_haar_pipeline
        from repro.apps.transduction import transduce_video
        from repro.apps.video import static_pattern

        pipe = build_haar_pipeline(8, 8, 4)
        frames = static_pattern(8, 8, "noise", seed=5)[None]
        ins = transduce_video(frames, pipe.pixel_pins, ticks_per_frame=10)
        ref = run_compass(pipe.compiled.network, 12, ins)
        assert run_fast_compass(pipe.compiled.network, 12, ins) == ref

    def test_empty_network_edge(self):
        from repro.core.network import Core, Network

        core = Core.build(n_axons=2, n_neurons=2)  # no synapses at all
        net = Network(cores=[core], seed=0)
        rec = run_fast_compass(net, 5)
        assert rec.n_spikes == 0
        assert rec.counters.neuron_updates == 10


class TestMessageCounting:
    @pytest.mark.parametrize("stochastic", [False, True])
    def test_messages_match_per_core_compass(self, stochastic):
        # FastCompass counts routed deliveries at the finest granularity:
        # every core is its own rank, so the tally must equal the Compass
        # expression partitioned one-core-per-rank.
        net = random_network(
            n_cores=5, connectivity=0.5, stochastic=stochastic, seed=29
        )
        ins = poisson_inputs(net, 15, 400.0, seed=3)
        fast = run_fast_compass(net, 15, ins)
        per_core = run_compass(
            net, 15, ins, n_ranks=net.n_cores, partition_strategy="round_robin"
        )
        assert fast == per_core
        assert fast.counters.messages == per_core.counters.messages
        assert fast.counters.messages > 0

    def test_self_connections_do_not_message(self):
        from repro.core.network import Core, Network

        core = Core.build(
            n_axons=4, n_neurons=4, crossbar=np.eye(4, dtype=bool),
            threshold=1, target_core=0, target_axon=np.arange(4), delay=1,
        )
        net = Network(cores=[core], seed=1)
        ins = poisson_inputs(net, 10, 800.0, seed=2)
        rec = run_fast_compass(net, 10, ins)
        assert rec.counters.deliveries > 0
        assert rec.counters.messages == 0

    def test_count_cross_core_messages_unit(self):
        from repro.compass.fast import count_cross_core_messages

        src = np.array([0, 0, 1, 2, 2, 2])
        dst = np.array([1, 1, 1, 0, 3, 0])
        # pairs: (0,1)x2 -> 1, (1,1) self -> 0, (2,0)x2 -> 1, (2,3) -> 1
        assert count_cross_core_messages(src, dst, 4) == 3
        assert count_cross_core_messages(src[:0], dst[:0], 4) == 0


class TestStepArrays:
    def test_step_arrays_matches_step_tuples(self):
        net = random_network(n_cores=3, stochastic=True, seed=30)
        ins = poisson_inputs(net, 10, 500.0, seed=4)
        a = FastCompassSimulator(net)
        b = FastCompassSimulator(net)
        a.load_inputs(ins)
        b.load_inputs(ins)
        for expected_tick in range(10):
            tick, cores, neurons = a.step_arrays()
            tuples = b.step()
            assert tick == expected_tick
            assert cores.dtype == np.int64 and neurons.dtype == np.int64
            assert [(tick, int(cc), int(nn)) for cc, nn in zip(cores, neurons)] == tuples

    def test_streaming_runtime_uses_array_path(self):
        from repro.runtime.streaming import SceneSource, StreamingRuntime
        from repro.apps.video import static_pattern, Scene
        from repro.corelets.corelet import GlobalPin

        net = random_network(n_cores=2, n_axons=16, n_neurons=8, seed=8)
        scene = Scene(frames=static_pattern(4, 4, "noise", seed=3)[None], boxes=[])
        pins = [GlobalPin(0, a) for a in range(16)]

        calls = {"n": 0}
        sim = FastCompassSimulator(net)
        original = sim.step_arrays

        def counting_step_arrays():
            calls["n"] += 1
            return original()

        sim.step_arrays = counting_step_arrays
        runtime = StreamingRuntime(sim, pins, ticks_per_frame=5)
        report = runtime.run(SceneSource(scene), drain_ticks=2)
        assert report.ticks == 7
        assert calls["n"] == 7


class TestFastCompassPerformance:
    def test_faster_than_standard_on_many_cores(self):
        import time

        net = random_network(
            n_cores=40, n_axons=32, n_neurons=32, connectivity=0.3, seed=6
        )
        ins = poisson_inputs(net, 10, 300.0, seed=2)

        start = time.perf_counter()
        std = run_compass(net, 10, ins)
        t_std = time.perf_counter() - start

        start = time.perf_counter()
        fast = run_fast_compass(net, 10, ins)
        t_fast = time.perf_counter() - start

        assert fast == std
        # flat execution removes the per-core Python loop; allow slack
        # for timer noise but expect a clear win
        assert t_fast < t_std
