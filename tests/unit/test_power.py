"""Tests for the power-measurement emulation (repro.hardware.power)."""

import numpy as np
import pytest

from repro.hardware.energy import EnergyModel
from repro.hardware.power import (
    ADC_SAMPLE_RATE_HZ,
    CALIBRATION_RMS_ERROR,
    adc_sample,
    level_triggered_average,
    measure_power,
    synthesize_tick_waveform,
)


class TestWaveform:
    def test_energy_conserved(self):
        wave = synthesize_tick_waveform(50e-6, 0.030, tick_seconds=1e-3)
        # integral of waveform over one tick = active energy + passive
        energy = wave.mean() * 1e-3
        assert energy == pytest.approx(50e-6 + 0.030 * 1e-3, rel=1e-9)

    def test_burst_at_start(self):
        wave = synthesize_tick_waveform(50e-6, 0.030)
        assert wave[0] > wave[-1]
        assert wave[-1] == pytest.approx(0.030)

    def test_bad_resolution_rejected(self):
        with pytest.raises(ValueError):
            synthesize_tick_waveform(1e-6, 0.01, resolution=2)


class TestADC:
    def test_sample_count(self):
        wave = synthesize_tick_waveform(50e-6, 0.030)
        samples = adc_sample(wave, n_ticks=1000)
        expected = int(1000 * 1e-3 * ADC_SAMPLE_RATE_HZ)
        assert abs(samples.size - expected) <= 1

    def test_noise_seeded(self):
        wave = synthesize_tick_waveform(50e-6, 0.030)
        a = adc_sample(wave, 600, seed=1)
        b = adc_sample(wave, 600, seed=1)
        c = adc_sample(wave, 600, seed=2)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestMeasurement:
    def test_requires_over_500_ticks(self):
        wave = synthesize_tick_waveform(50e-6, 0.030)
        samples = adc_sample(wave, 400)
        with pytest.raises(ValueError):
            level_triggered_average(samples, 400)

    def test_measures_true_power_within_calibration(self):
        # Anchor A: ~55 mW true power; measurement must land within the
        # 3% calibration error of the paper's instrument.
        m = EnergyModel()
        c = m.workload_counts_per_tick(20, 128)
        active = m.active_energy_per_tick_j(
            c["synaptic_events"], c["neuron_updates"], c["spikes"], c["hops"]
        )
        true_power = active * 1000 + m.passive_power_w
        meas = measure_power(active, m.passive_power_w, n_ticks=1000)
        assert abs(meas.mean_power_w - true_power) / true_power < CALIBRATION_RMS_ERROR

    def test_measurement_metadata(self):
        meas = measure_power(10e-6, 0.030, n_ticks=800)
        assert meas.n_ticks_averaged == 800
        assert meas.n_samples > 500
        assert meas.worst_case_error_w == pytest.approx(meas.mean_power_w * 0.03)
