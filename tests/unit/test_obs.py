"""Unit tests for the repro.obs telemetry layer.

Covers the metric registry and its exporters (with a golden-file style
Prometheus snapshot), the trace ring buffer and shared-memory span
strips, the observer enable/disable semantics, the structured logger,
and the EventCounters.merge edge cases the obs layer leans on.
"""

import io
import json
import logging

import pytest

from repro.core.counters import EventCounters
from repro.obs import (
    CATALOGUE,
    EVENT_METRICS,
    PHASES,
    MetricsRegistry,
    Observer,
    SpanStrip,
    TraceBuffer,
    active_observer,
    configure,
    get_logger,
    is_enabled,
    publish_counters,
    set_enabled,
)
from repro.obs.trace import PHASE_IDS


class TestMetricsRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_spikes_total")
        c.inc()
        c.inc(41)
        assert c.value() == 42

    def test_labels_are_independent_samples(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_phase_seconds_total")
        c.inc(1.5, phase="deliver")
        c.inc(0.5, phase="route")
        c.inc(0.5, phase="deliver")
        assert c.value(phase="deliver") == 2.0
        assert c.value(phase="route") == 0.5
        assert c.value(phase="update") == 0

    def test_gauge_set_and_set_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_queue_depth")
        g.set(7)
        g.set(3)
        assert g.value() == 3
        g.set_max(10)
        g.set_max(5)
        assert g.value() == 10

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_ticks_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_ticks_total")

    def test_catalogue_help_attached(self):
        reg = MetricsRegistry()
        assert "firings" in reg.counter("repro_spikes_total").help

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_tick_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        snap = reg.snapshot()["repro_tick_seconds"]
        assert snap["buckets"] == {"0.1": 1, "1.0": 3, "+Inf": 4}
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)

    def test_snapshot_deterministic_across_registries(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("repro_spikes_total").inc(9)
            reg.gauge("repro_queue_depth").set(2)
            reg.counter("repro_phase_seconds_total").inc(1, phase="route")
            return reg

        assert build().snapshot() == build().snapshot()
        assert build().to_json() == build().to_json()


class TestExporters:
    @pytest.fixture()
    def registry(self):
        reg = MetricsRegistry()
        reg.counter("repro_ticks_total").inc(5)
        reg.counter("repro_spikes_total").inc(12)
        c = reg.counter("repro_phase_seconds_total")
        c.inc(0.25, phase="deliver")
        c.inc(0.75, phase="route")
        reg.gauge("repro_queue_depth").set(3)
        h = reg.histogram("repro_tick_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        return reg

    def test_prometheus_golden(self, registry):
        expected = "\n".join([
            "# HELP repro_ticks_total Simulation ticks completed.",
            "# TYPE repro_ticks_total counter",
            "repro_ticks_total 5",
            "# HELP repro_spikes_total Neuron firings.",
            "# TYPE repro_spikes_total counter",
            "repro_spikes_total 12",
            "# HELP repro_phase_seconds_total Wall-clock seconds spent "
            "per tick phase (label: phase).",
            "# TYPE repro_phase_seconds_total counter",
            'repro_phase_seconds_total{phase="deliver"} 0.25',
            'repro_phase_seconds_total{phase="route"} 0.75',
            "# HELP repro_queue_depth Staged future input-event ticks "
            "awaiting injection.",
            "# TYPE repro_queue_depth gauge",
            "repro_queue_depth 3",
            "# HELP repro_tick_seconds Wall-clock seconds per simulated tick.",
            "# TYPE repro_tick_seconds histogram",
            'repro_tick_seconds_bucket{le="0.1"} 1',
            'repro_tick_seconds_bucket{le="1.0"} 2',
            'repro_tick_seconds_bucket{le="+Inf"} 2',
            "repro_tick_seconds_sum 0.55",
            "repro_tick_seconds_count 2",
            "",
        ])
        assert registry.to_prometheus() == expected

    def test_json_golden(self, registry):
        doc = json.loads(registry.to_json())
        assert doc["repro_ticks_total"] == 5
        assert doc['repro_phase_seconds_total{phase="route"}'] == 0.75
        assert doc["repro_tick_seconds"]["count"] == 2


class TestExporterHardening:
    def test_help_and_label_value_escaping_golden(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_paths_total",
                        help='Back\\slash,\nnewline, and "quotes".')
        c.inc(2, path="C:\\tmp", note='line1\nline2 "x"')
        expected = "\n".join([
            '# HELP repro_paths_total Back\\\\slash,\\nnewline, '
            'and "quotes".',
            "# TYPE repro_paths_total counter",
            'repro_paths_total{note="line1\\nline2 \\"x\\"",'
            'path="C:\\\\tmp"} 2',
            "",
        ])
        assert reg.to_prometheus() == expected

    def test_counter_total_suffix_normalized(self):
        reg = MetricsRegistry()
        reg.counter("repro_custom_events", help="Custom counter.").inc(3)
        text = reg.to_prometheus()
        assert "# HELP repro_custom_events_total Custom counter." in text
        assert "# TYPE repro_custom_events_total counter" in text
        assert "repro_custom_events_total 3" in text
        assert "repro_custom_events 3" not in text
        # the JSON snapshot keeps the registered name (stable API)
        assert reg.snapshot()["repro_custom_events"] == 3

    def test_suffix_untouched_for_gauges_and_histograms(self):
        reg = MetricsRegistry()
        reg.gauge("repro_depth").set(4)
        reg.histogram("repro_lag", buckets=(1.0,)).observe(0.5)
        text = reg.to_prometheus()
        assert "repro_depth 4" in text
        assert "repro_depth_total" not in text
        assert "repro_lag_bucket" in text
        assert "repro_lag_total" not in text

    def test_catalogue_counters_all_carry_total(self):
        for name, (kind, _) in CATALOGUE.items():
            if kind == "counter":
                assert name.endswith("_total"), name

    def test_concurrent_label_insertion_survives_export(self):
        # items() hands back copies, so a scrape racing engine writes
        # never dies on "dictionary changed size during iteration".
        reg = MetricsRegistry()
        family = reg.counter("repro_phase_seconds_total")
        family.inc(1, phase="deliver")
        for key, _ in family.items():
            family.inc(1, phase=f"new-{key}")
        assert "repro_phase_seconds_total" in reg.to_prometheus()


class TestPublishCounters:
    def test_maps_every_event_metric(self):
        c = EventCounters(ticks=3, synaptic_events=100, spikes=10,
                          deliveries=20, neuron_updates=96, hops=4,
                          messages=7, membrane_saturations=2,
                          max_core_events_per_tick=55)
        reg = MetricsRegistry()
        publish_counters(reg, c)
        snap = reg.snapshot()
        for name, attr in EVENT_METRICS.items():
            assert snap[name] == getattr(c, attr)

    def test_idempotent_republication(self):
        c = EventCounters(spikes=10)
        reg = MetricsRegistry()
        publish_counters(reg, c)
        c.spikes = 11
        publish_counters(reg, c)
        assert reg.snapshot()["repro_spikes_total"] == 11


class TestEventCountersMerge:
    def test_merge_empty_is_identity(self):
        c = EventCounters(ticks=5, synaptic_events=10, spikes=3, messages=2)
        c.ensure_cores(2)
        c.synaptic_events_per_core[:] = (6, 4)
        c.merge(EventCounters())
        assert (c.ticks, c.synaptic_events, c.spikes, c.messages) == (5, 10, 3, 2)
        assert c.synaptic_events_per_core.tolist() == [6, 4]

    def test_merge_into_empty(self):
        c = EventCounters(ticks=5, spikes=3, membrane_saturations=1)
        c.ensure_cores(2)
        c.synaptic_events_per_core[:] = (6, 4)
        empty = EventCounters()
        empty.merge(c)
        assert empty.ticks == 5
        assert empty.spikes == 3
        assert empty.membrane_saturations == 1
        assert empty.synaptic_events_per_core.tolist() == [6, 4]

    def test_self_merge_doubles_additive_keeps_maxima(self):
        c = EventCounters(ticks=5, synaptic_events=10, spikes=3,
                          max_core_events_per_tick=9)
        c.ensure_cores(2)
        c.synaptic_events_per_core[:] = (6, 4)
        c.merge(c)
        assert c.ticks == 5  # shared tick count, not additive
        assert c.synaptic_events == 20
        assert c.spikes == 6
        assert c.max_core_events_per_tick == 9
        assert c.synaptic_events_per_core.tolist() == [12, 8]

    def test_mismatched_core_counts_grow_and_sum(self):
        small = EventCounters()
        small.ensure_cores(2)
        small.synaptic_events_per_core[:] = (1, 2)
        big = EventCounters()
        big.ensure_cores(4)
        big.synaptic_events_per_core[:] = (10, 20, 30, 40)

        grown = EventCounters()
        grown.ensure_cores(2)
        grown.synaptic_events_per_core[:] = (1, 2)
        grown.merge(big)
        assert grown.synaptic_events_per_core.tolist() == [11, 22, 30, 40]

        big.merge(small)
        assert big.synaptic_events_per_core.tolist() == [11, 22, 30, 40]

    def test_ticks_take_maximum(self):
        a = EventCounters(ticks=7)
        a.merge(EventCounters(ticks=3))
        assert a.ticks == 7
        a.merge(EventCounters(ticks=12))
        assert a.ticks == 12


class TestTraceBuffer:
    def test_spans_merge_in_tick_order(self):
        buf = TraceBuffer()
        # Rank rows append independently; spans() interleaves by tick.
        buf.add("deliver", 100, 110, tid=1, attrs={"tick": 1})
        buf.add("deliver", 90, 95, tid=2, attrs={"tick": 0})
        buf.add("compile", 0, 50, tid=0)
        buf.add("deliver", 80, 85, tid=1, attrs={"tick": 0})
        ordered = [(s.name, s.tick, s.tid) for s in buf.spans()]
        assert ordered == [
            ("compile", None, 0),
            ("deliver", 0, 1),
            ("deliver", 0, 2),
            ("deliver", 1, 1),
        ]

    def test_ring_overflow_drops_oldest(self):
        buf = TraceBuffer(capacity=3)
        for i in range(5):
            buf.add("tick", i, i + 1, attrs={"tick": i})
        assert len(buf) == 3
        assert buf.dropped == 2
        assert [s.tick for s in buf.spans()] == [2, 3, 4]

    def test_chrome_trace_events_structure(self):
        buf = TraceBuffer()
        buf.add("compile", 2_000, 5_000, tid=0)
        buf.add("deliver", 5_000, 6_000, tid=1, attrs={"tick": 0})
        events = buf.chrome_trace_events()
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {m["args"]["name"] for m in meta} == {"rank0 (coordinator)", "rank1"}
        first = complete[0]
        assert first["ts"] == 0.0  # rebased to the earliest span
        assert first["dur"] == 3.0  # ns -> us
        assert complete[1]["args"] == {"tick": 0}

    def test_export_chrome_writes_document(self, tmp_path):
        buf = TraceBuffer()
        buf.add("tick", 0, 1000, attrs={"tick": 0})
        out = tmp_path / "trace.json"
        n = buf.export_chrome(str(out))
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == n
        assert doc["displayTimeUnit"] == "ms"


class TestSpanStrip:
    def test_roundtrip(self):
        buf = bytearray(SpanStrip.nbytes(8))
        strip = SpanStrip(buf, 8, reset=True)
        strip.record(PHASE_IDS["deliver"], 0, 100, 110)
        strip.record_phase("route", 0, 110, 120)
        assert strip.written == 2
        assert strip.records() == [
            (PHASE_IDS["deliver"], 0, 100, 110),
            (PHASE_IDS["route"], 0, 110, 120),
        ]

    def test_ring_overwrite_keeps_newest(self):
        buf = bytearray(SpanStrip.nbytes(4))
        strip = SpanStrip(buf, 4, reset=True)
        for i in range(6):
            strip.record(PHASE_IDS["tick"], i, i * 10, i * 10 + 5)
        assert strip.written == 6
        assert [r[1] for r in strip.records()] == [2, 3, 4, 5]

    def test_drain_into_trace(self):
        buf = bytearray(SpanStrip.nbytes(8))
        strip = SpanStrip(buf, 8, reset=True)
        strip.record(PHASE_IDS["integrate"], 3, 50, 60)
        trace = TraceBuffer()
        assert strip.drain_into(trace, tid=2) == 1
        (span,) = trace.spans()
        assert (span.name, span.tick, span.tid) == ("integrate", 3, 2)
        assert strip.written == 0  # drained

    def test_reader_attaches_without_reset(self):
        buf = bytearray(SpanStrip.nbytes(4))
        writer = SpanStrip(buf, 4, reset=True)
        writer.record(PHASE_IDS["update"], 1, 0, 9)
        reader = SpanStrip(buf, 4)  # no reset: sees the writer's records
        assert reader.records() == [(PHASE_IDS["update"], 1, 0, 9)]


class TestObserver:
    def test_span_records_into_trace(self):
        obs = Observer()
        with obs.span("compile", cores=4):
            pass
        (span,) = obs.trace.spans()
        assert span.name == "compile"
        assert span.attrs == {"cores": 4}
        assert span.end_ns >= span.begin_ns

    def test_disabled_observer_is_noop(self):
        obs = Observer(enabled=False)
        assert not obs.active
        assert active_observer(obs) is None
        with obs.span("compile"):
            pass
        assert len(obs.trace) == 0

    def test_disabled_observer_phase_seconds_empty_never_raises(self):
        seconds = Observer(enabled=False).phase_seconds()
        assert set(seconds) == set(PHASES) | {"synapse_neuron", "network"}
        assert all(v == 0.0 for v in seconds.values())

    def test_disabled_observer_event_snapshot_empty_never_raises(self):
        snap = Observer(enabled=False).event_snapshot()
        assert set(snap) == set(EVENT_METRICS)
        assert all(v == 0 for v in snap.values())

    def test_module_switch_silences_all(self):
        obs = Observer()
        assert is_enabled()
        try:
            set_enabled(False)
            assert not obs.active
            assert active_observer(obs) is None
            with obs.span("compile"):
                pass
            assert len(obs.trace) == 0
        finally:
            set_enabled(True)
        assert obs.active

    def test_phase_seconds_includes_compat_aggregates(self):
        obs = Observer()
        obs.phase("deliver", 0, 0, 1_000_000_000)
        obs.phase("route", 0, 0, 500_000_000)
        seconds = obs.phase_seconds()
        assert set(seconds) == set(PHASES) | {"synapse_neuron", "network"}
        assert seconds["synapse_neuron"] == pytest.approx(1.0)
        assert seconds["network"] == pytest.approx(0.5)

    def test_tick_phases_synthesizes_contiguous_spans(self):
        obs = Observer()
        obs.tick_phases(4, 1000, (("deliver", 10), ("route", 20)))
        spans = {s.name: s for s in obs.trace.spans()}
        assert spans["deliver"].begin_ns == 1000
        assert spans["deliver"].end_ns == spans["route"].begin_ns == 1010
        assert spans["route"].end_ns == 1030
        assert spans["tick"].tick == 4
        hist = obs.metrics.snapshot()["repro_tick_seconds"]
        assert hist["count"] == 1

    def test_event_snapshot_covers_catalogue_subset(self):
        obs = Observer()
        obs.publish_counters(EventCounters(ticks=2, spikes=5))
        snap = obs.event_snapshot()
        assert set(snap) == set(EVENT_METRICS)
        assert snap["repro_spikes_total"] == 5

    def test_write_metrics_json(self, tmp_path):
        obs = Observer()
        obs.publish_counters(EventCounters(spikes=5))
        path = tmp_path / "metrics.json"
        obs.write_metrics_json(str(path))
        assert json.loads(path.read_text())["repro_spikes_total"] == 5


class TestStructuredLog:
    @pytest.fixture()
    def capture(self):
        stream = io.StringIO()
        configure(level=logging.DEBUG, stream=stream, force=True)
        yield stream
        configure(force=True)  # restore env-driven defaults

    def test_event_key_value_rendering(self, capture):
        log = get_logger("repro.test")
        log.info("engine_selected", engine="fast", n_workers=4)
        line = capture.getvalue().strip()
        assert line.endswith("engine_selected engine=fast n_workers=4")
        assert "INFO" in line and "repro.test" in line

    def test_values_with_whitespace_are_quoted(self, capture):
        get_logger("repro.test").info("note", reason="too many cores")
        assert "reason='too many cores'" in capture.getvalue()

    def test_level_filters(self, capture):
        configure(level=logging.WARNING, stream=capture, force=True)
        log = get_logger("repro.test")
        log.info("hidden")
        log.warning("shown")
        text = capture.getvalue()
        assert "hidden" not in text
        assert "shown" in text

    def test_level_from_environment(self, monkeypatch):
        stream = io.StringIO()
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        configure(stream=stream, force=True)
        try:
            get_logger("repro.test").debug("fine_grained", x=1)
            assert "fine_grained x=1" in stream.getvalue()
        finally:
            monkeypatch.undo()
            configure(force=True)

    def test_level_from_environment_filters_below(self, monkeypatch):
        stream = io.StringIO()
        monkeypatch.setenv("REPRO_LOG_LEVEL", "ERROR")
        configure(stream=stream, force=True)
        try:
            log = get_logger("repro.test")
            log.warning("suppressed_by_env")
            log.error("surfaced_by_env")
            text = stream.getvalue()
            assert "suppressed_by_env" not in text
            assert "surfaced_by_env" in text
        finally:
            monkeypatch.undo()
            configure(force=True)

    def test_logger_namespace_enforced(self):
        with pytest.raises(ValueError, match="namespace"):
            get_logger("other.package")
