"""Tests for the synthetic video generator and transduction."""

import numpy as np
import pytest

from repro.apps.transduction import (
    rate_code_frame,
    spike_map,
    transduce_video,
)
from repro.apps.video import (
    CLASS_PROFILES,
    GroundTruthBox,
    generate_scene,
    static_pattern,
)
from repro.corelets.corelet import Composition
from repro.corelets.library.basic import relay
from repro.core.inputs import InputSchedule
from repro.hardware.simulator import run_truenorth


class TestSceneGenerator:
    def test_shapes_and_range(self):
        scene = generate_scene(24, 32, n_frames=5, seed=1)
        assert scene.frames.shape == (5, 24, 32)
        assert scene.frames.min() >= 0.0 and scene.frames.max() <= 1.0
        assert scene.n_frames == 5 and scene.shape == (24, 32)

    def test_ground_truth_every_frame(self):
        scene = generate_scene(24, 32, n_frames=4, n_objects=3, seed=2)
        for f in range(4):
            assert len(scene.boxes[f]) == 3
            for box in scene.boxes[f]:
                assert box.label in CLASS_PROFILES
                assert 0 <= box.y and box.y + box.h <= 24

    def test_objects_brighter_than_background(self):
        scene = generate_scene(24, 32, n_frames=1, n_objects=1, seed=3)
        box = scene.boxes[0][0]
        inside = scene.frames[0, box.y : box.y + box.h, box.x : box.x + box.w].mean()
        assert inside > 3 * scene.frames[0].mean() / 2

    def test_deterministic(self):
        a = generate_scene(20, 24, seed=9)
        b = generate_scene(20, 24, seed=9)
        assert np.array_equal(a.frames, b.frames)

    def test_moving_objects_move(self):
        scene = generate_scene(24, 48, n_frames=8, n_objects=4, seed=5)
        moved = any(
            scene.boxes[0][i].x != scene.boxes[-1][i].x for i in range(4)
        )
        assert moved

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_scene(4, 4)


class TestGroundTruthBox:
    def test_iou_identity(self):
        b = GroundTruthBox(0, "car", 2, 3, 5, 9)
        assert b.iou(b) == 1.0

    def test_iou_disjoint(self):
        a = GroundTruthBox(0, "car", 0, 0, 4, 4)
        b = GroundTruthBox(0, "car", 10, 10, 4, 4)
        assert a.iou(b) == 0.0

    def test_iou_partial(self):
        a = GroundTruthBox(0, "car", 0, 0, 4, 4)
        b = GroundTruthBox(0, "car", 0, 2, 4, 4)
        assert a.iou(b) == pytest.approx(8 / 24)


class TestStaticPatterns:
    @pytest.mark.parametrize(
        "kind", ["vertical-edge", "horizontal-edge", "checkerboard", "uniform", "noise"]
    )
    def test_kinds(self, kind):
        p = static_pattern(16, 16, kind)
        assert p.shape == (16, 16)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            static_pattern(8, 8, "spiral")


class TestTransduction:
    def build_relay(self, n):
        comp = Composition(seed=0)
        r = relay(n)
        comp.add(r)
        comp.export_input("in", r.inputs["in"])
        comp.export_output("out", r.outputs["out"])
        return comp.compile()

    def test_rate_proportional_to_intensity(self):
        compiled = self.build_relay(2)
        frame = np.array([[0.1, 0.9]])
        ins = InputSchedule()
        n = rate_code_frame(frame, compiled.inputs["in"], ins, 0, ticks=200, seed=3)
        rec = run_truenorth(compiled.network, 201, ins)
        counts = spike_map(rec, compiled.outputs["out"], (1, 2))
        assert counts[0, 1] > 4 * counts[0, 0]
        assert n == ins.n_events

    def test_zero_intensity_silent(self):
        compiled = self.build_relay(4)
        ins = transduce_video(np.zeros((2, 1, 4)), compiled.inputs["in"])
        assert ins.n_events == 0

    def test_deterministic_given_seed(self):
        compiled = self.build_relay(4)
        frames = np.random.default_rng(1).random((2, 1, 4))
        a = transduce_video(frames, compiled.inputs["in"], seed=5)
        b = transduce_video(frames, compiled.inputs["in"], seed=5)
        assert list(a) == list(b)
        c = transduce_video(frames, compiled.inputs["in"], seed=6)
        assert list(a) != list(c)

    def test_pin_count_mismatch_rejected(self):
        compiled = self.build_relay(4)
        with pytest.raises(ValueError):
            transduce_video(np.zeros((1, 2, 4)), compiled.inputs["in"])
