"""Tests for core configuration bitstreams (repro.hardware.config)."""

import numpy as np
import pytest

from repro.core.builders import poisson_inputs, random_network
from repro.core.network import Network
from repro.hardware.config import (
    NEURON_WORD_BITS,
    CoreImage,
    config_stream,
    core_config_bits,
    decode_core,
    encode_core,
    parse_config_stream,
)
from repro.hardware.simulator import run_truenorth


def core_equal(a, b):
    from dataclasses import fields

    for f in fields(a):
        if f.name == "name":
            continue
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if not np.array_equal(va, vb):
            return False
    return True


class TestEncodeDecode:
    def test_roundtrip_random_core(self):
        net = random_network(n_cores=1, n_axons=16, n_neurons=16,
                             stochastic=True, seed=5)
        core = net.cores[0]
        decoded = decode_core(encode_core(core))
        assert core_equal(core, decoded)

    def test_roundtrip_full_size_core(self):
        net = random_network(n_cores=1, n_axons=256, n_neurons=256, seed=2)
        core = net.cores[0]
        decoded = decode_core(encode_core(core))
        assert core_equal(core, decoded)

    def test_output_target_roundtrips(self):
        from repro.core.network import Core, OUTPUT_TARGET

        core = Core.build(n_axons=4, n_neurons=4, target_core=OUTPUT_TARGET)
        decoded = decode_core(encode_core(core))
        assert (decoded.target_core == OUTPUT_TARGET).all()

    def test_extreme_values_roundtrip(self):
        from repro.core import params
        from repro.core.network import Core

        core = Core.build(
            n_axons=2, n_neurons=2,
            weights=np.array([[params.WEIGHT_MIN] * 4, [params.WEIGHT_MAX] * 4]),
            leak=np.array([params.LEAK_MIN, params.LEAK_MAX]),
            threshold=params.THRESHOLD_MAX,
            threshold_mask=params.THRESHOLD_MASK_MAX,
            reset_value=np.array([params.MEMBRANE_MIN, params.MEMBRANE_MAX]),
            initial_v=np.array([params.MEMBRANE_MIN, params.MEMBRANE_MAX]),
            neg_threshold=-params.MEMBRANE_MIN,
            delay=15,
        )
        decoded = decode_core(encode_core(core))
        assert core_equal(core, decoded)

    def test_bit_count(self):
        assert core_config_bits(256, 256) == 256 * 256 + 256 * 2 + 256 * NEURON_WORD_BITS

    def test_bytes_roundtrip(self):
        net = random_network(n_cores=1, n_axons=8, n_neurons=8, seed=9)
        image = encode_core(net.cores[0])
        again = CoreImage.from_bytes(image.to_bytes(), 8, 8)
        assert np.array_equal(image.bits, again.bits)


class TestConfigStream:
    def test_stream_roundtrip_preserves_behaviour(self):
        net = random_network(n_cores=3, n_axons=12, n_neurons=12,
                             stochastic=True, seed=7)
        stream = config_stream(net.cores)
        cores = parse_config_stream(stream)
        net2 = Network(cores=cores, seed=net.seed)
        ins = poisson_inputs(net, 20, 300.0, seed=3)
        assert run_truenorth(net, 20, ins) == run_truenorth(net2, 20, ins)

    def test_stream_size(self):
        net = random_network(n_cores=2, n_axons=8, n_neurons=8, seed=1)
        stream = config_stream(net.cores)
        per_core = 8 + (core_config_bits(8, 8) + 7) // 8
        assert len(stream) == 2 * per_core

    def test_truncated_stream_rejected(self):
        net = random_network(n_cores=1, n_axons=8, n_neurons=8, seed=1)
        stream = config_stream(net.cores)
        with pytest.raises(ValueError):
            parse_config_stream(stream[:-3])
        with pytest.raises(ValueError):
            parse_config_stream(stream + b"\x01\x02")

    def test_full_chip_image_size_scale(self):
        # A full 256x256 core packs into ~10.5 KB; 4,096 cores ~ 43 MB --
        # the right order for a real chip's configuration state.
        bits = core_config_bits(256, 256)
        assert 70_000 <= bits <= 120_000
