"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one paper table/figure (see the
experiment index in DESIGN.md) and prints the rows/series the paper
reports.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def emit(text: str) -> None:
    """Print a benchmark artifact block (visible with -s / in CI logs)."""
    print()
    print(text)
