"""BATCH: batched multi-replica engine throughput vs sequential runs.

Measures aggregate ticks/second of ``BatchedCompassSimulator`` advancing
B=16 replicas in one vectorized pass against the same 16 replicas run
sequentially on the sparse engine.  The serving regime the batch axis
targets is many concurrent sessions of a *small* model, where the fixed
Python per-tick cost dominates and batching amortizes it across lanes.

The deterministic workload carries the ISSUE 6 acceptance gate
(>=3x aggregate throughput at B=16); the stochastic workload pays extra
per-lane PRNG draws and is gated more loosely.  Both assert per-lane
bit-identity with the sequential runs before any speedup claim.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.compass.batched import BatchedCompassSimulator
from repro.compass.compile import compile_network
from repro.compass.fast import FastCompassSimulator, staged_inputs
from repro.core.builders import poisson_inputs, random_network

B = 16
N_TICKS = 40


def assert_lanes_match(lanes, seq):
    """Every batch lane's counters equal its sequential run's, exactly."""
    for lane, ref in zip(lanes, seq):
        for name in (
            "ticks", "synaptic_events", "spikes", "deliveries",
            "neuron_updates", "messages", "membrane_saturations",
            "max_core_events_per_tick",
        ):
            assert getattr(lane, name) == getattr(ref, name), name
        assert np.array_equal(
            lane.synaptic_events_per_core, ref.synaptic_events_per_core
        )


def serving_workload(n_cores, *, stochastic):
    """A small serving-style model plus a pre-staged input schedule."""
    net = random_network(
        n_cores=n_cores, n_axons=32, n_neurons=32,
        connectivity=0.3, stochastic=stochastic, seed=8,
    )
    compiled = compile_network(net)
    ins = poisson_inputs(net, N_TICKS, 200.0, seed=4)
    staged_inputs(compiled, ins)  # warm the conversion cache for both sides
    return compiled, ins


def run_pair(compiled, ins):
    """Time 16 sequential sparse runs vs one 16-lane batched run."""
    start = time.perf_counter()
    seq = []
    for _ in range(B):
        sim = FastCompassSimulator(compiled)
        sim.load_inputs(ins)
        for _ in range(N_TICKS):
            sim.step()
        seq.append(sim.counters)
    t_seq = time.perf_counter() - start

    start = time.perf_counter()
    bat = BatchedCompassSimulator(compiled, B)
    bat.load_inputs(ins)
    for _ in range(N_TICKS):
        bat.step_arrays()
    t_bat = time.perf_counter() - start
    lanes = [bat.lane_counters(b) for b in range(B)]
    return seq, lanes, t_seq, t_bat


class TestBatchThroughput:
    def test_batched_deterministic_speedup(self, benchmark):
        # ISSUE 6 acceptance gate: >=3x aggregate ticks/sec at B=16.
        compiled, ins = serving_workload(4, stochastic=False)
        seq, lanes, t_seq, t_bat = benchmark.pedantic(
            run_pair, args=(compiled, ins), rounds=1, iterations=1
        )
        speedup = t_seq / t_bat
        emit(
            f"BATCH deterministic: {speedup:.1f}x aggregate throughput at "
            f"B={B} ({t_seq * 1e3:.0f} ms -> {t_bat * 1e3:.0f} ms over "
            f"{N_TICKS} ticks, {compiled.n_cores} cores)"
        )
        assert_lanes_match(lanes, seq)  # bit-identical per lane
        assert speedup >= 3.0

    def test_batched_stochastic_speedup(self, benchmark):
        # Stochastic lanes draw their PRNG streams per lane, so the
        # amortization is smaller; gate conservatively and report.
        compiled, ins = serving_workload(9, stochastic=True)
        seq, lanes, t_seq, t_bat = benchmark.pedantic(
            run_pair, args=(compiled, ins), rounds=1, iterations=1
        )
        speedup = t_seq / t_bat
        emit(
            f"BATCH stochastic: {speedup:.1f}x aggregate throughput at "
            f"B={B} ({t_seq * 1e3:.0f} ms -> {t_bat * 1e3:.0f} ms over "
            f"{N_TICKS} ticks, {compiled.n_cores} cores)"
        )
        assert_lanes_match(lanes, seq)
        assert speedup >= 2.0

    def test_batched_lane_ticks_accounted(self, benchmark):
        # Aggregate counters must report B * N_TICKS lane-ticks: the
        # quantity the ">=3x aggregate ticks/sec" claim is measured in.
        compiled, ins = serving_workload(4, stochastic=False)

        def run():
            sim = BatchedCompassSimulator(compiled, B)
            sim.load_inputs(ins)
            for _ in range(N_TICKS):
                sim.step_arrays()
            return sim.aggregate_counters()

        agg = benchmark(run)
        assert agg.ticks == B * N_TICKS
