"""SPARSE-ACT: activity-gated tick path vs the dense sparse tick.

The event-driven claim of the paper (and of ISSUE 7) quantified: on a
64k-neuron deterministic workload where at most a few percent of the
population receives synaptic input per tick, the gated
:class:`~repro.compass.fast.FastCompassSimulator` must deliver at least
2x the dense path's ticks/second while staying bit-identical — same
spikes, same logical counters, only ``active_neuron_updates`` shrinks.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.compass.compile import compile_network
from repro.compass.fast import FastCompassSimulator
from repro.core.inputs import InputSchedule
from repro.core.network import Core, Network

N_TICKS = 30
N_CORES = 256  # 256 cores x 256 neurons = 65,536 neurons
CORE_SIZE = 256
DRIVEN_CORES = 8  # external drive touches 8 axons on each of 8 cores
DRIVEN_AXONS = 8


@pytest.fixture(scope="module")
def sparse_workload():
    """A 64k-neuron zero-leak feedforward network plus its sparse drive.

    Every neuron is passive-stable (zero deterministic leak,
    deterministic threshold), so the gate's per-tick active set is
    exactly the externally driven cone — well under 5% of the
    population.
    """
    eye = np.eye(CORE_SIZE, dtype=bool)
    cores = [
        Core.build(
            CORE_SIZE, CORE_SIZE, crossbar=eye, weights=[2, 0, 0, 0],
            threshold=2, name=f"sparse{i}",
        )
        for i in range(N_CORES)
    ]
    net = Network(cores=cores, seed=7, name="sparse-activity-64k")
    ins = InputSchedule()
    for tick in range(N_TICKS):
        for core in range(DRIVEN_CORES):
            for axon in range(DRIVEN_AXONS):
                ins.add(tick, core, axon)
    return compile_network(net), ins


class TestActivityGating:
    def test_sparse_activity_gating_speedup(self, benchmark, sparse_workload):
        compiled, ins = sparse_workload

        def run_pair():
            start = time.perf_counter()
            dense = FastCompassSimulator(compiled, gated=False)
            dense.load_inputs(ins)
            for _ in range(N_TICKS):
                dense.step()
            t_dense = time.perf_counter() - start

            start = time.perf_counter()
            gated = FastCompassSimulator(compiled, gated=True)
            gated.load_inputs(ins)
            for _ in range(N_TICKS):
                gated.step()
            t_gated = time.perf_counter() - start
            return dense, gated, t_dense, t_gated

        dense, gated, t_dense, t_gated = benchmark.pedantic(
            run_pair, rounds=1, iterations=1
        )

        active_fraction = (
            gated.counters.active_neuron_updates / gated.counters.neuron_updates
        )
        speedup = t_dense / t_gated
        emit(
            f"SPARSE-ACT gating speedup: {speedup:.1f}x "
            f"({t_dense * 1e3:.0f} ms -> {t_gated * 1e3:.0f} ms over "
            f"{N_TICKS} ticks, {compiled.n_neurons} neurons, "
            f"{active_fraction:.2%} active)"
        )

        # The workload is genuinely sparse, and the gate is exact.
        assert active_fraction <= 0.05
        assert gated.counters.spikes == dense.counters.spikes > 0
        assert gated.counters.synaptic_events == dense.counters.synaptic_events
        assert gated.counters.membrane_saturations == dense.counters.membrane_saturations
        assert gated.counters.neuron_updates == dense.counters.neuron_updates
        np.testing.assert_array_equal(gated.v, dense.v)
        # ISSUE 7 acceptance: >=2x ticks/second at <=5% activity.
        assert speedup >= 2.0

    def test_sparse_activity_gated_tick(self, benchmark, sparse_workload):
        # The gated tick alone, for the regression baseline: medians of
        # this benchmark are compared run-over-run in CI (--match sparse).
        compiled, ins = sparse_workload

        def run():
            sim = FastCompassSimulator(compiled, gated=True)
            sim.load_inputs(ins)
            for _ in range(N_TICKS):
                sim.step()
            return sim.counters

        counters = benchmark(run)
        assert counters.ticks == N_TICKS
        assert counters.active_neuron_updates < counters.neuron_updates
