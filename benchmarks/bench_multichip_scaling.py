"""Multi-chip scaling bench: boundary traffic across the paper's boards.

Measures merge/split boundary-link traffic for the 4x1 and 4x4 board
geometries (Section VII-B/C) and evaluates the locality argument that
makes rack-scale tiling viable.
"""

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.apps.workloads import ANCHOR_A, ANCHOR_C
from repro.experiments.multichip import array_sweep, full_scale_link_load


class TestMultichipScaling:
    def test_board_sweep(self, benchmark):
        points = benchmark.pedantic(
            array_sweep, kwargs=dict(n_packets=250), rounds=1, iterations=1
        )
        rows = [
            [f"{p.chips_x}x{p.chips_y}", p.packets, float(p.total_hops),
             p.boundary_crossings, p.crossing_fraction,
             p.peak_link_utilization]
            for p in points
        ]
        emit(render_table(
            ["array", "packets", "hops", "crossings", "crossing frac",
             "peak link util"],
            rows, title="MULTICHIP: boundary traffic vs array size",
        ))
        frac = {(p.chips_x, p.chips_y): p.crossing_fraction for p in points}
        assert frac[(1, 1)] == 0.0
        assert frac[(4, 4)] > frac[(2, 1)]

    def test_full_scale_locality_argument(self, benchmark):
        def run():
            return {
                "A uniform": full_scale_link_load(ANCHOR_A, 4, 4),
                "C uniform": full_scale_link_load(ANCHOR_C, 4, 4),
                "C 5% long-range": full_scale_link_load(
                    ANCHOR_C, 4, 4, long_range_fraction=0.05
                ),
            }

        loads = benchmark(run)
        rows = [
            [name, load["per_link_load_per_tick"], load["link_utilization"],
             "yes" if load["saturated"] else "no"]
            for name, load in loads.items()
        ]
        emit(render_table(
            ["traffic", "pkts/link/tick", "utilization", "saturated"],
            rows, title="MULTICHIP: the locality argument (16-chip board)",
        ))
        assert not loads["A uniform"]["saturated"]
        assert loads["C uniform"]["saturated"]  # why locality matters
        assert not loads["C 5% long-range"]["saturated"]
