"""Compass-implementation scaling: this repository's own simulator.

The paper's Compass demonstrated "outstanding weak and strong scaling";
this bench measures the *Python* Compass expression's wall-clock
behaviour on this machine: tick throughput vs. simulated rank count
(more ranks add messaging overhead in-process — the communication
structure is simulated, the compute is shared), and the vectorized
Compass speedup over the scalar reference kernel.
"""

import time

import pytest

from benchmarks.conftest import emit
from repro.apps.recurrent import probabilistic_recurrent_network
from repro.compass.simulator import CompassSimulator
from repro.core.kernel import ReferenceKernel

N_TICKS = 15


@pytest.fixture(scope="module")
def network():
    return probabilistic_recurrent_network(
        120.0, 24, grid_side=4, neurons_per_core=64, coupling="balanced", seed=7
    )


class TestCompassImplementationScaling:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4, 8])
    def test_rank_sweep(self, benchmark, network, n_ranks):
        def run():
            sim = CompassSimulator(network, n_ranks=n_ranks)
            for _ in range(N_TICKS):
                sim.step()
            return sim

        sim = benchmark(run)
        emit(
            f"COMPASS-IMPL: {n_ranks} ranks: "
            f"{sim.mpi.messages_sent} aggregated messages, "
            f"{sim.counters.synaptic_events} synaptic events over {N_TICKS} ticks"
        )
        assert sim.counters.ticks == N_TICKS

    def test_vectorized_speedup_over_reference(self, benchmark):
        net = probabilistic_recurrent_network(
            120.0, 16, grid_side=2, neurons_per_core=32, coupling="balanced", seed=3
        )

        def timed(runner):
            start = time.perf_counter()
            runner()
            return time.perf_counter() - start

        def compass():
            sim = CompassSimulator(net)
            for _ in range(N_TICKS):
                sim.step()

        def reference():
            kernel = ReferenceKernel(net)
            for _ in range(N_TICKS):
                kernel.step()

        t_compass = min(timed(compass) for _ in range(3))
        t_reference = timed(reference)
        speedup = t_reference / t_compass
        benchmark(compass)
        emit(
            f"COMPASS-IMPL: vectorized Compass is {speedup:.1f}x faster than "
            f"the scalar reference kernel ({t_reference * 1e3:.0f} ms vs "
            f"{t_compass * 1e3:.0f} ms for {N_TICKS} ticks of 4 cores x 32 neurons)"
        )
        # identical function was proven elsewhere; here we check the
        # optimization actually pays (guides: measure, don't guess)
        assert speedup > 3.0
