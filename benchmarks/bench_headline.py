"""TAB1: the paper's headline operating points (abstract + Section VI-B).

* 65 mW total power, 46 GSOPS/W at 20 Hz x 128 synapses, real time;
* 81 GSOPS/W running that network ~5x faster;
* >400 GSOPS/W at 200 Hz x 256 synapses;
* ~20 mW/cm^2 power density (vs ~100 W/cm^2 for a modern CPU);
* measurement-pipeline emulation within the instrument's 3% calibration.
"""

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.experiments import fig5
from repro.hardware.energy import EnergyModel
from repro.hardware.power import measure_power


class TestHeadline:
    def test_headline_operating_points(self, benchmark):
        h = benchmark(fig5.headline_points)
        rows = [
            ["power @20Hz/128syn (mW)", h["power_mw_20hz_128syn"], "65 mW"],
            ["GSOPS/W real time", h["gsops_per_watt_real_time"], "46"],
            ["GSOPS/W at 5x", h["gsops_per_watt_5x"], "81"],
            ["GSOPS/W @200Hz/256syn", h["gsops_per_watt_200hz_256syn"], ">400"],
            ["power density (mW/cm^2)", h["power_density_mw_per_cm2"], "~20"],
        ]
        emit(render_table(["metric", "measured", "paper"], rows,
                          title="TAB1: headline operating points"))
        assert 50 <= h["power_mw_20hz_128syn"] <= 70
        assert 43 <= h["gsops_per_watt_real_time"] <= 50
        assert 76 <= h["gsops_per_watt_5x"] <= 86
        assert h["gsops_per_watt_200hz_256syn"] > 400
        assert h["power_density_mw_per_cm2"] < 50

    def test_measured_power_through_adc_pipeline(self, benchmark):
        model = EnergyModel()
        counts = model.workload_counts_per_tick(20.0, 128.0)
        active = model.active_energy_per_tick_j(
            counts["synaptic_events"], counts["neuron_updates"],
            counts["spikes"], counts["hops"],
        )
        meas = benchmark(
            measure_power, active, model.passive_power_w, 1000
        )
        true_power = active * 1000.0 + model.passive_power_w
        emit(
            f"TAB1: ADC-pipeline measured power = {meas.mean_power_w * 1e3:.1f} mW "
            f"(model truth {true_power * 1e3:.1f} mW, "
            f"{meas.n_samples} samples over {meas.n_ticks_averaged} ticks)"
        )
        assert abs(meas.mean_power_w - true_power) / true_power < 0.03
