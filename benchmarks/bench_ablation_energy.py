"""Ablation: event-driven operation and the energy budget composition.

Quantifies the paper's central architectural claim — "cores are
event-driven, which results in active power proportional to firing
activity" — by comparing against a hypothetical always-on design, and
breaks the per-tick energy into its components across the workload
space.
"""

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.experiments.ablation_energy import (
    energy_breakdown,
    event_driven_vs_always_on,
)


class TestEnergyAblation:
    def test_event_driven_advantage(self, benchmark):
        def run():
            return {
                (r, k): event_driven_vs_always_on(r, k)
                for r, k in ((5.0, 32.0), (20.0, 128.0), (200.0, 256.0))
            }

        results = benchmark(run)
        rows = [
            [f"{r:g}Hz x {k:g}", v["event_driven_uj"], v["always_on_uj"],
             v["advantage"], v["synaptic_advantage"]]
            for (r, k), v in results.items()
        ]
        emit(render_table(
            ["workload", "event-driven uJ/tick", "always-on uJ/tick",
             "total advantage", "synaptic advantage"],
            rows, title="ABLATION: event-driven vs always-on synapse evaluation",
        ))
        # The synaptic term event-driven operation eliminates scales as
        # 1/activity: ~1600x at sparse rates, ~5x when nearly saturated.
        advantages = [v["synaptic_advantage"] for v in results.values()]
        assert advantages[0] > advantages[-1]
        assert advantages[0] > 500
        # Total advantage is bounded by the shared fixed floor but still
        # favours event-driven everywhere.
        assert all(v["advantage"] > 1 for v in results.values())

    def test_energy_budget_composition(self, benchmark):
        def run():
            return {
                (r, k): energy_breakdown(r, k)
                for r, k in ((5.0, 32.0), (20.0, 128.0), (200.0, 256.0))
            }

        results = benchmark(run)
        rows = [
            [f"{r:g}Hz x {k:g}", v["total_uj"], v["passive_fraction"],
             v["neuron_sweep_fraction"], v["synaptic_events_fraction"],
             v["spike_routing_fraction"]]
            for (r, k), v in results.items()
        ]
        emit(render_table(
            ["workload", "uJ/tick", "passive", "neuron sweep",
             "syn events", "routing"],
            rows, title="ABLATION: per-tick energy composition at 0.75 V",
        ))
        light = results[(5.0, 32.0)]
        heavy = results[(200.0, 256.0)]
        # fixed costs dominate when idle; synaptic events take over when busy
        assert light["passive_fraction"] + light["neuron_sweep_fraction"] > 0.9
        assert heavy["synaptic_events_fraction"] > 0.4
        # routing is always a small slice (the paper's sparse-comms claim)
        assert all(v["spike_routing_fraction"] < 0.1 for v in results.values())
