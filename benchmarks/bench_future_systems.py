"""TAB2: future large-scale systems (paper Section VII).

The 16-chip board power breakdown, the tier capacity table, and the
rat-scale (6,400x) and 1%-human-scale (128,000x) energy-to-solution
projections.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.experiments import future_systems


class TestTab2:
    def test_16_chip_board_power(self, benchmark):
        board = future_systems.BoardModel()
        total = benchmark(board.total_power_w)
        emit(
            f"TAB2: 16-chip board: array {board.array_power_w():.2f} W "
            f"(paper: 2.5 W) + support {board.support_power_w:.1f} W "
            f"= {total:.2f} W total (paper: 7.2 W); "
            f"{board.n_neurons / 1e6:.0f}M neurons, "
            f"{board.n_synapses / 1e9:.0f}B synapses"
        )
        assert total == pytest.approx(7.2, rel=0.15)
        assert board.n_neurons == 16 * 2**20

    def test_tier_capacity_table(self, benchmark):
        rows_data = benchmark(future_systems.tier_table)
        rows = [
            [r["tier"], r["chips"], float(r["neurons"]), float(r["synapses"]),
             r["power_w"], r["synapses_per_watt"]]
            for r in rows_data
        ]
        emit(render_table(
            ["tier", "chips", "neurons", "synapses", "power (W)", "synapses/W"],
            rows, title="TAB2: projected system tiers (paper Fig. 1(h-j), Section VII)",
        ))
        rack = [r for r in rows_data if r["tier"] == "rack"][0]
        assert rack["chips"] == 4096 and rack["power_w"] == 4000

    def test_rat_scale_projection(self, benchmark):
        ratio = benchmark(future_systems.rat_scale_energy_ratio)
        emit(f"TAB2: rat-scale energy-to-solution ratio = {ratio:.0f}x (paper: 6,400x)")
        assert ratio == pytest.approx(6400, rel=0.02)

    def test_human1pct_projection(self, benchmark):
        ratio = benchmark(future_systems.human1pct_energy_ratio)
        emit(
            f"TAB2: 1%-human-scale energy-to-solution ratio = {ratio:.0f}x "
            "(paper: 128,000x)"
        )
        assert ratio == pytest.approx(128_000, rel=0.02)

    def test_human_scale_synapse_count(self, benchmark):
        h = benchmark(future_systems.human_scale_system)
        emit(
            f"TAB2: human-scale system: {h['racks']} racks, {h['n_chips']} chips, "
            f"{h['n_synapses']:.2e} synapses (paper: 100 trillion), "
            f"{h['power_w'] / 1e3:.0f} kW"
        )
        assert h["n_synapses"] >= 1e14
