"""FIG5: TrueNorth characterization contours (paper Fig. 5(a)-(f)).

Regenerates all six panels from the calibrated models, prints them as
ASCII contours, and validates the analytic grid against an actually
simulated recurrent network (scaled, per DESIGN.md substitution #5).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import render_contour
from repro.experiments import fig5


class TestFig5Panels:
    def test_fig5a_gsops(self, benchmark):
        grid = benchmark(fig5.fig5a_gsops)
        emit(render_contour(grid, log_scale=False))
        assert grid.corner(True, True) == pytest.approx(200 * 256 * 2**20 / 1e9)
        assert grid.monotone_rows() and grid.monotone_cols()

    def test_fig5b_max_frequency(self, benchmark):
        grid = benchmark(fig5.fig5b_max_frequency)
        emit(render_contour(grid))
        # Faster-than-real-time when load is light; ~1 kHz headroom at the
        # heavy corner (paper Fig. 5(b)).
        assert grid.corner(False, False) > 5.0
        assert grid.corner(True, True) >= 1.0

    def test_fig5c_frequency_vs_voltage(self, benchmark):
        grid = benchmark(fig5.fig5c_frequency_vs_voltage)
        emit(render_contour(grid))
        # Maximum execution speed increases with voltage (paper Fig. 5(c)).
        assert grid.monotone_rows(increasing=True)

    def test_fig5d_energy_per_tick(self, benchmark):
        grid = benchmark(fig5.fig5d_energy_per_tick)
        emit(render_contour(grid))
        assert grid.monotone_rows() and grid.monotone_cols()

    def test_fig5e_efficiency(self, benchmark):
        grid = benchmark(fig5.fig5e_efficiency)
        emit(render_contour(grid))
        # A large fraction of the design space exceeds 100 GSOPS/W.
        frac_above_100 = (grid.values > 100.0).mean()
        assert frac_above_100 > 0.3
        assert grid.corner(True, True) > 400.0

    def test_fig5f_efficiency_vs_voltage(self, benchmark):
        grid = benchmark(fig5.fig5f_efficiency_vs_voltage)
        emit(render_contour(grid))
        # SOPS/W is maximized at lower voltages (paper Fig. 5(f)).
        assert grid.monotone_rows(increasing=False)


class TestFig5EmpiricalValidation:
    def test_simulated_network_matches_analytic_grid(self, benchmark):
        result = benchmark.pedantic(
            fig5.empirical_validation,
            kwargs=dict(rate_hz=100.0, active_synapses=8, grid_side=3,
                        neurons_per_core=32, n_ticks=120),
            rounds=1, iterations=1,
        )
        emit(
            "FIG5 empirical validation (simulated vs analytic, per tick):\n"
            f"  syn events: {result['measured_syn_events_per_tick']:.1f} vs "
            f"{result['analytic_syn_events_per_tick']:.1f}\n"
            f"  spikes:     {result['measured_spikes_per_tick']:.1f} vs "
            f"{result['analytic_spikes_per_tick']:.1f}\n"
            f"  rate:       {result['measured_rate_hz']:.1f} Hz vs "
            f"{result['target_rate_hz']:.1f} Hz target"
        )
        assert result["measured_syn_events_per_tick"] == pytest.approx(
            result["analytic_syn_events_per_tick"], rel=0.2
        )
