"""OBS: overhead guard for disabled instrumentation.

The obs layer promises near-zero cost when no observer is attached —
every instrumented site reduces to one ``is not None`` / ``.active``
check per tick (see :func:`repro.obs.observer.active_observer`).  This
benchmark holds that promise to a budget: the sparse engine with a
disabled observer attached must stay within 5% of the bare engine
(with a small absolute floor so micro-jitter on near-millisecond runs
cannot trip the gate).
"""

import time

from benchmarks.conftest import emit
from repro.apps.recurrent import probabilistic_recurrent_network
from repro.compass.fast import FastCompassSimulator
from repro.obs import Observer

N_TICKS = 200
ROUNDS = 7
#: Relative overhead budget for disabled instrumentation (ISSUE 4).
MAX_OVERHEAD = 0.05
#: Absolute slack (seconds): below this delta the ratio is noise.
ABS_SLACK_S = 0.002


def _network():
    return probabilistic_recurrent_network(
        100.0, 32, grid_side=4, neurons_per_core=64, coupling="balanced", seed=5
    )


def _run_once(network, obs):
    sim = FastCompassSimulator(network, obs=obs)
    start = time.perf_counter()
    for _ in range(N_TICKS):
        sim.step()
    return time.perf_counter() - start


class TestDisabledObsOverhead:
    def test_disabled_observer_within_budget(self):
        network = _network()
        disabled = Observer(enabled=False)
        bare_s = obs_s = float("inf")
        # Interleave the two variants and take the minimum per variant:
        # min-of-N is the standard noise filter for micro-benchmarks.
        for _ in range(ROUNDS):
            bare_s = min(bare_s, _run_once(network, None))
            obs_s = min(obs_s, _run_once(network, disabled))
        overhead = obs_s / bare_s - 1.0
        emit(
            f"OBS overhead: bare {bare_s * 1e3:.2f} ms, disabled-obs "
            f"{obs_s * 1e3:.2f} ms over {N_TICKS} ticks "
            f"({overhead * +100:.2f}% overhead)"
        )
        assert obs_s - bare_s <= ABS_SLACK_S or overhead <= MAX_OVERHEAD, (
            f"disabled instrumentation costs {overhead * 100:.1f}% "
            f"(> {MAX_OVERHEAD * 100:.0f}% budget)"
        )
