"""SANITIZE: overhead guard for the disabled race detector.

The sanitizer promises zero tick-path cost when off — with
``sanitize=False`` (or unset, no ``REPRO_SANITIZE``) the engines build
no recorder and no shadow views, so the hot loop is byte-for-byte the
normal one; the only residue is a handful of ``is not None`` checks.
This benchmark holds that promise to the same budget as the obs gate:
the parallel engine constructed with an explicit ``sanitize=False``
must stay within 5% of the engine with the kwarg never mentioned (with
an absolute floor so worker spawn jitter on near-millisecond runs
cannot trip the gate).

Enabled-mode cost is reported informationally — shadow recording is a
debug tool and carries no budget.
"""

import time

from benchmarks.conftest import emit
from repro.apps.recurrent import probabilistic_recurrent_network
from repro.compass.parallel import ParallelCompassSimulator

N_TICKS = 150
ROUNDS = 7
#: Relative overhead budget for the disabled sanitizer (ISSUE 8).
MAX_OVERHEAD = 0.05
#: Absolute slack (seconds): worker spawn/teardown jitter floor.
ABS_SLACK_S = 0.025


def _network():
    return probabilistic_recurrent_network(
        100.0, 32, grid_side=4, neurons_per_core=64, coupling="balanced", seed=5
    )


def _run_once(network, sanitize):
    sim = ParallelCompassSimulator(network, n_workers=2, sanitize=sanitize)
    start = time.perf_counter()
    sim.run(N_TICKS)
    return time.perf_counter() - start


class TestDisabledSanitizeOverhead:
    def test_disabled_sanitizer_within_budget(self):
        network = _network()
        bare_s = off_s = float("inf")
        # Interleave the two variants and take the minimum per variant:
        # min-of-N is the standard noise filter for micro-benchmarks.
        for _ in range(ROUNDS):
            bare_s = min(bare_s, _run_once(network, None))
            off_s = min(off_s, _run_once(network, False))
        overhead = off_s / bare_s - 1.0
        emit(
            f"SANITIZE overhead: bare {bare_s * 1e3:.2f} ms, sanitize=False "
            f"{off_s * 1e3:.2f} ms over {N_TICKS} ticks "
            f"({overhead * +100:.2f}% overhead)"
        )
        assert off_s - bare_s <= ABS_SLACK_S or overhead <= MAX_OVERHEAD, (
            f"disabled sanitizer costs {overhead * 100:.1f}% "
            f"(> {MAX_OVERHEAD * 100:.0f}% budget)"
        )

    def test_enabled_sanitizer_reported(self):
        network = _network()
        bare_s = on_s = float("inf")
        for _ in range(3):
            bare_s = min(bare_s, _run_once(network, None))
            on_s = min(on_s, _run_once(network, True))
        emit(
            f"SANITIZE enabled-mode cost: bare {bare_s * 1e3:.2f} ms, "
            f"sanitize=True {on_s * 1e3:.2f} ms over {N_TICKS} ticks "
            f"({on_s / bare_s:.2f}x; informational, no budget)"
        )
        assert on_s > 0
