"""PAR: parallel-engine scaling — the multi-worker speedup, measured.

The shared-memory partitioned engine exists to beat the single-process
sparse path on large workloads (paper Fig. 8: Compass's strong scaling
across BG/Q ranks).  This module measures exactly that claim on a
>=128-core recurrent workload and asserts the >=2x win with 4 workers,
plus the crossover behaviour that grounds the ``engine="auto"``
thresholds (:data:`repro.compass.parallel.AUTO_MIN_NEURONS`).

The speedup assertion needs real CPUs to share the work: on hosts with
fewer than 4 usable cores the workers serialize and the measurement
would say nothing about the engine, so it is skipped there (the
bit-identity checks always run).
"""

import time

import pytest

from benchmarks.conftest import emit
from repro.apps.recurrent import probabilistic_recurrent_network
from repro.compass.compile import compile_network
from repro.compass.fast import FastCompassSimulator
from repro.compass.parallel import (
    AUTO_MIN_NEURONS,
    ParallelCompassSimulator,
    _usable_cpus,
    auto_workers,
)

N_TICKS = 20


@pytest.fixture(scope="module")
def large_network():
    # 144 cores x 64 neurons = 9216 neurons: above AUTO_MIN_NEURONS and
    # comfortably past the >=128-core acceptance bar.
    net = probabilistic_recurrent_network(
        100.0, 32, grid_side=12, neurons_per_core=64, coupling="balanced", seed=5
    )
    assert net.n_cores >= 128
    return net


def _ticks_per_second(sim, n_ticks: int) -> float:
    start = time.perf_counter()
    for _ in range(n_ticks):
        sim.step_arrays()
    return n_ticks / (time.perf_counter() - start)


class TestParallelScaling:
    def test_parallel_matches_fast_on_large_workload(self, benchmark, large_network):
        # Bit-identity on the benchmark workload itself, so the timing
        # comparison below compares equal computations.
        compiled = compile_network(large_network)

        def run_pair():
            fast = FastCompassSimulator(compiled)
            par = ParallelCompassSimulator(compiled, n_workers=4)
            try:
                for _ in range(5):
                    tick_f, cores_f, neurons_f = fast.step_arrays()
                    tick_p, cores_p, neurons_p = par.step_arrays()
                    assert tick_f == tick_p
                    assert (cores_f == cores_p).all()
                    assert (neurons_f == neurons_p).all()
            finally:
                par.close()
            return fast.counters, par.counters

        fast_c, par_c = benchmark.pedantic(run_pair, rounds=1, iterations=1)
        assert fast_c.spikes == par_c.spikes
        assert fast_c.synaptic_events == par_c.synaptic_events

    @pytest.mark.skipif(
        _usable_cpus() < 4,
        reason="speedup needs >=4 usable CPUs; workers would serialize here",
    )
    def test_parallel_speedup_on_many_cores(self, benchmark, large_network):
        # The tentpole claim: >=2x faster than the single-process sparse
        # engine with 4 workers on a >=128-core workload.
        compiled = compile_network(large_network)

        def run_pair():
            fast = FastCompassSimulator(compiled)
            tps_fast = _ticks_per_second(fast, N_TICKS)
            par = ParallelCompassSimulator(compiled, n_workers=4)
            try:
                par.step_arrays()  # spawn + warm the pool off the clock
                tps_par = _ticks_per_second(par, N_TICKS)
            finally:
                par.close()
            return tps_fast, tps_par

        tps_fast, tps_par = benchmark.pedantic(run_pair, rounds=1, iterations=1)
        speedup = tps_par / tps_fast
        emit(
            f"PAR speedup: {speedup:.2f}x with 4 workers on "
            f"{large_network.n_cores} cores ({tps_fast:.0f} -> {tps_par:.0f} "
            f"ticks/s, {_usable_cpus()} usable CPUs)"
        )
        assert speedup >= 2.0

    def test_auto_threshold_crossover(self, benchmark):
        # Measure fast vs parallel per-tick cost across sizes: the data
        # behind AUTO_MIN_NEURONS.  Pure measurement — the auto policy
        # itself is asserted below and in the unit suite.
        def run_sweep():
            rows = []
            for grid in (4, 8, 12):
                net = probabilistic_recurrent_network(
                    100.0, 32, grid_side=grid, neurons_per_core=64,
                    coupling="balanced", seed=5,
                )
                compiled = compile_network(net)
                fast_tps = _ticks_per_second(FastCompassSimulator(compiled), 10)
                par = ParallelCompassSimulator(compiled, n_workers=4)
                try:
                    par.step_arrays()
                    par_tps = _ticks_per_second(par, 10)
                finally:
                    par.close()
                rows.append((net.n_cores, net.n_neurons, fast_tps, par_tps))
            return rows

        rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
        lines = [
            f"  {cores:4d} cores {neurons:5d} neurons: "
            f"fast {f_tps:8.0f} ticks/s  parallel(4w) {p_tps:8.0f} ticks/s"
            for cores, neurons, f_tps, p_tps in rows
        ]
        emit("PAR crossover (grounds AUTO_MIN_NEURONS):\n" + "\n".join(lines))

    def test_small_network_latency_guarded_by_auto(self, benchmark):
        # <=16-core latency must not regress: "auto" keeps such networks
        # on the single-process path (1024 neurons < AUTO_MIN_NEURONS),
        # so their per-tick cost is exactly the sparse engine's.
        net = probabilistic_recurrent_network(
            100.0, 32, grid_side=4, neurons_per_core=64,
            coupling="balanced", seed=5,
        )
        assert net.n_cores <= 16
        assert net.n_neurons < AUTO_MIN_NEURONS
        assert auto_workers(net) == 1
        compiled = compile_network(net)

        def run():
            sim = FastCompassSimulator(compiled)
            for _ in range(N_TICKS):
                sim.step_arrays()
            return sim.counters

        counters = benchmark(run)
        emit(
            f"PAR small-net guard: {net.n_cores} cores stay single-process "
            f"under auto ({counters.synaptic_events} synaptic events / "
            f"{N_TICKS} ticks)"
        )
        assert counters.ticks == N_TICKS
