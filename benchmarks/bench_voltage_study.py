"""Voltage operating-point bench: the DVFS consequence of Fig. 5(c,f).

For each workload, find the minimum feasible supply voltage at real
time and report the energy saved vs. nominal and maximum supplies —
the quantitative version of "SOPS/W is maximized at lower voltages,
limited only by the minimum voltage that can still ensure correct
operation".
"""

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.apps.workloads import ANCHOR_A, ANCHOR_C, characterization_workload
from repro.experiments.voltage import voltage_study


class TestVoltageStudy:
    def test_operating_point_table(self, benchmark):
        workloads = [
            ANCHOR_A,
            characterization_workload(100.0, 128.0),
            ANCHOR_C,
            characterization_workload(1000.0, 256.0),  # absolute worst case
        ]
        rows_data = benchmark(voltage_study, workloads)
        rows = [
            [r["workload"], r["optimal_voltage"], r["optimal_gsops_per_watt"],
             r["nominal_gsops_per_watt"], r["saving_vs_nominal"], r["saving_vs_max"]]
            for r in rows_data if r["feasible"]
        ]
        emit(render_table(
            ["workload", "V_min", "GSOPS/W @V_min", "GSOPS/W @0.75V",
             "saving vs 0.75V", "saving vs 1.05V"],
            rows, title="VOLTAGE: minimum-energy operating points at real time",
        ))
        assert all(r["feasible"] for r in rows_data)
        # light loads close timing at the functional floor; the worst
        # case needs a higher supply (Fig. 5(c) shape)
        voltages = [r["optimal_voltage"] for r in rows_data]
        assert voltages[0] < voltages[-1]
        # energy saving vs. the maximum supply is substantial everywhere
        assert all(r["saving_vs_max"] > 0.3 for r in rows_data)
