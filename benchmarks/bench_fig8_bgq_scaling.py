"""FIG8: Compass strong scaling on BG/Q for Neovision (paper Fig. 8).

Run time (s/tick) vs power over hosts x threads, with the x86
reference curve; asserts the paper's two headline observations.
"""

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.experiments import fig8


class TestFig8:
    def test_bgq_grid(self, benchmark):
        points = benchmark(fig8.fig8_bgq_points)
        rows = [
            [p.hosts, p.threads, p.time_per_tick_s, p.power_w,
             p.power_per_spike_w * 1e6]
            for p in points
        ]
        emit(render_table(
            ["hosts", "threads", "s/tick", "power (W)", "uW/spike"],
            rows, title="FIG8: Neovision on BG/Q (strong scaling)",
        ))
        # more hosts at fixed threads is always faster
        by_threads = {}
        for p in points:
            by_threads.setdefault(p.threads, []).append((p.hosts, p.time_per_tick_s))
        for series in by_threads.values():
            series.sort()
            times = [t for _, t in series]
            assert times == sorted(times, reverse=True)

    def test_best_point_12x_slower_than_real_time(self, benchmark):
        summary = benchmark(fig8.fig8_summary)
        emit(
            "FIG8 summary: best BG/Q point "
            f"{summary['best_hosts']} hosts x {summary['best_threads']} threads = "
            f"{summary['best_slowdown_vs_real_time']:.1f}x slower than real time "
            "(paper: ~12x)"
        )
        assert 8 <= summary["best_slowdown_vs_real_time"] <= 16
        # "a single host is the most power-efficient but slowest; 32
        # hosts is the fastest but requires more power"
        assert summary["most_efficient_hosts"] == 1
        assert summary["best_hosts"] == 32

    def test_x86_reference_curve(self, benchmark):
        points = benchmark(fig8.fig8_x86_points)
        rows = [[p.threads, p.time_per_tick_s, p.power_w] for p in points]
        emit(render_table(
            ["threads", "s/tick", "power (W)"], rows,
            title="FIG8: x86 reference curve (1 host)",
        ))
        assert points[-1].time_per_tick_s < points[0].time_per_tick_s
