"""FIG7: five vision applications, TrueNorth vs Compass (paper Fig. 7).

(a) speedup vs power-improvement points per application/platform;
(b) energy-improvement bars.  The applications are Neovision, Haar,
LBP, Saccade, Saliency at the paper's full-scale network statistics
(Section IV-B).
"""

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.experiments import fig7


class TestFig7:
    def test_fig7a_speedup_vs_power(self, benchmark):
        points = benchmark(fig7.fig7_points)
        rows = [
            [p.app, p.platform, p.speedup, p.power_improvement, p.energy_improvement]
            for p in points
        ]
        emit(render_table(
            ["application", "platform", "speedup", "x power", "x energy"],
            rows, title="FIG7(a): TrueNorth vs Compass on five vision applications",
        ))
        bgq = [p for p in points if p.platform == "BG/Q"]
        x86 = [p for p in points if p.platform == "x86"]
        # "speedup of one and two orders of magnitude, respectively"
        assert all(5 <= p.speedup for p in bgq)
        assert all(20 <= p.speedup for p in x86)
        # "four and three orders of magnitude less power, respectively"
        assert all(1e4 <= p.power_improvement < 1e5 for p in bgq)
        assert all(1e3 <= p.power_improvement < 1e4 for p in x86)

    def test_fig7b_energy_bars(self, benchmark):
        bars = benchmark(fig7.fig7b_energy_bars)
        rows = [[app, platform, v] for (app, platform), v in sorted(bars.items())]
        emit(render_table(
            ["application", "platform", "x energy improvement"], rows,
            title="FIG7(b): energy improvement per application",
        ))
        # "over five orders of magnitude less energy per time step"
        assert min(bars.values()) > 1e5

    def test_fig7_consistent_with_fig6(self, benchmark):
        # "These speedups and energy improvements are in line with those
        # of the probabilistically-generated recurrent networks" (paper).
        summary = benchmark(fig7.fig7_summary)
        assert summary["min_energy_improvement"] > 1e5
        assert summary["bgq_speedup_range"][1] < 100
        assert summary["x86_speedup_range"][1] < 1000
