"""CHECKPOINT: overhead guard for periodic engine snapshots.

Periodic checkpointing (ISSUE 10) is meant to run in production: long
streaming sessions capture an :class:`~repro.io.checkpoint.EngineCheckpoint`
every ``checkpoint_every`` ticks so a crash resumes from the last good
tick instead of tick 0.  This benchmark holds the promised budget on
the paper-scale workload — the 64k-neuron activity-gated network from
``bench_sparse_activity.py`` — by gating the *amortized* cost of
snapshot-and-save at <= 5% at the production ``checkpoint_every=1000``
cadence (with a small absolute floor so micro-jitter cannot trip the
gate).  Two engine-side costs keep this honest: the model digest is
memoized on the network (one sha-256 walk per model, not per
snapshot), and the container bit-packs the delivery ring and skips
zlib — at this scale the compression pass costs more wall time than
the whole snapshot it would shrink.

The ``benchmark``-fixture test feeds the regression gate: its median
lands in ``BENCH_kernel.json`` under a name containing ``checkpoint``
and is compared against the committed baseline by ``check_regression.py``.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.compass.compile import compile_network
from repro.compass.fast import FastCompassSimulator
from repro.core.inputs import InputSchedule
from repro.core.network import Core, Network
from repro.io.checkpoint import EngineCheckpoint

N_TICKS = 1000
ROUNDS = 5
N_CORES = 256  # 256 cores x 256 neurons = 65,536 neurons
CORE_SIZE = 256
DRIVEN_CORES = 8
DRIVEN_AXONS = 8
#: Snapshot cadence under test: the production default of ISSUE 10.
CHECKPOINT_EVERY = 1000
#: Relative overhead budget for periodic checkpointing (ISSUE 10).
MAX_OVERHEAD = 0.05
#: Absolute slack (seconds): below this delta the ratio is noise.
ABS_SLACK_S = 0.002


@pytest.fixture(scope="module")
def checkpoint_workload():
    """The 64k-neuron sparse workload from ``bench_sparse_activity``."""
    eye = np.eye(CORE_SIZE, dtype=bool)
    cores = [
        Core.build(
            CORE_SIZE, CORE_SIZE, crossbar=eye, weights=[2, 0, 0, 0],
            threshold=2, name=f"ckpt{i}",
        )
        for i in range(N_CORES)
    ]
    net = Network(cores=cores, seed=7, name="checkpoint-overhead-64k")
    ins = InputSchedule()
    for tick in range(N_TICKS):
        for core in range(DRIVEN_CORES):
            for axon in range(DRIVEN_AXONS):
                ins.add(tick, core, axon)
    return compile_network(net), ins


def _run_once(compiled, ins):
    """One plain N_TICKS gated run; returns its wall seconds."""
    sim = FastCompassSimulator(compiled, gated=True)
    sim.load_inputs(ins)
    start = time.perf_counter()
    for _ in range(N_TICKS):
        sim.step()
    return time.perf_counter() - start, sim


class TestCheckpointOverhead:
    def test_periodic_checkpoints_within_budget(self, checkpoint_workload,
                                                tmp_path):
        # The amortized budget: one snapshot+save per CHECKPOINT_EVERY
        # ticks must cost <= 5% of what those ticks cost to simulate.
        # The snapshot cost is measured *directly* (median of ROUNDS
        # captures) rather than by differencing two full-loop timings —
        # at ~2% true overhead the difference of two ~200 ms runs is
        # dominated by scheduler noise, the direct measurement is not.
        compiled, ins = checkpoint_workload
        base_times, ckpt_times = [], []
        sim = None
        for r in range(ROUNDS):
            base_s, sim = _run_once(compiled, ins)
            base_times.append(base_s)
            if r == 0:
                sim.snapshot()  # warm the memoized model digest
            start = time.perf_counter()
            n_bytes = sim.snapshot().save(
                os.path.join(str(tmp_path), f"ckpt-{r}.npz")
            )
            ckpt_times.append(time.perf_counter() - start)
        base_s = float(np.median(base_times))
        ckpt_s = float(np.median(ckpt_times))
        overhead = ckpt_s / base_s
        emit(
            f"CHECKPOINT overhead: {N_TICKS} gated ticks on 64k neurons "
            f"{base_s * 1e3:.2f} ms, snapshot+save {ckpt_s * 1e3:.2f} ms "
            f"({n_bytes} bytes) -> {overhead * 100:.2f}% amortized at "
            f"every-{CHECKPOINT_EVERY} cadence"
        )
        assert len(list(tmp_path.iterdir())) == ROUNDS
        assert ckpt_s <= ABS_SLACK_S or overhead <= MAX_OVERHEAD, (
            f"periodic checkpointing costs {overhead * 100:.1f}% "
            f"(> {MAX_OVERHEAD * 100:.0f}% budget)"
        )

    def test_checkpoint_snapshot_cost(self, benchmark, checkpoint_workload):
        # Regression-gated absolute cost of one snapshot + container
        # encode on the 64k-neuron engine (name contains "checkpoint"
        # for check_regression --match checkpoint).
        compiled, ins = checkpoint_workload
        sim = FastCompassSimulator(compiled, gated=True)
        sim.load_inputs(ins)
        for _ in range(CHECKPOINT_EVERY):
            sim.step()

        def snapshot_and_encode():
            return sim.snapshot().to_bytes()

        blob = benchmark.pedantic(snapshot_and_encode, rounds=5, iterations=1)
        ckpt = EngineCheckpoint.from_bytes(blob)
        assert ckpt.tick == CHECKPOINT_EVERY
        assert ckpt.v.size == N_CORES * CORE_SIZE
        emit(
            f"CHECKPOINT container: {len(blob)} bytes for "
            f"{N_CORES * CORE_SIZE} neurons at tick {ckpt.tick} "
            f"({len(blob) / (N_CORES * CORE_SIZE):.2f} B/neuron)"
        )
