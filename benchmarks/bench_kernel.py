"""KERN: kernel micro-benchmarks — simulator throughput per expression.

Measures wall-clock ticks/second and synaptic events/second of the
Compass (vectorized) and TrueNorth (event-driven) expressions, plus the
scalar reference kernel, on the same recurrent workload.  These numbers
are this repository's own "Compass on a workstation" datapoints.
"""

import pytest

from benchmarks.conftest import emit
from repro.apps.recurrent import probabilistic_recurrent_network
from repro.compass.fast import FastCompassSimulator
from repro.compass.simulator import CompassSimulator
from repro.core.kernel import ReferenceKernel
from repro.hardware.simulator import TrueNorthSimulator

N_TICKS = 20


@pytest.fixture(scope="module")
def workload_network():
    return probabilistic_recurrent_network(
        100.0, 32, grid_side=4, neurons_per_core=64, coupling="balanced", seed=5
    )


class TestKernelThroughput:
    def test_compass_tick_throughput(self, benchmark, workload_network):
        def run():
            sim = CompassSimulator(workload_network, n_ranks=1)
            for _ in range(N_TICKS):
                sim.step()
            return sim.counters

        counters = benchmark(run)
        emit(
            f"KERN compass: {counters.synaptic_events} synaptic events / "
            f"{N_TICKS} ticks on {workload_network.n_cores} cores"
        )
        assert counters.ticks == N_TICKS

    def test_compass_multirank_overhead(self, benchmark, workload_network):
        def run():
            sim = CompassSimulator(workload_network, n_ranks=8)
            for _ in range(N_TICKS):
                sim.step()
            return sim.counters

        counters = benchmark(run)
        assert counters.messages > 0

    def test_truenorth_tick_throughput(self, benchmark, workload_network):
        def run():
            sim = TrueNorthSimulator(workload_network)
            for _ in range(N_TICKS):
                sim.step()
            return sim.counters

        counters = benchmark(run)
        emit(
            f"KERN truenorth: {counters.hops} hops routed over {N_TICKS} ticks"
        )
        assert counters.ticks == N_TICKS

    def test_fast_compass_throughput(self, benchmark):
        # FastCompass requires deterministic networks: zero-coupling
        # workloads exercise the same event volume without stochastic
        # modes... but zero-coupling uses stochastic leak, so build a
        # deterministic driven network instead.
        from repro.core.builders import poisson_inputs, random_network

        net = random_network(
            n_cores=16, n_axons=64, n_neurons=64, connectivity=0.3, seed=8
        )
        ins = poisson_inputs(net, N_TICKS, 200.0, seed=4)

        def run():
            sim = FastCompassSimulator(net)
            sim.load_inputs(ins)
            for _ in range(N_TICKS):
                sim.step()
            return sim.counters

        counters = benchmark(run)
        emit(
            f"KERN fast-compass: {counters.synaptic_events} synaptic events / "
            f"{N_TICKS} ticks on one sparse matrix ({net.n_cores} cores)"
        )
        assert counters.ticks == N_TICKS

    def test_reference_kernel_throughput(self, benchmark):
        # The scalar kernel is the slow ground truth: bench a small net.
        net = probabilistic_recurrent_network(
            100.0, 8, grid_side=2, neurons_per_core=16, coupling="balanced", seed=5
        )

        def run():
            kernel = ReferenceKernel(net)
            for _ in range(N_TICKS):
                kernel.step()
            return kernel.counters

        counters = benchmark(run)
        assert counters.ticks == N_TICKS
