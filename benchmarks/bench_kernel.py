"""KERN: kernel micro-benchmarks — simulator throughput per expression.

Measures wall-clock ticks/second and synaptic events/second of the
Compass (vectorized) and TrueNorth (event-driven) expressions, plus the
scalar reference kernel, on the same recurrent workload.  These numbers
are this repository's own "Compass on a workstation" datapoints.
"""

import time

import pytest

from benchmarks.conftest import emit
from repro.apps.recurrent import probabilistic_recurrent_network
from repro.compass.compile import compile_network, n_builds
from repro.compass.fast import FastCompassSimulator
from repro.compass.simulator import CompassSimulator
from repro.core.kernel import ReferenceKernel
from repro.hardware.simulator import TrueNorthSimulator

N_TICKS = 20


@pytest.fixture(scope="module")
def workload_network():
    return probabilistic_recurrent_network(
        100.0, 32, grid_side=4, neurons_per_core=64, coupling="balanced", seed=5
    )


class TestKernelThroughput:
    def test_compass_tick_throughput(self, benchmark, workload_network):
        def run():
            sim = CompassSimulator(workload_network, n_ranks=1)
            for _ in range(N_TICKS):
                sim.step()
            return sim.counters

        counters = benchmark(run)
        emit(
            f"KERN compass: {counters.synaptic_events} synaptic events / "
            f"{N_TICKS} ticks on {workload_network.n_cores} cores"
        )
        assert counters.ticks == N_TICKS

    def test_compass_multirank_overhead(self, benchmark, workload_network):
        def run():
            sim = CompassSimulator(workload_network, n_ranks=8)
            for _ in range(N_TICKS):
                sim.step()
            return sim.counters

        counters = benchmark(run)
        assert counters.messages > 0

    def test_truenorth_tick_throughput(self, benchmark, workload_network):
        def run():
            sim = TrueNorthSimulator(workload_network)
            for _ in range(N_TICKS):
                sim.step()
            return sim.counters

        counters = benchmark(run)
        emit(
            f"KERN truenorth: {counters.hops} hops routed over {N_TICKS} ticks"
        )
        assert counters.ticks == N_TICKS

    def test_fast_compass_throughput(self, benchmark):
        # Deterministic driven network: the pure-matvec path with no
        # PRNG draws (the stochastic path is benched separately below).
        from repro.core.builders import poisson_inputs, random_network

        net = random_network(
            n_cores=16, n_axons=64, n_neurons=64, connectivity=0.3, seed=8
        )
        ins = poisson_inputs(net, N_TICKS, 200.0, seed=4)

        def run():
            sim = FastCompassSimulator(net)
            sim.load_inputs(ins)
            for _ in range(N_TICKS):
                sim.step()
            return sim.counters

        counters = benchmark(run)
        emit(
            f"KERN fast-compass: {counters.synaptic_events} synaptic events / "
            f"{N_TICKS} ticks on one sparse matrix ({net.n_cores} cores)"
        )
        assert counters.ticks == N_TICKS

    def test_fast_compass_stochastic_throughput(self, benchmark, workload_network):
        # The characterization workload drives neurons by stochastic
        # leak — the modes the sparse engine now runs directly.
        compiled = compile_network(workload_network)

        def run():
            sim = FastCompassSimulator(compiled)
            for _ in range(N_TICKS):
                sim.step()
            return sim.counters

        counters = benchmark(run)
        emit(
            f"KERN fast-compass/stochastic: {counters.synaptic_events} synaptic "
            f"events / {N_TICKS} ticks on {workload_network.n_cores} cores"
        )
        assert counters.ticks == N_TICKS

    def test_sparse_engine_stochastic_speedup(self, benchmark):
        # The PR-claimed win, measured: the sparse engine vs the per-core
        # Python loop on the same stochastic recurrent workload.
        net = probabilistic_recurrent_network(
            100.0, 32, grid_side=6, neurons_per_core=64,
            coupling="balanced", seed=5,
        )
        compiled = compile_network(net)
        n_ticks = 40

        def run_pair():
            start = time.perf_counter()
            std = CompassSimulator(compiled)
            for _ in range(n_ticks):
                std.step()
            t_std = time.perf_counter() - start

            start = time.perf_counter()
            fast = FastCompassSimulator(compiled)
            for _ in range(n_ticks):
                fast.step()
            t_fast = time.perf_counter() - start
            return std.counters, fast.counters, t_std, t_fast

        std_c, fast_c, t_std, t_fast = benchmark.pedantic(
            run_pair, rounds=1, iterations=1
        )
        speedup = t_std / t_fast
        emit(
            f"KERN sparse stochastic speedup: {speedup:.1f}x "
            f"({t_std * 1e3:.0f} ms -> {t_fast * 1e3:.0f} ms over {n_ticks} "
            f"ticks, {net.n_cores} cores)"
        )
        assert fast_c.spikes == std_c.spikes
        assert fast_c.synaptic_events == std_c.synaptic_events
        assert speedup >= 5.0

    def test_compiled_network_shared_across_simulators(self, workload_network):
        # Constructing further simulators from a CompiledNetwork must do
        # no sparse-matrix rebuild.
        compiled = compile_network(workload_network)
        before = n_builds()
        a = FastCompassSimulator(compiled)
        b = FastCompassSimulator(workload_network)
        c = CompassSimulator(compiled)
        assert n_builds() == before
        assert a.compiled is b.compiled is c.compiled is compiled

    def test_reference_kernel_throughput(self, benchmark):
        # The scalar kernel is the slow ground truth: bench a small net.
        net = probabilistic_recurrent_network(
            100.0, 8, grid_side=2, neurons_per_core=16, coupling="balanced", seed=5
        )

        def run():
            kernel = ReferenceKernel(net)
            for _ in range(N_TICKS):
                kernel.step()
            return kernel.counters

        counters = benchmark(run)
        assert counters.ticks == N_TICKS
