"""Compare a fresh benchmark JSON against the committed baseline.

Usage::

    python benchmarks/check_regression.py BASELINE.json CURRENT.json \
        [--tolerance 0.30] [--match sparse] [--match fast]

Loads two ``pytest-benchmark`` JSON files and compares the median
runtime of every benchmark present in both (optionally filtered to
names containing any ``--match`` substring).  Exits non-zero when any
compared benchmark's median regressed by more than *tolerance*
(default 30%, absorbing CI-runner noise while catching real
slowdowns of the sparse tick).

Speedups and new benchmarks never fail the check; a baseline recorded
on a host with a different CPU count is reported but still compared —
the tolerance is the noise budget.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_medians(path: str) -> tuple[dict[str, float], dict]:
    """Return {benchmark name: median seconds} and the machine info."""
    with open(path) as f:
        data = json.load(f)
    medians = {b["name"]: float(b["stats"]["median"]) for b in data["benchmarks"]}
    return medians, data.get("machine_info", {})


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    tolerance: float,
    match: list[str] | None = None,
) -> list[tuple[str, float, float, float, bool]]:
    """Rows of (name, old, new, ratio, regressed) for shared benchmarks."""
    rows = []
    for name in sorted(set(baseline) & set(current)):
        if match and not any(m in name for m in match):
            continue
        old, new = baseline[name], current[name]
        ratio = new / old if old else float("inf")
        rows.append((name, old, new, ratio, ratio > 1.0 + tolerance))
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed benchmark JSON")
    parser.add_argument("current", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional slowdown before failing (default 0.30)",
    )
    parser.add_argument(
        "--match", action="append", default=None,
        help="only compare benchmarks whose name contains this substring "
             "(repeatable); default: all shared benchmarks",
    )
    args = parser.parse_args(argv)

    base_medians, base_machine = load_medians(args.baseline)
    cur_medians, cur_machine = load_medians(args.current)
    if base_machine.get("cpu", {}) != cur_machine.get("cpu", {}):
        print("note: baseline and current machines differ; "
              f"tolerance {args.tolerance:.0%} is the noise budget")

    rows = compare(base_medians, cur_medians, args.tolerance, args.match)
    if not rows:
        print("no shared benchmarks to compare; nothing to check")
        return 0

    width = max(len(name) for name, *_ in rows)
    failed = False
    for name, old, new, ratio, regressed in rows:
        verdict = "REGRESSED" if regressed else "ok"
        print(f"  {name:<{width}}  {old * 1e3:9.3f} ms -> {new * 1e3:9.3f} ms "
              f"({ratio:5.2f}x)  {verdict}")
        failed |= regressed
    if failed:
        print(f"FAIL: median slowdown exceeded {args.tolerance:.0%} tolerance")
        return 1
    print(f"OK: all medians within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
