"""Streaming-runtime bench: software real-time factor per expression.

Measures this host's wall-clock per tick while streaming video through
a saliency network on each executor, and reports the real-time factor —
the quantity the silicon expression fixes at >= 1 by construction while
software expressions fall far below it at scale (the paper's
time-to-solution story at desktop scale).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.apps.saliency import build_saliency_pipeline
from repro.apps.video import generate_scene
from repro.compass.fast import FastCompassSimulator
from repro.compass.simulator import CompassSimulator
from repro.hardware.simulator import TrueNorthSimulator
from repro.hardware.timing import TimingModel
from repro.runtime import SceneSource, StreamingRuntime


@pytest.fixture(scope="module")
def setup():
    pipeline = build_saliency_pipeline(16, 24, patch=4)
    scene = generate_scene(16, 24, n_frames=3, n_objects=2, seed=5)
    return pipeline, scene


class TestStreamingThroughput:
    @pytest.mark.parametrize(
        "name,factory",
        [
            ("truenorth-sim", lambda net: TrueNorthSimulator(net)),
            ("compass", lambda net: CompassSimulator(net, n_ranks=2)),
            ("fast-compass", lambda net: FastCompassSimulator(net)),
        ],
    )
    def test_expression_throughput(self, benchmark, setup, name, factory):
        pipeline, scene = setup

        def run():
            runtime = StreamingRuntime(
                factory(pipeline.compiled.network),
                pipeline.pixel_pins,
                ticks_per_frame=10,
            )
            return runtime.run(SceneSource(scene))

        report = benchmark.pedantic(run, rounds=2, iterations=1)
        emit(
            f"STREAM {name}: {report.ticks} ticks in "
            f"{report.wall_seconds * 1e3:.0f} ms -> real-time factor "
            f"{report.real_time_factor:.2f}x"
        )
        assert report.output_spikes > 0

    def test_chip_model_projection(self, benchmark, setup):
        pipeline, scene = setup
        runtime = StreamingRuntime(
            TrueNorthSimulator(pipeline.compiled.network),
            pipeline.pixel_pins,
            ticks_per_frame=10,
        )
        report = benchmark.pedantic(
            lambda: runtime.run(SceneSource(scene)), rounds=1, iterations=1
        )
        max_khz = TimingModel().max_frequency_for_run_khz(
            runtime.simulator.counters
        )
        emit(render_table(
            ["target", "real-time factor"],
            [["this host (software)", report.real_time_factor],
             ["TrueNorth chip model", max_khz]],
            title="STREAM: software vs chip real-time factor",
        ))
        # the chip sustains more-than-real-time for this light load
        assert max_khz > 1.0
