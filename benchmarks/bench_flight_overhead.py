"""FLIGHT: overhead guard for the always-on flight recorder.

The flight recorder (ISSUE 9) is meant to run in production serving:
one ring-buffer write plus two gauge updates per tick.  This benchmark
holds that promise on the paper-scale workload — the 64k-neuron
activity-gated network from ``bench_sparse_activity.py`` — by gating
the recorder's *marginal* cost at <= 5%: an enabled observer with the
flight ring attached vs the same observer with ``flight_capacity=0``
(with a small absolute floor so micro-jitter cannot trip the gate).
The bare-engine-vs-disabled-observer budget is held separately by
``bench_obs_overhead.py``; isolating the ring here means a tracing or
counter-publishing change cannot mask a flight-recorder regression.

The ``benchmark``-fixture test feeds the regression gate: its median
lands in ``BENCH_kernel.json`` under a name containing ``flight`` and
is compared against the committed baseline by ``check_regression.py``.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.compass.compile import compile_network
from repro.compass.fast import FastCompassSimulator
from repro.core.inputs import InputSchedule
from repro.core.network import Core, Network
from repro.obs import Observer

N_TICKS = 200
ROUNDS = 7
N_CORES = 256  # 256 cores x 256 neurons = 65,536 neurons
CORE_SIZE = 256
DRIVEN_CORES = 8
DRIVEN_AXONS = 8
#: Relative overhead budget for enabled flight recording (ISSUE 9).
MAX_OVERHEAD = 0.05
#: Absolute slack (seconds): below this delta the ratio is noise.
ABS_SLACK_S = 0.002


@pytest.fixture(scope="module")
def flight_workload():
    """The 64k-neuron sparse workload from ``bench_sparse_activity``."""
    eye = np.eye(CORE_SIZE, dtype=bool)
    cores = [
        Core.build(
            CORE_SIZE, CORE_SIZE, crossbar=eye, weights=[2, 0, 0, 0],
            threshold=2, name=f"flight{i}",
        )
        for i in range(N_CORES)
    ]
    net = Network(cores=cores, seed=7, name="flight-overhead-64k")
    ins = InputSchedule()
    for tick in range(N_TICKS):
        for core in range(DRIVEN_CORES):
            for axon in range(DRIVEN_AXONS):
                ins.add(tick, core, axon)
    return compile_network(net), ins


def _run_once(compiled, ins, obs):
    sim = FastCompassSimulator(compiled, gated=True, obs=obs)
    sim.load_inputs(ins)
    start = time.perf_counter()
    for _ in range(N_TICKS):
        sim.step()
    return time.perf_counter() - start


class TestFlightOverhead:
    def test_enabled_flight_within_budget(self, flight_workload):
        compiled, ins = flight_workload
        base_s = flight_s = float("inf")
        ratios = []
        # Interleave the two variants: min-of-N per variant is the
        # standard noise filter, and the *paired* per-round ratio
        # additionally cancels slow drift (thermal, co-tenant load)
        # that moves both variants together between rounds — the median
        # of the paired ratios is the headline estimate.
        for _ in range(ROUNDS):
            base_r = _run_once(compiled, ins, Observer(flight_capacity=0))
            flight_r = _run_once(compiled, ins, Observer())
            base_s = min(base_s, base_r)
            flight_s = min(flight_s, flight_r)
            ratios.append(flight_r / base_r)
        overhead = float(np.median(ratios)) - 1.0
        emit(
            f"FLIGHT overhead: no-ring {base_s * 1e3:.2f} ms, recording "
            f"{flight_s * 1e3:.2f} ms over {N_TICKS} ticks on 64k neurons "
            f"({overhead * +100:.2f}% median paired overhead)"
        )
        assert flight_s - base_s <= ABS_SLACK_S or overhead <= MAX_OVERHEAD, (
            f"flight recording costs {overhead * 100:.1f}% "
            f"(> {MAX_OVERHEAD * 100:.0f}% budget)"
        )

    def test_flight_recording_tick(self, benchmark, flight_workload):
        # Regression-gated absolute cost of the instrumented tick loop
        # (name contains "flight" for check_regression --match flight).
        compiled, ins = flight_workload

        def run_instrumented():
            obs = Observer(enabled=True)
            elapsed = _run_once(compiled, ins, obs)
            return obs, elapsed

        obs, elapsed = benchmark.pedantic(run_instrumented, rounds=1,
                                          iterations=1)
        assert len(obs.flight) == N_TICKS
        # The recorder's own wall accounting must agree with the loop's.
        wall = obs.flight.summary()["wall_seconds"]
        assert wall == pytest.approx(elapsed, rel=0.25)
        emit(
            f"FLIGHT ring after {N_TICKS} ticks: rtf "
            f"{obs.flight.real_time_factor():.2f}, compliance "
            f"{obs.flight.summary()['budget_compliance']:.2f}"
        )
