"""EQ1/EQ2: one-to-one equivalence regressions (paper Section VI-A).

EQ1: the three kernel expressions agree spike-for-spike over randomized
single-core, multi-core, and coupled-recurrent regressions (the paper's
413k+7.5k regressions, scaled to CI time — "not a single spike
mismatch").  EQ2: the 100M-tick regression wall clock, 27.7 hours on
TrueNorth vs ~74 days on the 8-thread x86 server.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import equivalence


class TestEQ1Regressions:
    def test_single_core_suite(self, benchmark):
        report = benchmark.pedantic(
            equivalence.single_core_regressions,
            kwargs=dict(n_networks=6, n_ticks=30), rounds=1, iterations=1,
        )
        emit(
            f"EQ1 single-core: {report.n_regressions} regressions, "
            f"{report.total_spikes_compared} spikes compared, "
            f"{report.n_mismatches} mismatches (paper: 0)"
        )
        assert report.all_matched

    def test_multi_core_suite(self, benchmark):
        report = benchmark.pedantic(
            equivalence.multi_core_regressions,
            kwargs=dict(n_networks=3, n_ticks=30), rounds=1, iterations=1,
        )
        emit(
            f"EQ1 multi-core: {report.n_regressions} regressions, "
            f"{report.total_spikes_compared} spikes compared, "
            f"{report.n_mismatches} mismatches (paper: 0)"
        )
        assert report.all_matched

    def test_chaotic_recurrent_suite(self, benchmark):
        report = benchmark.pedantic(
            equivalence.recurrent_network_regressions,
            kwargs=dict(n_ticks=50), rounds=1, iterations=1,
        )
        emit(
            f"EQ1 coupled recurrent: {report.n_regressions} regressions, "
            f"{report.total_spikes_compared} spikes compared, "
            f"{report.n_mismatches} mismatches (paper: 0)"
        )
        assert report.all_matched


class TestEQ2WallClock:
    def test_regression_time_ratio(self, benchmark):
        wc = benchmark(equivalence.regression_wall_clock)
        emit(
            "EQ2: 100M-tick regression: "
            f"TrueNorth {wc['truenorth_hours']:.1f} h (paper: 27.7 h) vs "
            f"x86 legacy {wc['x86_legacy_days']:.1f} days (paper: ~74 days)"
        )
        assert wc["truenorth_hours"] == pytest.approx(27.8, abs=0.2)
        assert 55 <= wc["x86_legacy_days"] <= 95
