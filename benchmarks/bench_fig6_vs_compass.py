"""FIG6: TrueNorth vs Compass on BG/Q and x86 (paper Fig. 6(a)-(d)).

Speedup and energy-improvement contours over the characterization
space; the paper's claims — 1 order speedup vs 32-host BG/Q, 2-3 orders
vs dual-socket x86, ~5 orders energy vs both — are asserted as bands.
"""

import numpy as np
from benchmarks.conftest import emit
from repro.analysis.report import render_contour
from repro.experiments import fig6


class TestFig6Panels:
    def test_fig6a_speedup_vs_bgq(self, benchmark):
        grid = benchmark(fig6.fig6a_speedup_vs_bgq)
        emit(render_contour(grid, log_scale=True))
        # "one order of magnitude speedup of execution time vs 32 host BG/Q"
        assert 1.0 <= np.log10(grid.min) <= 2.0
        assert np.log10(grid.max) <= 2.0

    def test_fig6b_energy_vs_bgq(self, benchmark):
        grid = benchmark(fig6.fig6b_energy_vs_bgq)
        emit(render_contour(grid, log_scale=True))
        # "five orders of magnitude reduction in energy vs 32 host BG/Q"
        assert 5.0 <= np.log10(grid.min)
        assert np.log10(grid.max) <= 6.2

    def test_fig6c_speedup_vs_x86(self, benchmark):
        grid = benchmark(fig6.fig6c_speedup_vs_x86)
        emit(render_contour(grid, log_scale=True))
        # "two to three orders of magnitude speedup vs dual socket x86"
        assert 1.5 <= np.log10(grid.min)
        assert np.log10(grid.max) <= 3.2

    def test_fig6d_energy_vs_x86(self, benchmark):
        grid = benchmark(fig6.fig6d_energy_vs_x86)
        emit(render_contour(grid, log_scale=True))
        # "five orders of magnitude reduction in energy vs dual socket x86"
        assert 5.0 <= np.log10(grid.min)
        assert np.log10(grid.max) <= 6.2

    def test_fig6_summary_table(self, benchmark):
        summary = benchmark(fig6.fig6_summary)
        from repro.analysis.report import render_table

        rows = [
            [name, s["min"], s["max"], s["orders_min"], s["orders_max"]]
            for name, s in summary.items()
        ]
        emit(render_table(
            ["panel", "min", "max", "orders(min)", "orders(max)"], rows,
            title="FIG6 summary: TrueNorth advantage over Compass",
        ))
        assert summary["energy_bgq"]["orders_min"] >= 5.0
