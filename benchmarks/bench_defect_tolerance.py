"""Defect-tolerance bench: route-around cost vs defect density.

"The architecture is robust to core defects: if a core fails, we
disable it and route spike events around it" (paper Section III-C) —
this bench sweeps router-defect density and reports the functional
outcome (always identical spikes) and the hop/energy overhead paid.
"""

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.experiments.defects import defect_sweep


class TestDefectTolerance:
    def test_yield_sweep(self, benchmark):
        sweep = benchmark.pedantic(
            defect_sweep,
            kwargs=dict(fractions=(0.0, 0.05, 0.1, 0.2), n_cores=9, n_ticks=20),
            rounds=1, iterations=1,
        )
        rows = [
            [f"{p.defect_fraction:.0%}", p.n_disabled_routers,
             "yes" if p.functional_match else "NO",
             float(p.baseline_hops), float(p.defective_hops),
             p.hop_overhead, p.energy_overhead_j * 1e12]
            for p in sweep
        ]
        emit(render_table(
            ["defects", "routers off", "spikes match", "base hops",
             "detour hops", "overhead", "extra pJ"],
            rows, title="DEFECTS: route-around cost vs density",
        ))
        assert all(p.functional_match for p in sweep)
        assert sweep[-1].defective_hops >= sweep[0].baseline_hops
