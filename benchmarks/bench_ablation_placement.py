"""Ablation: placement quality vs NoC traffic and communication energy.

DESIGN.md calls out placement as the design choice that trades function
for hops: this bench quantifies row-major vs connectivity-aware
placement of a composed vision pipeline in wirelength, routed hops, and
communication energy per tick.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.apps.haar import build_haar_pipeline
from repro.apps.transduction import transduce_video
from repro.apps.video import static_pattern
from repro.corelets.placement import (
    place_connectivity_aware,
    place_row_major,
    total_wirelength,
)
from repro.hardware.energy import E_HOP_J
from repro.hardware.simulator import TrueNorthSimulator


@pytest.fixture(scope="module")
def pipeline():
    return build_haar_pipeline(16, 16, 4)


class TestPlacementAblation:
    def test_wirelength_comparison(self, benchmark, pipeline):
        net = pipeline.compiled.network

        def run():
            return (
                total_wirelength(net, place_row_major(net)),
                total_wirelength(net, place_connectivity_aware(net)),
            )

        naive, aware = benchmark(run)
        emit(render_table(
            ["placement", "wirelength (hops)"],
            [["row-major", float(naive)], ["connectivity-aware BFS", float(aware)]],
            title="ABLATION: placement wirelength (Haar 16x16 pipeline)",
        ))
        assert aware <= naive

    def test_routed_hops_and_energy(self, benchmark, pipeline):
        net = pipeline.compiled.network
        frames = static_pattern(16, 16, "noise", seed=2)[None]
        ins = transduce_video(frames, pipeline.pixel_pins, ticks_per_frame=10)

        def run():
            results = {}
            for name, placer in (
                ("row-major", place_row_major),
                ("connectivity-aware", place_connectivity_aware),
            ):
                sim = TrueNorthSimulator(net, placement=placer(net))
                rec = sim.run(12, ins)
                results[name] = rec.counters.hops
            return results

        hops = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            [name, float(h), h * E_HOP_J * 1e9]
            for name, h in hops.items()
        ]
        emit(render_table(
            ["placement", "routed hops", "comm energy (nJ)"],
            rows, title="ABLATION: routed hops and communication energy",
        ))
        assert hops["connectivity-aware"] <= hops["row-major"]
