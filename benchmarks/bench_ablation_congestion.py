"""Ablation: NoC congestion — does communication ever limit real time?

Quantifies the paper's design claim that spike traffic, "sparse in
time", never throttles the tick: uniform traffic leaves large router
margins across the whole characterization space, while only adversarial
all-to-one traffic saturates.
"""

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.apps.recurrent import probabilistic_recurrent_network
from repro.apps.workloads import characterization_workload
from repro.hardware.simulator import TrueNorthSimulator
from repro.noc.congestion import congestion_margin, run_with_congestion


class TestCongestionAblation:
    def test_analytic_margins_across_sweep(self, benchmark):
        def run():
            rows = []
            for rate, syn in ((20.0, 128.0), (100.0, 128.0), (200.0, 256.0)):
                w = characterization_workload(rate, syn)
                m = congestion_margin(w)
                rows.append([
                    f"{rate:g}Hz x {syn:g}", m["uniform_utilization"],
                    m["hotspot_utilization"], m["uniform_stretch"],
                    m["hotspot_stretch"],
                ])
            return rows

        rows = benchmark(run)
        emit(render_table(
            ["workload", "uniform util", "hotspot util",
             "uniform stretch", "hotspot stretch"],
            rows, title="ABLATION: router-load margins (capacity 40k pkts/tick)",
        ))
        # uniform traffic never stretches the tick anywhere on the sweep
        assert all(row[3] == 1.0 for row in rows)
        # adversarial all-to-one traffic saturates at the heavy corner
        assert rows[-1][4] > 1.0

    def test_measured_congestion_on_simulated_network(self, benchmark):
        net = probabilistic_recurrent_network(
            150.0, 16, grid_side=4, neurons_per_core=64, seed=9
        )

        def run():
            sim = TrueNorthSimulator(net, detailed_noc=True)
            _, monitor = run_with_congestion(sim, 20)
            return monitor

        monitor = benchmark.pedantic(run, rounds=1, iterations=1)
        emit(
            f"ABLATION: measured peak router load {monitor.peak} pkts/tick "
            f"(worst stretch {monitor.worst_stretch():.2f}) on a 16-core "
            "recurrent network at 150 Hz"
        )
        assert monitor.worst_stretch() == 1.0
