"""Declarative tick protocol of the shared-memory parallel engines.

The partitioned engine (:mod:`repro.compass.parallel`) and the batched
multi-replica engine (:mod:`repro.compass.batched`) implement the
paper's one-spike-per-tick contract over shared state by hand: a small
set of regions, each written by exactly the actors and phases the wire
format in ``parallel.py``'s module docstring claims, with the per-tick
pipe barrier as the only ordering edge.  This module states that design
as *data* — one :class:`RegionSpec` per region, one :class:`Access`
per (role, phase, kind) the protocol allows — so both sanitizer layers
check the same source of truth:

* the static layer (:mod:`repro.sanitize.static`) extracts actual shm
  array accesses from the engine sources by AST and diffs them against
  this table (codes SL200-SL205);
* the dynamic layer (:mod:`repro.sanitize.dynamic` /
  :mod:`repro.sanitize.analyze`) records real accesses at run time and
  checks phase conformance plus vector-clock ordering against it
  (codes SL210-SL212).

Region names are rank-generic: the runtime keys accesses by an
``(owner, name)`` pair (e.g. ``("rank1", "ring")``) while the spec is
per *name* — every rank's instance of a region obeys the same rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.diagnostics import Severity
from repro.lint.source import SourceRuleInfo

#: Every code the sanitizer can emit (static SL20x, dynamic SL21x);
#: rendered alongside SOURCE_CODES in ``repro lint --codes`` and
#: documented in docs/sanitizer.md.
SANITIZE_CODES: dict[str, SourceRuleInfo] = {
    info.code: info
    for info in [
        SourceRuleInfo("SL200", "undeclared-shm-region", Severity.ERROR,
                       "every np.ndarray(..., buffer=shm.buf) binding in the "
                       "engine sources must resolve to a region declared in "
                       "repro.sanitize.protocol"),
        SourceRuleInfo("SL201", "out-of-protocol-access", Severity.ERROR,
                       "this (role, phase, kind) access is not in the declared "
                       "tick protocol; either the code or the RegionSpec table "
                       "is wrong — fix whichever one misstates the design"),
        SourceRuleInfo("SL202", "access-in-barrier-window", Severity.ERROR,
                       "the coordinator must not touch shared regions between "
                       "releasing the workers (send loop) and collecting every "
                       "reply (recv loop); move the access to scatter or gather"),
        SourceRuleInfo("SL203", "worker-access-after-reply", Severity.ERROR,
                       "a worker's reply hands the shared regions back to the "
                       "coordinator; move the access before conn.send(tick)"),
        SourceRuleInfo("SL204", "stale-protocol-accessor", Severity.WARNING,
                       "the protocol declares an access the source no longer "
                       "performs; prune the Access entry so the table stays "
                       "an exact model of the code"),
        SourceRuleInfo("SL205", "missing-barrier-edge", Severity.ERROR,
                       "the tick barrier (send loop + recv loop on the "
                       "coordinator, recv + reply send on the worker) is the "
                       "only ordering edge; the engine source must keep both "
                       "halves"),
        SourceRuleInfo("SL210", "shared-memory-data-race", Severity.ERROR,
                       "two actors touched an overlapping slice of one region "
                       "with no barrier edge ordering them; both stacks are in "
                       "the message — restore the missing happens-before edge"),
        SourceRuleInfo("SL211", "out-of-phase-access", Severity.ERROR,
                       "a recorded access fell outside the phases the protocol "
                       "declares for its (region, role); check the phase "
                       "bracketing around the access site"),
        SourceRuleInfo("SL212", "incomplete-barrier-protocol", Severity.ERROR,
                       "an actor's access log could not be ordered — a recv "
                       "marker waits on a barrier message that was never sent; "
                       "the barrier protocol is torn"),
    ]
}


@dataclass(frozen=True)
class Access:
    """One allowed (role, phase, kind) access to a region.

    *phase* is the coarse static phase the AST checker classifies
    source accesses into (``init``, ``scatter``, ``gather``, ``tick``,
    ``reset``); *dyn_phases* are the fine-grained runtime phases the
    dynamic recorder stamps (``deliver``/``integrate``/``update``/
    ``route`` inside a worker tick, else the coarse phase itself).
    *kind* is ``"r"``, ``"w"``, or ``"rw"``.
    """

    role: str
    phase: str
    kind: str
    dyn_phases: tuple[str, ...] = ()

    def allows_kind(self, kind: str) -> bool:
        """True when this entry permits a read (``R``) / write (``W``)."""
        return kind.lower() in self.kind

    def runtime_phases(self) -> tuple[str, ...]:
        """Phases the dynamic layer accepts for this entry."""
        return self.dyn_phases or (self.phase,)


@dataclass(frozen=True)
class RegionSpec:
    """One shared region: layout plus its full allowed-access set.

    *opaque* regions (the per-rank SpanStrip trace slabs) are mediated
    by their own lock-free record format and are excluded from the
    binding and access checks.
    """

    name: str
    scope: str
    dtype: str
    shape: str
    accesses: tuple[Access, ...] = ()
    opaque: bool = False

    def static_allows(self, role: str, phase: str, kind: str) -> bool:
        """Is (role, phase, kind) inside the declared static protocol?"""
        return any(
            a.role == role and a.phase == phase and a.allows_kind(kind)
            for a in self.accesses
        )

    def dynamic_allows(self, role: str, phase: str, kind: str) -> bool:
        """Is (role, runtime-phase, kind) inside the declared protocol?"""
        return any(
            a.role == role and phase in a.runtime_phases() and a.allows_kind(kind)
            for a in self.accesses
        )


@dataclass(frozen=True)
class TickProtocol:
    """The whole protocol for one engine: regions plus barrier shape."""

    engine: str
    regions: dict[str, RegionSpec] = field(default_factory=dict)
    roles: tuple[str, ...] = ()
    barrier: str = ""

    def region(self, name: str) -> RegionSpec | None:
        """Spec for *name*, or None for an undeclared region."""
        return self.regions.get(name)


def _spec(name, scope, dtype, shape, accesses, opaque=False) -> RegionSpec:
    return RegionSpec(name, scope, dtype, shape, tuple(accesses), opaque)


#: The partitioned shared-memory engine.  Mirrors the wire-format table
#: in ``parallel.py``'s module docstring, with the barrier edges made
#: explicit: the coordinator's scatter happens-before every worker's
#: tick (send edge), and every worker's tick happens-before the
#: coordinator's gather (reply edge).
PARALLEL_PROTOCOL = TickProtocol(
    engine="parallel",
    roles=("coordinator", "worker"),
    barrier=(
        "full per-tick barrier: coordinator conn.send(tick) -> worker; "
        "worker conn.send(tick) reply -> coordinator; pipes carry only "
        "tick numbers"
    ),
    regions={
        "ring": _spec(
            "ring", "per-rank", "bool", "(DELAY_SLOTS, n_axons)",
            [
                Access("worker", "tick", "rw", ("deliver", "route")),
                Access("coordinator", "init", "w"),
                Access("coordinator", "scatter", "w"),
                Access("coordinator", "gather", "w"),
                # Checkpointing: the coordinator reads every rank's ring
                # at the inter-tick barrier (snapshot) and rewrites it
                # on restore; workers are parked in conn.recv() both
                # times, so the pipe edge still orders every access.
                Access("coordinator", "other:snapshot", "r", ("snapshot",)),
                Access("coordinator", "other:restore", "w", ("restore",)),
            ],
        ),
        "spikes": _spec(
            "spikes", "per-rank", "int64", "(1 + n_neurons,)",
            [
                Access("worker", "tick", "w", ("route",)),
                Access("coordinator", "init", "w"),
                Access("coordinator", "gather", "r"),
            ],
        ),
        "outbox": _spec(
            "outbox", "per-rank", "int64", "(1 + 3 * n_neurons,)",
            [
                Access("worker", "tick", "w", ("route",)),
                Access("coordinator", "init", "w"),
                Access("coordinator", "gather", "r"),
            ],
        ),
        "stats": _spec(
            "stats", "per-rank", "int64", "(6 + n_cores,)",
            [
                Access("worker", "tick", "rw", ("route",)),
                Access("coordinator", "init", "w"),
                Access("coordinator", "gather", "r"),
            ],
        ),
        "obs": _spec(
            "obs", "per-rank", "int64", "SpanStrip records",
            [], opaque=True,
        ),
    },
)

#: The batched engine shares arrays between phases of one process, not
#: between processes — the protocol degenerates to phase bracketing on
#: a single "engine" actor, which is exactly what the out-of-phase
#: fault-injection tests exercise.
BATCHED_PROTOCOL = TickProtocol(
    engine="batched",
    roles=("engine",),
    barrier="single-process; phase order within one pass is the protocol",
    regions={
        "buffers": _spec(
            "buffers", "whole-batch", "bool", "(DELAY_SLOTS, B, n_axons)",
            [
                Access("engine", "init", "w"),
                Access("engine", "tick", "rw", ("deliver",)),
                Access("engine", "tick", "w", ("route",)),
                Access("engine", "reset", "w"),
                Access("engine", "checkpoint", "rw"),
            ],
        ),
        "v": _spec(
            "v", "whole-batch", "int64", "(B, n_neurons)",
            [
                Access("engine", "init", "w"),
                Access("engine", "tick", "rw", ("update",)),
                Access("engine", "reset", "w"),
                Access("engine", "checkpoint", "rw"),
            ],
        ),
    },
)

#: Protocols by engine name.
PROTOCOLS = {
    "parallel": PARALLEL_PROTOCOL,
    "batched": BATCHED_PROTOCOL,
}


def role_of_actor(actor: str) -> str:
    """Protocol role of a runtime actor id (``coord``/``rankN``/``engine``)."""
    if actor == "coord":
        return "coordinator"
    if actor.startswith("rank"):
        return "worker"
    return "engine"


__all__ = [
    "SANITIZE_CODES", "Access", "RegionSpec", "TickProtocol",
    "PARALLEL_PROTOCOL", "BATCHED_PROTOCOL", "PROTOCOLS", "role_of_actor",
]
