"""Merge access logs, derive vector clocks, report unordered conflicts.

The offline half of the dynamic race detector.  Input: the merged
per-actor :class:`~repro.sanitize.dynamic.AccessEvent` logs from one
run (coordinator + every worker, or the single batched engine actor).
Output: a :class:`~repro.lint.diagnostics.LintReport` carrying SL21x
diagnostics.

Ordering model — classic message-passing vector clocks:

* each actor's log is totally ordered by its ``seq`` numbers (program
  order);
* every barrier ``send`` marker publishes the sender's clock on the
  channel ``(sender, receiver, tick)``; the matching ``recv`` marker
  joins it into the receiver's clock.  The engines record exactly one
  marker pair per (direction, tick), mirroring the real pipe traffic;
* two accesses are ordered iff one's clock is component-wise <= at the
  other's entry for its own actor — otherwise they are concurrent.

A data race (SL210) is a concurrent pair from different actors on one
region with overlapping first-axis spans, at least one side a write.
Phase conformance (SL211) checks every access against the declarative
:class:`~repro.sanitize.protocol.TickProtocol`.  A ``recv`` marker
whose channel message never appears (a torn barrier — e.g. the worker
died, or the ``drop-barrier`` fault on the *sending* side of an edge)
leaves that actor's remaining log unstampable and is reported as SL212.
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic, LintReport, Location
from repro.sanitize.dynamic import AccessEvent
from repro.sanitize.protocol import SANITIZE_CODES, TickProtocol, role_of_actor

#: Cap on reported findings per code — one torn barrier makes *every*
#: subsequent pair concurrent; the first few localize the tear.
MAX_FINDINGS_PER_CODE = 20


def _diag(code: str, message: str, rank: int | None = None) -> Diagnostic:
    info = SANITIZE_CODES[code]
    return Diagnostic(
        code=code, severity=info.severity, message=message,
        location=Location(rank=rank), hint=info.hint,
    )


def _rank_of(actor: str) -> int | None:
    return int(actor[4:]) if actor.startswith("rank") else None


def stamp_vector_clocks(events: list[AccessEvent]) -> list[AccessEvent]:
    """Stamp ``vc`` on every event; return events left unstampable.

    Replays each actor's log in program order, exchanging clocks at
    send/recv markers.  A recv whose channel message never arrives
    blocks that actor's remaining suffix; those events are returned
    (empty list == the barrier protocol closed cleanly).
    """
    actors = sorted({ev.actor for ev in events})
    index = {actor: i for i, actor in enumerate(actors)}
    queues = {
        actor: sorted(
            (ev for ev in events if ev.actor == actor), key=lambda e: e.seq
        )
        for actor in actors
    }
    clocks = {actor: [0] * len(actors) for actor in actors}
    cursors = dict.fromkeys(actors, 0)
    channels: dict[tuple, list[int]] = {}

    progressed = True
    while progressed:
        progressed = False
        for actor in actors:
            queue, clock = queues[actor], clocks[actor]
            while cursors[actor] < len(queue):
                ev = queue[cursors[actor]]
                if ev.kind == "recv":
                    sent = channels.get((ev.peer, actor, ev.tick))
                    if sent is None:
                        break  # blocked on a message never sent
                    for i, component in enumerate(sent):
                        if component > clock[i]:
                            clock[i] = component
                clock[index[actor]] += 1
                ev.vc = tuple(clock)
                if ev.kind == "send":
                    channels[(actor, ev.peer, ev.tick)] = list(clock)
                cursors[actor] += 1
                progressed = True
    leftover = []
    for actor in actors:
        leftover.extend(queues[actor][cursors[actor]:])
    return leftover


def _ordered(a: AccessEvent, b: AccessEvent, index: dict[str, int]) -> bool:
    """True when *a* happens-before *b* under the stamped clocks."""
    i = index[a.actor]
    return a.vc[i] <= b.vc[i]


def _check_phases(events, protocol: TickProtocol, report: LintReport) -> None:
    """SL211: every access must sit inside its declared (role, phase)."""
    seen: set[tuple] = set()
    emitted = 0
    for ev in events:
        if ev.region is None:
            continue
        spec = protocol.region(ev.region[1])
        if spec is not None and spec.opaque:
            continue
        role = role_of_actor(ev.actor)
        if spec is not None and spec.dynamic_allows(role, ev.phase, ev.kind):
            continue
        signature = (ev.region[1], role, ev.phase, ev.kind)
        if signature in seen:
            continue
        seen.add(signature)
        if emitted >= MAX_FINDINGS_PER_CODE:
            break
        emitted += 1
        detail = (
            "region is not declared in the protocol"
            if spec is None
            else f"not an allowed phase for role {role!r}"
        )
        report.add(_diag(
            "SL211",
            f"out-of-phase access: {ev.describe()} ({detail})",
            rank=_rank_of(ev.actor),
        ))


def _check_races(events, report: LintReport) -> None:
    """SL210: concurrent overlapping access pairs with a write."""
    index = {actor: i for i, actor in enumerate(sorted({e.actor for e in events}))}
    by_region: dict[tuple, list[AccessEvent]] = {}
    for ev in events:
        if ev.region is not None and ev.vc:
            by_region.setdefault(ev.region, []).append(ev)

    seen: set[tuple] = set()
    emitted = 0
    for region_events in by_region.values():
        for i, a in enumerate(region_events):
            for b in region_events[i + 1:]:
                if a.actor == b.actor:
                    continue
                if a.kind != "W" and b.kind != "W":
                    continue
                if a.hi <= b.lo or b.hi <= a.lo:
                    continue
                if _ordered(a, b, index) or _ordered(b, a, index):
                    continue
                signature = (
                    a.region,
                    tuple(sorted([(a.actor, a.phase, a.kind),
                                  (b.actor, b.phase, b.kind)])),
                )
                if signature in seen:
                    continue
                seen.add(signature)
                if emitted >= MAX_FINDINGS_PER_CODE:
                    return
                emitted += 1
                rank = _rank_of(a.actor)
                if rank is None:
                    rank = _rank_of(b.actor)
                report.add(_diag(
                    "SL210",
                    f"data race on {'/'.join(a.region)}: unordered pair\n"
                    f"    first:  {a.describe()}\n"
                    f"    second: {b.describe()}",
                    rank=rank,
                ))


def analyze_access_log(
    events: list[AccessEvent],
    protocol: TickProtocol,
    subject: str = "sanitize",
) -> LintReport:
    """Full dynamic analysis of one run's merged access log."""
    report = LintReport(subject=subject)
    _check_phases(events, protocol, report)
    leftover = stamp_vector_clocks(events)
    if leftover:
        torn: dict[str, AccessEvent] = {}
        for ev in leftover:
            torn.setdefault(ev.actor, ev)
        for actor, ev in sorted(torn.items()):
            report.add(_diag(
                "SL212",
                f"barrier protocol incomplete: {actor} blocked at "
                f"seq={ev.seq} waiting on "
                f"{ev.peer}->{actor} tick={ev.tick}; "
                f"{sum(1 for e in leftover if e.actor == actor)} event(s) "
                "could not be ordered",
                rank=_rank_of(actor),
            ))
    _check_races([ev for ev in events if ev.vc], report)
    return report


__all__ = ["analyze_access_log", "stamp_vector_clocks", "MAX_FINDINGS_PER_CODE"]
