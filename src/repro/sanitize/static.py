"""Static tick-protocol checker: AST diff of engine sources vs protocol.

Parses :mod:`repro.compass.parallel` and extracts what the code
*actually does* with the shared regions — which names bind
``np.ndarray(..., buffer=shm.buf)`` views, which subscript reads and
writes hit them, and where each access sits relative to the tick
barrier (the coordinator's send loop / recv loop, the worker's
``conn.recv()`` / reply ``conn.send(tick)``).  The result is diffed
against the declarative :data:`~repro.sanitize.protocol.PARALLEL_PROTOCOL`:

* SL200 — a buffer-backed view binding that does not resolve to a
  declared region;
* SL201 — an access outside the declared (role, phase, kind) set;
* SL202 — a coordinator access inside the barrier window (between
  releasing the workers and collecting every reply);
* SL203 — a worker access after its reply send (the region is the
  coordinator's again);
* SL204 — a declared access the source never performs (stale table);
* SL205 — a missing barrier edge (send/recv loop or worker recv/reply
  gone from the source).

Resolution is deliberately syntactic and conservative: view-ness
propagates through direct aliasing (``row = ring[slot]``), through the
known wrapper :func:`~repro.sanitize.dynamic.shadow_view`, and through
the coordinator's ``self._attr.append(view)`` pattern.  Anything the
extractor cannot resolve is reported rather than ignored.  Findings
honour the same ``# repro-lint: allow=CODE`` pragma as the source lint,
so sanctioned exceptions (the fault-injection write) stay auditable
in-source.

The batched engine is single-process — its phase protocol is enforced
by the dynamic layer; here it only gets the SL200 binding sweep, along
with ``obs/trace.py`` and ``runtime/serving.py``.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.diagnostics import Diagnostic, LintReport, Location, Severity
from repro.lint.source import _allowed_codes
from repro.sanitize.protocol import PARALLEL_PROTOCOL, SANITIZE_CODES, TickProtocol

#: Call names that return a view of their first argument unchanged.
VIEW_WRAPPERS = {"shadow_view"}


def _preorder(node: ast.AST):
    """Source-order traversal (ast.walk is breadth-first)."""
    yield node
    for child in ast.iter_child_nodes(node):
        yield from _preorder(child)


def _leaf(func: ast.AST) -> str | None:
    """Trailing name of a call target (``np.ndarray`` -> ``ndarray``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _buffer_kw(call: ast.Call) -> ast.AST | None:
    for kw in call.keywords:
        if kw.arg == "buffer":
            return kw.value
    return None


def _const_subscript_key(node: ast.AST) -> str | None:
    """String key of ``name["key"]``-style subscripts."""
    if isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Constant):
        if isinstance(node.slice.value, str):
            return node.slice.value
    return None


def _self_attr(node: ast.AST) -> str | None:
    """Attribute name of a ``self.X`` expression."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _max_lineno(node: ast.AST) -> int:
    return max(
        (n.lineno for n in ast.walk(node) if hasattr(n, "lineno")),
        default=node.lineno,
    )


class _Findings:
    """Finding accumulator plus the observed-access set for SL204."""

    def __init__(self) -> None:
        self.items: list[tuple[str, str, int]] = []  # (code, message, line)
        self.observed: set[tuple[str, str, str, str]] = set()

    def add(self, code: str, message: str, line: int) -> None:
        self.items.append((code, message, line))

    def observe(self, region: str, role: str, phase: str, kind: str) -> None:
        self.observed.add((region, role, phase, kind.lower()))


def _access_kind(node: ast.Subscript) -> str:
    return "W" if isinstance(node.ctx, (ast.Store, ast.Del)) else "R"


def _check_access(
    region: str, role: str, phase: str, kind: str, line: int,
    protocol: TickProtocol, out: _Findings,
) -> None:
    """Record one observed access and diff it against the protocol."""
    out.observe(region, role, phase, kind)
    spec = protocol.region(region)
    if spec is None or spec.opaque:
        return
    if phase == "barrier-window":
        out.add("SL202",
                f"coordinator {kind} access to {region!r} inside the "
                "barrier window (between worker release and reply "
                "collection)", line)
        return
    if phase == "after-reply":
        out.add("SL203",
                f"worker {kind} access to {region!r} after the barrier "
                "reply", line)
        return
    if not spec.static_allows(role, phase, kind):
        out.add("SL201",
                f"{role} {kind} access to {region!r} in phase {phase!r} "
                "is outside the declared protocol", line)


class _Scope:
    """View/alias bindings for one function scope."""

    def __init__(self) -> None:
        self.shm_vars: dict[str, str] = {}  # local -> region (SharedMemory handle)
        self.views: dict[str, str] = {}     # local -> region (ndarray view/alias)

    def resolve_buffer(self, node: ast.AST) -> str | None:
        """Region of a ``buffer=...`` argument, or None if unresolvable."""
        if isinstance(node, ast.Attribute) and node.attr == "buf":
            owner = node.value
            if isinstance(owner, ast.Name):
                return self.shm_vars.get(owner.id)
            key = _const_subscript_key(owner)
            if key is not None:
                return key
        return None


def _bind_scope(
    scope_node: ast.AST, scope: _Scope, attr_map: dict[str, str],
    protocol: TickProtocol, out: _Findings, path_label: str,
) -> None:
    """Pass 1: collect view bindings and aliases, flag SL200 on the way."""
    for node in _preorder(scope_node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            # self._attr.append(view): the coordinator's retention pattern.
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in scope.views
            ):
                attr = _self_attr(node.func.value)
                if attr is not None:
                    attr_map[attr] = scope.views[node.args[0].id]
            continue
        target = node.targets[0].id
        value = node.value
        if isinstance(value, ast.IfExp):
            value = value.body
        if isinstance(value, ast.Call):
            leaf = _leaf(value.func)
            if leaf == "_attach" and value.args:
                key = _const_subscript_key(value.args[0])
                if key is not None:
                    scope.shm_vars[target] = key
                continue
            if leaf == "ndarray":
                buffer = _buffer_kw(value)
                if buffer is None:
                    continue
                region = scope.resolve_buffer(buffer)
                if region is None:
                    out.add("SL200",
                            "np.ndarray buffer binding does not resolve to "
                            f"a shared region in {path_label}", value.lineno)
                elif protocol.region(region) is None:
                    out.add("SL200",
                            f"buffer binding to undeclared region {region!r}",
                            value.lineno)
                else:
                    scope.views[target] = region
                continue
            if leaf in VIEW_WRAPPERS and value.args:
                first = value.args[0]
                if isinstance(first, ast.Name) and first.id in scope.views:
                    scope.views[target] = scope.views[first.id]
                continue
        if isinstance(value, ast.Subscript):
            region, _ = _resolve_subscript(value, scope, attr_map)
            if region is not None:
                scope.views[target] = region


def _resolve_subscript(
    node: ast.Subscript, scope: _Scope, attr_map: dict[str, str],
) -> tuple[str | None, bool]:
    """(region, is-data-access) of a subscript chain, else (None, False).

    A one-level subscript of a ``self._attr`` *list* of views (e.g.
    ``self._stats[rank]``) selects a view without touching shared data;
    only deeper chains — or any subscript of a view-typed local — are
    data accesses.
    """
    depth = 0
    cur: ast.AST = node
    while isinstance(cur, ast.Subscript):
        depth += 1
        cur = cur.value
    if isinstance(cur, ast.Name) and cur.id in scope.views:
        return scope.views[cur.id], True
    attr = _self_attr(cur)
    if attr is not None and attr in attr_map:
        return attr_map[attr], depth >= 2
    return None, False


def _collect_accesses(
    scope_node: ast.AST, scope: _Scope, attr_map: dict[str, str],
    phase_of, role: str, protocol: TickProtocol, out: _Findings,
) -> None:
    """Pass 2: diff every resolvable subscript against the protocol."""
    seen: set[tuple] = set()
    for node in _preorder(scope_node):
        if not isinstance(node, ast.Subscript):
            continue
        region, is_access = _resolve_subscript(node, scope, attr_map)
        if region is None or not is_access:
            continue
        kind = _access_kind(node)
        phase = phase_of(node.lineno)
        key = (region, kind, phase, node.lineno)
        if key in seen:
            continue
        seen.add(key)
        _check_access(region, role, phase, kind, node.lineno, protocol, out)


def _check_worker(
    worker: ast.FunctionDef, protocol: TickProtocol, out: _Findings,
) -> None:
    loop = next(
        (n for n in _preorder(worker) if isinstance(n, ast.While)), None
    )
    if loop is None:
        out.add("SL205", "_worker_main has no tick loop", worker.lineno)
        return
    recv_line = reply_line = None
    for node in _preorder(loop):
        if not isinstance(node, ast.Call):
            continue
        leaf = _leaf(node.func)
        if leaf == "recv" and recv_line is None:
            recv_line = node.lineno
        if (
            leaf == "send"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == "tick"
        ):
            reply_line = node.lineno
    if recv_line is None:
        out.add("SL205", "worker tick loop never receives the barrier tick",
                loop.lineno)
    if reply_line is None:
        out.add("SL205", "worker tick loop never sends the barrier reply",
                loop.lineno)

    scope = _Scope()
    _bind_scope(worker, scope, {}, protocol, out, "_worker_main")
    loop_end = _max_lineno(loop)

    def phase_of(line: int) -> str:
        if loop.lineno <= line <= loop_end:
            if reply_line is not None and line > reply_line:
                return "after-reply"
            return "tick"
        return "setup"

    _collect_accesses(worker, scope, {}, phase_of, "worker", protocol, out)


def _check_coordinator(
    cls: ast.ClassDef, protocol: TickProtocol, out: _Findings,
) -> None:
    methods = {
        n.name: n for n in cls.body if isinstance(n, ast.FunctionDef)
    }
    spawn = methods.get("_spawn")
    step = methods.get("step_arrays")
    if spawn is None or step is None:
        out.add("SL205",
                "coordinator is missing _spawn or step_arrays", cls.lineno)
        return

    attr_map: dict[str, str] = {}
    spawn_scope = _Scope()
    _bind_scope(spawn, spawn_scope, attr_map, protocol, out, "_spawn")
    _collect_accesses(
        spawn, spawn_scope, attr_map, lambda line: "init",
        "coordinator", protocol, out,
    )

    send_loop = recv_loop = None
    for stmt in step.body:
        for node in _preorder(stmt):
            if not isinstance(node, ast.Call):
                continue
            leaf = _leaf(node.func)
            if leaf == "send" and send_loop is None and isinstance(stmt, ast.For):
                send_loop = stmt
            if leaf in ("recv", "_barrier_recv") and isinstance(stmt, ast.For):
                if recv_loop is None and stmt is not send_loop:
                    recv_loop = stmt
    if send_loop is None:
        out.add("SL205", "step_arrays has no worker-release send loop",
                step.lineno)
    if recv_loop is None:
        out.add("SL205", "step_arrays has no barrier reply-collection loop",
                step.lineno)

    if send_loop is not None and recv_loop is not None:
        window = (send_loop.lineno, _max_lineno(recv_loop))

        def phase_of(line: int) -> str:
            if line < window[0]:
                return "scatter"
            if line <= window[1]:
                return "barrier-window"
            return "gather"
    else:
        def phase_of(line: int) -> str:
            return "scatter"

    step_scope = _Scope()
    _bind_scope(step, step_scope, attr_map, protocol, out, "step_arrays")
    _collect_accesses(
        step, step_scope, attr_map, phase_of, "coordinator", protocol, out,
    )

    for name, method in methods.items():
        if name in ("_spawn", "step_arrays"):
            continue
        other_scope = _Scope()
        _bind_scope(method, other_scope, attr_map, protocol, out, name)
        _collect_accesses(
            method, other_scope, attr_map,
            lambda line, name=name: f"other:{name}",
            "coordinator", protocol, out,
        )


def _check_stale(protocol: TickProtocol, out: _Findings) -> None:
    """SL204: declared accesses the source never performs."""
    for spec in protocol.regions.values():
        if spec.opaque:
            continue
        for access in spec.accesses:
            for letter in access.kind:
                if (spec.name, access.role, access.phase, letter) not in out.observed:
                    out.add("SL204",
                            f"protocol declares {access.role} {letter.upper()} "
                            f"access to {spec.name!r} in phase "
                            f"{access.phase!r} but the source never performs "
                            "it", 1)


def check_parallel_text(
    text: str, path: str | Path = "parallel.py",
    protocol: TickProtocol = PARALLEL_PROTOCOL,
) -> LintReport:
    """Check one parallel-engine source text against *protocol*."""
    report = LintReport(subject="sanitize-static")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        report.add(Diagnostic(
            code="SL100", severity=Severity.ERROR,
            message=f"syntax error: {exc.msg}",
            location=Location(path=str(path), line=exc.lineno or 0),
        ))
        return report

    out = _Findings()
    worker = next(
        (n for n in tree.body
         if isinstance(n, ast.FunctionDef) and n.name == "_worker_main"),
        None,
    )
    cls = next(
        (n for n in tree.body
         if isinstance(n, ast.ClassDef) and n.name == "ParallelCompassSimulator"),
        None,
    )
    if worker is None:
        out.add("SL205", "engine source has no _worker_main", 1)
    else:
        _check_worker(worker, protocol, out)
    if cls is None:
        out.add("SL205", "engine source has no ParallelCompassSimulator", 1)
    else:
        _check_coordinator(cls, protocol, out)
    _check_stale(protocol, out)

    _emit(out, text, path, report)
    return report


def sweep_buffer_bindings(text: str, path: str | Path) -> LintReport:
    """SL200 sweep: shm-buffer ndarray bindings outside the known engine.

    Only ``buffer=<expr>.buf`` bindings count — a real shared-memory
    buffer export.  (SpanStrip's ``buffer=buf`` over an opaque caller
    buffer is mediation, not a region binding.)
    """
    report = LintReport(subject="sanitize-static")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError:
        return report  # the source lint owns SL100
    out = _Findings()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _leaf(node.func) == "ndarray":
            buffer = _buffer_kw(node)
            if (
                buffer is not None
                and isinstance(buffer, ast.Attribute)
                and buffer.attr == "buf"
            ):
                out.add("SL200",
                        "shared-memory buffer view bound outside the "
                        "declared engine protocol", node.lineno)
    _emit(out, text, path, report)
    return report


def _emit(out: _Findings, text: str, path: str | Path, report: LintReport) -> None:
    """Render raw findings into diagnostics, honouring allow pragmas."""
    lines = text.splitlines()
    for code, message, line in sorted(out.items, key=lambda f: (f[2], f[0])):
        line_text = lines[line - 1] if 0 < line <= len(lines) else ""
        if code in _allowed_codes(line_text):
            continue
        info = SANITIZE_CODES[code]
        report.add(Diagnostic(
            code=code, severity=info.severity, message=message,
            location=Location(path=str(path), line=line), hint=info.hint,
        ))


def check_protocol_sources(extra_paths=()) -> LintReport:
    """Check the installed engine sources against the declared protocol.

    The parallel engine gets the full extraction; the batched engine,
    the trace strips, and the serving runtime get the SL200 binding
    sweep (their sharing is in-process and dynamically enforced).
    """
    import repro.compass.batched as batched_mod
    import repro.compass.parallel as parallel_mod
    import repro.obs.trace as trace_mod
    import repro.runtime.serving as serving_mod

    parallel_path = Path(parallel_mod.__file__)
    report = check_parallel_text(
        parallel_path.read_text(encoding="utf-8"), parallel_path
    )
    sweep = [
        Path(batched_mod.__file__),
        Path(trace_mod.__file__),
        Path(serving_mod.__file__),
        *map(Path, extra_paths),
    ]
    for path in sweep:
        report.extend(sweep_buffer_bindings(path.read_text(encoding="utf-8"), path))
    return report


__all__ = [
    "check_parallel_text", "check_protocol_sources", "sweep_buffer_bindings",
]
