"""Fault injection: deliberately tear the protocol to prove detection.

A sanitizer that has only ever seen clean runs is untested tooling.
Each :class:`FaultInjection` kind breaks the tick protocol in one
specific, contained way so the test suite (and the CI ``sanitize`` job)
can assert the dynamic layer actually fires:

``drop-barrier``
    The coordinator "forgets" one reply edge: its recorder skips the
    recv barrier marker for (*rank*, *tick*).  The worker's tick-*tick*
    writes and the coordinator's gather reads lose their ordering edge
    and surface as SL210 data races — exactly what deleting the recv
    loop from ``step_arrays`` would cause.  The simulation itself is
    untouched (the pipe message is still consumed), so results stay
    bit-exact.

``overlap-slices``
    Models a partitioner bug assigning two ranks overlapping slices of
    one ring slab: at merge time, rank *rank*'s ``ring`` accesses are
    relabelled onto rank ``rank - 1``'s region.  Same-tick writes from
    two workers now collide on "one" region with no cross-worker edge
    ordering them -> SL210.

``out-of-phase-write``
    The engine performs one real (but value-neutral) write outside the
    declared phase for its role: the parallel coordinator pokes a stats
    slot during scatter, the batched engine pokes ``v`` during route.
    Phase conformance flags it as SL211.

Faults only ever engage when the caller passes one explicitly (or sets
``REPRO_SANITIZE_FAULT``); they exist to be detected, not to run in
anger.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Recognized fault kinds, in docs order.
FAULT_KINDS = ("drop-barrier", "overlap-slices", "out-of-phase-write")


@dataclass(frozen=True)
class FaultInjection:
    """One injected protocol fault: *kind* applied at (*rank*, *tick*)."""

    kind: str
    rank: int = 1
    tick: int = 2

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )


def resolve_fault(spec) -> FaultInjection | None:
    """Normalize a fault spec: object, kind string, or the env default.

    ``None`` falls back to ``REPRO_SANITIZE_FAULT`` (a kind name,
    optionally ``kind:rank:tick``); empty/unset means no fault.
    """
    if spec is None:
        spec = os.environ.get("REPRO_SANITIZE_FAULT", "").strip() or None
    if spec is None or isinstance(spec, FaultInjection):
        return spec
    parts = str(spec).split(":")
    kind = parts[0]
    rank = int(parts[1]) if len(parts) > 1 else 1
    tick = int(parts[2]) if len(parts) > 2 else 2
    return FaultInjection(kind, rank=rank, tick=tick)


def apply_overlap_relabel(events, fault: FaultInjection | None) -> None:
    """Apply ``overlap-slices`` to a merged access log, in place.

    Rank *fault.rank*'s ``ring`` accesses move onto the previous rank's
    region — the access pattern an overlapping partition slice would
    actually produce.
    """
    if fault is None or fault.kind != "overlap-slices":
        return
    src = f"rank{fault.rank}"
    dst = f"rank{max(0, fault.rank - 1)}"
    for ev in events:
        if ev.region is not None and ev.region == (src, "ring"):
            ev.region = (dst, "ring")


__all__ = ["FAULT_KINDS", "FaultInjection", "resolve_fault", "apply_overlap_relabel"]
