"""Dynamic race detector: shadow views and per-actor access logs.

The opt-in runtime half of the sanitizer.  When an engine runs with
``sanitize=True`` (or ``REPRO_SANITIZE=1``), every shm-backed array is
wrapped in a :class:`ShadowArray` — an ndarray view subclass that
records each indexed read/write as an :class:`AccessEvent` (actor,
tick, phase, region, first-axis slice, trimmed stack) into that
process's :class:`AccessRecorder`.  Barrier pipe messages are recorded
as matching send/recv marker events; workers ship their logs back over
the control pipe at shutdown, and :mod:`repro.sanitize.analyze` merges
everything, derives vector clocks from the markers, and reports
conflicting unordered pairs.

Recording discipline: only the root view and its *direct* children
(rows, header slices) track — arrays produced further downstream
(ufunc results, ``.copy()``, fancy-index copies) deliberately do not,
so the log captures the shared-memory traffic, not local arithmetic on
private copies.  Whole-array operations that bypass ``__getitem__``
(``np.add.at``, in-place ufuncs on the root) are covered by explicit
:meth:`AccessRecorder.note` calls at the engine's phase boundaries.
Consecutive same-shaped accesses within one (tick, phase) segment
coalesce into a single span-merged event, which keeps log volume
proportional to ticks, not to spike counts.

Overhead contract: when sanitize is off the engines construct no
recorder and no shadow views — the tick path is byte-for-byte the
normal one, which is what ``benchmarks/bench_sanitize_overhead.py``
gates (<= 5%, same style as the obs gate).
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.sanitize.faults import FaultInjection, resolve_fault

#: Open upper bound used by :meth:`AccessRecorder.note` for
#: whole-region accesses when the extent is unknown.
SPAN_ALL = 1 << 40


def sanitize_enabled(flag: bool | None) -> bool:
    """Resolve an engine's ``sanitize`` kwarg against ``REPRO_SANITIZE``.

    An explicit ``True``/``False`` wins; ``None`` defers to the
    environment (``1``/``true``/``on`` enable).
    """
    if flag is not None:
        return bool(flag)
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in ("1", "true", "on")


@dataclass
class AccessEvent:
    """One recorded access or barrier marker in an actor's log.

    ``kind`` is ``"R"``/``"W"`` for array accesses (``region`` set,
    ``[lo, hi)`` the touched first-axis span) or ``"send"``/``"recv"``
    for barrier markers (``peer`` set).  ``vc`` is stamped by the
    analyzer.  Mutable on purpose: fault relabelling and clock stamping
    happen post-merge.
    """

    actor: str
    seq: int
    tick: int
    phase: str
    kind: str
    region: tuple[str, str] | None = None
    lo: int = 0
    hi: int = 0
    stack: str = ""
    peer: str | None = None
    count: int = 1
    vc: tuple = field(default=(), compare=False)

    def describe(self) -> str:
        """Human rendering used inside race/phase diagnostics."""
        where = "/".join(self.region) if self.region else (self.peer or "?")
        extra = f" x{self.count}" if self.count > 1 else ""
        return (
            f"{self.actor} {self.kind} {where}[{self.lo}:{self.hi}] "
            f"tick={self.tick} phase={self.phase}{extra} at {self.stack or '<none>'}"
        )


def _stack_summary(skip: int = 3, keep: int = 3) -> str:
    """Innermost *keep* frames below the recorder, as a picklable string."""
    frames = traceback.extract_stack()[:-skip]
    tail = frames[-keep:]
    return " <- ".join(
        f"{Path(f.filename).name}:{f.lineno} in {f.name}" for f in reversed(tail)
    )


class AccessRecorder:
    """Per-process access log for one actor (coordinator, rank, engine).

    The engine sets the (tick, phase) context at its phase boundaries;
    shadow views call :meth:`record` on every indexed access.  Barrier
    markers flush the coalescing window so no event ever merges across
    an ordering edge.
    """

    def __init__(self, actor: str, fault: FaultInjection | None = None) -> None:
        self.actor = actor
        self.fault = fault
        self.events: list[AccessEvent] = []
        self.tick = -1
        self.phase = "init"
        self._seq = 0
        self._coalesce: dict[tuple, AccessEvent] = {}

    def set_context(self, tick: int, phase: str) -> None:
        """Enter a new (tick, phase) segment; closes the coalesce window."""
        self.tick = tick
        self.phase = phase
        self._coalesce = {}

    def record(self, region: tuple[str, str], kind: str, lo: int, hi: int) -> None:
        """Record one ``R``/``W`` access to *region* spanning ``[lo, hi)``."""
        key = (region, kind)
        merged = self._coalesce.get(key)
        if merged is not None:
            merged.lo = min(merged.lo, lo)
            merged.hi = max(merged.hi, hi)
            merged.count += 1
            return
        self._seq += 1
        event = AccessEvent(
            actor=self.actor, seq=self._seq, tick=self.tick, phase=self.phase,
            kind=kind, region=region, lo=lo, hi=hi, stack=_stack_summary(),
        )
        self.events.append(event)
        self._coalesce[key] = event

    def note(self, region: tuple[str, str], kind: str,
             lo: int = 0, hi: int = SPAN_ALL) -> None:
        """Record a whole-region access performed outside a shadow view."""
        self.record(region, kind, lo, hi)

    def barrier(self, kind: str, peer: str, tick: int) -> None:
        """Record a barrier pipe message (``send``/``recv``) with *peer*.

        The ``drop-barrier`` fault elides exactly one coordinator recv
        marker — the ordering edge vanishes from the log while the
        simulation (which still consumed the pipe message) is unchanged.
        """
        self._coalesce = {}
        if (
            self.fault is not None
            and self.fault.kind == "drop-barrier"
            and kind == "recv"
            and self.actor == "coord"
            and peer == f"rank{self.fault.rank}"
            and tick == self.fault.tick
        ):
            return
        self._seq += 1
        self.events.append(AccessEvent(
            actor=self.actor, seq=self._seq, tick=tick, phase=self.phase,
            kind=kind, peer=peer,
        ))


class ShadowArray(np.ndarray):
    """Access-recording view over one shared region.

    Created via :func:`shadow_view`; never allocated directly.  The
    root view records every indexed access and arms its direct children
    (basic-slice views) with the refined first-axis span; everything
    further derived is inert, so private copies and ufunc temporaries
    stay silent.
    """

    def __array_finalize__(self, obj) -> None:
        self._region = getattr(obj, "_region", None)
        self._rec = getattr(obj, "_rec", None)
        self._span = getattr(obj, "_span", (0, 0))
        self._track = False
        self._is_root = False

    def _key_span(self, key) -> tuple[int, int]:
        """First-axis span ``[lo, hi)`` a subscript key touches.

        Exact for int and basic-slice leading keys; conservative (the
        view's whole span) for fancy/boolean indexing — the direction
        that can only over-report overlap, never miss it.
        """
        lo, hi = self._span
        if not self._is_root:
            return lo, hi
        lead = key[0] if isinstance(key, tuple) and key else key
        n = self.shape[0] if self.ndim else 1
        if isinstance(lead, (int, np.integer)):
            i = int(lead)
            if i < 0:
                i += n
            return i, i + 1
        if isinstance(lead, slice):
            start, stop, step = lead.indices(n)
            if step > 0 and stop > start:
                return start, stop
        return 0, n

    def __getitem__(self, key):
        out = super().__getitem__(key)
        if self._track and self._rec is not None:
            lo, hi = self._key_span(key)
            self._rec.record(self._region, "R", lo, hi)
            if self._is_root and isinstance(out, ShadowArray) and out.base is not None:
                out._region = self._region
                out._rec = self._rec
                out._span = (lo, hi)
                out._track = True
        return out

    def __setitem__(self, key, value) -> None:
        if self._track and self._rec is not None:
            lo, hi = self._key_span(key)
            rec = self._rec
            rec.record(self._region, "W", lo, hi)
            # numpy implements some slice assignments by re-entering
            # __getitem__ on self; mute the recorder for the duration so
            # the write doesn't also log a phantom read.
            self._rec = None
            try:
                super().__setitem__(key, value)
            finally:
                self._rec = rec
            return
        super().__setitem__(key, value)


def shadow_view(arr: np.ndarray, region: tuple[str, str],
                recorder: AccessRecorder) -> np.ndarray:
    """Wrap *arr* in a recording :class:`ShadowArray` root view.

    Returns a zero-copy view: same buffer, same dtype, same layout —
    only ``__getitem__``/``__setitem__`` gain the recording hook.
    """
    view = arr.view(ShadowArray)
    view._region = region
    view._rec = recorder
    view._span = (0, view.shape[0] if view.ndim else 1)
    view._track = True
    view._is_root = True
    return view


__all__ = [
    "SPAN_ALL", "AccessEvent", "AccessRecorder", "ShadowArray",
    "shadow_view", "sanitize_enabled", "resolve_fault", "FaultInjection",
]
