"""repro.sanitize: shared-memory race detection for the parallel engines.

Two layers over one declarative tick protocol
(:mod:`repro.sanitize.protocol`):

* **static** (:mod:`repro.sanitize.static`) — an AST pass extracts the
  actual shm reads/writes from the engine sources and diffs them
  against the declared (region, role, phase, kind) table; codes
  SL200-SL205.
* **dynamic** (:mod:`repro.sanitize.dynamic` +
  :mod:`repro.sanitize.analyze`) — opt-in (``sanitize=True`` or
  ``REPRO_SANITIZE=1``) shadow views record every access per actor;
  logs merge at close with vector clocks derived from the barrier pipe
  messages, and unordered conflicting pairs are reported with both
  stack contexts; codes SL210-SL212.

Fault injection (:mod:`repro.sanitize.faults`) tears the protocol in
controlled ways — dropped barrier edge, overlapping partition slices,
out-of-phase write — so detection is provable end-to-end: the
``repro sanitize`` CLI and the CI ``sanitize`` job run both the clean
sweep (zero findings required) and the fault runs (findings required).

Everything reports through :class:`repro.lint.diagnostics.LintReport`,
the same machinery as the model checker and source lint.
"""

from repro.sanitize.analyze import analyze_access_log, stamp_vector_clocks
from repro.sanitize.dynamic import (
    AccessEvent,
    AccessRecorder,
    ShadowArray,
    sanitize_enabled,
    shadow_view,
)
from repro.sanitize.faults import (
    FAULT_KINDS,
    FaultInjection,
    apply_overlap_relabel,
    resolve_fault,
)
from repro.sanitize.protocol import (
    BATCHED_PROTOCOL,
    PARALLEL_PROTOCOL,
    PROTOCOLS,
    SANITIZE_CODES,
    Access,
    RegionSpec,
    TickProtocol,
)
from repro.sanitize.static import (
    check_parallel_text,
    check_protocol_sources,
    sweep_buffer_bindings,
)

__all__ = [
    "SANITIZE_CODES",
    "Access",
    "RegionSpec",
    "TickProtocol",
    "PARALLEL_PROTOCOL",
    "BATCHED_PROTOCOL",
    "PROTOCOLS",
    "AccessEvent",
    "AccessRecorder",
    "ShadowArray",
    "shadow_view",
    "sanitize_enabled",
    "FAULT_KINDS",
    "FaultInjection",
    "resolve_fault",
    "apply_overlap_relabel",
    "analyze_access_log",
    "stamp_vector_clocks",
    "check_parallel_text",
    "check_protocol_sources",
    "sweep_buffer_bindings",
]
