"""Network description: neurosynaptic cores and their interconnection.

A :class:`Core` is pure *configuration* (the contents of a TrueNorth core's
SRAM): the binary crossbar, axon types, per-neuron weights and dynamics
parameters, and each neuron's spike target (core, axon, delay).  Simulator
state (membrane potentials, pending axon events) lives in the simulators.

A :class:`Network` is an ordered collection of cores plus the PRNG seed
shared by every expression of the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import params

OUTPUT_TARGET = -1  # target_core value marking a network output neuron


@dataclass
class Core:
    """Configuration of one neurosynaptic core.

    Array shapes use ``A`` = number of axons and ``N`` = number of neurons
    (both 256 on physical TrueNorth; smaller cores are permitted for tests
    and examples — the kernel semantics do not depend on the size).
    """

    crossbar: np.ndarray  # (A, N) bool: W[i, j]
    axon_types: np.ndarray  # (A,) int in [0, 3]: G_i
    weights: np.ndarray  # (N, 4) int in [WEIGHT_MIN, WEIGHT_MAX]: s^G_j
    stoch_synapse: np.ndarray  # (N, 4) bool: b^G_j, stochastic synapse mode
    leak: np.ndarray  # (N,) int in [LEAK_MIN, LEAK_MAX]: lambda_j
    leak_reversal: np.ndarray  # (N,) bool: epsilon_j
    stoch_leak: np.ndarray  # (N,) bool: c_j
    threshold: np.ndarray  # (N,) int in [0, THRESHOLD_MAX]: alpha_j
    threshold_mask: np.ndarray  # (N,) int in [0, THRESHOLD_MASK_MAX]: TM_j
    neg_threshold: np.ndarray  # (N,) int >= 0: beta_j
    reset_value: np.ndarray  # (N,) int: R_j
    reset_mode: np.ndarray  # (N,) int in RESET_MODES: delta_j
    neg_floor_mode: np.ndarray  # (N,) int in NEG_FLOOR_MODES: kappa_j
    initial_v: np.ndarray  # (N,) int: V_j(0)
    target_core: np.ndarray  # (N,) int: destination core index, -1 = output
    target_axon: np.ndarray  # (N,) int: destination axon index
    delay: np.ndarray  # (N,) int in [1, 15]
    name: str = ""

    def copy(self) -> "Core":
        """Deep copy (all arrays duplicated); used by the corelet compiler."""
        from dataclasses import fields

        kwargs = {}
        for f in fields(self):
            value = getattr(self, f.name)
            kwargs[f.name] = value.copy() if isinstance(value, np.ndarray) else value
        return Core(**kwargs)

    @property
    def n_axons(self) -> int:
        """Number of axons (crossbar rows)."""
        return self.crossbar.shape[0]

    @property
    def n_neurons(self) -> int:
        """Number of neurons (crossbar columns)."""
        return self.crossbar.shape[1]

    @property
    def n_synapses(self) -> int:
        """Number of programmed (non-zero) synapses in the crossbar."""
        return int(self.crossbar.sum())

    @property
    def any_stochastic_synapse(self) -> bool:
        """True when any neuron uses stochastic synaptic integration."""
        return bool(self.stoch_synapse.any())

    def validate(self) -> None:
        """Check every field for shape and range consistency.

        Delegates to the static model checker
        (:func:`repro.lint.model.check_core`); any architectural
        violation raises :class:`repro.lint.LintError` (a ``ValueError``
        subclass) carrying ``TN###`` diagnostic codes.
        """
        from repro.lint.model import check_core  # local: lint imports core

        check_core(self, strict=True)

    @staticmethod
    def build(
        n_axons: int = params.CORE_AXONS,
        n_neurons: int = params.CORE_NEURONS,
        *,
        crossbar: np.ndarray | None = None,
        axon_types: np.ndarray | None = None,
        weights: np.ndarray | None = None,
        stoch_synapse: np.ndarray | None = None,
        leak: np.ndarray | int = 0,
        leak_reversal: np.ndarray | bool = False,
        stoch_leak: np.ndarray | bool = False,
        threshold: np.ndarray | int = 1,
        threshold_mask: np.ndarray | int = 0,
        neg_threshold: np.ndarray | int = 0,
        reset_value: np.ndarray | int = 0,
        reset_mode: np.ndarray | int = params.RESET_TO_VALUE,
        neg_floor_mode: np.ndarray | int = params.NEG_FLOOR_SATURATE,
        initial_v: np.ndarray | int = 0,
        target_core: np.ndarray | int = OUTPUT_TARGET,
        target_axon: np.ndarray | int = 0,
        delay: np.ndarray | int = params.MIN_DELAY,
        name: str = "",
    ) -> "Core":
        """Construct a validated core, broadcasting scalar parameters.

        Defaults give an inert core: empty crossbar, unit thresholds,
        output-only targets.  Callers override only what they need.
        """

        def per_neuron(value, dtype=np.int64):
            arr = np.asarray(value, dtype=dtype)
            if arr.ndim == 0:
                arr = np.full(n_neurons, arr, dtype=dtype)
            return arr

        if crossbar is None:
            crossbar = np.zeros((n_axons, n_neurons), dtype=bool)
        else:
            crossbar = np.asarray(crossbar, dtype=bool)
        if axon_types is None:
            axon_types = np.zeros(n_axons, dtype=np.int64)
        else:
            axon_types = np.asarray(axon_types, dtype=np.int64)
        if weights is None:
            weights = np.ones((n_neurons, params.NUM_AXON_TYPES), dtype=np.int64)
        else:
            weights = np.asarray(weights, dtype=np.int64)
            if weights.ndim == 1:
                weights = np.tile(weights[None, :], (n_neurons, 1))
        if stoch_synapse is None:
            stoch_synapse = np.zeros((n_neurons, params.NUM_AXON_TYPES), dtype=bool)
        else:
            stoch_synapse = np.asarray(stoch_synapse, dtype=bool)
            if stoch_synapse.ndim == 0:
                stoch_synapse = np.full(
                    (n_neurons, params.NUM_AXON_TYPES), bool(stoch_synapse), dtype=bool
                )
            elif stoch_synapse.ndim == 1:
                stoch_synapse = np.tile(stoch_synapse[None, :], (n_neurons, 1))

        core = Core(
            crossbar=crossbar,
            axon_types=axon_types,
            weights=weights,
            stoch_synapse=stoch_synapse,
            leak=per_neuron(leak),
            leak_reversal=per_neuron(leak_reversal, dtype=bool),
            stoch_leak=per_neuron(stoch_leak, dtype=bool),
            threshold=per_neuron(threshold),
            threshold_mask=per_neuron(threshold_mask),
            neg_threshold=per_neuron(neg_threshold),
            reset_value=per_neuron(reset_value),
            reset_mode=per_neuron(reset_mode),
            neg_floor_mode=per_neuron(neg_floor_mode),
            initial_v=per_neuron(initial_v),
            target_core=per_neuron(target_core),
            target_axon=per_neuron(target_axon),
            delay=per_neuron(delay),
            name=name,
        )
        core.validate()
        return core


@dataclass
class Network:
    """An ordered collection of cores forming one logical network.

    The *seed* feeds the counter-based PRNG shared by every kernel
    expression, so identical (network, seed, inputs) triples produce
    identical spike streams regardless of the simulator used.
    """

    cores: list[Core] = field(default_factory=list)
    seed: int = 0
    name: str = ""

    @property
    def n_cores(self) -> int:
        """Number of cores in the network."""
        return len(self.cores)

    @property
    def n_neurons(self) -> int:
        """Total neuron count across all cores."""
        return sum(c.n_neurons for c in self.cores)

    @property
    def n_synapses(self) -> int:
        """Total programmed synapse count across all cores."""
        return sum(c.n_synapses for c in self.cores)

    def add_core(self, core: Core) -> int:
        """Append *core* and return its index."""
        self.cores.append(core)
        return len(self.cores) - 1

    def validate(self) -> None:
        """Validate every core and all inter-core targets.

        Delegates to the static model checker
        (:func:`repro.lint.model.check_network`); any architectural
        violation — bad shapes or ranges, dangling routes, PRNG
        coordinate collisions — raises :class:`repro.lint.LintError`
        (a ``ValueError`` subclass) with ``TN###`` diagnostic codes.
        """
        from repro.lint.model import check_network  # local: lint imports core

        check_network(self, strict=True)
