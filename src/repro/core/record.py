"""Spike records: the observable output of a simulation run.

A :class:`SpikeRecord` stores every neuron firing as a (tick, core,
neuron) triple plus the run's :class:`~repro.core.counters.EventCounters`.
Records from different kernel expressions compare with ``==`` for the
one-to-one equivalence regressions of paper Section VI-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.counters import EventCounters


@dataclass
class SpikeRecord:
    """All spikes emitted during a run, in canonical sorted order."""

    ticks: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    cores: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    neurons: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    counters: EventCounters = field(default_factory=EventCounters)

    @staticmethod
    def from_events(
        events: list[tuple[int, int, int]], counters: EventCounters | None = None
    ) -> "SpikeRecord":
        """Build a record from (tick, core, neuron) tuples."""
        if events:
            arr = np.asarray(sorted(events), dtype=np.int64)
            ticks, cores, neurons = arr[:, 0], arr[:, 1], arr[:, 2]
        else:
            ticks = cores = neurons = np.zeros(0, dtype=np.int64)
        return SpikeRecord(
            ticks=ticks,
            cores=cores,
            neurons=neurons,
            counters=counters or EventCounters(),
        )

    @staticmethod
    def from_arrays(
        ticks: np.ndarray,
        cores: np.ndarray,
        neurons: np.ndarray,
        counters: EventCounters | None = None,
    ) -> "SpikeRecord":
        """Build a record from parallel (ticks, cores, neurons) arrays.

        The array path avoids per-spike Python tuples entirely; the
        canonical (tick, core, neuron) sort order matches
        :meth:`from_events`, so records built either way compare equal.
        """
        ticks = np.asarray(ticks, dtype=np.int64)
        cores = np.asarray(cores, dtype=np.int64)
        neurons = np.asarray(neurons, dtype=np.int64)
        if ticks.size:
            order = np.lexsort((neurons, cores, ticks))
            ticks, cores, neurons = ticks[order], cores[order], neurons[order]
        return SpikeRecord(
            ticks=ticks,
            cores=cores,
            neurons=neurons,
            counters=counters or EventCounters(),
        )

    @property
    def n_spikes(self) -> int:
        """Total number of recorded spikes."""
        return int(self.ticks.size)

    def as_tuples(self) -> list[tuple[int, int, int]]:
        """Return spikes as sorted (tick, core, neuron) tuples."""
        return list(zip(self.ticks.tolist(), self.cores.tolist(), self.neurons.tolist()))

    def spikes_at(self, tick: int) -> list[tuple[int, int]]:
        """Return (core, neuron) pairs that fired at *tick*."""
        mask = self.ticks == tick
        return list(zip(self.cores[mask].tolist(), self.neurons[mask].tolist()))

    def for_core(self, core: int) -> "SpikeRecord":
        """Return the sub-record of spikes emitted by *core*."""
        mask = self.cores == core
        return SpikeRecord(
            ticks=self.ticks[mask],
            cores=self.cores[mask],
            neurons=self.neurons[mask],
            counters=self.counters,
        )

    def rate_hz(self, n_neurons: int, n_ticks: int, tick_seconds: float = 1e-3) -> float:
        """Mean per-neuron firing rate over the run."""
        if n_neurons == 0 or n_ticks == 0:
            return 0.0
        return self.n_spikes / (n_neurons * n_ticks * tick_seconds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpikeRecord):
            return NotImplemented
        return (
            np.array_equal(self.ticks, other.ticks)
            and np.array_equal(self.cores, other.cores)
            and np.array_equal(self.neurons, other.neurons)
        )

    def first_mismatch(self, other: "SpikeRecord") -> tuple[int, int, int] | None:
        """Return the earliest spike present in exactly one record, or None.

        This mirrors the paper's regression methodology: a single missed
        or spurious spike is a detectable, reportable divergence.
        """
        mine = set(self.as_tuples())
        theirs = set(other.as_tuples())
        diff = mine.symmetric_difference(theirs)
        if not diff:
            return None
        return min(diff)
