"""Deterministic, counter-based pseudo-random number generation.

The TrueNorth chip holds one hardware LFSR per core whose draws feed the
stochastic synapse, stochastic leak, and stochastic threshold modes.  The
LFSR is consumed in a fixed hardware order, which is awkward to reproduce
bit-exactly across differently-parallelized software expressions.

Following DESIGN.md substitution #3 we instead use a *counter-based*
generator: every draw is a pure function of

    (network seed, purpose, core id, tick, unit index)

where *unit* identifies the consumer (a neuron index, or an
``axon * CORE_NEURONS + neuron`` pair for per-synaptic-event draws).  The
generator is a splitmix64-style avalanche hash, which passes basic
equidistribution smoke tests and — crucially — is order-independent: the
vectorized Compass expression, the event-driven hardware expression, and
the scalar reference kernel all observe identical random streams, which is
what makes the paper's one-to-one equivalence regressions (Section VI-A)
reproducible here.

All functions are vectorized over the *unit* axis.
"""

from __future__ import annotations

import numpy as np

# Draw purposes (mixed into the key so distinct consumers never collide).
PURPOSE_SYNAPSE = 0x53594E41  # "SYNA"
PURPOSE_LEAK = 0x4C45414B  # "LEAK"
PURPOSE_THRESHOLD = 0x54485245  # "THRE"

_MASK64 = (1 << 64) - 1
_GOLDEN_INT = 0x9E3779B97F4A7C15
_GOLDEN = np.uint64(_GOLDEN_INT)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

_U30 = np.uint64(30)
_U27 = np.uint64(27)
_U31 = np.uint64(31)
_U8MASK = np.uint64(0xFF)
_U16MASK = np.uint64(0xFFFF)
_U32MASK = np.uint64(0xFFFFFFFF)


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer: avalanche a uint64 array (wrapping silently)."""
    x = (x ^ (x >> _U30)) * _MIX1
    x = (x ^ (x >> _U27)) * _MIX2
    return x ^ (x >> _U31)


def _mix64_int(x: int) -> int:
    """Scalar splitmix64 finalizer on Python ints (explicit 2^64 wrap)."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _key(seed: int, purpose: int, core: int, tick: int, units: np.ndarray) -> np.ndarray:
    """Combine the draw coordinates into a well-mixed uint64 key array.

    The (seed, purpose, core, tick) prefix mixes in exact Python integers;
    only the per-unit tail is vectorized, so scalar and array callers see
    identical streams.
    """
    k = _mix64_int((seed & _MASK64) + _GOLDEN_INT * (purpose & 0xFFFFFFFF))
    k = _mix64_int(k + _GOLDEN_INT * (core & 0xFFFFFFFFFFFF))
    k = _mix64_int(k + _GOLDEN_INT * (tick & 0xFFFFFFFFFFFF))
    u = np.asarray(units, dtype=np.uint64)
    return _mix64(np.uint64(k) + _GOLDEN * u)


def _key_multi(
    seed: int, purpose: int, cores: np.ndarray, tick: int, units: np.ndarray
) -> np.ndarray:
    """Like :func:`_key` but vectorized over a per-unit *cores* array.

    Bit-identical to calling :func:`_key` element-wise with each unit's
    core id: the (seed, purpose) prefix mixes in exact Python integers,
    then the core and tick stages run on uint64 arrays whose wrap-around
    arithmetic matches the explicitly masked scalar chain.  This is what
    lets a whole-network engine draw for crosspoints spanning many cores
    in one call.
    """
    k0 = _mix64_int((seed & _MASK64) + _GOLDEN_INT * (purpose & 0xFFFFFFFF))
    c = np.asarray(cores, dtype=np.uint64)
    k = _mix64(np.uint64(k0) + _GOLDEN * c)
    # Pre-wrap the tick term as a Python int: scalar uint64 overflow
    # warns in numpy even though wrapping is exactly what we want here.
    tick_term = np.uint64((_GOLDEN_INT * (tick & 0xFFFFFFFFFFFF)) & _MASK64)
    k = _mix64(k + tick_term)
    u = np.asarray(units, dtype=np.uint64)
    return _mix64(k + _GOLDEN * u)


def draw_u8(seed: int, purpose: int, core: int, tick: int, units: np.ndarray) -> np.ndarray:
    """Return uniform uint8 draws in [0, 255], one per entry of *units*."""
    return (_key(seed, purpose, core, tick, units) & _U8MASK).astype(np.int64)


def draw_u8_multi(
    seed: int, purpose: int, cores: np.ndarray, tick: int, units: np.ndarray
) -> np.ndarray:
    """Uniform uint8 draws for units living on per-unit *cores* ids."""
    return (_key_multi(seed, purpose, cores, tick, units) & _U8MASK).astype(np.int64)


def draw_u16_multi(
    seed: int, purpose: int, cores: np.ndarray, tick: int, units: np.ndarray
) -> np.ndarray:
    """Uniform uint16 draws for units living on per-unit *cores* ids."""
    return (_key_multi(seed, purpose, cores, tick, units) & _U16MASK).astype(np.int64)


def draw_u16(seed: int, purpose: int, core: int, tick: int, units: np.ndarray) -> np.ndarray:
    """Return uniform uint16 draws in [0, 65535], one per entry of *units*."""
    return (_key(seed, purpose, core, tick, units) & _U16MASK).astype(np.int64)


def draw_u32(seed: int, purpose: int, core: int, tick: int, units: np.ndarray) -> np.ndarray:
    """Return uniform uint32 draws, one per entry of *units*."""
    return (_key(seed, purpose, core, tick, units) & _U32MASK).astype(np.int64)


def draw_u8_scalar(seed: int, purpose: int, core: int, tick: int, unit: int) -> int:
    """Scalar convenience wrapper used by the reference kernel."""
    return int(draw_u8(seed, purpose, core, tick, np.asarray([unit]))[0])


def draw_u16_scalar(seed: int, purpose: int, core: int, tick: int, unit: int) -> int:
    """Scalar convenience wrapper used by the reference kernel."""
    return int(draw_u16(seed, purpose, core, tick, np.asarray([unit]))[0])


def synapse_unit(axon: int | np.ndarray, neuron: int | np.ndarray) -> int | np.ndarray:
    """Unit index for a per-synaptic-event draw at (axon, neuron)."""
    return axon * 256 + neuron


def derive_stream_seed(seed: int, stream: int) -> int:
    """Deterministic seed for derived stream *stream* of base *seed*.

    Used by the batched multi-replica engine and the serving runtime to
    give each replica lane / session its own decorrelated counter-based
    key space.  Stream 0 returns *seed* unchanged, so the first lane of
    a default batch stays bit-identical to a standalone run of the base
    network; streams are pairwise distinct under the avalanche mix, so
    the TN401 replica-coordinate check passes by construction.
    """
    if stream == 0:
        return seed
    return _mix64_int((seed & _MASK64) + _GOLDEN_INT * (stream & _MASK64))
