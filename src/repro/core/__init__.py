"""The neurosynaptic kernel: data structures and reference implementation.

This package holds the paper's primary contribution at its most abstract:
the core/axon/neuron/synapse data model (:mod:`repro.core.network`), the
deterministic PRNG (:mod:`repro.core.prng`), the neuron and crossbar math
(:mod:`repro.core.neuron`, :mod:`repro.core.crossbar`), the scalar
reference kernel (:mod:`repro.core.kernel`), and physical placement
(:mod:`repro.core.chip`).
"""

from repro.core import params
from repro.core.chip import ChipGeometry, DefectMap, Placement
from repro.core.counters import EventCounters
from repro.core.inputs import InputSchedule
from repro.core.kernel import ReferenceKernel, run_kernel
from repro.core.network import OUTPUT_TARGET, Core, Network
from repro.core.record import SpikeRecord

__all__ = [
    "params",
    "ChipGeometry",
    "DefectMap",
    "Placement",
    "EventCounters",
    "InputSchedule",
    "ReferenceKernel",
    "run_kernel",
    "OUTPUT_TARGET",
    "Core",
    "Network",
    "SpikeRecord",
]
