"""Reference implementation of the neurosynaptic kernel (paper Listing 1).

This is the executable ground truth: a deliberately scalar, loop-based
transcription of the paper's pseudo-code.  It is slow and crystal-clear.
The optimized expressions — :class:`repro.compass.CompassSimulator`
(software/"supercomputer" expression) and
:class:`repro.hardware.TrueNorthSimulator` (silicon expression) — must
produce spike streams identical to this kernel for any network, seed, and
input schedule; that property is enforced by the equivalence test suite,
mirroring the 100%-match regressions of paper Section VI-A.

The structure follows Listing 1 line-by-line:

* synaptic input loop        -> :meth:`_integrate_synapses`  (lines 4-8)
* leak / threshold / reset   -> :meth:`_update_neuron`       (lines 9-18)
* spike transmission         -> :meth:`_transmit`            (line 15)
* barrier / next time step   -> the per-tick loop in :func:`run_kernel`
"""

from __future__ import annotations

from collections import defaultdict

from repro.core import params, prng
from repro.core.counters import EventCounters
from repro.core.inputs import InputSchedule
from repro.core.network import OUTPUT_TARGET, Core, Network
from repro.core.record import SpikeRecord


def _sign(x: int) -> int:
    """Integer sign in {-1, 0, 1}."""
    return (x > 0) - (x < 0)


def _clamp(v: int) -> int:
    """Saturate to the 20-bit signed membrane range."""
    if v > params.MEMBRANE_MAX:
        return params.MEMBRANE_MAX
    if v < params.MEMBRANE_MIN:
        return params.MEMBRANE_MIN
    return v


class ReferenceKernel:
    """Scalar executor for one network, advanced tick by tick."""

    def __init__(self, network: Network, record_counters: bool = True) -> None:
        network.validate()
        self.network = network
        self.seed = network.seed
        self.membranes: list[list[int]] = [
            [int(v) for v in core.initial_v] for core in network.cores
        ]
        # pending[tick] -> set of (core, axon) deliveries
        self.pending: dict[int, set[tuple[int, int]]] = defaultdict(set)
        self.counters = EventCounters()
        if record_counters:
            self.counters.ensure_cores(network.n_cores)
        self.tick = 0

    # -- Listing 1 lines 4-8: synaptic input ------------------------------
    def _integrate_synapses(
        self, core: Core, core_id: int, active_axons: list[int], neuron: int
    ) -> tuple[int, int]:
        """Accumulate all synaptic events targeting *neuron* this tick.

        Returns the integrated input and the number of synaptic events.
        """
        total = 0
        n_events = 0
        for axon in active_axons:
            if not core.crossbar[axon, neuron]:
                continue
            g = int(core.axon_types[axon])
            weight = int(core.weights[neuron, g])
            if core.stoch_synapse[neuron, g]:
                rho = prng.draw_u8_scalar(
                    self.seed,
                    prng.PURPOSE_SYNAPSE,
                    core_id,
                    self.tick,
                    prng.synapse_unit(axon, neuron),
                )
                contribution = _sign(weight) if rho < abs(weight) else 0
            else:
                contribution = weight
            total += contribution
            n_events += 1
        return total, n_events

    # -- Listing 1 lines 9-18: leak, threshold, spike, reset ---------------
    def _update_neuron(
        self, core: Core, core_id: int, neuron: int, v: int, syn: int
    ) -> tuple[int, bool]:
        """Apply leak, threshold-compare, and reset for one neuron."""
        v = v + syn

        lam = int(core.leak[neuron])
        direction = _sign(v) if core.leak_reversal[neuron] else 1
        if core.stoch_leak[neuron]:
            rho = prng.draw_u8_scalar(
                self.seed, prng.PURPOSE_LEAK, core_id, self.tick, neuron
            )
            magnitude = 1 if rho < abs(lam) else 0
        else:
            magnitude = abs(lam)
        v = _clamp(v + direction * _sign(lam) * magnitude)

        theta = int(core.threshold[neuron])
        mask = int(core.threshold_mask[neuron])
        if mask:
            rho = prng.draw_u16_scalar(
                self.seed, prng.PURPOSE_THRESHOLD, core_id, self.tick, neuron
            )
            theta += rho & mask

        spiked = v >= theta
        if spiked:
            mode = int(core.reset_mode[neuron])
            if mode == params.RESET_TO_VALUE:
                v = int(core.reset_value[neuron])
            elif mode == params.RESET_LINEAR:
                v = v - theta
            # RESET_NONE leaves v unchanged.
        else:
            beta = int(core.neg_threshold[neuron])
            if v < -beta:
                if core.neg_floor_mode[neuron] == params.NEG_FLOOR_SATURATE:
                    v = -beta
                else:
                    v = -int(core.reset_value[neuron])
        return _clamp(v), spiked

    # -- Listing 1 line 15: transmit spike events --------------------------
    def _transmit(self, core: Core, neuron: int) -> None:
        """Schedule the spike of (core, neuron) for future delivery."""
        target = int(core.target_core[neuron])
        if target == OUTPUT_TARGET:
            return
        axon = int(core.target_axon[neuron])
        when = self.tick + int(core.delay[neuron])
        self.pending[when].add((target, axon))

    def inject(self, inputs: InputSchedule | None) -> None:
        """Load all external input events into the pending buffers."""
        if inputs is None:
            return
        for tick, core, axon in inputs:
            self.pending[tick].add((core, axon))

    # Alias matching the common simulator surface (engine selection).
    load_inputs = inject

    def run(self, n_ticks: int, inputs: InputSchedule | None = None) -> SpikeRecord:
        """Run *n_ticks* ticks and return the spike record."""
        self.inject(inputs)
        events: list[tuple[int, int, int]] = []
        for _ in range(n_ticks):
            events.extend(self.step())
        return SpikeRecord.from_events(events, self.counters)

    def step(self) -> list[tuple[int, int, int]]:
        """Advance the whole network one tick; return spikes emitted."""
        deliveries = self.pending.pop(self.tick, set())
        self.counters.deliveries += len(deliveries)
        active_by_core: dict[int, list[int]] = defaultdict(list)
        for core_id, axon in sorted(deliveries):
            active_by_core[core_id].append(axon)

        emitted: list[tuple[int, int, int]] = []
        for core_id, core in enumerate(self.network.cores):
            active = active_by_core.get(core_id, [])
            core_events = 0
            for neuron in range(core.n_neurons):
                syn, n_events = self._integrate_synapses(core, core_id, active, neuron)
                core_events += n_events
                v, spiked = self._update_neuron(
                    core, core_id, neuron, self.membranes[core_id][neuron], syn
                )
                self.membranes[core_id][neuron] = v
                self.counters.neuron_updates += 1
                self.counters.active_neuron_updates += 1
                if spiked:
                    self.counters.spikes += 1
                    emitted.append((self.tick, core_id, neuron))
                    self._transmit(core, neuron)
            self.counters.record_core_tick(core_id, core_events)
        # Barrier: all communication for this tick is complete (line 21).
        self.tick += 1
        self.counters.ticks = self.tick
        return emitted


def run_kernel(
    network: Network, n_ticks: int, inputs: InputSchedule | None = None
) -> SpikeRecord:
    """Run the reference kernel for *n_ticks* and return the spike record."""
    return ReferenceKernel(network).run(n_ticks, inputs)
