"""Event accounting shared by every kernel expression.

The paper's performance metrics are all event-count-driven: SOPS counts
synaptic events, active energy follows synaptic events + spike hops +
neuron updates, and the timing model follows the busiest core's event
load.  Every simulator fills in an :class:`EventCounters` so the analysis
layer can consume any expression's output interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class EventCounters:
    """Aggregate event counts for one simulation run."""

    ticks: int = 0
    synaptic_events: int = 0  # SOPs: active synapse x arriving spike
    spikes: int = 0  # neuron firings
    deliveries: int = 0  # axon events delivered (incl. external inputs)
    neuron_updates: int = 0  # neurons evaluated (leak/threshold) per tick
    # Neurons whose update was actually *computed*: equals neuron_updates
    # on the dense path; under the activity-gated path only the per-tick
    # active set is computed, so this is the measure of work done (and is
    # therefore engine-dependent, unlike every logical count above).
    active_neuron_updates: int = 0
    hops: int = 0  # mesh router hops traversed by spike packets
    # Aggregated inter-rank messages (Compass/Parallel expressions).
    # Semantics: a cumulative tally over the whole run — every simulator
    # *increments* this by the number of non-empty cross-rank (src, dst)
    # pairs it exchanged each tick (never assigns a snapshot), so records
    # from any expression merge and compare interchangeably.
    messages: int = 0
    # Membrane potentials clipped at the 20-bit bounds during update —
    # the saturation telemetry the obs layer exports; deterministic, so
    # identical across expressions like every other event count.
    membrane_saturations: int = 0
    max_core_events_per_tick: int = 0  # busiest core-tick synaptic event load
    synaptic_events_per_core: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    def ensure_cores(self, n_cores: int) -> None:
        """Size the per-core tally array for *n_cores* cores."""
        if self.synaptic_events_per_core.size != n_cores:
            self.synaptic_events_per_core = np.zeros(n_cores, dtype=np.int64)

    def record_core_tick(self, core_index: int, n_events: int) -> None:
        """Account one core's synaptic events for the current tick."""
        self.synaptic_events += n_events
        self.synaptic_events_per_core[core_index] += n_events
        if n_events > self.max_core_events_per_tick:
            self.max_core_events_per_tick = n_events

    @property
    def mean_firing_rate_hz(self) -> float:
        """Mean per-neuron firing rate in Hz, assuming 1 ms ticks."""
        if self.ticks == 0 or self.neuron_updates == 0:
            return 0.0
        neurons = self.neuron_updates / self.ticks
        return (self.spikes / (neurons * self.ticks)) * 1000.0

    @property
    def mean_active_synapses(self) -> float:
        """Mean synaptic fan-out observed per spike."""
        if self.spikes == 0:
            return 0.0
        return self.synaptic_events / self.spikes

    def sops_per_tick(self) -> float:
        """Mean synaptic operations per tick."""
        if self.ticks == 0:
            return 0.0
        return self.synaptic_events / self.ticks

    def copy(self) -> "EventCounters":
        """An independent deep copy (checkpoint snapshot/restore)."""
        dup = EventCounters(
            ticks=self.ticks,
            synaptic_events=self.synaptic_events,
            spikes=self.spikes,
            deliveries=self.deliveries,
            neuron_updates=self.neuron_updates,
            active_neuron_updates=self.active_neuron_updates,
            hops=self.hops,
            messages=self.messages,
            membrane_saturations=self.membrane_saturations,
            max_core_events_per_tick=self.max_core_events_per_tick,
        )
        dup.synaptic_events_per_core = self.synaptic_events_per_core.copy()
        return dup

    def merge(self, other: "EventCounters") -> None:
        """Accumulate *other*'s tallies into this counter (rank merge).

        Additive tallies sum; ``ticks`` takes the maximum (ranks of one
        run share the tick count, they don't add it); the per-core
        array grows to the larger core count and sums element-wise, so
        partial tallies sized for different prefixes merge losslessly.
        Merging an empty counter or a counter into itself is
        well-defined (self-merge doubles the additive tallies).
        """
        self.ticks = max(self.ticks, other.ticks)
        self.synaptic_events += other.synaptic_events
        self.spikes += other.spikes
        self.deliveries += other.deliveries
        self.neuron_updates += other.neuron_updates
        self.active_neuron_updates += other.active_neuron_updates
        self.hops += other.hops
        self.messages += other.messages
        self.membrane_saturations += other.membrane_saturations
        self.max_core_events_per_tick = max(
            self.max_core_events_per_tick, other.max_core_events_per_tick
        )
        theirs = other.synaptic_events_per_core
        if theirs.size:
            if self.synaptic_events_per_core.size < theirs.size:
                grown = np.zeros(theirs.size, dtype=np.int64)
                grown[: self.synaptic_events_per_core.size] = self.synaptic_events_per_core
                self.synaptic_events_per_core = grown
            # A slice view keeps self-merge safe: doubling in place.
            self.synaptic_events_per_core[: theirs.size] += theirs
