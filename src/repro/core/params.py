"""Architectural constants of the TrueNorth neurosynaptic architecture.

Values follow the SC14 paper and the TrueNorth chip specification:

* a neurosynaptic core has 256 axons (inputs) and 256 neurons (outputs)
  joined by a 256x256 binary crossbar;
* each axon carries one of 4 axon *types*; each neuron holds one signed
  9-bit weight per axon type;
* membrane potentials are 20-bit signed saturating integers;
* axonal delays range from 1 to 15 ticks;
* a chip is a 64x64 grid of cores (4,096 cores, 1M neurons, 256M synapses);
* the nominal tick is 1 ms (1 kHz "real time" operation).
"""

from __future__ import annotations

# --- Core geometry -------------------------------------------------------
CORE_AXONS = 256
CORE_NEURONS = 256
NUM_AXON_TYPES = 4

# --- Chip geometry --------------------------------------------------------
CHIP_CORES_X = 64
CHIP_CORES_Y = 64
CORES_PER_CHIP = CHIP_CORES_X * CHIP_CORES_Y  # 4,096
NEURONS_PER_CHIP = CORES_PER_CHIP * CORE_NEURONS  # 1,048,576
SYNAPSES_PER_CHIP = CORES_PER_CHIP * CORE_AXONS * CORE_NEURONS  # 268,435,456

# --- Datapath widths ------------------------------------------------------
MEMBRANE_BITS = 20
MEMBRANE_MIN = -(1 << (MEMBRANE_BITS - 1))  # -524288
MEMBRANE_MAX = (1 << (MEMBRANE_BITS - 1)) - 1  # 524287

WEIGHT_BITS = 9
WEIGHT_MIN = -(1 << (WEIGHT_BITS - 1))  # -256
WEIGHT_MAX = (1 << (WEIGHT_BITS - 1)) - 1  # 255

LEAK_MIN = WEIGHT_MIN
LEAK_MAX = WEIGHT_MAX

THRESHOLD_MAX = (1 << 18)  # positive threshold alpha
THRESHOLD_MASK_MAX = (1 << 17) - 1  # stochastic threshold mask (TM bits)

# --- Temporal parameters --------------------------------------------------
MIN_DELAY = 1
MAX_DELAY = 15
DELAY_SLOTS = MAX_DELAY + 1  # ring-buffer depth for pending axon events

TICK_SECONDS = 1.0e-3  # nominal real-time tick (1 kHz)
REAL_TIME_HZ = 1.0 / TICK_SECONDS

# --- Reset / floor modes --------------------------------------------------
RESET_TO_VALUE = 0  # V <- R on spike
RESET_LINEAR = 1  # V <- V - theta on spike
RESET_NONE = 2  # V unchanged on spike
RESET_MODES = (RESET_TO_VALUE, RESET_LINEAR, RESET_NONE)

NEG_FLOOR_SATURATE = 0  # V < -beta  =>  V <- -beta
NEG_FLOOR_RESET = 1  # V < -beta  =>  V <- -R
NEG_FLOOR_MODES = (NEG_FLOOR_SATURATE, NEG_FLOOR_RESET)

# --- Physical / electrical nominal values (paper Section VI) --------------
NOMINAL_VOLTAGE = 0.75  # measurement voltage for Fig. 5(a,b,d,e)
MIN_VOLTAGE = 0.67  # lowest tested supply
MAX_VOLTAGE = 1.05  # highest tested supply
MIN_FUNCTIONAL_VOLTAGE = 0.70  # "~700mV" functional floor

CHIP_AREA_CM2 = 4.3  # 5.4B transistors in 4.3 cm^2 (28 nm)
CORE_FOOTPRINT_UM2 = 390 * 240
