"""Vectorized synaptic integration through a core's binary crossbar.

This is the inner loop the paper defines as a *synaptic operation* (SOP):

    V_j(t) += A_i(t) * W_ij * s^{G_i}_j

conditioned on the synapse being programmed (``W_ij = 1``) and a spike
being present on the axon (``A_i(t) = 1``).  The stochastic-synapse mode
replaces ``s`` with ``sgn(s) * Bernoulli(|s|/256)`` using one PRNG draw
per (axon, neuron) synaptic event.
"""

from __future__ import annotations

import numpy as np

from repro.core import prng
from repro.core.network import Core


def synaptic_input(
    core: Core,
    active_axons: np.ndarray,
    core_id: int,
    tick: int,
    seed: int,
) -> tuple[np.ndarray, int]:
    """Integrate all pending synaptic events for one core and tick.

    Parameters
    ----------
    active_axons:
        Integer indices of axons receiving a spike this tick (may be
        empty).  Duplicates are not expected — axon events merge.

    Returns
    -------
    (syn, n_events):
        Per-neuron integrated input, shape ``(N,)`` int64, and the number
        of synaptic events processed (active-axon crossbar fan-out), which
        is exactly the paper's SOP count for this core-tick.
    """
    n = core.n_neurons
    if active_axons.size == 0:
        return np.zeros(n, dtype=np.int64), 0

    w_active = core.crossbar[active_axons, :]  # (na, N) bool
    types = core.axon_types[active_axons]  # (na,)
    weights = core.weights[:, types].T.astype(np.int64)  # (na, N)

    n_events = int(w_active.sum())
    if n_events == 0:
        return np.zeros(n, dtype=np.int64), 0

    if core.any_stochastic_synapse:
        stoch = core.stoch_synapse[:, types].T  # (na, N) bool
        units = prng.synapse_unit(
            active_axons[:, None].astype(np.int64), np.arange(n, dtype=np.int64)[None, :]
        )
        rho = prng.draw_u8(seed, prng.PURPOSE_SYNAPSE, core_id, tick, units)
        bernoulli = (rho < np.abs(weights)).astype(np.int64) * np.sign(weights)
        contrib = np.where(stoch, bernoulli, weights)
    else:
        contrib = weights

    syn = (contrib * w_active).sum(axis=0, dtype=np.int64)
    return syn, n_events
