"""Physical chip geometry, core placement, and defect maps.

TrueNorth arranges 4,096 cores in a 64x64 grid; chips themselves tile in a
2D array (paper Fig. 3).  A :class:`Placement` maps each *logical* core of
a :class:`~repro.core.network.Network` to physical coordinates
``(chip_x, chip_y, x, y)``.  Placement does not affect function — only
spike hop counts (and hence energy and NoC load) depend on it.

The architecture is robust to core defects: "if a core fails, we disable
it and route spike events around it."  A :class:`DefectMap` marks disabled
physical slots; placements skip them and the NoC adds detour hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import params
from repro.utils.rng import seeded_rng
from repro.utils.validation import require


@dataclass(frozen=True)
class ChipGeometry:
    """Core-grid dimensions of one chip."""

    cores_x: int = params.CHIP_CORES_X
    cores_y: int = params.CHIP_CORES_Y

    @property
    def cores_per_chip(self) -> int:
        """Total core slots on one chip."""
        return self.cores_x * self.cores_y


@dataclass(frozen=True)
class DefectMap:
    """Set of defective physical core slots, as (chip_x, chip_y, x, y)."""

    defective: frozenset = field(default_factory=frozenset)

    @staticmethod
    def from_fraction(
        geometry: ChipGeometry, fraction: float, seed: int = 0, chips: int = 1
    ) -> "DefectMap":
        """Mark a random *fraction* of core slots defective (yield model)."""
        require(0.0 <= fraction < 1.0, "defect fraction must be in [0, 1)")
        rng = seeded_rng(seed)
        slots = [
            (cx, 0, x, y)
            for cx in range(chips)
            for y in range(geometry.cores_y)
            for x in range(geometry.cores_x)
        ]
        n_bad = int(round(fraction * len(slots)))
        picks = rng.choice(len(slots), size=n_bad, replace=False)
        return DefectMap(frozenset(slots[i] for i in picks))

    def is_defective(self, chip_x: int, chip_y: int, x: int, y: int) -> bool:
        """True when the physical slot is disabled."""
        return (chip_x, chip_y, x, y) in self.defective


@dataclass
class Placement:
    """Mapping from logical core index to physical coordinates.

    Arrays are indexed by logical core id; ``chip_x/chip_y`` locate the
    chip within a board-level tile array, ``x/y`` locate the core within
    the chip's 64x64 grid.
    """

    chip_x: np.ndarray
    chip_y: np.ndarray
    x: np.ndarray
    y: np.ndarray
    geometry: ChipGeometry = field(default_factory=ChipGeometry)

    @property
    def n_cores(self) -> int:
        """Number of placed logical cores."""
        return int(self.x.size)

    @property
    def n_chips(self) -> int:
        """Number of distinct chips used by the placement."""
        if self.n_cores == 0:
            return 0
        return len(set(zip(self.chip_x.tolist(), self.chip_y.tolist())))

    def global_xy(self) -> tuple[np.ndarray, np.ndarray]:
        """Global mesh coordinates, treating tiled chips as one big grid.

        Chip tiling is seamless (merge/split preserves mesh semantics), so
        dimension-order routing operates on these global coordinates.
        """
        gx = self.chip_x * self.geometry.cores_x + self.x
        gy = self.chip_y * self.geometry.cores_y + self.y
        return gx, gy

    def hops_between(self, src_core: int, dst_core: int) -> int:
        """Manhattan hop count of the dimension-order route src -> dst."""
        gx, gy = self.global_xy()
        return int(
            abs(gx[dst_core] - gx[src_core]) + abs(gy[dst_core] - gy[src_core])
        )

    def chip_crossings(self, src_core: int, dst_core: int) -> int:
        """Number of chip-boundary (merge/split) crossings on the route."""
        return int(
            abs(self.chip_x[dst_core] - self.chip_x[src_core])
            + abs(self.chip_y[dst_core] - self.chip_y[src_core])
        )

    def hop_matrix_for_targets(
        self, src_cores: np.ndarray, dst_cores: np.ndarray
    ) -> np.ndarray:
        """Vectorized hop counts for parallel (src, dst) arrays."""
        gx, gy = self.global_xy()
        return np.abs(gx[dst_cores] - gx[src_cores]) + np.abs(
            gy[dst_cores] - gy[src_cores]
        )

    @staticmethod
    def grid(
        n_cores: int,
        geometry: ChipGeometry | None = None,
        defects: DefectMap | None = None,
        chips_x: int | None = None,
    ) -> "Placement":
        """Place logical cores row-major onto chips, skipping defects.

        Chips are added along +x as needed (then the caller may reshape
        with :func:`tile`); defective slots are skipped, emulating the
        route-around reconfiguration of the paper.
        """
        geometry = geometry or ChipGeometry()
        defects = defects or DefectMap()
        per_chip = geometry.cores_per_chip
        if chips_x is None:
            chips_x = max(1, -(-n_cores // per_chip))  # ceil; refined below

        chip_x_list: list[int] = []
        chip_y_list: list[int] = []
        xs: list[int] = []
        ys: list[int] = []
        chip = 0
        placed = 0
        while placed < n_cores:
            cx, cy = chip, 0
            for y in range(geometry.cores_y):
                for x in range(geometry.cores_x):
                    if placed >= n_cores:
                        break
                    if defects.is_defective(cx, cy, x, y):
                        continue
                    chip_x_list.append(cx)
                    chip_y_list.append(cy)
                    xs.append(x)
                    ys.append(y)
                    placed += 1
                if placed >= n_cores:
                    break
            chip += 1
            if chip > 2 * (n_cores // max(1, per_chip) + 2):
                raise ValueError("placement failed: too many defective slots")
        return Placement(
            chip_x=np.asarray(chip_x_list, dtype=np.int64),
            chip_y=np.asarray(chip_y_list, dtype=np.int64),
            x=np.asarray(xs, dtype=np.int64),
            y=np.asarray(ys, dtype=np.int64),
            geometry=geometry,
        )

    @staticmethod
    def compact(n_cores: int, geometry: ChipGeometry | None = None) -> "Placement":
        """Place cores on a single chip in a near-square block.

        Used for small test networks so that hop distances stay realistic
        without occupying the whole 64x64 grid.
        """
        geometry = geometry or ChipGeometry()
        side = int(np.ceil(np.sqrt(n_cores)))
        require(
            side <= geometry.cores_x and side <= geometry.cores_y,
            f"{n_cores} cores do not fit on one chip",
        )
        idx = np.arange(n_cores)
        return Placement(
            chip_x=np.zeros(n_cores, dtype=np.int64),
            chip_y=np.zeros(n_cores, dtype=np.int64),
            x=idx % side,
            y=idx // side,
            geometry=geometry,
        )
