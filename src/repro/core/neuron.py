"""Vectorized digital neuron dynamics (leak, threshold, fire, reset).

Implements the reconfigurable digital integrate-and-fire neuron of
Cassidy et al. (IJCNN 2013) as used by TrueNorth, vectorized across all
neurons of one core.  The scalar reference implementation of exactly the
same semantics lives in :mod:`repro.core.kernel`; the two are held in
bit-exact agreement by the equivalence test suite.

Per-tick update order (shared by every kernel expression):

1. synaptic integration (see :mod:`repro.core.crossbar`),
2. leak update (with optional leak-reversal and stochastic leak),
3. saturation to the 20-bit signed membrane range,
4. threshold compare (with optional stochastic threshold), fire,
5. reset (to-value / linear-subtract / none) or negative-floor policy.
"""

from __future__ import annotations

import numpy as np

from repro.core import params, prng
from repro.core.network import Core


def clamp_membrane(v: np.ndarray) -> np.ndarray:
    """Saturate membrane potentials to the 20-bit signed hardware range."""
    return np.clip(v, params.MEMBRANE_MIN, params.MEMBRANE_MAX)


def leak_values(core: Core, v: np.ndarray, core_id: int, tick: int, seed: int) -> np.ndarray:
    """Return the per-neuron leak contribution for this tick.

    The leak-reversal flag epsilon makes the leak act along ``sgn(V)``
    (zero at V == 0); the stochastic-leak flag replaces the magnitude
    ``|lambda|`` with a Bernoulli(|lambda|/256) unit step.
    """
    lam = core.leak
    direction = np.where(core.leak_reversal, np.sign(v), 1).astype(np.int64)
    magnitude = np.abs(lam)
    if core.stoch_leak.any():
        units = np.arange(core.n_neurons)
        rho = prng.draw_u8(seed, prng.PURPOSE_LEAK, core_id, tick, units)
        stoch_mag = (rho < magnitude).astype(np.int64)
        magnitude = np.where(core.stoch_leak, stoch_mag, magnitude)
    return direction * np.sign(lam) * magnitude


def thresholds(core: Core, core_id: int, tick: int, seed: int) -> np.ndarray:
    """Return the per-neuron effective firing threshold theta for this tick.

    theta_j = alpha_j + (rho16 & TM_j): the stochastic component is a
    16-bit draw masked by the per-neuron threshold mask (zero mask means
    a fully deterministic threshold).
    """
    theta = core.threshold.astype(np.int64)
    if (core.threshold_mask != 0).any():
        units = np.arange(core.n_neurons)
        rho = prng.draw_u16(seed, prng.PURPOSE_THRESHOLD, core_id, tick, units)
        theta = theta + (rho & core.threshold_mask)
    return theta


def neuron_tick(
    core: Core,
    v: np.ndarray,
    syn_input: np.ndarray,
    core_id: int,
    tick: int,
    seed: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Advance all neurons of *core* by one tick.

    Parameters
    ----------
    v:
        Membrane potentials at the start of the tick, shape ``(N,)``.
    syn_input:
        Integrated synaptic input for this tick, shape ``(N,)``.

    Returns
    -------
    (new_v, spiked):
        Updated membrane potentials and a boolean spike mask.
    """
    v = v.astype(np.int64) + syn_input
    v = v + leak_values(core, v, core_id, tick, seed)
    v = clamp_membrane(v)

    theta = thresholds(core, core_id, tick, seed)
    spiked = v >= theta

    # Positive reset, per mode.
    reset_mode = core.reset_mode
    v_reset = np.select(
        [reset_mode == params.RESET_TO_VALUE, reset_mode == params.RESET_LINEAR],
        [core.reset_value, v - theta],
        default=v,
    )
    v = np.where(spiked, v_reset, v)

    # Negative floor for non-spiking neurons below -beta.
    below = (~spiked) & (v < -core.neg_threshold)
    if below.any():
        floored = np.where(
            core.neg_floor_mode == params.NEG_FLOOR_SATURATE,
            -core.neg_threshold,
            -core.reset_value,
        )
        v = np.where(below, floored, v)

    return clamp_membrane(v), spiked
