"""Convenience builders for small networks (tests, examples, tutorials).

The full-scale benchmark generators live in :mod:`repro.apps.recurrent`;
these helpers build compact networks quickly with sensible defaults.
"""

from __future__ import annotations

import numpy as np

from repro.core import params
from repro.core.inputs import InputSchedule
from repro.core.network import OUTPUT_TARGET, Core, Network
from repro.utils.rng import seeded_rng


def random_core(
    rng: np.random.Generator,
    n_axons: int = 16,
    n_neurons: int = 16,
    n_cores: int = 1,
    connectivity: float = 0.3,
    stochastic: bool = False,
    self_core: int | None = None,
) -> Core:
    """Build a randomly-configured core wired to random targets.

    Parameters
    ----------
    connectivity:
        Probability of each crossbar point being programmed.
    stochastic:
        When True, enables stochastic synapse/leak/threshold modes on a
        random subset of neurons (exercises every PRNG purpose).
    self_core:
        When given, all neuron targets stay within [0, n_cores); otherwise
        neurons are outputs.
    """
    crossbar = rng.random((n_axons, n_neurons)) < connectivity
    axon_types = rng.integers(0, params.NUM_AXON_TYPES, size=n_axons)
    weights = rng.integers(-40, 64, size=(n_neurons, params.NUM_AXON_TYPES))
    threshold = rng.integers(16, 128, size=n_neurons)
    leak = rng.integers(-4, 3, size=n_neurons)
    reset_mode = rng.integers(0, 3, size=n_neurons)
    if self_core is not None:
        target_core = rng.integers(0, n_cores, size=n_neurons)
    else:
        target_core = np.full(n_neurons, OUTPUT_TARGET)
    target_axon = rng.integers(0, n_axons, size=n_neurons)
    delay = rng.integers(params.MIN_DELAY, params.MAX_DELAY + 1, size=n_neurons)

    kwargs: dict = {}
    if stochastic:
        kwargs["stoch_synapse"] = rng.random((n_neurons, params.NUM_AXON_TYPES)) < 0.3
        kwargs["stoch_leak"] = rng.random(n_neurons) < 0.3
        kwargs["threshold_mask"] = np.where(
            rng.random(n_neurons) < 0.3, (1 << rng.integers(1, 6, size=n_neurons)) - 1, 0
        )
        kwargs["leak_reversal"] = rng.random(n_neurons) < 0.2

    return Core.build(
        n_axons=n_axons,
        n_neurons=n_neurons,
        crossbar=crossbar,
        axon_types=axon_types,
        weights=weights,
        threshold=threshold,
        leak=leak,
        reset_mode=reset_mode,
        neg_threshold=rng.integers(0, 64, size=n_neurons),
        neg_floor_mode=rng.integers(0, 2, size=n_neurons),
        target_core=target_core,
        target_axon=target_axon,
        delay=delay,
        **kwargs,
    )


def random_network(
    n_cores: int = 4,
    n_axons: int = 16,
    n_neurons: int = 16,
    connectivity: float = 0.3,
    stochastic: bool = False,
    seed: int = 0,
) -> Network:
    """Build a random recurrent network of *n_cores* interconnected cores."""
    rng = seeded_rng(seed)
    net = Network(seed=seed, name=f"random-{n_cores}x{n_neurons}")
    for _ in range(n_cores):
        net.add_core(
            random_core(
                rng,
                n_axons=n_axons,
                n_neurons=n_neurons,
                n_cores=n_cores,
                connectivity=connectivity,
                stochastic=stochastic,
                self_core=0,
            )
        )
    net.validate()
    return net


def poisson_inputs(
    network: Network,
    n_ticks: int,
    rate_hz: float,
    seed: int = 1,
    cores: list[int] | None = None,
) -> InputSchedule:
    """Poisson external input spikes on every axon of the given cores."""
    rng = seeded_rng(seed)
    p = rate_hz * params.TICK_SECONDS
    schedule = InputSchedule()
    targets = cores if cores is not None else range(network.n_cores)
    for core_id in targets:
        n_axons = network.cores[core_id].n_axons
        hits = rng.random((n_ticks, n_axons)) < p
        for tick, axon in zip(*np.nonzero(hits)):
            schedule.add(int(tick), core_id, int(axon))
    return schedule
