"""Workload descriptors: full-scale network statistics for the cost models.

DESIGN.md substitution #5: functional simulation runs at reduced scale,
but every benchmark network also carries a descriptor with the paper's
full-scale parameters (neurons, cores, mean firing rate, synaptic
fan-out).  The TrueNorth energy/timing models and the von-Neumann
machine cost models consume descriptors, so performance tables are
produced at paper scale.

A descriptor can be written down from the paper (Section IV-B gives the
five vision applications' sizes and rates) or *measured* from any
simulated run via :meth:`WorkloadDescriptor.from_counters`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import params
from repro.core.counters import EventCounters
from repro.utils.validation import require

# Mean packet hop distance of the characterization networks (paper IV-B:
# targets average 21.66 cores away in each of x and y).
DEFAULT_MEAN_HOPS = 2 * 21.66


@dataclass(frozen=True)
class WorkloadDescriptor:
    """Steady-state event statistics of one network workload."""

    name: str
    n_neurons: int
    n_cores: int
    rate_hz: float  # mean per-neuron firing rate
    active_synapses: float  # mean synaptic fan-out per spike
    mean_hops: float = DEFAULT_MEAN_HOPS
    load_imbalance: float = 1.0  # busiest-core load / mean-core load

    def __post_init__(self) -> None:
        require(self.n_neurons >= 1 and self.n_cores >= 1, "workload must be non-empty")
        require(self.rate_hz >= 0.0, "rate must be non-negative")
        require(self.active_synapses >= 0.0, "fan-out must be non-negative")
        require(self.load_imbalance >= 1.0, "imbalance is >= 1 by definition")

    # -- per-tick event counts ------------------------------------------------
    @property
    def spikes_per_tick(self) -> float:
        """Mean neuron firings per 1 ms tick."""
        return self.n_neurons * self.rate_hz * params.TICK_SECONDS

    @property
    def syn_events_per_tick(self) -> float:
        """Mean synaptic operations per tick."""
        return self.spikes_per_tick * self.active_synapses

    @property
    def neuron_updates_per_tick(self) -> float:
        """Neuron evaluations per tick (all neurons, every tick)."""
        return float(self.n_neurons)

    @property
    def hops_per_tick(self) -> float:
        """Mesh hops per tick."""
        return self.spikes_per_tick * self.mean_hops

    @property
    def busiest_core_events_per_tick(self) -> float:
        """Busiest core's synaptic events per tick (drives max tick rate)."""
        mean_core = self.syn_events_per_tick / self.n_cores
        return mean_core * self.load_imbalance

    @property
    def sops(self) -> float:
        """Synaptic operations per second at real time (paper Section V-1)."""
        return self.rate_hz * self.active_synapses * self.n_neurons

    def scaled_to(self, n_neurons: int, n_cores: int) -> "WorkloadDescriptor":
        """Same per-neuron statistics at a different network size."""
        return replace(self, n_neurons=n_neurons, n_cores=n_cores)

    @staticmethod
    def from_counters(
        name: str, counters: EventCounters, n_cores: int
    ) -> "WorkloadDescriptor":
        """Measure a descriptor from a simulated run's event counters."""
        require(counters.ticks > 0, "run must have executed at least one tick")
        n_neurons = max(1, int(round(counters.neuron_updates / counters.ticks)))
        rate = counters.mean_firing_rate_hz
        fanout = counters.mean_active_synapses
        hops = counters.hops / counters.spikes if counters.spikes else 0.0
        mean_core = counters.synaptic_events / counters.ticks / max(n_cores, 1)
        imbalance = (
            counters.max_core_events_per_tick / mean_core if mean_core > 0 else 1.0
        )
        return WorkloadDescriptor(
            name=name,
            n_neurons=n_neurons,
            n_cores=n_cores,
            rate_hz=rate,
            active_synapses=fanout,
            mean_hops=hops,
            load_imbalance=max(1.0, imbalance),
        )
