"""Placing compiled networks onto the physical core grid.

Placement does not change function, only spike hop counts — and hence
NoC traffic and active energy.  Two placers are provided:

* :func:`place_row_major` — the trivial baseline;
* :func:`place_connectivity_aware` — orders cores by a BFS over the
  core-connectivity graph and lays them along a boustrophedon
  (serpentine) curve, keeping communicating cores near each other.
  This is the ablation knob for the placement-quality benchmark.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.chip import ChipGeometry, DefectMap, Placement
from repro.core.network import OUTPUT_TARGET, Network


def connectivity_graph(network: Network) -> nx.Graph:
    """Undirected core graph weighted by inter-core neuron target counts."""
    graph = nx.Graph()
    graph.add_nodes_from(range(network.n_cores))
    for src, core in enumerate(network.cores):
        targets, counts = np.unique(
            core.target_core[core.target_core != OUTPUT_TARGET], return_counts=True
        )
        for dst, count in zip(targets.tolist(), counts.tolist()):
            if dst == src:
                continue
            w = graph.get_edge_data(src, dst, {"weight": 0})["weight"]
            graph.add_edge(src, dst, weight=w + count)
    return graph


def _serpentine_slots(n: int, geometry: ChipGeometry, defects: DefectMap) -> list:
    """First *n* usable grid slots along a serpentine curve.

    The curve runs over a near-square block (not the full chip width) so
    that consecutive cores stay 2D-adjacent — that is what keeps BFS
    neighbours physically close.
    """
    import math

    side = min(geometry.cores_x, max(1, math.isqrt(max(n - 1, 0)) + 1))
    slots = []
    chip = 0
    while len(slots) < n:
        for y in range(geometry.cores_y):
            xs = range(side)
            if y % 2 == 1:
                xs = reversed(xs)
            for x in xs:
                if defects.is_defective(chip, 0, x, y):
                    continue
                slots.append((chip, 0, x, y))
                if len(slots) == n:
                    return slots
        chip += 1
    return slots


def place_row_major(
    network: Network,
    geometry: ChipGeometry | None = None,
    defects: DefectMap | None = None,
) -> Placement:
    """Baseline placement: logical core order onto the grid row-major."""
    return Placement.grid(network.n_cores, geometry, defects)


def place_connectivity_aware(
    network: Network,
    geometry: ChipGeometry | None = None,
    defects: DefectMap | None = None,
) -> Placement:
    """BFS-ordered serpentine placement: communicating cores stay close."""
    geometry = geometry or ChipGeometry()
    defects = defects or DefectMap()
    graph = connectivity_graph(network)

    order: list[int] = []
    seen: set[int] = set()
    # Start each component from its highest-degree core.
    for component in nx.connected_components(graph):
        start = max(component, key=lambda c: graph.degree(c, weight="weight"))
        for node in nx.bfs_tree(graph, start):
            if node not in seen:
                seen.add(node)
                order.append(node)
    for node in range(network.n_cores):  # isolated cores
        if node not in seen:
            order.append(node)

    slots = _serpentine_slots(network.n_cores, geometry, defects)
    chip_x = np.zeros(network.n_cores, dtype=np.int64)
    chip_y = np.zeros(network.n_cores, dtype=np.int64)
    xs = np.zeros(network.n_cores, dtype=np.int64)
    ys = np.zeros(network.n_cores, dtype=np.int64)
    for slot, core_id in zip(slots, order):
        chip_x[core_id], chip_y[core_id], xs[core_id], ys[core_id] = slot
    return Placement(chip_x=chip_x, chip_y=chip_y, x=xs, y=ys, geometry=geometry)


def total_wirelength(network: Network, placement: Placement) -> int:
    """Sum over neurons of the Manhattan hop distance to their target.

    A placement-quality metric: lower wirelength means fewer hops per
    spike and lower communication energy.
    """
    total = 0
    gx, gy = placement.global_xy()
    for src, core in enumerate(network.cores):
        routed = core.target_core != OUTPUT_TARGET
        dst = core.target_core[routed]
        total += int(
            (np.abs(gx[dst] - gx[src]) + np.abs(gy[dst] - gy[src])).sum()
        )
    return total
