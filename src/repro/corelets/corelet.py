"""The Corelet Programming Environment: composable core networks.

"A corelet is a functional encapsulation of a network of neurosynaptic
cores that collectively perform a specific task.  Object-oriented
corelets can seamlessly build hierarchically composable networks while
sharing underlying code and unified network interfaces." (paper IV-A,
citing the CPE of Amir et al. 2013)

Model:

* a :class:`Corelet` owns cores and exposes named **connectors** —
  bundles of input pins (core, axon) and output pins (core, neuron);
* a :class:`Composition` collects corelets and pin-to-pin connections
  and compiles them into a flat :class:`~repro.core.network.Network`;
* hardware constraints are enforced at composition time: each neuron
  targets exactly one axon (fan-out beyond one requires an explicit
  splitter corelet, as on the physical chip), and each axon accepts any
  number of senders (events merge).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import params
from repro.core.network import Core, Network
from repro.utils.validation import require


@dataclass(frozen=True)
class Pin:
    """One endpoint inside a corelet: (local core index, line index)."""

    corelet: "Corelet"
    core: int
    index: int  # axon index for inputs, neuron index for outputs

    def __repr__(self) -> str:  # keep hashable dataclass repr short
        return f"Pin({self.corelet.name}, core={self.core}, idx={self.index})"


@dataclass
class Connector:
    """An ordered bundle of pins forming one named interface."""

    name: str
    pins: list[Pin] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pins)

    def __getitem__(self, i: int) -> Pin:
        return self.pins[i]

    def slice(self, start: int, stop: int) -> "Connector":
        """A sub-connector over pins [start, stop)."""
        return Connector(f"{self.name}[{start}:{stop}]", self.pins[start:stop])


class Corelet:
    """A reusable, composable network of neurosynaptic cores."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.cores: list[Core] = []
        self.inputs: dict[str, Connector] = {}
        self.outputs: dict[str, Connector] = {}
        # Internal (intra-corelet) connections: (core, neuron) -> (core, axon, delay).
        self._internal: list[tuple[int, int, int, int, int]] = []

    # -- construction -----------------------------------------------------
    def add_core(self, core: Core) -> int:
        """Add a core; returns its corelet-local index."""
        self.cores.append(core)
        return len(self.cores) - 1

    def input_connector(self, name: str, pins: list[tuple[int, int]]) -> Connector:
        """Declare an input connector over (core, axon) pairs."""
        require(name not in self.inputs, f"duplicate input connector {name!r}")
        conn = Connector(name, [Pin(self, c, a) for c, a in pins])
        self.inputs[name] = conn
        return conn

    def output_connector(self, name: str, pins: list[tuple[int, int]]) -> Connector:
        """Declare an output connector over (core, neuron) pairs."""
        require(name not in self.outputs, f"duplicate output connector {name!r}")
        conn = Connector(name, [Pin(self, c, n) for c, n in pins])
        self.outputs[name] = conn
        return conn

    def connect_internal(
        self, src_core: int, neuron: int, dst_core: int, axon: int, delay: int = 1
    ) -> None:
        """Wire a neuron to an axon inside this corelet."""
        require(0 <= src_core < len(self.cores), "src core out of range")
        require(0 <= dst_core < len(self.cores), "dst core out of range")
        self._internal.append((src_core, neuron, dst_core, axon, delay))

    @property
    def n_cores(self) -> int:
        """Number of cores owned by this corelet."""
        return len(self.cores)

    @property
    def n_neurons(self) -> int:
        """Total neurons across the corelet's cores."""
        return sum(c.n_neurons for c in self.cores)


@dataclass(frozen=True)
class GlobalPin:
    """A compiled pin: global core index + line index."""

    core: int
    index: int


@dataclass
class CompiledComposition:
    """Result of compiling a composition: network + resolved connectors."""

    network: Network
    inputs: dict[str, list[GlobalPin]]
    outputs: dict[str, list[GlobalPin]]

    def input_pins(self, name: str) -> list[GlobalPin]:
        """Resolved pins of the exported input connector *name*."""
        return self.inputs[name]

    def output_pins(self, name: str) -> list[GlobalPin]:
        """Resolved pins of the exported output connector *name*."""
        return self.outputs[name]


class Composition:
    """A set of corelets plus pin-level connections, compiled to a Network."""

    def __init__(self, name: str = "composition", seed: int = 0) -> None:
        self.name = name
        self.seed = seed
        self.corelets: list[Corelet] = []
        self._connections: list[tuple[Pin, Pin, int]] = []
        self._exported_inputs: dict[str, Connector] = {}
        self._exported_outputs: dict[str, Connector] = {}

    def add(self, corelet: Corelet) -> Corelet:
        """Register a corelet (idempotent)."""
        if corelet not in self.corelets:
            self.corelets.append(corelet)
        return corelet

    def connect(self, src: Connector, dst: Connector, delay: int = 1) -> None:
        """Connect output connector *src* pin-by-pin to input connector *dst*."""
        require(
            len(src) == len(dst),
            f"connector width mismatch: {src.name} has {len(src)}, "
            f"{dst.name} has {len(dst)}",
        )
        require(params.MIN_DELAY <= delay <= params.MAX_DELAY, "delay must be 1..15")
        for s, d in zip(src.pins, dst.pins):
            self.add(s.corelet)
            self.add(d.corelet)
            self._connections.append((s, d, delay))

    def export_input(self, name: str, connector: Connector) -> None:
        """Expose a corelet input connector at the composition boundary."""
        self.add(connector.pins[0].corelet)
        self._exported_inputs[name] = connector

    def export_output(self, name: str, connector: Connector) -> None:
        """Expose a corelet output connector at the composition boundary."""
        self.add(connector.pins[0].corelet)
        self._exported_outputs[name] = connector

    def compile(self) -> CompiledComposition:
        """Flatten everything into a validated Network.

        Each neuron may be the source of at most one connection (the
        hardware's single spike target); violations raise with the
        offending pin named.
        """
        base: dict[Corelet, int] = {}
        cores: list[Core] = []
        for corelet in self.corelets:
            base[corelet] = len(cores)
            # Copy so that compiling never mutates the corelet itself
            # (corelets are reusable library objects).
            cores.extend(core.copy() for core in corelet.cores)

        claimed: set[tuple[int, int]] = set()

        def claim(global_core: int, neuron: int, what: str) -> None:
            key = (global_core, neuron)
            if key in claimed:
                raise ValueError(
                    f"neuron (core {global_core}, neuron {neuron}) has two "
                    f"targets ({what}); insert a splitter corelet for fan-out"
                )
            claimed.add(key)

        # Intra-corelet wiring first.
        for corelet in self.corelets:
            b = base[corelet]
            for src_core, neuron, dst_core, axon, delay in corelet._internal:
                gsrc = b + src_core
                claim(gsrc, neuron, f"internal wiring of {corelet.name}")
                cores[gsrc].target_core[neuron] = b + dst_core
                cores[gsrc].target_axon[neuron] = axon
                cores[gsrc].delay[neuron] = delay

        # Inter-corelet connections.
        for src_pin, dst_pin, delay in self._connections:
            gsrc = base[src_pin.corelet] + src_pin.core
            gdst = base[dst_pin.corelet] + dst_pin.core
            claim(gsrc, src_pin.index, f"connection to {dst_pin!r}")
            cores[gsrc].target_core[src_pin.index] = gdst
            cores[gsrc].target_axon[src_pin.index] = dst_pin.index
            cores[gsrc].delay[src_pin.index] = delay

        network = Network(cores=cores, seed=self.seed, name=self.name)
        network.validate()

        def resolve(conn: Connector) -> list[GlobalPin]:
            return [GlobalPin(base[p.corelet] + p.core, p.index) for p in conn.pins]

        return CompiledComposition(
            network=network,
            inputs={n: resolve(c) for n, c in self._exported_inputs.items()},
            outputs={n: resolve(c) for n, c in self._exported_outputs.items()},
        )
