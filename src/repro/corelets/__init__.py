"""Corelet Programming Environment: composable networks + placement."""

from repro.corelets.corelet import (
    CompiledComposition,
    Composition,
    Connector,
    Corelet,
    GlobalPin,
    Pin,
)
from repro.corelets.inspect import ResourceReport, analyze, report_text
from repro.corelets.placement import (
    connectivity_graph,
    place_connectivity_aware,
    place_row_major,
    total_wirelength,
)

__all__ = [
    "CompiledComposition",
    "Composition",
    "Connector",
    "Corelet",
    "GlobalPin",
    "Pin",
    "ResourceReport",
    "analyze",
    "report_text",
    "connectivity_graph",
    "place_connectivity_aware",
    "place_row_major",
    "total_wirelength",
]
