"""Signed linear filters: the substrate for Haar features and saliency.

TrueNorth axons carry one of four types, with per-neuron signed weights
per type; arbitrary +/- filter kernels are realized by presenting each
input on two axons — one excitatory type, one inhibitory — and
programming the crossbar with the kernel's sign pattern (the standard
CPE idiom for signed linear operators).
"""

from __future__ import annotations

import numpy as np

from repro.core import params
from repro.core.network import Core
from repro.corelets.corelet import Corelet
from repro.utils.validation import require


def signed_filter(
    kernel: np.ndarray,
    gain: int = 16,
    threshold: int = 64,
    decay: int = 8,
    name: str = "filter",
) -> Corelet:
    """A bank of ternary-weight linear feature detectors.

    Parameters
    ----------
    kernel:
        ``(n_in, n_out)`` array with entries in {-1, 0, +1}: the sign
        pattern of each output feature.
    gain, threshold:
        Synaptic magnitude and firing threshold; output rate grows with
        the (rate-coded) correlation between input and kernel.
    decay:
        Leak-reversal decay toward rest, so evidence integrates over a
        short temporal window.

    Connectors: ``in+`` and ``in-`` (width n_in each — feed both from a
    2-way splitter upstream), ``out`` (width n_out).
    """
    kernel = np.asarray(kernel)
    require(kernel.ndim == 2, "kernel must be (n_in, n_out)")
    require(np.isin(kernel, (-1, 0, 1)).all(), "kernel entries must be in {-1,0,+1}")
    n_in, n_out = kernel.shape
    require(2 * n_in <= params.CORE_AXONS, "filter needs n_in <= 128 per core")
    require(n_out <= params.CORE_NEURONS, "filter needs n_out <= 256 per core")

    n_axons = 2 * n_in
    crossbar = np.zeros((n_axons, n_out), dtype=bool)
    axon_types = np.zeros(n_axons, dtype=np.int64)
    axon_types[1::2] = 1  # odd axons are the inhibitory copies
    for i in range(n_in):
        crossbar[2 * i, :] = kernel[i, :] > 0
        crossbar[2 * i + 1, :] = kernel[i, :] < 0
    weights = np.zeros((n_out, params.NUM_AXON_TYPES), dtype=np.int64)
    weights[:, 0] = gain
    weights[:, 1] = -gain

    core = Core.build(
        n_axons=n_axons,
        n_neurons=n_out,
        crossbar=crossbar,
        axon_types=axon_types,
        weights=weights,
        threshold=threshold,
        leak=-decay,
        leak_reversal=True,
        neg_threshold=4 * gain,
        reset_value=0,
        name=f"{name}/core",
    )
    corelet = Corelet(name)
    idx = corelet.add_core(core)
    corelet.input_connector("in+", [(idx, 2 * i) for i in range(n_in)])
    corelet.input_connector("in-", [(idx, 2 * i + 1) for i in range(n_in)])
    corelet.output_connector("out", [(idx, j) for j in range(n_out)])
    return corelet


def haar_kernels(patch: int = 4) -> np.ndarray:
    """Classic Haar-like feature sign patterns over a patch x patch window.

    Returns ``(patch*patch, 5)``: horizontal edge, vertical edge,
    horizontal line, vertical line, and checkerboard (diagonal) features
    (Viola-Jones family, paper reference [52]).
    """
    n = patch * patch
    ys, xs = np.divmod(np.arange(n), patch)
    half = patch // 2
    kernels = np.zeros((n, 5), dtype=np.int64)
    kernels[:, 0] = np.where(ys < half, 1, -1)  # horizontal edge
    kernels[:, 1] = np.where(xs < half, 1, -1)  # vertical edge
    mid = (ys >= patch // 4) & (ys < patch - patch // 4)
    kernels[:, 2] = np.where(mid, 1, -1)  # horizontal line
    midx = (xs >= patch // 4) & (xs < patch - patch // 4)
    kernels[:, 3] = np.where(midx, 1, -1)  # vertical line
    kernels[:, 4] = np.where((ys < half) == (xs < half), 1, -1)  # checkerboard
    return kernels


def center_surround_kernel(patch: int = 4) -> np.ndarray:
    """Center-surround (difference-of-boxes) kernel for saliency maps."""
    n = patch * patch
    ys, xs = np.divmod(np.arange(n), patch)
    q = patch // 4
    center = (ys >= q) & (ys < patch - q) & (xs >= q) & (xs < patch - q)
    return np.where(center, 1, -1).astype(np.int64).reshape(n, 1)
