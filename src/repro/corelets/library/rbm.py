"""Restricted Boltzmann Machine sampling corelet.

The paper lists "restricted Boltzmann machines" among the deployed
applications (Fig. 2).  On TrueNorth, RBM inference maps to stochastic
neurons: a hidden unit fires with probability that increases with its
drive, realized by the stochastic-threshold mode — the drive crosses a
uniformly-random threshold theta ~ U[0, mask], giving a piecewise-linear
approximation of the sigmoid:

    P(fire | drive D) = clip((floor(D) + 1) / (mask + 1), 0, 1),  D >= 0

with ``D = gain * (n_pos - n_neg) + bias`` (bias via the leak).

Sampling protocol: visible vectors are *presented* on even ticks and a
dedicated **flush axon** fires on odd ticks, slamming every membrane to
the 0 floor so successive samples are independent (the frame-reset
scheme used by TrueNorth RBM deployments).  :func:`sample_hidden` runs
the protocol end to end.
"""

from __future__ import annotations

import numpy as np

from repro.core import params
from repro.core.inputs import InputSchedule
from repro.core.network import Core
from repro.corelets.corelet import Composition, Corelet
from repro.utils.validation import require

FLUSH_TYPE = 2  # axon type reserved for the flush line


def rbm_sampling_layer(
    weights: np.ndarray,
    gain: int = 32,
    bias: np.ndarray | int = 128,
    mask_bits: int = 8,
    name: str = "rbm",
) -> Corelet:
    """Stochastic visible -> hidden sampling layer with ternary weights.

    Connectors: ``in+``/``in-`` (width n_visible; spike both copies of
    each active visible unit), ``flush`` (width 1), ``out`` (n_hidden).
    """
    weights = np.asarray(weights)
    require(np.isin(weights, (-1, 0, 1)).all(), "RBM weights must be ternary")
    n_visible, n_hidden = weights.shape
    require(2 * n_visible + 2 <= params.CORE_AXONS, "needs n_visible <= 127")
    require(n_hidden <= params.CORE_NEURONS, "needs n_hidden <= 256")
    require(mask_bits <= 8, "mask_bits <= 8 so two flush synapses always clear")
    mask = (1 << mask_bits) - 1

    # Two flush axons guarantee a full clear: residual (< mask <= 255)
    # + 2 * WEIGHT_MIN + bias (<= 255) is always below the zero floor.
    n_axons = 2 * n_visible + 2
    flush_axons = (n_axons - 2, n_axons - 1)
    crossbar = np.zeros((n_axons, n_hidden), dtype=bool)
    axon_types = np.zeros(n_axons, dtype=np.int64)
    axon_types[1 : 2 * n_visible : 2] = 1
    for fa in flush_axons:
        axon_types[fa] = FLUSH_TYPE
        crossbar[fa, :] = True
    for i in range(n_visible):
        crossbar[2 * i, :] = weights[i, :] > 0
        crossbar[2 * i + 1, :] = weights[i, :] < 0

    w = np.zeros((n_hidden, params.NUM_AXON_TYPES), dtype=np.int64)
    w[:, 0] = gain
    w[:, 1] = -gain
    w[:, FLUSH_TYPE] = params.WEIGHT_MIN  # slam far below the floor

    bias_arr = np.asarray(bias, dtype=np.int64)
    if bias_arr.ndim == 0:
        bias_arr = np.full(n_hidden, int(bias_arr))
    require(
        (bias_arr >= params.LEAK_MIN).all() and (bias_arr <= params.LEAK_MAX).all(),
        "bias must fit the leak field",
    )

    core = Core.build(
        n_axons=n_axons,
        n_neurons=n_hidden,
        crossbar=crossbar,
        axon_types=axon_types,
        weights=w,
        threshold=0,
        threshold_mask=mask,
        leak=bias_arr,
        neg_threshold=0,  # negative membranes floor at zero
        reset_value=0,
        name=f"{name}/core",
    )
    corelet = Corelet(name)
    idx = corelet.add_core(core)
    corelet.input_connector("in+", [(idx, 2 * i) for i in range(n_visible)])
    corelet.input_connector("in-", [(idx, 2 * i + 1) for i in range(n_visible)])
    corelet.input_connector("flush", [(idx, fa) for fa in flush_axons])
    corelet.output_connector("out", [(idx, j) for j in range(n_hidden)])
    return corelet


def firing_probability(
    net_drive: int, gain: int = 32, bias: int = 128, mask_bits: int = 8
) -> float:
    """Analytic fire probability at a given net visible drive.

    ``net_drive`` is (active positive-weight units) - (active
    negative-weight units) for the hidden unit in question.
    """
    mask = (1 << mask_bits) - 1
    d = gain * net_drive + bias
    if d < 0:
        return 0.0
    return float(min(1.0, (d + 1) / (mask + 1)))


def compile_sampler(layer: Corelet, seed: int = 0):
    """Compile a standalone sampling layer into a runnable network."""
    comp = Composition(name=layer.name, seed=seed)
    comp.add(layer)
    for cname, conn in layer.inputs.items():
        comp.export_input(cname, conn)
    comp.export_output("out", layer.outputs["out"])
    return comp.compile()


def sample_hidden(
    compiled,
    visible: np.ndarray,
    n_samples: int,
) -> np.ndarray:
    """Run the present/flush protocol; return (n_samples, n_hidden) bits."""
    from repro.hardware.simulator import run_truenorth

    visible = np.asarray(visible).astype(bool)
    pos = compiled.inputs["in+"]
    neg = compiled.inputs["in-"]
    flush_pins = compiled.inputs["flush"]
    require(visible.size == len(pos), "visible width mismatch")

    ins = InputSchedule()
    for k in range(n_samples):
        present, flush_tick = 2 * k, 2 * k + 1
        for i in np.nonzero(visible)[0]:
            ins.add(present, pos[i].core, pos[i].index)
            ins.add(present, neg[i].core, neg[i].index)
        for fp in flush_pins:
            ins.add(flush_tick, fp.core, fp.index)

    record = run_truenorth(compiled.network, 2 * n_samples, ins)
    out_index = {
        (p.core, p.index): j for j, p in enumerate(compiled.outputs["out"])
    }
    samples = np.zeros((n_samples, len(out_index)), dtype=bool)
    for t, c, n in record.as_tuples():
        key = (c, n)
        if key in out_index and t % 2 == 0:
            samples[t // 2, out_index[key]] = True
    return samples
