"""Competition corelets: winner-take-all and inhibition-of-return.

These implement the saccade mechanism of the paper's saliency system
(Section IV-B): "a saccade map selects regions of interest by applying a
winner-take-all mechanism to the saliency map, followed by temporal
inhibition-of-return to promote map exploration."
"""

from __future__ import annotations

import numpy as np

from repro.core import params
from repro.core.network import Core
from repro.corelets.corelet import Corelet
from repro.utils.validation import require


def winner_take_all(
    n: int,
    excitation: int = 64,
    inhibition: int = 48,
    threshold: int = 192,
    name: str = "wta",
) -> Corelet:
    """Soft winner-take-all over *n* competing channels (single core).

    Layout: axons 0..n-1 carry the competing inputs (type 0, excitatory);
    axons n..2n-1 carry recurrent inhibition (type 1).  Neurons 0..n-1
    accumulate and recurrently inhibit all rivals when they fire; neurons
    n..2n-1 are an identically-driven copy population whose spikes leave
    the corelet (on TrueNorth a neuron's single target is consumed by the
    recurrent loop, so outputs need a twin).

    Connectors: ``in`` (width n), ``out`` (width n).
    """
    require(1 <= n <= params.CORE_AXONS // 2, "wta needs n <= 128 for one core")
    n_axons = 2 * n
    n_neurons = 2 * n
    crossbar = np.zeros((n_axons, n_neurons), dtype=bool)
    axon_types = np.zeros(n_axons, dtype=np.int64)
    axon_types[n:] = 1
    for i in range(n):
        crossbar[i, i] = True  # input -> competitor
        crossbar[i, n + i] = True  # input -> twin
        for j in range(n):
            if j != i:
                crossbar[n + i, j] = True  # inhibition -> rivals
                crossbar[n + i, n + j] = True  # inhibition -> rival twins
    weights = np.zeros((n_neurons, params.NUM_AXON_TYPES), dtype=np.int64)
    weights[:, 0] = excitation
    weights[:, 1] = -inhibition

    core = Core.build(
        n_axons=n_axons,
        n_neurons=n_neurons,
        crossbar=crossbar,
        axon_types=axon_types,
        weights=weights,
        threshold=threshold,
        # Decay toward rest so stale evidence and inhibition both fade.
        leak=-4,
        leak_reversal=True,
        neg_threshold=4 * inhibition,
        reset_value=0,
        name=f"{name}/core",
    )
    corelet = Corelet(name)
    idx = corelet.add_core(core)
    for i in range(n):
        corelet.connect_internal(idx, i, idx, n + i, delay=1)
    corelet.input_connector("in", [(idx, i) for i in range(n)])
    corelet.output_connector("out", [(idx, n + i) for i in range(n)])
    return corelet


def inhibition_of_return(
    n: int,
    gain: int = 64,
    threshold: int = 64,
    suppression: int = 255,
    recovery: int = 8,
    name: str = "ior",
) -> Corelet:
    """Relay with per-channel refractory suppression after each spike.

    A channel that fires is pushed far below rest (by ``suppression``)
    and recovers toward zero at ``recovery`` per tick (leak-reversal
    decay), so it stays silent for roughly ``suppression / recovery``
    ticks — the paper's "temporal inhibition-of-return to promote map
    exploration".

    Connectors: ``in`` (width n), ``out`` (width n).
    """
    require(1 <= n <= params.CORE_AXONS // 2, "ior needs n <= 128 for one core")
    n_axons = 2 * n
    n_neurons = 2 * n
    crossbar = np.zeros((n_axons, n_neurons), dtype=bool)
    axon_types = np.zeros(n_axons, dtype=np.int64)
    axon_types[n:] = 1
    for i in range(n):
        crossbar[i, i] = True
        crossbar[i, n + i] = True
        crossbar[n + i, i] = True  # self-suppression
        crossbar[n + i, n + i] = True  # twin suppressed identically
    weights = np.zeros((n_neurons, params.NUM_AXON_TYPES), dtype=np.int64)
    weights[:, 0] = gain
    weights[:, 1] = -suppression

    core = Core.build(
        n_axons=n_axons,
        n_neurons=n_neurons,
        crossbar=crossbar,
        axon_types=axon_types,
        weights=weights,
        threshold=threshold,
        leak=-recovery,
        leak_reversal=True,
        neg_threshold=suppression,
        reset_value=0,
        name=f"{name}/core",
    )
    corelet = Corelet(name)
    idx = corelet.add_core(core)
    for i in range(n):
        corelet.connect_internal(idx, i, idx, n + i, delay=1)
    corelet.input_connector("in", [(idx, i) for i in range(n)])
    corelet.output_connector("out", [(idx, n + i) for i in range(n)])
    return corelet
