"""Classification corelets: histograms, counters, ternary classifiers.

Covers the pattern-classification end of the corelet library: LBP-style
population histograms (rate dividers via linear reset) and offline-
trained ternary-weight classifiers ("Compass to simulate networks and to
facilitate training off-line", paper Fig. 2).
"""

from __future__ import annotations

import numpy as np

from repro.core import params
from repro.core.network import Core
from repro.corelets.corelet import Corelet
from repro.utils.rng import seeded_rng
from repro.utils.validation import require


def histogram(
    bin_of_input: np.ndarray,
    n_bins: int,
    count_per_spike: int = 4,
    name: str = "hist",
) -> Corelet:
    """Population histogram: bin neurons count events from their inputs.

    Each input line is assigned to one bin; the bin neuron uses linear
    reset (V -= theta on spike) so it emits one spike per
    ``count_per_spike`` input events — a spiking population counter, the
    LBP-histogram building block.

    Connectors: ``in`` (width len(bin_of_input)), ``out`` (width n_bins).
    """
    bin_of_input = np.asarray(bin_of_input, dtype=np.int64)
    n_in = bin_of_input.size
    require(n_in <= params.CORE_AXONS, "histogram needs n_in <= 256")
    require(n_bins <= params.CORE_NEURONS, "histogram needs n_bins <= 256")
    require((bin_of_input >= 0).all() and (bin_of_input < n_bins).all(), "bad bin index")

    crossbar = np.zeros((n_in, n_bins), dtype=bool)
    crossbar[np.arange(n_in), bin_of_input] = True
    core = Core.build(
        n_axons=n_in,
        n_neurons=n_bins,
        crossbar=crossbar,
        weights=np.ones((n_bins, params.NUM_AXON_TYPES), dtype=np.int64),
        threshold=count_per_spike,
        reset_mode=params.RESET_LINEAR,
        name=f"{name}/core",
    )
    corelet = Corelet(name)
    idx = corelet.add_core(core)
    corelet.input_connector("in", [(idx, i) for i in range(n_in)])
    corelet.output_connector("out", [(idx, b) for b in range(n_bins)])
    return corelet


def ternary_classifier(
    weights: np.ndarray,
    gain: int = 24,
    threshold: int = 96,
    decay: int = 4,
    name: str = "classifier",
) -> Corelet:
    """Rate-coded linear classifier with ternary weights.

    ``weights`` is ``(n_features, n_classes)`` in {-1, 0, +1}, typically
    produced by :func:`train_ternary`.  Class neurons integrate signed
    evidence; the most active output line is the predicted class.

    Connectors: ``in+``/``in-`` (width n_features), ``out`` (n_classes).
    """
    from repro.corelets.library.filters import signed_filter

    corelet = signed_filter(
        weights, gain=gain, threshold=threshold, decay=decay, name=name
    )
    return corelet


def train_ternary(
    features: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
    epochs: int = 30,
    lr: float = 0.05,
    sparsity: float = 0.3,
    seed: int = 0,
) -> np.ndarray:
    """Offline perceptron training quantized to ternary weights.

    Trains one-vs-all perceptrons on (n_samples, n_features) data, then
    ternarizes: weights with |w| above the ``sparsity`` quantile map to
    sign(w), the rest to 0 — the offline-training-then-deploy flow of
    the TrueNorth ecosystem.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    n_samples, n_features = features.shape
    require(labels.shape == (n_samples,), "labels must match features")
    rng = seeded_rng(seed)
    w = rng.normal(0, 0.01, size=(n_features, n_classes))
    onehot = np.eye(n_classes)[labels] * 2 - 1  # {-1, +1} targets
    for _ in range(epochs):
        scores = features @ w
        pred = np.sign(scores)
        mistakes = pred != onehot
        grad = features.T @ (onehot * mistakes)
        w += lr * grad / n_samples
    magnitude = np.abs(w)
    cut = np.quantile(magnitude, sparsity) if n_features * n_classes > 1 else 0.0
    ternary = np.where(magnitude > cut, np.sign(w), 0.0).astype(np.int64)
    return ternary


def classify_rates(rates: np.ndarray) -> int:
    """Argmax class from output spike rates (ties to lowest index)."""
    return int(np.argmax(rates))
