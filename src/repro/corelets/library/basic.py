"""Basic corelets: splitters, relays, and poolers.

On TrueNorth each neuron targets exactly one axon, so fan-out is built
from explicit splitter corelets; these are the workhorses of every
composed application (paper IV-A's corelet library).
"""

from __future__ import annotations

import numpy as np

from repro.core import params
from repro.core.network import Core
from repro.corelets.corelet import Connector, Corelet
from repro.utils.validation import require


def splitter(
    n: int,
    ways: int,
    name: str = "splitter",
    gain: int = 1,
    core_size: int = params.CORE_NEURONS,
) -> Corelet:
    """Duplicate *n* spike lines into *ways* identical copies.

    Connectors: input ``in`` (width n); outputs ``out0`` .. ``out{ways-1}``
    (width n each).  Inputs are chunked across cores when n * ways
    exceeds one core.
    """
    require(n >= 1 and ways >= 1, "splitter needs n >= 1 and ways >= 1")
    require(ways <= core_size, "too many ways for one core")
    chunk = min(n, core_size // ways)
    corelet = Corelet(name)
    in_pins: list[tuple[int, int]] = []
    out_pins: list[list[tuple[int, int]]] = [[] for _ in range(ways)]

    for start in range(0, n, chunk):
        width = min(chunk, n - start)
        crossbar = np.zeros((width, width * ways), dtype=bool)
        for a in range(width):
            for w in range(ways):
                crossbar[a, w * width + a] = True
        core = Core.build(
            n_axons=width,
            n_neurons=width * ways,
            crossbar=crossbar,
            weights=np.full((width * ways, params.NUM_AXON_TYPES), gain),
            threshold=gain,
            reset_value=0,
            name=f"{name}/core{start // chunk}",
        )
        idx = corelet.add_core(core)
        in_pins.extend((idx, a) for a in range(width))
        for w in range(ways):
            out_pins[w].extend((idx, w * width + a) for a in range(width))

    corelet.input_connector("in", in_pins)
    for w in range(ways):
        corelet.output_connector(f"out{w}", out_pins[w])
    return corelet


def relay(n: int, name: str = "relay", core_size: int = params.CORE_NEURONS) -> Corelet:
    """Identity corelet: one-tick-delayed copy of *n* lines.

    Connectors: ``in`` and ``out`` (width n).
    """
    corelet = splitter(n, 1, name=name, core_size=core_size)
    corelet.outputs["out"] = Connector("out", corelet.outputs.pop("out0").pins)
    return corelet


def pooling(
    n: int,
    window: int,
    mode: str = "or",
    name: str = "pool",
    core_size: int = params.CORE_NEURONS,
) -> Corelet:
    """Non-overlapping pooling of *n* lines in groups of *window*.

    ``mode='or'`` fires the pooled output when any line in the window
    fires this tick; ``mode='and'`` requires all of them.  Connectors:
    ``in`` (width n), ``out`` (width n // window).
    """
    require(n % window == 0, "n must be a multiple of window")
    require(mode in ("or", "and"), "mode must be 'or' or 'and'")
    n_out = n // window
    chunk_out = min(n_out, core_size // window)
    corelet = Corelet(name)
    in_pins: list[tuple[int, int]] = []
    out_pins: list[tuple[int, int]] = []

    # OR: any input this tick reaches threshold and resets — no carryover
    # is ever possible.  AND: weight w per input, threshold w, and a leak
    # of -(window-1)*w drains any partial sum to the 0-floor within the
    # same tick, so only a full window fires.
    gain = max(1, min(8, 255 // max(window - 1, 1)))
    if mode == "or":
        threshold, leak = 1, 0
    else:
        threshold, leak = gain, -(window - 1) * gain

    for start in range(0, n_out, chunk_out):
        width_out = min(chunk_out, n_out - start)
        width_in = width_out * window
        crossbar = np.zeros((width_in, width_out), dtype=bool)
        for a in range(width_in):
            crossbar[a, a // window] = True
        core = Core.build(
            n_axons=width_in,
            n_neurons=width_out,
            crossbar=crossbar,
            weights=np.full(
                (width_out, params.NUM_AXON_TYPES),
                1 if mode == "or" else gain,
                dtype=np.int64,
            ),
            threshold=threshold,
            leak=leak,
            neg_threshold=0,
            reset_value=0,
            name=f"{name}/core{start // chunk_out}",
        )
        idx = corelet.add_core(core)
        in_pins.extend((idx, a) for a in range(width_in))
        out_pins.extend((idx, j) for j in range(width_out))

    corelet.input_connector("in", in_pins)
    corelet.output_connector("out", out_pins)
    return corelet
