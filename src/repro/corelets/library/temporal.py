"""Temporal corelets: delay chains and coincidence detection.

The axonal delay field (1..15 ticks) is TrueNorth's temporal computing
primitive; these corelets build on it:

* :func:`delay_chain` — delay a spike bundle by an arbitrary number of
  extra ticks by chaining relays whose internal wires carry programmed
  axonal delays;
* :func:`coincidence` — fire when two bundles spike within the same
  tick: the AND stage of a correlation detector;
* :func:`compose_reichardt` — the classic delay-and-correlate motion
  detector: channel i fires when a stimulus moves from position i to
  position i+1 at the velocity matched by the delay.
"""

from __future__ import annotations

import numpy as np

from repro.core import params
from repro.core.network import Core
from repro.corelets.corelet import Corelet
from repro.utils.validation import require


def _relay_core(n: int, name: str) -> Core:
    """One-to-one relay core: axon i drives neuron i with threshold 1."""
    return Core.build(
        n_axons=n,
        n_neurons=n,
        crossbar=np.eye(n, dtype=bool),
        weights=np.ones((n, params.NUM_AXON_TYPES), dtype=np.int64),
        threshold=1,
        reset_value=0,
        name=name,
    )


def delay_chain(n: int, extra_ticks: int, name: str = "delay") -> Corelet:
    """Delay *n* lines by exactly *extra_ticks* beyond a plain relay.

    A spike arriving on the input axons at tick t emerges from the
    output neurons at tick ``t + extra_ticks``.  ``extra_ticks = 0``
    degenerates to a relay.  Connectors: ``in``, ``out`` (width n).
    """
    require(extra_ticks >= 0, "extra_ticks must be non-negative")
    internal: list[int] = []
    remaining = extra_ticks
    while remaining > 0:
        hop = min(remaining, params.MAX_DELAY)
        internal.append(hop)
        remaining -= hop

    corelet = Corelet(name)
    stage_ids = [corelet.add_core(_relay_core(n, f"{name}/stage0"))]
    for s, wire_delay in enumerate(internal, start=1):
        stage_ids.append(corelet.add_core(_relay_core(n, f"{name}/stage{s}")))
        for line in range(n):
            corelet.connect_internal(
                stage_ids[s - 1], line, stage_ids[s], line, delay=wire_delay
            )

    corelet.input_connector("in", [(stage_ids[0], a) for a in range(n)])
    corelet.output_connector("out", [(stage_ids[-1], j) for j in range(n)])
    return corelet


def coincidence(n: int, name: str = "coincidence") -> Corelet:
    """Fire line i when both input bundles spike on line i this tick.

    Connectors: ``in_a``, ``in_b`` (width n), ``out`` (width n).
    """
    require(2 * n <= params.CORE_AXONS, "coincidence needs n <= 128")
    crossbar = np.zeros((2 * n, n), dtype=bool)
    for i in range(n):
        crossbar[i, i] = True
        crossbar[n + i, i] = True
    # Weight 4, leak -4, threshold 4: two joint inputs reach 8 - 4 = 4
    # and fire; a lone input reaches 4 - 4 = 0 (no residue); leak alone
    # floors at zero.  (The leak applies before the threshold compare,
    # so the AND condition must be evaluated *after* the drain.)
    core = Core.build(
        n_axons=2 * n,
        n_neurons=n,
        crossbar=crossbar,
        weights=np.full((n, params.NUM_AXON_TYPES), 4, dtype=np.int64),
        threshold=4,
        leak=-4,
        neg_threshold=0,
        reset_value=0,
        name=f"{name}/core",
    )
    corelet = Corelet(name)
    idx = corelet.add_core(core)
    corelet.input_connector("in_a", [(idx, i) for i in range(n)])
    corelet.input_connector("in_b", [(idx, n + i) for i in range(n)])
    corelet.output_connector("out", [(idx, i) for i in range(n)])
    return corelet


def compose_reichardt(comp, n_positions: int, velocity_ticks: int = 2,
                      name: str = "reichardt"):
    """Wire a +x-direction Reichardt motion detector into *comp*.

    Position i's copy, delayed by ``velocity_ticks``, coincides with
    position i+1's direct copy exactly when the stimulus crosses one
    position per ``velocity_ticks`` ticks in the +x direction.

    Returns the (input, output) connectors; the output has width
    ``n_positions - 1``.
    """
    from repro.corelets.library.basic import splitter

    require(n_positions >= 2, "need at least two positions")
    require(velocity_ticks >= 1, "velocity must be at least 1 tick/position")
    sp = splitter(n_positions, 2, name=f"{name}/split")
    chain = delay_chain(n_positions, velocity_ticks - 1, name=f"{name}/delay")
    corr = coincidence(n_positions - 1, name=f"{name}/corr")

    comp.connect(sp.outputs["out0"], chain.inputs["in"])
    # Delayed copy of position i pairs with direct copy of position i+1.
    comp.connect(chain.outputs["out"].slice(0, n_positions - 1), corr.inputs["in_a"])
    comp.connect(sp.outputs["out1"].slice(1, n_positions), corr.inputs["in_b"])
    return sp.inputs["in"], corr.outputs["out"]
