"""Convolutional corelets: strided, overlapping ternary-filter layers.

The paper's corelet library includes "convolutional networks"; this
builder generalizes the non-overlapping patch banks of
:mod:`repro.apps.pipeline` to overlapping windows with stride.  Because
a TrueNorth neuron has exactly one spike target, each pixel that
participates in W windows must be physically replicated W times (2W
with signed filters) through a splitter corelet — weight sharing on
TrueNorth is sharing of *parameters*, never of *spikes*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corelets.corelet import CompiledComposition, Composition, Connector
from repro.corelets.library.basic import splitter
from repro.corelets.library.filters import signed_filter
from repro.utils.validation import require


@dataclass
class ConvLayer:
    """A compiled convolutional layer."""

    compiled: CompiledComposition
    height: int
    width: int
    kernel_size: int
    stride: int
    n_features: int
    out_h: int
    out_w: int

    @property
    def pixel_pins(self):
        """Input pins in row-major pixel order."""
        return self.compiled.inputs["pixels"]

    def feature_map(self, record) -> np.ndarray:
        """(out_h, out_w, n_features) spike counts from a run."""
        from repro.apps.transduction import spike_counts_by_pin

        counts = spike_counts_by_pin(record, self.compiled.outputs["features"])
        return counts.reshape(self.out_h, self.out_w, self.n_features)


def conv2d(
    height: int,
    width: int,
    kernels: np.ndarray,
    stride: int = 2,
    gain: int = 24,
    threshold: int = 96,
    decay: int = 16,
    name: str = "conv",
    seed: int = 0,
) -> ConvLayer:
    """Build a strided convolutional layer of signed ternary filters.

    ``kernels`` is ``(k*k, n_features)`` with entries in {-1, 0, +1};
    windows are k x k at the given stride (no padding).
    """
    kernels = np.asarray(kernels)
    k = int(round(np.sqrt(kernels.shape[0])))
    require(k * k == kernels.shape[0], "kernel rows must form a square window")
    require(stride >= 1, "stride must be positive")
    require(height >= k and width >= k, "frame smaller than kernel")
    out_h = (height - k) // stride + 1
    out_w = (width - k) // stride + 1
    n_features = kernels.shape[1]

    # Which windows cover each pixel, in deterministic window order.
    windows_of_pixel: dict[tuple[int, int], list[int]] = {
        (y, x): [] for y in range(height) for x in range(width)
    }
    window_origin = []
    for oy in range(out_h):
        for ox in range(out_w):
            widx = oy * out_w + ox
            window_origin.append((oy * stride, ox * stride))
            for dy in range(k):
                for dx in range(k):
                    windows_of_pixel[(oy * stride + dy, ox * stride + dx)].append(widx)

    max_cov = max(len(v) for v in windows_of_pixel.values())
    ways = 2 * max_cov  # one (+, -) pair of copies per covering window

    comp = Composition(name=name, seed=seed)
    sp = splitter(height * width, ways, name=f"{name}/split")

    feature_pins = []
    for widx, (oy0, ox0) in enumerate(window_origin):
        bank = signed_filter(
            kernels, gain=gain, threshold=threshold, decay=decay,
            name=f"{name}/w{widx}",
        )
        pos_pins = []
        neg_pins = []
        for dy in range(k):
            for dx in range(k):
                y, x = oy0 + dy, ox0 + dx
                pixel = y * width + x
                slot = windows_of_pixel[(y, x)].index(widx)
                pos_pins.append(sp.outputs[f"out{2 * slot}"].pins[pixel])
                neg_pins.append(sp.outputs[f"out{2 * slot + 1}"].pins[pixel])
        comp.connect(Connector(f"w{widx}+", pos_pins), bank.inputs["in+"])
        comp.connect(Connector(f"w{widx}-", neg_pins), bank.inputs["in-"])
        feature_pins.extend(bank.outputs["out"].pins)

    comp.export_input("pixels", sp.inputs["in"])
    comp.export_output("features", Connector("features", feature_pins))
    return ConvLayer(
        compiled=comp.compile(),
        height=height,
        width=width,
        kernel_size=k,
        stride=stride,
        n_features=n_features,
        out_h=out_h,
        out_w=out_w,
    )
