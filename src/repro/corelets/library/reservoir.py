"""Liquid state machine: a recurrent random reservoir corelet.

The paper lists "liquid state machines" among the applications deployed
on TrueNorth (Section I / Fig. 2).  A reservoir is a fixed random
recurrent network whose transient dynamics project input streams into a
high-dimensional spiking state; a simple trained readout (here the
ternary classifier) then solves temporal tasks.

The corelet uses the twin-population idiom: reservoir neurons drive the
recurrent loop (their single spike target is an internal axon), while
identically-driven twin neurons export the reservoir state.
"""

from __future__ import annotations

import numpy as np

from repro.core import params
from repro.core.network import Core
from repro.corelets.corelet import Corelet
from repro.utils.rng import seeded_rng
from repro.utils.validation import require


def liquid_reservoir(
    n_neurons: int = 64,
    n_inputs: int = 16,
    recurrent_connectivity: float = 0.15,
    input_connectivity: float = 0.3,
    excitatory_fraction: float = 0.8,
    gain: int = 48,
    threshold: int = 128,
    decay: int = 8,
    seed: int = 0,
    name: str = "liquid",
) -> Corelet:
    """Build a random recurrent reservoir on one core.

    Axon layout: ``n_inputs`` input axons (type 0, excitatory) followed
    by ``n_neurons`` recurrent axons (types 0/1, excitatory/inhibitory
    with Dale's-law sign per presynaptic neuron).  Neuron layout:
    ``n_neurons`` reservoir neurons followed by ``n_neurons`` output
    twins.

    Connectors: ``in`` (width n_inputs), ``state`` (width n_neurons).
    """
    require(
        n_inputs + n_neurons <= params.CORE_AXONS,
        "reservoir axons exceed one core",
    )
    require(2 * n_neurons <= params.CORE_NEURONS, "reservoir needs n <= 128")
    rng = seeded_rng(seed)

    n_axons = n_inputs + n_neurons
    total_neurons = 2 * n_neurons
    crossbar = np.zeros((n_axons, total_neurons), dtype=bool)

    # Input projections: identical rows for reservoir neurons and twins.
    input_mask = rng.random((n_inputs, n_neurons)) < input_connectivity
    crossbar[:n_inputs, :n_neurons] = input_mask
    crossbar[:n_inputs, n_neurons:] = input_mask

    # Recurrent projections from reservoir axon i (fed by neuron i).
    rec_mask = rng.random((n_neurons, n_neurons)) < recurrent_connectivity
    np.fill_diagonal(rec_mask, False)  # no self-excitation loops
    crossbar[n_inputs:, :n_neurons] = rec_mask
    crossbar[n_inputs:, n_neurons:] = rec_mask

    # Dale's law: each presynaptic reservoir neuron is excitatory or
    # inhibitory; its recurrent axon carries the matching type.
    axon_types = np.zeros(n_axons, dtype=np.int64)
    inhibitory = rng.random(n_neurons) >= excitatory_fraction
    axon_types[n_inputs:] = np.where(inhibitory, 1, 0)

    weights = np.zeros((total_neurons, params.NUM_AXON_TYPES), dtype=np.int64)
    weights[:, 0] = gain
    weights[:, 1] = -2 * gain  # inhibition dominates for stability

    core = Core.build(
        n_axons=n_axons,
        n_neurons=total_neurons,
        crossbar=crossbar,
        axon_types=axon_types,
        weights=weights,
        threshold=threshold,
        leak=-decay,
        leak_reversal=True,
        neg_threshold=4 * gain,
        reset_value=0,
        name=f"{name}/core",
    )
    corelet = Corelet(name)
    idx = corelet.add_core(core)
    for i in range(n_neurons):
        corelet.connect_internal(idx, i, idx, n_inputs + i, delay=1)
    corelet.input_connector("in", [(idx, a) for a in range(n_inputs)])
    corelet.output_connector("state", [(idx, n_neurons + j) for j in range(n_neurons)])
    return corelet


def reservoir_state_features(record, state_pins, n_neurons: int, n_ticks: int,
                             n_windows: int = 4) -> np.ndarray:
    """Windowed spike-count features of the reservoir state.

    Splits the run into *n_windows* equal time windows and counts each
    state neuron's spikes per window — the standard LSM readout feature.
    Returns shape ``(n_windows * n_neurons,)``.
    """
    index = {(p.core, p.index): i for i, p in enumerate(state_pins)}
    feats = np.zeros((n_windows, n_neurons))
    window = max(1, n_ticks // n_windows)
    for t, c, n in record.as_tuples():
        if (c, n) in index:
            w = min(t // window, n_windows - 1)
            feats[w, index[(c, n)]] += 1
    return feats.reshape(-1)
