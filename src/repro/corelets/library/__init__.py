"""The corelet library: reusable building blocks for applications."""

from repro.corelets.library.basic import pooling, relay, splitter
from repro.corelets.library.convolution import ConvLayer, conv2d
from repro.corelets.library.rbm import (
    compile_sampler,
    firing_probability,
    rbm_sampling_layer,
    sample_hidden,
)
from repro.corelets.library.reservoir import liquid_reservoir, reservoir_state_features
from repro.corelets.library.temporal import coincidence, compose_reichardt, delay_chain
from repro.corelets.library.classify import (
    classify_rates,
    histogram,
    ternary_classifier,
    train_ternary,
)
from repro.corelets.library.competition import inhibition_of_return, winner_take_all
from repro.corelets.library.filters import (
    center_surround_kernel,
    haar_kernels,
    signed_filter,
)

__all__ = [
    "ConvLayer",
    "conv2d",
    "compile_sampler",
    "firing_probability",
    "rbm_sampling_layer",
    "sample_hidden",
    "liquid_reservoir",
    "reservoir_state_features",
    "coincidence",
    "compose_reichardt",
    "delay_chain",
    "pooling",
    "relay",
    "splitter",
    "classify_rates",
    "histogram",
    "ternary_classifier",
    "train_ternary",
    "inhibition_of_return",
    "winner_take_all",
    "center_surround_kernel",
    "haar_kernels",
    "signed_filter",
]
