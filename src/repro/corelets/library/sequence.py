"""Sequence detection: temporal pattern recognition with delays.

A spiking analogue of simple state-machine / HMM-style pattern spotting
(the paper's ecosystem lists hidden Markov models among deployed
algorithms): a detector fires exactly when its input channels spike in
a prescribed temporal order.  The mechanism is delay-alignment — each
channel is delayed by the complement of its expected offset so a valid
sequence arrives *simultaneously* at an AND stage.
"""

from __future__ import annotations

import numpy as np

from repro.core import params
from repro.core.network import Core
from repro.corelets.corelet import Composition, Connector, Corelet
from repro.corelets.library.temporal import delay_chain
from repro.utils.validation import require


def _and_core(n_inputs: int, name: str) -> Corelet:
    """Fire once when all n inputs arrive in the same tick (no carryover)."""
    gain = max(1, min(8, 255 // max(n_inputs - 1, 1)))
    crossbar = np.ones((n_inputs, 1), dtype=bool)
    core = Core.build(
        n_axons=n_inputs,
        n_neurons=1,
        crossbar=crossbar,
        weights=np.full((1, params.NUM_AXON_TYPES), gain, dtype=np.int64),
        # k joint arrivals reach k*g - (k-1)*g = g only at k = n (partial
        # matches drain to the zero floor within the tick)
        threshold=gain,
        leak=-(n_inputs - 1) * gain,
        neg_threshold=0,
        reset_value=0,
        name=f"{name}/and",
    )
    corelet = Corelet(name)
    idx = corelet.add_core(core)
    corelet.input_connector("in", [(idx, a) for a in range(n_inputs)])
    corelet.output_connector("out", [(idx, 0)])
    return corelet


def compose_sequence_detector(
    comp: Composition,
    offsets: list[int],
    name: str = "sequence",
) -> tuple[Connector, Connector]:
    """Wire a detector for channels firing at the given relative offsets.

    ``offsets[i]`` is channel i's expected spike time relative to the
    sequence start; the detector output fires ``max(offsets) + chain
    latency`` ticks after the start, only when every channel honoured
    its slot.  Returns (input connector of width len(offsets), output
    connector of width 1).
    """
    require(len(offsets) >= 2, "a sequence needs at least two channels")
    require(min(offsets) >= 0, "offsets must be non-negative")
    horizon = max(offsets)
    n = len(offsets)

    and_stage = _and_core(n, name)
    input_pins = []
    for i, offset in enumerate(offsets):
        extra = horizon - offset
        chain = delay_chain(1, extra, name=f"{name}/ch{i}")
        comp.connect(
            chain.outputs["out"],
            Connector(f"{name}/and-in{i}", [and_stage.inputs["in"].pins[i]]),
        )
        input_pins.extend(chain.inputs["in"].pins)
    comp.add(and_stage)
    return Connector(f"{name}/in", input_pins), and_stage.outputs["out"]


def sequence_detector_network(offsets: list[int], seed: int = 0):
    """Standalone compiled detector; returns the CompiledComposition."""
    comp = Composition(name="sequence-detector", seed=seed)
    in_conn, out_conn = compose_sequence_detector(comp, offsets)
    comp.export_input("in", in_conn)
    comp.export_output("out", out_conn)
    return comp.compile()
