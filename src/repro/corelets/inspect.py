"""Composition inspection: resource accounting for compiled networks.

The Corelet Programming Environment's development loop needs to answer
"what does this composition cost on the chip?": cores used, crossbar
utilization, neuron/axon occupancy, fan-in/fan-out distributions, delay
usage, and whether the network fits a single chip.  These reports drive
design iteration before any simulation runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import params
from repro.core.network import OUTPUT_TARGET, Network


@dataclass(frozen=True)
class ResourceReport:
    """Resource summary of one compiled network."""

    n_cores: int
    n_neurons: int
    n_synapses: int
    crossbar_utilization: float  # programmed / available crosspoints
    output_neurons: int  # neurons with no on-chip target
    routed_neurons: int
    mean_fan_in: float  # programmed synapses per neuron
    max_fan_in: int
    mean_fan_out: float  # programmed synapses per axon
    max_fan_out: int
    delays_used: tuple  # sorted distinct delay values
    stochastic_neurons: int
    chips_required: int

    @property
    def fits_one_chip(self) -> bool:
        """True when the network occupies at most one TrueNorth chip."""
        return self.chips_required <= 1


def analyze(network: Network) -> ResourceReport:
    """Compute the resource report for *network*."""
    n_cores = network.n_cores
    n_neurons = network.n_neurons
    n_synapses = network.n_synapses
    available = sum(c.n_axons * c.n_neurons for c in network.cores)

    fan_in: list[int] = []
    fan_out: list[int] = []
    output_neurons = 0
    delays: set[int] = set()
    stochastic = 0
    for core in network.cores:
        fan_in.extend(core.crossbar.sum(axis=0).tolist())
        fan_out.extend(core.crossbar.sum(axis=1).tolist())
        output_neurons += int((core.target_core == OUTPUT_TARGET).sum())
        routed = core.target_core != OUTPUT_TARGET
        delays.update(np.unique(core.delay[routed]).tolist())
        stochastic += int(
            (
                core.stoch_synapse.any(axis=1)
                | core.stoch_leak
                | (core.threshold_mask > 0)
            ).sum()
        )

    fan_in_arr = np.asarray(fan_in) if fan_in else np.zeros(1)
    fan_out_arr = np.asarray(fan_out) if fan_out else np.zeros(1)
    return ResourceReport(
        n_cores=n_cores,
        n_neurons=n_neurons,
        n_synapses=n_synapses,
        crossbar_utilization=n_synapses / available if available else 0.0,
        output_neurons=output_neurons,
        routed_neurons=n_neurons - output_neurons,
        mean_fan_in=float(fan_in_arr.mean()),
        max_fan_in=int(fan_in_arr.max()),
        mean_fan_out=float(fan_out_arr.mean()),
        max_fan_out=int(fan_out_arr.max()),
        delays_used=tuple(sorted(delays)),
        stochastic_neurons=stochastic,
        chips_required=max(1, -(-n_cores // params.CORES_PER_CHIP)),
    )


def report_text(network: Network) -> str:
    """Human-readable resource report."""
    r = analyze(network)
    lines = [
        f"network {network.name!r}: {r.n_cores} cores, {r.n_neurons} neurons, "
        f"{r.n_synapses} synapses",
        f"  crossbar utilization: {r.crossbar_utilization:.1%}",
        f"  fan-in  mean/max: {r.mean_fan_in:.1f} / {r.max_fan_in}",
        f"  fan-out mean/max: {r.mean_fan_out:.1f} / {r.max_fan_out}",
        f"  routed neurons: {r.routed_neurons}  outputs: {r.output_neurons}",
        f"  delays used: {list(r.delays_used)}",
        f"  stochastic neurons: {r.stochastic_neurons}",
        f"  chips required: {r.chips_required}"
        + (" (fits one chip)" if r.fits_one_chip else ""),
    ]
    return "\n".join(lines)
