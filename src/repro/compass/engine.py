"""Engine selection: one entry point over every kernel expression.

The paper's central claim is that one neurosynaptic kernel (Listing 1)
admits many expressions — scalar reference, vectorized software,
multi-process, event-driven silicon — that are spike-for-spike
interchangeable.  This module makes that interchangeability an API:
:func:`select_engine` constructs the right simulator for a network and
an ``engine`` name, and ``engine="auto"`` picks the fastest applicable
expression (the sparse FastCompass path, which since the stochastic
extension applies to *every* network) unless the caller asks for
rank-level features only the Compass expression models.

Every returned simulator exposes the common driving surface:
``load_inputs(schedule)``, ``step() -> [(tick, core, neuron)]`` and
``run(n_ticks, inputs) -> SpikeRecord``.
"""

from __future__ import annotations

from repro.compass.compile import CompiledNetwork, compile_network
from repro.core.inputs import InputSchedule
from repro.core.network import Network
from repro.core.record import SpikeRecord
from repro.obs.log import get_logger
from repro.obs.observer import Observer
from repro.utils.validation import require

#: Recognized engine names, in rough speed order for typical workloads.
ENGINES = ("auto", "fast", "batched", "compass", "parallel", "truenorth", "reference")

log = get_logger("repro.engine")


def select_engine(
    network: Network | CompiledNetwork,
    engine: str = "auto",
    *,
    n_ranks: int = 1,
    n_workers: int | str = "auto",
    n_replicas: int = 1,
    replica_seeds=None,
    partition_strategy: str = "load_balanced",
    profile: bool = False,
    obs: Observer | None = None,
    gated: bool | str = "auto",
):
    """Construct a simulator for *network* under the named *engine*.

    ``engine="auto"`` resolves to the fastest applicable sparse
    expression: the batched multi-replica engine when the caller asks
    for more than one replica (``n_replicas > 1``), the shared-memory
    partitioned parallel engine when the network is at or above the
    benchmarked :data:`repro.compass.parallel.AUTO_MIN_NEURONS`
    threshold *and* the host has spare CPUs (see
    :func:`repro.compass.parallel.auto_workers`), otherwise the
    single-process FastCompass path — so small-network latency never
    pays the multi-process barrier.  It falls back to the
    rank-partitioned Compass expression only when the caller requests
    rank-level behaviour (``n_ranks > 1`` or ``profile=True``, features
    the flat engines do not model).

    ``engine="batched"`` (or ``n_replicas > 1`` under auto) returns a
    :class:`~repro.compass.batched.BatchedCompassSimulator`, whose
    ``run()`` yields one :class:`~repro.core.record.SpikeRecord` *per
    replica lane*; *replica_seeds* optionally sets per-lane seeds
    (default: every lane at the network's own seed).

    The compass-family engines accept a pre-built
    :class:`CompiledNetwork` and share it; the hardware and reference
    expressions take the underlying :class:`Network`.  An *obs*
    observer (see :mod:`repro.obs`) is threaded through to the
    compass-family engines for tracing and metrics, and the selection
    decision itself is logged on the ``repro.engine`` structured logger
    (set ``REPRO_LOG_LEVEL=INFO`` to see it).

    *gated* selects the activity-gated tick path on the sparse engines
    (fast/parallel/batched): ``"auto"`` (default) engages it whenever
    the compiled network has passive-stable neurons, ``True``/``False``
    force it.  Bit-identical either way; see
    :class:`~repro.compass.fast.ActivityGate`.
    """
    require(engine in ENGINES, f"unknown engine {engine!r}; expected one of {ENGINES}")
    require(
        n_replicas == 1 or engine in ("auto", "batched"),
        f"n_replicas={n_replicas} requires the batched engine, not {engine!r}",
    )
    requested = engine
    reason = "explicit request"
    if engine == "auto":
        if n_replicas > 1:
            engine = "batched"
            reason = f"{n_replicas} replicas requested"
        elif n_ranks > 1 or profile:
            engine = "compass"
            reason = ("rank-level features requested "
                      f"(n_ranks={n_ranks}, profile={profile})")
        else:
            from repro.compass.parallel import AUTO_MIN_NEURONS, auto_workers

            compiled = compile_network(network)
            workers = auto_workers(compiled)
            if workers > 1:
                engine, n_workers = "parallel", workers
                reason = (f"{compiled.n_neurons} neurons >= "
                          f"{AUTO_MIN_NEURONS} with {workers} usable workers")
            else:
                engine = "fast"
                reason = (f"{compiled.n_neurons} neurons below the parallel "
                          "threshold or no spare CPUs")
    log.info(
        "engine_selected", engine=engine, requested=requested,
        n_ranks=n_ranks, n_workers=n_workers, reason=reason,
    )

    if engine == "fast":
        from repro.compass.fast import FastCompassSimulator

        return FastCompassSimulator(network, profile=profile, obs=obs, gated=gated)
    if engine == "batched":
        from repro.compass.batched import BatchedCompassSimulator

        return BatchedCompassSimulator(
            network, n_replicas, seeds=replica_seeds, profile=profile, obs=obs,
            gated=gated,
        )
    if engine == "compass":
        from repro.compass.simulator import CompassSimulator

        return CompassSimulator(
            network, n_ranks=n_ranks,
            partition_strategy=partition_strategy, profile=profile, obs=obs,
        )
    if engine == "parallel":
        from repro.compass.parallel import ParallelCompassSimulator

        return ParallelCompassSimulator(
            network, n_workers=n_workers,
            partition_strategy=partition_strategy, obs=obs, gated=gated,
        )

    raw = network.network if isinstance(network, CompiledNetwork) else network
    if engine == "truenorth":
        from repro.hardware.simulator import TrueNorthSimulator

        return TrueNorthSimulator(raw)
    from repro.core.kernel import ReferenceKernel

    return ReferenceKernel(raw)


def run_engine(
    network: Network | CompiledNetwork,
    n_ticks: int,
    inputs: InputSchedule | None = None,
    engine: str = "auto",
    **kwargs,
) -> SpikeRecord | list[SpikeRecord]:
    """One-shot: select an engine, run *n_ticks*, return the record.

    The batched engine (``engine="batched"`` or ``n_replicas > 1``)
    returns a *list* of records, one per replica lane; every other
    engine returns a single record.
    """
    return select_engine(network, engine, **kwargs).run(n_ticks, inputs)


__all__ = ["ENGINES", "select_engine", "run_engine", "compile_network", "CompiledNetwork"]
