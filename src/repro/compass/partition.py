"""Core-to-rank partitioning with load balancing.

Compass "uses meticulous load-balancing" (paper Section III-B): cores
are distributed across MPI processes so that per-rank synaptic work is
even.  Three strategies are provided; all yield identical simulation
results (partition invariance is a tested kernel property) and differ
only in the per-rank load and message statistics.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.network import Network
from repro.utils.validation import require


def partition_block(network: Network, n_ranks: int) -> np.ndarray:
    """Contiguous blocks of cores per rank (preserves locality)."""
    require(n_ranks >= 1, "need at least one rank")
    n = network.n_cores
    return np.minimum(np.arange(n) * n_ranks // max(n, 1), n_ranks - 1)


def partition_round_robin(network: Network, n_ranks: int) -> np.ndarray:
    """Core i -> rank i mod n_ranks."""
    require(n_ranks >= 1, "need at least one rank")
    return np.arange(network.n_cores) % n_ranks


def partition_load_balanced(network: Network, n_ranks: int) -> np.ndarray:
    """Greedy longest-processing-time balance on per-core synapse count.

    Synapse count is the best static proxy for a core's per-tick work
    (synaptic events scale with programmed synapses at fixed activity).
    """
    require(n_ranks >= 1, "need at least one rank")
    loads = [(0, rank) for rank in range(n_ranks)]
    heapq.heapify(loads)
    assignment = np.zeros(network.n_cores, dtype=np.int64)
    order = np.argsort([-core.n_synapses for core in network.cores], kind="stable")
    for core_id in order:
        load, rank = heapq.heappop(loads)
        assignment[core_id] = rank
        heapq.heappush(loads, (load + network.cores[core_id].n_synapses + 1, rank))
    return assignment


STRATEGIES = {
    "block": partition_block,
    "round_robin": partition_round_robin,
    "load_balanced": partition_load_balanced,
}


def partition(network: Network, n_ranks: int, strategy: str = "load_balanced") -> np.ndarray:
    """Partition *network* over *n_ranks* using the named strategy."""
    try:
        fn = STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown partition strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
        ) from None
    assignment = fn(network, n_ranks)
    require(assignment.shape == (network.n_cores,), "partition must cover every core")
    return assignment


def rank_loads(network: Network, assignment: np.ndarray, n_ranks: int) -> np.ndarray:
    """Total synapse count per rank under *assignment*."""
    loads = np.zeros(n_ranks, dtype=np.int64)
    for core_id, rank in enumerate(assignment):
        loads[rank] += network.cores[core_id].n_synapses
    return loads
