"""Compass: the software (supercomputer) expression of the kernel.

A vectorized functional simulator for networks of neurosynaptic cores,
structured exactly like the original C++/MPI/OpenMP Compass (paper
Section III-B):

* cores are partitioned across simulated MPI ranks with load balancing;
* each tick runs the three kernel phases per rank —
  **Synapse** (crossbar integration), **Neuron** (leak/threshold/fire),
  **Network** (spike transmission) — with spikes between ranks
  aggregated into single messages;
* a two-step synchronization closes the tick barrier.

Numerical semantics are bit-identical to the scalar reference kernel
and to the TrueNorth hardware expression (Section VI-A's one-to-one
equivalence), because all three share the counter-based PRNG and the
integer update rules.

Instrumentation rides on :mod:`repro.obs`: pass ``obs=Observer()`` (or
the legacy ``profile=True``, which creates a private observer) and the
simulator records per-tick phase spans — ``deliver`` / ``integrate`` /
``update`` / ``route`` — publishes the uniform event metrics, and keeps
the classic :attr:`phase_seconds` view available.  All clock reads live
inside :mod:`repro.obs.trace`, so this tick path stays wall-clock-free
under the SL104 determinism lint.
"""

from __future__ import annotations

import numpy as np

from repro.core import params
from repro.core.counters import EventCounters
from repro.core.crossbar import synaptic_input
from repro.core.inputs import InputSchedule
from repro.core.network import OUTPUT_TARGET, Network
from repro.core.neuron import neuron_tick
from repro.core.record import SpikeRecord
from repro.compass.compile import CompiledNetwork, compile_network
from repro.compass.partition import partition
from repro.compass.simmpi import SimMPI
from repro.obs.observer import NULL_SPAN, Observer, active_observer
from repro.obs.trace import PHASES, now_ns


class CompassSimulator:
    """Rank-partitioned, vectorized simulator for one network."""

    def __init__(
        self,
        network: Network | CompiledNetwork,
        n_ranks: int = 1,
        partition_strategy: str = "load_balanced",
        profile: bool = False,
        obs: Observer | None = None,
    ) -> None:
        """Build a Compass simulator over *n_ranks* simulated MPI ranks.

        Accepts a :class:`~repro.core.network.Network` or an already
        compiled :class:`~repro.compass.compile.CompiledNetwork`; the
        compiled artifact (flat initial state, validated configuration)
        is shared across simulators instead of being rebuilt here.

        With an *obs* observer attached (or ``profile=True``, which
        attaches a private one) the kernel phases are wall-clock timed
        per tick into phase spans and the
        ``repro_phase_seconds_total`` metric — the measurement Compass
        used to overlap communication with computation — surfaced
        through :attr:`phase_seconds`.
        """
        self.profile = profile
        self.obs = obs if obs is not None else (Observer() if profile else None)
        with (self.obs.span("compile") if self.obs is not None else NULL_SPAN):
            compiled = compile_network(network)
        self.compiled = compiled
        self.network = network = compiled.network
        self.n_ranks = n_ranks
        with (self.obs.span("partition", ranks=n_ranks)
              if self.obs is not None else NULL_SPAN):
            self.rank_of_core = partition(network, n_ranks, partition_strategy)
        self.cores_of_rank: list[list[int]] = [
            [c for c in range(network.n_cores) if self.rank_of_core[c] == r]
            for r in range(n_ranks)
        ]
        self.mpi = SimMPI(n_ranks)
        self.counters = EventCounters()
        self.counters.ensure_cores(network.n_cores)
        self.tick = 0
        # Membrane state per core, sliced from the compiled flat V(0).
        self.membranes = compiled.membranes_per_core()
        # Pending axon events: per core, a (DELAY_SLOTS, n_axons) ring buffer
        # indexed by delivery tick mod DELAY_SLOTS.
        self.axon_buffers = [
            np.zeros((params.DELAY_SLOTS, core.n_axons), dtype=bool)
            for core in network.cores
        ]
        self._input_by_tick: dict[int, list[tuple[int, int]]] = {}

    @property
    def phase_seconds(self) -> dict:
        """Accumulated seconds per tick phase (all zero when untimed).

        Contains the canonical ``deliver``/``integrate``/``update``/
        ``route`` phases plus the legacy ``synapse_neuron`` and
        ``network`` aggregates.
        """
        if self.obs is None:
            zeros = {name: 0.0 for name in PHASES}
            zeros["synapse_neuron"] = zeros["network"] = 0.0
            return zeros
        return self.obs.phase_seconds()

    # -- input handling ------------------------------------------------------
    def load_inputs(self, inputs: InputSchedule | None) -> None:
        """Stage external input events for injection at their ticks."""
        if inputs is None:
            return
        for tick, core, axon in inputs:
            self._input_by_tick.setdefault(tick, []).append((core, axon))

    def _inject_inputs(self) -> None:
        for core, axon in self._input_by_tick.pop(self.tick, ()):
            self.axon_buffers[core][self.tick % params.DELAY_SLOTS, axon] = True

    # -- checkpointing -------------------------------------------------------
    def snapshot(self):
        """Capture the complete dynamic state as an engine checkpoint.

        The per-core membrane slices and delay rings are flattened into
        the engine-neutral global coordinates of
        :class:`~repro.io.checkpoint.EngineCheckpoint`, so the snapshot
        restores onto any engine (fast, parallel, a batch lane) as well
        as back onto this one.
        """
        from repro.io.checkpoint import (
            EngineCheckpoint, cached_model_digest, canonical_ring,
        )

        c = self.compiled
        ring = np.zeros((params.DELAY_SLOTS, c.n_axons), dtype=bool)
        for core_id, buf in enumerate(self.axon_buffers):
            ring[:, c.axon_base[core_id]:c.axon_base[core_id + 1]] = buf
        pending: dict[int, np.ndarray] = {}
        for tick, events in self._input_by_tick.items():
            pending[int(tick)] = np.asarray(
                [int(c.axon_base[core]) + int(axon) for core, axon in events],
                dtype=np.int64,
            )
        return EngineCheckpoint(
            network_name=self.network.name or "",
            model_digest=cached_model_digest(self),
            seed=int(self.network.seed),
            tick=int(self.tick),
            v=np.concatenate(self.membranes).astype(np.int64)
            if self.membranes else np.zeros(0, dtype=np.int64),
            ring=canonical_ring(ring, self.tick),
            pending=pending,
            counters=self.counters.copy(),
        )

    def restore(self, ckpt) -> None:
        """Restore an engine checkpoint (from any engine); bit-exact resume.

        Validates network name + model digest (``TN602`` on mismatch)
        and the PRNG stream seed, then scatters the flat state back into
        the per-core membrane and delay-ring layout.
        """
        from repro.io.checkpoint import engine_ring
        from repro.utils.validation import require

        ckpt.validate_against(self.network)
        require(
            int(ckpt.seed) == int(self.network.seed),
            f"checkpoint carries PRNG stream seed {ckpt.seed}, this engine "
            f"runs the network seed {self.network.seed} (restore "
            "derived-seed session checkpoints onto a batch lane)",
        )
        c = self.compiled
        self.tick = int(ckpt.tick)
        v = np.asarray(ckpt.v, dtype=np.int64)
        self.membranes = [
            v[c.neuron_base[i]:c.neuron_base[i + 1]].copy()
            for i in range(c.n_cores)
        ]
        raw = engine_ring(np.asarray(ckpt.ring, dtype=bool), self.tick)
        self.axon_buffers = [
            raw[:, c.axon_base[i]:c.axon_base[i + 1]].copy()
            for i in range(c.n_cores)
        ]
        self._input_by_tick = {}
        for tick, axons in ckpt.pending.items():
            events = self._input_by_tick.setdefault(int(tick), [])
            for ga in np.asarray(axons, dtype=np.int64):
                core = int(c.core_of_axon[ga])
                events.append((core, int(ga - c.axon_base[core])))
        self.counters = ckpt.counters.copy()
        self.counters.ensure_cores(c.n_cores)

    # -- one tick --------------------------------------------------------------
    def step(self) -> list[tuple[int, int, int]]:
        """Advance the network one tick; return spikes (tick, core, neuron)."""
        net = self.network
        seed = net.seed
        slot = self.tick % params.DELAY_SLOTS
        # Observation never feeds back into kernel state: timestamps are
        # read through repro.obs and only accumulate into telemetry.
        obs = active_observer(self.obs)
        tick_begin = deliver_ns = integrate_ns = update_ns = route_ns = 0
        if obs is not None:
            tick_begin = now_ns()
        self._inject_inputs()
        if obs is not None:
            deliver_ns = now_ns() - tick_begin

        emitted: list[tuple[int, int, int]] = []
        # Each rank processes its local cores (Synapse + Neuron phases),
        # then queues spike events for the Network phase.
        for rank in range(self.n_ranks):
            for core_id in self.cores_of_rank[rank]:
                core = net.cores[core_id]
                if obs is not None:
                    t0 = now_ns()
                row = self.axon_buffers[core_id][slot]
                active = np.nonzero(row)[0]
                row[:] = False  # consume this tick's deliveries
                self.counters.deliveries += int(active.size)

                syn, n_events = synaptic_input(core, active, core_id, self.tick, seed)
                self.counters.record_core_tick(core_id, n_events)
                if obs is not None:
                    t1 = now_ns()
                    integrate_ns += t1 - t0

                v, spiked = neuron_tick(
                    core, self.membranes[core_id], syn, core_id, self.tick, seed
                )
                self.membranes[core_id] = v
                self.counters.neuron_updates += core.n_neurons
                self.counters.active_neuron_updates += core.n_neurons
                self.counters.membrane_saturations += int(
                    np.count_nonzero(v == params.MEMBRANE_MIN)
                    + np.count_nonzero(v == params.MEMBRANE_MAX)
                )
                if obs is not None:
                    update_ns += now_ns() - t1

                fired = np.nonzero(spiked)[0]
                if fired.size == 0:
                    continue
                self.counters.spikes += int(fired.size)
                emitted.extend((self.tick, core_id, int(n)) for n in fired)

                targets = core.target_core[fired]
                axons = core.target_axon[fired]
                delays = core.delay[fired]
                for t_core, t_axon, t_delay in zip(targets, axons, delays):
                    if t_core == OUTPUT_TARGET:
                        continue
                    dst_rank = int(self.rank_of_core[t_core])
                    self.mpi.send(
                        rank,
                        dst_rank,
                        (int(t_core), int(t_axon), self.tick + int(t_delay)),
                    )

        # Network phase: aggregated exchange, then delivery into buffers.
        # ``messages`` accumulates per tick (see EventCounters), so count
        # only this exchange's newly sent messages.
        if obs is not None:
            t2 = now_ns()
        sent_before = self.mpi.messages_sent
        inboxes = self.mpi.exchange()
        for inbox in inboxes:
            for t_core, t_axon, when in inbox:
                self.axon_buffers[t_core][when % params.DELAY_SLOTS, t_axon] = True
        self.counters.messages += self.mpi.messages_sent - sent_before
        if obs is not None:
            route_ns = now_ns() - t2

        # Tick barrier: two-step synchronization.
        self.mpi.barrier_sync()
        if obs is not None:
            obs.tick_phases(
                self.tick,
                tick_begin,
                (
                    ("deliver", deliver_ns),
                    ("integrate", integrate_ns),
                    ("update", update_ns),
                    ("route", route_ns),
                ),
            )
        self.tick += 1
        self.counters.ticks = self.tick
        if obs is not None:
            obs.publish_counters(self.counters)
            obs.set_gauge("repro_queue_depth", len(self._input_by_tick))
        return emitted

    def run(self, n_ticks: int, inputs: InputSchedule | None = None) -> SpikeRecord:
        """Run *n_ticks* ticks and return the spike record."""
        self.load_inputs(inputs)
        events: list[tuple[int, int, int]] = []
        for _ in range(n_ticks):
            events.extend(self.step())
        return SpikeRecord.from_events(events, self.counters)


def run_compass(
    network: Network | CompiledNetwork,
    n_ticks: int,
    inputs: InputSchedule | None = None,
    n_ranks: int = 1,
    partition_strategy: str = "load_balanced",
) -> SpikeRecord:
    """Convenience one-shot Compass run."""
    sim = CompassSimulator(network, n_ranks, partition_strategy)
    return sim.run(n_ticks, inputs)
