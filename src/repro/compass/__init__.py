"""Compass: the software expression of the neurosynaptic kernel."""

from repro.compass.partition import (
    partition,
    partition_block,
    partition_load_balanced,
    partition_round_robin,
    rank_loads,
)
from repro.compass.fast import FastCompassSimulator, run_fast_compass
from repro.compass.parallel import ParallelCompassSimulator, run_parallel_compass
from repro.compass.simmpi import SimMPI
from repro.compass.simulator import CompassSimulator, run_compass

__all__ = [
    "partition",
    "partition_block",
    "partition_load_balanced",
    "partition_round_robin",
    "rank_loads",
    "FastCompassSimulator",
    "run_fast_compass",
    "ParallelCompassSimulator",
    "run_parallel_compass",
    "SimMPI",
    "CompassSimulator",
    "run_compass",
]
