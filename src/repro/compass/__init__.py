"""Compass: the software expression of the neurosynaptic kernel."""

from repro.compass.compile import (
    CompiledNetwork,
    CompiledPartition,
    PartitionedNetwork,
    compile_network,
    partition_compiled,
)
from repro.compass.engine import ENGINES, run_engine, select_engine
from repro.compass.partition import (
    partition,
    partition_block,
    partition_load_balanced,
    partition_round_robin,
    rank_loads,
)
from repro.compass.batched import (
    BatchedCompassSimulator,
    replica_seeds,
    run_batched_compass,
)
from repro.compass.fast import FastCompassSimulator, run_fast_compass
from repro.compass.parallel import (
    ParallelCompassSimulator,
    auto_workers,
    run_parallel_compass,
)
from repro.compass.simmpi import SimMPI
from repro.compass.simulator import CompassSimulator, run_compass

__all__ = [
    "ENGINES",
    "CompiledNetwork",
    "CompiledPartition",
    "PartitionedNetwork",
    "compile_network",
    "partition_compiled",
    "auto_workers",
    "select_engine",
    "run_engine",
    "partition",
    "partition_block",
    "partition_load_balanced",
    "partition_round_robin",
    "rank_loads",
    "BatchedCompassSimulator",
    "replica_seeds",
    "run_batched_compass",
    "FastCompassSimulator",
    "run_fast_compass",
    "ParallelCompassSimulator",
    "run_parallel_compass",
    "SimMPI",
    "CompassSimulator",
    "run_compass",
]
