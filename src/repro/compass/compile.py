"""Compile a :class:`~repro.core.network.Network` into flat engine state.

Compass earned its speed from "highly compressed data structures for
maintaining neuron and synapse states" (paper Section III-B).  This
module is the compressed representation made explicit: a one-time
compilation pass flattens a network of per-core configuration blocks
into

* one global CSR signed-weight matrix (block-diagonal by core) split
  into its deterministic part (dense matvec path) and a stochastic
  crosspoint table (per-row ``(core, unit)`` coordinates feeding the
  counter-based PRNG),
* flat per-neuron parameter vectors spanning every core,
* flat routing tables (global target axon, delay) for spike delivery.

The resulting :class:`CompiledNetwork` is immutable shared state: it is
built **once per Network** (cached on the network object) and reused by
every simulator constructed over it — :class:`FastCompassSimulator`,
:class:`CompassSimulator`, and the :class:`ParallelCompassSimulator`
coordinator all accept either a ``Network`` or a ``CompiledNetwork``,
so constructing a second simulator does no sparse-matrix rebuild.

Mutable simulator state (membrane potentials, delay ring buffers,
counters) stays in the simulators; compiling has no observable effect
on simulation semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core import prng
from repro.core.network import OUTPUT_TARGET, Network
from repro.lint.model import check_network, check_partition_map

_CACHE_ATTR = "_compiled_network_cache"
_n_builds = 0


def n_builds() -> int:
    """Number of full compilation passes performed (cache-miss count)."""
    return _n_builds


def csr_row_entries(indptr: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Flat entry indices of the CSR *rows*, in row-then-entry order.

    The one flat-enumeration idiom shared by every consumer that walks a
    subset of CSR rows — the stochastic-crosspoint draw in
    :func:`repro.compass.fast.stoch_synapse_input`, the per-rank slices
    in :func:`partition_compiled`, and the gated synapse scatter in
    :func:`repro.compass.fast.integrate_deliveries_gated`.  Returns an
    int64 index array of ``sum(indptr[rows+1] - indptr[rows])`` entries.
    """
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if not total:
        return np.zeros(0, dtype=np.int64)
    cum = np.cumsum(counts)
    return np.arange(total, dtype=np.int64) + np.repeat(
        starts - (cum - counts), counts
    )


def classify_activity(
    leak: np.ndarray, stoch_leak_mask: np.ndarray, threshold_mask: np.ndarray
) -> np.ndarray:
    """Per-neuron passive-stable mask for the activity-gated tick path.

    A neuron is **passive-stable** when its membrane and spike output
    provably cannot change on a tick without synaptic input: zero leak
    (no deterministic drift), non-stochastic leak (no Bernoulli unit
    steps), and a zero threshold mask (deterministic threshold, so the
    fire decision is a pure function of the membrane).  Everything else
    is **always-active** and must run the full update every tick.
    """
    return (leak == 0) & ~stoch_leak_mask & (threshold_mask == 0)


@dataclass(eq=False)
class CompiledNetwork:
    """Flattened, immutable execution artifact for one network.

    All arrays are global (concatenated across cores in core order) and
    must be treated as read-only: simulators copy what they mutate
    (membrane state) and share the rest.
    """

    network: Network

    # -- global index maps -------------------------------------------------
    axon_base: np.ndarray  # (C+1,) global axon offset per core
    neuron_base: np.ndarray  # (C+1,) global neuron offset per core
    n_axons: int
    n_neurons: int
    core_of_axon: np.ndarray  # (A,) owning core per global axon
    core_of_neuron: np.ndarray  # (N,) owning core per global neuron
    local_neuron: np.ndarray  # (N,) local index per global neuron

    # -- synapse state -----------------------------------------------------
    # Full signed-weight matrix over every programmed crosspoint (the
    # paper's one big block-diagonal matrix) and its split used by the
    # sparse engine: deterministic entries as a transposed CSR for the
    # matvec, stochastic entries as flat per-row coordinate tables.
    weight_matrix: sparse.csr_matrix  # (A, N) all crosspoints, signed
    det_matrix_t: sparse.csr_matrix  # (N, A) stochastic entries zeroed
    row_nnz: np.ndarray  # (A,) programmed crosspoints per axon row
    det_indptr: np.ndarray  # (A+1,) CSR row pointer over deterministic entries
    det_col: np.ndarray  # (D,) global target neuron per deterministic entry
    det_weight: np.ndarray  # (D,) signed weight per deterministic entry
    stoch_indptr: np.ndarray  # (A+1,) CSR row pointer over stochastic entries
    stoch_col: np.ndarray  # (S,) global target neuron per stochastic entry
    stoch_core: np.ndarray  # (S,) owning core id (PRNG core coordinate)
    stoch_unit: np.ndarray  # (S,) local (axon, neuron) PRNG unit index
    stoch_weight: np.ndarray  # (S,) signed weight s^{G_a}_n

    # -- flat neuron parameter vectors ------------------------------------
    leak: np.ndarray
    leak_reversal: np.ndarray
    stoch_leak_idx: np.ndarray  # global indices of stochastic-leak neurons
    threshold: np.ndarray
    threshold_mask: np.ndarray
    stoch_threshold_idx: np.ndarray  # global indices with non-zero mask
    neg_threshold: np.ndarray
    reset_value: np.ndarray
    reset_mode: np.ndarray
    neg_floor_mode: np.ndarray
    initial_v: np.ndarray

    # -- activity classification (gated tick path) -------------------------
    # Passive-stable neurons (zero leak, deterministic leak + threshold)
    # provably cannot change state without synaptic input, so the gated
    # tick path may skip them on silent ticks; always-active neurons run
    # the full update every tick.  See repro.compass.fast.ActivityGate.
    passive_mask: np.ndarray  # (N,) True where passive-stable
    passive_idx: np.ndarray  # global indices of passive-stable neurons
    always_active_idx: np.ndarray  # global indices of always-active neurons

    # -- flat routing tables ----------------------------------------------
    target_axon: np.ndarray  # (N,) global destination axon, -1 = output
    delay: np.ndarray  # (N,) delivery delay in ticks

    @property
    def n_cores(self) -> int:
        """Number of cores in the compiled network."""
        return self.network.n_cores

    @property
    def gating_worthwhile(self) -> bool:
        """True when any neuron is passive-stable (the gate can win)."""
        return self.passive_idx.size > 0

    @property
    def any_stoch_synapse(self) -> bool:
        """True when any programmed crosspoint is stochastic."""
        return self.stoch_col.size > 0

    @property
    def any_stoch_leak(self) -> bool:
        """True when any neuron uses stochastic leak."""
        return self.stoch_leak_idx.size > 0

    @property
    def any_stoch_threshold(self) -> bool:
        """True when any neuron uses a stochastic threshold mask."""
        return self.stoch_threshold_idx.size > 0

    @property
    def is_stochastic(self) -> bool:
        """True when any stochastic mode is in use anywhere."""
        return self.any_stoch_synapse or self.any_stoch_leak or self.any_stoch_threshold

    def membranes_per_core(self) -> list[np.ndarray]:
        """Fresh per-core membrane arrays initialized to V(0)."""
        return [
            self.initial_v[self.neuron_base[i] : self.neuron_base[i + 1]].copy()
            for i in range(self.n_cores)
        ]


def _build(network: Network) -> CompiledNetwork:
    """One full compilation pass (no caching)."""
    global _n_builds
    _n_builds += 1
    # Fail-fast front door: every engine compiles through here, so one
    # strict model-checker pass (repro.lint) guards them all.  Raises
    # LintError with TN### diagnostics on any architectural violation.
    check_network(network, strict=True)

    n_cores = network.n_cores
    axon_base = np.zeros(n_cores + 1, dtype=np.int64)
    neuron_base = np.zeros(n_cores + 1, dtype=np.int64)
    for i, core in enumerate(network.cores):
        axon_base[i + 1] = axon_base[i] + core.n_axons
        neuron_base[i + 1] = neuron_base[i] + core.n_neurons
    n_axons = int(axon_base[-1])
    n_neurons = int(neuron_base[-1])

    core_of_axon = np.repeat(
        np.arange(n_cores), [core.n_axons for core in network.cores]
    )
    core_of_neuron = np.repeat(
        np.arange(n_cores), [core.n_neurons for core in network.cores]
    )
    local_neuron = np.concatenate(
        [np.arange(core.n_neurons, dtype=np.int64) for core in network.cores]
    )

    # Crosspoint enumeration, block-diagonal by core.  np.nonzero yields
    # row-major (axon, then neuron) order per core, so concatenating the
    # per-core blocks keeps global rows sorted — the stochastic table
    # below is therefore already in CSR row order.
    rows, cols, vals, stoch_flags = [], [], [], []
    row_nnz = np.zeros(n_axons, dtype=np.int64)
    s_units, s_cores = [], []
    for i, core in enumerate(network.cores):
        a, n = np.nonzero(core.crossbar)
        g = core.axon_types[a]
        rows.append(a + axon_base[i])
        cols.append(n + neuron_base[i])
        vals.append(core.weights[n, g].astype(np.int64))
        stoch_flags.append(core.stoch_synapse[n, g])
        s_units.append(np.asarray(prng.synapse_unit(a, n), dtype=np.int64))
        s_cores.append(np.full(a.size, i, dtype=np.int64))
        row_nnz[axon_base[i] : axon_base[i + 1]] = core.crossbar.sum(axis=1)

    if rows:
        row = np.concatenate(rows)
        col = np.concatenate(cols)
        val = np.concatenate(vals)
        stoch = np.concatenate(stoch_flags)
        unit = np.concatenate(s_units)
        core_id = np.concatenate(s_cores)
    else:
        row = col = val = unit = core_id = np.zeros(0, dtype=np.int64)
        stoch = np.zeros(0, dtype=bool)

    weight_matrix = sparse.csr_matrix(
        (val, (row, col)), shape=(n_axons, n_neurons), dtype=np.int64
    )
    det_matrix_t = sparse.csr_matrix(
        (np.where(stoch, 0, val), (col, row)),
        shape=(n_neurons, n_axons),
        dtype=np.int64,
    )

    stoch_col = col[stoch]
    stoch_core = core_id[stoch]
    stoch_unit = unit[stoch]
    stoch_weight = val[stoch]
    stoch_indptr = np.zeros(n_axons + 1, dtype=np.int64)
    np.cumsum(np.bincount(row[stoch], minlength=n_axons), out=stoch_indptr[1:])

    # Axon-major deterministic crosspoint table (the complement of the
    # stochastic table, filtered — not zeroed like det_matrix_t's copy):
    # the gated tick path scatters from exactly the spiking axons' rows,
    # so it needs them enumerable without touching the (N, A) matvec CSR.
    det = ~stoch
    det_col_arr = col[det]
    det_weight_arr = val[det]
    det_indptr = np.zeros(n_axons + 1, dtype=np.int64)
    np.cumsum(np.bincount(row[det], minlength=n_axons), out=det_indptr[1:])

    def flat(attr, dtype=np.int64):
        return np.concatenate(
            [np.asarray(getattr(core, attr), dtype=dtype) for core in network.cores]
        )

    leak = flat("leak")
    leak_reversal = flat("leak_reversal", bool)
    stoch_leak = flat("stoch_leak", bool)
    threshold = flat("threshold")
    threshold_mask = flat("threshold_mask")
    passive_mask = classify_activity(leak, stoch_leak, threshold_mask)

    # Routing: neuron -> global target axon (or -1) and delay.
    target_axon = np.full(n_neurons, -1, dtype=np.int64)
    delay = np.ones(n_neurons, dtype=np.int64)
    for i, core in enumerate(network.cores):
        sl = slice(neuron_base[i], neuron_base[i + 1])
        routed = core.target_core != OUTPUT_TARGET
        ta = np.full(core.n_neurons, -1, dtype=np.int64)
        ta[routed] = axon_base[core.target_core[routed]] + core.target_axon[routed]
        target_axon[sl] = ta
        delay[sl] = core.delay

    return CompiledNetwork(
        network=network,
        axon_base=axon_base,
        neuron_base=neuron_base,
        n_axons=n_axons,
        n_neurons=n_neurons,
        core_of_axon=core_of_axon,
        core_of_neuron=core_of_neuron,
        local_neuron=local_neuron,
        weight_matrix=weight_matrix,
        det_matrix_t=det_matrix_t,
        row_nnz=row_nnz,
        det_indptr=det_indptr,
        det_col=det_col_arr,
        det_weight=det_weight_arr,
        stoch_indptr=stoch_indptr,
        stoch_col=stoch_col,
        stoch_core=stoch_core,
        stoch_unit=stoch_unit,
        stoch_weight=stoch_weight,
        leak=leak,
        leak_reversal=leak_reversal,
        stoch_leak_idx=np.nonzero(stoch_leak)[0],
        threshold=threshold,
        threshold_mask=threshold_mask,
        stoch_threshold_idx=np.nonzero(threshold_mask != 0)[0],
        neg_threshold=flat("neg_threshold"),
        reset_value=flat("reset_value"),
        reset_mode=flat("reset_mode"),
        neg_floor_mode=flat("neg_floor_mode"),
        initial_v=flat("initial_v"),
        passive_mask=passive_mask,
        passive_idx=np.nonzero(passive_mask)[0],
        always_active_idx=np.nonzero(~passive_mask)[0],
        target_axon=target_axon,
        delay=delay,
    )


@dataclass(eq=False)
class CompiledPartition:
    """One rank's slice of a :class:`CompiledNetwork`.

    Produced by :func:`partition_compiled`.  Axons and neurons live in a
    *local* index space (the rank's owned cores concatenated in global
    core order), but every PRNG coordinate — ``stoch_core``/``stoch_unit``
    for synaptic draws, ``core_of_neuron``/``local_neuron`` for leak and
    threshold draws — keeps its **global** value, so a partitioned run
    observes bit-identical random streams (and therefore bit-identical
    spikes) to the whole-network engines regardless of the partitioning.

    Attribute names deliberately mirror :class:`CompiledNetwork` so the
    vectorized tick phases in :mod:`repro.compass.fast`
    (:func:`~repro.compass.fast.integrate_deliveries`,
    :func:`~repro.compass.fast.update_neurons`) run unchanged on either.
    """

    rank: int
    n_ranks: int
    seed: int

    # -- owned cores and local geometry -----------------------------------
    core_ids: np.ndarray  # (C_r,) global ids of owned cores, ascending
    n_axons: int  # local axon count A_r
    n_neurons: int  # local neuron count N_r
    axon_global: np.ndarray  # (A_r,) global axon id per local axon
    neuron_global: np.ndarray  # (N_r,) global neuron id per local neuron
    core_of_axon: np.ndarray  # (A_r,) global owning core per local axon
    core_of_neuron: np.ndarray  # (N_r,) global owning core (PRNG coordinate)
    local_neuron: np.ndarray  # (N_r,) per-core local index (PRNG coordinate)
    core_slot_of_axon: np.ndarray  # (A_r,) position of owning core in core_ids

    # -- synapse state (local rows/cols, global PRNG coords) ---------------
    det_matrix_t: sparse.csr_matrix  # (N_r, A_r) deterministic matvec slice
    row_nnz: np.ndarray  # (A_r,) programmed crosspoints per local axon
    det_indptr: np.ndarray  # (A_r+1,) CSR pointer over deterministic entries
    det_col: np.ndarray  # (D_r,) *local* target neuron per entry
    det_weight: np.ndarray  # (D_r,) signed weight per entry
    stoch_indptr: np.ndarray  # (A_r+1,) CSR pointer over stochastic entries
    stoch_col: np.ndarray  # (S_r,) *local* target neuron per entry
    stoch_core: np.ndarray  # (S_r,) global core id (PRNG coordinate)
    stoch_unit: np.ndarray  # (S_r,) local (axon, neuron) PRNG unit index
    stoch_weight: np.ndarray  # (S_r,) signed weight

    # -- neuron parameter vectors (sliced) ---------------------------------
    leak: np.ndarray
    leak_reversal: np.ndarray
    stoch_leak_idx: np.ndarray  # local indices of stochastic-leak neurons
    threshold: np.ndarray
    threshold_mask: np.ndarray
    stoch_threshold_idx: np.ndarray  # local indices with non-zero mask
    neg_threshold: np.ndarray
    reset_value: np.ndarray
    reset_mode: np.ndarray
    neg_floor_mode: np.ndarray
    initial_v: np.ndarray

    # -- activity classification (sliced to the rank's neurons) ------------
    passive_mask: np.ndarray  # (N_r,) True where passive-stable
    passive_idx: np.ndarray  # local indices of passive-stable neurons
    always_active_idx: np.ndarray  # local indices of always-active neurons

    # -- routing, pre-resolved to (rank, local axon) -----------------------
    target_axon: np.ndarray  # (N_r,) global destination axon, -1 = output
    target_rank: np.ndarray  # (N_r,) destination rank, -1 = output
    target_local_axon: np.ndarray  # (N_r,) axon index local to the dst rank
    delay: np.ndarray  # (N_r,) delivery delay in ticks

    @property
    def n_cores(self) -> int:
        """Number of cores owned by this rank."""
        return int(self.core_ids.size)

    @property
    def any_stoch_synapse(self) -> bool:
        """True when any owned crosspoint is stochastic."""
        return self.stoch_col.size > 0

    @property
    def any_stoch_leak(self) -> bool:
        """True when any owned neuron uses stochastic leak."""
        return self.stoch_leak_idx.size > 0

    @property
    def any_stoch_threshold(self) -> bool:
        """True when any owned neuron uses a stochastic threshold mask."""
        return self.stoch_threshold_idx.size > 0

    @property
    def gating_worthwhile(self) -> bool:
        """True when any owned neuron is passive-stable."""
        return self.passive_idx.size > 0


@dataclass(eq=False)
class PartitionedNetwork:
    """A :class:`CompiledNetwork` sliced into per-rank partitions.

    Also carries the global-to-local axon maps the coordinator needs to
    route external inputs and cross-rank spike deliveries.
    """

    compiled: CompiledNetwork
    rank_of_core: np.ndarray  # (C,) owning rank per core
    n_ranks: int
    partitions: list[CompiledPartition]
    rank_of_axon: np.ndarray  # (A,) owning rank per global axon
    local_axon_of_global: np.ndarray  # (A,) local index on the owning rank


def partition_compiled(
    compiled: CompiledNetwork,
    rank_of_core: np.ndarray,
    n_ranks: int | None = None,
) -> PartitionedNetwork:
    """Slice *compiled* into per-rank :class:`CompiledPartition` artifacts.

    *rank_of_core* maps every core to its owning rank (any strategy from
    :mod:`repro.compass.partition`).  Slicing is pure bookkeeping: the
    block-diagonal weight matrix means every synapse is core-local, so a
    rank's matvec slice is exactly the rows/columns of its cores, and
    only the spike-routing tables cross partition boundaries (resolved
    here to ``(target_rank, target_local_axon)`` pairs so workers never
    need a global lookup at tick time).
    """
    rank_of_core = np.asarray(rank_of_core, dtype=np.int64)
    if n_ranks is None:
        n_ranks = int(rank_of_core.max()) + 1 if rank_of_core.size else 1
    # TN501 coverage errors raise; TN502 empty-rank warnings pass through
    # (an idle rank is wasteful but correct).
    check_partition_map(compiled.n_cores, rank_of_core, n_ranks, strict=True)

    rank_of_axon = rank_of_core[compiled.core_of_axon]
    rank_of_neuron = rank_of_core[compiled.core_of_neuron]
    local_axon_of_global = np.zeros(compiled.n_axons, dtype=np.int64)
    local_neuron_of_global = np.zeros(compiled.n_neurons, dtype=np.int64)
    axon_sel, neuron_sel = [], []
    for rank in range(n_ranks):
        ax = np.nonzero(rank_of_axon == rank)[0]
        nr = np.nonzero(rank_of_neuron == rank)[0]
        local_axon_of_global[ax] = np.arange(ax.size)
        local_neuron_of_global[nr] = np.arange(nr.size)
        axon_sel.append(ax)
        neuron_sel.append(nr)

    stoch_leak_mask = np.zeros(compiled.n_neurons, dtype=bool)
    stoch_leak_mask[compiled.stoch_leak_idx] = True
    stoch_thr_mask = np.zeros(compiled.n_neurons, dtype=bool)
    stoch_thr_mask[compiled.stoch_threshold_idx] = True

    partitions = []
    for rank in range(n_ranks):
        ax, nr = axon_sel[rank], neuron_sel[rank]
        core_ids = np.nonzero(rank_of_core == rank)[0]
        core_slot = np.zeros(compiled.n_cores, dtype=np.int64)
        core_slot[core_ids] = np.arange(core_ids.size)

        # Stochastic crosspoint slice: the entries of the owned axons'
        # CSR rows, re-pointed over the local axon index space.
        flat = csr_row_entries(compiled.stoch_indptr, ax)
        stoch_indptr = np.zeros(ax.size + 1, dtype=np.int64)
        np.cumsum(
            compiled.stoch_indptr[ax + 1] - compiled.stoch_indptr[ax],
            out=stoch_indptr[1:],
        )

        # Deterministic crosspoint slice, same treatment.  Columns map
        # through local_neuron_of_global: block-diagonality guarantees a
        # crosspoint's target neuron lives on the axon's own rank.
        det_flat = csr_row_entries(compiled.det_indptr, ax)
        det_indptr = np.zeros(ax.size + 1, dtype=np.int64)
        np.cumsum(
            compiled.det_indptr[ax + 1] - compiled.det_indptr[ax],
            out=det_indptr[1:],
        )

        # Routing, resolved to the destination rank's local axon space.
        tgt = compiled.target_axon[nr]
        routed = tgt >= 0
        target_rank = np.full(nr.size, -1, dtype=np.int64)
        target_local = np.full(nr.size, -1, dtype=np.int64)
        target_rank[routed] = rank_of_axon[tgt[routed]]
        target_local[routed] = local_axon_of_global[tgt[routed]]

        det_slice = compiled.det_matrix_t[nr][:, ax].tocsr() if nr.size else (
            sparse.csr_matrix((0, ax.size), dtype=np.int64)
        )

        partitions.append(CompiledPartition(
            rank=rank,
            n_ranks=n_ranks,
            seed=compiled.network.seed,
            core_ids=core_ids,
            n_axons=int(ax.size),
            n_neurons=int(nr.size),
            axon_global=ax,
            neuron_global=nr,
            core_of_axon=compiled.core_of_axon[ax],
            core_of_neuron=compiled.core_of_neuron[nr],
            local_neuron=compiled.local_neuron[nr],
            core_slot_of_axon=core_slot[compiled.core_of_axon[ax]],
            det_matrix_t=det_slice,
            row_nnz=compiled.row_nnz[ax],
            det_indptr=det_indptr,
            det_col=local_neuron_of_global[compiled.det_col[det_flat]],
            det_weight=compiled.det_weight[det_flat],
            stoch_indptr=stoch_indptr,
            stoch_col=local_neuron_of_global[compiled.stoch_col[flat]],
            stoch_core=compiled.stoch_core[flat],
            stoch_unit=compiled.stoch_unit[flat],
            stoch_weight=compiled.stoch_weight[flat],
            leak=compiled.leak[nr],
            leak_reversal=compiled.leak_reversal[nr],
            stoch_leak_idx=np.nonzero(stoch_leak_mask[nr])[0],
            threshold=compiled.threshold[nr],
            threshold_mask=compiled.threshold_mask[nr],
            stoch_threshold_idx=np.nonzero(stoch_thr_mask[nr])[0],
            neg_threshold=compiled.neg_threshold[nr],
            reset_value=compiled.reset_value[nr],
            reset_mode=compiled.reset_mode[nr],
            neg_floor_mode=compiled.neg_floor_mode[nr],
            initial_v=compiled.initial_v[nr],
            passive_mask=compiled.passive_mask[nr],
            passive_idx=np.nonzero(compiled.passive_mask[nr])[0],
            always_active_idx=np.nonzero(~compiled.passive_mask[nr])[0],
            target_axon=tgt,
            target_rank=target_rank,
            target_local_axon=target_local,
            delay=compiled.delay[nr],
        ))

    return PartitionedNetwork(
        compiled=compiled,
        rank_of_core=rank_of_core,
        n_ranks=n_ranks,
        partitions=partitions,
        rank_of_axon=rank_of_axon,
        local_axon_of_global=local_axon_of_global,
    )


def compile_network(network: Network | CompiledNetwork) -> CompiledNetwork:
    """Return the compiled artifact for *network*, building at most once.

    The artifact is cached on the network object, so every simulator
    constructed over the same ``Network`` instance shares one compiled
    representation.  Networks are treated as frozen once compiled;
    mutate a network's cores only before the first simulator is built
    (or call :func:`invalidate` after).
    """
    if isinstance(network, CompiledNetwork):
        return network
    cached = network.__dict__.get(_CACHE_ATTR)
    if cached is not None:
        return cached
    compiled = _build(network)
    network.__dict__[_CACHE_ATTR] = compiled
    return compiled


def invalidate(network: Network) -> None:
    """Drop *network*'s cached compiled artifact (after mutation)."""
    network.__dict__.pop(_CACHE_ATTR, None)
