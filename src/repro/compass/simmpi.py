"""Simulated MPI: rank-addressed, aggregated message exchange.

Compass "sends spike events via MPI communication ... aggregates spikes
between pairs of processes into a single MPI message; overlaps
communication with computation; [and] uses an innovative synchronization
scheme requiring just two communication steps regardless of the number
of the processors" (paper Section III-B).

This module provides an in-process stand-in for that communication
layer: ranks enqueue typed payloads to peers, and a collective
:meth:`SimMPI.exchange` performs the aggregated all-to-all at the tick
barrier.  Message and byte counters feed the
:mod:`repro.machines` cost models (MPI overhead per aggregated message,
per-byte transfer cost), so the *communication structure* of Compass —
message aggregation, two-phase synchronization — is preserved even
though everything runs in one process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import require

# Modeled wire size of one spike event: a single-word packet (paper
# Section III-C) — destination core, axon, and delivery tick fit in 8
# bytes in Compass's compressed representation.
SPIKE_EVENT_BYTES = 8
SYNC_MESSAGE_BYTES = 8


@dataclass
class SimMPI:
    """An n-rank communicator with aggregated exchange and 2-step sync."""

    n_ranks: int
    messages_sent: int = 0
    bytes_sent: int = 0
    sync_steps: int = 0
    sync_messages: int = 0
    exchanges: int = 0
    _outboxes: list = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        require(self.n_ranks >= 1, "communicator needs at least one rank")
        self._outboxes = [
            [[] for _ in range(self.n_ranks)] for _ in range(self.n_ranks)
        ]

    def send(self, src_rank: int, dst_rank: int, payload: tuple) -> None:
        """Enqueue one spike event from *src_rank* to *dst_rank*.

        Events to the same destination aggregate into one message at the
        next :meth:`exchange` (Compass's message-aggregation strategy).
        """
        self._outboxes[src_rank][dst_rank].append(payload)

    def exchange(self) -> list[list[tuple]]:
        """Deliver all queued events; return one inbox list per rank.

        Counts one MPI message per non-empty (src, dst) rank pair with
        src != dst (local deliveries are free), matching the aggregated
        messaging of Compass.
        """
        inboxes: list[list[tuple]] = [[] for _ in range(self.n_ranks)]
        for src in range(self.n_ranks):
            for dst in range(self.n_ranks):
                queued = self._outboxes[src][dst]
                if not queued:
                    continue
                inboxes[dst].extend(queued)
                if src != dst:
                    self.messages_sent += 1
                    self.bytes_sent += SPIKE_EVENT_BYTES * len(queued)
                self._outboxes[src][dst] = []
        self.exchanges += 1
        return inboxes

    def barrier_sync(self) -> None:
        """Two-step synchronization: gather-to-root then broadcast.

        Regardless of rank count this costs two communication steps
        (2*(n-1) point-to-point messages), reproducing the scheme the
        paper credits for Compass's scalability.
        """
        self.sync_steps += 2
        self.sync_messages += 2 * (self.n_ranks - 1)

    @property
    def pending_events(self) -> int:
        """Number of queued, not-yet-exchanged events (for tests)."""
        return sum(
            len(box) for per_src in self._outboxes for box in per_src
        )
