"""Batched multi-replica execution: B networks per vectorized pass.

The paper's headline throughput comes from amortizing fixed per-tick
cost across massive parallel work.  The sparse engine
(:mod:`repro.compass.fast`) already makes one tick a handful of numpy
calls — but serving many concurrent input streams still pays that fixed
Python overhead once *per stream*.  This module adds the missing batch
axis: :class:`BatchedCompassSimulator` advances ``B`` independent
replicas of one :class:`~repro.compass.compile.CompiledNetwork` in a
single vectorized pass, extending the delivery ring, membrane, and
stats arrays from ``(N, ...)`` to ``(B, N, ...)`` so the sparse matvec
becomes one CSR x ``(A, B)`` product and the neuron update one
``(B, N)`` elementwise sweep.

Replica independence is exact, not approximate.  Every lane carries its
own PRNG coordinates — a per-lane seed and a per-lane tick counter —
and the counter-based generator (:mod:`repro.core.prng`) makes each
draw a pure function of (seed, purpose, core, tick, unit).  Lane ``b``
therefore observes *bit-identical* spikes, counters, and membrane
trajectories to a standalone :class:`~repro.compass.fast.FastCompassSimulator`
run of the same seed and inputs, which is what the batched property
suite asserts.  Per-lane tick counters also make lanes restartable in
place (:meth:`~BatchedCompassSimulator.reset_lane`), the primitive the
serving runtime (:mod:`repro.runtime.serving`) uses to admit a new
session into a free lane mid-flight.

The stochastic draw helpers are shared with the sparse engine
(:func:`~repro.compass.fast.stoch_synapse_input`,
:func:`~repro.compass.fast.effective_leak`,
:func:`~repro.compass.fast.effective_threshold`), called once per lane
with that lane's (seed, tick) coordinates — divergence between the
engines is structurally impossible.
"""

from __future__ import annotations

import numpy as np

from repro.compass.compile import CompiledNetwork, compile_network, csr_row_entries
from repro.compass.fast import (
    _GatedSlice,
    effective_leak,
    effective_threshold,
    settled_mask,
    staged_inputs,
    stoch_synapse_input,
)
from repro.core import params
from repro.core.counters import EventCounters
from repro.core.inputs import InputSchedule
from repro.core.network import Network
from repro.core.prng import derive_stream_seed
from repro.core.record import SpikeRecord
from repro.obs.observer import NULL_SPAN, Observer, active_observer
from repro.obs.trace import now_ns
from repro.sanitize.analyze import analyze_access_log
from repro.sanitize.dynamic import AccessRecorder, sanitize_enabled, shadow_view
from repro.sanitize.faults import resolve_fault
from repro.sanitize.protocol import BATCHED_PROTOCOL
from repro.utils.validation import require


def replica_seeds(base_seed: int, n_replicas: int) -> list[int]:
    """The default per-lane seed vector for *n_replicas* lanes.

    Lane 0 keeps *base_seed* (bit-identical to the unbatched run of the
    network as built); later lanes get decorrelated derived seeds via
    :func:`~repro.core.prng.derive_stream_seed`, pairwise distinct so
    the TN401 replica-coordinate check passes by construction.
    """
    return [derive_stream_seed(base_seed, b) for b in range(n_replicas)]


def _per_lane_rows(c, seeds, lane_ticks, base: np.ndarray, fn) -> np.ndarray:
    """Apply per-lane draw helper *fn* across lanes, collapsing when uniform.

    When every lane shares one (seed, tick) coordinate — the common
    steady-state batch with no mid-flight resets — the draws are
    identical by purity, so one ``(N,)`` row broadcasts over the batch.
    Otherwise returns a stacked ``(B, N)`` array of per-lane rows.
    """
    first = fn(c, seeds[0], int(lane_ticks[0]), base)
    if all(s == seeds[0] for s in seeds) and bool(
        np.all(lane_ticks == lane_ticks[0])
    ):
        return first
    rows = [first]
    for b in range(1, len(seeds)):
        rows.append(fn(c, seeds[b], int(lane_ticks[b]), base))
    return np.stack(rows)


def integrate_deliveries_batched(
    c, seeds, lane_ticks: np.ndarray, active: np.ndarray
) -> np.ndarray:
    """Synapse phase across the batch: one CSR x dense matmul.

    *active* is the ``(B, A)`` axon activity matrix.  The deterministic
    contribution for every lane is a single sparse-times-dense product;
    stochastic crosspoint draws run per lane through the exact sparse
    engine helper with that lane's (seed, tick) coordinates.  Returns
    the ``(B, N)`` synaptic input matrix.
    """
    syn = np.ascontiguousarray(
        c.det_matrix_t.dot(active.T.astype(np.int64)).T
    )
    if c.any_stoch_synapse:
        for b in range(active.shape[0]):
            active_idx = np.nonzero(active[b])[0]
            if active_idx.size:
                contrib = stoch_synapse_input(
                    c, seeds[b], int(lane_ticks[b]), active_idx
                )
                if contrib is not None:
                    syn[b] += contrib
    return syn


def update_neurons_batched(
    c, seeds, lane_ticks: np.ndarray, v: np.ndarray, syn: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Neuron phase across the batch: leak, threshold, fire, reset.

    Identical algebra to :func:`repro.compass.fast.update_neurons`,
    broadcast over the lane axis of the ``(B, N)`` membrane matrix.
    Stochastic leak/threshold draws are per lane (collapsed to one row
    when every lane shares one (seed, tick) coordinate — the draws are
    equal by purity).  Returns ``(v_next, spiked)``, both ``(B, N)``.
    """
    v = v + syn

    direction = np.where(c.leak_reversal, np.sign(v), 1)
    leak = _per_lane_rows(c, seeds, lane_ticks, c.leak, effective_leak)
    v = np.clip(v + direction * leak, params.MEMBRANE_MIN, params.MEMBRANE_MAX)

    theta = _per_lane_rows(c, seeds, lane_ticks, c.threshold, effective_threshold)

    spiked = v >= theta
    # Same selection algebra as the sparse engine's np.select, spelled
    # as nested wheres: one fewer (B, N) temporary per pass.
    v_reset = np.where(
        c.reset_mode == params.RESET_TO_VALUE,
        c.reset_value,
        np.where(c.reset_mode == params.RESET_LINEAR, v - theta, v),
    )
    v = np.where(spiked, v_reset, v)
    below = (~spiked) & (v < -c.neg_threshold)
    if below.any():
        floored = np.where(
            c.neg_floor_mode == params.NEG_FLOOR_SATURATE,
            -c.neg_threshold,
            -c.reset_value,
        )
        v = np.where(below, floored, v)
    return np.clip(v, params.MEMBRANE_MIN, params.MEMBRANE_MAX), spiked


class _BatchedGate:
    """Activity-gate state across the batch: per-lane hot tracking.

    The batch updates one *union* active set per pass — always-active
    neurons, neurons hot in *any* lane, and neurons touched by any
    lane's deliveries — so the vectorized ``(B, k)`` update stays a
    single pass (the per-lane sets collapse to one broadcast row).
    Including a neuron a lane didn't strictly need is harmless: for
    that lane it is passive and settled with zero input, where the
    update is the identity.  Per-lane saturation populations are
    tracked separately because the counter is per lane.
    """

    def __init__(self, c, v: np.ndarray) -> None:
        self.c = c
        self.always_mask = ~c.passive_mask
        self.hot = c.passive_mask[None, :] & ~settled_mask(c, v)
        self._work = np.empty(c.n_neurons, dtype=bool)
        self.n_saturated = (
            np.count_nonzero(v == params.MEMBRANE_MIN, axis=1)
            + np.count_nonzero(v == params.MEMBRANE_MAX, axis=1)
        ).astype(np.int64)

    def active_set(self, touched: np.ndarray) -> np.ndarray:
        """Sorted union active set across every lane for this pass."""
        np.logical_or(self.always_mask, self.hot.any(axis=0), out=self._work)
        self._work[touched] = True
        return np.nonzero(self._work)[0]

    def commit(self, sl, idx: np.ndarray, v_old: np.ndarray, v_new: np.ndarray) -> None:
        """Account one gated pass over the ``(B, k)`` subset *idx*."""
        self.hot[:, idx] = self.c.passive_mask[idx] & ~settled_mask(sl, v_new)
        self.n_saturated += (
            np.count_nonzero(v_new == params.MEMBRANE_MIN, axis=1)
            + np.count_nonzero(v_new == params.MEMBRANE_MAX, axis=1)
            - np.count_nonzero(v_old == params.MEMBRANE_MIN, axis=1)
            - np.count_nonzero(v_old == params.MEMBRANE_MAX, axis=1)
        )

    def reset_lane(self, lane: int, v_lane: np.ndarray) -> None:
        """Re-derive one lane's gate state after a mid-flight reset."""
        self.hot[lane] = self.c.passive_mask & ~settled_mask(self.c, v_lane)
        self.n_saturated[lane] = int(
            np.count_nonzero(v_lane == params.MEMBRANE_MIN)
            + np.count_nonzero(v_lane == params.MEMBRANE_MAX)
        )


class BatchedCompassSimulator:
    """B independent replicas of one compiled network per vectorized pass.

    Each lane is a full, independent simulation of the same network:
    its own membrane state, delivery ring slice, input schedule, event
    counters, seed, and tick counter.  Lanes sharing a seed observe
    identical stochastic streams (flagged by the TN401 replica check);
    pass ``seeds=replica_seeds(net.seed, B)`` for decorrelated lanes,
    or leave the default — every lane at the network's own seed —
    when replicas exist purely for throughput over identical dynamics.

    One :meth:`step_arrays` call advances *every* lane one tick.  After
    :meth:`reset_lane`, lane tick counters diverge: a pass advances
    each lane at its own local tick, which is what keeps mid-flight
    admission bit-identical to a fresh standalone run.

    ``gated`` selects the activity-gated update (``"auto"`` engages it
    when the network has passive-stable neurons): each pass updates the
    cross-lane *union* active set (see :class:`_BatchedGate`), keeping
    one vectorized ``(B, k)`` sweep while staying bit-identical per
    lane to the dense path.
    """

    #: This engine records its own flight-recorder rows per pass, so
    #: wrappers (the serving runtime) must not record duplicates.
    _records_flight = True

    def __init__(
        self,
        network: Network | CompiledNetwork,
        n_replicas: int = 1,
        *,
        seeds=None,
        profile: bool = False,
        obs: Observer | None = None,
        gated: bool | str = "auto",
        sanitize: bool | None = None,
        sanitize_fault=None,
    ) -> None:
        require(n_replicas >= 1, f"n_replicas must be >= 1, got {n_replicas}")
        self.profile = profile
        self.obs = obs if obs is not None else (Observer() if profile else None)
        with (self.obs.span("compile") if self.obs is not None else NULL_SPAN):
            compiled = compile_network(network)
        self.compiled = compiled
        self.network = compiled.network
        self.n_replicas = int(n_replicas)
        self.gated = (
            compiled.gating_worthwhile if gated == "auto" else bool(gated)
        )

        if seeds is None:
            seeds = [self.network.seed] * self.n_replicas
        else:
            seeds = [int(s) for s in seeds]
            require(
                len(seeds) == self.n_replicas,
                f"seeds has {len(seeds)} entries for {self.n_replicas} lanes",
            )
        self.seeds: list[int] = seeds
        # TN401 replica-coordinate check: duplicate seeds on a stochastic
        # network mean lanes observe identical streams (warning, not error).
        from repro.lint.model import check_replica_seeds

        self.lint_report = check_replica_seeds(
            self.seeds, stochastic=compiled.is_stochastic
        )

        B = self.n_replicas
        self.sanitize_report = None
        self._san = (
            AccessRecorder("engine", fault=resolve_fault(sanitize_fault))
            if sanitize_enabled(sanitize) else None
        )
        # Mutable per-run state, lane-major where it matters.
        self.v = np.repeat(compiled.initial_v[None, :], B, axis=0)
        self.buffers = np.zeros(
            (params.DELAY_SLOTS, B, compiled.n_axons), dtype=bool
        )
        if self._san is not None:
            # The single-actor engine still gets phase conformance
            # checking: buffers accesses record through the shadow view;
            # self.v is rebound each dense pass, so its traffic is noted
            # explicitly at the phase boundaries.
            self._san.set_context(-1, "init")
            self.buffers = shadow_view(self.buffers, ("batch", "buffers"), self._san)
            self._san.note(("batch", "v"), "W")
        self.lane_tick = np.zeros(B, dtype=np.int64)
        self._inputs: list[dict[int, object]] = [dict() for _ in range(B)]
        self._lanes = np.arange(B, dtype=np.int64)

        # Vectorized per-lane event stats ((B,) arrays; EventCounters
        # structs are materialized on demand by lane_counters()).
        C = compiled.n_cores
        self._deliveries = np.zeros(B, dtype=np.int64)
        self._syn_events = np.zeros(B, dtype=np.int64)
        self._spikes = np.zeros(B, dtype=np.int64)
        self._neuron_updates = np.zeros(B, dtype=np.int64)
        self._active_updates = np.zeros(B, dtype=np.int64)
        self._saturations = np.zeros(B, dtype=np.int64)
        self._messages = np.zeros(B, dtype=np.int64)
        self._max_core_events = np.zeros(B, dtype=np.int64)
        self._events_per_core = np.zeros((B, C), dtype=np.int64)
        # Flat (lane, core-of-axon) key per (B, A) cell for one-bincount
        # per-core event accounting across the whole batch.
        self._core_key = (
            self._lanes[:, None] * np.int64(C) + compiled.core_of_axon[None, :]
        ).ravel()
        self.passes = 0
        self._gate = _BatchedGate(compiled, self.v) if self.gated else None

        if self.obs is not None and self.obs.active:
            self.obs.set_gauge("repro_batch_lanes", B)

    # -- input handling ----------------------------------------------------
    def _load_lane(self, lane: int, inputs: InputSchedule) -> None:
        """Merge *inputs* into one lane's staged schedule (local ticks)."""
        table = self._inputs[lane]
        for tick, axons in staged_inputs(self.compiled, inputs).items():
            staged = table.get(tick)
            if staged is None:
                table[tick] = axons  # shared, read-only
            else:
                table[tick] = np.concatenate(
                    [np.asarray(staged, dtype=np.int64), axons]
                )

    def load_inputs(self, inputs, lane: int | None = None) -> None:
        """Stage input events: one schedule per lane, or one for all.

        *inputs* may be ``None``, a single :class:`InputSchedule`
        (staged into every lane — or just *lane* when given), or a
        sequence of ``n_replicas`` schedules (one per lane; ``None``
        entries skip a lane).  Ticks are *lane-local*: events at tick
        ``t`` arrive at the lane's own tick ``t``, matching what a
        standalone simulator fed the same schedule would see.
        """
        if inputs is None:
            return
        if isinstance(inputs, (list, tuple)):
            require(
                len(inputs) == self.n_replicas,
                f"got {len(inputs)} schedules for {self.n_replicas} lanes",
            )
            for b, sched in enumerate(inputs):
                if sched is not None:
                    self._load_lane(b, sched)
            return
        if lane is not None:
            self._load_lane(lane, inputs)
            return
        for b in range(self.n_replicas):
            self._load_lane(b, inputs)

    # -- lane lifecycle ----------------------------------------------------
    def reset_lane(
        self, lane: int, seed: int | None = None, inputs: InputSchedule | None = None
    ) -> None:
        """Restart one lane at tick 0 without touching the others.

        Clears the lane's membrane, ring-buffer slice, staged inputs,
        and event stats; optionally re-seeds it and stages a fresh
        schedule.  Because PRNG coordinates are (seed, lane-local
        tick), the restarted lane is bit-identical to a brand-new
        standalone simulator — the admission primitive of
        :class:`~repro.runtime.serving.ModelServer`.
        """
        require(0 <= lane < self.n_replicas, f"lane {lane} out of range")
        if self._san is not None:
            self._san.set_context(self.passes, "reset")
            self._san.note(("batch", "v"), "W")
        self.v[lane] = self.compiled.initial_v
        self.buffers[:, lane, :] = False
        self.lane_tick[lane] = 0
        self._inputs[lane].clear()
        for arr in (
            self._deliveries, self._syn_events, self._spikes,
            self._neuron_updates, self._active_updates, self._saturations,
            self._messages, self._max_core_events,
        ):
            arr[lane] = 0
        self._events_per_core[lane] = 0
        if seed is not None:
            self.seeds[lane] = int(seed)
        if inputs is not None:
            self._load_lane(lane, inputs)
        if self._gate is not None:
            self._gate.reset_lane(lane, self.v[lane])

    def lane_counters(self, lane: int) -> EventCounters:
        """One lane's event counters as a standalone struct.

        Bit-identical to the counters of a standalone sparse run of the
        same (seed, inputs) — the equivalence the batched property
        suite asserts field by field.
        """
        ec = EventCounters(
            ticks=int(self.lane_tick[lane]),
            synaptic_events=int(self._syn_events[lane]),
            spikes=int(self._spikes[lane]),
            deliveries=int(self._deliveries[lane]),
            neuron_updates=int(self._neuron_updates[lane]),
            active_neuron_updates=int(self._active_updates[lane]),
            messages=int(self._messages[lane]),
            membrane_saturations=int(self._saturations[lane]),
            max_core_events_per_tick=int(self._max_core_events[lane]),
        )
        ec.synaptic_events_per_core = self._events_per_core[lane].copy()
        return ec

    def aggregate_counters(self) -> EventCounters:
        """Whole-batch totals: sums across lanes, max of high-watermarks.

        ``ticks`` is the *aggregate lane-tick* count (lane-ticks
        advanced across the batch), the serving throughput currency.
        """
        ec = EventCounters(
            ticks=int(self.lane_tick.sum()),
            synaptic_events=int(self._syn_events.sum()),
            spikes=int(self._spikes.sum()),
            deliveries=int(self._deliveries.sum()),
            neuron_updates=int(self._neuron_updates.sum()),
            active_neuron_updates=int(self._active_updates.sum()),
            messages=int(self._messages.sum()),
            membrane_saturations=int(self._saturations.sum()),
            max_core_events_per_tick=int(self._max_core_events.max(initial=0)),
        )
        ec.synaptic_events_per_core = self._events_per_core.sum(axis=0)
        return ec

    @property
    def counters(self) -> EventCounters:
        """Alias for :meth:`aggregate_counters` (engine-common surface)."""
        return self.aggregate_counters()

    # -- checkpointing -----------------------------------------------------
    def snapshot_lane(self, lane: int):
        """One lane's complete dynamic state as an EngineCheckpoint.

        The lane's ring slice is rotated into canonical slot order and
        its stat tallies packaged as standalone counters, so the
        checkpoint restores onto any engine (a standalone fast run
        resumed from a preempted serving lane is bit-identical).
        """
        from repro.io.checkpoint import (
            EngineCheckpoint, cached_model_digest, canonical_ring, copy_pending,
        )

        require(0 <= lane < self.n_replicas, f"lane {lane} out of range")
        if self._san is not None:
            self._san.set_context(self.passes, "checkpoint")
            self._san.note(("batch", "v"), "R")
        tick = int(self.lane_tick[lane])
        raw = np.array(self.buffers[:, lane, :], dtype=bool, copy=True)
        return EngineCheckpoint(
            network_name=self.network.name or "",
            model_digest=cached_model_digest(self),
            seed=int(self.seeds[lane]),
            tick=tick,
            v=np.array(self.v[lane], dtype=np.int64, copy=True),
            ring=canonical_ring(raw, tick),
            pending=copy_pending(self._inputs[lane]),
            counters=self.lane_counters(lane),
        )

    def restore_lane(self, lane: int, ckpt) -> None:
        """Load an EngineCheckpoint into one lane (serving readmission).

        The inverse of :meth:`snapshot_lane`: membrane, ring slice,
        lane tick, seed, staged inputs, and stat tallies are all
        overwritten, and the activity gate's lane state is rebuilt from
        the restored membranes.  Validates the checkpoint's network
        name + model digest first (TN602 on mismatch).
        """
        from repro.io.checkpoint import copy_pending, engine_ring

        require(0 <= lane < self.n_replicas, f"lane {lane} out of range")
        ckpt.validate_against(self.network)
        require(
            ckpt.v.size == self.compiled.n_neurons,
            f"checkpoint has {ckpt.v.size} neurons, "
            f"engine has {self.compiled.n_neurons}",
        )
        if self._san is not None:
            self._san.set_context(self.passes, "checkpoint")
            self._san.note(("batch", "v"), "W")
        tick = int(ckpt.tick)
        self.v[lane] = np.asarray(ckpt.v, dtype=np.int64)
        self.buffers[:, lane, :] = engine_ring(
            np.asarray(ckpt.ring, dtype=bool), tick
        )
        self.lane_tick[lane] = tick
        self.seeds[lane] = int(ckpt.seed)
        self._inputs[lane] = copy_pending(ckpt.pending)
        ec = ckpt.counters if ckpt.counters is not None else EventCounters()
        self._deliveries[lane] = ec.deliveries
        self._syn_events[lane] = ec.synaptic_events
        self._spikes[lane] = ec.spikes
        self._neuron_updates[lane] = ec.neuron_updates
        self._active_updates[lane] = ec.active_neuron_updates
        self._saturations[lane] = ec.membrane_saturations
        self._messages[lane] = ec.messages
        self._max_core_events[lane] = ec.max_core_events_per_tick
        self._events_per_core[lane] = 0
        per_core = np.asarray(ec.synaptic_events_per_core, dtype=np.int64)
        n = min(per_core.size, self._events_per_core.shape[1])
        self._events_per_core[lane, :n] = per_core[:n]
        if self._gate is not None:
            self._gate.reset_lane(lane, self.v[lane])

    def snapshot(self) -> list:
        """Whole-engine snapshot: one EngineCheckpoint per lane."""
        return [self.snapshot_lane(b) for b in range(self.n_replicas)]

    def restore(self, ckpts) -> None:
        """Restore every lane from a :meth:`snapshot` list."""
        require(
            len(ckpts) == self.n_replicas,
            f"got {len(ckpts)} lane checkpoints for {self.n_replicas} lanes",
        )
        for b, ckpt in enumerate(ckpts):
            self.restore_lane(b, ckpt)

    # -- tick path ---------------------------------------------------------
    def _advance(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Advance every lane one tick; return per-spike arrays.

        Returns ``(lanes, ticks, core_ids, neurons)`` — one entry per
        spike across the whole batch, with each spike stamped with its
        lane's *local* tick.
        """
        c = self.compiled
        B = self.n_replicas
        obs = active_observer(self.obs)
        san = self._san
        if san is not None:
            san.set_context(self.passes, "deliver")
        if obs is not None:
            t0 = now_ns()
        slots = self.lane_tick % params.DELAY_SLOTS  # (B,) — diverge after resets

        for b in range(B):
            staged = self._inputs[b].pop(int(self.lane_tick[b]), None)
            if staged is not None:
                self.buffers[slots[b], b, np.asarray(staged, dtype=np.int64)] = True

        active = self.buffers[slots, self._lanes]  # fancy index -> copy, (B, A)
        self.buffers[slots, self._lanes] = False
        self._deliveries += active.sum(axis=1)
        if obs is not None:
            t1 = now_ns()
            obs.phase("deliver", self.passes, t0, t1)

        syn = integrate_deliveries_batched(c, self.seeds, self.lane_tick, active)
        per_core = np.bincount(
            self._core_key,
            weights=(active * c.row_nnz).ravel(),
            minlength=B * c.n_cores,
        ).astype(np.int64).reshape(B, c.n_cores)
        self._events_per_core += per_core
        self._syn_events += per_core.sum(axis=1)
        if c.n_cores:
            np.maximum(
                self._max_core_events, per_core.max(axis=1),
                out=self._max_core_events,
            )
        if obs is not None:
            t2 = now_ns()
            obs.phase("integrate", self.passes, t1, t2)

        if san is not None:
            san.set_context(self.passes, "update")
            san.note(("batch", "v"), "R")
        self._neuron_updates += c.n_neurons
        if self._gate is not None:
            gate = self._gate
            # Union of every lane's touched neurons, from the union of
            # active axons: a superset per lane, harmless by idempotence.
            ua = np.nonzero(active.any(axis=0))[0]
            touched = c.det_col[csr_row_entries(c.det_indptr, ua)]
            if c.any_stoch_synapse:
                touched = np.concatenate(
                    [touched, c.stoch_col[csr_row_entries(c.stoch_indptr, ua)]]
                )
            act = gate.active_set(touched)
            sl = _GatedSlice(c, act)
            v_old = self.v[:, act]
            v_new, spiked_sub = update_neurons_batched(
                sl, self.seeds, self.lane_tick, v_old, syn[:, act]
            )
            self.v[:, act] = v_new
            gate.commit(sl, act, v_old, v_new)
            self._active_updates += act.size
            self._saturations += gate.n_saturated
            lane_f, pos = np.nonzero(spiked_sub)
            neuron_f = act[pos]
        else:
            self.v, spiked = update_neurons_batched(
                c, self.seeds, self.lane_tick, self.v, syn
            )
            self._active_updates += c.n_neurons
            self._saturations += (
                np.count_nonzero(self.v == params.MEMBRANE_MIN, axis=1)
                + np.count_nonzero(self.v == params.MEMBRANE_MAX, axis=1)
            )
            lane_f, neuron_f = np.nonzero(spiked)
        if san is not None:
            san.note(("batch", "v"), "W")
        if obs is not None:
            t3 = now_ns()
            obs.phase("update", self.passes, t2, t3)

        if san is not None:
            san.set_context(self.passes, "route")
            if (
                san.fault is not None
                and san.fault.kind == "out-of-phase-write"
                and self.passes == san.fault.tick
            ):
                # Deliberate protocol tear for detection tests: a
                # value-neutral membrane poke during the route phase.
                self.v[0, 0] = self.v[0, 0]
                san.note(("batch", "v"), "W")
        if lane_f.size:
            self._spikes += np.bincount(lane_f, minlength=B)
            emit_ticks = self.lane_tick[lane_f]
            core_ids = c.core_of_neuron[neuron_f]
            local = c.local_neuron[neuron_f]
            # Route: vectorized delivery into every lane's ring slice.
            routed = c.target_axon[neuron_f] >= 0
            rl = lane_f[routed]
            rn = neuron_f[routed]
            dst = c.target_axon[rn]
            when = (self.lane_tick[rl] + c.delay[rn]) % params.DELAY_SLOTS
            self.buffers[when, rl, dst] = True
            # Aggregated messages: unique cross-core (src, dst) pairs,
            # counted per lane via a flat (lane, src, dst) key.
            src_cores = c.core_of_neuron[rn]
            dst_cores = c.core_of_axon[dst]
            cross = src_cores != dst_cores
            if cross.any():
                pair_space = c.n_cores * c.n_cores
                key = (
                    rl[cross] * pair_space
                    + src_cores[cross] * c.n_cores
                    + dst_cores[cross]
                )
                if B * pair_space <= (1 << 22):
                    # Dense histogram beats the sort inside np.unique for
                    # realistic batch x core counts.
                    pair_counts = np.bincount(
                        key, minlength=B * pair_space
                    ).reshape(B, pair_space)
                    self._messages += np.count_nonzero(pair_counts, axis=1)
                else:
                    uniq = np.unique(key)
                    self._messages += np.bincount(
                        uniq // pair_space, minlength=B
                    )
        else:
            emit_ticks = core_ids = local = np.zeros(0, dtype=np.int64)

        self.lane_tick += 1
        self.passes += 1
        if obs is not None:
            t4 = now_ns()
            obs.phase("route", self.passes - 1, t3, t4)
            obs.trace.add(
                "batch_pass", t0, t4, attrs={"pass": self.passes - 1, "lanes": B}
            )
            obs.metrics.histogram("repro_tick_seconds").observe((t4 - t0) * 1e-9)  # repro-lint: allow=SL106
            obs.metrics.counter("repro_batch_passes_total").inc()
            obs.metrics.counter("repro_lane_ticks_total").inc(B)
            agg = self.aggregate_counters()
            obs.publish_counters(agg)
            obs.set_gauge(
                "repro_queue_depth", sum(len(t) for t in self._inputs)
            )
            if self._gate is not None:
                obs.set_gauge("repro_active_neurons", int(act.size))
                obs.set_gauge(
                    "repro_active_fraction",
                    act.size / c.n_neurons if c.n_neurons else 0.0,
                )
                obs.metrics.counter("repro_active_neuron_updates_total").set(
                    int(self._active_updates.sum())
                )
            if self._gate is not None and c.n_neurons:
                frac = act.size / c.n_neurons
            else:
                frac = 1.0
            # One flight row per vectorized pass (all lanes advance one
            # tick): tick = the pass index, spikes/messages aggregated
            # across lanes; occupancy arrives from the serving gauge.
            obs.flight_tick(
                self.passes - 1, t0, t4, int(lane_f.size), agg.messages,
                active_fraction=frac,
                deliver_ns=t1 - t0, integrate_ns=t2 - t1,
                update_ns=t3 - t2, route_ns=t4 - t3,
            )
        return lane_f, emit_ticks, core_ids, local

    def sanitize_check(self):
        """Analyze the recorded access log against the batched protocol.

        Returns the :class:`~repro.lint.diagnostics.LintReport` (also
        kept as ``sanitize_report``), or ``None`` when the engine runs
        without sanitize.  :meth:`run` calls this automatically; callers
        driving :meth:`step_arrays` directly call it when done.  The
        log keeps accumulating, so the report covers every pass so far.
        """
        if self._san is None:
            return None
        report = analyze_access_log(
            self._san.events, BATCHED_PROTOCOL, subject="sanitize:batched"
        )
        self.sanitize_report = report
        n_accesses = sum(
            ev.count for ev in self._san.events if ev.region is not None
        )
        obs = active_observer(self.obs)
        if obs is not None:
            obs.metrics.counter("repro_sanitize_accesses_total").inc(n_accesses)
            obs.metrics.counter("repro_sanitize_findings_total").inc(len(report))
            obs.metrics.counter("repro_sanitize_races_total").inc(
                sum(1 for d in report if d.code == "SL210")
            )
        return report

    # -- public API --------------------------------------------------------
    def step_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Advance every lane one tick; return per-spike arrays.

        ``(lanes, ticks, core_ids, neurons)``, one entry per spike
        across the batch; ``ticks`` are lane-local.  The demux-free hot
        path the serving runtime drives.
        """
        return self._advance()

    def step(self) -> list[tuple[int, int, int, int]]:
        """Advance one pass; return ``(lane, tick, core, neuron)`` tuples."""
        lanes, ticks, cores, neurons = self._advance()
        return [
            (int(b), int(t), int(cc), int(nn))
            for b, t, cc, nn in zip(lanes, ticks, cores, neurons)
        ]

    def run(self, n_ticks: int, inputs=None) -> list[SpikeRecord]:
        """Advance *n_ticks* passes; return one spike record per lane.

        *inputs* accepts the same forms as :meth:`load_inputs`.  Each
        lane's record carries its own lane counters, so element ``b``
        is bit-identical to the record of a standalone sparse run of
        lane ``b``'s (seed, inputs).
        """
        self.load_inputs(inputs)
        lanes_acc: list[np.ndarray] = []
        ticks_acc: list[np.ndarray] = []
        cores_acc: list[np.ndarray] = []
        neurons_acc: list[np.ndarray] = []
        for _ in range(n_ticks):
            lanes, ticks, cores, neurons = self._advance()
            if lanes.size:
                lanes_acc.append(lanes)
                ticks_acc.append(ticks)
                cores_acc.append(cores)
                neurons_acc.append(neurons)
        if lanes_acc:
            all_lanes = np.concatenate(lanes_acc)
            all_ticks = np.concatenate(ticks_acc)
            all_cores = np.concatenate(cores_acc)
            all_neurons = np.concatenate(neurons_acc)
        else:
            all_lanes = all_ticks = all_cores = all_neurons = np.zeros(
                0, dtype=np.int64
            )
        if self._san is not None:
            self.sanitize_check()
        records = []
        for b in range(self.n_replicas):
            mask = all_lanes == b
            records.append(
                SpikeRecord.from_arrays(
                    all_ticks[mask],
                    all_cores[mask],
                    all_neurons[mask],
                    self.lane_counters(b),
                )
            )
        return records


def run_batched_compass(
    network: Network | CompiledNetwork,
    n_ticks: int,
    n_replicas: int = 1,
    inputs=None,
    *,
    seeds=None,
    gated: bool | str = "auto",
) -> list[SpikeRecord]:
    """Convenience one-shot batched run: one record per replica lane."""
    sim = BatchedCompassSimulator(network, n_replicas, seeds=seeds, gated=gated)
    return sim.run(n_ticks, inputs)
