"""ParallelCompass: partitioned sparse execution over shared memory.

The multi-process expression of the kernel, rebuilt as a real speedup
rather than an architectural demo.  Compass's scalability came from
compressed per-partition state plus cheap bulk exchange (paper III-B,
Fig. 8); this module applies the same recipe with OS processes in place
of MPI ranks:

* :func:`repro.compass.compile.partition_compiled` slices the global
  CSR weight matrix, stochastic crosspoint tables, and flat
  neuron/routing vectors into per-rank
  :class:`~repro.compass.compile.CompiledPartition` artifacts (global
  PRNG coordinates preserved, so spike streams stay bit-identical to
  the whole-network engines);
* each worker advances its partition with the *same vectorized tick*
  as :class:`~repro.compass.fast.FastCompassSimulator`
  (:func:`~repro.compass.fast.integrate_deliveries` +
  :func:`~repro.compass.fast.update_neurons`) — no per-core Python
  loop anywhere;
* all bulk data moves through ``multiprocessing.shared_memory``: each
  rank owns a ``DELAY_SLOTS x n_axons`` delivery ring slab plus
  per-tick spike / outgoing / stats regions with small headers, and the
  pipes carry only the tick number in each direction (the barrier /
  control channel) — plus, between ticks, the snapshot/restore control
  tuples that ship each rank's process-local membrane vector for
  :meth:`ParallelCompassSimulator.snapshot`.

Wire format per rank (all shared, coordinator-created):

=========  =======================  =========================================
region     shape (int64 unless      written by / read by
           noted)
=========  =======================  =========================================
ring       bool (DELAY_SLOTS, A_r)  worker (local deliveries, slot consume);
                                    coordinator (external inputs and
                                    cross-rank deliveries, only at the
                                    tick barrier)
spikes     (1 + N_r,)               worker: header count + fired local
                                    neuron indices; coordinator reads
outbox     (1 + 3*N_r,)             worker: header count + (dst_rank,
                                    dst_local_axon, abs_tick) rows for
                                    remote deliveries; coordinator scatters
stats      (6 + C_r,)               worker: deliveries, synaptic events,
                                    spikes, neuron updates, saturations,
                                    active (computed) neuron updates, then
                                    per-owned-core synaptic events for
                                    this tick
=========  =======================  =========================================

Determinism: the counter-based PRNG makes every worker's draws a pure
function of (seed, core, tick, unit), so results are bit-identical to
every other expression regardless of process scheduling — verified by
the equivalence suites.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import traceback
from multiprocessing import shared_memory

import numpy as np

from repro.compass.compile import (
    CompiledNetwork,
    CompiledPartition,
    compile_network,
    partition_compiled,
)
from repro.compass.fast import (
    _EMPTY_IDX,
    ActivityGate,
    _GatedSlice,
    integrate_deliveries,
    integrate_deliveries_gated,
    update_neurons,
)
from repro.compass.partition import partition
from repro.core import params
from repro.core.counters import EventCounters
from repro.core.inputs import InputSchedule
from repro.core.network import Network
from repro.core.record import SpikeRecord
from repro.obs.flight import write_crash_dump
from repro.obs.log import get_logger
from repro.obs.observer import NULL_SPAN, Observer, active_observer
from repro.obs.trace import ID_PHASES, PHASE_IDS, PHASES, SpanStrip, now_ns
from repro.sanitize.analyze import analyze_access_log
from repro.sanitize.dynamic import AccessRecorder, sanitize_enabled, shadow_view
from repro.sanitize.faults import apply_overlap_relabel, resolve_fault
from repro.sanitize.protocol import PARALLEL_PROTOCOL
from repro.utils.validation import require

_STOP = -1  # control-channel stop sentinel (any tick is >= 0)
_ERR = "__error__"  # worker -> coordinator: (tag, rank, traceback text)
_SAN = "__sanitize__"  # worker -> coordinator: (tag, access events) at stop
_SNAP = "__snapshot__"  # coordinator <-> worker: (tag,) / (tag, local v)
_RESTORE = "__restore__"  # coordinator <-> worker: (tag, local v) / (tag, True)

log = get_logger("repro.compass.parallel")


class WorkerFailedError(RuntimeError):
    """A worker rank raised or died mid-run.

    Raised by the coordinator in place of the historical hang on the
    tick barrier; by the time it propagates the pool is closed and
    every shared segment unlinked.  Carries the failing *rank* and the
    worker's traceback text when one arrived over the control pipe.
    """

    def __init__(self, rank: int, detail: str) -> None:
        self.rank = rank
        super().__init__(f"parallel worker rank {rank} failed: {detail}")

# stats region layout
_ST_DELIVERIES = 0
_ST_SYN_EVENTS = 1
_ST_SPIKES = 2
_ST_NEURON_UPDATES = 3
_ST_SATURATIONS = 4
_ST_ACTIVE_UPDATES = 5
_ST_N = 6

#: Span records each worker's shared-memory trace strip retains (ring
#: overwrite beyond this).  Five spans per tick -> ~3k traced ticks.
TRACE_STRIP_RECORDS = 16384

#: ``engine="auto"`` routes to the parallel engine only at or above this
#: many neurons.  Benchmarked in ``benchmarks/bench_parallel_scaling.py``:
#: below ~8k neurons the per-tick barrier (two pipe messages per worker,
#: ~100 us) outweighs the partitioned matvec win, and small-network
#: latency would regress; above it the sparse tick dominates and splits
#: near-linearly.
AUTO_MIN_NEURONS = 8192

#: Cap on ``n_workers="auto"`` — beyond this the per-rank slices of
#: typical workloads are too thin to amortize the barrier.
AUTO_MAX_WORKERS = 8


def _usable_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def auto_workers(network: Network | CompiledNetwork) -> int:
    """Worker count the ``"auto"`` engine policy would use for *network*.

    Returns 1 (meaning: run single-process, the sparse fast path) when
    the host has no spare cores or the network is below the benchmarked
    :data:`AUTO_MIN_NEURONS` threshold; otherwise one worker per usable
    CPU, capped by :data:`AUTO_MAX_WORKERS` and the core count.
    """
    compiled = compile_network(network)
    cpus = _usable_cpus()
    if cpus < 2 or compiled.n_neurons < AUTO_MIN_NEURONS:
        return 1
    return max(2, min(AUTO_MAX_WORKERS, cpus, compiled.n_cores))


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach a worker to a coordinator-created segment.

    Workers and coordinator share one resource-tracker process (its fd
    is inherited through ``Process`` creation), so the worker's attach
    registration is an idempotent set-add there and the coordinator's
    ``unlink`` at :meth:`ParallelCompassSimulator.close` settles the
    books — no extra register/unregister gymnastics needed.
    """
    return shared_memory.SharedMemory(name=name)


def _worker_main(
    conn, part: CompiledPartition, shm_names: dict, seed: int,
    gated: bool = False, sanitize: bool = False,
) -> None:
    """Worker process: advance one compiled partition on command.

    Protocol per tick: receive the tick number on the control pipe, run
    the vectorized tick phases on the shared regions, reply with the
    same tick number once every region for that tick is complete.  If
    any phase raises, the worker ships ``(_ERR, rank, traceback)`` back
    instead of a reply and exits, so the coordinator fails fast and
    unlinks the segments rather than hanging on the barrier.

    With *gated* the worker runs the activity-gated update over its own
    partition (a per-rank :class:`~repro.compass.fast.ActivityGate`):
    the partition keeps global PRNG coordinates, so per-rank gating is
    bit-identical to the dense whole-network path.

    With *sanitize* the shared views are wrapped in recording shadow
    views (:mod:`repro.sanitize.dynamic`); barrier pipe messages are
    logged as ordering markers and the full access log is shipped back
    as ``(_SAN, events)`` when the stop sentinel arrives.

    When the coordinator created an ``obs`` trace strip for this rank
    (see :class:`repro.obs.trace.SpanStrip`), the worker records its
    per-tick phase spans into it; the coordinator merges all strips
    into the rank-0 trace at shutdown.  Clock reads go through
    :func:`repro.obs.trace.now_ns`, keeping this tick path SL104-clean.
    """
    ring_shm = _attach(shm_names["ring"])
    spike_shm = _attach(shm_names["spikes"])
    out_shm = _attach(shm_names["outbox"])
    stats_shm = _attach(shm_names["stats"])
    obs_shm = _attach(shm_names["obs"]) if "obs" in shm_names else None

    ring = np.ndarray(
        (params.DELAY_SLOTS, part.n_axons), dtype=bool, buffer=ring_shm.buf
    )
    spike_buf = np.ndarray(1 + part.n_neurons, dtype=np.int64, buffer=spike_shm.buf)
    out_buf = np.ndarray(1 + 3 * part.n_neurons, dtype=np.int64, buffer=out_shm.buf)
    stats = np.ndarray(_ST_N + part.n_cores, dtype=np.int64, buffer=stats_shm.buf)
    strip = (
        SpanStrip(obs_shm.buf, TRACE_STRIP_RECORDS) if obs_shm is not None else None
    )
    rec = AccessRecorder(f"rank{part.rank}") if sanitize else None
    if rec is not None:
        owner = f"rank{part.rank}"
        ring = shadow_view(ring, (owner, "ring"), rec)
        spike_buf = shadow_view(spike_buf, (owner, "spikes"), rec)
        out_buf = shadow_view(out_buf, (owner, "outbox"), rec)
        stats = shadow_view(stats, (owner, "stats"), rec)

    v = part.initial_v.copy()
    gate = ActivityGate(part, v) if gated else None
    try:
        while True:
            tick = conn.recv()
            if tick == _STOP:
                if rec is not None:
                    conn.send((_SAN, rec.events))
                if strip is not None:
                    strip.release()
                conn.close()
                return
            if isinstance(tick, tuple):
                # Checkpoint control messages, handled between ticks
                # (the worker is parked here whenever the coordinator
                # holds the barrier).  The membrane vector is the only
                # process-local state, so it travels over the control
                # pipe; everything else lives in the shared regions the
                # coordinator can already see.
                if tick[0] == _SNAP:
                    conn.send((_SNAP, np.asarray(v, dtype=np.int64).copy()))
                elif tick[0] == _RESTORE:
                    v = np.asarray(tick[1], dtype=np.int64).copy()
                    if gated:
                        gate = ActivityGate(part, v)
                    conn.send((_RESTORE, True))
                continue

            if rec is not None:
                rec.barrier("recv", "coord", tick)
                rec.set_context(tick, "deliver")
            if strip is not None:
                t0 = now_ns()
            slot = tick % params.DELAY_SLOTS
            row = ring[slot]
            active_idx = np.nonzero(row)[0]
            if strip is not None:
                t1 = now_ns()
                strip.record(PHASE_IDS["deliver"], tick, t0, t1)
            touched = _EMPTY_IDX
            if active_idx.size:
                if gate is not None:
                    row[:] = False
                    syn, touched = integrate_deliveries_gated(
                        part, seed, tick, active_idx
                    )
                else:
                    active = row.copy()
                    row[:] = False
                    syn = integrate_deliveries(part, seed, tick, active, active_idx)
            else:
                syn = np.zeros(part.n_neurons, dtype=np.int64)
            if strip is not None:
                t2 = now_ns()
                strip.record(PHASE_IDS["integrate"], tick, t1, t2)

            if rec is not None:
                rec.set_context(tick, "update")
            if gate is not None:
                act = gate.active_set(touched)
                sl = _GatedSlice(part, act)
                v_old = v[act]
                v_new, spiked_sub = update_neurons(sl, seed, tick, v_old, syn[act])
                v[act] = v_new
                gate.commit(sl, act, v_old, v_new)
                fired = act[spiked_sub]
                n_active = int(act.size)
                n_saturated = gate.n_saturated
            else:
                v, spiked = update_neurons(part, seed, tick, v, syn)
                fired = np.nonzero(spiked)[0]
                n_active = part.n_neurons
                n_saturated = int(
                    np.count_nonzero(v == params.MEMBRANE_MIN)
                    + np.count_nonzero(v == params.MEMBRANE_MAX)
                )
            if strip is not None:
                t3 = now_ns()
                strip.record(PHASE_IDS["update"], tick, t2, t3)

            if rec is not None:
                rec.set_context(tick, "route")
            spike_buf[1 : 1 + fired.size] = fired
            spike_buf[0] = fired.size

            n_remote = 0
            if fired.size:
                # Network phase: local targets go straight into our own
                # ring slab; remote targets queue in the outbox for the
                # barrier.
                t_rank = part.target_rank[fired]
                routed = t_rank >= 0
                rf = fired[routed]
                t_rank = t_rank[routed]
                t_axon = part.target_local_axon[rf]
                when = tick + part.delay[rf]
                own = t_rank == part.rank
                ring[when[own] % params.DELAY_SLOTS, t_axon[own]] = True
                rem = ~own
                n_remote = int(rem.sum())
                if n_remote:
                    out_buf[1 : 1 + 3 * n_remote] = np.column_stack(
                        [t_rank[rem], t_axon[rem], when[rem]]
                    ).ravel()
            out_buf[0] = n_remote

            events = part.row_nnz[active_idx]
            stats[_ST_DELIVERIES] = active_idx.size
            stats[_ST_SYN_EVENTS] = events.sum()
            stats[_ST_SPIKES] = fired.size
            stats[_ST_NEURON_UPDATES] = part.n_neurons
            stats[_ST_SATURATIONS] = n_saturated
            stats[_ST_ACTIVE_UPDATES] = n_active
            # Exact int64 accumulation (np.bincount with weights= reduces
            # in float64, which silently loses precision past 2**53
            # events).
            per_core = stats[_ST_N:]
            per_core[:] = 0
            np.add.at(per_core, part.core_slot_of_axon[active_idx], events)

            if strip is not None:
                t4 = now_ns()
                strip.record(PHASE_IDS["route"], tick, t3, t4)
                strip.record(PHASE_IDS["tick"], tick, t0, t4)
            if rec is not None:
                rec.barrier("send", "coord", tick)
            conn.send(tick)
    except Exception:
        try:
            conn.send((_ERR, part.rank, traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        conn.close()


class ParallelCompassSimulator:
    """Coordinator for a pool of partitioned sparse worker processes.

    Accepts a :class:`~repro.core.network.Network` or a pre-built
    :class:`~repro.compass.compile.CompiledNetwork` (shared, not
    rebuilt).  The network is compiled and partitioned immediately;
    workers and shared-memory segments are spawned lazily on first
    :meth:`step`/:meth:`run`, and :meth:`run` may be called repeatedly
    on the same object — each call re-spawns workers from the kept
    partitioned artifact and performs an independent, fresh simulation.

    ``n_workers="auto"`` picks :func:`auto_workers`'s recommendation.
    ``gated`` selects the activity-gated update on every worker
    (``"auto"`` engages it when the network has any passive-stable
    neuron; bit-identical either way).
    """

    #: This engine records its own flight-recorder rows per tick, so
    #: wrappers (the streaming runtime) must not record duplicates.
    _records_flight = True

    def __init__(
        self,
        network: Network | CompiledNetwork,
        n_workers: int | str = 2,
        partition_strategy: str = "load_balanced",
        obs: Observer | None = None,
        gated: bool | str = "auto",
        sanitize: bool | None = None,
        sanitize_fault=None,
        checkpoint_every: int | None = None,
    ) -> None:
        self.obs = obs
        self.checkpoint_every = checkpoint_every
        #: Most recent periodic :meth:`snapshot` (``checkpoint_every``);
        #: attached to the crash-dump bundle when a worker dies.
        self.last_checkpoint = None
        self.sanitize = sanitize_enabled(sanitize)
        self.sanitize_fault = resolve_fault(sanitize_fault)
        self.sanitize_report = None
        self._san = None
        with (obs.span("compile") if obs is not None else NULL_SPAN):
            compiled = compile_network(network)
        self.compiled = compiled
        self.network = compiled.network
        self.gated = (
            compiled.gating_worthwhile if gated == "auto" else bool(gated)
        )
        if n_workers == "auto":
            n_workers = auto_workers(compiled)
        require(
            isinstance(n_workers, int) and n_workers >= 1,
            "n_workers must be a positive integer or 'auto'",
        )
        self.n_workers = n_workers
        self.partition_strategy = partition_strategy
        with (obs.span("partition", ranks=n_workers)
              if obs is not None else NULL_SPAN):
            self.partitioned = partition_compiled(
                compiled,
                partition(self.network, n_workers, partition_strategy),
                n_workers,
            )
        self.rank_of_core = self.partitioned.rank_of_core

        self.tick = 0
        self.counters = EventCounters()
        self.counters.ensure_cores(compiled.n_cores)
        # External events held until their tick: tick -> [(rank, local_axon)].
        self._future_inputs: dict[int, list[tuple[int, int]]] = {}

        self._procs: list = []
        self._conns: list = []
        self._shms: list[dict] = []
        self._rings: list[np.ndarray] = []
        self._spike_bufs: list[np.ndarray] = []
        self._out_bufs: list[np.ndarray] = []
        self._stats: list[np.ndarray] = []
        self._strips: list[SpanStrip] = []
        self._awaiting = [False] * n_workers
        self._spawned = False
        self._closed = False

    @property
    def phase_seconds(self) -> dict:
        """Accumulated per-phase seconds summed over every worker rank.

        Same phase names as the other engines; populated once worker
        trace strips have been merged (at :meth:`close`, which
        :meth:`run` performs).  All zero without an observer.
        """
        if self.obs is None:
            zeros = {name: 0.0 for name in PHASES}
            zeros["synapse_neuron"] = zeros["network"] = 0.0
            return zeros
        return self.obs.phase_seconds()

    # -- worker pool lifecycle ---------------------------------------------
    def _spawn(self) -> None:
        """Create shared segments and start one worker per partition."""
        ctx = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else mp.get_context()
        )
        self.tick = 0
        self.counters = EventCounters()
        self.counters.ensure_cores(self.compiled.n_cores)
        self._awaiting = [False] * self.n_workers
        self._procs, self._conns, self._shms = [], [], []
        self._rings, self._spike_bufs, self._out_bufs, self._stats = [], [], [], []
        self._strips = []
        self.sanitize_report = None
        self._san = (
            AccessRecorder("coord", fault=self.sanitize_fault)
            if self.sanitize else None
        )
        if self._san is not None:
            self._san.set_context(-1, "init")
        obs = active_observer(self.obs)
        spawn_span = (obs.span("spawn", workers=self.n_workers)
                      if obs is not None else NULL_SPAN)
        spawn_span.__enter__()

        for part in self.partitioned.partitions:
            sizes = {
                "ring": params.DELAY_SLOTS * part.n_axons,
                "spikes": 8 * (1 + part.n_neurons),
                "outbox": 8 * (1 + 3 * part.n_neurons),
                "stats": 8 * (_ST_N + part.n_cores),
            }
            if obs is not None:
                # Per-rank trace strip: workers write span records here,
                # rank 0 merges them into the trace at close().
                sizes["obs"] = SpanStrip.nbytes(TRACE_STRIP_RECORDS)
            shms = {
                key: shared_memory.SharedMemory(create=True, size=max(1, nbytes))
                for key, nbytes in sizes.items()
            }
            if obs is not None:
                self._strips.append(
                    SpanStrip(shms["obs"].buf, TRACE_STRIP_RECORDS, reset=True)
                )
            ring = np.ndarray(
                (params.DELAY_SLOTS, part.n_axons), dtype=bool,
                buffer=shms["ring"].buf,
            )
            spike_buf = np.ndarray(
                1 + part.n_neurons, dtype=np.int64, buffer=shms["spikes"].buf
            )
            out_buf = np.ndarray(
                1 + 3 * part.n_neurons, dtype=np.int64, buffer=shms["outbox"].buf
            )
            stats = np.ndarray(
                _ST_N + part.n_cores, dtype=np.int64, buffer=shms["stats"].buf
            )
            if self._san is not None:
                owner = f"rank{part.rank}"
                ring = shadow_view(ring, (owner, "ring"), self._san)
                spike_buf = shadow_view(spike_buf, (owner, "spikes"), self._san)
                out_buf = shadow_view(out_buf, (owner, "outbox"), self._san)
                stats = shadow_view(stats, (owner, "stats"), self._san)
            ring[:] = False
            spike_buf[0] = out_buf[0] = 0
            stats[:] = 0

            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child,
                    part,
                    {key: shm.name for key, shm in shms.items()},
                    self.network.seed,
                    self.gated,
                    self.sanitize,
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)
            self._shms.append(shms)
            self._rings.append(ring)
            self._spike_bufs.append(spike_buf)
            self._out_bufs.append(out_buf)
            self._stats.append(stats)

        spawn_span.__exit__(None, None, None)
        self._spawned = True
        self._closed = False

    # -- input handling ----------------------------------------------------
    def load_inputs(self, inputs: InputSchedule | None) -> None:
        """Hold external events until their delivery tick arrives."""
        if inputs is None:
            return
        axon_base = self.compiled.axon_base
        local_of = self.partitioned.local_axon_of_global
        for tick, core, axon in inputs:
            ga = int(axon_base[core]) + axon
            self._future_inputs.setdefault(tick, []).append(
                (int(self.rank_of_core[core]), int(local_of[ga]))
            )

    # -- one tick ----------------------------------------------------------
    def step_arrays(self) -> tuple[int, np.ndarray, np.ndarray]:
        """Advance one tick; return ``(tick, core_ids, neurons)`` arrays.

        Scatter (external inputs into the shared ring slabs), compute
        (workers, in parallel), gather (spikes + stats + cross-rank
        deliveries redistributed at the barrier).
        """
        if self._closed:
            raise RuntimeError(
                "ParallelCompassSimulator is closed; call run() — which "
                "re-spawns workers for a fresh simulation — or construct "
                "a new simulator to continue stepping"
            )
        if not self._spawned:
            self._spawn()

        obs = active_observer(self.obs)
        if obs is not None:
            tick_begin = now_ns()
        san = self._san
        if san is not None:
            san.set_context(self.tick, "scatter")
        slot = self.tick % params.DELAY_SLOTS
        for rank, local_axon in self._future_inputs.pop(self.tick, ()):
            self._rings[rank][slot, local_axon] = True
        if (
            san is not None
            and san.fault is not None
            and san.fault.kind == "out-of-phase-write"
            and self.tick == san.fault.tick
        ):
            # Deliberate protocol tear for detection tests: a stats slot
            # poked during scatter.  Value-neutral — the worker rewrites
            # every stats slot before the gather reads it.
            self._stats[0][_ST_DELIVERIES] = -1  # repro-lint: allow=SL201

        for rank, conn in enumerate(self._conns):
            if san is not None:
                san.barrier("send", f"rank{rank}", self.tick)
            try:
                conn.send(self.tick)
            except (BrokenPipeError, OSError):
                self._worker_failed(rank, "control pipe closed unexpectedly")
            self._awaiting[rank] = True
        for rank in range(self.n_workers):
            self._barrier_recv(rank)
        if san is not None:
            san.set_context(self.tick, "gather")

        cores_acc: list[np.ndarray] = []
        neurons_acc: list[np.ndarray] = []
        c = self.counters
        active_this_tick = 0
        for rank, part in enumerate(self.partitioned.partitions):
            stats = self._stats[rank]
            c.deliveries += int(stats[_ST_DELIVERIES])
            c.synaptic_events += int(stats[_ST_SYN_EVENTS])
            c.spikes += int(stats[_ST_SPIKES])
            c.neuron_updates += int(stats[_ST_NEURON_UPDATES])
            c.membrane_saturations += int(stats[_ST_SATURATIONS])
            active_this_tick += int(stats[_ST_ACTIVE_UPDATES])
            per_core = stats[_ST_N:]
            if per_core.size:
                c.synaptic_events_per_core[part.core_ids] += per_core
                busiest = int(per_core.max())
                if busiest > c.max_core_events_per_tick:
                    c.max_core_events_per_tick = busiest

            n_spikes = int(self._spike_bufs[rank][0])
            if n_spikes:
                fired = self._spike_bufs[rank][1 : 1 + n_spikes]
                cores_acc.append(part.core_of_neuron[fired])
                neurons_acc.append(part.local_neuron[fired])

            n_out = int(self._out_bufs[rank][0])
            if n_out:
                rows = self._out_bufs[rank][1 : 1 + 3 * n_out].reshape(n_out, 3)
                dst_ranks = rows[:, 0]
                unique_dsts = np.unique(dst_ranks)
                # One aggregated message per non-empty cross-rank pair
                # (outboxes hold remote targets only), matching the
                # Compass/SimMPI accounting.
                c.messages += int(unique_dsts.size)
                for dst in unique_dsts.tolist():
                    hit = rows[dst_ranks == dst]
                    self._rings[dst][
                        hit[:, 2] % params.DELAY_SLOTS, hit[:, 1]
                    ] = True

        if cores_acc:
            core_ids = np.concatenate(cores_acc)
            neurons = np.concatenate(neurons_acc)
            order = np.lexsort((neurons, core_ids))
            core_ids, neurons = core_ids[order], neurons[order]
        else:
            core_ids = neurons = np.zeros(0, dtype=np.int64)

        c.active_neuron_updates += active_this_tick
        emitted_tick = self.tick
        self.tick += 1
        c.ticks = self.tick
        if self.checkpoint_every and self.tick % self.checkpoint_every == 0:
            with (obs.span("checkpoint", tick=self.tick)
                  if obs is not None else NULL_SPAN):
                self.last_checkpoint = self.snapshot()
            if obs is not None:
                obs.metrics.counter("repro_checkpoints_total").inc()
        if obs is not None:
            # The coordinator's own row: one span over the whole tick
            # (scatter + worker barrier + gather); workers' phase spans
            # arrive from their strips at close().
            obs.trace.add("tick", tick_begin, now_ns(),
                          tid=0, attrs={"tick": emitted_tick})
            obs.publish_counters(c)
            obs.set_gauge("repro_queue_depth", len(self._future_inputs))
            if self.gated:
                n = self.compiled.n_neurons
                obs.set_gauge("repro_active_neurons", active_this_tick)
                obs.set_gauge(
                    "repro_active_fraction",
                    active_this_tick / n if n else 0.0,
                )
                obs.metrics.counter("repro_active_neuron_updates_total").set(
                    c.active_neuron_updates
                )
            n = self.compiled.n_neurons
            if self.gated and n:
                frac = active_this_tick / n
            else:
                frac = 1.0
            # Coordinator granularity: whole-tick wall time only (the
            # per-phase split lives in the workers' span strips).
            obs.flight_tick(
                emitted_tick, tick_begin, now_ns(), int(core_ids.size),
                c.messages, active_fraction=frac,
            )
        return emitted_tick, core_ids, neurons

    def _barrier_recv(self, rank: int) -> None:
        """Wait for *rank*'s tick reply, failing fast on a dead worker.

        The historical behaviour was a bare ``conn.recv()`` — a worker
        that raised or was killed left the coordinator blocked forever
        on the barrier with the shared segments leaked.  Poll instead,
        watching process liveness, and convert either an ``_ERR``
        message or a silent death into :class:`WorkerFailedError`
        (raised from :meth:`_worker_failed` after a full cleanup).
        """
        conn = self._conns[rank]
        proc = self._procs[rank]
        while True:
            try:
                if conn.poll(0.1):
                    msg = conn.recv()
                    break
            except (EOFError, OSError):
                self._worker_failed(rank, "control pipe closed unexpectedly")
            if not proc.is_alive():
                self._worker_failed(
                    rank,
                    f"worker process died without a reply "
                    f"(exitcode {proc.exitcode})",
                )
        self._awaiting[rank] = False
        if isinstance(msg, tuple) and msg and msg[0] == _ERR:
            self._worker_failed(rank, str(msg[2]))
        if self._san is not None:
            self._san.barrier("recv", f"rank{rank}", msg)

    def _worker_failed(self, rank: int, detail: str) -> None:
        """Tear down the pool and surface a worker death as an error.

        After the cleanup (workers reaped, shared segments unlinked) a
        postmortem bundle — flight ring, metric snapshot, recent spans,
        sanitize report if armed — is written to ``$REPRO_CRASH_DIR``
        so the telemetry survives the dead pool.
        """
        self._awaiting[rank] = False
        summary = detail.strip().splitlines()[-1] if detail.strip() else detail
        log.error(
            "parallel.worker_failed", rank=rank, tick=self.tick, error=summary
        )
        self.close()
        err = WorkerFailedError(rank, detail)
        write_crash_dump(
            self.obs, f"worker_failed rank={rank}", detail=detail, exc=err,
            sanitize_report=self.sanitize_report,
            checkpoint=self.last_checkpoint,
        )
        raise err

    def step(self) -> list[tuple[int, int, int]]:
        """Advance one tick; return spikes as (tick, core, neuron) tuples."""
        tick, core_ids, neurons = self.step_arrays()
        return [(tick, int(cc), int(nn)) for cc, nn in zip(core_ids, neurons)]

    # -- checkpointing -----------------------------------------------------
    def _control(self, rank: int, payload):
        """One control-pipe round trip with *rank*, failing fast on death."""
        conn = self._conns[rank]
        proc = self._procs[rank]
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            self._worker_failed(rank, "control pipe closed unexpectedly")
        while True:
            try:
                if conn.poll(0.1):
                    msg = conn.recv()
                    break
            except (EOFError, OSError):
                self._worker_failed(rank, "control pipe closed unexpectedly")
            if not proc.is_alive():
                self._worker_failed(
                    rank,
                    f"worker process died without a reply "
                    f"(exitcode {proc.exitcode})",
                )
        if isinstance(msg, tuple) and msg and msg[0] == _ERR:
            self._worker_failed(rank, str(msg[2]))
        return msg

    def snapshot(self):
        """Gather every rank's state into one global EngineCheckpoint.

        Runs at the inter-tick barrier (every worker parked in
        ``conn.recv``): membrane vectors arrive over the control pipes,
        ring slabs are read directly from shared memory, and both are
        assembled into global coordinates, so the checkpoint restores
        onto *any* engine — the fast path, a batched lane, or another
        parallel pool with a different worker count.
        """
        from repro.io.checkpoint import (
            EngineCheckpoint, cached_model_digest, canonical_ring,
        )

        if self._closed:
            raise RuntimeError(
                "ParallelCompassSimulator is closed; snapshot() needs a "
                "live worker pool"
            )
        if not self._spawned:
            self._spawn()
        c = self.compiled
        san = self._san
        if san is not None:
            san.set_context(self.tick, "snapshot")
        v_global = np.zeros(c.n_neurons, dtype=np.int64)
        ring_global = np.zeros((params.DELAY_SLOTS, c.n_axons), dtype=bool)
        for rank, part in enumerate(self.partitioned.partitions):
            msg = self._control(rank, (_SNAP,))
            v_global[part.neuron_global] = np.asarray(msg[1], dtype=np.int64)
            ring_global[:, part.axon_global] = self._rings[rank][:, :]
        pending: dict[int, np.ndarray] = {}
        for t, events in self._future_inputs.items():
            pending[int(t)] = np.asarray(
                [
                    int(self.partitioned.partitions[rank].axon_global[local])
                    for rank, local in events
                ],
                dtype=np.int64,
            )
        return EngineCheckpoint(
            network_name=self.network.name or "",
            model_digest=cached_model_digest(self),
            seed=int(self.network.seed),
            tick=int(self.tick),
            v=v_global,
            ring=canonical_ring(ring_global, self.tick),
            pending=pending,
            counters=self.counters.copy(),
        )

    def restore(self, ckpt) -> None:
        """Load a global EngineCheckpoint into the worker pool.

        The inverse of :meth:`snapshot`, valid for a checkpoint taken
        on any engine: each rank receives its membrane slice over the
        control pipe (rebuilding its activity gate), ring slabs are
        rewritten in place, and the pending-input staging is re-split
        by owning rank.  Validates name + model digest first (TN602).
        """
        from repro.io.checkpoint import engine_ring

        ckpt.validate_against(self.network)
        require(
            int(ckpt.seed) == int(self.network.seed),
            f"checkpoint seed {ckpt.seed} does not match network seed "
            f"{self.network.seed} (a derived-seed batch-lane checkpoint "
            "cannot resume as a standalone run)",
        )
        require(
            ckpt.v.size == self.compiled.n_neurons,
            f"checkpoint has {ckpt.v.size} neurons, "
            f"network has {self.compiled.n_neurons}",
        )
        if self._closed or not self._spawned:
            self._spawn()
        san = self._san
        if san is not None:
            san.set_context(int(ckpt.tick), "restore")
        self.tick = int(ckpt.tick)
        raw = engine_ring(np.asarray(ckpt.ring, dtype=bool), self.tick)
        v_global = np.asarray(ckpt.v, dtype=np.int64)
        for rank, part in enumerate(self.partitioned.partitions):
            self._rings[rank][:, :] = raw[:, part.axon_global]
            self._control(rank, (_RESTORE, v_global[part.neuron_global].copy()))
        self._future_inputs = {}
        rank_of = self.partitioned.rank_of_axon
        local_of = self.partitioned.local_axon_of_global
        for t, axons in ckpt.pending.items():
            self._future_inputs[int(t)] = [
                (int(rank_of[ga]), int(local_of[ga]))
                for ga in np.asarray(axons, dtype=np.int64)
            ]
        self.counters = ckpt.counters.copy()
        self.counters.ensure_cores(self.compiled.n_cores)

    def run(self, n_ticks: int, inputs: InputSchedule | None = None) -> SpikeRecord:
        """Run *n_ticks*, shut the workers down, and return the record.

        May be called again on the same object: on a fresh or
        previously closed simulator, workers (re-)spawn from the kept
        partitioned artifact and the run starts at tick 0 with fresh
        state (pass that run's inputs here); on a live, partially
        stepped simulator it continues from the current tick.
        """
        if self._closed or not self._spawned:
            self._spawn()
        self.load_inputs(inputs)
        ticks_acc: list[np.ndarray] = []
        cores_acc: list[np.ndarray] = []
        neurons_acc: list[np.ndarray] = []
        try:
            for _ in range(n_ticks):
                tick, core_ids, neurons = self.step_arrays()
                if core_ids.size:
                    ticks_acc.append(np.full(core_ids.size, tick, dtype=np.int64))
                    cores_acc.append(core_ids)
                    neurons_acc.append(neurons)
        finally:
            self.close()
        if ticks_acc:
            return SpikeRecord.from_arrays(
                np.concatenate(ticks_acc),
                np.concatenate(cores_acc),
                np.concatenate(neurons_acc),
                self.counters,
            )
        return SpikeRecord.from_arrays(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            self.counters,
        )

    def close(self) -> None:
        """Terminate the worker pool and release the shared segments.

        If a previous :meth:`step_arrays` raised mid-protocol a worker
        may still owe a reply; drain it first so shutdown cannot
        deadlock, then stop the workers and unlink every segment.
        Idempotent; :meth:`run` re-spawns after a close.
        """
        if self._closed:
            return
        self._closed = True
        if not self._spawned:
            return
        for rank, conn in enumerate(self._conns):
            if self._awaiting[rank]:
                try:
                    if conn.poll(1.0):
                        conn.recv()
                except (EOFError, OSError):
                    pass
                self._awaiting[rank] = False
        for conn in self._conns:
            try:
                conn.send(_STOP)
            except (BrokenPipeError, OSError):
                pass
        worker_logs = self._collect_worker_logs() if self._san is not None else []
        for conn in self._conns:
            try:
                conn.close()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
        self._merge_worker_spans()
        if self._san is not None:
            self._finish_sanitize(worker_logs)
        # Drop our views before closing the segments (numpy arrays hold
        # exported buffers), then unlink — the coordinator owns them.
        self._rings, self._spike_bufs, self._out_bufs, self._stats = [], [], [], []
        for shms in self._shms:
            for shm in shms.values():
                try:
                    shm.close()
                except BufferError:  # pragma: no cover - lingering view
                    pass
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        self._shms = []
        self._spawned = False

    def _collect_worker_logs(self) -> list:
        """Receive each worker's ``(_SAN, events)`` reply to the stop."""
        logs = []
        for conn in self._conns:
            try:
                if conn.poll(5.0):
                    msg = conn.recv()
                    if isinstance(msg, tuple) and msg and msg[0] == _SAN:
                        logs.append(msg[1])
            except (EOFError, OSError):
                pass
        return logs

    def _finish_sanitize(self, worker_logs: list) -> None:
        """Merge access logs, run the analyzer, publish the report.

        Skipped (with a structured warning) when any worker's log is
        missing — a dead worker already surfaced as
        :class:`WorkerFailedError`, and analyzing a partial log would
        only bury that signal under SL212 noise.
        """
        san, self._san = self._san, None
        if len(worker_logs) != self.n_workers:
            log.warning(
                "parallel.sanitize_incomplete",
                got=len(worker_logs), expected=self.n_workers,
            )
            return
        events = list(san.events)
        for events_r in worker_logs:
            events.extend(events_r)
        apply_overlap_relabel(events, san.fault)
        report = analyze_access_log(
            events, PARALLEL_PROTOCOL, subject="sanitize:parallel"
        )
        self.sanitize_report = report
        n_accesses = sum(ev.count for ev in events if ev.region is not None)
        obs = active_observer(self.obs)
        if obs is not None:
            obs.metrics.counter("repro_sanitize_accesses_total").inc(n_accesses)
            obs.metrics.counter("repro_sanitize_findings_total").inc(len(report))
            obs.metrics.counter("repro_sanitize_races_total").inc(
                sum(1 for d in report if d.code == "SL210")
            )
        if len(report):
            log.error(
                "parallel.sanitize_findings", findings=len(report),
                codes=",".join(sorted({d.code for d in report})),
            )
        else:
            log.info("parallel.sanitize_clean", accesses=n_accesses)

    def _merge_worker_spans(self) -> None:
        """Drain every rank's trace strip into the rank-0 observer.

        Workers appear as timeline rows ``tid = rank + 1`` (tid 0 is
        the coordinator); per-phase seconds accumulate into the shared
        ``repro_phase_seconds_total`` metric, summed across ranks —
        the engine-wide profile.  Strip views are released so the
        segments can close cleanly.
        """
        obs = active_observer(self.obs)
        if obs is None or not self._strips:
            for strip in self._strips:
                strip.release()
            self._strips = []
            return
        for rank, strip in enumerate(self._strips):
            for phase_id, tick, begin_ns, end_ns in strip.records():
                name = ID_PHASES.get(phase_id, f"phase{phase_id}")
                if name == "tick":
                    obs.trace.add(name, begin_ns, end_ns,
                                  tid=rank + 1, attrs={"tick": tick})
                else:
                    obs.phase(name, tick, begin_ns, end_ns, tid=rank + 1)
            strip.release()
        self._strips = []

    def __del__(self):  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass


def run_parallel_compass(
    network: Network | CompiledNetwork,
    n_ticks: int,
    inputs: InputSchedule | None = None,
    n_workers: int | str = 2,
    partition_strategy: str = "load_balanced",
    obs: Observer | None = None,
    gated: bool | str = "auto",
) -> SpikeRecord:
    """Convenience one-shot parallel run."""
    sim = ParallelCompassSimulator(
        network, n_workers=n_workers, partition_strategy=partition_strategy,
        obs=obs, gated=gated,
    )
    return sim.run(n_ticks, inputs)
