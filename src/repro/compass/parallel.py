"""ParallelCompass: real multi-process execution of the kernel.

The in-process :class:`~repro.compass.simulator.CompassSimulator`
*simulates* Compass's communication structure; this module *executes*
it: each simulated MPI rank becomes an OS process owning a partition of
cores, exchanging spike events with the coordinator over pipes at every
tick barrier — the kernel's "parallelism across threads" realized with
Python's multiprocessing in place of MPI/OpenMP.

Wire format: per-tick delivery batches and spike/routing replies travel
as packed int64 numpy arrays (one ``(k, 3)`` block per direction), not
per-event Python tuples — the same compressed-representation idea the
paper credits for Compass's speed, applied to the pipe protocol.

Determinism: the counter-based PRNG makes every worker's draws a pure
function of (seed, core, tick, unit), so results are bit-identical to
every other expression regardless of process scheduling — verified by
the equivalence tests.

Note on performance: for the small networks used in tests the pipe
round-trips dominate and the parallel version is *slower* than the
vectorized single-process simulator; the point here is architectural
fidelity (and a truthful baseline for the scaling discussion), not
speed.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.compass.compile import CompiledNetwork, compile_network
from repro.compass.partition import partition
from repro.core import params
from repro.core.counters import EventCounters
from repro.core.crossbar import synaptic_input
from repro.core.inputs import InputSchedule
from repro.core.network import OUTPUT_TARGET, Network
from repro.core.neuron import neuron_tick
from repro.core.record import SpikeRecord

_STOP = "stop"
_EMPTY = np.zeros((0, 3), dtype=np.int64)


def _worker_main(conn, cores, core_ids, seed):
    """Worker process: own a core partition, advance on command.

    Protocol per tick: receive ``(tick, deliveries)`` where deliveries
    are a ``(k, 3)`` int64 array of (local_core, axon, absolute_tick)
    events to buffer; reply with ``(spikes, outgoing, stats)`` where
    spikes is a ``(s, 2)`` int64 array of (global_core, neuron),
    outgoing is a ``(m, 3)`` int64 array of (global_target_core, axon,
    absolute_tick), and stats are counter increments.
    """
    membranes = [core.initial_v.astype(np.int64).copy() for core in cores]
    buffers = [
        np.zeros((params.DELAY_SLOTS, core.n_axons), dtype=bool) for core in cores
    ]
    while True:
        message = conn.recv()
        if message == _STOP:
            conn.close()
            return
        tick, deliveries = message
        for local, axon, when in deliveries.tolist():
            buffers[local][when % params.DELAY_SLOTS, axon] = True

        slot = tick % params.DELAY_SLOTS
        spike_blocks = []
        outgoing_blocks = []
        stats = {
            "synaptic_events": 0,
            "spikes": 0,
            "deliveries": 0,
            "neuron_updates": 0,
            "per_core": {},
        }
        for local, core in enumerate(cores):
            gid = core_ids[local]
            row = buffers[local][slot]
            active = np.nonzero(row)[0]
            row[:] = False
            stats["deliveries"] += int(active.size)

            syn, n_events = synaptic_input(core, active, gid, tick, seed)
            stats["synaptic_events"] += n_events
            stats["per_core"][gid] = n_events

            v, spiked = neuron_tick(core, membranes[local], syn, gid, tick, seed)
            membranes[local] = v
            stats["neuron_updates"] += core.n_neurons

            fired = np.nonzero(spiked)[0]
            if fired.size == 0:
                continue
            stats["spikes"] += int(fired.size)
            spike_blocks.append(
                np.column_stack([np.full(fired.size, gid, dtype=np.int64), fired])
            )
            routed = core.target_core[fired] != OUTPUT_TARGET
            if routed.any():
                hit = fired[routed]
                outgoing_blocks.append(
                    np.column_stack([
                        core.target_core[hit],
                        core.target_axon[hit],
                        tick + core.delay[hit],
                    ]).astype(np.int64)
                )
        spikes = (
            np.concatenate(spike_blocks) if spike_blocks
            else np.zeros((0, 2), dtype=np.int64)
        )
        outgoing = np.concatenate(outgoing_blocks) if outgoing_blocks else _EMPTY
        conn.send((spikes, outgoing, stats))


class ParallelCompassSimulator:
    """Coordinator for a pool of worker-rank processes.

    Accepts a :class:`~repro.core.network.Network` or a pre-built
    :class:`~repro.compass.compile.CompiledNetwork` (shared, not
    rebuilt); workers receive only their own core partitions.
    """

    def __init__(
        self,
        network: Network | CompiledNetwork,
        n_workers: int = 2,
        partition_strategy: str = "load_balanced",
    ) -> None:
        compiled = compile_network(network)
        self.compiled = compiled
        self.network = network = compiled.network
        self.n_workers = n_workers
        self.rank_of_core = partition(network, n_workers, partition_strategy)
        self.local_index = np.zeros(network.n_cores, dtype=np.int64)
        core_ids_per_worker: list[list[int]] = [[] for _ in range(n_workers)]
        for gid in range(network.n_cores):
            rank = int(self.rank_of_core[gid])
            self.local_index[gid] = len(core_ids_per_worker[rank])
            core_ids_per_worker[rank].append(gid)

        ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
        self._conns = []
        self._procs = []
        for rank in range(n_workers):
            parent, child = ctx.Pipe()
            cores = [network.cores[g] for g in core_ids_per_worker[rank]]
            proc = ctx.Process(
                target=_worker_main,
                args=(child, cores, core_ids_per_worker[rank], network.seed),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

        self.tick = 0
        self.counters = EventCounters()
        self.counters.ensure_cores(network.n_cores)
        # deliveries staged per worker: (local_core, axon, abs_tick).
        # Spike-generated events are at most MAX_DELAY ticks ahead, so
        # they are ring-buffer safe to stage immediately; external inputs
        # can be arbitrarily far in the future and are held back in
        # _future_inputs until their own tick.
        self._staged: list[list] = [[] for _ in range(n_workers)]
        self._future_inputs: dict[int, list] = {}
        # True while the matching worker owes us a reply; used by
        # close() to drain a worker stuck mid-protocol.
        self._awaiting = [False] * n_workers
        self._closed = False

    # -- input handling ----------------------------------------------------
    def load_inputs(self, inputs: InputSchedule | None) -> None:
        """Hold external events until their delivery tick arrives."""
        if inputs is None:
            return
        for tick, core, axon in inputs:
            rank = int(self.rank_of_core[core])
            self._future_inputs.setdefault(tick, []).append(
                (rank, int(self.local_index[core]), axon)
            )

    # -- one tick ----------------------------------------------------------
    def step(self) -> list[tuple[int, int, int]]:
        """Advance one tick across all workers (scatter, compute, gather)."""
        if self._closed:
            raise RuntimeError("simulator already closed")
        for rank, local, axon in self._future_inputs.pop(self.tick, ()):
            self._staged[rank].append((local, axon, self.tick))
        for rank, conn in enumerate(self._conns):
            batch = (
                np.asarray(self._staged[rank], dtype=np.int64)
                if self._staged[rank] else _EMPTY
            )
            conn.send((self.tick, batch))
            self._awaiting[rank] = True
            self._staged[rank] = []

        emitted: list[tuple[int, int, int]] = []
        for rank, conn in enumerate(self._conns):
            spikes, outgoing, stats = conn.recv()
            self._awaiting[rank] = False
            emitted.extend(
                (self.tick, gid, neuron) for gid, neuron in spikes.tolist()
            )
            self.counters.synaptic_events += stats["synaptic_events"]
            self.counters.spikes += stats["spikes"]
            self.counters.deliveries += stats["deliveries"]
            self.counters.neuron_updates += stats["neuron_updates"]
            for gid, n_events in stats["per_core"].items():
                self.counters.synaptic_events_per_core[gid] += n_events
                if n_events > self.counters.max_core_events_per_tick:
                    self.counters.max_core_events_per_tick = n_events
            if outgoing.size == 0:
                continue
            # Aggregated messaging: one message per non-empty cross-rank
            # pair; deliveries stage as (local_core, axon, when) rows.
            targets = outgoing[:, 0]
            dst_ranks = self.rank_of_core[targets]
            staged_rows = np.column_stack([
                self.local_index[targets], outgoing[:, 1], outgoing[:, 2]
            ])
            for dst in np.unique(dst_ranks).tolist():
                mask = dst_ranks == dst
                self._staged[dst].extend(map(tuple, staged_rows[mask].tolist()))
                if dst != rank:
                    self.counters.messages += 1

        self.tick += 1
        self.counters.ticks = self.tick
        return emitted

    def run(self, n_ticks: int, inputs: InputSchedule | None = None) -> SpikeRecord:
        """Run *n_ticks*, shut the workers down, return the record."""
        self.load_inputs(inputs)
        events: list[tuple[int, int, int]] = []
        try:
            for _ in range(n_ticks):
                events.extend(self.step())
        finally:
            self.close()
        return SpikeRecord.from_events(events, self.counters)

    def close(self) -> None:
        """Terminate the worker pool.

        If a previous :meth:`step` raised mid-protocol, a worker may be
        blocked in ``send`` on a full pipe (its reply never collected),
        in which case it would never see the stop message and ``join``
        would hang.  Drain any outstanding reply first so shutdown
        cannot deadlock.
        """
        if self._closed:
            return
        self._closed = True
        for rank, conn in enumerate(self._conns):
            if self._awaiting[rank]:
                try:
                    if conn.poll(1.0):
                        conn.recv()
                except (EOFError, OSError):
                    pass
                self._awaiting[rank] = False
        for conn in self._conns:
            try:
                conn.send(_STOP)
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()

    def __del__(self):  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass


def run_parallel_compass(
    network: Network | CompiledNetwork,
    n_ticks: int,
    inputs: InputSchedule | None = None,
    n_workers: int = 2,
) -> SpikeRecord:
    """Convenience one-shot parallel run."""
    sim = ParallelCompassSimulator(network, n_workers=n_workers)
    return sim.run(n_ticks, inputs)
