"""FastCompass: whole-network sparse-matrix execution.

Compass owed much of its performance to "highly compressed data
structures for maintaining neuron and synapse states" (paper III-B).
This simulator is the same idea taken to its NumPy/SciPy conclusion:
the *entire network* becomes one sparse signed-weight matrix and flat
state vectors, so a tick is a single sparse mat-vec plus vectorized
neuron updates — no per-core Python loop at all.

Scope: deterministic networks (no stochastic synapse/leak/threshold
modes — those draw per-event randomness that defeats the single-matvec
formulation; use :class:`~repro.compass.simulator.CompassSimulator` for
them).  Within that scope, FastCompass is spike-for-spike identical to
the other kernel expressions, and the equivalence suite enforces it.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core import params
from repro.core.counters import EventCounters
from repro.core.inputs import InputSchedule
from repro.core.network import OUTPUT_TARGET, Network
from repro.core.record import SpikeRecord
from repro.utils.validation import require


class FastCompassSimulator:
    """Flat sparse-matrix simulator for deterministic networks."""

    def __init__(self, network: Network) -> None:
        network.validate()
        for idx, core in enumerate(network.cores):
            require(
                not core.stoch_synapse.any()
                and not core.stoch_leak.any()
                and not (core.threshold_mask != 0).any(),
                f"core {idx} uses stochastic modes; FastCompass supports "
                "deterministic networks only (use CompassSimulator)",
            )
        self.network = network

        # Global index maps.
        axon_base = np.zeros(network.n_cores + 1, dtype=np.int64)
        neuron_base = np.zeros(network.n_cores + 1, dtype=np.int64)
        for i, core in enumerate(network.cores):
            axon_base[i + 1] = axon_base[i] + core.n_axons
            neuron_base[i + 1] = neuron_base[i] + core.n_neurons
        self.axon_base = axon_base
        self.neuron_base = neuron_base
        self.n_axons = int(axon_base[-1])
        self.n_neurons = int(neuron_base[-1])

        # Core id per axon (for per-core event accounting).
        self.core_of_axon = np.repeat(
            np.arange(network.n_cores),
            [core.n_axons for core in network.cores],
        )

        # The one big signed-weight matrix: value = s^{G_a}_n on every
        # programmed crosspoint, block-diagonal by core.
        rows, cols, vals = [], [], []
        self.row_nnz = np.zeros(self.n_axons, dtype=np.int64)
        for i, core in enumerate(network.cores):
            a, n = np.nonzero(core.crossbar)
            w = core.weights[n, core.axon_types[a]]
            rows.append(a + axon_base[i])
            cols.append(n + neuron_base[i])
            vals.append(w)
            self.row_nnz[axon_base[i] : axon_base[i + 1]] = core.crossbar.sum(axis=1)
        if rows:
            self.weight_matrix = sparse.csr_matrix(
                (
                    np.concatenate(vals).astype(np.int64),
                    (np.concatenate(rows), np.concatenate(cols)),
                ),
                shape=(self.n_axons, self.n_neurons),
            )
        else:
            self.weight_matrix = sparse.csr_matrix(
                (self.n_axons, self.n_neurons), dtype=np.int64
            )

        def flat(attr):
            return np.concatenate(
                [np.asarray(getattr(core, attr), dtype=np.int64) for core in network.cores]
            )

        self.leak = flat("leak")
        self.leak_reversal = flat("leak_reversal").astype(bool)
        self.threshold = flat("threshold")
        self.neg_threshold = flat("neg_threshold")
        self.reset_value = flat("reset_value")
        self.reset_mode = flat("reset_mode")
        self.neg_floor_mode = flat("neg_floor_mode")
        self.v = flat("initial_v")

        # Routing: neuron -> global target axon (or -1) and delay.
        target_axon = np.full(self.n_neurons, -1, dtype=np.int64)
        delay = np.ones(self.n_neurons, dtype=np.int64)
        for i, core in enumerate(network.cores):
            sl = slice(neuron_base[i], neuron_base[i + 1])
            routed = core.target_core != OUTPUT_TARGET
            ta = np.full(core.n_neurons, -1, dtype=np.int64)
            ta[routed] = axon_base[core.target_core[routed]] + core.target_axon[routed]
            target_axon[sl] = ta
            delay[sl] = core.delay
        self.target_axon = target_axon
        self.delay = delay

        self.buffers = np.zeros((params.DELAY_SLOTS, self.n_axons), dtype=bool)
        self.tick = 0
        self.counters = EventCounters()
        self.counters.ensure_cores(network.n_cores)
        self._input_by_tick: dict[int, list[int]] = {}

    # -- input handling ----------------------------------------------------
    def load_inputs(self, inputs: InputSchedule | None) -> None:
        """Stage external input events as global axon indices."""
        if inputs is None:
            return
        for tick, core, axon in inputs:
            self._input_by_tick.setdefault(tick, []).append(
                int(self.axon_base[core] + axon)
            )

    # -- one tick ----------------------------------------------------------
    def step(self) -> list[tuple[int, int, int]]:
        """Advance the whole network one tick with flat vector ops."""
        slot = self.tick % params.DELAY_SLOTS
        for ga in self._input_by_tick.pop(self.tick, ()):
            self.buffers[slot, ga] = True

        active = self.buffers[slot].copy()  # copy before clearing the slot
        self.buffers[slot] = False
        active_idx = np.nonzero(active)[0]
        self.counters.deliveries += int(active_idx.size)

        # Synapse phase: one sparse matvec.
        if active_idx.size:
            syn = np.asarray(
                self.weight_matrix.T.dot(active.astype(np.int64))
            ).reshape(-1)
            events_per_axon = self.row_nnz[active_idx]
            self.counters.synaptic_events += int(events_per_axon.sum())
            per_core = np.bincount(
                self.core_of_axon[active_idx],
                weights=events_per_axon,
                minlength=self.network.n_cores,
            ).astype(np.int64)
            self.counters.synaptic_events_per_core += per_core
            if per_core.size:
                self.counters.max_core_events_per_tick = max(
                    self.counters.max_core_events_per_tick, int(per_core.max())
                )
        else:
            syn = np.zeros(self.n_neurons, dtype=np.int64)

        # Neuron phase (identical algebra to repro.core.neuron, flat).
        v = self.v + syn
        direction = np.where(self.leak_reversal, np.sign(v), 1)
        v = np.clip(v + direction * self.leak, params.MEMBRANE_MIN, params.MEMBRANE_MAX)

        spiked = v >= self.threshold
        v_reset = np.select(
            [self.reset_mode == params.RESET_TO_VALUE,
             self.reset_mode == params.RESET_LINEAR],
            [self.reset_value, v - self.threshold],
            default=v,
        )
        v = np.where(spiked, v_reset, v)
        below = (~spiked) & (v < -self.neg_threshold)
        if below.any():
            floored = np.where(
                self.neg_floor_mode == params.NEG_FLOOR_SATURATE,
                -self.neg_threshold,
                -self.reset_value,
            )
            v = np.where(below, floored, v)
        self.v = np.clip(v, params.MEMBRANE_MIN, params.MEMBRANE_MAX)
        self.counters.neuron_updates += self.n_neurons

        fired = np.nonzero(spiked)[0]
        emitted: list[tuple[int, int, int]] = []
        if fired.size:
            self.counters.spikes += int(fired.size)
            core_ids = np.searchsorted(self.neuron_base, fired, side="right") - 1
            local = fired - self.neuron_base[core_ids]
            emitted = [
                (self.tick, int(c), int(n)) for c, n in zip(core_ids, local)
            ]
            # Network phase: vectorized delivery into the ring buffer.
            routed = self.target_axon[fired] >= 0
            dst = self.target_axon[fired[routed]]
            when = (self.tick + self.delay[fired[routed]]) % params.DELAY_SLOTS
            self.buffers[when, dst] = True

        self.tick += 1
        self.counters.ticks = self.tick
        return emitted

    def run(self, n_ticks: int, inputs: InputSchedule | None = None) -> SpikeRecord:
        """Run *n_ticks* ticks and return the spike record."""
        self.load_inputs(inputs)
        events: list[tuple[int, int, int]] = []
        for _ in range(n_ticks):
            events.extend(self.step())
        return SpikeRecord.from_events(events, self.counters)


def run_fast_compass(
    network: Network, n_ticks: int, inputs: InputSchedule | None = None
) -> SpikeRecord:
    """Convenience one-shot FastCompass run."""
    return FastCompassSimulator(network).run(n_ticks, inputs)
