"""FastCompass: whole-network sparse-matrix execution.

Compass owed much of its performance to "highly compressed data
structures for maintaining neuron and synapse states" (paper III-B).
This simulator is the same idea taken to its NumPy/SciPy conclusion:
the *entire network* becomes one sparse signed-weight matrix and flat
state vectors (built once per network by :mod:`repro.compass.compile`),
so a tick is a single sparse mat-vec plus vectorized neuron updates —
no per-core Python loop at all.

Stochastic synapse, stochastic leak, and stochastic threshold modes are
fully supported: the counter-based PRNG (:mod:`repro.core.prng`) makes
every draw a pure function of (seed, purpose, core, tick, unit), so the
sparse engine draws vectorized batches only for the *active* stochastic
crosspoints (enumerated from the CSR rows of spiking axons) and the
stochastic neurons, and still observes bit-identical random streams to
the scalar reference kernel.  Spike-for-spike equivalence across every
mode is enforced by the equivalence suites.

The two tick phases are module-level functions
(:func:`integrate_deliveries`, :func:`update_neurons`) over any
"compiled-like" artifact — a whole
:class:`~repro.compass.compile.CompiledNetwork` or a per-rank
:class:`~repro.compass.compile.CompiledPartition` — which is what lets
the shared-memory :class:`~repro.compass.parallel.ParallelCompassSimulator`
workers advance their partitions with exactly this vectorized code.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.compass.compile import CompiledNetwork, compile_network, csr_row_entries
from repro.core import params, prng
from repro.core.counters import EventCounters
from repro.core.inputs import InputSchedule
from repro.core.network import Network
from repro.core.record import SpikeRecord
from repro.obs.observer import NULL_SPAN, Observer, active_observer
from repro.obs.trace import PHASES, now_ns
from repro.utils.validation import require


def stoch_synapse_events(
    c, seed: int, tick: int, active_idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray] | None:
    """Per-event stochastic synaptic contributions, or None when idle.

    Enumerates the active *stochastic* crosspoints from the CSR rows of
    spiking axons and draws one Bernoulli per event.  The (core, unit)
    PRNG coordinates are global even in a partition slice, so the
    stream is identical under any partitioning — and a pure function of
    (seed, tick), which is what lets the batched engine call this once
    per replica lane with that lane's own seed and tick coordinates.
    Returns ``(target_neurons, contributions)`` — unreduced, so the
    gated path can learn which neurons were touched before scattering.
    """
    flat = csr_row_entries(c.stoch_indptr, active_idx)
    if not flat.size:
        return None
    w = c.stoch_weight[flat]
    rho = prng.draw_u8_multi(
        seed,
        prng.PURPOSE_SYNAPSE,
        c.stoch_core[flat],
        tick,
        c.stoch_unit[flat],
    )
    contrib = np.sign(w) * (rho < np.abs(w))
    return c.stoch_col[flat], contrib


def stoch_synapse_input(
    c, seed: int, tick: int, active_idx: np.ndarray
) -> np.ndarray | None:
    """Stochastic synaptic contribution vector for one tick, or None.

    Accumulation is exact int64 (``np.add.at`` on an integer buffer);
    the previous float64 ``np.bincount(weights=...)`` reduction could
    lose integer precision once a neuron's event tally crossed 2**53.
    """
    events = stoch_synapse_events(c, seed, tick, active_idx)
    if events is None:
        return None
    cols, contrib = events
    out = np.zeros(c.n_neurons, dtype=np.int64)
    np.add.at(out, cols, contrib)
    return out


def integrate_deliveries(
    c, seed: int, tick: int, active: np.ndarray, active_idx: np.ndarray
) -> np.ndarray:
    """Synapse phase over artifact *c*: matvec + batched stochastic draws.

    *c* is any compiled artifact exposing the sparse-engine attribute
    set (``det_matrix_t``, the ``stoch_*`` crosspoint table) — the whole
    network or one rank's partition.  *active* is the axon activity
    vector in *c*'s index space; *active_idx* its nonzero indices.
    Returns the per-neuron synaptic input vector.
    """
    syn = np.asarray(c.det_matrix_t.dot(active.astype(np.int64))).reshape(-1)

    if c.any_stoch_synapse:
        contrib = stoch_synapse_input(c, seed, tick, active_idx)
        if contrib is not None:
            syn += contrib
    return syn


def integrate_deliveries_gated(
    c, seed: int, tick: int, active_idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Synapse phase driven by the spiking axons only (event scatter).

    Instead of the dense ``(N, A)`` matvec — which touches every neuron
    row even on a near-silent tick — this walks exactly the CSR rows of
    the spiking axons (deterministic table + stochastic draws) and
    scatters their contributions with exact int64 accumulation.
    Returns ``(syn, touched)``: the per-neuron synaptic input vector and
    the indices of every neuron reached by at least one crosspoint this
    tick (a superset of ``nonzero(syn)`` — zero-weight and cancelling
    contributions are included, which is harmless: updating a settled
    passive neuron with zero input is the identity).
    """
    syn = np.zeros(c.n_neurons, dtype=np.int64)
    flat = csr_row_entries(c.det_indptr, active_idx)
    cols = c.det_col[flat]
    np.add.at(syn, cols, c.det_weight[flat])
    touched = cols
    if c.any_stoch_synapse:
        events = stoch_synapse_events(c, seed, tick, active_idx)
        if events is not None:
            scols, contrib = events
            np.add.at(syn, scols, contrib)
            touched = np.concatenate([touched, scols])
    return syn, touched


def effective_leak(c, seed: int, tick: int, leak: np.ndarray) -> np.ndarray:
    """This tick's leak magnitudes: stochastic-leak draws applied.

    Stochastic-leak neurons replace ``|lam|`` with a
    Bernoulli(|lam|/256) unit step.  Returns *leak* itself when the
    artifact has no stochastic-leak neurons, else a patched copy.
    """
    if not c.any_stoch_leak:
        return leak
    sl = c.stoch_leak_idx
    rho = prng.draw_u8_multi(
        seed, prng.PURPOSE_LEAK, c.core_of_neuron[sl], tick,
        c.local_neuron[sl],
    )
    leak = leak.copy()
    leak[sl] = np.sign(leak[sl]) * (rho < np.abs(leak[sl]))
    return leak


def effective_threshold(c, seed: int, tick: int, theta: np.ndarray) -> np.ndarray:
    """This tick's thresholds: ``theta = alpha + (rho16 & TM)`` on masks.

    Returns *theta* itself when the artifact has no stochastic
    thresholds, else a patched copy.
    """
    if not c.any_stoch_threshold:
        return theta
    ti = c.stoch_threshold_idx
    rho = prng.draw_u16_multi(
        seed, prng.PURPOSE_THRESHOLD, c.core_of_neuron[ti], tick,
        c.local_neuron[ti],
    )
    theta = theta.copy()
    theta[ti] = theta[ti] + (rho & c.threshold_mask[ti])
    return theta


def update_neurons(
    c, seed: int, tick: int, v: np.ndarray, syn: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Neuron phase over artifact *c*: leak, threshold, fire, reset.

    Pure function of the membrane vector *v* and synaptic input *syn*;
    returns ``(v_next, spiked)``.  Identical algebra to
    :mod:`repro.core.neuron`, flat across every neuron of *c* —
    ``core_of_neuron`` / ``local_neuron`` keep global PRNG coordinates
    in partition slices.
    """
    v = v + syn

    # Leak: the deterministic contribution is dir * lam; stochastic-leak
    # neurons replace |lam| with a Bernoulli(|lam|/256) unit step.
    direction = np.where(c.leak_reversal, np.sign(v), 1)
    leak = effective_leak(c, seed, tick, c.leak)
    v = np.clip(v + direction * leak, params.MEMBRANE_MIN, params.MEMBRANE_MAX)

    # Threshold: theta = alpha + (rho16 & TM) on masked neurons.
    theta = effective_threshold(c, seed, tick, c.threshold)

    spiked = v >= theta
    v_reset = np.select(
        [c.reset_mode == params.RESET_TO_VALUE,
         c.reset_mode == params.RESET_LINEAR],
        [c.reset_value, v - theta],
        default=v,
    )
    v = np.where(spiked, v_reset, v)
    below = (~spiked) & (v < -c.neg_threshold)
    if below.any():
        floored = np.where(
            c.neg_floor_mode == params.NEG_FLOOR_SATURATE,
            -c.neg_threshold,
            -c.reset_value,
        )
        v = np.where(below, floored, v)
    return np.clip(v, params.MEMBRANE_MIN, params.MEMBRANE_MAX), spiked


#: Shared empty index array for silent ticks (read-only by convention).
_EMPTY_IDX = np.zeros(0, dtype=np.int64)


def settled_mask(c, v: np.ndarray) -> np.ndarray:
    """True where a *passive-stable* neuron with membrane *v* is settled.

    Settled means :func:`update_neurons` with zero synaptic input is the
    identity (and fires no spike): the membrane is inside the 20-bit
    range, strictly below threshold, and either at/above the negative
    threshold or already pinned at its negative-floor value (a
    ``NEG_FLOOR_RESET`` neuron re-floored to ``-reset_value`` below
    ``-neg_threshold`` stays there).  Only meaningful where
    ``passive_mask`` holds — always-active neurons are never consulted.

    *c* is any compiled-like artifact (whole network, partition, or a
    :class:`_GatedSlice`) whose parameter vectors align with *v*.
    """
    floored = np.where(
        c.neg_floor_mode == params.NEG_FLOOR_SATURATE,
        -c.neg_threshold,
        -c.reset_value,
    )
    in_range = (v >= params.MEMBRANE_MIN) & (v <= params.MEMBRANE_MAX)
    no_fire = v < c.threshold
    neg_ok = (v >= -c.neg_threshold) | (v == floored)
    return in_range & no_fire & neg_ok


class _GatedSlice:
    """A compiled-like view restricted to the active subset *idx*.

    Exposes exactly the attribute surface :func:`update_neurons` (and
    the batched variant) reads, gathered to ``idx``, with the stochastic
    leak/threshold index lists re-based to subset positions.  The PRNG
    coordinates (``core_of_neuron``/``local_neuron``) keep their global
    values, so every draw is bit-identical to the dense path.  Relies on
    every stochastic-leak/stochastic-threshold neuron being present in
    *idx* — guaranteed, because stochastic neurons classify as
    always-active and the active set always contains them.
    """

    __slots__ = (
        "leak", "leak_reversal", "threshold", "threshold_mask",
        "neg_threshold", "reset_value", "reset_mode", "neg_floor_mode",
        "core_of_neuron", "local_neuron",
        "stoch_leak_idx", "stoch_threshold_idx",
        "any_stoch_leak", "any_stoch_threshold",
    )

    def __init__(self, c, idx: np.ndarray) -> None:
        self.leak = c.leak[idx]
        self.leak_reversal = c.leak_reversal[idx]
        self.threshold = c.threshold[idx]
        self.threshold_mask = c.threshold_mask[idx]
        self.neg_threshold = c.neg_threshold[idx]
        self.reset_value = c.reset_value[idx]
        self.reset_mode = c.reset_mode[idx]
        self.neg_floor_mode = c.neg_floor_mode[idx]
        self.core_of_neuron = c.core_of_neuron[idx]
        self.local_neuron = c.local_neuron[idx]
        self.stoch_leak_idx = np.searchsorted(idx, c.stoch_leak_idx)
        self.stoch_threshold_idx = np.searchsorted(idx, c.stoch_threshold_idx)
        self.any_stoch_leak = self.stoch_leak_idx.size > 0
        self.any_stoch_threshold = self.stoch_threshold_idx.size > 0


class ActivityGate:
    """Persistent per-run state for the activity-gated tick path.

    The gated tick updates only the neurons whose state could change:

    * the compile-time **always-active** set (nonzero or stochastic
      leak, stochastic threshold), plus
    * the neurons **touched** by a crosspoint of a spiking axon this
      tick, plus
    * the **hot** passive neurons — currently unsettled (at/over
      threshold, out of the 20-bit range, or below the negative floor),
      tracked incrementally: a neuron's settledness can only change when
      it is updated, so each gated tick refreshes exactly the updated
      subset.

    Everything outside that set is passive and settled, where the dense
    update with zero input is provably the identity — skipping it is
    bit-identical.  The gate also maintains the current population of
    saturated membranes so the cumulative ``membrane_saturations``
    counter matches the dense path's full-vector per-tick count without
    scanning every membrane.
    """

    def __init__(self, c, v: np.ndarray) -> None:
        self.c = c
        self.always_mask = ~c.passive_mask
        self.hot = c.passive_mask & ~settled_mask(c, v)
        self._work = np.empty(c.n_neurons, dtype=bool)
        self.n_saturated = int(
            np.count_nonzero(v == params.MEMBRANE_MIN)
            + np.count_nonzero(v == params.MEMBRANE_MAX)
        )

    def active_set(self, touched: np.ndarray) -> np.ndarray:
        """Sorted indices of the neurons to update this tick."""
        np.logical_or(self.always_mask, self.hot, out=self._work)
        self._work[touched] = True
        return np.nonzero(self._work)[0]

    def commit(self, sl, idx: np.ndarray, v_old: np.ndarray, v_new: np.ndarray) -> None:
        """Account one gated update over subset *idx* (slice view *sl*)."""
        self.hot[idx] = self.c.passive_mask[idx] & ~settled_mask(sl, v_new)
        self.n_saturated += int(
            np.count_nonzero(v_new == params.MEMBRANE_MIN)
            + np.count_nonzero(v_new == params.MEMBRANE_MAX)
            - np.count_nonzero(v_old == params.MEMBRANE_MIN)
            - np.count_nonzero(v_old == params.MEMBRANE_MAX)
        )


def count_cross_core_messages(src_cores: np.ndarray, dst_cores: np.ndarray, n_cores: int) -> int:
    """Aggregated message count for one tick's routed deliveries.

    One message per non-empty cross-core (source, destination) pair —
    the Compass aggregation rule at its finest granularity, where every
    core is its own rank.  :class:`CompassSimulator` with
    ``n_ranks=n_cores`` counts exactly this.
    """
    cross = src_cores != dst_cores
    if not cross.any():
        return 0
    pairs = src_cores[cross] * np.int64(n_cores) + dst_cores[cross]
    return int(np.unique(pairs).size)


#: Attribute under which a schedule's converted arrays are cached.
_INPUT_CACHE_ATTR = "_staged_inputs_cache"
_n_input_builds = 0


def n_input_builds() -> int:
    """Number of InputSchedule-to-array conversions performed (cache misses)."""
    return _n_input_builds


def staged_inputs(compiled, inputs: InputSchedule) -> dict[int, np.ndarray]:
    """Convert *inputs* to ``{tick: global-axon index array}``, cached.

    The conversion (iterating the schedule's Python event sets and
    mapping (core, axon) pairs through ``axon_base``) is the only
    per-run Python-loop cost of input handling, so the result is cached
    on the *schedule object itself*, keyed by the compiled artifact and
    the schedule's event count: repeat ``run()`` calls — and batch
    lanes sharing one schedule — skip the rebuild entirely.  Adding
    events to the schedule (a changed ``n_events``) or staging it for a
    different compiled network invalidates the entry.

    The cache key holds the compiled artifact through a ``weakref`` so a
    long-lived schedule object never pins a large compiled network (and
    its sparse matrices) in memory after the last simulator drops it.

    The returned arrays are shared and must be treated as read-only.
    """
    cached = inputs.__dict__.get(_INPUT_CACHE_ATTR)
    if (
        cached is not None
        and cached[0]() is compiled
        and cached[1] == inputs.n_events
    ):
        return cached[2]
    global _n_input_builds
    _n_input_builds += 1
    axon_base = compiled.axon_base
    events = list(inputs)  # sorted (tick, core, axon) triples
    per_tick: dict[int, np.ndarray] = {}
    if events:
        arr = np.asarray(events, dtype=np.int64)
        ticks = arr[:, 0]
        axons = axon_base[arr[:, 1]] + arr[:, 2]
        uniq, starts = np.unique(ticks, return_index=True)
        for i, tick in enumerate(uniq.tolist()):
            end = starts[i + 1] if i + 1 < starts.size else ticks.size
            per_tick[int(tick)] = axons[starts[i] : end]
    inputs.__dict__[_INPUT_CACHE_ATTR] = (
        weakref.ref(compiled), inputs.n_events, per_tick
    )
    return per_tick


class FastCompassSimulator:
    """Flat sparse-matrix simulator over a compiled network.

    Accepts either a :class:`~repro.core.network.Network` (compiled on
    first use, cached on the network) or an existing
    :class:`~repro.compass.compile.CompiledNetwork` — constructing a
    second simulator from either form does no sparse-matrix rebuild.

    Pass ``obs=Observer()`` (or ``profile=True``, which attaches a
    private observer) to record the canonical per-tick phase spans —
    ``deliver``/``integrate``/``update``/``route``, the same names the
    reference :class:`~repro.compass.simulator.CompassSimulator`
    reports — and publish the uniform event metrics.  With neither, the
    tick path pays a single ``None`` check.

    ``gated`` selects the activity-gated tick path (bit-identical to
    the dense path; see :class:`ActivityGate`): ``"auto"`` (default)
    engages it whenever the compiled network has any passive-stable
    neuron, ``True`` forces it, ``False`` forces the dense path.
    """

    #: This engine records its own flight-recorder rows per tick, so
    #: wrappers (the streaming runtime) must not record duplicates.
    _records_flight = True

    def __init__(
        self,
        network: Network | CompiledNetwork,
        *,
        profile: bool = False,
        obs: Observer | None = None,
        gated: bool | str = "auto",
    ) -> None:
        self.profile = profile
        self.obs = obs if obs is not None else (Observer() if profile else None)
        with (self.obs.span("compile") if self.obs is not None else NULL_SPAN):
            compiled = compile_network(network)
        self.compiled = compiled
        self.network = compiled.network
        self.gated = (
            compiled.gating_worthwhile if gated == "auto" else bool(gated)
        )

        # Mutable per-run state (everything else is shared, read-only).
        self.v = compiled.initial_v.copy()
        self.buffers = np.zeros((params.DELAY_SLOTS, compiled.n_axons), dtype=bool)
        self.tick = 0
        self.counters = EventCounters()
        self.counters.ensure_cores(compiled.n_cores)
        self._gate = ActivityGate(compiled, self.v) if self.gated else None
        # tick -> staged global-axon indices (list or read-only ndarray).
        self._input_by_tick: dict[int, object] = {}

    @property
    def phase_seconds(self) -> dict:
        """Accumulated seconds per tick phase (all zero when untimed).

        Same phase names as the reference
        :class:`~repro.compass.simulator.CompassSimulator`: the
        canonical four plus the legacy aggregates.
        """
        if self.obs is None:
            zeros = {name: 0.0 for name in PHASES}
            zeros["synapse_neuron"] = zeros["network"] = 0.0
            return zeros
        return self.obs.phase_seconds()

    # -- input handling ----------------------------------------------------
    def load_inputs(self, inputs: InputSchedule | None) -> None:
        """Stage external input events as global axon indices.

        The schedule-to-array conversion is cached on the schedule
        object (:func:`staged_inputs`), so repeat runs of the same
        schedule stage in O(ticks) dictionary merges with no per-event
        Python loop.
        """
        if inputs is None:
            return
        for tick, axons in staged_inputs(self.compiled, inputs).items():
            staged = self._input_by_tick.get(tick)
            if staged is None:
                self._input_by_tick[tick] = axons  # shared, read-only
            else:
                self._input_by_tick[tick] = np.concatenate(
                    [np.asarray(staged, dtype=np.int64), axons]
                )

    # -- checkpointing -----------------------------------------------------
    def snapshot(self):
        """Capture the complete dynamic state as an engine checkpoint.

        The returned :class:`~repro.io.checkpoint.EngineCheckpoint` is in
        engine-neutral coordinates (flat membranes, canonical-slot-order
        delivery ring, absolute-tick pending inputs), so it restores onto
        any engine — this one, the reference simulator, a batch lane —
        with bit-identical behaviour thereafter.
        """
        from repro.io.checkpoint import (
            EngineCheckpoint, cached_model_digest, canonical_ring, copy_pending,
        )

        return EngineCheckpoint(
            network_name=self.network.name or "",
            model_digest=cached_model_digest(self),
            seed=int(self.network.seed),
            tick=int(self.tick),
            v=self.v.copy(),
            ring=canonical_ring(self.buffers, self.tick),
            pending=copy_pending(self._input_by_tick),
            counters=self.counters.copy(),
        )

    def restore(self, ckpt) -> None:
        """Restore an engine checkpoint (from any engine); bit-exact resume.

        Validates the checkpoint's network name + model digest (``TN602``
        on mismatch) and that the PRNG stream seed matches this engine's
        network seed (a batch lane running a *derived* session seed must
        be restored onto a batch lane, not here).  The activity gate is
        rebuilt from the restored membranes — its state is purely
        derived, so it never travels in the checkpoint.
        """
        from repro.io.checkpoint import engine_ring, copy_pending

        ckpt.validate_against(self.network)
        require(
            int(ckpt.seed) == int(self.network.seed),
            f"checkpoint carries PRNG stream seed {ckpt.seed}, this engine "
            f"runs the network seed {self.network.seed} (restore "
            "derived-seed session checkpoints onto a batch lane)",
        )
        self.tick = int(ckpt.tick)
        self.v = np.array(ckpt.v, dtype=np.int64, copy=True)
        self.buffers = engine_ring(
            np.asarray(ckpt.ring, dtype=bool), self.tick
        )
        self._input_by_tick = copy_pending(ckpt.pending)
        self.counters = ckpt.counters.copy()
        self.counters.ensure_cores(self.compiled.n_cores)
        if self.gated:
            self._gate = ActivityGate(self.compiled, self.v)

    # -- tick phases -------------------------------------------------------
    def _synapse_phase(
        self, active: np.ndarray, active_idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Integrate this tick's deliveries and account synaptic events.

        Returns ``(syn, touched)``; *touched* is the gated path's
        reached-neuron index array, or None on the dense path.
        """
        c = self.compiled
        if self._gate is not None:
            syn, touched = integrate_deliveries_gated(
                c, self.network.seed, self.tick, active_idx
            )
        else:
            syn = integrate_deliveries(
                c, self.network.seed, self.tick, active, active_idx
            )
            touched = None

        events_per_axon = c.row_nnz[active_idx]
        self.counters.synaptic_events += int(events_per_axon.sum())
        # Exact int64 accumulation (np.bincount with weights= reduces in
        # float64, which silently loses precision past 2**53 events).
        per_core = np.zeros(c.n_cores, dtype=np.int64)
        np.add.at(per_core, c.core_of_axon[active_idx], events_per_axon)
        self.counters.synaptic_events_per_core += per_core
        if per_core.size:
            self.counters.max_core_events_per_tick = max(
                self.counters.max_core_events_per_tick, int(per_core.max())
            )
        return syn, touched

    def _advance(self) -> tuple[int, np.ndarray, np.ndarray]:
        """Advance one tick; return (tick, fired core ids, local neurons)."""
        c = self.compiled
        slot = self.tick % params.DELAY_SLOTS
        # Timing is observed about the kernel, never fed back into it;
        # clock reads live in repro.obs.trace (SL104-clean tick path).
        obs = active_observer(self.obs)
        if obs is not None:
            t0 = now_ns()
        staged = self._input_by_tick.pop(self.tick, None)
        if staged is not None:
            self.buffers[slot, np.asarray(staged, dtype=np.int64)] = True

        active = self.buffers[slot].copy()  # copy before clearing the slot
        self.buffers[slot] = False
        active_idx = np.nonzero(active)[0]
        self.counters.deliveries += int(active_idx.size)
        if obs is not None:
            t1 = now_ns()
            obs.phase("deliver", self.tick, t0, t1)

        if active_idx.size:
            syn, touched = self._synapse_phase(active, active_idx)
        else:
            syn = np.zeros(c.n_neurons, dtype=np.int64)
            touched = _EMPTY_IDX
        if obs is not None:
            t2 = now_ns()
            obs.phase("integrate", self.tick, t1, t2)

        self.counters.neuron_updates += c.n_neurons
        if self._gate is not None:
            gate = self._gate
            act = gate.active_set(touched if touched is not None else _EMPTY_IDX)
            sl = _GatedSlice(c, act)
            v_old = self.v[act]
            v_new, spiked_sub = update_neurons(
                sl, self.network.seed, self.tick, v_old, syn[act]
            )
            self.v[act] = v_new
            gate.commit(sl, act, v_old, v_new)
            self.counters.active_neuron_updates += int(act.size)
            self.counters.membrane_saturations += gate.n_saturated
            fired = act[spiked_sub]
        else:
            self.v, spiked = update_neurons(
                c, self.network.seed, self.tick, self.v, syn
            )
            self.counters.active_neuron_updates += c.n_neurons
            self.counters.membrane_saturations += int(
                np.count_nonzero(self.v == params.MEMBRANE_MIN)
                + np.count_nonzero(self.v == params.MEMBRANE_MAX)
            )
            fired = np.nonzero(spiked)[0]
        if obs is not None:
            t3 = now_ns()
            obs.phase("update", self.tick, t2, t3)

        if fired.size:
            self.counters.spikes += int(fired.size)
            core_ids = c.core_of_neuron[fired]
            local = c.local_neuron[fired]
            # Network phase: vectorized delivery into the ring buffer.
            routed = c.target_axon[fired] >= 0
            rf = fired[routed]
            dst = c.target_axon[rf]
            when = (self.tick + c.delay[rf]) % params.DELAY_SLOTS
            self.buffers[when, dst] = True
            self.counters.messages += count_cross_core_messages(
                c.core_of_neuron[rf], c.core_of_axon[dst], c.n_cores
            )
        else:
            core_ids = local = np.zeros(0, dtype=np.int64)

        emitted_tick = self.tick
        self.tick += 1
        self.counters.ticks = self.tick
        if obs is not None:
            t4 = now_ns()
            obs.phase("route", emitted_tick, t3, t4)
            obs.trace.add("tick", t0, t4, attrs={"tick": emitted_tick})
            obs.metrics.histogram("repro_tick_seconds").observe((t4 - t0) * 1e-9)  # repro-lint: allow=SL106
            obs.publish_counters(self.counters)
            obs.set_gauge("repro_queue_depth", len(self._input_by_tick))
            if self._gate is not None:
                obs.set_gauge("repro_active_neurons", int(act.size))
                obs.set_gauge(
                    "repro_active_fraction",
                    act.size / c.n_neurons if c.n_neurons else 0.0,
                )
                obs.metrics.counter("repro_active_neuron_updates_total").set(
                    self.counters.active_neuron_updates
                )
            if self._gate is not None and c.n_neurons:
                frac = act.size / c.n_neurons
            else:
                frac = 1.0
            obs.flight_tick(
                emitted_tick, t0, t4, int(fired.size), self.counters.messages,
                active_fraction=frac,
                deliver_ns=t1 - t0, integrate_ns=t2 - t1,
                update_ns=t3 - t2, route_ns=t4 - t3,
            )
        return emitted_tick, core_ids, local

    # -- public API --------------------------------------------------------
    def step_arrays(self) -> tuple[int, np.ndarray, np.ndarray]:
        """Advance one tick; return ``(tick, core_ids, neurons)`` arrays.

        The array-returning hot path: no per-spike Python tuples are
        materialized, which is what the streaming runtime drives for
        single-tick stepping.
        """
        return self._advance()

    def step(self) -> list[tuple[int, int, int]]:
        """Advance the whole network one tick; return spike tuples."""
        tick, core_ids, local = self._advance()
        return [(tick, int(cc), int(nn)) for cc, nn in zip(core_ids, local)]

    def run(self, n_ticks: int, inputs: InputSchedule | None = None) -> SpikeRecord:
        """Run *n_ticks* ticks and return the spike record.

        Spikes accumulate as per-tick numpy arrays and the record is
        assembled array-at-once — no per-spike Python tuples on this
        path.
        """
        self.load_inputs(inputs)
        ticks_acc: list[np.ndarray] = []
        cores_acc: list[np.ndarray] = []
        neurons_acc: list[np.ndarray] = []
        for _ in range(n_ticks):
            tick, core_ids, local = self._advance()
            if core_ids.size:
                ticks_acc.append(np.full(core_ids.size, tick, dtype=np.int64))
                cores_acc.append(core_ids)
                neurons_acc.append(local)
        if ticks_acc:
            return SpikeRecord.from_arrays(
                np.concatenate(ticks_acc),
                np.concatenate(cores_acc),
                np.concatenate(neurons_acc),
                self.counters,
            )
        return SpikeRecord.from_arrays(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            self.counters,
        )


def run_fast_compass(
    network: Network | CompiledNetwork, n_ticks: int, inputs: InputSchedule | None = None
) -> SpikeRecord:
    """Convenience one-shot FastCompass run."""
    return FastCompassSimulator(network).run(n_ticks, inputs)
