"""Von-Neumann machine cost models for Compass (BG/Q, x86)."""

from repro.machines.cost import (
    Comparison,
    CompassCostModel,
    CompassRunPoint,
    bgq_weak_scaling_hosts,
    compare_truenorth_vs_compass,
)
from repro.machines.scaling import (
    ScalingPoint,
    best_point,
    most_efficient_point,
    strong_scaling_sweep,
    x86_reference_sweep,
)
from repro.machines.specs import BGQ, MACHINES, X86, X86_LEGACY, MachineSpec

__all__ = [
    "Comparison",
    "CompassCostModel",
    "CompassRunPoint",
    "bgq_weak_scaling_hosts",
    "compare_truenorth_vs_compass",
    "ScalingPoint",
    "best_point",
    "most_efficient_point",
    "strong_scaling_sweep",
    "x86_reference_sweep",
    "BGQ",
    "MACHINES",
    "X86",
    "X86_LEGACY",
    "MachineSpec",
]
