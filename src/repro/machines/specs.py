"""Machine specifications for the Compass benchmarking platforms.

DESIGN.md substitution #2: we have no Blue Gene or instrumented x86, so
each platform is an analytic cost model whose constants are calibrated
against the paper's published anchor points.  Provenance of every
constant is documented next to it.

Platforms (paper Section V):

* ``BGQ``    — IBM Blue Gene/Q compute cards: 18-core (16 usable)
  PowerPC A2 at 1.6 GHz, 4-way SMT, 16 GB DDR3; up to 32 cards; power
  read via EMON (node-card power / 32).
* ``X86``    — dual-socket Intel Xeon E5-2440 (2 x 6 cores, 2.4 GHz,
  15 MB LLC, 188 GB DRAM); power via RAPL (package + DRAM).
* ``X86_LEGACY`` — the dual-socket Xeon X7350 (2.93 GHz, 8 threads)
  server used for the 100M-tick equivalence regression (Section VI-A:
  74 days vs. 27.7 hours on TrueNorth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require


@dataclass(frozen=True)
class MachineSpec:
    """Cost-model constants for one Compass host platform."""

    name: str
    cores_per_host: int
    smt_per_core: int
    max_hosts: int
    t_neuron_s: float  # single-thread cost of one neuron update
    t_syn_event_s: float  # single-thread cost of one synaptic event
    t_fixed_s: float  # per-tick serial overhead (phase setup, barriers)
    t_message_s: float  # per aggregated MPI message (per-host, parallel)
    t_sync_s: float  # one synchronization communication step
    power_per_host_w: float  # measured host power under Compass load
    parallel_efficiency: float = 0.90  # physical-core scaling efficiency
    smt_efficiency: float = 0.25  # marginal throughput of an SMT thread

    def effective_threads(self, threads_per_host: int) -> float:
        """Throughput of *threads_per_host* threads, in single-thread units.

        Physical cores scale at ``parallel_efficiency``; hardware threads
        beyond the physical cores add ``smt_efficiency`` each (4-way SMT
        on BG/Q, 2-way HyperThreading on x86).
        """
        require(threads_per_host >= 1, "need at least one thread")
        physical = min(threads_per_host, self.cores_per_host)
        eff = physical * self.parallel_efficiency
        extra = min(threads_per_host, self.cores_per_host * self.smt_per_core) - physical
        if extra > 0:
            eff += extra * self.smt_efficiency
        return eff

    @property
    def max_threads_per_host(self) -> int:
        """Hardware thread capacity of one host."""
        return self.cores_per_host * self.smt_per_core


# Blue Gene/Q compute card.  t_neuron / t_syn_event calibrated so that
# (a) Neovision on 32 hosts x 64 threads lands at ~12 ms/tick (Fig. 8's
# best point: "12x slower than real-time") and one host at 8 threads at
# ~0.15 s/tick (Fig. 8's slowest point); (b) the characterization
# networks land ~1 order of magnitude slower than TrueNorth (Fig. 6(a)).
# Power: Sequoia-class cards draw ~65 W under load (EMON node card / 32).
BGQ = MachineSpec(
    name="BlueGene/Q",
    cores_per_host=16,
    smt_per_core=4,
    max_hosts=32,
    t_neuron_s=1.2e-6,
    t_syn_event_s=0.4e-6,
    t_fixed_s=8.0e-3,
    t_message_s=8.0e-6,
    t_sync_s=100.0e-6,
    power_per_host_w=65.0,
)

# Dual-socket Xeon E5-2440.  Calibrated so the characterization space
# lands 2-3 orders of magnitude slower than TrueNorth (Fig. 6(c)) and
# ~5 orders of magnitude less energy-efficient (Fig. 6(d)); power is the
# RAPL package+DRAM total for both sockets under load.
X86 = MachineSpec(
    name="x86 (2x E5-2440)",
    cores_per_host=12,
    smt_per_core=2,
    max_hosts=1,
    t_neuron_s=0.6e-6,
    t_syn_event_s=0.06e-6,
    t_fixed_s=5.0e-3,
    t_message_s=2.0e-6,
    t_sync_s=10.0e-6,
    power_per_host_w=150.0,
)

# Dual-socket Xeon X7350 (2007): the 8-thread server of the Section VI-A
# regression.  Calibrated so a full-chip moderate-rate regression network
# takes ~64 ms/tick: 100M ticks = ~74 days (paper: "74 days on Compass").
X86_LEGACY = MachineSpec(
    name="x86 legacy (2x X7350)",
    cores_per_host=8,
    smt_per_core=1,
    max_hosts=1,
    t_neuron_s=0.30e-6,
    t_syn_event_s=0.065e-6,
    t_fixed_s=1.0e-3,
    t_message_s=2.0e-6,
    t_sync_s=10.0e-6,
    power_per_host_w=260.0,
)

MACHINES = {spec.name: spec for spec in (BGQ, X86, X86_LEGACY)}
