"""Strong-scaling sweeps of Compass on BG/Q (paper Fig. 8).

Fig. 8 plots run time (s/tick) against power for the single-chip
Neovision network, sweeping host count (1, 2, 4, 8, 16, 32) and thread
count (8, 16, 32, 64), with an x86 reference curve (4, 6, 8, 12
threads).  This module generates those grids from the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.workload import WorkloadDescriptor
from repro.machines.cost import CompassCostModel, CompassRunPoint
from repro.machines.specs import BGQ, X86, MachineSpec

BGQ_HOST_SWEEP = (1, 2, 4, 8, 16, 32)
BGQ_THREAD_SWEEP = (8, 16, 32, 64)
X86_THREAD_SWEEP = (4, 6, 8, 12)


@dataclass(frozen=True)
class ScalingPoint:
    """One Fig.-8 point: configuration, runtime, and power."""

    machine: str
    hosts: int
    threads: int
    time_per_tick_s: float
    power_w: float
    power_per_spike_w: float

    @staticmethod
    def from_run_point(point: CompassRunPoint, spikes_per_tick: float) -> "ScalingPoint":
        """Annotate a run point with Fig. 8's power-per-spike y axis."""
        per_spike = point.power_w / spikes_per_tick if spikes_per_tick > 0 else 0.0
        return ScalingPoint(
            machine=point.machine,
            hosts=point.hosts,
            threads=point.threads_per_host,
            time_per_tick_s=point.time_per_tick_s,
            power_w=point.power_w,
            power_per_spike_w=per_spike,
        )


def strong_scaling_sweep(
    workload: WorkloadDescriptor,
    spec: MachineSpec = BGQ,
    host_sweep: tuple = BGQ_HOST_SWEEP,
    thread_sweep: tuple = BGQ_THREAD_SWEEP,
) -> list[ScalingPoint]:
    """All (hosts, threads) combinations for one machine."""
    model = CompassCostModel(spec)
    points = []
    for hosts in host_sweep:
        if hosts > spec.max_hosts:
            continue
        for threads in thread_sweep:
            if threads > spec.max_threads_per_host:
                continue
            point = model.run_point(workload, hosts, threads)
            points.append(ScalingPoint.from_run_point(point, workload.spikes_per_tick))
    return points


def x86_reference_sweep(
    workload: WorkloadDescriptor, thread_sweep: tuple = X86_THREAD_SWEEP
) -> list[ScalingPoint]:
    """The x86 single-host reference curve of Fig. 8."""
    return strong_scaling_sweep(workload, X86, host_sweep=(1,), thread_sweep=thread_sweep)


def best_point(points: list[ScalingPoint]) -> ScalingPoint:
    """Fastest configuration in a sweep."""
    return min(points, key=lambda p: p.time_per_tick_s)


def most_efficient_point(points: list[ScalingPoint]) -> ScalingPoint:
    """Lowest energy-per-tick configuration in a sweep."""
    return min(points, key=lambda p: p.time_per_tick_s * p.power_w)
