"""Compass execution cost model on von Neumann machines.

Models the three kernel phases of Compass (paper Section III-B) on a
given :class:`~repro.machines.specs.MachineSpec`:

* **Synapse + Neuron phases** — per-host compute: the host's share of
  neuron updates and synaptic events, divided by its effective thread
  throughput;
* **Network phase** — each host sends one aggregated message per peer
  (Compass aggregates spikes between pairs of processes into single MPI
  messages), in parallel across hosts;
* **Synchronization** — the two-communication-step barrier.

Together with the TrueNorth models this regenerates the paper's
speedup and energy-improvement comparisons (Figs. 6-8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import params
from repro.core.workload import WorkloadDescriptor
from repro.hardware.energy import EnergyModel
from repro.hardware.timing import TimingModel
from repro.machines.specs import MachineSpec
from repro.utils.validation import require


@dataclass(frozen=True)
class CompassRunPoint:
    """Time/power/energy of Compass executing one workload tick."""

    machine: str
    hosts: int
    threads_per_host: int
    time_per_tick_s: float
    power_w: float

    @property
    def energy_per_tick_j(self) -> float:
        """Energy to advance the simulation one tick."""
        return self.time_per_tick_s * self.power_w

    @property
    def slowdown_vs_real_time(self) -> float:
        """How many times slower than the 1 ms biological tick."""
        return self.time_per_tick_s / params.TICK_SECONDS


class CompassCostModel:
    """Evaluates Compass run points for one machine."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec

    def time_per_tick_s(
        self, workload: WorkloadDescriptor, hosts: int = 1, threads_per_host: int | None = None
    ) -> float:
        """Wall-clock seconds per simulated tick."""
        spec = self.spec
        require(1 <= hosts <= spec.max_hosts, f"{spec.name} supports 1..{spec.max_hosts} hosts")
        if threads_per_host is None:
            threads_per_host = spec.max_threads_per_host
        throughput = spec.effective_threads(threads_per_host)

        # Synapse + Neuron phases: this host's share of the event work.
        # load_imbalance makes the busiest host finish last.
        neuron_work = workload.neuron_updates_per_tick / hosts * workload.load_imbalance
        syn_work = workload.syn_events_per_tick / hosts * workload.load_imbalance
        t_compute = (
            neuron_work * spec.t_neuron_s + syn_work * spec.t_syn_event_s
        ) / throughput

        # Network phase: aggregated messages to each peer, in parallel
        # across hosts; plus the two-step synchronization.
        t_comm = (hosts - 1) * spec.t_message_s + 2 * spec.t_sync_s if hosts > 1 else 0.0

        return spec.t_fixed_s + t_compute + t_comm

    def power_w(self, hosts: int = 1) -> float:
        """Aggregate machine power while running Compass."""
        return hosts * self.spec.power_per_host_w

    def run_point(
        self, workload: WorkloadDescriptor, hosts: int = 1, threads_per_host: int | None = None
    ) -> CompassRunPoint:
        """Full time/power/energy evaluation for one configuration."""
        if threads_per_host is None:
            threads_per_host = self.spec.max_threads_per_host
        return CompassRunPoint(
            machine=self.spec.name,
            hosts=hosts,
            threads_per_host=threads_per_host,
            time_per_tick_s=self.time_per_tick_s(workload, hosts, threads_per_host),
            power_w=self.power_w(hosts),
        )

    def best_configuration(self, workload: WorkloadDescriptor) -> CompassRunPoint:
        """Fastest configuration (max hosts, max threads)."""
        return self.run_point(workload, self.spec.max_hosts, self.spec.max_threads_per_host)


@dataclass(frozen=True)
class Comparison:
    """TrueNorth vs. Compass on one workload (Fig. 6/7 quantities)."""

    workload: str
    machine: str
    speedup: float  # T_proc / T_TrueNorth
    power_improvement: float  # P_proc / P_TrueNorth
    energy_improvement: float  # E_proc / E_TrueNorth (per tick)
    truenorth_power_w: float
    truenorth_time_per_tick_s: float
    compass_point: CompassRunPoint


def compare_truenorth_vs_compass(
    workload: WorkloadDescriptor,
    spec: MachineSpec,
    hosts: int | None = None,
    threads_per_host: int | None = None,
    voltage: float = params.NOMINAL_VOLTAGE,
    tick_frequency_hz: float = params.REAL_TIME_HZ,
) -> Comparison:
    """Compute the paper's speedup / x-power / x-energy ratios.

    Speedup = T_proc / T_TrueNorth, and the improvements are the
    corresponding power and per-tick-energy ratios (paper Section VI-C).
    TrueNorth runs the workload in real time (or at ``tick_frequency_hz``
    when it is faster than real time, never beyond its own maximum).
    """
    energy_model = EnergyModel(voltage=voltage)
    timing_model = TimingModel(voltage=voltage)

    max_hz = timing_model.max_tick_frequency_hz(workload.busiest_core_events_per_tick)
    tn_hz = min(tick_frequency_hz, max_hz)
    tn_time_per_tick = 1.0 / tn_hz
    tn_energy_per_tick = energy_model.energy_per_tick_j(
        workload.syn_events_per_tick,
        workload.neuron_updates_per_tick,
        workload.spikes_per_tick,
        workload.hops_per_tick,
        tick_frequency_hz=tn_hz,
    )
    tn_power = tn_energy_per_tick * tn_hz

    model = CompassCostModel(spec)
    point = model.run_point(
        workload, hosts if hosts is not None else spec.max_hosts, threads_per_host
    )
    return Comparison(
        workload=workload.name,
        machine=spec.name,
        speedup=point.time_per_tick_s / tn_time_per_tick,
        power_improvement=point.power_w / tn_power,
        energy_improvement=point.energy_per_tick_j / tn_energy_per_tick,
        truenorth_power_w=tn_power,
        truenorth_time_per_tick_s=tn_time_per_tick,
        compass_point=point,
    )


def bgq_weak_scaling_hosts(workload: WorkloadDescriptor, spec: MachineSpec) -> int:
    """Host count for the paper's weak-scaling rule on BG/Q.

    Fig. 7 used "a weak-scaling number of BG/Q processors (~2
    neurosynaptic cores per thread, 32 threads per compute card)":
    64 cores per card, capped at the 32 cards available.
    """
    cores_per_card = 2 * 32
    return max(1, min(spec.max_hosts, -(-workload.n_cores // cores_per_card)))
