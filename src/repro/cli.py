"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``headline``      — the TAB1 headline operating points;
* ``fig5``          — print one Fig. 5 characterization panel (a-f);
* ``fig6``          — TrueNorth-vs-Compass contour summary;
* ``fig7``          — vision-application comparison table;
* ``fig8``          — BG/Q strong-scaling table;
* ``equivalence``   — run the one-to-one equivalence regressions;
* ``future``        — Section VII system projections;
* ``simulate`` / ``run`` — run a model on a chosen expression, with
  optional periodic checkpoints and ``--resume``;
* ``checkpoint``    — inspect a checkpoint container;
* ``serve``         — serve concurrent sessions on the batched engine;
* ``characterize``  — simulate one recurrent sweep point and report;
* ``lint``          — static model checker / determinism source lint;
* ``sanitize``      — shm race detector / tick-protocol checks;
* ``trace``         — run a model and export a Chrome trace + metrics;
* ``metrics``       — run a model and print the uniform metric snapshot.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import render_contour, render_table


def _cmd_headline(args) -> int:
    from repro.experiments import fig5

    h = fig5.headline_points()
    rows = [
        ["power @20Hz/128syn (mW)", h["power_mw_20hz_128syn"], "65"],
        ["GSOPS/W real time", h["gsops_per_watt_real_time"], "46"],
        ["GSOPS/W at 5x", h["gsops_per_watt_5x"], "81"],
        ["GSOPS/W @200Hz/256syn", h["gsops_per_watt_200hz_256syn"], ">400"],
        ["power density (mW/cm^2)", h["power_density_mw_per_cm2"], "~20"],
    ]
    print(render_table(["metric", "measured", "paper"], rows,
                       title="headline operating points (TAB1)"))
    return 0


def _cmd_fig5(args) -> int:
    from repro.experiments import fig5

    panels = {
        "a": fig5.fig5a_gsops,
        "b": fig5.fig5b_max_frequency,
        "c": fig5.fig5c_frequency_vs_voltage,
        "d": fig5.fig5d_energy_per_tick,
        "e": fig5.fig5e_efficiency,
        "f": fig5.fig5f_efficiency_vs_voltage,
    }
    grid = panels[args.panel]()
    print(render_contour(grid, log_scale=args.log))
    return 0


def _cmd_fig6(args) -> int:
    from repro.experiments import fig6

    rows = [
        [name, s["min"], s["max"], s["orders_min"], s["orders_max"]]
        for name, s in fig6.fig6_summary().items()
    ]
    print(render_table(["panel", "min", "max", "orders(min)", "orders(max)"],
                       rows, title="Fig. 6: TrueNorth vs Compass"))
    return 0


def _cmd_fig7(args) -> int:
    from repro.experiments import fig7

    rows = [
        [p.app, p.platform, p.speedup, p.power_improvement, p.energy_improvement]
        for p in fig7.fig7_points()
    ]
    print(render_table(["application", "platform", "speedup", "x power", "x energy"],
                       rows, title="Fig. 7: five vision applications"))
    return 0


def _cmd_fig8(args) -> int:
    from repro.experiments import fig8

    rows = [
        [p.hosts, p.threads, p.time_per_tick_s, p.power_w]
        for p in fig8.fig8_bgq_points()
    ]
    print(render_table(["hosts", "threads", "s/tick", "power (W)"], rows,
                       title="Fig. 8: Neovision strong scaling on BG/Q"))
    s = fig8.fig8_summary()
    print(f"\nbest point: {s['best_hosts']} hosts x {s['best_threads']} threads = "
          f"{s['best_slowdown_vs_real_time']:.1f}x slower than real time")
    return 0


def _cmd_equivalence(args) -> int:
    from repro.experiments import equivalence

    suites = {
        "single-core": equivalence.single_core_regressions(),
        "multi-core": equivalence.multi_core_regressions(),
        "recurrent": equivalence.recurrent_network_regressions(),
    }
    rows = [
        [name, r.n_regressions, r.total_spikes_compared, r.n_mismatches]
        for name, r in suites.items()
    ]
    print(render_table(["suite", "regressions", "spikes compared", "mismatches"],
                       rows, title="one-to-one equivalence (Section VI-A)"))
    failed = sum(r.n_mismatches for r in suites.values())
    print("RESULT:", "100% match" if failed == 0 else f"{failed} MISMATCHES")
    return 1 if failed else 0


def _cmd_future(args) -> int:
    from repro.experiments import future_systems

    rows = [
        [r["tier"], r["chips"], float(r["neurons"]), float(r["synapses"]), r["power_w"]]
        for r in future_systems.tier_table()
    ]
    print(render_table(["tier", "chips", "neurons", "synapses", "power (W)"],
                       rows, title="Section VII system projections"))
    print(f"\nrat-scale advantage:      {future_systems.rat_scale_energy_ratio():.0f}x")
    print(f"1%-human-scale advantage: {future_systems.human1pct_energy_ratio():.0f}x")
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report_gen import generate_report

    text = generate_report()
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"wrote report to {args.output}")
    else:
        print(text)
    return 0


def _cmd_simulate(args) -> int:
    from repro.compass.engine import run_engine
    from repro.hardware.energy import EnergyModel

    network = _resolve_model(args.model)
    workers = args.workers if args.workers == "auto" else int(args.workers)
    if args.resume or args.checkpoint_every:
        return _simulate_checkpointed(args, network, workers)
    record = run_engine(
        network, args.ticks, engine=args.expression, n_ranks=args.ranks,
        n_workers=workers,
    )
    c = record.counters
    print(f"{network.name or args.model}: {network.n_cores} cores, "
          f"{args.ticks} ticks on {args.expression}")
    print(f"  spikes: {c.spikes}  synaptic events: {c.synaptic_events}  "
          f"mean rate: {c.mean_firing_rate_hz:.1f} Hz")
    energy = EnergyModel().energy_for_run_j(c)
    print(f"  chip-model energy: {energy * 1e6:.2f} uJ "
          f"({energy / max(c.ticks, 1) * 1e6:.3f} uJ/tick)")
    if args.output:
        from repro.io.aer import record_to_aer, write_aer_file

        write_aer_file(args.output, record_to_aer(record))
        print(f"  wrote {record.n_spikes} output events to {args.output}")
    return 0


def _simulate_checkpointed(args, network, workers) -> int:
    """The stepped simulate path: periodic checkpoints and/or --resume.

    Drives the selected engine tick by tick (instead of one-shot
    ``run_engine``) so checkpoints can be captured mid-run and a
    resumed run continues from the checkpoint's tick up to ``--ticks``
    total — bit-identical to an uninterrupted run.
    """
    import os

    from repro.compass.engine import select_engine
    from repro.io.checkpoint import EngineCheckpoint

    sim = select_engine(
        network, args.expression, n_ranks=args.ranks, n_workers=workers,
    )
    if getattr(sim, "snapshot", None) is None:
        print(f"expression {args.expression!r} does not support "
              "checkpointing (needs snapshot()/restore())", file=sys.stderr)
        return 1
    start_tick = 0
    if args.resume:
        ckpt = EngineCheckpoint.load(args.resume, network)
        sim.restore(ckpt)
        start_tick = int(ckpt.tick)
        print(f"resumed {args.resume} at tick {start_tick}")
    ckpt_dir = args.checkpoint_dir or "."
    step_arrays = getattr(sim, "step_arrays", None)
    events: list[tuple[int, int, int]] = []
    for done in range(start_tick + 1, args.ticks + 1):
        if step_arrays is not None:
            tick, core_ids, locals_ = step_arrays()
            events.extend(
                (tick, int(cc), int(nn)) for cc, nn in zip(core_ids, locals_)
            )
        else:
            events.extend(sim.step())
        if args.checkpoint_every and done % args.checkpoint_every == 0:
            path = os.path.join(ckpt_dir, f"ckpt-{done}.npz")
            n_bytes = sim.snapshot().save(path)
            print(f"  checkpoint at tick {done}: {path} ({n_bytes} bytes)")
    close = getattr(sim, "close", None)
    if close is not None:
        close()
    c = sim.counters
    print(f"{network.name or args.model}: {network.n_cores} cores, "
          f"ticks {start_tick}..{args.ticks} on {args.expression}")
    print(f"  spikes: {c.spikes}  synaptic events: {c.synaptic_events}  "
          f"mean rate: {c.mean_firing_rate_hz:.1f} Hz")
    if args.output:
        from repro.core.record import SpikeRecord
        from repro.io.aer import record_to_aer, write_aer_file

        record = SpikeRecord.from_events(events, c)
        write_aer_file(args.output, record_to_aer(record))
        print(f"  wrote {record.n_spikes} output events "
              f"(ticks {start_tick}..{args.ticks}) to {args.output}")
    return 0


def _cmd_checkpoint_inspect(args) -> int:
    import json

    from repro.io.checkpoint import load_checkpoint

    info = load_checkpoint(args.path).describe()
    if args.json:
        print(json.dumps(info, indent=2))
        return 0
    counters = info.pop("counters", {})
    rows = [[key, value] for key, value in info.items()]
    rows += [[f"counters.{key}", value] for key, value in counters.items()]
    print(render_table(["field", "value"], rows,
                       title=f"checkpoint: {args.path}"))
    return 0


def _cmd_lint(args) -> int:
    from repro.lint import CODES, SOURCE_CODES, Severity, lint_network, lint_paths
    from repro.lint.diagnostics import LintReport

    if args.codes:
        from repro.sanitize import SANITIZE_CODES

        rows = [
            [info.code, info.title, str(info.severity)]
            for info in (
                list(CODES.values())
                + list(SOURCE_CODES.values())
                + list(SANITIZE_CODES.values())
            )
        ]
        print(render_table(["code", "title", "severity"], rows,
                           title="lint diagnostic codes (see docs/lint.md)"))
        return 0

    reports: list[LintReport] = []
    if args.source or (not args.models and not args.builtin):
        # Default with no target: lint this installation's own sources.
        import repro

        paths = args.models or [repro.__path__[0]]
        reports.append(lint_paths(paths))
    elif args.builtin:
        from repro.lint.examples import builtin_networks

        for name, network in builtin_networks().items():
            report = lint_network(network)
            report.subject = name
            reports.append(report)
    else:
        from repro.io.model_files import load_network

        for path in args.models:
            report = lint_network(load_network(path, validate=False))
            report.subject = path
            reports.append(report)

    fail_at = Severity.WARNING if args.strict else Severity.ERROR
    failed = False
    for report in reports:
        print(report.render_json() if args.json else report.render_text())
        failed = failed or not report.clean(fail_at)
    return 1 if failed else 0


def _cmd_sanitize(args) -> int:
    from repro.lint.diagnostics import LintReport, Severity
    from repro.sanitize import check_protocol_sources, resolve_fault

    fault = resolve_fault(args.fault) if args.fault else None
    reports: list[LintReport] = []

    if not args.dynamic_only:
        reports.append(check_protocol_sources())

    if not args.static_only:
        from repro.core.builders import poisson_inputs

        if args.builtin or not args.models:
            from repro.lint.examples import builtin_networks

            networks = builtin_networks()
        else:
            networks = {path: _resolve_model(path) for path in args.models}
        engines = (
            ["parallel", "batched"] if args.engine == "both" else [args.engine]
        )
        for name, network in networks.items():
            inputs = poisson_inputs(network, args.ticks, args.rate, seed=args.seed)
            for engine in engines:
                if engine == "parallel":
                    from repro.compass.parallel import ParallelCompassSimulator

                    sim = ParallelCompassSimulator(
                        network, n_workers=args.workers,
                        sanitize=True, sanitize_fault=fault,
                    )
                    sim.run(args.ticks, inputs)
                    report = sim.sanitize_report
                else:
                    from repro.compass.batched import BatchedCompassSimulator

                    sim = BatchedCompassSimulator(
                        network, n_replicas=2,
                        sanitize=True, sanitize_fault=fault,
                    )
                    sim.run(args.ticks, inputs)
                    report = sim.sanitize_report
                if report is None:  # pragma: no cover - defensive
                    report = LintReport(subject=f"sanitize:{engine}")
                report.subject = f"{name} [{engine}]"
                reports.append(report)

    fail_at = Severity.WARNING if args.strict else Severity.ERROR
    any_findings = False
    failed = False
    for report in reports:
        print(report.render_json() if args.json else report.render_text())
        any_findings = any_findings or bool(len(report))
        failed = failed or not report.clean(fail_at)
    if args.expect_findings:
        # Fault-injection CI runs: succeed only when something fired.
        return 0 if any_findings else 1
    return 1 if failed else 0


def _resolve_model(name_or_path: str):
    """A builtin network name (see ``repro lint --builtin``) or .npz path."""
    from repro.lint.examples import BUILTIN_NETWORKS

    if name_or_path in BUILTIN_NETWORKS:
        return BUILTIN_NETWORKS[name_or_path]()
    from repro.io.model_files import load_network

    return load_network(name_or_path)


def _run_observed(args):
    """Run *args.model* under an Observer; return (network, observer)."""
    from repro.compass.engine import select_engine
    from repro.core.builders import poisson_inputs
    from repro.obs import Observer

    network = _resolve_model(args.model)
    inputs = poisson_inputs(network, args.ticks, args.rate, seed=args.seed)
    obs = Observer()
    workers = args.workers if args.workers == "auto" else int(args.workers)
    sim = select_engine(
        network, args.expression, n_ranks=args.ranks, n_workers=workers, obs=obs,
    )
    sim.run(args.ticks, inputs)
    # The parallel engine merges its per-rank trace strips at close().
    close = getattr(sim, "close", None)
    if close is not None:
        close()
    return network, obs


def _cmd_trace(args) -> int:
    network, obs = _run_observed(args)
    obs.export_chrome_trace(args.out)
    spans = obs.trace.spans()
    tids = sorted(obs.trace.tids())
    print(f"{network.name or args.model}: {network.n_cores} cores, "
          f"{args.ticks} ticks on {args.expression}")
    print(f"  wrote {len(spans)} spans over ranks {tids} to {args.out} "
          "(open in a Chrome trace viewer, e.g. ui.perfetto.dev)")
    if args.metrics_out:
        obs.write_metrics_json(args.metrics_out)
        print(f"  wrote metric snapshot to {args.metrics_out}")
    return 0


def _cmd_metrics(args) -> int:
    _, obs = _run_observed(args)
    text = (obs.metrics.to_prometheus() if args.format == "prom"
            else obs.metrics.to_json())
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"wrote {args.format} metrics to {args.out}")
    else:
        print(text)
    return 0


def _cmd_serve(args) -> int:
    import time

    from repro.core.builders import poisson_inputs
    from repro.obs import Observer
    from repro.runtime.serving import CompiledModelCache, ModelServer

    network = _resolve_model(args.model)
    telemetry_port = args.telemetry_port
    obs = Observer() if (args.metrics_out or telemetry_port is not None) else None
    cache = CompiledModelCache(capacity=args.cache_size)
    server = ModelServer(network, n_lanes=args.lanes, cache=cache, obs=obs,
                         telemetry_port=telemetry_port)
    if server.telemetry is not None:
        # Flushed eagerly so wrappers (the CI smoke job) can parse the
        # bound URL before the run finishes.
        print(f"telemetry: {server.telemetry.url}", flush=True)

    t0 = time.perf_counter()
    for i in range(args.sessions):
        inputs = poisson_inputs(network, args.ticks, args.rate, seed=args.seed + i)
        server.submit(inputs, args.ticks)
    sessions = server.run()
    wall = time.perf_counter() - t0

    if server.telemetry is not None and args.linger > 0:
        # Keep the endpoints up after the drain so probes can scrape a
        # finished run; Ctrl-C (SIGINT) ends the linger cleanly.
        print(f"lingering {args.linger:.0f}s for telemetry scrapes "
              "(Ctrl-C to stop)", flush=True)
        try:
            deadline = time.monotonic() + args.linger
            while time.monotonic() < deadline:
                time.sleep(0.1)
        except KeyboardInterrupt:
            pass
    server.close()

    stats = server.stats()
    total_spikes = sum(s.record.n_spikes for s in sessions)
    rows = [
        ["sessions completed", stats["completed"], args.sessions],
        ["batch lanes", args.lanes, ""],
        ["batched passes", stats["passes"], ""],
        ["lane-ticks served", stats["lane_ticks_served"], ""],
        ["output spikes", total_spikes, ""],
        ["wall seconds", f"{wall:.3f}", ""],
        ["lane-ticks / second", f"{stats['lane_ticks_served'] / wall:,.0f}", ""],
        ["compile cache", f"{cache.hits} hits / {cache.misses} misses", ""],
    ]
    print(render_table(["metric", "value", "requested"], rows,
                       title=f"serve: {network.name or args.model} "
                             f"x {args.sessions} sessions"))
    if args.metrics_out:
        obs.write_metrics_json(args.metrics_out)
        print(f"wrote metric snapshot to {args.metrics_out}")
    return 0


def _cmd_top(args) -> int:
    import json
    import time
    import urllib.error
    import urllib.request

    base = args.url.rstrip("/")

    def fetch(path):
        with urllib.request.urlopen(base + path, timeout=5.0) as resp:
            return json.loads(resp.read().decode("utf-8"))

    def fmt(value, spec=".3g"):
        if value is None:
            return "-"
        if isinstance(value, float) and value == float("inf"):
            return "inf"
        return format(value, spec) if isinstance(value, float) else str(value)

    iterations = 0
    while args.iterations is None or iterations < args.iterations:
        if iterations and args.interval > 0:
            time.sleep(args.interval)
        iterations += 1
        try:
            health = fetch("/health")
        except (urllib.error.URLError, OSError) as err:
            if isinstance(err, urllib.error.HTTPError) and err.code == 503:
                health = json.loads(err.read().decode("utf-8"))
            else:
                print(f"telemetry endpoint unreachable: {base} ({err})",
                      file=sys.stderr)
                return 1
        flight = health.get("flight", {})
        workers = health.get("workers", {})
        rows = [
            ["status", health.get("status", "?")],
            ["ticks (window)", fmt(health.get("ticks"))],
            ["real-time factor", fmt(health.get("real_time_factor"))],
            ["budget ratio (last)", fmt(health.get("budget_ratio"))],
            ["budget compliance", fmt(flight.get("budget_compliance"))],
            ["mean tick (ms)", fmt(flight.get("mean_tick_ms"))],
            ["max tick (ms)", fmt(flight.get("max_tick_ms"))],
            ["spikes / s", fmt(flight.get("spikes_per_second"), ",.0f")],
            ["messages / s", fmt(flight.get("messages_per_second"), ",.0f")],
            ["lane occupancy", fmt(health.get("occupancy"))],
            ["queue depth", fmt(health.get("queue_depth"))],
            ["workers", ", ".join(
                f"{name}:{'up' if ok else 'DOWN'}"
                for name, ok in workers.items()) or "-"],
        ]
        if not args.plain:
            # ANSI clear + home: a curses-free live view.
            print("\x1b[2J\x1b[H", end="")
        print(render_table(["signal", "value"], rows,
                           title=f"repro top — {base}"))
    return 0


def _cmd_characterize(args) -> int:
    from repro.experiments import fig5

    result = fig5.empirical_validation(
        rate_hz=args.rate, active_synapses=args.synapses,
        grid_side=args.grid, neurons_per_core=args.neurons, n_ticks=args.ticks,
        engine=args.engine,
    )
    rows = [
        ["synaptic events/tick", result["measured_syn_events_per_tick"],
         result["analytic_syn_events_per_tick"]],
        ["spikes/tick", result["measured_spikes_per_tick"],
         result["analytic_spikes_per_tick"]],
        ["firing rate (Hz)", result["measured_rate_hz"], result["target_rate_hz"]],
    ]
    print(render_table(["metric", "simulated", "analytic"], rows,
                       title=f"characterization: {args.rate} Hz x {args.synapses} syn"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="TrueNorth/Compass reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("headline").set_defaults(fn=_cmd_headline)

    p5 = sub.add_parser("fig5")
    p5.add_argument("panel", choices=list("abcdef"))
    p5.add_argument("--log", action="store_true")
    p5.set_defaults(fn=_cmd_fig5)

    sub.add_parser("fig6").set_defaults(fn=_cmd_fig6)
    sub.add_parser("fig7").set_defaults(fn=_cmd_fig7)
    sub.add_parser("fig8").set_defaults(fn=_cmd_fig8)
    sub.add_parser("equivalence").set_defaults(fn=_cmd_equivalence)
    sub.add_parser("future").set_defaults(fn=_cmd_future)

    pr = sub.add_parser("report")
    pr.add_argument("--output", help="write markdown to this path")
    pr.set_defaults(fn=_cmd_report)

    from repro.compass.engine import ENGINES

    ps = sub.add_parser("simulate", aliases=["run"])
    ps.add_argument("model",
                    help="builtin network name (see `repro lint --builtin`) "
                         "or path to a .npz model file")
    ps.add_argument("--ticks", type=int, default=100)
    ps.add_argument("--expression", choices=list(ENGINES), default="auto",
                    help="kernel expression to run (auto = sparse fast path)")
    ps.add_argument("--ranks", type=int, default=1)
    ps.add_argument("--workers", default="auto",
                    help="worker processes for the parallel engine "
                         "('auto' sizes to the host and network)")
    ps.add_argument("--output", help="write output spikes to this AER file")
    ps.add_argument("--checkpoint-every", type=int, default=None,
                    help="write a checkpoint every N ticks (docs/checkpoint.md)")
    ps.add_argument("--checkpoint-dir", default=None,
                    help="directory for periodic checkpoints (default: cwd)")
    ps.add_argument("--resume", default=None, metavar="CKPT",
                    help="resume from this checkpoint .npz up to --ticks total")
    ps.set_defaults(fn=_cmd_simulate)

    pk = sub.add_parser(
        "checkpoint", help="checkpoint utilities (docs/checkpoint.md)"
    )
    ksub = pk.add_subparsers(dest="checkpoint_command", required=True)
    ki = ksub.add_parser("inspect",
                         help="print a checkpoint container's header")
    ki.add_argument("path", help="path to a checkpoint .npz")
    ki.add_argument("--json", action="store_true",
                    help="emit the summary as JSON")
    ki.set_defaults(fn=_cmd_checkpoint_inspect)

    pl = sub.add_parser(
        "lint",
        help="static model checker / determinism source lint (docs/lint.md)",
    )
    pl.add_argument("models", nargs="*",
                    help=".npz model files to check (or source paths with "
                         "--source; default lints the repro sources)")
    pl.add_argument("--builtin", action="store_true",
                    help="lint every bundled example/app network")
    pl.add_argument("--source", action="store_true",
                    help="run the determinism source lint instead of the "
                         "model checker")
    pl.add_argument("--strict", action="store_true",
                    help="fail on warnings as well as errors")
    pl.add_argument("--json", action="store_true",
                    help="emit JSON diagnostics")
    pl.add_argument("--codes", action="store_true",
                    help="list every diagnostic code and exit")
    pl.set_defaults(fn=_cmd_lint)

    pz = sub.add_parser(
        "sanitize",
        help="shm race detector / tick-protocol checks (docs/sanitizer.md)",
    )
    pz.add_argument("models", nargs="*",
                    help="builtin network names or .npz model paths "
                         "(default: every builtin network)")
    pz.add_argument("--builtin", action="store_true",
                    help="sweep every bundled example/app network")
    pz.add_argument("--engine", choices=["parallel", "batched", "both"],
                    default="both",
                    help="engine(s) to run under the dynamic detector")
    pz.add_argument("--ticks", type=int, default=25)
    pz.add_argument("--rate", type=float, default=200.0,
                    help="Poisson drive rate in Hz on every axon")
    pz.add_argument("--seed", type=int, default=1)
    pz.add_argument("--workers", type=int, default=2,
                    help="worker processes for the parallel engine")
    pz.add_argument("--fault",
                    help="inject a protocol fault: drop-barrier, "
                         "overlap-slices, or out-of-phase-write "
                         "(optionally KIND:RANK:TICK)")
    pz.add_argument("--static-only", action="store_true",
                    help="run only the static tick-protocol check")
    pz.add_argument("--dynamic-only", action="store_true",
                    help="skip the static tick-protocol check")
    pz.add_argument("--expect-findings", action="store_true",
                    help="invert the exit status: succeed when findings "
                         "fired (fault-injection CI runs)")
    pz.add_argument("--strict", action="store_true",
                    help="fail on warnings as well as errors")
    pz.add_argument("--json", action="store_true",
                    help="emit JSON diagnostics")
    pz.set_defaults(fn=_cmd_sanitize)

    def _observed_args(p, default_ticks: int) -> None:
        p.add_argument("model",
                       help="builtin network name (e.g. recurrent-stochastic; "
                            "see `repro lint --builtin`) or .npz model path")
        p.add_argument("--ticks", type=int, default=default_ticks)
        p.add_argument("--rate", type=float, default=200.0,
                       help="Poisson drive rate in Hz on every axon")
        p.add_argument("--seed", type=int, default=1,
                       help="seed for the Poisson input drive")
        p.add_argument("--expression", "--engine", dest="expression",
                       choices=list(ENGINES), default="auto",
                       help="kernel expression to run (auto = sparse path)")
        p.add_argument("--ranks", type=int, default=1)
        p.add_argument("--workers", default="auto",
                       help="worker processes for the parallel engine")

    pt = sub.add_parser(
        "trace",
        help="run a model under tracing; export a Chrome trace_event JSON",
    )
    _observed_args(pt, default_ticks=50)
    pt.add_argument("--out", default="trace.json",
                    help="Chrome trace output path (default trace.json)")
    pt.add_argument("--metrics-out",
                    help="also write the metric snapshot JSON here")
    pt.set_defaults(fn=_cmd_trace)

    pm = sub.add_parser(
        "metrics",
        help="run a model and emit the uniform metric snapshot",
    )
    _observed_args(pm, default_ticks=100)
    pm.add_argument("--format", choices=["json", "prom"], default="json",
                    help="snapshot format: JSON or Prometheus text")
    pm.add_argument("--out", help="write to this path instead of stdout")
    pm.set_defaults(fn=_cmd_metrics)

    pv = sub.add_parser(
        "serve",
        help="serve many concurrent sessions on the batched engine "
             "(docs/serving.md)",
    )
    pv.add_argument("model",
                    help="builtin network name (e.g. recurrent-stochastic; "
                         "see `repro lint --builtin`) or .npz model path")
    pv.add_argument("--sessions", type=int, default=32,
                    help="number of concurrent sessions to submit")
    pv.add_argument("--lanes", type=int, default=16,
                    help="batch lanes (concurrent replicas per pass)")
    pv.add_argument("--ticks", type=int, default=100,
                    help="tick budget per session")
    pv.add_argument("--rate", type=float, default=200.0,
                    help="Poisson drive rate in Hz on every axon")
    pv.add_argument("--seed", type=int, default=1,
                    help="base seed for the per-session Poisson drives")
    pv.add_argument("--cache-size", type=int, default=8,
                    help="compiled-model LRU cache capacity")
    pv.add_argument("--metrics-out",
                    help="write the obs metric snapshot JSON here")
    pv.add_argument("--telemetry-port", type=int, default=None,
                    help="expose live /metrics /health /ready /flight /trace "
                         "on this port while serving (0 = ephemeral; "
                         "docs/observability.md)")
    pv.add_argument("--linger", type=float, default=0.0,
                    help="with --telemetry-port: keep the endpoints up this "
                         "many seconds after the drain (Ctrl-C to stop early)")
    pv.set_defaults(fn=_cmd_serve)

    pp = sub.add_parser(
        "top",
        help="live terminal view polling a telemetry endpoint "
             "(docs/observability.md)",
    )
    pp.add_argument("--url", default="http://127.0.0.1:9100",
                    help="base URL of a repro telemetry server")
    pp.add_argument("--interval", type=float, default=1.0,
                    help="seconds between polls")
    pp.add_argument("--iterations", type=int, default=None,
                    help="stop after this many polls (default: run forever)")
    pp.add_argument("--plain", action="store_true",
                    help="append snapshots instead of redrawing the screen")
    pp.set_defaults(fn=_cmd_top)

    pc = sub.add_parser("characterize")
    pc.add_argument("--rate", type=float, default=100.0)
    pc.add_argument("--synapses", type=int, default=16)
    pc.add_argument("--grid", type=int, default=4)
    pc.add_argument("--neurons", type=int, default=64)
    pc.add_argument("--ticks", type=int, default=200)
    pc.add_argument("--engine", choices=list(ENGINES), default="truenorth",
                    help="kernel expression for the sweep point "
                         "(auto/fast = the sparse engine)")
    pc.set_defaults(fn=_cmd_characterize)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
