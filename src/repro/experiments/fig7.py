"""Experiment FIG7: application performance comparison (paper Fig. 7).

Five computer-vision applications (Neovision, Haar, LBP, Saccade,
Saliency) benchmarked on TrueNorth vs Compass on a weak-scaling number
of BG/Q hosts and on the dual-socket x86:

* (a) execution speedup vs x power improvement scatter
* (b) x energy improvement bars per application and platform
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.workloads import VISION_APPS
from repro.machines.cost import bgq_weak_scaling_hosts, compare_truenorth_vs_compass
from repro.machines.specs import BGQ, X86


@dataclass(frozen=True)
class Fig7Point:
    """One application x platform comparison (a point in Fig. 7(a))."""

    app: str
    platform: str
    speedup: float
    power_improvement: float
    energy_improvement: float


def fig7_points(apps: tuple = VISION_APPS) -> list[Fig7Point]:
    """All application x platform comparison points."""
    points = []
    for app in apps:
        hosts = bgq_weak_scaling_hosts(app, BGQ)
        bgq = compare_truenorth_vs_compass(app, BGQ, hosts=hosts, threads_per_host=32)
        points.append(
            Fig7Point(app.name, "BG/Q", bgq.speedup, bgq.power_improvement,
                      bgq.energy_improvement)
        )
        x86 = compare_truenorth_vs_compass(app, X86)
        points.append(
            Fig7Point(app.name, "x86", x86.speedup, x86.power_improvement,
                      x86.energy_improvement)
        )
    return points


def fig7b_energy_bars(apps: tuple = VISION_APPS) -> dict:
    """Energy-improvement bars keyed by (app, platform)."""
    return {
        (p.app, p.platform): p.energy_improvement for p in fig7_points(apps)
    }


def fig7_summary(apps: tuple = VISION_APPS) -> dict:
    """Aggregate bands: the paper's 'orders of magnitude' claims.

    BG/Q: 1 order speedup, ~4 orders power; x86: 2 orders speedup,
    ~3 orders power; both: >5 orders energy.
    """
    points = fig7_points(apps)
    bgq = [p for p in points if p.platform == "BG/Q"]
    x86 = [p for p in points if p.platform == "x86"]
    return {
        "bgq_speedup_range": (min(p.speedup for p in bgq), max(p.speedup for p in bgq)),
        "x86_speedup_range": (min(p.speedup for p in x86), max(p.speedup for p in x86)),
        "bgq_power_range": (
            min(p.power_improvement for p in bgq), max(p.power_improvement for p in bgq)
        ),
        "x86_power_range": (
            min(p.power_improvement for p in x86), max(p.power_improvement for p in x86)
        ),
        "min_energy_improvement": min(p.energy_improvement for p in points),
    }
