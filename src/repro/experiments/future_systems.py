"""Experiment TAB2: future large-scale systems (paper Section VII).

Composes TrueNorth chips into the paper's system hierarchy — 16-chip
boards, 64-board quarter-rack backplanes, 4-backplane racks — and
reproduces the projections:

* 16-chip board: 7.2 W total (2.5 W TrueNorth array at 1.0 V + 4.7 W
  support logic), 16M neurons, 4B synapses;
* quarter rack (1,024 chips, ~1 kW) replicates the rat-scale BG/L
  simulations for ~6,400x less energy;
* full rack (4,096 chips, ~4 kW) replicates the 1%-human-scale BG/P
  simulations for ~128,000x less energy;
* 96 racks reach 100 trillion synapses ("human-scale") at ~384 kW.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import params
from repro.hardware.energy import EnergyModel
from repro.utils.validation import require

# Reference supercomputer simulations (paper Section VII-D, refs [4],[5]).
BGL_RAT_SCALE = {
    "racks": 32,
    "rack_power_w": 20_000.0,  # BG/L rack under load
    "slowdown": 10.0,  # "ran 10x slower than real-time"
}
BGP_HUMAN1PCT_SCALE = {
    "racks": 16,
    "rack_power_w": 40_000.0,  # BG/P rack under load
    "slowdown": 400.0,  # "ran 400x slower than real-time"
    # The paper's 128,000x figure implies total facility power (incl.
    # cooling/distribution) ~2x the rack budget; exposed as a parameter.
    "facility_overhead": 2.0,
}


@dataclass(frozen=True)
class BoardModel:
    """A 16-chip TrueNorth array board (Section VII-C)."""

    n_chips: int = 16
    support_power_w: float = 4.7  # FPGAs + interface logic (measured)
    voltage: float = 1.0  # the 16-chip board ran its array at 1.0 V

    def chip_power_w(self, rate_hz: float = 125.0, active_synapses: float = 256.0) -> float:
        """One chip's power at the board's operating point.

        The default workload (125 Hz x 256 active synapses) reproduces
        the measured 2.5 W array power (156 mW/chip at 1.0 V) for the
        16M-neuron real-time network.
        """
        model = EnergyModel(voltage=self.voltage)
        counts = model.workload_counts_per_tick(rate_hz, active_synapses)
        return model.power_w(
            counts["synaptic_events"], counts["neuron_updates"],
            counts["spikes"], counts["hops"],
        )

    def array_power_w(self, rate_hz: float = 125.0, active_synapses: float = 256.0) -> float:
        """TrueNorth array power (paper: 2.5 W)."""
        return self.n_chips * self.chip_power_w(rate_hz, active_synapses)

    def total_power_w(self, rate_hz: float = 125.0, active_synapses: float = 256.0) -> float:
        """Whole-board power (paper: 7.2 W)."""
        return self.array_power_w(rate_hz, active_synapses) + self.support_power_w

    @property
    def n_neurons(self) -> int:
        """Board neuron capacity (16M)."""
        return self.n_chips * params.NEURONS_PER_CHIP

    @property
    def n_synapses(self) -> int:
        """Board synapse capacity (4B)."""
        return self.n_chips * params.SYNAPSES_PER_CHIP


@dataclass(frozen=True)
class SystemTier:
    """One tier of the projected system hierarchy."""

    name: str
    n_chips: int
    power_budget_w: float

    @property
    def n_neurons(self) -> int:
        """Neuron capacity of the tier."""
        return self.n_chips * params.NEURONS_PER_CHIP

    @property
    def n_synapses(self) -> int:
        """Synapse capacity of the tier."""
        return self.n_chips * params.SYNAPSES_PER_CHIP


BOARD = SystemTier("4x4 board", 16, 10.0)  # "conservatively budget 10W"
QUARTER_RACK = SystemTier("quarter-rack backplane", 16 * 64, 1_000.0)
RACK = SystemTier("rack", 4_096, 4_000.0)
MOUSE_SCALE = SystemTier("mouse-scale", 256, 256.0)
RAT_SCALE = SystemTier("rat-scale", 1_024, 1_000.0)
HUMAN_SCALE_RACKS = 96


def rat_scale_energy_ratio(reference: dict = BGL_RAT_SCALE) -> float:
    """Energy-to-solution ratio: BG/L rat-scale vs one quarter rack.

    Energy ratio = (P_ref x slowdown) / P_TrueNorth for the same
    simulated duration (the reference also ran slower than real time).
    """
    ref_power = reference["racks"] * reference["rack_power_w"]
    return ref_power * reference["slowdown"] / QUARTER_RACK.power_budget_w


def human1pct_energy_ratio(reference: dict = BGP_HUMAN1PCT_SCALE) -> float:
    """Energy-to-solution ratio: BG/P 1%-human-scale vs one rack."""
    ref_power = (
        reference["racks"] * reference["rack_power_w"] * reference["facility_overhead"]
    )
    return ref_power * reference["slowdown"] / RACK.power_budget_w


def human_scale_system() -> dict:
    """The 96-rack 'human-scale' synaptic supercomputer projection."""
    n_chips = HUMAN_SCALE_RACKS * RACK.n_chips
    require(n_chips == 393_216, "96 racks x 4096 chips")
    return {
        "racks": HUMAN_SCALE_RACKS,
        "n_chips": n_chips,
        "n_neurons": n_chips * params.NEURONS_PER_CHIP,
        "n_synapses": n_chips * params.SYNAPSES_PER_CHIP,
        "power_w": HUMAN_SCALE_RACKS * RACK.power_budget_w,
    }


def tier_table() -> list[dict]:
    """Capacity/power rows for every projected tier (Fig. 1(h-j))."""
    rows = []
    for tier in (BOARD, QUARTER_RACK, MOUSE_SCALE, RAT_SCALE, RACK):
        rows.append(
            {
                "tier": tier.name,
                "chips": tier.n_chips,
                "neurons": tier.n_neurons,
                "synapses": tier.n_synapses,
                "power_w": tier.power_budget_w,
                "synapses_per_watt": tier.n_synapses / tier.power_budget_w,
            }
        )
    return rows
