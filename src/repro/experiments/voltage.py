"""Voltage-operating-point study: DVFS for neurosynaptic processors.

Paper Section VI-B: "Maximum execution speed increases with voltage,
but total power increases as voltage squared.  Consequently, SOPS/W is
maximized at lower voltages, limited only by the minimum voltage that
can still ensure correct circuit-level functional operation (~700mV)."

This experiment turns that observation into an operating-point
optimizer: for a workload and a required tick rate, find the lowest
functional voltage whose timing closes, and quantify the energy saved
vs. running at the nominal or maximum supply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import params
from repro.core.workload import WorkloadDescriptor
from repro.hardware.energy import EnergyModel
from repro.hardware.timing import TimingModel


@dataclass(frozen=True)
class OperatingPoint:
    """One (voltage, tick-rate) operating point for a workload."""

    voltage: float
    tick_frequency_hz: float
    max_tick_frequency_hz: float
    energy_per_tick_j: float
    power_w: float
    gsops_per_watt: float

    @property
    def feasible(self) -> bool:
        """True when the timing closes at this voltage."""
        return self.max_tick_frequency_hz >= self.tick_frequency_hz


def evaluate_point(
    workload: WorkloadDescriptor,
    voltage: float,
    tick_frequency_hz: float = params.REAL_TIME_HZ,
) -> OperatingPoint:
    """Time/energy/efficiency at one voltage and tick rate."""
    timing = TimingModel(voltage=voltage)
    energy = EnergyModel(voltage=voltage)
    max_hz = timing.max_tick_frequency_hz(workload.busiest_core_events_per_tick)
    e_tick = energy.energy_per_tick_j(
        workload.syn_events_per_tick,
        workload.neuron_updates_per_tick,
        workload.spikes_per_tick,
        workload.hops_per_tick,
        tick_frequency_hz=tick_frequency_hz,
    )
    sops_per_tick = workload.syn_events_per_tick
    return OperatingPoint(
        voltage=voltage,
        tick_frequency_hz=tick_frequency_hz,
        max_tick_frequency_hz=max_hz,
        energy_per_tick_j=e_tick,
        power_w=e_tick * tick_frequency_hz,
        gsops_per_watt=(sops_per_tick / e_tick) / 1e9 if e_tick > 0 else 0.0,
    )


def minimum_feasible_voltage(
    workload: WorkloadDescriptor,
    tick_frequency_hz: float = params.REAL_TIME_HZ,
    resolution: float = 0.005,
) -> float | None:
    """Lowest functional voltage sustaining the required tick rate."""
    for voltage in np.arange(
        params.MIN_FUNCTIONAL_VOLTAGE, params.MAX_VOLTAGE + 1e-9, resolution
    ):
        point = evaluate_point(workload, float(voltage), tick_frequency_hz)
        if point.feasible:
            return float(voltage)
    return None


def optimal_operating_point(
    workload: WorkloadDescriptor,
    tick_frequency_hz: float = params.REAL_TIME_HZ,
) -> OperatingPoint | None:
    """Minimum-energy feasible operating point (= lowest voltage).

    Because both active energy and leakage rise with V^2 while required
    throughput is fixed, the energy-optimal point is always the minimum
    feasible voltage — the paper's low-voltage preference, derived.
    """
    v = minimum_feasible_voltage(workload, tick_frequency_hz)
    if v is None:
        return None
    return evaluate_point(workload, v, tick_frequency_hz)


def voltage_study(
    workloads: list[WorkloadDescriptor],
    tick_frequency_hz: float = params.REAL_TIME_HZ,
) -> list[dict]:
    """Operating-point table across workloads.

    Reports each workload's minimum feasible voltage and the energy
    saving vs. nominal (0.75 V) and maximum (1.05 V) supplies.
    """
    rows = []
    for w in workloads:
        optimal = optimal_operating_point(w, tick_frequency_hz)
        if optimal is None:
            rows.append({"workload": w.name, "feasible": False})
            continue
        nominal = evaluate_point(w, params.NOMINAL_VOLTAGE, tick_frequency_hz)
        maximum = evaluate_point(w, params.MAX_VOLTAGE, tick_frequency_hz)
        rows.append(
            {
                "workload": w.name,
                "feasible": True,
                "optimal_voltage": optimal.voltage,
                "optimal_gsops_per_watt": optimal.gsops_per_watt,
                "nominal_gsops_per_watt": nominal.gsops_per_watt,
                "saving_vs_nominal": 1.0 - optimal.energy_per_tick_j / nominal.energy_per_tick_j,
                "saving_vs_max": 1.0 - optimal.energy_per_tick_j / maximum.energy_per_tick_j,
            }
        )
    return rows
