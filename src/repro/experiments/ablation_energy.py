"""Energy-model ablations: why is TrueNorth efficient?

Paper Section III-C attributes the efficiency to three design choices:
(i) memory co-located with computation, (ii) event-driven operation
("active power proportional to firing activity"), and (iii) sparse
spike-only communication.  This experiment quantifies choice (ii) and
the composition of the energy budget:

* :func:`event_driven_vs_always_on` — energy per tick of the real
  (event-driven) chip vs. a hypothetical clocked design that evaluates
  every synapse every tick regardless of activity;
* :func:`energy_breakdown` — the share of each component (passive,
  neuron sweep, synaptic events, spike routing) across workloads.
"""

from __future__ import annotations

from repro.core import params
from repro.hardware.energy import (
    E_HOP_J,
    E_NEURON_UPDATE_J,
    E_SPIKE_INJECT_J,
    E_SYNAPTIC_EVENT_J,
    EnergyModel,
)


def always_on_energy_per_tick_j(
    voltage: float = params.NOMINAL_VOLTAGE,
    n_cores: int = params.CORES_PER_CHIP,
) -> float:
    """Energy per tick of a hypothetical non-event-driven design.

    Every crosspoint of every core is evaluated every tick (the inner
    loop runs unconditionally), plus the same neuron sweep and passive
    floor.  This is the von Neumann-style "loop over all synapses"
    alternative the kernel explicitly avoids (paper Section III:
    "the event-based update loop is significantly more efficient than an
    alternative approach that loops over all synapses").
    """
    scale = (voltage / params.NOMINAL_VOLTAGE) ** 2
    synapse_evals = n_cores * params.CORE_AXONS * params.CORE_NEURONS
    neuron_updates = n_cores * params.CORE_NEURONS
    active = scale * (
        synapse_evals * E_SYNAPTIC_EVENT_J + neuron_updates * E_NEURON_UPDATE_J
    )
    model = EnergyModel(voltage=voltage)
    return active + model.passive_power_w * params.TICK_SECONDS


def event_driven_vs_always_on(
    rate_hz: float, active_synapses: float, voltage: float = params.NOMINAL_VOLTAGE
) -> dict:
    """Compare the real event-driven budget against the always-on design.

    Two views: the *total* advantage (bounded by the fixed passive +
    neuron-sweep floor shared by both designs) and the *synaptic
    component* advantage (the term event-driven operation actually
    eliminates — proportional to 1/activity).
    """
    model = EnergyModel(voltage=voltage)
    scale = (voltage / params.NOMINAL_VOLTAGE) ** 2
    event_driven = model.energy_per_tick_for_workload(rate_hz, active_synapses)
    always_on = always_on_energy_per_tick_j(voltage)

    counts = model.workload_counts_per_tick(rate_hz, active_synapses)
    syn_event_driven = scale * counts["synaptic_events"] * E_SYNAPTIC_EVENT_J
    syn_always_on = (
        scale
        * params.CORES_PER_CHIP
        * params.CORE_AXONS
        * params.CORE_NEURONS
        * E_SYNAPTIC_EVENT_J
    )
    return {
        "event_driven_uj": event_driven * 1e6,
        "always_on_uj": always_on * 1e6,
        "advantage": always_on / event_driven,
        "synaptic_advantage": (
            syn_always_on / syn_event_driven if syn_event_driven > 0 else float("inf")
        ),
    }


def energy_breakdown(
    rate_hz: float,
    active_synapses: float,
    tick_frequency_hz: float = params.REAL_TIME_HZ,
    voltage: float = params.NOMINAL_VOLTAGE,
) -> dict:
    """Fractional composition of the energy per tick."""
    model = EnergyModel(voltage=voltage)
    counts = model.workload_counts_per_tick(rate_hz, active_synapses)
    scale = (voltage / params.NOMINAL_VOLTAGE) ** 2
    parts = {
        "passive": model.passive_power_w / tick_frequency_hz,
        "neuron_sweep": scale * counts["neuron_updates"] * E_NEURON_UPDATE_J,
        "synaptic_events": scale * counts["synaptic_events"] * E_SYNAPTIC_EVENT_J,
        "spike_routing": scale
        * (counts["spikes"] * E_SPIKE_INJECT_J + counts["hops"] * E_HOP_J),
    }
    total = sum(parts.values())
    return {
        "total_uj": total * 1e6,
        **{f"{name}_fraction": value / total for name, value in parts.items()},
    }
