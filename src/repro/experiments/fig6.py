"""Experiment FIG6: TrueNorth vs Compass on BG/Q and x86 (paper Fig. 6).

Four contour panels over the characterization space:

* (a) speedup vs 32-host BG/Q        — ~1 order of magnitude
* (b) energy improvement vs BG/Q     — ~5 orders of magnitude
* (c) speedup vs dual-socket x86     — 2-3 orders of magnitude
* (d) energy improvement vs x86      — ~5 orders of magnitude
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contour import SweepGrid, sweep
from repro.apps.workloads import characterization_workload
from repro.machines.cost import compare_truenorth_vs_compass
from repro.machines.specs import BGQ, X86, MachineSpec

# Fig. 6 sweeps exclude the zero-rate/zero-synapse degenerate edge where
# speedup and energy ratios lose meaning (0 SOPS).
FIG6_RATES = np.linspace(25.0, 200.0, 8)
FIG6_SYNAPSES = np.linspace(32.0, 256.0, 8)


def _comparison_grid(spec: MachineSpec, attribute: str, metric: str) -> SweepGrid:
    def fn(rate: float, synapses: float) -> float:
        w = characterization_workload(rate, synapses)
        cmp = compare_truenorth_vs_compass(w, spec)
        return getattr(cmp, attribute)

    return sweep(
        "rate_hz", FIG6_RATES, "active_synapses", FIG6_SYNAPSES, fn, metric=metric
    )


def fig6a_speedup_vs_bgq() -> SweepGrid:
    """Speedup of TrueNorth over Compass on 32 BG/Q hosts."""
    return _comparison_grid(BGQ, "speedup", "speedup vs BG/Q")


def fig6b_energy_vs_bgq() -> SweepGrid:
    """Energy improvement over Compass on 32 BG/Q hosts."""
    return _comparison_grid(BGQ, "energy_improvement", "x energy vs BG/Q")


def fig6c_speedup_vs_x86() -> SweepGrid:
    """Speedup of TrueNorth over Compass on the dual-socket x86."""
    return _comparison_grid(X86, "speedup", "speedup vs x86")


def fig6d_energy_vs_x86() -> SweepGrid:
    """Energy improvement over Compass on the dual-socket x86."""
    return _comparison_grid(X86, "energy_improvement", "x energy vs x86")


def fig6_summary() -> dict:
    """Orders-of-magnitude summary across the four panels."""
    grids = {
        "speedup_bgq": fig6a_speedup_vs_bgq(),
        "energy_bgq": fig6b_energy_vs_bgq(),
        "speedup_x86": fig6c_speedup_vs_x86(),
        "energy_x86": fig6d_energy_vs_x86(),
    }
    return {
        name: {
            "min": grid.min,
            "max": grid.max,
            "orders_min": np.log10(grid.min),
            "orders_max": np.log10(grid.max),
        }
        for name, grid in grids.items()
    }
