"""Defect-tolerance (yield) study: "local core failures do not disrupt
global usability" (paper Section III-C).

Sweeps the fraction of defective cores/routers and measures the three
costs of routing around them:

* placement displacement (defective slots skipped);
* added hops (detours around dead routers);
* added communication energy;

while asserting the zeroth-order property: spike-for-spike functional
equivalence with the defect-free chip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builders import poisson_inputs, random_network
from repro.core.chip import ChipGeometry, Placement
from repro.hardware.energy import E_HOP_J
from repro.hardware.simulator import TrueNorthSimulator
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class DefectPoint:
    """Outcome of one defect-fraction trial."""

    defect_fraction: float
    n_disabled_routers: int
    functional_match: bool
    baseline_hops: int
    defective_hops: int

    @property
    def hop_overhead(self) -> float:
        """Relative extra hops paid for the detours."""
        if self.baseline_hops == 0:
            return 0.0
        return (self.defective_hops - self.baseline_hops) / self.baseline_hops

    @property
    def energy_overhead_j(self) -> float:
        """Extra communication energy at 0.75 V."""
        return (self.defective_hops - self.baseline_hops) * E_HOP_J


def _sample_connected_defects(
    rng, candidates, occupied, width, height, n_disable, max_tries: int = 20
) -> set:
    """Sample defective routers that leave every core mutually reachable.

    A defect set that partitions the mesh would make the chip unusable
    (the paper's yield model discards such die); resampling models the
    screening.  If no connected sample is found, the defect count is
    reduced.
    """
    import networkx as nx

    while n_disable > 0:
        for _ in range(max_tries):
            picks = rng.choice(len(candidates), size=n_disable, replace=False)
            disabled = {candidates[i] for i in picks}
            graph = nx.Graph()
            for x in range(width):
                for y in range(height):
                    if (x, y) in disabled:
                        continue
                    for nxt in ((x + 1, y), (x, y + 1)):
                        if (
                            0 <= nxt[0] < width
                            and 0 <= nxt[1] < height
                            and nxt not in disabled
                        ):
                            graph.add_edge((x, y), nxt)
            if all(graph.has_node(node) for node in occupied) and nx.is_connected(
                graph.subgraph(nx.node_connected_component(graph, next(iter(occupied))))
            ):
                component = nx.node_connected_component(graph, next(iter(occupied)))
                if occupied <= component:
                    return disabled
        n_disable -= 1
    return set()


def _spread_placement(n_cores: int, spacing: int = 2) -> Placement:
    """Spaced placement leaving router slots free for defects."""
    side = int(np.ceil(np.sqrt(n_cores)))
    idx = np.arange(n_cores)
    return Placement(
        chip_x=np.zeros(n_cores, dtype=np.int64),
        chip_y=np.zeros(n_cores, dtype=np.int64),
        x=(idx % side) * spacing,
        y=(idx // side) * spacing,
        geometry=ChipGeometry(),
    )


def defect_trial(
    defect_fraction: float,
    n_cores: int = 16,
    n_ticks: int = 25,
    seed: int = 0,
) -> DefectPoint:
    """One trial: disable a fraction of *unoccupied* routers, compare runs.

    Occupied (core-hosting) routers stay alive — the paper's model is
    that a dead core is depopulated at placement time (tested separately
    via :meth:`Placement.grid` defect skipping), while mesh detours
    handle dead routers on the path.
    """
    rng = seeded_rng(seed)
    net = random_network(n_cores=n_cores, connectivity=0.4, seed=seed)
    placement = _spread_placement(n_cores)
    ins = poisson_inputs(net, n_ticks, 400.0, seed=seed + 1)

    baseline = TrueNorthSimulator(net, placement=placement, detailed_noc=True)
    base_rec = baseline.run(n_ticks, ins)

    gx, gy = placement.global_xy()
    occupied = set(zip(gx.tolist(), gy.tolist()))
    width = baseline.mesh.width
    height = baseline.mesh.height
    candidates = [
        (x, y)
        for x in range(width)
        for y in range(height)
        if (x, y) not in occupied
    ]
    n_disable = int(round(defect_fraction * (width * height)))
    n_disable = min(n_disable, len(candidates))
    disabled = _sample_connected_defects(
        rng, candidates, occupied, width, height, n_disable
    )

    damaged = TrueNorthSimulator(
        net, placement=placement, detailed_noc=True, disabled_routers=disabled
    )
    dmg_rec = damaged.run(n_ticks, ins)

    return DefectPoint(
        defect_fraction=defect_fraction,
        n_disabled_routers=len(disabled),
        functional_match=(dmg_rec == base_rec),
        baseline_hops=base_rec.counters.hops,
        defective_hops=dmg_rec.counters.hops,
    )


def defect_sweep(
    fractions: tuple = (0.0, 0.05, 0.1, 0.2),
    n_cores: int = 16,
    n_ticks: int = 25,
    seed: int = 3,
) -> list[DefectPoint]:
    """Run the full yield sweep."""
    return [
        defect_trial(f, n_cores=n_cores, n_ticks=n_ticks, seed=seed + i)
        for i, f in enumerate(fractions)
    ]
