"""Experiment FIG5: TrueNorth characterization contours (paper Fig. 5).

Six panels over the 88-network characterization space:

* (a) GSOPS vs (rate, synapses) at 0.75 V
* (b) max tick frequency (kHz) vs (rate, synapses) at 0.75 V
* (c) max tick frequency (kHz) vs (voltage, synapses) at 50 Hz
* (d) total energy per tick (uJ) vs (rate, synapses) at 0.75 V
* (e) GSOPS/W vs (rate, synapses) at 0.75 V
* (f) GSOPS/W vs (voltage, synapses) at 50 Hz

Each panel is generated from the calibrated models over the full-chip
workload grid; :func:`empirical_validation` cross-checks the analytic
event counts against counts measured by actually simulating scaled
recurrent networks (DESIGN.md substitution #5).
"""

from __future__ import annotations

from repro.analysis.contour import (
    SweepGrid,
    default_rate_axis,
    default_synapse_axis,
    default_voltage_axis,
    sweep,
)
from repro.apps.recurrent import chip_placement, probabilistic_recurrent_network
from repro.core import params
from repro.hardware.energy import EnergyModel
from repro.hardware.simulator import TrueNorthSimulator
from repro.hardware.timing import TimingModel

FIG5_VOLTAGE = params.NOMINAL_VOLTAGE
FIG5C_RATE_HZ = 50.0


def fig5a_gsops(n: int = 9) -> SweepGrid:
    """Computation per time: GSOPS over (rate, synapses) at 0.75 V."""
    model = EnergyModel(FIG5_VOLTAGE)
    return sweep(
        "rate_hz", default_rate_axis(n),
        "active_synapses", default_synapse_axis(n),
        lambda r, k: model.sops(r, k) / 1e9,
        metric="GSOPS",
    )


def fig5b_max_frequency(n: int = 9) -> SweepGrid:
    """Maximum tick frequency (kHz) over (rate, synapses) at 0.75 V."""
    model = TimingModel(FIG5_VOLTAGE)
    return sweep(
        "rate_hz", default_rate_axis(n),
        "active_synapses", default_synapse_axis(n),
        model.max_frequency_for_workload_khz,
        metric="max tick frequency (kHz)",
    )


def fig5c_frequency_vs_voltage(n: int = 8) -> SweepGrid:
    """Maximum tick frequency (kHz) over (voltage, synapses) at 50 Hz."""
    return sweep(
        "voltage", default_voltage_axis(n),
        "active_synapses", default_synapse_axis(n),
        lambda v, k: TimingModel(v).max_frequency_for_workload_khz(FIG5C_RATE_HZ, k),
        metric="max tick frequency (kHz) @50Hz",
    )


def fig5d_energy_per_tick(n: int = 9) -> SweepGrid:
    """Total energy per tick (uJ) over (rate, synapses) at 0.75 V."""
    model = EnergyModel(FIG5_VOLTAGE)
    return sweep(
        "rate_hz", default_rate_axis(n),
        "active_synapses", default_synapse_axis(n),
        lambda r, k: model.energy_per_tick_for_workload(r, k) * 1e6,
        metric="energy per tick (uJ)",
    )


def fig5e_efficiency(n: int = 9) -> SweepGrid:
    """GSOPS/W over (rate, synapses) at 0.75 V, real time."""
    model = EnergyModel(FIG5_VOLTAGE)
    return sweep(
        "rate_hz", default_rate_axis(n),
        "active_synapses", default_synapse_axis(n),
        model.gsops_per_watt,
        metric="GSOPS/W",
    )


def fig5f_efficiency_vs_voltage(n: int = 8) -> SweepGrid:
    """GSOPS/W over (voltage, synapses) at 50 Hz, real time."""
    return sweep(
        "voltage", default_voltage_axis(n),
        "active_synapses", default_synapse_axis(n),
        lambda v, k: EnergyModel(v).gsops_per_watt(FIG5C_RATE_HZ, k),
        metric="GSOPS/W @50Hz",
    )


def headline_points() -> dict:
    """The Section VI-B headline operating points."""
    model = EnergyModel(FIG5_VOLTAGE)
    counts_a = model.workload_counts_per_tick(20.0, 128.0)
    power_a = model.power_w(
        counts_a["synaptic_events"], counts_a["neuron_updates"],
        counts_a["spikes"], counts_a["hops"],
    )
    return {
        "power_mw_20hz_128syn": power_a * 1e3,
        "gsops_per_watt_real_time": model.gsops_per_watt(20.0, 128.0),
        "gsops_per_watt_5x": model.gsops_per_watt(20.0, 128.0, tick_frequency_hz=5000.0),
        "gsops_per_watt_200hz_256syn": model.gsops_per_watt(200.0, 256.0),
        "power_density_mw_per_cm2": model.power_density_w_per_cm2(20.0, 128.0) * 1e3,
    }


def empirical_validation(
    rate_hz: float = 100.0,
    active_synapses: int = 16,
    grid_side: int = 4,
    neurons_per_core: int = 64,
    n_ticks: int = 200,
    seed: int = 11,
    engine: str = "truenorth",
) -> dict:
    """Cross-check analytic event counts against a simulated network.

    Runs a scaled recurrent network on the chosen kernel expression,
    measures its event counters, and compares the per-tick
    synaptic-event and spike counts against the analytic workload model
    used by Fig. 5.  Returns both so benches can assert agreement.

    The default engine is the hardware expression (it additionally
    accounts mesh hops, feeding the energy figure); any engine name from
    :data:`repro.compass.engine.ENGINES` works — the sweep's stochastic
    recurrent networks run end to end on the sparse ``"fast"`` /
    ``"auto"`` path, with identical spike and synaptic-event counts.
    """
    net = probabilistic_recurrent_network(
        rate_hz, active_synapses, grid_side=grid_side,
        neurons_per_core=neurons_per_core, seed=seed,
    )
    if engine == "truenorth":
        sim = TrueNorthSimulator(net, placement=chip_placement(grid_side))
    else:
        from repro.compass.engine import select_engine

        sim = select_engine(net, engine)
    record = sim.run(n_ticks)
    c = record.counters

    n_neurons = grid_side * grid_side * neurons_per_core
    model = EnergyModel(FIG5_VOLTAGE)
    analytic = model.workload_counts_per_tick(
        rate_hz, active_synapses, n_neurons=n_neurons,
        mean_hops=2 * 21.66 * grid_side / 64.0,
    )
    return {
        "measured_syn_events_per_tick": c.synaptic_events / c.ticks,
        "analytic_syn_events_per_tick": analytic["synaptic_events"],
        "measured_spikes_per_tick": c.spikes / c.ticks,
        "analytic_spikes_per_tick": analytic["spikes"],
        "measured_rate_hz": c.mean_firing_rate_hz,
        "target_rate_hz": rate_hz,
        "measured_energy_per_tick_j": model.energy_for_run_j(c) / c.ticks,
        "counters": c,
    }
