"""Experiment FIG8: BG/Q strong scaling on Neovision (paper Fig. 8).

Run time (s/tick) and power for the single-chip Neovision network as a
function of host count (1..32) and thread count (8..64), plus the x86
reference curve (4, 6, 8, 12 threads).  Key paper observations:

* "even the best operating point is 12x slower than real-time";
* "a single host is the most power-efficient but slowest; 32 hosts is
  the fastest but requires more power."
"""

from __future__ import annotations

from repro.apps.workloads import NEOVISION
from repro.machines.scaling import (
    ScalingPoint,
    best_point,
    most_efficient_point,
    strong_scaling_sweep,
    x86_reference_sweep,
)


def fig8_bgq_points() -> list[ScalingPoint]:
    """The BG/Q (hosts x threads) grid of Fig. 8."""
    return strong_scaling_sweep(NEOVISION)


def fig8_x86_points() -> list[ScalingPoint]:
    """The x86 reference curve of Fig. 8."""
    return x86_reference_sweep(NEOVISION)


def fig8_summary() -> dict:
    """Scalar observations asserted by the reproduction."""
    bgq = fig8_bgq_points()
    best = best_point(bgq)
    efficient = most_efficient_point(bgq)
    return {
        "best_slowdown_vs_real_time": best.time_per_tick_s / 1e-3,
        "best_hosts": best.hosts,
        "best_threads": best.threads,
        "most_efficient_hosts": efficient.hosts,
        "slowest_time_s_per_tick": max(p.time_per_tick_s for p in bgq),
        "fastest_time_s_per_tick": best.time_per_tick_s,
        "power_range_w": (
            min(p.power_w for p in bgq), max(p.power_w for p in bgq)
        ),
    }
