"""Multi-chip scaling study: boundary-link traffic vs array size.

Section VII demonstrates 4x1 and 4x4 chip arrays communicating "without
any additional peripheral circuitry"; the scaling question is whether
the shared merge/split boundary links — far narrower than the on-chip
mesh — saturate as arrays grow.  This experiment measures boundary
traffic and link utilization for uniform random traffic over growing
arrays (scaled-geometry chips), plus the analytic full-scale projection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chip import ChipGeometry
from repro.core.workload import WorkloadDescriptor
from repro.noc.multichip import ChipArray
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class MultichipPoint:
    """Boundary-traffic measurement for one array size."""

    chips_x: int
    chips_y: int
    packets: int
    total_hops: int
    boundary_crossings: int
    peak_link_utilization: float

    @property
    def crossing_fraction(self) -> float:
        """Fraction of packets that crossed at least one chip boundary."""
        return self.boundary_crossings / self.packets if self.packets else 0.0


def measure_boundary_traffic(
    chips_x: int,
    chips_y: int,
    n_packets: int = 400,
    cores_per_side: int = 8,
    link_capacity: int = 500,
    seed: int = 0,
) -> MultichipPoint:
    """Route uniform random packets over an array; measure the links."""
    rng = seeded_rng(seed)
    array = ChipArray(
        chips_x=chips_x,
        chips_y=chips_y,
        geometry=ChipGeometry(cores_x=cores_per_side, cores_y=cores_per_side),
        link_capacity_per_tick=link_capacity,
    )
    array.begin_tick()
    width = chips_x * cores_per_side
    height = chips_y * cores_per_side
    hops = crossings = 0
    for _ in range(n_packets):
        src = (int(rng.integers(0, width)), int(rng.integers(0, height)))
        dst = (int(rng.integers(0, width)), int(rng.integers(0, height)))
        h, c = array.deliver(src, dst)
        hops += h
        crossings += c
    peak = max(
        (
            link.utilization
            for boundary in array.boundaries.values()
            for link in boundary.links.values()
        ),
        default=0.0,
    )
    return MultichipPoint(
        chips_x=chips_x,
        chips_y=chips_y,
        packets=n_packets,
        total_hops=hops,
        boundary_crossings=crossings,
        peak_link_utilization=peak,
    )


def array_sweep(
    sizes: tuple = ((1, 1), (2, 1), (2, 2), (4, 1), (4, 4)),
    **kwargs,
) -> list[MultichipPoint]:
    """Measure boundary traffic across the paper's board geometries."""
    return [
        measure_boundary_traffic(cx, cy, seed=i, **kwargs)
        for i, (cx, cy) in enumerate(sizes)
    ]


def full_scale_link_load(
    workload: WorkloadDescriptor,
    chips_x: int = 4,
    chips_y: int = 4,
    long_range_fraction: float = 1.0,
) -> dict:
    """Analytic boundary-link load for a full-scale tiled workload.

    ``long_range_fraction`` is the share of spikes whose destination is
    uniform over the whole array (the rest stay on their home chip).
    The busiest vertical-cut boundary carries the bisection traffic.

    This is the quantitative form of the paper's locality argument: at
    ``long_range_fraction = 1`` a 200 Hz workload saturates the shared
    boundary links, while cortex-like clustered traffic (a few percent
    long-range, Section III-A) leaves ample margin — "the hierarchical
    communication model lowers system bandwidth requirements".
    """
    total_chips = chips_x * chips_y
    spikes_per_tick_per_chip = workload.spikes_per_tick
    total_spikes = spikes_per_tick_per_chip * total_chips
    # For uniform random traffic, P(cross central x-cut) = 2 * p * (1-p)
    # with p the fraction of chips left of the cut.
    p = (chips_x // 2) / chips_x
    crossing = total_spikes * long_range_fraction * 2 * p * (1 - p)
    # The cut spans chips_y chip edges, each one shared link per direction.
    per_link = crossing / max(chips_y, 1) / 2
    capacity = 40_000
    return {
        "crossing_packets_per_tick": crossing,
        "per_link_load_per_tick": per_link,
        "link_utilization": per_link / capacity,
        "saturated": per_link > capacity,
    }
