"""Experiment drivers: one module per paper figure/table (see DESIGN.md)."""

from repro.experiments import (
    ablation_energy,
    defects,
    equivalence,
    fig5,
    fig6,
    fig7,
    fig8,
    future_systems,
    multichip,
    voltage,
)

__all__ = [
    "ablation_energy",
    "defects",
    "equivalence",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "future_systems",
    "multichip",
    "voltage",
]
