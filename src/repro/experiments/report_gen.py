"""Live experiment report generation.

Regenerates the paper-vs-measured summary (the content of
EXPERIMENTS.md) from the current code, so drift between documentation
and models is detectable: ``python -m repro report`` writes the file,
and a test asserts the recorded claims still hold.
"""

from __future__ import annotations

from repro.analysis.report import render_markdown_table
from repro.experiments import (
    ablation_energy,
    equivalence,
    fig5,
    fig6,
    fig7,
    fig8,
    future_systems,
    voltage,
)


def headline_section() -> str:
    """TAB1 headline table."""
    h = fig5.headline_points()
    rows = [
        ["total power @20Hz/128syn", "65 mW", f"{h['power_mw_20hz_128syn']:.1f} mW"],
        ["GSOPS/W real time", "46", f"{h['gsops_per_watt_real_time']:.1f}"],
        ["GSOPS/W at ~5x", "81", f"{h['gsops_per_watt_5x']:.1f}"],
        ["GSOPS/W @200Hz/256syn", ">400", f"{h['gsops_per_watt_200hz_256syn']:.0f}"],
        ["power density", "~20 mW/cm^2", f"{h['power_density_mw_per_cm2']:.1f} mW/cm^2"],
    ]
    return "## Headline (TAB1)\n\n" + render_markdown_table(
        ["metric", "paper", "measured"], rows
    )


def fig6_section() -> str:
    """Fig. 6 contour summary."""
    s = fig6.fig6_summary()
    rows = [
        [name, f"{v['min']:.3g}", f"{v['max']:.3g}",
         f"{v['orders_min']:.1f}-{v['orders_max']:.1f}"]
        for name, v in s.items()
    ]
    return "## TrueNorth vs Compass (FIG6)\n\n" + render_markdown_table(
        ["panel", "min", "max", "orders of magnitude"], rows
    )


def fig7_section() -> str:
    """Fig. 7 application table."""
    rows = [
        [p.app, p.platform, f"{p.speedup:.1f}", f"{p.power_improvement:.2e}",
         f"{p.energy_improvement:.2e}"]
        for p in fig7.fig7_points()
    ]
    return "## Vision applications (FIG7)\n\n" + render_markdown_table(
        ["application", "platform", "speedup", "x power", "x energy"], rows
    )


def fig8_section() -> str:
    """Fig. 8 summary paragraph."""
    s = fig8.fig8_summary()
    return (
        "## BG/Q strong scaling (FIG8)\n\n"
        f"Best point: {s['best_hosts']} hosts x {s['best_threads']} threads = "
        f"{s['best_slowdown_vs_real_time']:.1f}x slower than real time "
        "(paper: ~12x).  Most power-efficient configuration: "
        f"{s['most_efficient_hosts']} host (paper: single host)."
    )


def equivalence_section() -> str:
    """EQ1/EQ2 summary."""
    suites = {
        "single-core": equivalence.single_core_regressions(n_networks=4, n_ticks=20),
        "multi-core": equivalence.multi_core_regressions(n_networks=2, n_ticks=20),
        "recurrent": equivalence.recurrent_network_regressions(n_ticks=30),
    }
    rows = [
        [name, r.n_regressions, r.total_spikes_compared, r.n_mismatches]
        for name, r in suites.items()
    ]
    wc = equivalence.regression_wall_clock()
    return (
        "## One-to-one equivalence (EQ1/EQ2)\n\n"
        + render_markdown_table(
            ["suite", "regressions", "spikes compared", "mismatches"], rows
        )
        + "\n\n"
        + f"100M-tick regression: TrueNorth {wc['truenorth_hours']:.1f} h "
        f"(paper 27.7 h) vs legacy x86 {wc['x86_legacy_days']:.1f} days "
        "(paper ~74 days)."
    )


def future_section() -> str:
    """Section VII projections."""
    rows = [
        [r["tier"], r["chips"], f"{r['neurons']:,}", f"{r['synapses']:,}",
         f"{r['power_w']:g}"]
        for r in future_systems.tier_table()
    ]
    return (
        "## Future systems (TAB2)\n\n"
        + render_markdown_table(
            ["tier", "chips", "neurons", "synapses", "power (W)"], rows
        )
        + "\n\n"
        + f"Rat-scale advantage: {future_systems.rat_scale_energy_ratio():.0f}x "
        "(paper 6,400x); 1%-human-scale: "
        f"{future_systems.human1pct_energy_ratio():.0f}x (paper 128,000x)."
    )


def ablations_section() -> str:
    """Extension-study highlights."""
    ed = ablation_energy.event_driven_vs_always_on(5.0, 32.0)
    from repro.apps.workloads import ANCHOR_A

    vrows = voltage.voltage_study([ANCHOR_A])
    return (
        "## Ablations\n\n"
        f"Event-driven synaptic evaluation advantage at 5 Hz x 32 syn: "
        f"{ed['synaptic_advantage']:.0f}x on the synaptic term "
        f"({ed['advantage']:.1f}x total).  "
        f"Minimum feasible voltage for the 20 Hz x 128 syn workload: "
        f"{vrows[0]['optimal_voltage']:.2f} V "
        f"({vrows[0]['saving_vs_max'] * 100:.0f}% energy saved vs 1.05 V)."
    )


def generate_report() -> str:
    """The full generated report."""
    sections = [
        "# Generated experiment report",
        "",
        "Produced by `python -m repro report` from the live models;",
        "see EXPERIMENTS.md for the curated discussion.",
        "",
        headline_section(),
        "",
        fig6_section(),
        "",
        fig7_section(),
        "",
        fig8_section(),
        "",
        equivalence_section(),
        "",
        future_section(),
        "",
        ablations_section(),
        "",
    ]
    return "\n".join(sections)
