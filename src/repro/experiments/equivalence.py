"""Experiment EQ: one-to-one equivalence regressions (paper Section VI-A).

The paper verified TrueNorth against Compass with 413,333 single-core
and 7,536+289 full-chip regressions, 10k-100M time steps, with "not a
single spike mismatch".  Here the kernel expressions — reference
kernel, Compass (multiple rank counts), the sparse FastCompass engine
(including every stochastic mode), TrueNorth (with and without the
detailed NoC) — are run over suites of randomized networks and compared
spike-for-spike.

Wall-clock projection (EQ2): the longest regression, 100M ticks, took
27.7 hours on TrueNorth at real time vs ~74 days on the 8-thread x86
server — both reproduced from the timing/cost models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.recurrent import probabilistic_recurrent_network
from repro.apps.workloads import characterization_workload
from repro.compass.engine import run_engine
from repro.compass.simulator import run_compass
from repro.core.builders import poisson_inputs, random_network
from repro.core.kernel import run_kernel
from repro.hardware.simulator import run_truenorth
from repro.hardware.timing import TimingModel
from repro.machines.cost import CompassCostModel
from repro.machines.specs import X86_LEGACY


@dataclass
class RegressionReport:
    """Outcome of one equivalence regression suite."""

    n_regressions: int = 0
    n_mismatches: int = 0
    total_spikes_compared: int = 0
    mismatches: list = field(default_factory=list)

    @property
    def all_matched(self) -> bool:
        """True when every regression agreed spike-for-spike."""
        return self.n_mismatches == 0


def single_core_regressions(
    n_networks: int = 8, n_ticks: int = 30, seed: int = 0
) -> RegressionReport:
    """Randomized single-core regressions across all three expressions."""
    report = RegressionReport()
    for i in range(n_networks):
        stochastic = i % 2 == 1
        net = random_network(
            n_cores=1, n_axons=16, n_neurons=16, connectivity=0.4,
            stochastic=stochastic, seed=seed + i,
        )
        ins = poisson_inputs(net, n_ticks, 300.0, seed=seed + 1000 + i)
        ref = run_kernel(net, n_ticks, ins)
        for record in (
            run_compass(net, n_ticks, ins, n_ranks=1),
            run_engine(net, n_ticks, ins, engine="auto"),  # sparse fast path
            run_truenorth(net, n_ticks, ins),
        ):
            report.n_regressions += 1
            report.total_spikes_compared += ref.n_spikes
            mismatch = record.first_mismatch(ref)
            if mismatch is not None:
                report.n_mismatches += 1
                report.mismatches.append((net.name, mismatch))
    return report


def multi_core_regressions(
    n_networks: int = 4, n_cores: int = 6, n_ticks: int = 40, seed: int = 50
) -> RegressionReport:
    """Randomized multi-core regressions, multiple rank counts + NoC."""
    from repro.compass.parallel import run_parallel_compass

    report = RegressionReport()
    for i in range(n_networks):
        net = random_network(
            n_cores=n_cores, n_axons=12, n_neurons=12, stochastic=True, seed=seed + i
        )
        ins = poisson_inputs(net, n_ticks, 250.0, seed=seed + 2000 + i)
        ref = run_kernel(net, n_ticks, ins)
        for record in (
            run_compass(net, n_ticks, ins, n_ranks=1),
            run_compass(net, n_ticks, ins, n_ranks=3, partition_strategy="round_robin"),
            run_engine(net, n_ticks, ins, engine="fast"),  # sparse, stochastic
            run_parallel_compass(net, n_ticks, ins, n_workers=2),
            run_truenorth(net, n_ticks, ins),
            run_truenorth(net, n_ticks, ins, detailed_noc=True),
        ):
            report.n_regressions += 1
            report.total_spikes_compared += ref.n_spikes
            mismatch = record.first_mismatch(ref)
            if mismatch is not None:
                report.n_mismatches += 1
                report.mismatches.append((net.name, mismatch))
    return report


def recurrent_network_regressions(
    n_ticks: int = 60, seed: int = 7
) -> RegressionReport:
    """Coupled stochastic recurrent networks: the paper's sensitive assay.

    "Their rich stochastic dynamics cause spikes to quickly and
    chaotically diverge from simulation if the processor misses even a
    single neural operation."
    """
    report = RegressionReport()
    for rate, k in ((80.0, 8), (150.0, 16)):
        net = probabilistic_recurrent_network(
            rate, k, grid_side=2, neurons_per_core=32,
            coupling="balanced", seed=seed,
        )
        ref = run_kernel(net, n_ticks)
        for record in (
            run_compass(net, n_ticks, n_ranks=2),
            run_engine(net, n_ticks, engine="auto"),  # sparse fast path
            run_truenorth(net, n_ticks),
        ):
            report.n_regressions += 1
            report.total_spikes_compared += ref.n_spikes
            mismatch = record.first_mismatch(ref)
            if mismatch is not None:
                report.n_mismatches += 1
                report.mismatches.append((net.name, mismatch))
    return report


def regression_wall_clock(n_ticks: int = 100_000_000) -> dict:
    """EQ2: project the 100M-tick regression wall clock on both targets."""
    tn_hours = TimingModel().wall_clock_for_ticks_s(n_ticks) / 3600.0
    legacy = CompassCostModel(X86_LEGACY)
    workload = characterization_workload(20.0, 128.0)
    x86_days = (
        legacy.time_per_tick_s(workload, hosts=1, threads_per_host=8) * n_ticks / 86400.0
    )
    return {
        "truenorth_hours": tn_hours,  # paper: 27.7 hours
        "x86_legacy_days": x86_days,  # paper: ~74 days
        "ratio": x86_days * 24.0 / tn_hours,
    }
