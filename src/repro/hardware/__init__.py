"""TrueNorth: the silicon expression of the kernel, plus time/energy models."""

from repro.hardware.energy import (
    CHARACTERIZATION_MEAN_HOPS,
    E_HOP_J,
    E_NEURON_UPDATE_J,
    E_SPIKE_INJECT_J,
    E_SYNAPTIC_EVENT_J,
    P_PASSIVE_W,
    EnergyModel,
)
from repro.hardware.power import (
    PowerMeasurement,
    adc_sample,
    level_triggered_average,
    measure_power,
    synthesize_tick_waveform,
)
from repro.hardware.simulator import TrueNorthSimulator, run_truenorth
from repro.hardware.timing import TimingModel

__all__ = [
    "CHARACTERIZATION_MEAN_HOPS",
    "E_HOP_J",
    "E_NEURON_UPDATE_J",
    "E_SPIKE_INJECT_J",
    "E_SYNAPTIC_EVENT_J",
    "P_PASSIVE_W",
    "EnergyModel",
    "PowerMeasurement",
    "adc_sample",
    "level_triggered_average",
    "measure_power",
    "synthesize_tick_waveform",
    "TrueNorthSimulator",
    "run_truenorth",
    "TimingModel",
]
