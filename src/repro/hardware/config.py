"""TrueNorth core configuration bitstreams: SRAM encode/decode.

Programming the physical chip means writing each core's SRAM: the
256x256 crossbar, per-axon types, and per-neuron parameter words
(weights, leak, thresholds, reset behaviour, target address, delay).
This module packs a :class:`~repro.core.network.Core` into the same
kind of dense bit image and unpacks it back, bit-exactly.

Layout (per core, little-endian bit order within each field):

* crossbar: ``A x N`` bits, row-major;
* axon types: 2 bits per axon;
* neuron words: fixed-width fields per neuron (see ``NEURON_FIELDS``) —
  signed fields are stored as biased unsigned values.

The encoder/decoder is the substrate for configuration-stream tests
(write -> read-back -> identical network behaviour), mirroring the
post-fabrication SRAM verification of real silicon bring-up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import params
from repro.core.network import Core
from repro.utils.validation import require

# (name, bit width, signed) for each per-neuron configuration field.
NEURON_FIELDS: tuple = (
    ("weight0", 9, True),
    ("weight1", 9, True),
    ("weight2", 9, True),
    ("weight3", 9, True),
    ("stoch_synapse", 4, False),  # one flag bit per axon type
    ("leak", 9, True),
    ("leak_reversal", 1, False),
    ("stoch_leak", 1, False),
    ("threshold", 19, False),
    ("threshold_mask", 17, False),
    ("neg_threshold", 20, False),
    ("reset_value", 20, True),
    ("reset_mode", 2, False),
    ("neg_floor_mode", 1, False),
    ("initial_v", 20, True),
    ("target_core", 24, True),  # OUTPUT_TARGET (-1) encodes as all-ones
    ("target_axon", 9, False),
    ("delay", 4, False),
)

NEURON_WORD_BITS = sum(width for _, width, _ in NEURON_FIELDS)
AXON_TYPE_BITS = 2


@dataclass(frozen=True)
class CoreImage:
    """A packed configuration image of one core."""

    n_axons: int
    n_neurons: int
    bits: np.ndarray  # uint8 array of 0/1

    @property
    def n_bits(self) -> int:
        """Total configuration bits."""
        return int(self.bits.size)

    @property
    def n_bytes(self) -> int:
        """Size of the byte-packed image."""
        return (self.n_bits + 7) // 8

    def to_bytes(self) -> bytes:
        """Byte-pack the bit image (LSB-first within each byte)."""
        return np.packbits(self.bits, bitorder="little").tobytes()

    @staticmethod
    def from_bytes(data: bytes, n_axons: int, n_neurons: int) -> "CoreImage":
        """Recover a bit image from its byte packing."""
        n_bits = core_config_bits(n_axons, n_neurons)
        bits = np.unpackbits(
            np.frombuffer(data, dtype=np.uint8), bitorder="little"
        )[:n_bits]
        return CoreImage(n_axons=n_axons, n_neurons=n_neurons, bits=bits)


def core_config_bits(n_axons: int, n_neurons: int) -> int:
    """Configuration bits needed for a core of the given size."""
    return (
        n_axons * n_neurons  # crossbar
        + n_axons * AXON_TYPE_BITS
        + n_neurons * NEURON_WORD_BITS
    )


def _encode_field(value: int, width: int, signed: bool) -> np.ndarray:
    """Encode one integer as *width* bits (two's complement if signed)."""
    if signed:
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        require(lo <= value <= hi, f"value {value} exceeds signed {width}-bit field")
        value &= (1 << width) - 1
    else:
        require(0 <= value < (1 << width), f"value {value} exceeds {width}-bit field")
    return np.array([(value >> b) & 1 for b in range(width)], dtype=np.uint8)


def _decode_field(bits: np.ndarray, signed: bool) -> int:
    """Decode a bit slice back to an integer."""
    value = int(sum(int(b) << i for i, b in enumerate(bits)))
    if signed and bits[-1]:
        value -= 1 << bits.size
    return value


def encode_core(core: Core) -> CoreImage:
    """Pack a core's full configuration into a bit image."""
    chunks: list[np.ndarray] = []
    chunks.append(core.crossbar.astype(np.uint8).reshape(-1))
    for g in core.axon_types:
        chunks.append(_encode_field(int(g), AXON_TYPE_BITS, signed=False))

    for j in range(core.n_neurons):
        stoch_flags = sum(
            int(core.stoch_synapse[j, g]) << g for g in range(params.NUM_AXON_TYPES)
        )
        values = {
            "weight0": int(core.weights[j, 0]),
            "weight1": int(core.weights[j, 1]),
            "weight2": int(core.weights[j, 2]),
            "weight3": int(core.weights[j, 3]),
            "stoch_synapse": stoch_flags,
            "leak": int(core.leak[j]),
            "leak_reversal": int(core.leak_reversal[j]),
            "stoch_leak": int(core.stoch_leak[j]),
            "threshold": int(core.threshold[j]),
            "threshold_mask": int(core.threshold_mask[j]),
            "neg_threshold": int(core.neg_threshold[j]),
            "reset_value": int(core.reset_value[j]),
            "reset_mode": int(core.reset_mode[j]),
            "neg_floor_mode": int(core.neg_floor_mode[j]),
            "initial_v": int(core.initial_v[j]),
            "target_core": int(core.target_core[j]),
            "target_axon": int(core.target_axon[j]),
            "delay": int(core.delay[j]),
        }
        for name, width, signed in NEURON_FIELDS:
            chunks.append(_encode_field(values[name], width, signed))

    bits = np.concatenate(chunks)
    assert bits.size == core_config_bits(core.n_axons, core.n_neurons)
    return CoreImage(n_axons=core.n_axons, n_neurons=core.n_neurons, bits=bits)


def decode_core(image: CoreImage, name: str = "") -> Core:
    """Unpack a bit image back into a validated core."""
    a, n = image.n_axons, image.n_neurons
    bits = image.bits
    require(
        bits.size == core_config_bits(a, n),
        f"image has {bits.size} bits, expected {core_config_bits(a, n)}",
    )
    pos = 0

    crossbar = bits[pos : pos + a * n].reshape(a, n).astype(bool)
    pos += a * n

    axon_types = np.zeros(a, dtype=np.int64)
    for i in range(a):
        axon_types[i] = _decode_field(bits[pos : pos + AXON_TYPE_BITS], signed=False)
        pos += AXON_TYPE_BITS

    columns: dict[str, list[int]] = {name_: [] for name_, _, _ in NEURON_FIELDS}
    for _ in range(n):
        for field_name, width, signed in NEURON_FIELDS:
            columns[field_name].append(_decode_field(bits[pos : pos + width], signed))
            pos += width

    weights = np.stack(
        [columns[f"weight{g}"] for g in range(params.NUM_AXON_TYPES)], axis=1
    ).astype(np.int64)
    stoch_synapse = np.zeros((n, params.NUM_AXON_TYPES), dtype=bool)
    for j, flags in enumerate(columns["stoch_synapse"]):
        for g in range(params.NUM_AXON_TYPES):
            stoch_synapse[j, g] = bool((flags >> g) & 1)

    core = Core(
        crossbar=crossbar,
        axon_types=axon_types,
        weights=weights,
        stoch_synapse=stoch_synapse,
        leak=np.asarray(columns["leak"], dtype=np.int64),
        leak_reversal=np.asarray(columns["leak_reversal"], dtype=bool),
        stoch_leak=np.asarray(columns["stoch_leak"], dtype=bool),
        threshold=np.asarray(columns["threshold"], dtype=np.int64),
        threshold_mask=np.asarray(columns["threshold_mask"], dtype=np.int64),
        neg_threshold=np.asarray(columns["neg_threshold"], dtype=np.int64),
        reset_value=np.asarray(columns["reset_value"], dtype=np.int64),
        reset_mode=np.asarray(columns["reset_mode"], dtype=np.int64),
        neg_floor_mode=np.asarray(columns["neg_floor_mode"], dtype=np.int64),
        initial_v=np.asarray(columns["initial_v"], dtype=np.int64),
        target_core=np.asarray(columns["target_core"], dtype=np.int64),
        target_axon=np.asarray(columns["target_axon"], dtype=np.int64),
        delay=np.asarray(columns["delay"], dtype=np.int64),
        name=name,
    )
    core.validate()
    return core


def config_stream(cores: list[Core]) -> bytes:
    """Concatenated byte-packed configuration for a whole network.

    Format: for each core, a 8-byte little-endian header (n_axons,
    n_neurons as uint32) followed by its byte-packed image.
    """
    out = bytearray()
    for core in cores:
        image = encode_core(core)
        out += int(core.n_axons).to_bytes(4, "little")
        out += int(core.n_neurons).to_bytes(4, "little")
        out += image.to_bytes()
    return bytes(out)


def parse_config_stream(data: bytes) -> list[Core]:
    """Parse a configuration stream back into cores."""
    cores: list[Core] = []
    pos = 0
    while pos < len(data):
        require(pos + 8 <= len(data), "truncated configuration header")
        n_axons = int.from_bytes(data[pos : pos + 4], "little")
        n_neurons = int.from_bytes(data[pos + 4 : pos + 8], "little")
        pos += 8
        n_bytes = (core_config_bits(n_axons, n_neurons) + 7) // 8
        require(pos + n_bytes <= len(data), "truncated configuration image")
        image = CoreImage.from_bytes(data[pos : pos + n_bytes], n_axons, n_neurons)
        cores.append(decode_core(image, name=f"core{len(cores)}"))
        pos += n_bytes
    return cores
