"""TrueNorth energy model: event-counted active energy + passive leakage.

DESIGN.md substitution #1: we cannot measure silicon, so we model what
the paper's own methodology measures — event-driven active energy plus a
voltage-dependent passive floor — with constants calibrated to the
paper's three anchor points (all at 0.75 V, 1M neurons):

* A: 20 Hz x 128 active synapses, real time (1 kHz)  -> 46 GSOPS/W,
* A5: the same network run 5x faster (5 kHz)          -> 81 GSOPS/W,
* C: 200 Hz x 256 active synapses, real time          -> >400 GSOPS/W.

Solving A and A5 gives the passive power (30.06 mW) and the total active
energy at A (25.6 uJ/tick == the paper's "~10 pJ per synaptic event" at
that operating point).  Solving A against C splits active energy into a
fixed neuron-update floor (22.5 pJ/update) and a marginal synaptic-event
energy (1.10 pJ/event).  Spike-routing energy (inject + per-hop) is
small and taken from the mesh traffic statistics.

First-order CMOS voltage scaling: dynamic (active) energy and leakage
power both scale with (V / 0.75)^2 — the paper: "total power increases
as voltage squared".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import params
from repro.core.counters import EventCounters
from repro.utils.validation import require

# --- Calibrated constants at 0.75 V (see module docstring) ---------------
E_SYNAPTIC_EVENT_J = 1.098e-12  # marginal energy per synaptic operation
E_NEURON_UPDATE_J = 22.53e-12  # leak + threshold evaluation, per neuron-tick
E_SPIKE_INJECT_J = 1.5e-12  # packet creation + local fan-out
E_HOP_J = 0.25e-12  # one router traversal
E_BOUNDARY_CROSS_J = 2.0e-12  # merge/split + pad drivers, per chip crossing
P_PASSIVE_W = 30.06e-3  # whole-chip leakage at 0.75 V

# Mean hop distance of the characterization networks: neurons project to
# axons an average of 21.66 cores away in both x and y (paper IV-B).
CHARACTERIZATION_MEAN_HOPS = 2 * 21.66


@dataclass(frozen=True)
class EnergyModel:
    """Energy/power evaluator at a given supply voltage."""

    voltage: float = params.NOMINAL_VOLTAGE

    def __post_init__(self) -> None:
        require(
            params.MIN_VOLTAGE - 1e-9 <= self.voltage <= params.MAX_VOLTAGE + 1e-9,
            f"voltage {self.voltage} outside tested range "
            f"[{params.MIN_VOLTAGE}, {params.MAX_VOLTAGE}]",
        )

    @property
    def _v_scale(self) -> float:
        """Dynamic-energy / leakage-power scale factor vs. 0.75 V."""
        return (self.voltage / params.NOMINAL_VOLTAGE) ** 2

    @property
    def passive_power_w(self) -> float:
        """Chip leakage power at this voltage."""
        return P_PASSIVE_W * self._v_scale

    # -- event-driven active energy -----------------------------------------
    def active_energy_per_tick_j(
        self,
        synaptic_events: float,
        neuron_updates: float,
        spikes: float,
        hops: float,
        boundary_crossings: float = 0.0,
    ) -> float:
        """Active energy of one tick given its event counts."""
        scale = self._v_scale
        return scale * (
            synaptic_events * E_SYNAPTIC_EVENT_J
            + neuron_updates * E_NEURON_UPDATE_J
            + spikes * E_SPIKE_INJECT_J
            + hops * E_HOP_J
            + boundary_crossings * E_BOUNDARY_CROSS_J
        )

    def energy_per_tick_j(
        self,
        synaptic_events: float,
        neuron_updates: float,
        spikes: float,
        hops: float,
        tick_frequency_hz: float = params.REAL_TIME_HZ,
        boundary_crossings: float = 0.0,
    ) -> float:
        """Total (active + amortized passive) energy of one tick.

        Running faster than real time amortizes the passive power over
        more ticks per second — the paper's 81 GSOPS/W at 5x mechanism.
        """
        active = self.active_energy_per_tick_j(
            synaptic_events, neuron_updates, spikes, hops, boundary_crossings
        )
        return active + self.passive_power_w / tick_frequency_hz

    def power_w(
        self,
        synaptic_events_per_tick: float,
        neuron_updates_per_tick: float,
        spikes_per_tick: float,
        hops_per_tick: float,
        tick_frequency_hz: float = params.REAL_TIME_HZ,
        boundary_crossings_per_tick: float = 0.0,
    ) -> float:
        """Mean chip power at the given tick frequency."""
        return (
            self.energy_per_tick_j(
                synaptic_events_per_tick,
                neuron_updates_per_tick,
                spikes_per_tick,
                hops_per_tick,
                tick_frequency_hz,
                boundary_crossings_per_tick,
            )
            * tick_frequency_hz
        )

    # -- workload-level helpers (uniform recurrent networks) ------------------
    def workload_counts_per_tick(
        self,
        rate_hz: float,
        active_synapses: float,
        n_neurons: int = params.NEURONS_PER_CHIP,
        mean_hops: float = CHARACTERIZATION_MEAN_HOPS,
    ) -> dict:
        """Per-tick event counts of a uniform recurrent workload.

        ``rate_hz`` is the mean neuron firing rate; ``active_synapses``
        the mean synaptic fan-out per spike (the paper's two sweep axes).
        """
        spikes = n_neurons * rate_hz * params.TICK_SECONDS
        return {
            "synaptic_events": spikes * active_synapses,
            "neuron_updates": float(n_neurons),
            "spikes": spikes,
            "hops": spikes * mean_hops,
        }

    def sops(self, rate_hz: float, active_synapses: float, n_neurons: int = params.NEURONS_PER_CHIP) -> float:
        """Synaptic operations per second of a uniform workload.

        SOPS = avg firing rate x avg active synapses x neurons (paper V-1).
        """
        return rate_hz * active_synapses * n_neurons

    def gsops_per_watt(
        self,
        rate_hz: float,
        active_synapses: float,
        tick_frequency_hz: float = params.REAL_TIME_HZ,
        n_neurons: int = params.NEURONS_PER_CHIP,
        mean_hops: float = CHARACTERIZATION_MEAN_HOPS,
    ) -> float:
        """Computation-per-energy (Fig. 5(e,f)) for a uniform workload.

        Synaptic events are tied to *biological* time (the network's
        firing rate), so running the tick clock faster does not change
        events per tick — it amortizes passive energy, increasing
        efficiency exactly as in the paper's 5x experiment.
        """
        counts = self.workload_counts_per_tick(rate_hz, active_synapses, n_neurons, mean_hops)
        e_tick = self.energy_per_tick_j(
            counts["synaptic_events"],
            counts["neuron_updates"],
            counts["spikes"],
            counts["hops"],
            tick_frequency_hz,
        )
        if e_tick <= 0.0:
            return 0.0
        sops_per_tick = counts["synaptic_events"]
        return (sops_per_tick / e_tick) / 1e9

    def energy_per_tick_for_workload(
        self,
        rate_hz: float,
        active_synapses: float,
        tick_frequency_hz: float = params.REAL_TIME_HZ,
        n_neurons: int = params.NEURONS_PER_CHIP,
        mean_hops: float = CHARACTERIZATION_MEAN_HOPS,
    ) -> float:
        """Total energy per tick (Fig. 5(d)) for a uniform workload."""
        counts = self.workload_counts_per_tick(rate_hz, active_synapses, n_neurons, mean_hops)
        return self.energy_per_tick_j(
            counts["synaptic_events"],
            counts["neuron_updates"],
            counts["spikes"],
            counts["hops"],
            tick_frequency_hz,
        )

    # -- measured-run evaluation ----------------------------------------------
    def energy_for_run_j(
        self,
        counters: EventCounters,
        tick_frequency_hz: float = params.REAL_TIME_HZ,
        boundary_crossings: float = 0.0,
    ) -> float:
        """Total energy of a simulated run from its event counters."""
        active = self.active_energy_per_tick_j(
            counters.synaptic_events,
            counters.neuron_updates,
            counters.spikes,
            counters.hops,
            boundary_crossings,
        )
        return active + self.passive_power_w * counters.ticks / tick_frequency_hz

    def power_density_w_per_cm2(
        self,
        rate_hz: float,
        active_synapses: float,
        tick_frequency_hz: float = params.REAL_TIME_HZ,
    ) -> float:
        """Chip power density (paper: ~20 mW/cm^2 on the vision apps)."""
        counts = self.workload_counts_per_tick(rate_hz, active_synapses)
        p = self.power_w(
            counts["synaptic_events"],
            counts["neuron_updates"],
            counts["spikes"],
            counts["hops"],
            tick_frequency_hz,
        )
        return p / params.CHIP_AREA_CM2
