"""Power-measurement emulation: the paper's instrumentation pipeline.

"For TrueNorth power, we sampled the chip's core current at 65.2 kHz
with an AD7689 analog-to-digital converter and smoothed the single time
step current waveform with a level-triggered average (num time steps >
500).  Calibrating against a Keithley PS2185 power source, we found only
a 3% difference in estimated RMS current." (paper Section V-2)

DESIGN.md substitution #6: the device under test is the energy model,
but the *measurement pipeline* — waveform synthesis, fixed-rate ADC
sampling, level-triggered averaging across >500 ticks, calibration
error — is reproduced so the reported numbers inherit realistic
measurement behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import params
from repro.utils.rng import seeded_rng
from repro.utils.validation import require

ADC_SAMPLE_RATE_HZ = 65_200.0
MIN_AVERAGED_TICKS = 500
CALIBRATION_RMS_ERROR = 0.03  # 3% vs. the Keithley reference


@dataclass
class PowerMeasurement:
    """Result of one level-triggered averaged power measurement."""

    mean_power_w: float
    n_ticks_averaged: int
    n_samples: int

    @property
    def worst_case_error_w(self) -> float:
        """Absolute bound implied by the 3% calibration error."""
        return self.mean_power_w * CALIBRATION_RMS_ERROR


def synthesize_tick_waveform(
    active_energy_j: float,
    passive_power_w: float,
    tick_seconds: float = params.TICK_SECONDS,
    resolution: int = 256,
    burst_fraction: float = 0.25,
) -> np.ndarray:
    """Synthesize one tick's power waveform.

    Event-driven cores burn their active energy in a burst at the start
    of each tick (synaptic drain + neuron sweep), then sit at the
    leakage floor — that level shift is what the instrument's level
    trigger locks onto.
    """
    require(resolution >= 8, "waveform needs at least 8 points")
    require(0.0 < burst_fraction <= 1.0, "burst_fraction in (0, 1]")
    wave = np.full(resolution, passive_power_w, dtype=np.float64)
    burst_points = max(1, int(round(burst_fraction * resolution)))
    burst_power = active_energy_j / (burst_fraction * tick_seconds)
    wave[:burst_points] += burst_power
    return wave


def adc_sample(
    waveform: np.ndarray,
    n_ticks: int,
    tick_seconds: float = params.TICK_SECONDS,
    sample_rate_hz: float = ADC_SAMPLE_RATE_HZ,
    noise_fraction: float = 0.01,
    seed: int = 0,
) -> np.ndarray:
    """Sample a repeating tick waveform at the ADC rate.

    The ADC free-runs against the tick clock, so samples land at
    different phases of each tick; Gaussian noise models ADC and shunt
    error.
    """
    total_time = n_ticks * tick_seconds
    t = np.arange(0.0, total_time, 1.0 / sample_rate_hz)
    phase = (t % tick_seconds) / tick_seconds
    idx = np.minimum((phase * waveform.size).astype(np.int64), waveform.size - 1)
    samples = waveform[idx]
    rng = seeded_rng(seed)
    return samples * (1.0 + noise_fraction * rng.standard_normal(samples.size))


def level_triggered_average(
    samples: np.ndarray,
    n_ticks: int,
    tick_seconds: float = params.TICK_SECONDS,
    sample_rate_hz: float = ADC_SAMPLE_RATE_HZ,
) -> PowerMeasurement:
    """Average the sampled waveform over the whole (>500-tick) window."""
    require(
        n_ticks > MIN_AVERAGED_TICKS,
        f"level-triggered average requires > {MIN_AVERAGED_TICKS} ticks",
    )
    return PowerMeasurement(
        mean_power_w=float(samples.mean()),
        n_ticks_averaged=n_ticks,
        n_samples=int(samples.size),
    )


def measure_power(
    active_energy_per_tick_j: float,
    passive_power_w: float,
    n_ticks: int = 1000,
    tick_seconds: float = params.TICK_SECONDS,
    seed: int = 0,
) -> PowerMeasurement:
    """End-to-end emulated measurement of a steady workload's power."""
    waveform = synthesize_tick_waveform(
        active_energy_per_tick_j, passive_power_w, tick_seconds
    )
    samples = adc_sample(waveform, n_ticks, tick_seconds, seed=seed)
    return level_triggered_average(samples, n_ticks, tick_seconds)
